// Package streamgpu is a Go reproduction of "Stream Processing on
// Multi-Cores with GPUs: Parallel Programming Models' Challenges"
// (Rockenbach, Stein, Griebler, Mencagli, Torquati, Danelutto, Fernandes —
// IPDPSW 2019).
//
// The repository contains, built from scratch on the standard library:
//
//   - internal/core — the SPar stream-parallelism DSL (ToStream, Stage,
//     Input, Output, Replicate) compiling to FastFlow structures;
//   - internal/ff and internal/tbb — FastFlow-style and TBB-style runtimes
//     (lock-free SPSC pipelines/farms; work-stealing scheduler with
//     token-throttled pipelines);
//   - internal/gpu (+ cuda and opencl facades) — a functional + timed GPU
//     simulator standing in for the paper's two Titan XP cards;
//   - internal/mandel and internal/dedup — the two applications, with
//     internal/rabin, internal/sha1x and internal/lzss as substrates;
//   - internal/bench — the experiment harness regenerating Figs. 1, 4, 5.
//
// See README.md for a tour, DESIGN.md for the architecture and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results. The
// root-level bench_test.go exposes every figure as a testing.B benchmark.
package streamgpu
