package streamgpu_test

import (
	"runtime"
	"sync"
	"testing"

	"streamgpu/internal/bench"
	"streamgpu/internal/mandel"
	"streamgpu/internal/tbb"
	"streamgpu/internal/workload"
)

// The benchmarks below regenerate every figure of the paper's evaluation.
// Experiments execute on the discrete-event simulator, so each benchmark
// reports two numbers: the host cost of running the simulation (ns/op, the
// usual Go metric) and the *virtual* execution time or throughput of the
// modelled system (virtual-s or virtual-MB/s), which is what corresponds
// to the paper's axes. Figure-scale physical parameters are reduced (see
// bench.TestConfig); run `go run ./cmd/figures` for the full-scale tables.

var (
	prepOnce sync.Once
	prep     *bench.Prep
)

func sharedPrep() *bench.Prep {
	prepOnce.Do(func() { prep = bench.NewPrep(bench.TestConfig()) })
	return prep
}

// reportVirtual attaches the virtual-time metrics to a Fig. 1/4 benchmark.
func reportVirtual(b *testing.B, virtualSec float64) {
	b.Helper()
	pr := sharedPrep()
	b.ReportMetric(virtualSec, "virtual-s")
	b.ReportMetric(pr.SeqTime().Seconds()/virtualSec, "speedup")
}

// --- Fig. 1: the Mandelbrot optimization ladder ---

func BenchmarkFig1Sequential(b *testing.B) {
	pr := sharedPrep()
	for i := 0; i < b.N; i++ {
		_ = pr.SeqTime()
	}
	reportVirtual(b, pr.SeqTime().Seconds())
}

func BenchmarkFig1NaiveKernel(b *testing.B) {
	pr := sharedPrep()
	var v float64
	for i := 0; i < b.N; i++ {
		v = pr.RunRowPerKernel(bench.CUDA, false).Seconds()
	}
	reportVirtual(b, v)
}

func BenchmarkFig1Grid2D(b *testing.B) {
	pr := sharedPrep()
	var v float64
	for i := 0; i < b.N; i++ {
		v = pr.RunRowPerKernel(bench.CUDA, true).Seconds()
	}
	reportVirtual(b, v)
}

func BenchmarkFig1Batch32(b *testing.B) {
	pr := sharedPrep()
	var v float64
	for i := 0; i < b.N; i++ {
		v = pr.RunBatched(bench.CUDA, 1, 1).Seconds()
	}
	reportVirtual(b, v)
}

func BenchmarkFig1Overlap2x(b *testing.B) {
	pr := sharedPrep()
	var v float64
	for i := 0; i < b.N; i++ {
		v = pr.RunBatched(bench.CUDA, 2, 1).Seconds()
	}
	reportVirtual(b, v)
}

func BenchmarkFig1Overlap4x(b *testing.B) {
	pr := sharedPrep()
	var v float64
	for i := 0; i < b.N; i++ {
		v = pr.RunBatched(bench.CUDA, 4, 1).Seconds()
	}
	reportVirtual(b, v)
}

func BenchmarkFig1TwoGPUs2xMem(b *testing.B) {
	pr := sharedPrep()
	var v float64
	for i := 0; i < b.N; i++ {
		v = pr.RunBatched(bench.CUDA, 2, 2).Seconds()
	}
	reportVirtual(b, v)
}

func BenchmarkFig1TwoGPUs4xMem(b *testing.B) {
	pr := sharedPrep()
	var v float64
	for i := 0; i < b.N; i++ {
		v = pr.RunBatched(bench.CUDA, 4, 2).Seconds()
	}
	reportVirtual(b, v)
}

func BenchmarkFig1OpenCLBatch32(b *testing.B) {
	pr := sharedPrep()
	var v float64
	for i := 0; i < b.N; i++ {
		v = pr.RunBatched(bench.OpenCL, 1, 1).Seconds()
	}
	reportVirtual(b, v)
}

// --- Fig. 4: programming-model comparison ---

func benchCPUOnly(b *testing.B, fw bench.Framework) {
	pr := sharedPrep()
	var v float64
	for i := 0; i < b.N; i++ {
		v = pr.RunCPUPipeline(fw, pr.Cfg.CPUWorkers).Seconds()
	}
	reportVirtual(b, v)
}

func BenchmarkFig4CPUOnlySPar(b *testing.B)     { benchCPUOnly(b, bench.SPar) }
func BenchmarkFig4CPUOnlyFastFlow(b *testing.B) { benchCPUOnly(b, bench.FastFlow) }
func BenchmarkFig4CPUOnlyTBB(b *testing.B)      { benchCPUOnly(b, bench.TBB) }

func benchCombo(b *testing.B, fw bench.Framework, api bench.API, gpus int) {
	pr := sharedPrep()
	var v float64
	for i := 0; i < b.N; i++ {
		v = pr.RunComboPipeline(fw, api, gpus, pr.Cfg.GPUWorkers).Seconds()
	}
	reportVirtual(b, v)
}

func BenchmarkFig4SParCUDA1GPU(b *testing.B)       { benchCombo(b, bench.SPar, bench.CUDA, 1) }
func BenchmarkFig4SParCUDA2GPUs(b *testing.B)      { benchCombo(b, bench.SPar, bench.CUDA, 2) }
func BenchmarkFig4SParOpenCL1GPU(b *testing.B)     { benchCombo(b, bench.SPar, bench.OpenCL, 1) }
func BenchmarkFig4TBBCUDA2GPUs(b *testing.B)       { benchCombo(b, bench.TBB, bench.CUDA, 2) }
func BenchmarkFig4FastFlowCUDA2GPUs(b *testing.B)  { benchCombo(b, bench.FastFlow, bench.CUDA, 2) }
func BenchmarkFig4FastFlowOpenCL1GPU(b *testing.B) { benchCombo(b, bench.FastFlow, bench.OpenCL, 1) }

// Real host runs of the three runtimes (physical wall clock; scales with
// the machine's cores, unlike the virtual experiments above).

var realParams = mandel.Params{Dim: 256, Niter: 512, InitA: -2.0, InitB: -1.25, Range: 2.5}

func BenchmarkFig4RealSPar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mandel.RunSPar(realParams, runtime.GOMAXPROCS(0)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4RealFastFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mandel.RunFF(realParams, runtime.GOMAXPROCS(0)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4RealTBB(b *testing.B) {
	s := tbb.NewScheduler(0)
	defer s.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mandel.RunTBB(realParams, s, 2*runtime.GOMAXPROCS(0))
	}
}

// --- Fig. 5: Dedup throughput ---

var (
	dedupOnce  sync.Once
	dedupPreps map[workload.Kind]*bench.DedupPrep
)

func sharedDedup(k workload.Kind) *bench.DedupPrep {
	dedupOnce.Do(func() {
		dedupPreps = make(map[workload.Kind]*bench.DedupPrep)
		for _, spec := range workload.PaperSpecs(1.0 / 256) {
			dedupPreps[spec.Kind] = bench.NewDedupPrep(spec, 64*1024)
		}
	})
	return dedupPreps[k]
}

func benchDedup(b *testing.B, kind workload.Kind, v bench.DedupVariant) {
	dp := sharedDedup(kind)
	cal := bench.Default()
	var sec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.API == "" {
			sec = dp.RunCPU(cal, 19).Seconds()
		} else {
			sec = dp.RunGPU(cal, v).Seconds()
		}
	}
	b.ReportMetric(float64(dp.Size)/1e6/sec, "virtual-MB/s")
}

func BenchmarkFig5LargeCPU(b *testing.B) { benchDedup(b, workload.Large, bench.DedupVariant{}) }
func BenchmarkFig5LargeCUDANoBatch(b *testing.B) {
	benchDedup(b, workload.Large, bench.DedupVariant{API: bench.CUDA, Spaces: 1, GPUs: 1})
}
func BenchmarkFig5LargeCUDABatch(b *testing.B) {
	benchDedup(b, workload.Large, bench.DedupVariant{API: bench.CUDA, Batched: true, Spaces: 1, GPUs: 1})
}
func BenchmarkFig5LargeOpenCLBatch2xMem(b *testing.B) {
	benchDedup(b, workload.Large, bench.DedupVariant{API: bench.OpenCL, Batched: true, Spaces: 2, GPUs: 1})
}
func BenchmarkFig5LinuxCPU(b *testing.B) { benchDedup(b, workload.Linux, bench.DedupVariant{}) }
func BenchmarkFig5LinuxCUDABatch(b *testing.B) {
	benchDedup(b, workload.Linux, bench.DedupVariant{API: bench.CUDA, Batched: true, Spaces: 1, GPUs: 1})
}
func BenchmarkFig5LinuxCUDABatch2GPUs(b *testing.B) {
	benchDedup(b, workload.Linux, bench.DedupVariant{API: bench.CUDA, Batched: true, Spaces: 1, GPUs: 2})
}
func BenchmarkFig5SilesiaCPU(b *testing.B) { benchDedup(b, workload.Silesia, bench.DedupVariant{}) }
func BenchmarkFig5SilesiaOpenCLBatch(b *testing.B) {
	benchDedup(b, workload.Silesia, bench.DedupVariant{API: bench.OpenCL, Batched: true, Spaces: 1, GPUs: 1})
}
