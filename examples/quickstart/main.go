// Quickstart: the smallest useful SPar program — a three-stage stream
// pipeline that tokenizes lines, uppercases them in parallel, and collects
// them in order. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"streamgpu/internal/core"
)

func main() {
	lines := []string{
		"stream processing on multi-cores with gpus",
		"parallel programming models challenges",
		"spar tbb fastflow cuda opencl",
		"the batch is the unit of offload",
	}

	var out []string
	// The SPar annotation schema, as a builder: ToStream → Stage
	// (replicated) → Stage. Ordered() keeps stream order end-to-end.
	pipe := core.NewToStream(core.Ordered(), core.Input("lines")).
		Stage(func(item any, emit func(any)) {
			emit(strings.ToUpper(item.(string)))
		}, core.Replicate(4), core.Name("upper"), core.Input("lines"), core.Output("upper")).
		Stage(func(item any, emit func(any)) {
			out = append(out, item.(string))
		}, core.Name("collect"), core.Input("upper"))

	fmt.Println("activity graph:", pipe.Graph())

	err := pipe.Run(func(emit func(any)) {
		for _, l := range lines {
			emit(l)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, l := range out {
		fmt.Printf("%d: %s\n", i, l)
	}
}
