// Dedup end-to-end: generate a synthetic source-tree-like dataset, compress
// it with the parallel SPar pipeline, restore it, and verify the round
// trip. Run with:
//
//	go run ./examples/dedup
package main

import (
	"bytes"
	"fmt"
	"log"
	"runtime"
	"time"

	"streamgpu/internal/dedup"
	"streamgpu/internal/workload"
)

func main() {
	spec := workload.Spec{Kind: workload.Linux, Size: 16 << 20, Seed: 7}
	fmt.Printf("generating %s dataset (%.0f MB)...\n", spec.Kind, float64(spec.Size)/1e6)
	input := workload.Generate(spec)

	var archive bytes.Buffer
	workers := runtime.GOMAXPROCS(0)
	t0 := time.Now()
	st, err := dedup.CompressSPar(input, &archive, dedup.Options{Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	el := time.Since(t0)
	fmt.Printf("compressed with %d workers in %v (%.1f MB/s)\n",
		workers, el, float64(len(input))/el.Seconds()/1e6)
	fmt.Printf("  %d -> %d bytes, ratio %.2fx\n", st.RawBytes, st.WrittenBytes, st.Ratio())
	fmt.Printf("  %d unique blocks, %d duplicates (%.0f%% dedup)\n",
		st.UniqueBlocks, st.DupBlocks,
		100*float64(st.DupBlocks)/float64(st.UniqueBlocks+st.DupBlocks))

	var restored bytes.Buffer
	t0 = time.Now()
	if err := dedup.Restore(bytes.NewReader(archive.Bytes()), &restored); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored in %v\n", time.Since(t0))
	if !bytes.Equal(restored.Bytes(), input) {
		log.Fatal("round-trip mismatch!")
	}
	fmt.Println("round trip verified: restored output is bit-identical")
}
