// Mandelbrot Streaming (the paper's §IV-A pseudo-application): each image
// row is a stream item flowing through generate → compute×N → show. This
// example renders a small frame with the SPar DSL and prints it as ASCII
// art, then compares the runtimes' wall-clock. Run with:
//
//	go run ./examples/mandelbrot
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"streamgpu/internal/mandel"
	"streamgpu/internal/tbb"
)

func main() {
	p := mandel.Params{Dim: 64, Niter: 500, InitA: -2.0, InitB: -1.25, Range: 2.5}
	im, err := mandel.RunSPar(p, 4)
	if err != nil {
		log.Fatal(err)
	}
	shades := []byte(" .:-=+*#%@")
	for i := 0; i < p.Dim; i += 2 { // halve vertically for terminal aspect
		row := im.Pix[i*p.Dim : (i+1)*p.Dim]
		line := make([]byte, p.Dim)
		for j, v := range row {
			line[j] = shades[int(255-v)*(len(shades)-1)/255]
		}
		fmt.Println(string(line))
	}

	// A slightly larger frame, timed across the runtimes.
	p = mandel.Params{Dim: 512, Niter: 2000, InitA: -2.0, InitB: -1.25, Range: 2.5}
	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("\n%dx%d, niter %d, %d workers:\n", p.Dim, p.Dim, p.Niter, workers)

	t0 := time.Now()
	mandel.RunSeq(p)
	seq := time.Since(t0)
	fmt.Printf("  sequential: %v\n", seq)

	t0 = time.Now()
	if _, err := mandel.RunSPar(p, workers); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  SPar:       %v (%.1fx)\n", time.Since(t0), seq.Seconds()/time.Since(t0).Seconds())

	t0 = time.Now()
	if _, err := mandel.RunFF(p, workers); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  FastFlow:   %v (%.1fx)\n", time.Since(t0), seq.Seconds()/time.Since(t0).Seconds())

	s := tbb.NewScheduler(workers)
	defer s.Shutdown()
	t0 = time.Now()
	mandel.RunTBB(p, s, 2*workers)
	fmt.Printf("  TBB:        %v (%.1fx)\n", time.Since(t0), seq.Seconds()/time.Since(t0).Seconds())
}
