// Annotations end-to-end: the SPar compiler story in one program. The
// pipeline is *declared* as C++11-attribute text (exactly the paper's
// Listing 1 schema), parsed by the front end (internal/spanno), bound to
// Go stage bodies, and executed on the FastFlow-style runtime — the same
// source-to-source path the SPar toolchain takes. Run with:
//
//	go run ./examples/annotations
package main

import (
	"fmt"
	"log"
	"strings"

	"streamgpu/internal/core"
	"streamgpu/internal/spanno"
)

// The annotated "source": a stream region with a replicated compute stage
// (marked spar::Pure — offloadable) and an ordered collect stage.
const source = `
[[spar::ToStream, spar::Input(lines)]]
for (auto line : lines) {
  [[spar::Stage, spar::Input(lines), spar::Output(caps), spar::Replicate(workers), spar::Pure]]
  { caps = shout(line); }
  [[spar::Stage, spar::Input(caps)]]
  { print(caps); }
}
`

func main() {
	anns, err := spanno.Parse(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d annotations\n", len(anns))

	graph, err := spanno.BuildGraph(anns, map[string]int{"workers": 4}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("activity graph:", graph)

	var out []string
	pipe, err := spanno.Instantiate(anns, map[string]int{"workers": 4}, 1,
		map[string]core.StageFunc{
			"S1": func(item any, emit func(any)) { emit(strings.ToUpper(item.(string)) + "!") },
			"S2": func(item any, emit func(any)) { out = append(out, item.(string)) },
		}, core.Ordered())
	if err != nil {
		log.Fatal(err)
	}

	lines := []string{"to stream", "stage", "input", "output", "replicate"}
	if err := pipe.Run(func(emit func(any)) {
		for _, l := range lines {
			emit(l)
		}
	}); err != nil {
		log.Fatal(err)
	}
	for _, l := range out {
		fmt.Println(l)
	}
}
