// pipeline-gpu shows the raw CUDA-facade workflow from §IV-A on the
// simulated device: per-item streams, asynchronous copies on pinned memory,
// and events synchronized by the last pipeline stage. It offloads a batch
// of vector-scale operations and prints the device utilization report.
// Run with:
//
//	go run ./examples/pipeline-gpu
package main

import (
	"fmt"
	"log"

	"streamgpu/internal/des"
	"streamgpu/internal/gpu"
	"streamgpu/internal/gpu/cuda"
)

// scaleSpec multiplies every float64-as-byte element by 3 (byte arithmetic
// keeps the example simple).
var scaleSpec = &gpu.KernelSpec{
	Name: "scale3",
	Body: func(t gpu.Thread, args []any) int64 {
		buf := args[0].(*gpu.Buf)
		n := args[1].(int)
		i := t.GlobalX()
		if i >= n {
			return gpu.ExitCost
		}
		buf.Bytes()[i] *= 3
		return 24
	},
}

func main() {
	const items = 16
	const n = 1 << 20

	sim := des.New()
	dev := gpu.NewDevice(sim, gpu.TitanXPSpec(), 0)
	rt, err := cuda.NewRuntime(sim, dev)
	if err != nil {
		log.Fatal(err)
	}

	results := make([]*gpu.HostBuf, items)

	// The producer stage: one stream per item (the paper's pattern for
	// managing dependencies between transfers and kernels), async copies on
	// page-locked memory.
	type inFlight struct {
		idx int
		ev  *cuda.Event
	}
	pending := des.NewQueue[inFlight](sim, "pending", items)
	sim.Spawn("producer", func(p *des.Proc) {
		for i := 0; i < items; i++ {
			st := rt.StreamCreate(p)
			d, err := rt.Malloc(p, n)
			if err != nil {
				log.Fatal(err)
			}
			h := rt.HostAlloc(n)
			for j := range h.Data {
				h.Data[j] = byte(i + 1)
			}
			results[i] = h
			rt.MemcpyAsync(p, d, 0, h, 0, n, cuda.MemcpyHostToDevice, st)
			rt.LaunchKernel(p, scaleSpec, gpu.Grid1D(n, 128), st, d, n)
			rt.MemcpyAsync(p, d, 0, h, 0, n, cuda.MemcpyDeviceToHost, st)
			pending.Put(p, inFlight{idx: i, ev: rt.EventRecord(p, st)})
		}
		pending.Close()
	})
	// The consumer stage synchronizes each item's event before using the
	// data, exactly as the paper's last stage does.
	sim.Spawn("consumer", func(p *des.Proc) {
		for {
			it, ok := pending.Get(p)
			if !ok {
				return
			}
			if err := rt.EventSynchronize(p, it.ev); err != nil {
				log.Fatalf("item %d: %v", it.idx, err)
			}
			want := byte(it.idx+1) * 3
			if results[it.idx].Data[0] != want {
				log.Fatalf("item %d: got %d, want %d", it.idx, results[it.idx].Data[0], want)
			}
		}
	})

	end, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	st := dev.Stats()
	fmt.Printf("processed %d items of %d KiB in %.3f ms of virtual time\n",
		items, n/1024, float64(end)/1e6)
	fmt.Printf("device: %d kernels, %.1f MB H2D, %.1f MB D2H\n",
		st.KernelsLaunched, float64(st.BytesH2D)/1e6, float64(st.BytesD2H)/1e6)
	fmt.Printf("engine busy: compute %.3f ms, H2D %.3f ms, D2H %.3f ms (overlap ratio %.2f)\n",
		st.KernelBusy.Seconds()*1e3, st.CopyBusyH2D.Seconds()*1e3, st.CopyBusyD2H.Seconds()*1e3,
		(st.KernelBusy+st.CopyBusyH2D+st.CopyBusyD2H).Seconds()/end.Seconds())
}
