GO ?= go

.PHONY: build vet test race verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector matters most for the real goroutine runtimes (ff, the
# SPar DSL, and the dedup pipeline built on them); the des-based packages
# are single-threaded by construction.
race:
	$(GO) test -race ./internal/ff ./internal/core ./internal/dedup

# verify mirrors .github/workflows/ci.yml exactly.
verify: build vet test race
