GO ?= go

.PHONY: build vet lint test race bench-json verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs streamvet, the repository's own analyzer suite (cmd/streamvet):
# the pipeline and GPU API contracts as machine checks, over all packages
# including test files.
lint:
	$(GO) run ./cmd/streamvet ./...

test:
	$(GO) test ./...

# Full-tree race coverage: the goroutine runtimes (ff, core, tbb, dedup) are
# the packages that matter most, but everything runs under the detector so
# new concurrency never lands unchecked.
race:
	$(GO) test -race ./...

# bench-json emits the Fig. 1 table as machine-readable JSONL (one row per
# optimization step, including the utilization columns) into BENCH_fig1.json.
# -niter 200 keeps it a short slice, not a publication-grade run.
bench-json:
	$(GO) run ./cmd/figures -fig 1 -json -niter 200 > BENCH_fig1.json

# verify mirrors .github/workflows/ci.yml exactly.
verify: build vet lint test race
