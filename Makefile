GO ?= go

.PHONY: build vet lint lint-json lint-selftest test race chaos cluster diag fuzz bench-json bench-gate verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs streamvet, the repository's own analyzer suite (cmd/streamvet):
# the pipeline and GPU API contracts as machine checks, over all packages
# including test files.
lint:
	$(GO) run ./cmd/streamvet ./...

# lint-json emits every diagnostic — including suppressed ones, with their
# mandatory //streamvet:ignore reasons — as machine-readable JSON. CI
# uploads the file as an artifact so the suppression inventory is reviewable
# per commit.
lint-json:
	$(GO) run ./cmd/streamvet -json ./... > STREAMVET.json

# lint-selftest runs the analysis engine tests (call graph, dataflow solver,
# suppression driver) and every analyzer's flagged/clean fixtures under the
# race detector: the shared loader, fact store, and per-Program caches are
# mutable state that analyzer tests exercise concurrently.
lint-selftest:
	$(GO) test -race -count=1 ./internal/analysis/...

test:
	$(GO) test ./...

# Full-tree race coverage: the goroutine runtimes (ff, core, tbb, dedup) are
# the packages that matter most, but everything runs under the detector so
# new concurrency never lands unchecked.
race:
	$(GO) test -race ./...

# chaos runs the overload/failure-injection scenarios (internal/testutil/chaos)
# under the race detector at full depth: hog-vs-small tenant isolation SLOs,
# mid-stream device quarantine and re-admission, and abrupt connection drops,
# all with archive verification and goroutine-leak checks. CI runs the same
# package with -short; run this target before touching admission, QoS, or
# health code.
chaos:
	$(GO) test -race -count=1 ./internal/testutil/chaos

# cluster runs the 3-node in-process smoke under the race detector: sharded
# routing (redirect and forward), cluster-wide dedup through two nodes, and
# the failover scenario that kills a node mid-stream via internal/fault and
# requires every session to complete on the survivors with byte-verified
# archives and leak-clean teardown (internal/cluster, DESIGN.md §14).
cluster:
	$(GO) test -race -count=1 -run 'TestCluster|TestRedirect|TestLoadgen|TestNodeFault' ./internal/cluster

# diag is the fleet-diagnostics smoke: the probe suite (quick level) must
# pass on a 3-device heterogeneous fleet under the race detector, the
# streamdiag binary must exit 0 on the same fleet, and its -json output must
# pass its own schema gate (-validate). Run it before touching internal/diag,
# internal/gpu fleet code, or the health scoreboard.
diag:
	$(GO) test -race -count=1 ./internal/diag ./internal/gpu ./internal/health
	$(GO) run ./cmd/streamdiag -fleet 'titanxp,titanxp@clock=0.7@gen=2,titanxp@sms=20' -r 1 -json > DIAG_smoke.json
	$(GO) run ./cmd/streamdiag -validate DIAG_smoke.json

# fuzz gives each fuzz target a short randomized run on top of the committed
# seed corpora (testdata/fuzz): the wire codec's decoders, the archive
# restore path, and the -fleet spec parser are the surfaces that parse bytes
# off the network/disk/command line, so they must error — never panic or
# over-allocate — on arbitrary input. FUZZTIME=5m for a longer local soak.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/server/wire -fuzz FuzzFrameDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/server/wire -fuzz FuzzFrameRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dedup -fuzz FuzzRestore -fuzztime $(FUZZTIME)
	$(GO) test ./internal/gpu -fuzz FuzzParseFleet -fuzztime $(FUZZTIME)

# bench-json emits the Fig. 1 table as machine-readable JSONL (one row per
# optimization step, including the utilization columns) into BENCH_fig1.json,
# and the host-throughput suite (real wall clock + allocs/op, cmd/benchhost)
# into BENCH_host.json. -niter 200 keeps Fig. 1 a short slice, not a
# publication-grade run.
bench-json:
	$(GO) run ./cmd/figures -fig 1 -json -niter 200 > BENCH_fig1.json
	$(GO) run ./cmd/benchhost > BENCH_host.json

# bench-gate compares a fresh host-suite run against the committed
# BENCH_baseline.json and fails on regression: a throughput drop of more
# than 15% after calibration scaling, or any allocs/op increase beyond 0.25
# on an entry the baseline pins (see DESIGN.md §10).
bench-gate:
	$(GO) run ./cmd/benchhost > BENCH_host.json
	$(GO) run ./cmd/benchdiff -base BENCH_baseline.json -new BENCH_host.json

# verify mirrors the test and lint jobs of .github/workflows/ci.yml. The
# bench-gate job is separate on purpose: benchmark numbers want a quiet
# machine, so run `make bench-gate` deliberately, not as part of every
# verify.
verify: build vet lint test race chaos diag
