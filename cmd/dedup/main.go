// Command dedup compresses and restores files with the reimplemented
// PARSEC Dedup pipeline (Rabin chunking + SHA-1 dedup + LZSS):
//
//	dedup -c -workers 8 input.dat archive.sgdd   # compress
//	dedup -d archive.sgdd output.dat             # restore
//	dedup -graph                                 # print the SPar activity graph
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"streamgpu/internal/core"
	"streamgpu/internal/dedup"
)

func main() {
	compress := flag.Bool("c", false, "compress")
	decompress := flag.Bool("d", false, "restore")
	graph := flag.Bool("graph", false, "print the pipeline's activity graph and exit")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "replicas of the hash+compress stage")
	batch := flag.Int("batch", dedup.DefaultBatchSize, "fragmentation batch size in bytes")
	seq := flag.Bool("seq", false, "use the sequential reference implementation")
	flag.Parse()

	if *graph {
		ts := core.NewToStream(core.Ordered()).
			Stage(func(any, func(any)) {}, core.Replicate(*workers), core.Name("hash+compress")).
			Stage(func(any, func(any)) {}, core.Name("reorder+write"))
		fmt.Println(ts.Graph())
		return
	}
	if *compress == *decompress {
		fmt.Fprintln(os.Stderr, "dedup: exactly one of -c or -d is required")
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "dedup: usage: dedup -c|-d <in> <out>")
		os.Exit(2)
	}

	in, err := os.ReadFile(args[0])
	check(err)
	outF, err := os.Create(args[1])
	check(err)
	defer outF.Close()

	start := time.Now()
	if *compress {
		var st dedup.Stats
		opt := dedup.Options{BatchSize: *batch, Workers: *workers}
		if *seq {
			st, err = dedup.CompressSeq(in, outF, opt)
		} else {
			st, err = dedup.CompressSPar(in, outF, opt)
		}
		check(err)
		el := time.Since(start)
		fmt.Printf("compressed %d -> %d bytes (ratio %.2fx) in %v (%.1f MB/s)\n",
			st.RawBytes, st.WrittenBytes, st.Ratio(), el,
			float64(st.RawBytes)/el.Seconds()/1e6)
		fmt.Printf("blocks: %d unique, %d duplicate\n", st.UniqueBlocks, st.DupBlocks)
		return
	}
	if *seq {
		check(dedup.Restore(bytes.NewReader(in), outF))
	} else {
		check(dedup.RestoreParallel(bytes.NewReader(in), outF, *workers))
	}
	fmt.Printf("restored %s in %v\n", args[1], time.Since(start))
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dedup: %v\n", err)
		os.Exit(1)
	}
}
