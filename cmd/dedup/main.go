// Command dedup compresses and restores files with the reimplemented
// PARSEC Dedup pipeline (Rabin chunking + SHA-1 dedup + LZSS):
//
//	dedup -c -workers 8 input.dat archive.sgdd   # compress
//	dedup -d archive.sgdd output.dat             # restore
//	dedup -graph                                 # print the SPar activity graph
//	dedup -c -gpu input.dat archive.sgdd         # compress on the simulated GPU
//
// The -gpu path runs SHA-1 and LZSS match-finding as simulated device
// kernels with retry and CPU degradation; the -fault-* knobs drive its
// seeded fault injector.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"streamgpu/internal/core"
	"streamgpu/internal/dedup"
	"streamgpu/internal/fault"
	"streamgpu/internal/telemetry"
)

func main() {
	compress := flag.Bool("c", false, "compress")
	decompress := flag.Bool("d", false, "restore")
	graph := flag.Bool("graph", false, "print the pipeline's activity graph and exit")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "replicas of the hash+compress stage")
	batch := flag.Int("batch", dedup.DefaultBatchSize, "fragmentation batch size in bytes")
	lanes := flag.Int("lzss-lanes", 0, "intra-batch compress lanes (0 = GOMAXPROCS-derived on parallel paths, negative = 1)")
	storeShards := flag.Int("store-shards", 0, "duplicate-store stripe count, rounded up to a power of two (0 = default)")
	seq := flag.Bool("seq", false, "use the sequential reference implementation")
	gpuRT := flag.Bool("gpu", false, "compress on the simulated GPU (hash + match kernels)")
	timeout := flag.Duration("timeout", 0, "cancel a parallel compress after this long (0 = no limit)")
	faultSeed := flag.Int64("fault-seed", 0, "gpu: fault injector seed")
	faultTransfer := flag.Float64("fault-transfer", 0, "gpu: transient transfer fault rate")
	faultKernel := flag.Float64("fault-kernel", 0, "gpu: transient kernel fault rate")
	faultKill := flag.Int("fault-kill-after", 0, "gpu: kill the device after N operations")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /debug/pprof on this address (pipeline and GPU metrics)")
	traceOut := flag.String("trace-out", "", "write per-batch stage enter/exit events as JSON to this file (SPar compress path)")
	flag.Parse()

	if *graph {
		ts := core.NewToStream(core.Ordered()).
			Stage(func(any, func(any)) {}, core.Replicate(*workers), core.Name("hash+compress")).
			Stage(func(any, func(any)) {}, core.Name("reorder+write"))
		fmt.Println(ts.Graph())
		return
	}
	if *compress == *decompress {
		fmt.Fprintln(os.Stderr, "dedup: exactly one of -c or -d is required")
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "dedup: usage: dedup -c|-d <in> <out>")
		os.Exit(2)
	}

	in, err := os.ReadFile(args[0])
	check(err)
	outF, err := os.Create(args[1])
	check(err)
	defer outF.Close()

	start := time.Now()
	if *compress {
		var st dedup.Stats
		opt := dedup.Options{BatchSize: *batch, Workers: *workers, Lanes: *lanes, StoreShards: *storeShards}
		if *metricsAddr != "" {
			opt.Metrics = telemetry.New()
			srv, err := telemetry.Serve(*metricsAddr, opt.Metrics)
			check(err)
			defer srv.Close()
			fmt.Printf("serving metrics on http://%s/metrics\n", srv.Addr)
		}
		if *traceOut != "" {
			opt.Trace = telemetry.NewStreamTracer(0)
		}
		switch {
		case *seq:
			st, err = dedup.CompressSeq(in, outF, opt)
		case *gpuRT:
			gopt := dedup.GPUOptions{Options: opt, Faults: fault.Config{
				Seed:         *faultSeed,
				TransferRate: *faultTransfer,
				KernelRate:   *faultKernel,
				KillAfterOps: *faultKill,
			}}
			var rep dedup.GPUReport
			st, rep, err = dedup.CompressGPU(in, outF, gopt)
			if err == nil && (rep.Retries > 0 || rep.CPUHash > 0 || rep.CPUCompress > 0 || rep.DeviceLost) {
				fmt.Printf("recovery: %d retries, %d/%d batches hashed/compressed on cpu, device lost: %v\n",
					rep.Retries, rep.CPUHash, rep.CPUCompress, rep.DeviceLost)
			}
		case *timeout > 0:
			st, err = compressWithTimeout(in, outF, opt, *timeout)
		default:
			st, err = dedup.CompressSPar(in, outF, opt)
		}
		check(err)
		el := time.Since(start)
		fmt.Printf("compressed %d -> %d bytes (ratio %.2fx) in %v (%.1f MB/s)\n",
			st.RawBytes, st.WrittenBytes, st.Ratio(), el,
			float64(st.RawBytes)/el.Seconds()/1e6)
		fmt.Printf("blocks: %d unique, %d duplicate\n", st.UniqueBlocks, st.DupBlocks)
		if *traceOut != "" {
			check(telemetry.WriteTraceFile(*traceOut, nil, opt.Trace))
			fmt.Printf("wrote %d trace events to %s\n", len(opt.Trace.Events()), *traceOut)
		}
		return
	}
	if *seq {
		check(dedup.Restore(bytes.NewReader(in), outF))
	} else {
		check(dedup.RestoreParallel(bytes.NewReader(in), outF, *workers))
	}
	fmt.Printf("restored %s in %v\n", args[1], time.Since(start))
}

// compressWithTimeout runs the SPar pipeline under a deadline; expiry
// cancels the stream and surfaces as an error.
func compressWithTimeout(in []byte, outF *os.File, opt dedup.Options, d time.Duration) (dedup.Stats, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return dedup.CompressSParContext(ctx, in, outF, opt)
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dedup: %v\n", err)
		os.Exit(1)
	}
}
