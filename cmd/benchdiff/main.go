// Command benchdiff compares a fresh host-benchmark report (cmd/benchhost
// output) against a committed baseline and exits non-zero on regression:
//
//	go run ./cmd/benchhost > BENCH_host.json
//	go run ./cmd/benchdiff -base BENCH_baseline.json -new BENCH_host.json
//
// Throughput thresholds are normalized by each report's Calib score (the
// machine's single-thread SHA-1 MB/s), so the committed baseline remains
// meaningful on faster or slower hardware. A result fails when its value
// drops more than -max-regress below the scaled baseline, or when its
// allocs/op exceeds the baseline count by more than -alloc-slack. Entries
// with a negative allocs/op on either side are alloc-exempt (the suite
// marks multi-goroutine measurements that way). Entries with unit "x"
// (dimensionless ratios such as dedup_spar_speedup) skip calib scaling.
//
// Repeatable -require name:value flags assert absolute floors on the fresh
// report — e.g. -require dedup_spar_speedup:1.05 makes the gate fail unless
// the parallel pipeline actually beats the sequential one:
//
//	go run ./cmd/benchdiff -require dedup_spar_speedup:1.05
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"streamgpu/internal/bench"
)

// requireFlag collects repeatable -require name:value assertions.
type requireFlag struct {
	names  []string
	floors []float64
}

func (r *requireFlag) String() string {
	var parts []string
	for i := range r.names {
		parts = append(parts, fmt.Sprintf("%s:%g", r.names[i], r.floors[i]))
	}
	return strings.Join(parts, ",")
}

func (r *requireFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, ":")
	if !ok || name == "" {
		return fmt.Errorf("want name:value, got %q", s)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad threshold in %q: %w", s, err)
	}
	r.names = append(r.names, name)
	r.floors = append(r.floors, f)
	return nil
}

func main() {
	basePath := flag.String("base", "BENCH_baseline.json", "committed baseline report")
	newPath := flag.String("new", "BENCH_host.json", "fresh report to check")
	maxRegress := flag.Float64("max-regress", 0.15, "tolerated fractional throughput drop after calibration scaling")
	allocSlack := flag.Float64("alloc-slack", 0.25, "tolerated absolute allocs/op increase")
	var require requireFlag
	flag.Var(&require, "require", "absolute floor on a fresh result, as name:value (repeatable)")
	flag.Parse()

	base, err := loadReport(*basePath)
	if err != nil {
		fatal(err)
	}
	fresh, err := loadReport(*newPath)
	if err != nil {
		fatal(err)
	}
	entries, err := bench.Diff(base, fresh, bench.DiffOptions{
		MaxRegress: *maxRegress,
		AllocSlack: *allocSlack,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("calib: base %.1f, fresh %.1f (scale %.3f)\n",
		base.Calib, fresh.Calib, fresh.Calib/base.Calib)
	fmt.Printf("%-20s %12s %12s %7s %9s %9s\n",
		"name", "base*", "fresh", "ratio", "allocs0", "allocs1")
	for _, e := range entries {
		status := "ok"
		if e.Failed {
			status = "FAIL: " + e.Reason
		}
		fmt.Printf("%-20s %12.2f %12.2f %6.2fx %9s %9s  %s\n",
			e.Name, e.Base, e.Fresh, e.Ratio,
			fmtAllocs(e.BaseAllocs), fmtAllocs(e.NewAllocs), status)
	}
	failures := len(bench.DiffFailures(entries))
	freshByName := make(map[string]float64, len(fresh.Results))
	for _, r := range fresh.Results {
		freshByName[r.Name] = r.Value
	}
	for i, name := range require.names {
		v, ok := freshByName[name]
		switch {
		case !ok:
			fmt.Printf("require %-20s FAIL: no such result in fresh report\n", name)
			failures++
		case v < require.floors[i]:
			fmt.Printf("require %-20s FAIL: %.3f below required %.3f\n", name, v, require.floors[i])
			failures++
		default:
			fmt.Printf("require %-20s ok: %.3f >= %.3f\n", name, v, require.floors[i])
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

func loadReport(path string) (bench.HostReport, error) {
	var rep bench.HostReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func fmtAllocs(a float64) string {
	if a < 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", a)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
