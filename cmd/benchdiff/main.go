// Command benchdiff compares a fresh host-benchmark report (cmd/benchhost
// output) against a committed baseline and exits non-zero on regression:
//
//	go run ./cmd/benchhost > BENCH_host.json
//	go run ./cmd/benchdiff -base BENCH_baseline.json -new BENCH_host.json
//
// Throughput thresholds are normalized by each report's Calib score (the
// machine's single-thread SHA-1 MB/s), so the committed baseline remains
// meaningful on faster or slower hardware. A result fails when its value
// drops more than -max-regress below the scaled baseline, or when its
// allocs/op exceeds the baseline count by more than -alloc-slack. Entries
// with a negative allocs/op on either side are alloc-exempt (the suite
// marks multi-goroutine measurements that way).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"streamgpu/internal/bench"
)

func main() {
	basePath := flag.String("base", "BENCH_baseline.json", "committed baseline report")
	newPath := flag.String("new", "BENCH_host.json", "fresh report to check")
	maxRegress := flag.Float64("max-regress", 0.15, "tolerated fractional throughput drop after calibration scaling")
	allocSlack := flag.Float64("alloc-slack", 0.25, "tolerated absolute allocs/op increase")
	flag.Parse()

	base, err := loadReport(*basePath)
	if err != nil {
		fatal(err)
	}
	fresh, err := loadReport(*newPath)
	if err != nil {
		fatal(err)
	}
	entries, err := bench.Diff(base, fresh, bench.DiffOptions{
		MaxRegress: *maxRegress,
		AllocSlack: *allocSlack,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("calib: base %.1f, fresh %.1f (scale %.3f)\n",
		base.Calib, fresh.Calib, fresh.Calib/base.Calib)
	fmt.Printf("%-20s %12s %12s %7s %9s %9s\n",
		"name", "base*", "fresh", "ratio", "allocs0", "allocs1")
	for _, e := range entries {
		status := "ok"
		if e.Failed {
			status = "FAIL: " + e.Reason
		}
		fmt.Printf("%-20s %12.2f %12.2f %6.2fx %9s %9s  %s\n",
			e.Name, e.Base, e.Fresh, e.Ratio,
			fmtAllocs(e.BaseAllocs), fmtAllocs(e.NewAllocs), status)
	}
	if bad := bench.DiffFailures(entries); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s)\n", len(bad))
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

func loadReport(path string) (bench.HostReport, error) {
	var rep bench.HostReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func fmtAllocs(a float64) string {
	if a < 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", a)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
