// Command figures regenerates every figure of the paper's evaluation
// section as terminal tables (values + speedups + ASCII bars):
//
//	figures            # all figures at default scale
//	figures -fig 1     # the Mandelbrot optimization ladder
//	figures -fig 4     # programming-model comparison (1 and 2 GPUs)
//	figures -fig 5     # Dedup throughput over the three datasets
//	figures -fig fleet # health-aware vs blind placement on a degraded fleet
//	figures -fig 1 -json > BENCH_fig1.json   # machine-readable rows
//	figures -fig 1 -metrics-addr :9090       # live /metrics while running
//
// Experiments run in virtual time on the simulated Titan XP pair; see
// DESIGN.md for the methodology and EXPERIMENTS.md for paper-vs-measured.
// With -json each figure row becomes one JSON Lines record (figure, name,
// unit, mean, stddev, speedup, extra columns such as the Fig. 1 utilization
// measures); tables otherwise render as text. -metrics-addr serves the
// telemetry registry (Prometheus text + JSON + pprof) for the duration of
// the run; GPU durations exposed there are virtual seconds.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"streamgpu/internal/bench"
	"streamgpu/internal/gpu"
	"streamgpu/internal/stats"
	"streamgpu/internal/telemetry"
	"streamgpu/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 4, 5 or all")
	ablation := flag.Bool("ablation", false, "also run the ablation sweeps (batch rows, worker counts, Dedup batch size)")
	dedupScale := flag.Float64("dedup-scale", 1.0/64, "dataset scale for Fig. 5 (1.0 = the paper's 185/816/202 MB)")
	batchBytes := flag.Int("batch-bytes", 128*1024, "Dedup batch size in bytes (the paper's 1 MiB at scale 1.0)")
	niter := flag.Int("niter", 1000, "physically computed Mandelbrot iterations (WorkScale restores the paper's 200k)")
	fleetSpec := flag.String("fleet", "titanxp*4", "Fig. 7 fleet spec, e.g. 'titanxp*2,titanxp@clock=0.7' (see internal/gpu.ParseFleet)")
	jsonOut := flag.Bool("json", false, "emit figure rows as JSON Lines on stdout instead of tables")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /debug/pprof on this address while running")
	selfCheck := flag.Bool("metrics-selfcheck", false, "after the run, scrape the own /metrics endpoint and fail unless it exposes GPU metrics")
	traceOut := flag.String("trace-out", "", "write the harness span trace (one span per figure row) to this file")
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *niter > 0 {
		cfg.Params.Niter = *niter
		cfg.Cal.WorkScale = 200000 / *niter
	}

	var srv *telemetry.Server
	if *metricsAddr != "" || *selfCheck {
		cfg.Telemetry = telemetry.New()
		addr := *metricsAddr
		if addr == "" {
			addr = "127.0.0.1:0" // selfcheck without an explicit address
		}
		var err error
		srv, err = telemetry.Serve(addr, cfg.Telemetry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", srv.Addr)
	}
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tracer = telemetry.NewTracer(0)
	}

	// emit renders one finished table, honouring -json, and records a span
	// per row so -trace-out shows where the harness spent its wall time.
	emit := func(id string, t *stats.Table) {
		if tracer != nil {
			sp := tracer.Start(id)
			sp.Annotate("rows", fmt.Sprint(len(t.Rows)))
			sp.End()
		}
		if *jsonOut {
			if err := t.WriteJSON(os.Stdout, id); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			return
		}
		fmt.Println(t)
	}

	wantMandel := *fig == "all" || *fig == "1" || *fig == "4" || *ablation
	wantDedup := *fig == "all" || *fig == "5"
	wantFleet := *fig == "all" || *fig == "7" || *fig == "fleet"
	if !wantMandel && !wantDedup && !wantFleet {
		fmt.Fprintf(os.Stderr, "figures: unknown -fig %q (want 1, 4, 5, 7/fleet or all)\n", *fig)
		os.Exit(2)
	}

	if wantMandel {
		fmt.Fprintln(os.Stderr, "computing Mandelbrot iteration cache...")
		pr := bench.NewPrep(cfg)
		if *fig == "all" || *fig == "1" {
			emit("fig1", pr.Fig1())
		}
		if *fig == "all" || *fig == "4" {
			emit("fig4-1gpu", pr.Fig4(1))
			emit("fig4-2gpu", pr.Fig4(2))
		}
		if *ablation {
			emit("sweep-batch-rows", pr.SweepBatchRows(bench.CUDA, []int{1, 2, 4, 8, 16, 32, 64, 128}))
			emit("sweep-workers", pr.SweepWorkers(bench.SPar, []int{1, 2, 4, 8, 16, 19, 24}))
		}
	}
	if *ablation {
		spec := workload.Spec{Kind: workload.Linux, Size: 4 << 20, Seed: 5}
		v := bench.DedupVariant{Label: "SPar+CUDA batch", API: bench.CUDA, Batched: true, Spaces: 1, GPUs: 1}
		emit("sweep-dedup-batch", bench.SweepDedupBatchSize(spec, cfg.Cal, v,
			[]int{16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024}))
	}
	if wantDedup {
		for _, spec := range workload.PaperSpecs(*dedupScale) {
			fmt.Fprintf(os.Stderr, "preparing dataset %s (%.1f MB)...\n", spec.Kind, float64(spec.Size)/1e6)
			dp := bench.NewDedupPrep(spec, *batchBytes)
			emit("fig5-"+spec.Kind.String(), bench.Fig5(dp, cfg.Cal))
		}
	}
	if wantFleet {
		fleet, err := gpu.ParseFleet(*fleetSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: -fleet: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "running the placement comparison on a degraded %d-device fleet...\n", len(fleet))
		emit("fig7-fleet", bench.FigFleet(bench.FleetConfig{Fleet: fleet}))
	}

	if *selfCheck {
		if err := scrapeSelf(srv.Addr); err != nil {
			fmt.Fprintf(os.Stderr, "figures: metrics selfcheck failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "metrics selfcheck ok")
	}
	if *traceOut != "" {
		if err := telemetry.WriteTraceFile(*traceOut, tracer, nil); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote trace to %s\n", *traceOut)
	}
}

// scrapeSelf fetches the process's own metrics endpoint and verifies the GPU
// instrumentation actually exported something — the CI smoke test for the
// whole telemetry path.
func scrapeSelf(addr string) error {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	if len(body) == 0 {
		return fmt.Errorf("empty exposition")
	}
	for _, want := range []string{"gpu_kernels_launched_total", "gpu_h2d_bytes_total"} {
		if !bytes.Contains(body, []byte(want)) {
			return fmt.Errorf("exposition missing %s", want)
		}
	}
	return nil
}
