// Command figures regenerates every figure of the paper's evaluation
// section as terminal tables (values + speedups + ASCII bars):
//
//	figures            # all figures at default scale
//	figures -fig 1     # the Mandelbrot optimization ladder
//	figures -fig 4     # programming-model comparison (1 and 2 GPUs)
//	figures -fig 5     # Dedup throughput over the three datasets
//
// Experiments run in virtual time on the simulated Titan XP pair; see
// DESIGN.md for the methodology and EXPERIMENTS.md for paper-vs-measured.
package main

import (
	"flag"
	"fmt"
	"os"

	"streamgpu/internal/bench"
	"streamgpu/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 4, 5 or all")
	ablation := flag.Bool("ablation", false, "also run the ablation sweeps (batch rows, worker counts, Dedup batch size)")
	dedupScale := flag.Float64("dedup-scale", 1.0/64, "dataset scale for Fig. 5 (1.0 = the paper's 185/816/202 MB)")
	batchBytes := flag.Int("batch-bytes", 128*1024, "Dedup batch size in bytes (the paper's 1 MiB at scale 1.0)")
	niter := flag.Int("niter", 1000, "physically computed Mandelbrot iterations (WorkScale restores the paper's 200k)")
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *niter > 0 {
		cfg.Params.Niter = *niter
		cfg.Cal.WorkScale = 200000 / *niter
	}

	wantMandel := *fig == "all" || *fig == "1" || *fig == "4" || *ablation
	wantDedup := *fig == "all" || *fig == "5"
	if !wantMandel && !wantDedup {
		fmt.Fprintf(os.Stderr, "figures: unknown -fig %q (want 1, 4, 5 or all)\n", *fig)
		os.Exit(2)
	}

	if wantMandel {
		fmt.Fprintln(os.Stderr, "computing Mandelbrot iteration cache...")
		pr := bench.NewPrep(cfg)
		if *fig == "all" || *fig == "1" {
			fmt.Println(pr.Fig1())
		}
		if *fig == "all" || *fig == "4" {
			fmt.Println(pr.Fig4(1))
			fmt.Println(pr.Fig4(2))
		}
		if *ablation {
			fmt.Println(pr.SweepBatchRows(bench.CUDA, []int{1, 2, 4, 8, 16, 32, 64, 128}))
			fmt.Println(pr.SweepWorkers(bench.SPar, []int{1, 2, 4, 8, 16, 19, 24}))
		}
	}
	if *ablation {
		spec := workload.Spec{Kind: workload.Linux, Size: 4 << 20, Seed: 5}
		v := bench.DedupVariant{Label: "SPar+CUDA batch", API: bench.CUDA, Batched: true, Spaces: 1, GPUs: 1}
		fmt.Println(bench.SweepDedupBatchSize(spec, cfg.Cal, v,
			[]int{16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024}))
	}
	if wantDedup {
		for _, spec := range workload.PaperSpecs(*dedupScale) {
			fmt.Fprintf(os.Stderr, "preparing dataset %s (%.1f MB)...\n", spec.Kind, float64(spec.Size)/1e6)
			dp := bench.NewDedupPrep(spec, *batchBytes)
			fmt.Println(bench.Fig5(dp, cfg.Cal))
		}
	}
}
