// Command benchhost runs the host-throughput suite (internal/bench.RunHost)
// and writes the report as JSON on stdout:
//
//	go run ./cmd/benchhost > BENCH_host.json
//	go run ./cmd/benchhost -size-mb 8 -min-ms 500
//
// Unlike cmd/figures, which reports virtual time on the simulated device,
// every number here is real host wall clock: Dedup MB/s end-to-end and per
// stage, Mandelbrot rows/s on the FastFlow runtime, SPSC queue ops/s, and
// heap allocations per operation on the kernel hot paths. Compare a fresh
// run against the committed baseline with cmd/benchdiff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"streamgpu/internal/bench"
)

func main() {
	sizeMB := flag.Int("size-mb", 4, "Dedup workload size in MiB")
	minMS := flag.Int("min-ms", 250, "minimum measuring window per entry, in milliseconds")
	workers := flag.Int("workers", 0, "parallel-pipeline width (0 = max(2, GOMAXPROCS))")
	flag.Parse()

	rep := bench.RunHost(bench.HostOptions{
		InputBytes: *sizeMB << 20,
		MinTime:    time.Duration(*minMS) * time.Millisecond,
		Workers:    *workers,
	})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchhost: %v\n", err)
		os.Exit(1)
	}
}
