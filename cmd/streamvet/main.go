// Command streamvet runs the repository's custom static-analysis suite — the
// machine-checked form of the pipeline and GPU API contracts (see DESIGN.md
// §8 and §13):
//
//	gpuwait    completion events from gpu.Stream ops must be waited on or kept
//	gpufree    gpu.Buf allocations must be freed or escape
//	runerr     ff/core/tbb Run/RunContext errors must be checked
//	stagesend  stage-body channel sends must select on cancel/done
//	faultseed  fault.Config in tests must set Seed
//	metriclabel  telemetry metric registrations must use non-empty,
//	           kind-consistent names and one call site per series
//	poolrelease  pool.Get values must be released or escape
//	deadlinecheck  qos.Sched.Enqueue callers must consult the request
//	           deadline or document the exemption
//	lockorder  lock acquisition order must be consistent across the program
//	ctxprop    ctx-receiving functions must thread ctx to blocking work
//	goleak     spawned goroutines must have a reachable channel release path
//	escapepool pool.Get values must reach Release on every path, through callees
//
// Diagnostics can be suppressed per line with a mandatory reason:
//
//	//streamvet:ignore <analyzer> <reason>
//
// on the flagged line or the line above. A directive without a reason is
// itself a diagnostic.
//
// Usage:
//
//	go run ./cmd/streamvet [-json] [packages]   # default ./...
//
// -json writes every diagnostic (including suppressed ones, with their
// reasons) as an indented JSON array on stdout instead of text output.
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on load or
// internal errors. Unlike `go vet`, streamvet also analyzes test files.
package main

import (
	"flag"
	"fmt"
	"os"

	"streamgpu/internal/analysis"
	"streamgpu/internal/analysis/ctxprop"
	"streamgpu/internal/analysis/deadlinecheck"
	"streamgpu/internal/analysis/escapepool"
	"streamgpu/internal/analysis/faultseed"
	"streamgpu/internal/analysis/goleak"
	"streamgpu/internal/analysis/gpufree"
	"streamgpu/internal/analysis/gpuwait"
	"streamgpu/internal/analysis/lockorder"
	"streamgpu/internal/analysis/metriclabel"
	"streamgpu/internal/analysis/poolrelease"
	"streamgpu/internal/analysis/runerr"
	"streamgpu/internal/analysis/stagesend"
)

// suite is every analyzer streamvet runs, in diagnostic-name order.
var suite = []*analysis.Analyzer{
	ctxprop.Analyzer,
	deadlinecheck.Analyzer,
	escapepool.Analyzer,
	faultseed.Analyzer,
	goleak.Analyzer,
	gpufree.Analyzer,
	gpuwait.Analyzer,
	lockorder.Analyzer,
	metriclabel.Analyzer,
	poolrelease.Analyzer,
	runerr.Analyzer,
	stagesend.Analyzer,
}

func main() {
	help := flag.Bool("help", false, "print analyzer documentation and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (includes suppressed ones)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: streamvet [-help] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *help {
		for _, a := range suite {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamvet:", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamvet:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamvet:", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, loader.Fset, dir, diags); err != nil {
			fmt.Fprintln(os.Stderr, "streamvet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			if !d.Suppressed {
				os.Exit(1)
			}
		}
		return
	}
	if analysis.PrintDiagnostics(os.Stdout, loader.Fset, diags) > 0 {
		os.Exit(1)
	}
}
