// Command streamd runs the resident streaming service front-end: the Dedup
// and Mandelbrot pipelines as long-lived services behind the length-prefixed
// wire protocol (internal/server/wire), with bounded admission, cross-request
// batch coalescing, per-tenant metrics, and graceful drain on SIGINT/SIGTERM:
//
//	streamd -addr :7070 -metrics-addr :7071 -max-inflight 128
//	streamd -addr :7070 -gpu -fault-kernel 0.01     # GPU path with faults
//	streamd -tenant-weights default:4,9:1:2.5e5 -default-deadline 100ms
//	streamd -gpu -gpus 4 -quarantine-threshold 0.5  # health-aware device pool
//
// With -cluster, streamd runs as one node of a consistent-hash sharded
// cluster (internal/cluster): tenants are placed on nodes by a seeded ring,
// SWIM-style gossip tracks membership, misplaced connections are redirected
// (or, with -forward, proxied) to their owner, and the dedup block index is
// shared cluster-wide. Start the first node bare and point the others at it:
//
//	streamd -cluster -addr :7070 -advertise host1:7070
//	streamd -cluster -addr :7070 -advertise host2:7070 -join host1:7070
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"streamgpu/internal/cluster"
	"streamgpu/internal/dedup"
	"streamgpu/internal/fault"
	"streamgpu/internal/gpu"
	"streamgpu/internal/health"
	"streamgpu/internal/server"
	"streamgpu/internal/server/qos"
	"streamgpu/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address for the stream protocol")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /debug/pprof on this address")
	maxInflight := flag.Int("max-inflight", 64, "admission high-water mark: accepted requests in flight before TReject")
	linger := flag.Duration("linger", 2*time.Millisecond, "max wait for a partial dedup batch to fill before sealing")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "replicas of each processing stage")
	batch := flag.Int("batch", dedup.DefaultBatchSize, "dedup coalescing target in bytes")
	lanes := flag.Int("lzss-lanes", 0, "intra-batch compress lanes per worker (0 = GOMAXPROCS-derived, negative = 1)")
	storeShards := flag.Int("store-shards", 0, "duplicate-store stripe count, rounded up to a power of two (0 = default)")
	gpuRT := flag.Bool("gpu", false, "process dedup batches on the simulated GPU")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on shutdown before forcing")
	faultSeed := flag.Int64("fault-seed", 0, "gpu: fault injector seed")
	faultTransfer := flag.Float64("fault-transfer", 0, "gpu: transient transfer fault rate")
	faultKernel := flag.Float64("fault-kernel", 0, "gpu: transient kernel fault rate")
	faultKill := flag.Int("fault-kill-after", 0, "gpu: kill the device after N operations")
	tenantWeights := flag.String("tenant-weights", "", "per-tenant QoS table: tenant:weight[:rate[:burst]],... (tenant may be 'default')")
	defaultDeadline := flag.Duration("default-deadline", 0, "deadline for requests that carry none on the wire (0 = off)")
	gpus := flag.Int("gpus", 1, "gpu: simulated device pool size")
	fleetSpec := flag.String("fleet", "", "gpu: heterogeneous fleet spec, e.g. 'titanxp*2,titanxp@clock=0.7@gen=2' (overrides -gpus)")
	quarThreshold := flag.Float64("quarantine-threshold", 0, "gpu: fault rate over the health window that quarantines a device (0 = default 0.5)")
	probeInterval := flag.Duration("probe-interval", 0, "gpu: run background diag probes this often and feed the health scoreboard (0 = off)")
	probeLevel := flag.Int("probe-level", 1, "gpu: background probe run level 1..3")
	blindPlacement := flag.Bool("blind-placement", false, "gpu: route batches by sequence modulo instead of health-score-weighted placement")
	clusterMode := flag.Bool("cluster", false, "run as a cluster node (consistent-hash sharding + gossip membership)")
	join := flag.String("join", "", "cluster: comma-separated seed node addresses to gossip with")
	advertise := flag.String("advertise", "", "cluster: address peers and clients reach this node at (default: the listener's)")
	forward := flag.Bool("forward", false, "cluster: proxy misplaced connections to their owner instead of redirecting")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "cluster: virtual nodes per member on the ring")
	ringSeed := flag.Int64("ring-seed", 0, "cluster: ring layout seed (must match across nodes)")
	gossipInterval := flag.Duration("gossip-interval", 200*time.Millisecond, "cluster: membership probe period")
	nodeFaultSeed := flag.Int64("node-fault-seed", 0, "cluster: node-level fault injector seed")
	nodeKillAfter := flag.Int("node-kill-after", 0, "cluster: crash this node after N accepted connections/gossip ops (failover drills)")
	flag.Parse()

	table, err := qos.ParseTable(*tenantWeights)
	check(err)
	var fleet []gpu.DeviceSpec
	if *fleetSpec != "" {
		fleet, err = gpu.ParseFleet(*fleetSpec)
		check(err)
	}

	metrics := telemetry.New()
	if *metricsAddr != "" {
		msrv, err := telemetry.Serve(*metricsAddr, metrics)
		check(err)
		defer msrv.Close()
		fmt.Printf("serving metrics on http://%s/metrics\n", msrv.Addr)
	}

	scfg := server.Config{
		MaxInflight: *maxInflight,
		Linger:      *linger,
		Workers:     *workers,
		BatchSize:   *batch,
		GPU:         *gpuRT,
		Faults: fault.Config{
			Seed:         *faultSeed,
			TransferRate: *faultTransfer,
			KernelRate:   *faultKernel,
			KillAfterOps: *faultKill,
		},
		Metrics:         metrics,
		QoS:             table,
		DefaultDeadline: *defaultDeadline,
		Devices:         *gpus,
		Fleet:           fleet,
		Health:          health.Config{Threshold: *quarThreshold},
		ProbeInterval:   *probeInterval,
		ProbeLevel:      *probeLevel,
		BlindPlacement:  *blindPlacement,
		Lanes:           *lanes,
		StoreShards:     *storeShards,
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *clusterMode {
		var seeds []string
		for _, a := range strings.Split(*join, ",") {
			if a = strings.TrimSpace(a); a != "" {
				seeds = append(seeds, a)
			}
		}
		node := cluster.NewNode(cluster.Config{
			Addr:           *addr,
			Advertise:      *advertise,
			Join:           seeds,
			Forward:        *forward,
			VNodes:         *vnodes,
			RingSeed:       *ringSeed,
			GossipInterval: *gossipInterval,
			Faults:         fault.Config{Seed: *nodeFaultSeed, KillAfterOps: *nodeKillAfter},
			Server:         scfg,
			Metrics:        metrics,
		})
		check(node.Start())
		fmt.Printf("streamd cluster node %s (join %q, forward %v)\n", node.Addr(), *join, *forward)
		select {
		case s := <-sig:
			fmt.Printf("streamd: %v — stopping node\n", s)
			check(node.Close())
			return
		case <-node.Dead():
			// The node-level fault injector (or an internal crash) killed the
			// node: exit like the process died, so supervisors restart it.
			node.Close()
			fmt.Fprintln(os.Stderr, "streamd: node died (fault injection)")
			os.Exit(1)
		}
	}

	srv := server.New(scfg)

	ln, err := net.Listen("tcp", *addr)
	check(err)
	fmt.Printf("streamd listening on %s (max-inflight %d, linger %v, gpu %v)\n",
		ln.Addr(), *maxInflight, *linger, *gpuRT)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case s := <-sig:
		fmt.Printf("streamd: %v — draining (budget %v)\n", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := srv.Shutdown(ctx)
		cancel()
		<-done
		check(err)
		fmt.Println("streamd: drained cleanly")
	case err := <-done:
		check(err)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamd: %v\n", err)
		os.Exit(1)
	}
}
