// Command streamd runs the resident streaming service front-end: the Dedup
// and Mandelbrot pipelines as long-lived services behind the length-prefixed
// wire protocol (internal/server/wire), with bounded admission, cross-request
// batch coalescing, per-tenant metrics, and graceful drain on SIGINT/SIGTERM:
//
//	streamd -addr :7070 -metrics-addr :7071 -max-inflight 128
//	streamd -addr :7070 -gpu -fault-kernel 0.01     # GPU path with faults
//	streamd -tenant-weights default:4,9:1:2.5e5 -default-deadline 100ms
//	streamd -gpu -gpus 4 -quarantine-threshold 0.5  # health-aware device pool
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"streamgpu/internal/dedup"
	"streamgpu/internal/fault"
	"streamgpu/internal/health"
	"streamgpu/internal/server"
	"streamgpu/internal/server/qos"
	"streamgpu/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address for the stream protocol")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /debug/pprof on this address")
	maxInflight := flag.Int("max-inflight", 64, "admission high-water mark: accepted requests in flight before TReject")
	linger := flag.Duration("linger", 2*time.Millisecond, "max wait for a partial dedup batch to fill before sealing")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "replicas of each processing stage")
	batch := flag.Int("batch", dedup.DefaultBatchSize, "dedup coalescing target in bytes")
	gpuRT := flag.Bool("gpu", false, "process dedup batches on the simulated GPU")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on shutdown before forcing")
	faultSeed := flag.Int64("fault-seed", 0, "gpu: fault injector seed")
	faultTransfer := flag.Float64("fault-transfer", 0, "gpu: transient transfer fault rate")
	faultKernel := flag.Float64("fault-kernel", 0, "gpu: transient kernel fault rate")
	faultKill := flag.Int("fault-kill-after", 0, "gpu: kill the device after N operations")
	tenantWeights := flag.String("tenant-weights", "", "per-tenant QoS table: tenant:weight[:rate[:burst]],... (tenant may be 'default')")
	defaultDeadline := flag.Duration("default-deadline", 0, "deadline for requests that carry none on the wire (0 = off)")
	gpus := flag.Int("gpus", 1, "gpu: simulated device pool size")
	quarThreshold := flag.Float64("quarantine-threshold", 0, "gpu: fault rate over the health window that quarantines a device (0 = default 0.5)")
	flag.Parse()

	table, err := qos.ParseTable(*tenantWeights)
	check(err)

	metrics := telemetry.New()
	if *metricsAddr != "" {
		msrv, err := telemetry.Serve(*metricsAddr, metrics)
		check(err)
		defer msrv.Close()
		fmt.Printf("serving metrics on http://%s/metrics\n", msrv.Addr)
	}

	srv := server.New(server.Config{
		MaxInflight: *maxInflight,
		Linger:      *linger,
		Workers:     *workers,
		BatchSize:   *batch,
		GPU:         *gpuRT,
		Faults: fault.Config{
			Seed:         *faultSeed,
			TransferRate: *faultTransfer,
			KernelRate:   *faultKernel,
			KillAfterOps: *faultKill,
		},
		Metrics:         metrics,
		QoS:             table,
		DefaultDeadline: *defaultDeadline,
		Devices:         *gpus,
		Health:          health.Config{Threshold: *quarThreshold},
	})

	ln, err := net.Listen("tcp", *addr)
	check(err)
	fmt.Printf("streamd listening on %s (max-inflight %d, linger %v, gpu %v)\n",
		ln.Addr(), *maxInflight, *linger, *gpuRT)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case s := <-sig:
		fmt.Printf("streamd: %v — draining (budget %v)\n", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := srv.Shutdown(ctx)
		cancel()
		<-done
		check(err)
		fmt.Println("streamd: drained cleanly")
	case err := <-done:
		check(err)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamd: %v\n", err)
		os.Exit(1)
	}
}
