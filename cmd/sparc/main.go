// Command sparc is the SPar front-end analogue: it parses the
// [[spar::...]] annotations in a source file, validates SPar's grammar
// rules, and prints the parallel activity graph the SPar compiler would
// generate (the pipeline/farm structure of the paper's Fig. 3):
//
//	sparc -env workers=10 listing1.cpp
//	echo '[[spar::ToStream]] for(;;) { [[spar::Stage, spar::Replicate(4)]] {} }' | sparc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"streamgpu/internal/spanno"
)

func main() {
	env := flag.String("env", "", "comma-separated name=value bindings for symbolic Replicate degrees (e.g. workers=10)")
	def := flag.Int("default-replicate", 1, "degree for unresolved Replicate symbols")
	verbose := flag.Bool("v", false, "also print every parsed annotation")
	flag.Parse()

	bindings := map[string]int{}
	if *env != "" {
		for _, kv := range strings.Split(*env, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				fail(fmt.Errorf("bad -env entry %q", kv))
			}
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				fail(fmt.Errorf("bad -env value %q: %v", kv, err))
			}
			bindings[strings.TrimSpace(parts[0])] = n
		}
	}

	var src []byte
	var err error
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		fail(fmt.Errorf("usage: sparc [flags] [file]"))
	}
	if err != nil {
		fail(err)
	}

	anns, err := spanno.Parse(string(src))
	if err != nil {
		fail(err)
	}
	if *verbose {
		for _, a := range anns {
			fmt.Printf("line %d: %s", a.Line, a.Identifier())
			for _, at := range a.Attrs[1:] {
				fmt.Printf(", %s(%s)", at.Kind, strings.Join(at.Args, ", "))
			}
			fmt.Println()
		}
	}
	g, err := spanno.BuildGraph(anns, bindings, *def)
	if err != nil {
		fail(err)
	}
	fmt.Println(g)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "sparc: %v\n", err)
	os.Exit(1)
}
