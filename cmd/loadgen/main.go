// Command loadgen drives a running streamd with closed-loop clients and
// prints a JSON report whose results section is benchdiff-compatible
// (compare runs with `benchdiff -base old.json -fresh new.json`):
//
//	loadgen -addr localhost:7070 -clients 16 -requests 64 -verify > run.json
//	loadgen -addr localhost:7070 -service mandel -clients 8
//
// Against a cluster, -addr takes a comma-separated node list; clients spread
// across the nodes, follow TRedirect verdicts to tenant owners, fail over
// when a node dies mid-stream, and the report adds per-node throughput:
//
//	loadgen -addr host1:7070,host2:7070,host3:7070 -verify > cluster.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"streamgpu/internal/loadgen"
	"streamgpu/internal/server/wire"
)

func main() {
	addr := flag.String("addr", "localhost:7070", "streamd address, or a comma-separated cluster node list")
	service := flag.String("service", "dedup", "target service: dedup or mandel")
	clients := flag.Int("clients", 8, "closed-loop client connections")
	requests := flag.Int("requests", 32, "requests per client")
	tenants := flag.Int("tenants", 4, "spread clients across this many tenant IDs")
	minBytes := flag.Int("min-bytes", 1<<10, "dedup: min request payload")
	maxBytes := flag.Int("max-bytes", 64<<10, "dedup: max request payload")
	dim := flag.Int("dim", 256, "mandel: image dimension")
	niter := flag.Int("niter", 256, "mandel: max iterations")
	rows := flag.Int("rows", 16, "mandel: max rows per request")
	seed := flag.Int64("seed", 1, "payload RNG seed")
	verify := flag.Bool("verify", false, "restore every archive / recompute every row and compare")
	dialTimeout := flag.Duration("dial-timeout", 5*time.Second, "per-client dial timeout")
	deadline := flag.Duration("deadline", 0, "per-request deadline shipped on the wire (0 = none)")
	retries := flag.Int("retries", 0, "re-offers per rejected request, honoring retry-after hints")
	backoffCap := flag.Duration("backoff-cap", time.Second, "max sleep before one retry")
	firstTenant := flag.Uint("first-tenant", 0, "offset for the tenant ID range")
	flag.Parse()

	var svc wire.Svc
	switch *service {
	case "dedup":
		svc = wire.SvcDedup
	case "mandel":
		svc = wire.SvcMandel
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown service %q (want dedup or mandel)\n", *service)
		os.Exit(2)
	}

	var addrs []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}

	rep, err := loadgen.Run(loadgen.Config{
		Addrs:       addrs,
		Service:     svc,
		Clients:     *clients,
		Requests:    *requests,
		Tenants:     *tenants,
		MinBytes:    *minBytes,
		MaxBytes:    *maxBytes,
		Dim:         *dim,
		Niter:       *niter,
		RowsPerReq:  *rows,
		FirstTenant: uint32(*firstTenant),
		Seed:        *seed,
		Verify:      *verify,
		DialTimeout: *dialTimeout,
		Deadline:    *deadline,
		Retries:     *retries,
		BackoffCap:  *backoffCap,
	})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if encErr := enc.Encode(rep); encErr != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", encErr)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	if rep.RestoreFailures > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d restore failures\n", rep.RestoreFailures)
		os.Exit(1)
	}
}
