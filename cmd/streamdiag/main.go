// Command streamdiag runs the fleet diagnostic probe suite — the repo's
// analogue of `dcgmi diag` — against a simulated heterogeneous fleet:
//
//	streamdiag                                  # 1 Titan XP, quick level
//	streamdiag -fleet 'titanxp*4' -r 3          # full suite on four devices
//	streamdiag -fleet 'titanxp,titanxp@clock=0.7@gen=2' -r 2 -json
//	streamdiag -validate report.json            # schema-check a saved report
//	streamdiag -fault-dev 1 -fault-transfer 0.5 # inject faults into device 1
//
// Run levels mirror dcgmi: -r 1 = device_query + vector_add, -r 2 adds the
// pinned-vs-pageable bandwidth sweep, -r 3 adds the sustained bus grind.
// Exit status is 0 only when every probe on every device passes (or, with
// -validate, when the report is structurally valid).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"streamgpu/internal/diag"
	"streamgpu/internal/fault"
	"streamgpu/internal/gpu"
)

func main() {
	fleetSpec := flag.String("fleet", "titanxp", "fleet spec, e.g. 'titanxp*2,titanxp@clock=0.7@gen=2' (see internal/gpu.ParseFleet)")
	level := flag.Int("r", 1, "run level 1..3 (cumulative, like dcgmi diag -r)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of text")
	tolerance := flag.Float64("tolerance", 0.5, "fraction of spec bandwidth a transfer must achieve to pass")
	vectorLen := flag.Int("vector-len", 64<<10, "vector_add element count")
	grindOps := flag.Int("grind-ops", 24, "bus_grind iteration count")
	validate := flag.String("validate", "", "validate a saved JSON report instead of running probes")
	faultSeed := flag.Int64("fault-seed", 0, "fault injection seed (0 disables injection)")
	faultTransfer := flag.Float64("fault-transfer", 0, "per-transfer fault probability")
	faultKernel := flag.Float64("fault-kernel", 0, "per-kernel fault probability")
	faultKillAfter := flag.Int("fault-kill-after", 0, "kill the device after this many operations (0 = never)")
	faultDev := flag.Int("fault-dev", -1, "device index to inject faults into (-1 = all devices)")
	flag.Parse()

	if *validate != "" {
		os.Exit(validateFile(*validate))
	}

	fleet, err := gpu.ParseFleet(*fleetSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamdiag: %v\n", err)
		os.Exit(2)
	}
	opt := diag.Options{
		Level:     *level,
		Fleet:     fleet,
		VectorLen: *vectorLen,
		GrindOps:  *grindOps,
		Tolerance: *tolerance,
	}
	if *faultSeed != 0 || *faultTransfer > 0 || *faultKernel > 0 || *faultKillAfter > 0 {
		fc := fault.Config{
			Seed:         *faultSeed,
			TransferRate: *faultTransfer,
			KernelRate:   *faultKernel,
			KillAfterOps: *faultKillAfter,
		}
		target := *faultDev
		opt.FaultsFor = func(dev int) fault.Config {
			if target >= 0 && dev != target {
				return fault.Config{}
			}
			return fc
		}
	}

	rep := diag.Run(opt)
	if err := diag.Validate(rep); err != nil {
		fmt.Fprintf(os.Stderr, "streamdiag: self-check failed: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "streamdiag: %v\n", err)
			os.Exit(2)
		}
	} else {
		fmt.Print(rep.Text())
	}
	if !rep.Pass {
		os.Exit(1)
	}
}

// validateFile schema-checks a saved -json report; 0 means valid.
func validateFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamdiag: %v\n", err)
		return 2
	}
	var rep diag.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "streamdiag: %s: %v\n", path, err)
		return 1
	}
	if err := diag.Validate(rep); err != nil {
		fmt.Fprintf(os.Stderr, "streamdiag: %s: %v\n", path, err)
		return 1
	}
	fmt.Printf("%s: valid (%d devices, level %d, pass=%v)\n", path, rep.Devices, rep.Level, rep.Pass)
	return 0
}
