// Command mandelstream runs the Mandelbrot Streaming application for real
// on the host, with any of the multicore runtimes, and writes the fractal
// as a PGM image:
//
//	mandelstream -dim 1000 -niter 2000 -runtime spar -workers 8 -o out.pgm
//
// Runtimes: seq, spar (the SPar DSL), ff (FastFlow-style), tbb (TBB-style),
// gpu (the simulated fault-tolerant GPU runner; see -gpus and the -fault-*
// injector knobs).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"streamgpu/internal/fault"
	"streamgpu/internal/mandel"
	"streamgpu/internal/tbb"
	"streamgpu/internal/telemetry"
)

func main() {
	dim := flag.Int("dim", 1000, "image dimension (dim×dim)")
	niter := flag.Int("niter", 2000, "maximum escape iterations")
	rt := flag.String("runtime", "spar", "runtime: seq, spar, ff, tbb, gpu")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "compute-stage replicas")
	tokens := flag.Int("tokens", 0, "TBB max live tokens (default 2×workers)")
	timeout := flag.Duration("timeout", 0, "cancel the spar run after this long (0 = no limit)")
	gpus := flag.Int("gpus", 1, "gpu runtime: number of simulated devices")
	gpuBatch := flag.Int("gpu-batch", 32, "gpu runtime: rows per kernel launch")
	faultSeed := flag.Int64("fault-seed", 0, "gpu runtime: fault injector seed")
	faultTransfer := flag.Float64("fault-transfer", 0, "gpu runtime: transient transfer fault rate on device 0")
	faultKernel := flag.Float64("fault-kernel", 0, "gpu runtime: transient kernel fault rate on device 0")
	faultKill := flag.Int("fault-kill-after", 0, "gpu runtime: kill device 0 after N operations")
	out := flag.String("o", "", "write the image as PGM to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /debug/pprof on this address (per-stage pipeline and GPU metrics)")
	traceOut := flag.String("trace-out", "", "write per-item stage enter/exit events as JSON to this file (spar and ff runtimes)")
	flag.Parse()

	p := mandel.Params{Dim: *dim, Niter: *niter, InitA: -2.0, InitB: -1.25, Range: 2.5}
	if *tokens <= 0 {
		*tokens = 2 * *workers
	}

	var obs mandel.Observer
	if *metricsAddr != "" {
		obs.Metrics = telemetry.New()
		srv, err := telemetry.Serve(*metricsAddr, obs.Metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mandelstream: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("serving metrics on http://%s/metrics\n", srv.Addr)
	}
	if *traceOut != "" {
		obs.Trace = telemetry.NewStreamTracer(0)
	}

	start := time.Now()
	var im *mandel.Image
	var err error
	switch *rt {
	case "seq":
		im, _ = mandel.RunSeq(p)
	case "spar":
		im, err = runSPar(p, *workers, *timeout, obs)
	case "ff":
		im, err = mandel.RunFFObserved(p, *workers, obs)
	case "tbb":
		s := tbb.NewScheduler(*workers)
		defer s.Shutdown()
		s.SetTelemetry(obs.Metrics)
		im = mandel.RunTBBObserved(p, s, *tokens, obs)
	case "gpu":
		cfg := mandel.FTConfig{NGPUs: *gpus, BatchSize: *gpuBatch, Telemetry: obs.Metrics}
		if *faultTransfer > 0 || *faultKernel > 0 || *faultKill > 0 {
			cfg.Faults = []fault.Config{{
				Seed:         *faultSeed,
				TransferRate: *faultTransfer,
				KernelRate:   *faultKernel,
				KillAfterOps: *faultKill,
			}}
		}
		var rep mandel.FTReport
		im, rep, err = mandel.RunGPUFT(p, cfg)
		if err == nil && rep != (mandel.FTReport{}) {
			fmt.Printf("recovery: %d retries, %d failovers, %d cpu batches, %d devices lost\n",
				rep.Retries, rep.FailedOver, rep.CPUBatches, rep.DevicesLost)
		}
	default:
		fmt.Fprintf(os.Stderr, "mandelstream: unknown runtime %q\n", *rt)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mandelstream: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	fmt.Printf("%s: %dx%d niter=%d workers=%d in %v (%.1f Mpixel/s)\n",
		*rt, *dim, *dim, *niter, *workers, elapsed,
		float64(*dim)*float64(*dim)/elapsed.Seconds()/1e6)

	if *traceOut != "" {
		if err := telemetry.WriteTraceFile(*traceOut, nil, obs.Trace); err != nil {
			fmt.Fprintf(os.Stderr, "mandelstream: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace events to %s\n", len(obs.Trace.Events()), *traceOut)
	}

	if *out != "" {
		if err := writePGM(*out, im); err != nil {
			fmt.Fprintf(os.Stderr, "mandelstream: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// runSPar runs the SPar pipeline, optionally under a timeout.
func runSPar(p mandel.Params, workers int, timeout time.Duration, obs mandel.Observer) (*mandel.Image, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return mandel.RunSParObserved(ctx, p, workers, obs)
}

// writePGM saves the frame as a binary PGM (P5).
func writePGM(path string, im *mandel.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "P5\n%d %d\n255\n", im.Dim, im.Dim)
	if _, err := w.Write(im.Pix); err != nil {
		return err
	}
	return w.Flush()
}
