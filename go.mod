module streamgpu

go 1.22
