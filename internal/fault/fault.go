// Package fault provides a deterministic, seeded fault injector for the
// simulated GPU layer.
//
// Real multi-GPU stream systems see three broad failure classes: transient
// transfer errors (PCIe hiccups, ECC retries), kernel faults (launch
// failures, aborted grids), and whole-device loss (driver reset, XID
// errors). The injector reproduces all three inside the discrete-event
// simulation: every device operation consults Check, which draws from a
// seeded PRNG, so a given seed yields the exact same fault sequence at the
// exact same virtual times on every run. That makes recovery-policy tests
// (retry, failover, CPU degradation) bit-reproducible.
//
// The des scheduler is cooperative and single-threaded, so the consultation
// order — hence the fault schedule — is a pure function of the seed and the
// workload. The injector needs and uses no locking.
package fault

import (
	"errors"
	"math/rand"
)

// ErrTransient marks a retryable fault: the operation failed but the device
// survives, and re-issuing the operation may succeed.
var ErrTransient = errors.New("transient device fault")

// ErrDeviceLost marks a permanent fault: the device is gone and every
// subsequent operation on it fails. Recovery means failing over to another
// device or degrading to the CPU path.
var ErrDeviceLost = errors.New("device lost")

// IsTransient reports whether err is (or wraps) a transient injected fault.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IsDeviceLost reports whether err is (or wraps) a device-loss fault.
func IsDeviceLost(err error) bool { return errors.Is(err, ErrDeviceLost) }

// Op classifies the device operation consulting the injector.
type Op int

const (
	// Transfer is any H2D/D2H/D2D copy.
	Transfer Op = iota
	// Kernel is a kernel execution.
	Kernel
)

// Class is the injector's verdict for one operation.
type Class int

const (
	// None: the operation proceeds normally.
	None Class = iota
	// Transient: the operation fails; a retry may succeed.
	Transient
	// DeviceLost: the device dies; this and all later operations fail.
	DeviceLost
)

// Config sets the fault rates. All rates are per-operation probabilities in
// [0, 1]; zero-value Config injects nothing.
type Config struct {
	// Seed drives the PRNG; the same seed reproduces the same fault
	// schedule for the same workload.
	Seed int64
	// TransferRate is the probability that a copy fails transiently.
	TransferRate float64
	// KernelRate is the probability that a kernel fails transiently.
	KernelRate float64
	// DeviceLossRate is the probability that any operation takes the whole
	// device down permanently.
	DeviceLossRate float64
	// KillAfterOps, when > 0, deterministically kills the device on the
	// Nth checked operation regardless of the rates — the knob for
	// "one GPU dies mid-run" failover tests.
	KillAfterOps int
}

// Stats counts what the injector has done, for tests asserting that faults
// actually fired.
type Stats struct {
	Checked    int  // operations that consulted the injector
	Transient  int  // transient faults injected
	DeviceLost bool // whether the device has been killed
}

// Injector is one device's fault source. Create one per device with New;
// share nothing between devices so their fault schedules are independent.
type Injector struct {
	cfg   Config
	rng   *rand.Rand
	stats Stats
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Check classifies the next operation of kind op. Once the device is lost,
// every call returns DeviceLost.
func (in *Injector) Check(op Op) Class {
	in.stats.Checked++
	if in.stats.DeviceLost {
		return DeviceLost
	}
	if in.cfg.KillAfterOps > 0 && in.stats.Checked >= in.cfg.KillAfterOps {
		in.stats.DeviceLost = true
		return DeviceLost
	}
	// One draw per operation: the cumulative-rate split keeps the verdict
	// reproducible even when rates change between runs with the same seed.
	u := in.rng.Float64()
	if u < in.cfg.DeviceLossRate {
		in.stats.DeviceLost = true
		return DeviceLost
	}
	rate := in.cfg.TransferRate
	if op == Kernel {
		rate = in.cfg.KernelRate
	}
	if u < in.cfg.DeviceLossRate+rate {
		in.stats.Transient++
		return Transient
	}
	return None
}

// Lost reports whether the device has been killed.
func (in *Injector) Lost() bool { return in.stats.DeviceLost }

// Stats returns a copy of the injection counters.
func (in *Injector) Stats() Stats { return in.stats }
