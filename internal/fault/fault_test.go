package fault

import "testing"

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := New(Config{Seed: 1})
	for i := 0; i < 10_000; i++ {
		if c := in.Check(Transfer); c != None {
			t.Fatalf("op %d: Check = %v, want None", i, c)
		}
	}
	if s := in.Stats(); s.Transient != 0 || s.DeviceLost {
		t.Fatalf("stats = %+v, want no injections", s)
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	cfg := Config{Seed: 42, TransferRate: 0.05, KernelRate: 0.03, DeviceLossRate: 0.001}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 5_000; i++ {
		op := Transfer
		if i%3 == 0 {
			op = Kernel
		}
		ca, cb := a.Check(op), b.Check(op)
		if ca != cb {
			t.Fatalf("op %d: schedules diverge: %v vs %v", i, ca, cb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	const rate = 0.1
	a := New(Config{Seed: 1, TransferRate: rate})
	b := New(Config{Seed: 2, TransferRate: rate})
	same := true
	for i := 0; i < 2_000; i++ {
		if a.Check(Transfer) != b.Check(Transfer) {
			same = false
		}
	}
	if same {
		t.Fatal("two seeds produced identical 2000-op schedules")
	}
}

func TestTransientRateRoughlyHolds(t *testing.T) {
	in := New(Config{Seed: 7, TransferRate: 0.1})
	n := 20_000
	for i := 0; i < n; i++ {
		in.Check(Transfer)
	}
	got := in.Stats().Transient
	if got < n/20 || got > n/5 {
		t.Fatalf("injected %d/%d transient faults, want ~10%%", got, n)
	}
}

func TestKillAfterOps(t *testing.T) {
	in := New(Config{Seed: 9, KillAfterOps: 5})
	for i := 1; i <= 4; i++ {
		if c := in.Check(Kernel); c == DeviceLost {
			t.Fatalf("op %d: device lost before KillAfterOps", i)
		}
	}
	if c := in.Check(Kernel); c != DeviceLost {
		t.Fatalf("op 5: Check = %v, want DeviceLost", c)
	}
	if !in.Lost() {
		t.Fatal("Lost() = false after kill")
	}
	// Everything after the kill fails too.
	for i := 0; i < 10; i++ {
		if c := in.Check(Transfer); c != DeviceLost {
			t.Fatalf("post-kill Check = %v, want DeviceLost", c)
		}
	}
}

func TestErrorClassifiers(t *testing.T) {
	if !IsTransient(ErrTransient) || IsTransient(ErrDeviceLost) {
		t.Fatal("IsTransient misclassifies")
	}
	if !IsDeviceLost(ErrDeviceLost) || IsDeviceLost(ErrTransient) {
		t.Fatal("IsDeviceLost misclassifies")
	}
}
