package sha1x

import (
	"math/rand"
	"testing"

	"streamgpu/internal/pool"
)

// TestSumBatchMatchesSum20 checks the batch hasher computes the same
// per-block digests as Sum20.
func TestSumBatchMatchesSum20(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 96<<10)
	rng.Read(data)
	startPos := []int32{0, 100, 4096, 40000, 95<<10 + 17}
	dst := make([][Size]byte, len(startPos))
	SumBatch(data, startPos, dst)
	for i, lo := range startPos {
		hi := len(data)
		if i+1 < len(startPos) {
			hi = int(startPos[i+1])
		}
		if want := Sum20(data[lo:hi]); dst[i] != want {
			t.Fatalf("block %d: SumBatch digest differs from Sum20", i)
		}
	}
}

// TestSumBatchAllocs pins batch hashing to zero heap allocations.
func TestSumBatchAllocs(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 64<<10)
	rng.Read(data)
	startPos := []int32{0, 8 << 10, 24 << 10, 48 << 10}
	dst := make([][Size]byte, len(startPos))
	allocs := testing.AllocsPerRun(10, func() {
		SumBatch(data, startPos, dst)
	})
	if allocs != 0 {
		t.Fatalf("SumBatch allocates %v per batch, want 0", allocs)
	}
}
