// Package sha1x implements SHA-1 from scratch (FIPS 180-4), in two shapes:
//
//   - a conventional incremental hasher (New/Write/Sum) used by the CPU
//     paths of Dedup, and
//   - a flat, batch-oriented kernel (KernelSpec) where one GPU thread hashes
//     one content-defined block of a batch — the paper's Dedup stage 2
//     ("each GPU thread calculates the SHA-1 of one block").
//
// SHA-1 is used for content fingerprinting (duplicate detection), not
// security, exactly as in PARSEC's dedup.
package sha1x

import (
	"encoding/binary"
	"hash"

	"streamgpu/internal/gpu"
)

// Size is the SHA-1 digest length in bytes.
const Size = 20

// BlockSize is the SHA-1 block length in bytes.
const BlockSize = 64

const (
	init0 = 0x67452301
	init1 = 0xEFCDAB89
	init2 = 0x98BADCFE
	init3 = 0x10325476
	init4 = 0xC3D2E1F0
)

// Digest is the streaming SHA-1 state. The zero value is not valid; use New.
type Digest struct {
	h   [5]uint32
	x   [BlockSize]byte
	nx  int
	len uint64
}

var _ hash.Hash = (*Digest)(nil)

// New returns a fresh SHA-1 hasher.
func New() *Digest {
	d := new(Digest)
	d.Reset()
	return d
}

// Reset restores the initial state.
func (d *Digest) Reset() {
	d.h = [5]uint32{init0, init1, init2, init3, init4}
	d.nx = 0
	d.len = 0
}

// Size returns the digest size (20).
func (d *Digest) Size() int { return Size }

// BlockSize returns the block size (64).
func (d *Digest) BlockSize() int { return BlockSize }

// Write absorbs p. It never fails.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.len += uint64(n)
	if d.nx > 0 {
		c := copy(d.x[d.nx:], p)
		d.nx += c
		if d.nx == BlockSize {
			block(&d.h, d.x[:])
			d.nx = 0
		}
		p = p[c:]
	}
	for len(p) >= BlockSize {
		block(&d.h, p[:BlockSize])
		p = p[BlockSize:]
	}
	if len(p) > 0 {
		d.nx = copy(d.x[:], p)
	}
	return n, nil
}

// Sum appends the digest of everything written so far to b.
func (d *Digest) Sum(b []byte) []byte {
	// Copy the state so Sum does not disturb further writes.
	dd := *d
	var tmp [64 + 8]byte
	tmp[0] = 0x80
	padLen := 55 - int(dd.len%64)
	if padLen < 0 {
		padLen += 64
	}
	binary.BigEndian.PutUint64(tmp[1+padLen:], dd.len<<3)
	dd.Write(tmp[:1+padLen+8])
	var out [Size]byte
	for i, v := range dd.h {
		binary.BigEndian.PutUint32(out[i*4:], v)
	}
	return append(b, out[:]...)
}

// Sum20 computes the SHA-1 of data in one call.
func Sum20(data []byte) [Size]byte {
	var h [5]uint32
	sumInto(&h, data)
	var out [Size]byte
	for i, v := range h {
		binary.BigEndian.PutUint32(out[i*4:], v)
	}
	return out
}

// SumBatch hashes every content-defined block of a batch into dst: block i
// spans [startPos[i], startPos[i+1]) (the last block ends at len(data)) and
// its digest lands in dst[i]. dst must have at least len(startPos) entries.
// This is the CPU mirror of Kernel's thread-per-block layout and performs
// zero heap allocations, so the dedup hash stage can recycle dst across
// batches.
func SumBatch(data []byte, startPos []int32, dst [][Size]byte) {
	var h [5]uint32
	for i, lo := range startPos {
		hi := len(data)
		if i+1 < len(startPos) {
			hi = int(startPos[i+1])
		}
		sumInto(&h, data[lo:hi])
		for j, v := range h {
			binary.BigEndian.PutUint32(dst[i][j*4:], v)
		}
	}
}

// sumInto hashes a complete message into h (one-shot, no streaming state).
func sumInto(h *[5]uint32, data []byte) {
	*h = [5]uint32{init0, init1, init2, init3, init4}
	n := len(data)
	for len(data) >= BlockSize {
		block(h, data[:BlockSize])
		data = data[BlockSize:]
	}
	// Final padded block(s).
	var tail [2 * BlockSize]byte
	t := copy(tail[:], data)
	tail[t] = 0x80
	tl := BlockSize
	if t+9 > BlockSize {
		tl = 2 * BlockSize
	}
	binary.BigEndian.PutUint64(tail[tl-8:], uint64(n)<<3)
	for i := 0; i < tl; i += BlockSize {
		block(h, tail[i:i+BlockSize])
	}
}

// block runs the 80-round compression function over one 64-byte chunk.
func block(h *[5]uint32, p []byte) {
	var w [80]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(p[i*4:])
	}
	for i := 16; i < 80; i++ {
		v := w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]
		w[i] = v<<1 | v>>31
	}
	a, b, c, d, e := h[0], h[1], h[2], h[3], h[4]
	for i := 0; i < 80; i++ {
		var f, k uint32
		switch {
		case i < 20:
			f = (b & c) | (^b & d)
			k = 0x5A827999
		case i < 40:
			f = b ^ c ^ d
			k = 0x6ED9EBA1
		case i < 60:
			f = (b & c) | (b & d) | (c & d)
			k = 0x8F1BBCDC
		default:
			f = b ^ c ^ d
			k = 0xCA62C1D6
		}
		t := a<<5 | a>>27
		t += f + e + k + w[i]
		e, d, c, b, a = d, c, b<<30|b>>2, a, t
	}
	h[0] += a
	h[1] += b
	h[2] += c
	h[3] += d
	h[4] += e
}

// roundCycles approximates the device cost of one 64-byte compression:
// 80 rounds of ~3 dependent integer ops.
const roundCycles = 240

// Kernel is the batched SHA-1 device function: thread i hashes block i of
// the batch, where block i spans [startPos[i], startPos[i+1]) (the last
// block ends at batchLen). Digests land in out at i*20.
//
// Launch args: input *gpu.Buf, startPos *gpu.Buf (int32 LE), nBlocks int,
// batchLen int, out *gpu.Buf.
var Kernel = &gpu.KernelSpec{
	Name:          "sha1_blocks",
	RegsPerThread: 48,
	Body: func(t gpu.Thread, args []any) int64 {
		input := args[0].(*gpu.Buf)
		startPos := args[1].(*gpu.Buf)
		nBlocks := args[2].(int)
		batchLen := args[3].(int)
		out := args[4].(*gpu.Buf)
		i := t.GlobalX()
		if i >= nBlocks {
			return gpu.ExitCost
		}
		sp := startPos.Bytes()
		lo := int(int32(binary.LittleEndian.Uint32(sp[i*4:])))
		hi := batchLen
		if i+1 < nBlocks {
			hi = int(int32(binary.LittleEndian.Uint32(sp[(i+1)*4:])))
		}
		sum := Sum20(input.Bytes()[lo:hi])
		copy(out.Bytes()[i*Size:], sum[:])
		blocks := (hi - lo + 9 + BlockSize - 1) / BlockSize
		return int64(blocks)*roundCycles + 40
	},
}

// PutStartPos serializes block start offsets into the little-endian int32
// layout the kernel expects.
func PutStartPos(dst []byte, startPos []int32) {
	for i, v := range startPos {
		binary.LittleEndian.PutUint32(dst[i*4:], uint32(v))
	}
}
