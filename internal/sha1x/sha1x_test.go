package sha1x

import (
	"bytes"
	crypto "crypto/sha1"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"streamgpu/internal/des"
	"streamgpu/internal/gpu"
)

// Known-answer tests from FIPS 180-4 / RFC 3174.
func TestKnownVectors(t *testing.T) {
	vectors := []struct{ in, want string }{
		{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
		{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
		{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq", "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
		{"The quick brown fox jumps over the lazy dog", "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"},
	}
	for _, v := range vectors {
		got := fmt.Sprintf("%x", Sum20([]byte(v.in)))
		if got != v.want {
			t.Errorf("Sum20(%q) = %s, want %s", v.in, got, v.want)
		}
	}
}

func TestIncrementalMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 10_000)
	rng.Read(data)
	for _, chunk := range []int{1, 7, 63, 64, 65, 1000} {
		d := New()
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			d.Write(data[off:end])
		}
		got := d.Sum(nil)
		want := Sum20(data)
		if !bytes.Equal(got, want[:]) {
			t.Errorf("chunked write (%d) digest mismatch", chunk)
		}
	}
}

func TestSumDoesNotDisturbState(t *testing.T) {
	d := New()
	d.Write([]byte("hello "))
	first := d.Sum(nil)
	second := d.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Error("repeated Sum changed the digest")
	}
	d.Write([]byte("world"))
	want := Sum20([]byte("hello world"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Error("Write after Sum produced wrong digest")
	}
}

func TestReset(t *testing.T) {
	d := New()
	d.Write([]byte("garbage"))
	d.Reset()
	d.Write([]byte("abc"))
	want := Sum20([]byte("abc"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Error("Reset did not restore initial state")
	}
}

func TestInterfaceSizes(t *testing.T) {
	d := New()
	if d.Size() != 20 || d.BlockSize() != 64 {
		t.Errorf("Size=%d BlockSize=%d", d.Size(), d.BlockSize())
	}
}

// Property: our implementation agrees with crypto/sha1 on random inputs of
// every length, including the padding boundary cases around 55/56/64 bytes.
func TestAgainstStdlibProperty(t *testing.T) {
	f := func(data []byte) bool {
		want := crypto.Sum(data)
		got := Sum20(data)
		return got == [20]byte(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Deterministic sweep over the padding boundary.
	for n := 0; n <= 130; n++ {
		data := bytes.Repeat([]byte{byte(n)}, n)
		want := crypto.Sum(data)
		if got := Sum20(data); got != [20]byte(want) {
			t.Errorf("length %d: digest mismatch", n)
		}
	}
}

func TestStreamingAgainstStdlibProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		ours := New()
		ref := crypto.New()
		for _, c := range chunks {
			ours.Write(c)
			ref.Write(c)
		}
		return bytes.Equal(ours.Sum(nil), ref.Sum(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKernelHashesBlocks(t *testing.T) {
	// Batch of 5 blocks with irregular boundaries; each digest must equal
	// the host hash of that block.
	rng := rand.New(rand.NewSource(7))
	batch := make([]byte, 4096)
	rng.Read(batch)
	startPos := []int32{0, 100, 101, 1500, 4000}

	sim := des.New()
	dev := gpu.NewDevice(sim, gpu.TitanXPSpec(), 0)
	out := gpu.NewPinnedBuf(int64(len(startPos) * Size))
	sim.Spawn("host", func(p *des.Proc) {
		dIn := mustMalloc(dev, int64(len(batch)))
		defer dIn.Free()
		dSp := mustMalloc(dev, int64(len(startPos)*4))
		defer dSp.Free()
		dOut := mustMalloc(dev, int64(len(startPos)*Size))
		defer dOut.Free()
		hIn := gpu.WrapHost(batch)
		spBytes := make([]byte, len(startPos)*4)
		PutStartPos(spBytes, startPos)
		st := dev.NewStream("")
		evs := []*des.Event{
			st.CopyH2D(p, dIn, 0, hIn, 0, int64(len(batch))),
			st.CopyH2D(p, dSp, 0, gpu.WrapHost(spBytes), 0, int64(len(spBytes))),
			st.Launch(p, Kernel.Bind(dIn, dSp, len(startPos), len(batch), dOut), gpu.Grid1D(len(startPos), 64)),
			st.CopyD2H(p, out, 0, dOut, 0, int64(len(out.Data))),
		}
		if err := gpu.WaitErr(p, evs...); err != nil {
			panic(err)
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range startPos {
		lo := int(startPos[i])
		hi := len(batch)
		if i+1 < len(startPos) {
			hi = int(startPos[i+1])
		}
		want := crypto.Sum(batch[lo:hi])
		got := out.Data[i*Size : (i+1)*Size]
		if !bytes.Equal(got, want[:]) {
			t.Errorf("block %d [%d:%d): kernel digest mismatch", i, lo, hi)
		}
	}
}

func TestPutStartPosRoundTrip(t *testing.T) {
	sp := []int32{0, 5, 1 << 20, 1<<31 - 1}
	buf := make([]byte, len(sp)*4)
	PutStartPos(buf, sp)
	for i, want := range sp {
		if got := int32(binary.LittleEndian.Uint32(buf[i*4:])); got != want {
			t.Errorf("startPos[%d] = %d, want %d", i, got, want)
		}
	}
}

func BenchmarkSum1K(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Sum20(data)
	}
}

func BenchmarkSum64K(b *testing.B) {
	data := make([]byte, 64*1024)
	b.SetBytes(64 * 1024)
	for i := 0; i < b.N; i++ {
		Sum20(data)
	}
}

// mustMalloc allocates or panics; inside a des process the panic becomes a
// Sim.Run error, which the tests treat as fatal.
func mustMalloc(d *gpu.Device, n int64) *gpu.Buf {
	b, err := d.Malloc(n)
	if err != nil {
		panic(err)
	}
	return b
}
