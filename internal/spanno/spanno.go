// Package spanno parses SPar's C++11 attribute annotation language — the
// textual front end of the SPar compiler. It recognizes the five SPar
// attributes inside double-bracket annotations:
//
//	[[spar::ToStream, spar::Input(dim, init_a, init_b, step, niter)]]
//	[[spar::Stage, spar::Input(i, im), spar::Output(img), spar::Replicate(workers)]]
//	[[spar::Stage, spar::Input(img, dim, i)]]
//
// Parse scans any source text (the annotations may be embedded in C++ or
// pseudo code), extracts the annotations in order, validates SPar's grammar
// rules (ToStream first, at least one Stage, Replicate only on stages,
// arguments only where allowed) and BuildGraph turns the result into the
// core.Graph activity diagram — the same transformation the SPar
// source-to-source compiler performs before emitting FastFlow code.
//
// Beyond the paper's five attributes, the package implements the paper's
// stated future work as a sixth: spar::Pure marks a Stage as offloadable
// to a GPU, and BuildGraph propagates it into the activity graph.
package spanno

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"streamgpu/internal/core"
)

// AttrKind is one of the five SPar attributes.
type AttrKind int

const (
	ToStream AttrKind = iota
	Stage
	Input
	Output
	Replicate
	// Pure marks a Stage as side-effect free and therefore offloadable to
	// an accelerator. It is this package's implementation of the paper's
	// stated future work ("automatically generate parallel OpenCL and CUDA
	// code through the SPar compilation toolchain"); SPar's later GPU
	// extensions use the same attribute name.
	Pure
)

var kindNames = map[string]AttrKind{
	"ToStream":  ToStream,
	"Stage":     Stage,
	"Input":     Input,
	"Output":    Output,
	"Replicate": Replicate,
	"Pure":      Pure,
}

func (k AttrKind) String() string {
	for n, v := range kindNames {
		if v == k {
			return n
		}
	}
	return fmt.Sprintf("AttrKind(%d)", int(k))
}

// Attr is a single spar::X(...) attribute.
type Attr struct {
	Kind AttrKind
	Args []string
}

// Annotation is one [[...]] annotation: a list of attributes. The first
// attribute must be an identifier attribute (ToStream or Stage); the rest
// are auxiliary (Input, Output, Replicate).
type Annotation struct {
	Line  int // 1-based line in the source text
	Attrs []Attr
}

// Identifier returns the annotation's identifier attribute kind.
func (a Annotation) Identifier() AttrKind { return a.Attrs[0].Kind }

// Find returns the first attribute of the given kind, if present.
func (a Annotation) Find(k AttrKind) (Attr, bool) {
	for _, at := range a.Attrs {
		if at.Kind == k {
			return at, true
		}
	}
	return Attr{}, false
}

// ParseError reports a syntax or semantic error with its line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("spanno: line %d: %s", e.Line, e.Msg)
}

// Parse extracts and validates every [[spar::...]] annotation in src.
func Parse(src string) ([]Annotation, error) {
	var anns []Annotation
	line := 1
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '\n':
			line++
		case '[':
			if i+1 < len(src) && src[i+1] == '[' {
				end := strings.Index(src[i+2:], "]]")
				if end < 0 {
					return nil, &ParseError{line, "unterminated [[ annotation"}
				}
				body := src[i+2 : i+2+end]
				if strings.Contains(body, "spar::") {
					ann, err := parseAnnotation(body, line)
					if err != nil {
						return nil, err
					}
					anns = append(anns, ann)
				}
				line += strings.Count(body, "\n")
				i += 2 + end + 1
			}
		}
	}
	if err := validate(anns); err != nil {
		return nil, err
	}
	return anns, nil
}

// parseAnnotation parses the comma-separated attribute list inside [[ ]].
func parseAnnotation(body string, line int) (Annotation, error) {
	ann := Annotation{Line: line}
	rest := strings.TrimSpace(body)
	for len(rest) > 0 {
		var attr Attr
		var err error
		attr, rest, err = parseAttr(rest, line)
		if err != nil {
			return ann, err
		}
		ann.Attrs = append(ann.Attrs, attr)
		rest = strings.TrimSpace(rest)
		if strings.HasPrefix(rest, ",") {
			rest = strings.TrimSpace(rest[1:])
			if rest == "" {
				return ann, &ParseError{line, "trailing comma in annotation"}
			}
		} else if rest != "" {
			return ann, &ParseError{line, fmt.Sprintf("expected ',' before %q", rest)}
		}
	}
	if len(ann.Attrs) == 0 {
		return ann, &ParseError{line, "empty annotation"}
	}
	first := ann.Attrs[0].Kind
	if first != ToStream && first != Stage {
		return ann, &ParseError{line, fmt.Sprintf("annotation must begin with ToStream or Stage, got %s", first)}
	}
	for _, at := range ann.Attrs[1:] {
		if at.Kind == ToStream || at.Kind == Stage {
			return ann, &ParseError{line, fmt.Sprintf("identifier attribute %s must come first", at.Kind)}
		}
	}
	return ann, nil
}

// parseAttr parses one spar::Name or spar::Name(arg, ...) attribute.
func parseAttr(s string, line int) (Attr, string, error) {
	const prefix = "spar::"
	if !strings.HasPrefix(s, prefix) {
		return Attr{}, "", &ParseError{line, fmt.Sprintf("expected spar:: attribute, got %q", truncate(s))}
	}
	s = s[len(prefix):]
	j := 0
	for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j]))) {
		j++
	}
	name := s[:j]
	kind, ok := kindNames[name]
	if !ok {
		return Attr{}, "", &ParseError{line, fmt.Sprintf("unknown attribute spar::%s", name)}
	}
	attr := Attr{Kind: kind}
	rest := s[j:]
	if strings.HasPrefix(rest, "(") {
		close := strings.Index(rest, ")")
		if close < 0 {
			return Attr{}, "", &ParseError{line, fmt.Sprintf("spar::%s: missing ')'", name)}
		}
		argstr := strings.TrimSpace(rest[1:close])
		if argstr != "" {
			for _, a := range strings.Split(argstr, ",") {
				a = strings.TrimSpace(a)
				if a == "" {
					return Attr{}, "", &ParseError{line, fmt.Sprintf("spar::%s: empty argument", name)}
				}
				attr.Args = append(attr.Args, a)
			}
		}
		rest = rest[close+1:]
	}
	// Grammar: identifiers take no args in this subset; Input/Output need
	// at least one; Replicate exactly one.
	switch kind {
	case ToStream, Stage, Pure:
		if len(attr.Args) > 0 {
			return Attr{}, "", &ParseError{line, fmt.Sprintf("spar::%s takes no arguments", name)}
		}
	case Input, Output:
		if len(attr.Args) == 0 {
			return Attr{}, "", &ParseError{line, fmt.Sprintf("spar::%s requires at least one variable", name)}
		}
	case Replicate:
		if len(attr.Args) != 1 {
			return Attr{}, "", &ParseError{line, "spar::Replicate requires exactly one argument"}
		}
	}
	return attr, rest, nil
}

func truncate(s string) string {
	if len(s) > 20 {
		return s[:20] + "..."
	}
	return s
}

// validate applies the cross-annotation rules: exactly one ToStream, which
// must come first and contain at least one Stage; Replicate is only valid
// on Stage annotations.
func validate(anns []Annotation) error {
	if len(anns) == 0 {
		return nil
	}
	if anns[0].Identifier() != ToStream {
		return &ParseError{anns[0].Line, "first annotation must be spar::ToStream"}
	}
	stages := 0
	for i, a := range anns {
		if i > 0 && a.Identifier() == ToStream {
			return &ParseError{a.Line, "nested spar::ToStream regions are not supported"}
		}
		if a.Identifier() == Stage {
			stages++
		}
		if _, ok := a.Find(Replicate); ok && a.Identifier() != Stage {
			return &ParseError{a.Line, "spar::Replicate is only valid on a Stage"}
		}
		if _, ok := a.Find(Pure); ok && a.Identifier() != Stage {
			return &ParseError{a.Line, "spar::Pure is only valid on a Stage"}
		}
	}
	if stages == 0 {
		return &ParseError{anns[0].Line, "ToStream region must contain at least one Stage"}
	}
	return nil
}

// ReplicateDegree resolves a Stage's Replicate argument: integer literals
// are used directly; identifiers (like "workers") are looked up in env,
// defaulting to def when absent.
func ReplicateDegree(a Annotation, env map[string]int, def int) int {
	at, ok := a.Find(Replicate)
	if !ok {
		return 1
	}
	arg := at.Args[0]
	if n, err := strconv.Atoi(arg); err == nil && n >= 1 {
		return n
	}
	if env != nil {
		if n, ok := env[arg]; ok && n >= 1 {
			return n
		}
	}
	return def
}

// BuildGraph performs the SPar front-end transformation: annotations →
// activity graph (pipeline with farms for replicated stages). env resolves
// symbolic Replicate degrees; def is the degree for unresolved symbols.
func BuildGraph(anns []Annotation, env map[string]int, def int) (core.Graph, error) {
	if err := validate(anns); err != nil {
		return core.Graph{}, err
	}
	if len(anns) == 0 {
		return core.Graph{}, &ParseError{1, "no spar annotations found"}
	}
	g := core.Graph{}
	g.Stages = append(g.Stages, core.GraphStage{Name: "ToStream", Replicate: 1})
	sn := 0
	for _, a := range anns[1:] {
		if a.Identifier() != Stage {
			continue
		}
		sn++
		_, pure := a.Find(Pure)
		g.Stages = append(g.Stages, core.GraphStage{
			Name:      fmt.Sprintf("S%d", sn),
			Replicate: ReplicateDegree(a, env, def),
			Offload:   pure,
		})
	}
	return g, nil
}
