package spanno

import (
	"strings"
	"testing"

	"streamgpu/internal/core"
)

// listing1 is the paper's Listing 1 annotation structure (Mandelbrot).
const listing1 = `
void mandelbrot(int dim, int niter, double init_a, double init_b, double range) {
  double step = range/((double)dim);
  [[spar::ToStream, spar::Input(dim, init_a, init_b, step, niter)]]
  for(int i=0; i<dim; i++) {
    double im = init_b + (step * i);
    [[spar::Stage, spar::Input(i, im, dim, init_a, step, niter, img), spar::Replicate(workers)]]
    for (int j=0; j<dim; j++) {
      // compute pixel
    }
    [[spar::Stage, spar::Input(img, dim, i)]] {
      ShowLine(img,dim,i);
    }
  }
}
`

func TestParseListing1(t *testing.T) {
	anns, err := Parse(listing1)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 3 {
		t.Fatalf("got %d annotations, want 3", len(anns))
	}
	if anns[0].Identifier() != ToStream {
		t.Errorf("first = %v, want ToStream", anns[0].Identifier())
	}
	if in, ok := anns[0].Find(Input); !ok || len(in.Args) != 5 {
		t.Errorf("ToStream Input = %+v", in)
	}
	if anns[1].Identifier() != Stage {
		t.Errorf("second = %v, want Stage", anns[1].Identifier())
	}
	rep, ok := anns[1].Find(Replicate)
	if !ok || rep.Args[0] != "workers" {
		t.Errorf("Replicate = %+v", rep)
	}
	if _, ok := anns[2].Find(Replicate); ok {
		t.Error("last stage should not be replicated")
	}
	if anns[0].Line != 4 {
		t.Errorf("ToStream on line %d, want 4", anns[0].Line)
	}
}

func TestBuildGraphListing1(t *testing.T) {
	anns, err := Parse(listing1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(anns, map[string]int{"workers": 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := g.String()
	if !strings.Contains(s, "ToStream") || !strings.Contains(s, "S1 ×10") || !strings.Contains(s, "S2") {
		t.Errorf("graph = %q", s)
	}
}

func TestReplicateDegreeNumeric(t *testing.T) {
	anns, err := Parse(`[[spar::ToStream]] [[spar::Stage, spar::Replicate(7)]]`)
	if err != nil {
		t.Fatal(err)
	}
	if d := ReplicateDegree(anns[1], nil, 1); d != 7 {
		t.Errorf("degree = %d, want 7", d)
	}
}

func TestReplicateDegreeSymbolFallback(t *testing.T) {
	anns, err := Parse(`[[spar::ToStream]] [[spar::Stage, spar::Replicate(nw)]]`)
	if err != nil {
		t.Fatal(err)
	}
	if d := ReplicateDegree(anns[1], nil, 3); d != 3 {
		t.Errorf("unresolved symbol should use default, got %d", d)
	}
	if d := ReplicateDegree(anns[1], map[string]int{"nw": 19}, 3); d != 19 {
		t.Errorf("env lookup failed, got %d", d)
	}
}

func TestReplicateDegreeNoAttr(t *testing.T) {
	anns, err := Parse(`[[spar::ToStream]] [[spar::Stage]]`)
	if err != nil {
		t.Fatal(err)
	}
	if d := ReplicateDegree(anns[1], nil, 5); d != 1 {
		t.Errorf("stage without Replicate should be 1, got %d", d)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"stage first", `[[spar::Stage]]`, "first annotation must be spar::ToStream"},
		{"no stage", `[[spar::ToStream]]`, "at least one Stage"},
		{"nested tostream", `[[spar::ToStream]] [[spar::Stage]] [[spar::ToStream]]`, "nested"},
		{"replicate on tostream", `[[spar::ToStream, spar::Replicate(4)]] [[spar::Stage]]`, "only valid on a Stage"},
		{"unknown attr", `[[spar::Pipeline]]`, "unknown attribute"},
		{"empty input", `[[spar::ToStream, spar::Input()]] [[spar::Stage]]`, "at least one variable"},
		{"replicate two args", `[[spar::ToStream]] [[spar::Stage, spar::Replicate(a, b)]]`, "exactly one argument"},
		{"aux first", `[[spar::Input(x)]]`, "must begin with ToStream or Stage"},
		{"identifier later", `[[spar::ToStream, spar::Stage]]`, "must come first"},
		{"args on tostream", `[[spar::ToStream(x)]]`, "takes no arguments"},
		{"unterminated", `[[spar::ToStream`, "unterminated"},
		{"missing paren", `[[spar::ToStream, spar::Input(a]]`, "missing ')'"},
		{"trailing comma", `[[spar::ToStream,]]`, "trailing comma"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.src, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestNonSparBracketsIgnored(t *testing.T) {
	src := `
int a[[maybe_unused]];
[[spar::ToStream]]
for (;;) {
  [[spar::Stage]]
  {}
}
arr[i][j] = 0;
`
	anns, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 2 {
		t.Fatalf("got %d annotations, want 2 (non-spar [[...]] must be ignored)", len(anns))
	}
}

func TestNoAnnotations(t *testing.T) {
	anns, err := Parse("plain C++ code")
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 0 {
		t.Fatalf("got %d annotations", len(anns))
	}
	if _, err := BuildGraph(anns, nil, 1); err == nil {
		t.Error("BuildGraph with no annotations should error")
	}
}

func TestLineNumbers(t *testing.T) {
	src := "\n\n\n\n[[spar::ToStream]]\n[[spar::Stage]]\n"
	anns, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if anns[0].Line != 5 || anns[1].Line != 6 {
		t.Errorf("lines = %d, %d; want 5, 6", anns[0].Line, anns[1].Line)
	}
}

func TestOutputAttr(t *testing.T) {
	anns, err := Parse(`[[spar::ToStream]] [[spar::Stage, spar::Output(img, n)]]`)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := anns[1].Find(Output)
	if !ok || len(out.Args) != 2 || out.Args[0] != "img" {
		t.Errorf("Output = %+v", out)
	}
}

func TestDedupFiveStageGraph(t *testing.T) {
	// The paper's Fig. 3 pipeline: 5 stages, stage 2 (SHA-1 on GPU)
	// replicated.
	src := `
[[spar::ToStream, spar::Input(file)]]
while (batch = next_batch()) {
  [[spar::Stage, spar::Input(batch), spar::Output(hashes), spar::Replicate(ngpu)]]
  { sha1_gpu(batch); }
  [[spar::Stage, spar::Input(hashes), spar::Output(dups)]]
  { check_duplicates(batch); }
  [[spar::Stage, spar::Input(dups), spar::Output(compressed)]]
  { compress_gpu(batch); }
  [[spar::Stage, spar::Input(compressed)]]
  { reorder_write(batch); }
}
`
	anns, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(anns, map[string]int{"ngpu": 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Stages) != 5 {
		t.Fatalf("graph stages = %d, want 5 (ToStream + 4)", len(g.Stages))
	}
	if g.Stages[1].Replicate != 2 {
		t.Errorf("SHA-1 stage replicate = %d, want 2", g.Stages[1].Replicate)
	}
}

func TestPureAttribute(t *testing.T) {
	anns, err := Parse(`[[spar::ToStream]] [[spar::Stage, spar::Pure, spar::Replicate(2)]] [[spar::Stage]]`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := anns[1].Find(Pure); !ok {
		t.Error("Pure attribute not parsed")
	}
	g, err := BuildGraph(anns, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Stages[1].Offload {
		t.Error("Pure stage should be marked Offload in the graph")
	}
	if g.Stages[2].Offload {
		t.Error("non-Pure stage must not be Offload")
	}
	if s := g.String(); !strings.Contains(s, "[gpu]") {
		t.Errorf("graph string should mark offload stages: %q", s)
	}
}

func TestPureOnlyOnStage(t *testing.T) {
	if _, err := Parse(`[[spar::ToStream, spar::Pure]] [[spar::Stage]]`); err == nil {
		t.Error("Pure on ToStream should be rejected")
	}
	if _, err := Parse(`[[spar::ToStream]] [[spar::Stage, spar::Pure(x)]]`); err == nil {
		t.Error("Pure with arguments should be rejected")
	}
}

func TestInstantiateRunsPipeline(t *testing.T) {
	src := `
[[spar::ToStream]]
for (;;) {
  [[spar::Stage, spar::Replicate(nw)]] { work(); }
  [[spar::Stage]] { collect(); }
}
`
	anns, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	ts, err := Instantiate(anns, map[string]int{"nw": 4}, 1, map[string]core.StageFunc{
		"S1": func(item any, emit func(any)) { emit(item.(int) * 2) },
		"S2": func(item any, emit func(any)) { out = append(out, item.(int)) },
	}, core.Ordered())
	if err != nil {
		t.Fatal(err)
	}
	if g := ts.Graph().String(); !strings.Contains(g, "S1 ×4") {
		t.Errorf("graph = %q", g)
	}
	err = ts.Run(func(emit func(any)) {
		for i := 1; i <= 10; i++ {
			emit(i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("out = %v", out)
	}
	for i, v := range out {
		if v != (i+1)*2 {
			t.Fatalf("out[%d] = %d: instantiated pipeline wrong or unordered", i, v)
		}
	}
}

func TestInstantiateMissingBody(t *testing.T) {
	anns, err := Parse(`[[spar::ToStream]] [[spar::Stage]] [[spar::Stage]]`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Instantiate(anns, nil, 1, map[string]core.StageFunc{
		"S1": func(any, func(any)) {},
	})
	if err == nil || !strings.Contains(err.Error(), "no body bound for stage S2") {
		t.Errorf("err = %v, want missing-body error", err)
	}
}

func TestInstantiatePureMarksOffload(t *testing.T) {
	anns, err := Parse(`[[spar::ToStream]] [[spar::Stage, spar::Pure]]`)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Instantiate(anns, nil, 1, map[string]core.StageFunc{
		"S1": func(any, func(any)) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Graph().Stages[1].Offload {
		t.Error("Pure stage should be Offload in the instantiated graph")
	}
}
