package spanno

import (
	"fmt"

	"streamgpu/internal/core"
)

// Instantiate completes the compiler story end to end: it takes parsed
// annotations and a set of Go stage bodies (keyed by stage name "S1",
// "S2", ... in annotation order) and produces a runnable core.ToStream —
// the runtime graph the SPar source-to-source compiler would have
// generated from the annotated source.
//
// env and def resolve symbolic Replicate degrees as in BuildGraph; extra
// options (core.Ordered(), core.QueueCap(...)) apply to the whole region.
func Instantiate(anns []Annotation, env map[string]int, def int, bodies map[string]core.StageFunc, opts ...core.Option) (*core.ToStream, error) {
	if err := validate(anns); err != nil {
		return nil, err
	}
	if len(anns) == 0 {
		return nil, &ParseError{1, "no spar annotations found"}
	}
	regionOpts := append([]core.Option{}, opts...)
	if in, ok := anns[0].Find(Input); ok {
		regionOpts = append(regionOpts, core.Input(in.Args...))
	}
	ts := core.NewToStream(regionOpts...)
	sn := 0
	for _, a := range anns[1:] {
		if a.Identifier() != Stage {
			continue
		}
		sn++
		name := fmt.Sprintf("S%d", sn)
		body, ok := bodies[name]
		if !ok {
			return nil, &ParseError{a.Line, fmt.Sprintf("no body bound for stage %s", name)}
		}
		stageOpts := []core.Option{
			core.Name(name),
			core.Replicate(ReplicateDegree(a, env, def)),
		}
		if in, ok := a.Find(Input); ok {
			stageOpts = append(stageOpts, core.Input(in.Args...))
		}
		if out, ok := a.Find(Output); ok {
			stageOpts = append(stageOpts, core.Output(out.Args...))
		}
		if _, ok := a.Find(Pure); ok {
			stageOpts = append(stageOpts, core.Offload())
		}
		ts.Stage(body, stageOpts...)
	}
	return ts, nil
}
