package des

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeAdd(t *testing.T) {
	tests := []struct {
		t    Time
		d    Duration
		want Time
	}{
		{0, 0, 0},
		{0, time.Second, 1e9},
		{5, -3, 5},
		{MaxTime, time.Hour, MaxTime},
		{MaxTime - 1, 2, MaxTime},
	}
	for _, tc := range tests {
		if got := tc.t.Add(tc.d); got != tc.want {
			t.Errorf("Time(%d).Add(%v) = %d, want %d", tc.t, tc.d, got, tc.want)
		}
	}
}

func TestTimeSeconds(t *testing.T) {
	if got := Time(2_500_000_000).Seconds(); got != 2.5 {
		t.Fatalf("Seconds() = %v, want 2.5", got)
	}
}

func TestWaitAdvancesClock(t *testing.T) {
	s := New()
	var at Time
	s.Spawn("w", func(p *Proc) {
		p.Wait(10 * time.Millisecond)
		at = p.Now()
	})
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if at != Time(10*time.Millisecond) {
		t.Errorf("woke at %d, want %d", at, 10*time.Millisecond)
	}
	if end != at {
		t.Errorf("end time %d != wake time %d", end, at)
	}
}

func TestWaitZeroAndNegative(t *testing.T) {
	s := New()
	order := []string{}
	s.Spawn("a", func(p *Proc) {
		p.Wait(0)
		order = append(order, "a")
	})
	s.Spawn("b", func(p *Proc) {
		p.Wait(-5)
		order = append(order, "b")
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("both processes should run, got %v", order)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	// Two identical runs must produce identical event orders.
	run := func() []string {
		s := New()
		var log []string
		for i := 0; i < 5; i++ {
			i := i
			s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Wait(Duration(i+1) * time.Microsecond)
					log = append(log, fmt.Sprintf("p%d@%d", i, p.Now()))
				}
			})
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestEventFireAndWait(t *testing.T) {
	s := New()
	ev := s.NewEvent("go")
	var got interface{}
	var at Time
	s.Spawn("waiter", func(p *Proc) {
		got = ev.Wait(p)
		at = p.Now()
	})
	s.Spawn("firer", func(p *Proc) {
		p.Wait(3 * time.Millisecond)
		ev.Fire(42)
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("event value = %v, want 42", got)
	}
	if at != Time(3*time.Millisecond) {
		t.Errorf("waiter woke at %d, want 3ms", at)
	}
	if !ev.Fired() || ev.At() != at || ev.Value() != 42 {
		t.Errorf("event state wrong: fired=%v at=%d val=%v", ev.Fired(), ev.At(), ev.Value())
	}
}

func TestEventWaitAfterFire(t *testing.T) {
	s := New()
	ev := s.NewEvent("pre")
	var got interface{}
	s.Spawn("p", func(p *Proc) {
		ev.Fire("x")
		got = ev.Wait(p) // already fired: returns immediately
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "x" {
		t.Errorf("got %v, want x", got)
	}
}

func TestEventDoubleFirePanics(t *testing.T) {
	s := New()
	ev := s.NewEvent("once")
	defer func() {
		if recover() == nil {
			t.Fatal("double Fire should panic")
		}
	}()
	ev.Fire(nil)
	ev.Fire(nil)
}

func TestEventFireAt(t *testing.T) {
	s := New()
	ev := s.NewEvent("later")
	var at Time
	s.Spawn("w", func(p *Proc) {
		ev.Wait(p)
		at = p.Now()
	})
	ev.FireAt(7*time.Millisecond, nil)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(7*time.Millisecond) {
		t.Errorf("woke at %d, want 7ms", at)
	}
}

func TestQueueFIFO(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q", 4)
	var got []int
	s.Spawn("prod", func(p *Proc) {
		for i := 0; i < 10; i++ {
			q.Put(p, i)
		}
		q.Close()
	})
	s.Spawn("cons", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d items, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	// With capacity 1 and a slow consumer, the producer must block: total
	// production time is governed by consumption rate.
	s := New()
	q := NewQueue[int](s, "q", 1)
	var prodDone Time
	s.Spawn("prod", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(p, i)
		}
		prodDone = p.Now()
		q.Close()
	})
	s.Spawn("cons", func(p *Proc) {
		for {
			_, ok := q.Get(p)
			if !ok {
				return
			}
			p.Wait(10 * time.Millisecond)
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Producer's 5th Put cannot complete before the consumer has freed
	// 4 slots: >= 3 consumption delays must have elapsed.
	if prodDone < Time(30*time.Millisecond) {
		t.Errorf("producer finished at %v, expected backpressure to delay it past 30ms", prodDone)
	}
}

func TestQueueCloseWakesGetters(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q", 1)
	gotOK := true
	s.Spawn("cons", func(p *Proc) {
		_, gotOK = q.Get(p)
	})
	s.Spawn("closer", func(p *Proc) {
		p.Wait(time.Millisecond)
		q.Close()
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if gotOK {
		t.Error("Get on closed empty queue should report ok=false")
	}
}

func TestQueueCloseIdempotent(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q", 1)
	s.Spawn("p", func(p *Proc) {
		q.Close()
		q.Close() // second close is a no-op
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueDrainAfterClose(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q", 4)
	var got []int
	s.Spawn("p", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Close()
		for {
			v, ok := q.Get(p)
			if !ok {
				break
			}
			got = append(got, v)
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("drain got %v, want [1 2]", got)
	}
}

func TestQueueTryPutTryGet(t *testing.T) {
	s := New()
	q := NewQueue[string](s, "q", 1)
	s.Spawn("p", func(p *Proc) {
		if !q.TryPut("a") {
			t.Error("TryPut on empty queue should succeed")
		}
		if q.TryPut("b") {
			t.Error("TryPut on full queue should fail")
		}
		v, ok := q.TryGet()
		if !ok || v != "a" {
			t.Errorf("TryGet = %q,%v; want a,true", v, ok)
		}
		if _, ok := q.TryGet(); ok {
			t.Error("TryGet on empty queue should fail")
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueMultipleConsumers(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q", 2)
	var count int
	for c := 0; c < 3; c++ {
		s.Spawn(fmt.Sprintf("cons%d", c), func(p *Proc) {
			for {
				_, ok := q.Get(p)
				if !ok {
					return
				}
				count++
				p.Wait(time.Millisecond)
			}
		})
	}
	s.Spawn("prod", func(p *Proc) {
		for i := 0; i < 12; i++ {
			q.Put(p, i)
		}
		q.Close()
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 12 {
		t.Errorf("consumed %d, want 12", count)
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	s := New()
	r := NewResource(s, "engine", 1)
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		s.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Acquire(p, 1)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Wait(time.Millisecond)
			inside--
			r.Release(p, 1)
		})
	}
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Errorf("max concurrent holders = %d, want 1", maxInside)
	}
	if end != Time(4*time.Millisecond) {
		t.Errorf("serialized holds should end at 4ms, got %v", end)
	}
}

func TestResourceCapacityParallelism(t *testing.T) {
	s := New()
	r := NewResource(s, "engines", 2)
	for i := 0; i < 4; i++ {
		s.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Use(p, 1, time.Millisecond)
		})
	}
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 4 one-ms holds on 2 units: 2ms total.
	if end != Time(2*time.Millisecond) {
		t.Errorf("end = %v, want 2ms", end)
	}
}

func TestResourceFIFONoStarvation(t *testing.T) {
	// A big request queued first must be served before small later ones.
	s := New()
	r := NewResource(s, "mem", 4)
	var order []string
	s.Spawn("hog", func(p *Proc) {
		r.Acquire(p, 3)
		p.Wait(time.Millisecond)
		r.Release(p, 3)
	})
	s.Spawn("big", func(p *Proc) {
		p.Wait(time.Microsecond)
		r.Acquire(p, 4)
		order = append(order, "big")
		r.Release(p, 4)
	})
	s.Spawn("small", func(p *Proc) {
		p.Wait(2 * time.Microsecond)
		r.Acquire(p, 1)
		order = append(order, "small")
		r.Release(p, 1)
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "big" {
		t.Errorf("order = %v, want big before small (FIFO)", order)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	s := New()
	r := NewResource(s, "r", 2)
	s.Spawn("p", func(p *Proc) {
		if !r.TryAcquire(2) {
			t.Error("TryAcquire(2) on fresh pool should succeed")
		}
		if r.TryAcquire(1) {
			t.Error("TryAcquire on exhausted pool should fail")
		}
		r.Release(p, 2)
		if r.Available() != 2 {
			t.Errorf("Available = %d, want 2", r.Available())
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "never", 1)
	s.Spawn("stuck", func(p *Proc) {
		q.Get(p) // nobody will ever Put
	})
	_, err := s.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestRunTwiceErrors(t *testing.T) {
	s := New()
	s.Spawn("p", func(p *Proc) {})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("second Run should error")
	}
}

func TestAfterCallbackOrder(t *testing.T) {
	s := New()
	var order []int
	s.After(2*time.Millisecond, func() { order = append(order, 2) })
	s.After(1*time.Millisecond, func() { order = append(order, 1) })
	s.After(1*time.Millisecond, func() { order = append(order, 11) }) // same time: schedule order
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	s := New()
	var childAt Time
	s.Spawn("parent", func(p *Proc) {
		p.Wait(time.Millisecond)
		s.Spawn("child", func(c *Proc) {
			c.Wait(time.Millisecond)
			childAt = c.Now()
		})
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != Time(2*time.Millisecond) {
		t.Errorf("child finished at %v, want 2ms", childAt)
	}
}

// Property: for any sequence of puts with any queue capacity and any
// consumer delay, the consumer receives exactly the produced sequence.
func TestQueuePreservesSequenceProperty(t *testing.T) {
	f := func(vals []int16, capSeed uint8, delaySeed uint8) bool {
		capacity := int(capSeed)%8 + 1
		delay := Duration(delaySeed%50) * time.Microsecond
		s := New()
		q := NewQueue[int16](s, "q", capacity)
		var got []int16
		s.Spawn("prod", func(p *Proc) {
			for _, v := range vals {
				q.Put(p, v)
			}
			q.Close()
		})
		s.Spawn("cons", func(p *Proc) {
			for {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				got = append(got, v)
				p.Wait(delay)
			}
		})
		if _, err := s.Run(); err != nil {
			return false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: resource accounting never exceeds capacity and always returns to
// zero after a random workload.
func TestResourceAccountingProperty(t *testing.T) {
	f := func(seed int64, capSeed uint8, nProcs uint8) bool {
		capacity := int(capSeed)%6 + 1
		procs := int(nProcs)%8 + 1
		rng := rand.New(rand.NewSource(seed))
		holds := make([][2]int, procs) // units, duration µs
		for i := range holds {
			holds[i] = [2]int{rng.Intn(capacity) + 1, rng.Intn(100)}
		}
		s := New()
		r := NewResource(s, "r", capacity)
		violated := false
		for i := 0; i < procs; i++ {
			h := holds[i]
			s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				r.Acquire(p, h[0])
				if r.InUse() > r.Cap() {
					violated = true
				}
				p.Wait(Duration(h[1]) * time.Microsecond)
				r.Release(p, h[0])
			})
		}
		if _, err := s.Run(); err != nil {
			return false
		}
		return !violated && r.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the makespan of n exclusive 1ms holds on a k-unit resource is
// ceil(n/k) ms — the list-scheduling bound for identical tasks.
func TestResourceMakespanProperty(t *testing.T) {
	f := func(nSeed, kSeed uint8) bool {
		n := int(nSeed)%12 + 1
		k := int(kSeed)%4 + 1
		s := New()
		r := NewResource(s, "r", k)
		for i := 0; i < n; i++ {
			s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				r.Use(p, 1, time.Millisecond)
			})
		}
		end, err := s.Run()
		if err != nil {
			return false
		}
		want := Time((n + k - 1) / k * int(time.Millisecond))
		return end == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkQueueThroughput(b *testing.B) {
	s := New()
	q := NewQueue[int](s, "q", 64)
	n := b.N
	s.Spawn("prod", func(p *Proc) {
		for i := 0; i < n; i++ {
			q.Put(p, i)
		}
		q.Close()
	})
	s.Spawn("cons", func(p *Proc) {
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
		}
	})
	b.ResetTimer()
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEventFanout(b *testing.B) {
	s := New()
	ev := s.NewEvent("go")
	for i := 0; i < b.N; i++ {
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) { ev.Wait(p) })
	}
	ev.FireAt(time.Millisecond, nil)
	b.ResetTimer()
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestAllOf(t *testing.T) {
	s := New()
	e1 := s.NewEvent("e1")
	e2 := s.NewEvent("e2")
	e3 := s.NewEvent("e3")
	all := s.AllOf("all", e1, e2, e3)
	var at Time
	s.Spawn("w", func(p *Proc) {
		all.Wait(p)
		at = p.Now()
	})
	e1.FireAt(time.Millisecond, nil)
	e2.FireAt(3*time.Millisecond, nil)
	e3.FireAt(2*time.Millisecond, nil)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(3*time.Millisecond) {
		t.Errorf("AllOf fired at %v, want 3ms (the last event)", at)
	}
}

func TestAllOfEmptyAndPreFired(t *testing.T) {
	s := New()
	pre := s.NewEvent("pre")
	s.Spawn("p", func(p *Proc) {
		pre.Fire(nil)
		if !s.AllOf("none").Fired() {
			t.Error("AllOf() should fire immediately")
		}
		if !s.AllOf("one", pre).Fired() {
			t.Error("AllOf(fired) should fire immediately")
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAnyOf(t *testing.T) {
	s := New()
	e1 := s.NewEvent("e1")
	e2 := s.NewEvent("e2")
	anyEv := s.AnyOf("any", e1, e2)
	var at Time
	var val interface{}
	s.Spawn("w", func(p *Proc) {
		val = anyEv.Wait(p)
		at = p.Now()
	})
	e1.FireAt(5*time.Millisecond, "slow")
	e2.FireAt(2*time.Millisecond, "fast")
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(2*time.Millisecond) || val != "fast" {
		t.Errorf("AnyOf fired at %v with %v, want 2ms/fast", at, val)
	}
}

func TestAnyOfPreFired(t *testing.T) {
	s := New()
	e1 := s.NewEvent("e1")
	s.Spawn("p", func(p *Proc) {
		e1.Fire(42)
		out := s.AnyOf("any", e1)
		if !out.Fired() || out.Value() != 42 {
			t.Errorf("AnyOf(fired) = %v,%v", out.Fired(), out.Value())
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAnyOfNoEventsPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("AnyOf() should panic")
		}
	}()
	s.AnyOf("empty")
}
