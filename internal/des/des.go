// Package des implements a deterministic discrete-event simulation kernel.
//
// The kernel drives "processes" — ordinary Go functions running on their own
// goroutines — under a cooperative scheduler: exactly one process executes at
// any instant, and a process hands control back to the scheduler whenever it
// performs a simulated action (waiting for virtual time to pass, blocking on
// a Queue or Resource, waiting for an Event). Virtual time only advances in
// the scheduler, so runs are fully deterministic regardless of host
// scheduling.
//
// Wakeups are granted eagerly by the party that makes progress possible (a
// Release grants capacity to the head waiter, a Get hands queue space to the
// head putter), so every blocked process has exactly one pending wake and
// spurious wakeups cannot occur.
//
// The package is the substrate underneath the GPU device model
// (internal/gpu) and the experiment harness (internal/bench): GPU copy
// engines and streaming-multiprocessor time are Resources and timed waits,
// while pipeline stages of the modelled applications are processes connected
// by bounded Queues.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start of
// the simulation. Virtual nanoseconds have no relation to host time.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts directly
// from time.Duration.
type Duration = time.Duration

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Seconds renders a Time as fractional seconds, the unit used by the paper's
// plots.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Add returns t advanced by d (negative d counts as zero), saturating at
// MaxTime.
func (t Time) Add(d Duration) Time {
	if d < 0 {
		d = 0
	}
	nt := t + Time(d)
	if nt < t {
		return MaxTime
	}
	return nt
}

// event is a scheduled wakeup. Events with equal time fire in schedule order
// (seq), which keeps runs deterministic.
type event struct {
	at   Time
	seq  int64
	fire func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Sim is a discrete-event simulation. The zero value is not usable; create
// one with New.
type Sim struct {
	now    Time
	seq    int64
	events eventHeap
	// sched receives a token whenever the running process blocks or ends,
	// returning control to the scheduler loop.
	sched chan struct{}
	procs []*Proc
	live  int
	ran   bool
	// terminated marks the post-Run teardown phase: parked processes woken
	// during it unwind via a sentinel panic instead of resuming, so their
	// goroutines exit rather than leak (one engine daemon per simulation
	// adds up fast for callers that run a simulation per batch).
	terminated bool
	// failure records the first process panic; Run surfaces it as an error.
	failure error
}

// terminate is the sentinel yield panics with during teardown; the spawn
// wrapper recognizes it and exits quietly.
type terminate struct{}

// New creates an empty simulation at virtual time zero.
func New() *Sim {
	return &Sim{sched: make(chan struct{})}
}

// Now reports the current virtual time.
func (s *Sim) Now() Time { return s.now }

// schedule registers fn to run at virtual time at (clamped to >= now).
func (s *Sim) schedule(at Time, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fire: fn})
}

// After schedules fn to run d from now. fn executes in scheduler context: it
// must not block; it may wake processes or fire events.
func (s *Sim) After(d Duration, fn func()) {
	s.schedule(s.now.Add(d), fn)
}

// Proc is a simulated process. All Proc methods must be called from the
// process's own goroutine (inside the function passed to Spawn).
type Proc struct {
	sim    *Sim
	name   string
	resume chan struct{}
	// blocked describes what the process is waiting on, for deadlock reports.
	blocked string
	// started means the goroutine exists (the spawn event fired); teardown
	// only wakes started processes — an unfired spawn has nothing to join.
	started bool
	ended   bool
	daemon  bool
}

// Name reports the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Spawn creates a process that starts at the current virtual time. The
// function fn runs on its own goroutine under the cooperative scheduler.
// Spawn may be called before Run or from inside a running process.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.spawn(name, fn, false)
}

// SpawnDaemon creates a process that does not keep the simulation alive:
// a daemon blocked forever (e.g. an engine loop waiting for work) is not a
// deadlock, and Run returns normally once only daemons remain. Device
// engines (GPU streams) are daemons.
func (s *Sim) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return s.spawn(name, fn, true)
}

func (s *Sim) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{}), daemon: daemon}
	s.procs = append(s.procs, p)
	if !daemon {
		s.live++
	}
	s.schedule(s.now, func() {
		p.started = true
		go func() { //streamvet:ignore goleak the cooperative scheduler resumes every spawned proc via runProc, and Run drains stragglers on termination
			<-p.resume // wait for first activation
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(terminate); !ok {
						err := fmt.Errorf("des: process %s panicked: %v", p.name, r)
						if s.failure == nil {
							s.failure = err
						}
					}
				}
				p.ended = true
				if !p.daemon {
					s.live--
				}
				s.sched <- struct{}{}
			}()
			if !s.terminated {
				fn(p)
			}
		}()
		s.runProc(p)
	})
	return p
}

// runProc transfers control to p and waits until it yields back. It must be
// called from scheduler context only, and only for a process that is blocked
// in yield (or waiting for its first activation).
func (s *Sim) runProc(p *Proc) {
	p.blocked = ""
	p.resume <- struct{}{}
	<-s.sched
}

// wake schedules p to resume at the current virtual time.
func (s *Sim) wake(p *Proc) {
	s.schedule(s.now, func() { s.runProc(p) })
}

// yield blocks the calling process goroutine and returns control to the
// scheduler. The process resumes when its (single) pending wake fires.
func (p *Proc) yield(why string) {
	p.blocked = why
	p.sim.sched <- struct{}{}
	<-p.resume
	if p.sim.terminated {
		panic(terminate{})
	}
}

// Wait suspends the process for d of virtual time (negative counts as zero).
func (p *Proc) Wait(d Duration) {
	s := p.sim
	s.schedule(s.now.Add(d), func() { s.runProc(p) })
	p.yield(fmt.Sprintf("wait %v", d))
}

// WaitUntil suspends the process until virtual time t (no-op if t <= now).
func (p *Proc) WaitUntil(t Time) {
	if t <= p.sim.now {
		return
	}
	s := p.sim
	s.schedule(t, func() { s.runProc(p) })
	p.yield(fmt.Sprintf("until %d", t))
}

// teardown wakes every parked process so its goroutine unwinds and exits
// (see terminate). Run defers it, so a finished simulation never leaks
// goroutines — not the engine daemons that legitimately outlive the event
// horizon, and not processes stranded by a failure or deadlock return.
func (s *Sim) teardown() {
	s.terminated = true
	for _, p := range s.procs {
		if p.started && !p.ended {
			p.resume <- struct{}{}
			<-s.sched
		}
	}
}

// Run executes the simulation until no events remain. It returns the final
// virtual time and an error if processes remained blocked with an empty
// event queue (deadlock). All process goroutines have exited by the time
// Run returns.
func (s *Sim) Run() (Time, error) {
	if s.ran {
		return s.now, fmt.Errorf("des: simulation already ran")
	}
	s.ran = true
	defer s.teardown()
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		s.now = ev.at
		ev.fire()
		if s.failure != nil {
			return s.now, s.failure
		}
	}
	if s.live > 0 {
		var stuck []string
		for _, p := range s.procs {
			if !p.ended && !p.daemon {
				stuck = append(stuck, fmt.Sprintf("%s (%s)", p.name, p.blocked))
			}
		}
		sort.Strings(stuck)
		return s.now, fmt.Errorf("des: deadlock, %d blocked process(es): %v", len(stuck), stuck)
	}
	return s.now, nil
}

// Event is a one-shot signal carrying an optional value. Processes wait on
// it; anyone (process code or scheduler callbacks) fires it once.
type Event struct {
	sim     *Sim
	name    string
	fired   bool
	val     interface{}
	at      Time
	waiters []*Proc
	// callbacks run in scheduler context when the event fires (used by the
	// AllOf/AnyOf combinators).
	callbacks []func()
}

// onFire registers a scheduler-context callback for an unfired event.
func (e *Event) onFire(fn func()) {
	e.callbacks = append(e.callbacks, fn)
}

// NewEvent creates an unfired event.
func (s *Sim) NewEvent(name string) *Event {
	return &Event{sim: s, name: name}
}

// Name reports the event's name.
func (e *Event) Name() string { return e.name }

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Value returns the value passed to Fire (nil before firing).
func (e *Event) Value() interface{} { return e.val }

// At returns the virtual time the event fired (meaningful only after Fired).
func (e *Event) At() Time { return e.at }

// Fire marks the event complete and wakes all waiters at the current virtual
// time. Firing twice panics: events are one-shot by design.
func (e *Event) Fire(val interface{}) {
	if e.fired {
		panic("des: event " + e.name + " fired twice")
	}
	e.fired = true
	e.val = val
	e.at = e.sim.now
	for _, p := range e.waiters {
		e.sim.wake(p)
	}
	e.waiters = nil
	for _, fn := range e.callbacks {
		fn()
	}
	e.callbacks = nil
}

// FireAt schedules the event to fire d from now.
func (e *Event) FireAt(d Duration, val interface{}) {
	e.sim.After(d, func() { e.Fire(val) })
}

// Wait blocks the process until the event fires and returns the fired value.
// Returns immediately if already fired.
func (e *Event) Wait(p *Proc) interface{} {
	if e.fired {
		return e.val
	}
	e.waiters = append(e.waiters, p)
	p.yield("event " + e.name)
	return e.val
}

// AllOf returns an event that fires (with nil) once every input event has
// fired. With no inputs it fires at the current time.
func (s *Sim) AllOf(name string, events ...*Event) *Event {
	out := s.NewEvent(name)
	remaining := 0
	for _, e := range events {
		if !e.fired {
			remaining++
		}
	}
	if remaining == 0 {
		out.Fire(nil)
		return out
	}
	for _, e := range events {
		if e.fired {
			continue
		}
		e.onFire(func() {
			remaining--
			if remaining == 0 {
				out.Fire(nil)
			}
		})
	}
	return out
}

// AnyOf returns an event that fires as soon as the first input event fires,
// carrying that event's value. At least one input is required.
func (s *Sim) AnyOf(name string, events ...*Event) *Event {
	if len(events) == 0 {
		panic("des: AnyOf needs at least one event")
	}
	out := s.NewEvent(name)
	for _, e := range events {
		if e.fired {
			out.Fire(e.val)
			return out
		}
	}
	for _, e := range events {
		ev := e
		e.onFire(func() {
			if !out.fired {
				out.Fire(ev.val)
			}
		})
	}
	return out
}

// getWaiter is a parked consumer; the producer fills v/ok before waking it.
type getWaiter[T any] struct {
	p  *Proc
	v  T
	ok bool
}

// putWaiter is a parked producer carrying the value it wants to enqueue.
type putWaiter[T any] struct {
	p *Proc
	v T
}

// Queue is a bounded FIFO channel between processes, modelling the
// single-producer/single-consumer queues of FastFlow and the token buffers
// of TBB (multiple producers and consumers are permitted; ordering is FIFO
// per queue). Put blocks when full; Get blocks when empty. Capacity must be
// >= 1.
//
// Invariant: getters wait only while items is empty, and putters wait only
// while items is full, so at most one of the two wait lists is non-empty.
type Queue[T any] struct {
	sim     *Sim
	name    string
	cap     int
	items   []T
	getters []*getWaiter[T]
	putters []*putWaiter[T]
	closed  bool
}

// NewQueue creates a bounded queue with the given capacity (>= 1).
func NewQueue[T any](s *Sim, name string, capacity int) *Queue[T] {
	if capacity < 1 {
		panic("des: queue capacity must be >= 1")
	}
	return &Queue[T]{sim: s, name: name, cap: capacity}
}

// Name reports the queue's name.
func (q *Queue[T]) Name() string { return q.name }

// Len reports the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Cap reports the queue capacity.
func (q *Queue[T]) Cap() int { return q.cap }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Close marks the queue closed: subsequent Get calls drain remaining items
// then report ok=false. Blocked getters wake with ok=false. Closing with
// blocked putters panics — producers must finish before the queue closes.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	if len(q.putters) > 0 {
		panic("des: close of queue " + q.name + " with blocked producers")
	}
	q.closed = true
	for _, g := range q.getters {
		g.ok = false
		q.sim.wake(g.p)
	}
	q.getters = nil
}

// deliver hands v to a waiting getter if any, otherwise buffers it. Called
// only when there is room or a waiting getter.
func (q *Queue[T]) deliver(v T) {
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		g.v, g.ok = v, true
		q.sim.wake(g.p)
		return
	}
	q.items = append(q.items, v)
}

// Put appends v, blocking while the queue is full. Putting on a closed queue
// panics.
func (q *Queue[T]) Put(p *Proc, v T) {
	if q.closed {
		panic("des: put on closed queue " + q.name)
	}
	if len(q.items) < q.cap && len(q.putters) == 0 {
		q.deliver(v)
		return
	}
	q.putters = append(q.putters, &putWaiter[T]{p: p, v: v})
	p.yield("put " + q.name)
}

// TryPut appends v without blocking; reports whether it succeeded.
func (q *Queue[T]) TryPut(v T) bool {
	if q.closed || len(q.items) >= q.cap || len(q.putters) > 0 {
		return false
	}
	q.deliver(v)
	return true
}

// Get removes and returns the oldest item, blocking while empty. ok is false
// only when the queue is closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	if len(q.items) > 0 {
		v = q.items[0]
		q.items = q.items[1:]
		// Space freed: admit the head putter, if any.
		if len(q.putters) > 0 {
			pw := q.putters[0]
			q.putters = q.putters[1:]
			q.deliver(pw.v)
			q.sim.wake(pw.p)
		}
		return v, true
	}
	if q.closed {
		return v, false
	}
	g := &getWaiter[T]{p: p}
	q.getters = append(q.getters, g)
	p.yield("get " + q.name)
	return g.v, g.ok
}

// TryGet removes the oldest item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	if len(q.putters) > 0 {
		pw := q.putters[0]
		q.putters = q.putters[1:]
		q.deliver(pw.v)
		q.sim.wake(pw.p)
	}
	return v, true
}

// resWaiter is a parked Acquire; Release grants capacity before waking it.
type resWaiter struct {
	p *Proc
	n int
}

// Resource is a counted FIFO semaphore: a pool of capacity units that
// processes acquire and release. GPU copy engines and device memory pools
// are Resources. Grants are strictly FIFO: a large request at the head
// blocks smaller later ones (no starvation).
type Resource struct {
	sim     *Sim
	name    string
	cap     int
	inUse   int
	waiters []resWaiter
}

// NewResource creates a resource pool with capacity units.
func NewResource(s *Sim, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("des: resource capacity must be >= 1")
	}
	return &Resource{sim: s, name: name, cap: capacity}
}

// Name reports the resource's name.
func (r *Resource) Name() string { return r.name }

// InUse reports currently acquired units.
func (r *Resource) InUse() int { return r.inUse }

// Cap reports the pool capacity.
func (r *Resource) Cap() int { return r.cap }

// Available reports free units.
func (r *Resource) Available() int { return r.cap - r.inUse }

// Acquire blocks until n units are available and takes them.
func (r *Resource) Acquire(p *Proc, n int) {
	if n < 1 || n > r.cap {
		panic(fmt.Sprintf("des: acquire %d from resource %s (cap %d)", n, r.name, r.cap))
	}
	if len(r.waiters) == 0 && r.cap-r.inUse >= n {
		r.inUse += n
		return
	}
	r.waiters = append(r.waiters, resWaiter{p: p, n: n})
	p.yield("acquire " + r.name)
	// The releasing side already granted our units before waking us.
}

// TryAcquire takes n units without blocking; reports whether it succeeded.
func (r *Resource) TryAcquire(n int) bool {
	if n < 1 || n > r.cap {
		panic(fmt.Sprintf("des: acquire %d from resource %s (cap %d)", n, r.name, r.cap))
	}
	if len(r.waiters) > 0 || r.cap-r.inUse < n {
		return false
	}
	r.inUse += n
	return true
}

// Release returns n units to the pool. Waiting acquirers are granted in FIFO
// order, each receiving its units before being woken.
func (r *Resource) Release(p *Proc, n int) {
	if n < 1 || r.inUse < n {
		panic(fmt.Sprintf("des: release %d from resource %s (in use %d)", n, r.name, r.inUse))
	}
	r.inUse -= n
	for len(r.waiters) > 0 && r.cap-r.inUse >= r.waiters[0].n {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.inUse += w.n
		r.sim.wake(w.p)
	}
}

// Use acquires n units, holds them for d of virtual time, then releases:
// the common "occupy an engine for the duration of an operation" pattern.
func (r *Resource) Use(p *Proc, n int, d Duration) {
	r.Acquire(p, n)
	p.Wait(d)
	r.Release(p, n)
}
