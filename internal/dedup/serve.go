package dedup

import (
	"fmt"

	"streamgpu/internal/des"
	"streamgpu/internal/fault"
	"streamgpu/internal/gpu"
	"streamgpu/internal/health"
	"streamgpu/internal/lzss"
	"streamgpu/internal/rabin"
	"streamgpu/internal/telemetry"
)

// NewStreamBatch builds one pooled batch around data for the serving path:
// the resident server fills 1 MB payload buffers by coalescing client
// requests and seals each into a batch here, instead of fragmenting a whole
// input up front the way FragmentInto does. Ownership of the batch transfers
// to the caller, which must Release it when it has fully left the pipeline;
// data stays owned by the caller (the batch only references it).
func NewStreamBatch(seq int, data []byte, ch *rabin.Chunker) *Batch {
	b := batchPool.Get()
	b.pooled = true
	b.Seq = seq
	b.Data = data
	b.StartPos = ch.AppendBoundaries(b.StartPos[:0], data)
	return b
}

// MarkFirsts runs the dedup-hint stage against store (see markFirsts); it is
// the exported form used by batch processors outside this package's own
// pipelines.
func (b *Batch) MarkFirsts(store BlockStore) { b.markFirsts(store) }

// WriteBlocks writes the batch's blocks to dw in stream order — the ordered
// final-stage body (writeBatch), exported for external sinks such as the
// serving layer's per-session archive writers.
func (b *Batch) WriteBlocks(dw *Writer) error { return writeBatch(b, dw) }

// Flush pushes buffered archive bytes to the underlying writer without
// ending the stream — the serving path ships archive deltas to clients
// incrementally, so it needs the buffer drained at response boundaries while
// the stream stays open for the next batch.
func (dw *Writer) Flush() error {
	if !dw.started {
		if _, err := dw.w.Write(magic); err != nil {
			return err
		}
		dw.started = true
	}
	return dw.w.Flush()
}

// Processor turns one pooled batch into a fully prepared batch (hashes,
// dedup hints, compressed firsts) for an ordered writer downstream. Each
// pipeline replica owns one Processor: the CPU path reuses a private
// lzss.Matcher across batches, and the GPU path offloads the SHA-1 and
// match-finding kernels to a simulated device with per-batch fault
// injection, retry, and CPU degradation (the recovery ladder of CompressGPU,
// per batch instead of per run). Either way the downstream Writer makes the
// authoritative stream-order dedup decision, so the archive bytes are
// identical to CompressSeq's regardless of path or fault schedule.
type Processor struct {
	opt GPUOptions
	gpu bool
	m   *lzss.Matcher
	rep GPUReport
}

// NewProcessor builds a processor. useGPU selects the device path; opt's
// fault config drives its injector (the seed is mixed with the batch
// sequence number so each batch sees an independent deterministic schedule).
func NewProcessor(opt GPUOptions, useGPU bool) *Processor {
	return &Processor{opt: opt, gpu: useGPU, m: lzss.NewMatcher()}
}

// Report returns the accumulated recovery counters (GPU path only).
func (p *Processor) Report() GPUReport { return p.rep }

// Process prepares b in place: hash every block, consult store for the
// first-sighting hint, and compress the hinted-first blocks. It never fails;
// the GPU path degrades to the CPU path on faults, and a quarantined
// device's batches are rerouted to the CPU outright. When store is a
// content-addressed cluster store (CompSource/CompSink), freshly compressed
// blocks are published and known-elsewhere blocks are fetched instead of
// left for the Writer's inline fallback.
func (p *Processor) Process(b *Batch, store BlockStore) {
	if p.gpu {
		p.processGPU(b, store)
	} else {
		p.processCPU(b, store)
	}
	p.exchange(b, store)
}

// processCPU is the reference path: always correct, never consulted by the
// health scoreboard. Compression fans out across the configured lanes
// (GOMAXPROCS-derived by default), bit-exact to the sequential encoder.
func (p *Processor) processCPU(b *Batch, store BlockStore) {
	b.HashBlocks()
	b.markFirsts(store)
	b.CompressFirsts(p.m, p.opt.lanes())
}

// exchange is the cluster-store hook: publish every block this processor
// compressed, and try to fetch the compressed body of every block the store
// had already seen (here or on another node). A plain *Store implements
// neither interface, so the single-node paths pay two type assertions and
// nothing else. Fetched bodies are byte-identical to what local compression
// would have produced (LZSS is deterministic and content-addressing keys on
// the raw bytes), so the downstream Writer's output does not depend on which
// node compressed a block first.
func (p *Processor) exchange(b *Batch, store BlockStore) {
	src, hasSrc := store.(CompSource)
	sink, hasSink := store.(CompSink)
	if !hasSrc && !hasSink {
		return
	}
	for k := range b.Comp {
		if b.Comp[k] != nil {
			if hasSink {
				sink.PublishComp(b.Hashes[k], b.Comp[k])
			}
			continue
		}
		if hasSrc {
			if comp, ok := src.FetchComp(b.Hashes[k]); ok {
				b.Comp[k] = comp
			}
		}
	}
}

// deviceFor spreads batches across the simulated device pool by sequence
// number, so a multi-device server exercises (and scores) every device.
func (p *Processor) deviceFor(b *Batch) int {
	n := p.opt.devices()
	if n == 1 {
		return 0
	}
	return int(uint(b.Seq) % uint(n))
}

// place picks the batch's device. Without a scoreboard (or with
// BlindPlacement) it is the legacy sequence-modulo spread, filtered through
// Route when a scoreboard exists; with one, Place makes the score-weighted
// decision for the whole pool. A zero Route means the CPU fallback.
func (p *Processor) place(b *Batch) (int, health.Route) {
	if p.opt.Health != nil && !p.opt.BlindPlacement {
		return p.opt.Health.Place()
	}
	devIdx := p.deviceFor(b)
	route := health.Route{Device: true}
	if p.opt.Health != nil {
		route = p.opt.Health.Route(devIdx)
	}
	return devIdx, route
}

// processGPU runs the batch's kernels on a private simulated device. Unlike
// CompressGPU, which owns one device for a whole run, the serving path spins
// one simulation per batch — device loss therefore costs one batch (degraded
// to the CPU), not the rest of the stream. When a health scoreboard is
// configured, placement is score-weighted across the pool: a quarantined
// device gets only probe batches, a batch no device can take reroutes to the
// CPU, and each device-run outcome (clean, or any fault the recovery ladder
// absorbed) plus its virtual service time feeds back into the scoreboard.
func (p *Processor) processGPU(b *Batch, store BlockStore) {
	devIdx, route := p.place(b)
	if !route.Device {
		p.processCPU(b, store)
		p.rep.Rerouted++
		p.opt.Metrics.Counter("dedup_placed_total", placeLabels(-1, nil, false)).Add(1)
		if p.opt.Placed != nil {
			p.opt.Placed(-1, false, 0)
		}
		return
	}

	before := p.rep
	sim := des.New()
	dev := gpu.NewDevice(sim, p.opt.specFor(devIdx), devIdx)
	dev.SetTelemetry(p.opt.Metrics)
	if fc := p.opt.faultsFor(devIdx); fc != (fault.Config{}) {
		// Decorrelate batches while keeping each schedule reproducible.
		fc.Seed ^= int64(uint64(b.Seq+1) * 0x9e3779b97f4a7c15)
		dev.SetFaultInjector(fault.New(fc))
	}
	done := false
	sim.Spawn("serve-batch", func(proc *des.Proc) {
		st := dev.NewStream("")
		gpuHashBatch(proc, st, dev, b, p.opt, &p.rep)
		gpuCompressBatch(proc, st, dev, b, store, p.opt, &p.rep)
		done = true
	})
	end, err := sim.Run()
	if err != nil || !done {
		// Simulation-level failure: recompute the whole batch on the CPU.
		// The stage bodies are idempotent, so redoing work a partially
		// successful simulation already did is safe.
		p.processCPU(b, store)
		p.rep.CPUHash++
		p.rep.CPUCompress++
	}
	if dev.Lost() {
		p.rep.DeviceLost = true
	}
	virt := end.Seconds()
	if p.opt.Health != nil {
		// Any fault-injector activity this batch — an absorbed retry, a
		// stage degraded to the CPU, or device loss — counts against the
		// device's scoreboard.
		faulted := p.rep.Retries != before.Retries ||
			p.rep.CPUHash != before.CPUHash ||
			p.rep.CPUCompress != before.CPUCompress ||
			dev.Lost()
		p.opt.Health.Record(devIdx, route, faulted)
		if err == nil && done {
			// Retry backoff inflates the virtual time — that is genuinely
			// degraded service and belongs in the score; only a dead
			// simulation's truncated clock is discarded.
			p.opt.Health.ObserveService(devIdx, virt, len(b.Data))
		}
	}
	p.opt.Metrics.Counter("dedup_placed_total", placeLabels(devIdx, dev, route.Probe)).Add(1)
	if p.opt.Placed != nil {
		p.opt.Placed(devIdx, route.Probe, virt)
	}
}

// placeLabels builds the dedup_placed_total label set: the device's instance
// name (or "cpu" for rerouted batches), and whether the batch was a probe
// sent to a quarantined device rather than regular traffic.
func placeLabels(devIdx int, dev *gpu.Device, probe bool) telemetry.Labels {
	name := "cpu"
	if devIdx >= 0 && dev != nil {
		name = dev.Name()
	}
	return telemetry.Labels{"device": name, "probe": fmt.Sprintf("%v", probe)}
}
