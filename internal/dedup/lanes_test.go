package dedup

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"streamgpu/internal/lzss"
	"streamgpu/internal/pool"
	"streamgpu/internal/sha1x"
)

// oneBatch fragments input and returns its first batch, hashed and
// first-marked against a fresh store.
func oneBatch(t *testing.T, size int) *Batch {
	t.Helper()
	input := sample(size)
	var batch *Batch
	Fragment(input, DefaultBatchSize, func(b *Batch) {
		if batch == nil {
			batch = b
		}
	})
	if batch == nil {
		t.Fatal("no batch")
	}
	batch.HashBlocks()
	batch.markFirsts(NewStore())
	return batch
}

// TestCompressFirstsLanesBitExact checks the lane-parallel compress produces
// exactly the sequential path's bytes for every lane count, including more
// lanes than blocks.
func TestCompressFirstsLanesBitExact(t *testing.T) {
	batch := oneBatch(t, 1<<20)
	m := lzss.NewMatcher()
	batch.compressFirsts(m)
	want := make([][]byte, batch.NBlocks())
	for k, c := range batch.Comp {
		if c != nil {
			want[k] = append([]byte(nil), c...)
		}
	}
	for _, lanes := range []int{1, 2, 3, 4, 7, 8, batch.NBlocks() + 5} {
		batch.CompressFirsts(m, lanes)
		for k := range want {
			if (want[k] == nil) != (batch.Comp[k] == nil) || !bytes.Equal(batch.Comp[k], want[k]) {
				t.Fatalf("lanes=%d block %d: lane-parallel output differs from sequential", lanes, k)
			}
		}
	}
}

// TestCompressFirstsLanesDuplicates checks the lane path honours the
// first-sighting verdicts: duplicate blocks stay nil, firsts get bytes.
func TestCompressFirstsLanesDuplicates(t *testing.T) {
	batch := oneBatch(t, 1<<20)
	// Mark every other block a duplicate.
	for k := range batch.firsts {
		batch.firsts[k] = k%2 == 0
	}
	batch.CompressFirsts(lzss.NewMatcher(), 4)
	for k := range batch.Comp {
		first := k%2 == 0
		if first && batch.Comp[k] == nil {
			t.Fatalf("block %d: first sighting got no compression", k)
		}
		if !first && batch.Comp[k] != nil {
			t.Fatalf("block %d: duplicate was compressed", k)
		}
	}
}

// TestSeqLanesArchiveIdentical checks CompressSeq with lanes produces a
// byte-identical archive to the single-threaded reference, and that it
// restores.
func TestSeqLanesArchiveIdentical(t *testing.T) {
	input := sample(3 << 20)
	var ref bytes.Buffer
	if _, err := CompressSeq(input, &ref, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{2, 4, 8} {
		var arch bytes.Buffer
		if _, err := CompressSeq(input, &arch, Options{Lanes: lanes}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(arch.Bytes(), ref.Bytes()) {
			t.Fatalf("lanes=%d: archive differs from sequential reference", lanes)
		}
		var out bytes.Buffer
		if err := Restore(bytes.NewReader(arch.Bytes()), &out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), input) {
			t.Fatalf("lanes=%d: restore mismatch", lanes)
		}
	}
}

// TestSParLanesMatchesSeqOutput checks the full SPar pipeline with explicit
// lane counts still produces the reference archive.
func TestSParLanesMatchesSeqOutput(t *testing.T) {
	input := sample(2 << 20)
	var ref bytes.Buffer
	if _, err := CompressSeq(input, &ref, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{1, 3, 8} {
		var arch bytes.Buffer
		if _, err := CompressSPar(input, &arch, Options{Workers: 3, Lanes: lanes, StoreShards: 8}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(arch.Bytes(), ref.Bytes()) {
			t.Fatalf("lanes=%d: SPar archive differs from sequential reference", lanes)
		}
	}
}

// TestCompressFirstsLanesAllocs pins the warm lane-parallel compress to zero
// heap allocations per batch: arenas, lane matchers, and spawn state are all
// recycled.
func TestCompressFirstsLanesAllocs(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	batch := oneBatch(t, 1<<20)
	m := lzss.NewMatcher()
	for i := 0; i < 3; i++ {
		batch.CompressFirsts(m, 4) // warm arenas, pools and goroutine free list
	}
	allocs := testing.AllocsPerRun(8, func() {
		batch.CompressFirsts(m, 4)
	})
	if allocs != 0 {
		t.Fatalf("CompressFirsts(lanes=4) allocates %v per batch, want 0", allocs)
	}
}

// TestStoreShardedExactlyOnce hammers one Store from many goroutines
// presenting overlapping hash sets and checks every hash is granted to
// exactly one caller — the MarkFirst exactly-once contract under striping.
func TestStoreShardedExactlyOnce(t *testing.T) {
	for _, shards := range []int{1, 4, 64} {
		store := NewStoreSharded(shards)
		if got := store.Shards(); got < 1 || got&(got-1) != 0 {
			t.Fatalf("Shards()=%d not a power of two", got)
		}
		const nHashes = 4096
		hashes := make([][sha1x.Size]byte, nHashes)
		for i := range hashes {
			hashes[i] = sha1x.Sum20([]byte{byte(i), byte(i >> 8), 0xA5})
		}
		const workers = 8
		wins := make([][]bool, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wins[w] = make([]bool, nHashes)
			wg.Add(1)
			go func() {
				defer wg.Done()
				store.FirstSightings(hashes, wins[w])
			}()
		}
		wg.Wait()
		for i := 0; i < nHashes; i++ {
			n := 0
			for w := 0; w < workers; w++ {
				if wins[w][i] {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("shards=%d hash %d: %d first-sighting grants, want exactly 1", shards, i, n)
			}
		}
		if store.Len() != nHashes {
			t.Fatalf("shards=%d: Len()=%d, want %d", shards, store.Len(), nHashes)
		}
	}
}

// TestStoreContendedSoak is the contended-store soak: sustained concurrent
// FirstSightings traffic with a mix of fresh and repeated hashes across all
// stripes, under -race in CI. -short bounds the depth.
func TestStoreContendedSoak(t *testing.T) {
	rounds := 64
	if testing.Short() {
		rounds = 8
	}
	store := NewStore()
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	granted := make([]int, workers)
	const perRound = 512
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			hashes := make([][sha1x.Size]byte, perRound)
			dst := make([]bool, perRound)
			for r := 0; r < rounds; r++ {
				for i := range hashes {
					// Half the hashes are shared across workers (contended),
					// half are worker-private (fresh inserts every round).
					if i%2 == 0 {
						hashes[i] = sha1x.Sum20([]byte{byte(i), byte(i >> 8), byte(r), 0x11})
					} else {
						hashes[i] = sha1x.Sum20([]byte{byte(i), byte(i >> 8), byte(r), byte(w), 0x22})
					}
				}
				store.FirstSightings(hashes, dst)
				for i := range dst {
					if dst[i] {
						granted[w]++
					}
				}
				if store.FirstSighting(hashes[0]) {
					t.Error("hash granted twice")
					return
				}
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, g := range granted {
		total += g
	}
	// Shared hashes: perRound/2 per round granted once each; private hashes:
	// perRound/2 per round per worker.
	want := rounds*perRound/2 + rounds*perRound/2*workers
	if total != want {
		t.Fatalf("total grants %d, want %d", total, want)
	}
}

// TestProcessorLanesArchiveIdentical runs the serving-path Processor with
// lane-parallel compression and checks the written archive equals the
// sequential reference.
func TestProcessorLanesArchiveIdentical(t *testing.T) {
	input := sample(2 << 20)
	var ref bytes.Buffer
	if _, err := CompressSeq(input, &ref, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{1, 4} {
		p := NewProcessor(GPUOptions{Options: Options{Lanes: lanes}}, false)
		store := NewStoreSharded(16)
		var arch bytes.Buffer
		dw := NewWriter(&arch)
		var failed error
		Fragment(input, DefaultBatchSize, func(b *Batch) {
			if failed != nil {
				return
			}
			p.Process(b, store)
			if err := b.WriteBlocks(dw); err != nil {
				failed = err
			}
		})
		if failed != nil {
			t.Fatal(failed)
		}
		if err := dw.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(arch.Bytes(), ref.Bytes()) {
			t.Fatalf("lanes=%d: processor archive differs from reference", lanes)
		}
	}
}
