package dedup

import (
	"bytes"
	"testing"

	"streamgpu/internal/telemetry"
)

// TestCompressSParTelemetry checks an instrumented CPU compress run surfaces
// pipeline metrics and trace events without disturbing the archive.
func TestCompressSParTelemetry(t *testing.T) {
	input := sample(1 << 20)
	reg := telemetry.New()
	tr := telemetry.NewStreamTracer(0)
	var arch bytes.Buffer
	opt := Options{BatchSize: 128 << 10, Workers: 4, Metrics: reg, Trace: tr}
	if _, err := CompressSPar(input, &arch, opt); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := Restore(bytes.NewReader(arch.Bytes()), &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), input) {
		t.Fatal("restore mismatch")
	}
	nBatches := int64((1<<20 + 128<<10 - 1) / (128 << 10))
	for _, stage := range []string{"hash", "dedup", "compress"} {
		lbl := telemetry.Labels{"pipeline": "dedup", "stage": stage}
		if v := reg.Counter("ff_stage_items_in_total", lbl).Value(); v != nBatches {
			t.Errorf("%s items in = %d, want %d", stage, v, nBatches)
		}
	}
	if len(tr.Events()) == 0 {
		t.Error("no trace events recorded")
	}
}

// TestCompressGPUTelemetry checks the GPU compress run feeds the device
// engine metrics.
func TestCompressGPUTelemetry(t *testing.T) {
	input := sample(1 << 20)
	reg := telemetry.New()
	var arch bytes.Buffer
	opt := GPUOptions{Options: Options{BatchSize: 256 << 10, Metrics: reg}}
	_, rep, err := CompressGPU(input, &arch, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GPUHash == 0 {
		t.Fatal("no batches hashed on the device")
	}
	lbl := telemetry.Labels{"device": "gpu0"}
	if v := reg.Counter("gpu_kernels_launched_total", lbl).Value(); v <= 0 {
		t.Errorf("kernels launched = %d, want > 0", v)
	}
	if v := reg.Counter("gpu_h2d_bytes_total", lbl).Value(); v < int64(len(input)) {
		t.Errorf("h2d bytes = %d, want >= %d", v, len(input))
	}
}
