package dedup

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"streamgpu/internal/core"
	"streamgpu/internal/lzss"
)

// restoreItem is one archive record flowing through the parallel restore
// pipeline.
type restoreItem struct {
	tag  byte
	data []byte // compressed (recUnique) or raw (recRaw) payload
	ref  uint64 // recDup only
	// out is filled by the decompress stage for recUnique records.
	out []byte
	err error
}

// RestoreParallel decompresses an archive with a SPar pipeline: a serial
// reader (records must be walked in order to find their boundaries), a
// replicated LZSS-decompress stage, and a serial in-order writer that also
// resolves duplicate references — the mirror image of the compression
// pipeline, as PARSEC ships for its dedup benchmark.
func RestoreParallel(r io.Reader, w io.Writer, workers int) error {
	if workers < 1 {
		workers = 1
	}
	br := bufio.NewReaderSize(r, 1<<16)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return fmt.Errorf("%w: missing magic: %v", ErrFormat, err)
	}
	for i := range magic {
		if got[i] != magic[i] {
			return fmt.Errorf("%w: wrong magic", ErrFormat)
		}
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	var blocks [][]byte
	var writeErr error
	var readErr error

	ts := core.NewToStream(core.Ordered()).
		Stage(func(item any, emit func(any)) {
			it := item.(*restoreItem)
			if it.tag == recUnique {
				it.out, it.err = lzss.Decompress(it.data)
			}
			emit(it)
		}, core.Replicate(workers), core.Name("decompress")).
		Stage(func(item any, emit func(any)) {
			if writeErr != nil {
				return
			}
			it := item.(*restoreItem)
			switch {
			case it.err != nil:
				writeErr = fmt.Errorf("%w: %v", ErrFormat, it.err)
			case it.tag == recDup:
				if it.ref >= uint64(len(blocks)) {
					writeErr = fmt.Errorf("%w: reference %d to unwritten block (%d known)", ErrFormat, it.ref, len(blocks))
					return
				}
				_, writeErr = bw.Write(blocks[it.ref])
			case it.tag == recRaw:
				blocks = append(blocks, it.data)
				_, writeErr = bw.Write(it.data)
			default: // recUnique
				blocks = append(blocks, it.out)
				_, writeErr = bw.Write(it.out)
			}
		}, core.Name("reorder+write"))

	err := ts.Run(func(emit func(any)) {
		for {
			tag, err := br.ReadByte()
			if err == io.EOF {
				return
			}
			if err != nil {
				readErr = err
				return
			}
			v, err := binary.ReadUvarint(br)
			if err != nil {
				readErr = fmt.Errorf("%w: truncated record: %v", ErrFormat, err)
				return
			}
			it := &restoreItem{tag: tag}
			switch tag {
			case recUnique, recRaw:
				it.data, err = readExactCapped(br, nil, v)
				if err != nil {
					readErr = fmt.Errorf("%w: truncated block: %v", ErrFormat, err)
					return
				}
			case recDup:
				it.ref = v
			default:
				readErr = fmt.Errorf("%w: unknown record tag %q", ErrFormat, tag)
				return
			}
			emit(it)
		}
	})
	if err == nil {
		err = readErr
	}
	if err == nil {
		err = writeErr
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}
