package dedup

import (
	"bytes"
	"testing"

	"streamgpu/internal/fault"
	"streamgpu/internal/gpu"
	"streamgpu/internal/health"
)

// TestProcessorPlacementShedsToHealthyDevices drives a heterogeneous
// two-device Processor with device 1 injecting heavy faults under
// score-weighted placement: the scoreboard must quarantine device 1, the
// healthy device must absorb the traffic (no CPU reroutes — that is the
// whole point of placement over blind routing), probes must keep reaching
// the quarantined device, and the archive must stay byte-identical to the
// sequential reference.
func TestProcessorPlacementShedsToHealthyDevices(t *testing.T) {
	input := sample(512 << 10)
	const batchSize = 8 << 10
	fleet, err := gpu.ParseFleet("titanxp,titanxp@clock=0.7")
	if err != nil {
		t.Fatal(err)
	}
	sb := health.New(health.Config{
		Devices: 2, Window: 8, MinSamples: 4, Threshold: 0.5,
		ProbeEvery: 4, ReadmitAfter: 2,
	})
	opt := GPUOptions{
		Options:    Options{BatchSize: batchSize},
		MaxRetries: 1,
		Fleet:      fleet,
		Health:     sb,
		FaultsFor: func(dev int) fault.Config {
			if dev != 1 {
				return fault.Config{Seed: 1}
			}
			return fault.Config{Seed: 7, TransferRate: 0.9, KernelRate: 0.9}
		},
	}
	var placed [2]int
	var cpu int
	opt.Placed = func(dev int, probe bool, virtSec float64) {
		if dev < 0 {
			cpu++
			return
		}
		placed[dev]++
		if virtSec <= 0 {
			t.Errorf("device %d batch with non-positive virtual time %v", dev, virtSec)
		}
	}
	p := NewProcessor(opt, true)
	arch := runProcessor(t, input, p, batchSize)

	if !sb.Quarantined(1) {
		t.Fatalf("device 1 not quarantined at 90%% fault rates: %+v", sb.Snapshot())
	}
	if sb.Quarantined(0) {
		t.Fatalf("healthy device 0 quarantined: %+v", sb.Snapshot())
	}
	if cpu != 0 || p.Report().Rerouted != 0 {
		t.Fatalf("placement rerouted %d batches to the CPU with a healthy device available (report %+v)", cpu, p.Report())
	}
	if placed[0] <= placed[1] {
		t.Fatalf("healthy device did not absorb the load: placed = %v", placed)
	}
	if st := sb.Snapshot()[1]; st.Probes == 0 {
		t.Fatalf("no probes reached the quarantined device: %+v", st)
	}
	if !bytes.Equal(arch, seqArchive(t, input, opt.Options)) {
		t.Fatal("archive under score-weighted placement differs from the sequential reference")
	}
}

// TestProcessorAllQuarantinedFallsBackToCPU: when every device is
// quarantined, placement must degrade to the CPU path between probes rather
// than stall or crash.
func TestProcessorAllQuarantinedFallsBackToCPU(t *testing.T) {
	input := sample(128 << 10)
	const batchSize = 8 << 10
	sb := health.New(health.Config{
		Devices: 1, Window: 4, MinSamples: 4, Threshold: 0.5,
		ProbeEvery: 8, ReadmitAfter: 3,
	})
	opt := GPUOptions{
		Options:    Options{BatchSize: batchSize},
		MaxRetries: 1,
		Devices:    1,
		Health:     sb,
		Faults:     fault.Config{Seed: 3, TransferRate: 0.95, KernelRate: 0.95},
	}
	p := NewProcessor(opt, true)
	arch := runProcessor(t, input, p, batchSize)
	if !sb.Quarantined(0) {
		t.Fatalf("device not quarantined: %+v", sb.Snapshot())
	}
	if p.Report().Rerouted == 0 {
		t.Fatalf("no CPU fallback with the whole pool quarantined: %+v", p.Report())
	}
	if !bytes.Equal(arch, seqArchive(t, input, opt.Options)) {
		t.Fatal("archive with the pool quarantined differs from the sequential reference")
	}
}
