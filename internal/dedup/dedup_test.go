package dedup

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"streamgpu/internal/workload"
)

// sample returns a deterministic compressible input with duplication.
func sample(size int) []byte {
	return workload.Generate(workload.Spec{Kind: workload.Linux, Size: size, Seed: 42})
}

func TestSeqRoundTrip(t *testing.T) {
	input := sample(3 << 20)
	var arch bytes.Buffer
	st, err := CompressSeq(input, &arch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.RawBytes != int64(len(input)) {
		t.Errorf("RawBytes = %d, want %d", st.RawBytes, len(input))
	}
	var out bytes.Buffer
	if err := Restore(&arch, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), input) {
		t.Fatal("restore mismatch")
	}
}

func TestDedupActuallyDeduplicates(t *testing.T) {
	// Linux-like input has heavy duplication: the archive must be much
	// smaller than input and must contain dup records.
	input := sample(4 << 20)
	var arch bytes.Buffer
	st, err := CompressSeq(input, &arch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.DupBlocks == 0 {
		t.Error("no duplicate blocks found in a duplicate-heavy input")
	}
	if st.Ratio() < 2 {
		t.Errorf("compression ratio = %.2f, want >= 2 for Linux-like input", st.Ratio())
	}
	if arch.Len() >= len(input) {
		t.Errorf("archive (%d) not smaller than input (%d)", arch.Len(), len(input))
	}
}

func TestIncompressibleStoredRaw(t *testing.T) {
	input := make([]byte, 1<<20)
	rand.New(rand.NewSource(7)).Read(input)
	var arch bytes.Buffer
	st, err := CompressSeq(input, &arch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Random data: no dups, no compression win; archive ≈ input + headers.
	if st.DupBlocks != 0 {
		t.Errorf("random data produced %d dup blocks", st.DupBlocks)
	}
	if arch.Len() > len(input)+len(input)/50+64 {
		t.Errorf("raw storage overhead too high: %d vs %d", arch.Len(), len(input))
	}
	var out bytes.Buffer
	if err := Restore(&arch, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), input) {
		t.Fatal("restore mismatch on incompressible input")
	}
}

func TestSParMatchesSeqOutput(t *testing.T) {
	// The archive bytes must be identical regardless of parallelism: the
	// writer's stream-order decision makes output deterministic.
	input := sample(3 << 20)
	var seqArch, parArch bytes.Buffer
	if _, err := CompressSeq(input, &seqArch, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := CompressSPar(input, &parArch, Options{Workers: 7}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqArch.Bytes(), parArch.Bytes()) {
		t.Fatal("parallel archive differs from sequential archive")
	}
}

func TestSParRoundTripVariousWorkers(t *testing.T) {
	input := sample(2 << 20)
	for _, workers := range []int{1, 2, 8, 19} {
		var arch bytes.Buffer
		st, err := CompressSPar(input, &arch, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var out bytes.Buffer
		if err := Restore(&arch, &out); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(out.Bytes(), input) {
			t.Fatalf("workers=%d: restore mismatch", workers)
		}
		if st.UniqueBlocks+st.DupBlocks == 0 {
			t.Fatalf("workers=%d: no blocks processed", workers)
		}
	}
}

func TestFragmentCoversInput(t *testing.T) {
	input := sample(2<<20 + 12345) // not a multiple of the batch size
	var total int
	var batches int
	Fragment(input, DefaultBatchSize, func(b *Batch) {
		if b.Seq != batches {
			t.Errorf("batch seq %d, want %d", b.Seq, batches)
		}
		batches++
		total += len(b.Data)
		if len(b.Data) > DefaultBatchSize {
			t.Errorf("batch %d oversize: %d", b.Seq, len(b.Data))
		}
		if len(b.Data) > 0 && (len(b.StartPos) == 0 || b.StartPos[0] != 0) {
			t.Errorf("batch %d: StartPos must begin at 0", b.Seq)
		}
	})
	if total != len(input) {
		t.Errorf("batches cover %d bytes, want %d", total, len(input))
	}
	if batches != 3 {
		t.Errorf("got %d batches, want 3", batches)
	}
}

func TestBatchBlockBounds(t *testing.T) {
	b := &Batch{Data: make([]byte, 100), StartPos: []int32{0, 30, 70}}
	cases := []struct{ k, lo, hi int }{{0, 0, 30}, {1, 30, 70}, {2, 70, 100}}
	for _, c := range cases {
		lo, hi := b.Block(c.k)
		if lo != c.lo || hi != c.hi {
			t.Errorf("Block(%d) = [%d,%d), want [%d,%d)", c.k, lo, hi, c.lo, c.hi)
		}
	}
}

func TestStoreFirstSighting(t *testing.T) {
	s := NewStore()
	h1 := [20]byte{1}
	h2 := [20]byte{2}
	if !s.FirstSighting(h1) {
		t.Error("first sighting of h1 should be true")
	}
	if s.FirstSighting(h1) {
		t.Error("second sighting of h1 should be false")
	}
	if !s.FirstSighting(h2) {
		t.Error("first sighting of h2 should be true")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"wrong magic": []byte("NOTANARCHIVE"),
		"bad tag":     append(append([]byte{}, magic...), 'X', 0),
		"fwd ref":     append(append([]byte{}, magic...), 'D', 5),
	}
	for name, data := range cases {
		var out bytes.Buffer
		if err := Restore(bytes.NewReader(data), &out); err == nil {
			t.Errorf("%s: Restore should fail", name)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	var arch bytes.Buffer
	st, err := CompressSeq(nil, &arch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.RawBytes != 0 {
		t.Errorf("RawBytes = %d", st.RawBytes)
	}
	var out bytes.Buffer
	if err := Restore(&arch, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("restored %d bytes from empty input", out.Len())
	}
}

func TestWriterForcedFallback(t *testing.T) {
	// Simulate the race: upstream marked a block duplicate (no comp data)
	// but the hash was never written. The writer must compress inline and
	// still produce a valid archive.
	var arch bytes.Buffer
	dw := NewWriter(&arch)
	raw := bytes.Repeat([]byte("fallback"), 100)
	if err := dw.WriteBlock([20]byte{9}, raw, nil); err != nil {
		t.Fatal(err)
	}
	if dw.Stats().FallbackCompressions != 1 {
		t.Errorf("fallbacks = %d, want 1", dw.Stats().FallbackCompressions)
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := Restore(&arch, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), raw) {
		t.Fatal("fallback block restore mismatch")
	}
}

// Property: compress→restore is the identity for all three dataset kinds
// and multiple sizes/batch sizes.
func TestRoundTripProperty(t *testing.T) {
	f := func(kindSeed, sizeSeed uint8, parallel bool) bool {
		kind := workload.Kind(int(kindSeed) % 3)
		size := (int(sizeSeed)%8 + 1) * 64 * 1024
		input := workload.Generate(workload.Spec{Kind: kind, Size: size, Seed: int64(kindSeed)})
		var arch bytes.Buffer
		var err error
		opt := Options{BatchSize: 256 * 1024, Workers: 4}
		if parallel {
			_, err = CompressSPar(input, &arch, opt)
		} else {
			_, err = CompressSeq(input, &arch, opt)
		}
		if err != nil {
			return false
		}
		var out bytes.Buffer
		if err := Restore(&arch, &out); err != nil {
			return false
		}
		return bytes.Equal(out.Bytes(), input)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompressSeq(b *testing.B) {
	input := sample(4 << 20)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompressSeq(input, discard{}, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressSPar8(b *testing.B) {
	input := sample(4 << 20)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompressSPar(input, discard{}, Options{Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestRestoreParallelMatchesSerial(t *testing.T) {
	input := sample(3 << 20)
	var arch bytes.Buffer
	if _, err := CompressSPar(input, &arch, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		var out bytes.Buffer
		if err := RestoreParallel(bytes.NewReader(arch.Bytes()), &out, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(out.Bytes(), input) {
			t.Fatalf("workers=%d: parallel restore mismatch", workers)
		}
	}
}

func TestRestoreParallelRejectsGarbage(t *testing.T) {
	for name, data := range map[string][]byte{
		"empty":       {},
		"wrong magic": []byte("NOTANARCHIVE"),
		"bad tag":     append(append([]byte{}, magic...), 'X', 0),
		"fwd ref":     append(append([]byte{}, magic...), 'D', 5),
		"bad block":   append(append([]byte{}, magic...), 'U', 3, 9, 9, 9),
	} {
		var out bytes.Buffer
		if err := RestoreParallel(bytes.NewReader(data), &out, 4); err == nil {
			t.Errorf("%s: RestoreParallel should fail", name)
		}
	}
}
