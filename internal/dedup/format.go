// Package dedup reimplements PARSEC's Dedup benchmark with the paper's
// modifications (§IV-B): the input is cut into fixed 1 MB batches; Rabin
// fingerprinting runs on the CPU and yields the startPos block boundaries
// inside each batch (Fig. 2); blocks are SHA-1-fingerprinted and checked
// against a duplicate store; non-duplicate blocks are LZSS-compressed; an
// ordered final stage writes the archive. CPU pipelines run for real on
// the SPar DSL; the GPU-offloaded variants are modelled by
// internal/bench on the simulated device using the same building blocks.
package dedup

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"streamgpu/internal/lzss"
	"streamgpu/internal/sha1x"
)

// magic identifies the archive format.
var magic = []byte("SGDD1\x00")

// Record tags in the archive stream.
const (
	recUnique = 'U' // compressed unique block
	recRaw    = 'R' // stored (incompressible) unique block
	recDup    = 'D' // reference to an earlier unique block
)

// Stats summarizes one compression run.
type Stats struct {
	RawBytes     int64
	WrittenBytes int64
	UniqueBlocks int64
	DupBlocks    int64
	// FallbackCompressions counts blocks the writer had to compress inline
	// because the stream-order first occurrence lost the processing-time
	// race (see Writer).
	FallbackCompressions int64
}

// Ratio reports raw/written.
func (s Stats) Ratio() float64 {
	if s.WrittenBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.WrittenBytes)
}

// Writer emits the archive. It must see every block exactly once, in
// original stream order; it owns the authoritative duplicate decision
// (hash already written → reference, else → data), which makes the output
// deterministic regardless of how upstream stages raced on the shared
// duplicate-store hint.
type Writer struct {
	w       *bufio.Writer
	written map[[sha1x.Size]byte]uint64
	next    uint64
	stats   Stats
	started bool
	// Inline-fallback compression state, lazily created: the matcher's
	// tables and the output scratch are reused across blocks so the
	// sequential path (which always compresses inline) stays allocation-free
	// once warm.
	m       *lzss.Matcher
	scratch []byte
}

// NewWriter creates an archive writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), written: make(map[[sha1x.Size]byte]uint64)}
}

// WriteBlock writes one block in stream order. comp is the block's LZSS
// compression if an upstream stage prepared it (nil if the block was judged
// duplicate upstream); the writer compresses inline when it needs data it
// was not given.
func (dw *Writer) WriteBlock(hash [sha1x.Size]byte, raw []byte, comp []byte) error {
	if !dw.started {
		if _, err := dw.w.Write(magic); err != nil {
			return err
		}
		dw.started = true
	}
	dw.stats.RawBytes += int64(len(raw))
	if id, ok := dw.written[hash]; ok {
		dw.stats.DupBlocks++
		n, err := dw.writeRecord(recDup, id, nil)
		dw.stats.WrittenBytes += int64(n)
		return err
	}
	if comp == nil {
		if dw.m == nil {
			dw.m = lzss.NewMatcher()
		}
		dw.scratch = dw.m.AppendCompress(dw.scratch[:0], raw)
		comp = dw.scratch
		dw.stats.FallbackCompressions++
	}
	dw.written[hash] = dw.next
	dw.next++
	dw.stats.UniqueBlocks++
	var n int
	var err error
	if len(comp) < len(raw) {
		n, err = dw.writeRecord(recUnique, uint64(len(comp)), comp)
	} else {
		n, err = dw.writeRecord(recRaw, uint64(len(raw)), raw)
	}
	dw.stats.WrittenBytes += int64(n)
	return err
}

// writeRecord emits tag + uvarint + optional payload, returning bytes
// written.
func (dw *Writer) writeRecord(tag byte, v uint64, payload []byte) (int, error) {
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = tag
	n := 1 + binary.PutUvarint(hdr[1:], v)
	if _, err := dw.w.Write(hdr[:n]); err != nil {
		return 0, err
	}
	if payload != nil {
		if _, err := dw.w.Write(payload); err != nil {
			return 0, err
		}
	}
	return n + len(payload), nil
}

// Close flushes the archive. The writer cannot be used afterwards.
func (dw *Writer) Close() error {
	if !dw.started {
		if _, err := dw.w.Write(magic); err != nil {
			return err
		}
		dw.started = true
	}
	return dw.w.Flush()
}

// Stats returns the accumulated statistics.
func (dw *Writer) Stats() Stats { return dw.stats }

// ErrFormat reports a malformed archive.
var ErrFormat = errors.New("dedup: bad archive")

// readExactCapped appends exactly v bytes from r to dst[:0], growing the
// buffer in bounded steps: a corrupted length field can therefore only cost
// an allocation proportional to the bytes actually present in the stream
// (at most 2x + one step), never the claimed v, before ReadFull reports the
// truncation.
func readExactCapped(r io.Reader, dst []byte, v uint64) ([]byte, error) {
	const step = 64 << 10
	if uint64(cap(dst)) >= v {
		dst = dst[:v]
		_, err := io.ReadFull(r, dst)
		return dst, err
	}
	dst = dst[:0]
	for uint64(len(dst)) < v {
		n := step
		if rem := v - uint64(len(dst)); rem < step {
			n = int(rem)
		}
		if cap(dst)-len(dst) < n {
			grown := make([]byte, len(dst), len(dst)*2+n)
			copy(grown, dst)
			dst = grown
		}
		m, err := io.ReadFull(r, dst[len(dst):len(dst)+n])
		dst = dst[:len(dst)+m]
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// Restore decompresses an archive back to the original stream.
func Restore(r io.Reader, w io.Writer) error {
	br := bufio.NewReaderSize(r, 1<<16)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return fmt.Errorf("%w: missing magic: %v", ErrFormat, err)
	}
	for i := range magic {
		if got[i] != magic[i] {
			return fmt.Errorf("%w: wrong magic", ErrFormat)
		}
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var blocks [][]byte
	var comp []byte // reused across records: decoded blocks copy out of it
	for {
		tag, err := br.ReadByte()
		if err == io.EOF {
			return bw.Flush()
		}
		if err != nil {
			return err
		}
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: truncated record: %v", ErrFormat, err)
		}
		switch tag {
		case recUnique:
			comp, err = readExactCapped(br, comp, v)
			if err != nil {
				return fmt.Errorf("%w: truncated block: %v", ErrFormat, err)
			}
			raw, err := lzss.Decompress(comp)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrFormat, err)
			}
			blocks = append(blocks, raw)
			if _, err := bw.Write(raw); err != nil {
				return err
			}
		case recRaw:
			raw, err := readExactCapped(br, nil, v)
			if err != nil {
				return fmt.Errorf("%w: truncated raw block: %v", ErrFormat, err)
			}
			blocks = append(blocks, raw)
			if _, err := bw.Write(raw); err != nil {
				return err
			}
		case recDup:
			if v >= uint64(len(blocks)) {
				return fmt.Errorf("%w: reference %d to unwritten block (%d known)", ErrFormat, v, len(blocks))
			}
			if _, err := bw.Write(blocks[v]); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unknown record tag %q", ErrFormat, tag)
		}
	}
}
