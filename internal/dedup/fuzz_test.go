package dedup

import (
	"bytes"
	"errors"
	"io"
	"runtime"
	"testing"

	"streamgpu/internal/sha1x"
)

// fuzzArchive builds a small valid archive for the seed corpus.
func fuzzArchive(t interface{ Fatal(...any) }, chunks ...[]byte) []byte {
	var buf bytes.Buffer
	dw := NewWriter(&buf)
	for _, c := range chunks {
		if err := dw.WriteBlock(sha1x.Sum20(c), c, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzRestore throws arbitrary bytes at both restore implementations. The
// contracts: neither panics, neither over-allocates from hostile length
// fields (the fuzzer's own OOM detection backstops this), both agree on
// accept/reject, and on success they produce identical output.
func FuzzRestore(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SGDD1\x00"))
	f.Add([]byte("SGDD1\x00R\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01few"))
	f.Add(fuzzArchive(f, []byte("hello hello hello hello"), []byte("hello hello hello hello"), bytes.Repeat([]byte("ab"), 400)))
	f.Fuzz(func(t *testing.T, data []byte) {
		var seq bytes.Buffer
		seqErr := Restore(bytes.NewReader(data), &seq)
		var par bytes.Buffer
		parErr := RestoreParallel(bytes.NewReader(data), &par, 2)
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("restore disagreement: seq err %v, parallel err %v", seqErr, parErr)
		}
		if seqErr == nil && !bytes.Equal(seq.Bytes(), par.Bytes()) {
			t.Fatalf("restore outputs differ: %d vs %d bytes", seq.Len(), par.Len())
		}
	})
}

// TestRestoreHostileLengthBoundedAlloc crafts a tiny archive whose record
// declares a multi-gigabyte payload and checks the restore path reports a
// truncation error after allocating only a stream-proportional amount —
// the regression the capped incremental reader fixed.
func TestRestoreHostileLengthBoundedAlloc(t *testing.T) {
	hostile := []byte("SGDD1\x00")
	hostile = append(hostile, recRaw)
	// uvarint for 1<<40 (1 TiB), followed by a handful of real bytes.
	hostile = append(hostile, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01)
	hostile = append(hostile, "only a few bytes follow"...)

	for name, restore := range map[string]func(io.Reader, io.Writer) error{
		"Restore":         Restore,
		"RestoreParallel": func(r io.Reader, w io.Writer) error { return RestoreParallel(r, w, 2) },
	} {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		err := restore(bytes.NewReader(hostile), io.Discard)
		runtime.ReadMemStats(&m1)
		if !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", name, err)
		}
		if grew := m1.TotalAlloc - m0.TotalAlloc; grew > 8<<20 {
			t.Errorf("%s: allocated %d bytes handling a %d-byte hostile archive", name, grew, len(hostile))
		}
	}
}
