package dedup

import (
	"bytes"
	"testing"

	"streamgpu/internal/fault"
)

// gpuSample keeps GPU tests fast: the FastKernel cost model is cheap, but
// match precomputation and retries still touch every byte.
func gpuSample(t *testing.T) []byte {
	t.Helper()
	return sample(256 << 10)
}

// seqArchive compresses input with the sequential reference and returns the
// archive bytes.
func seqArchive(t *testing.T, input []byte, opt Options) []byte {
	t.Helper()
	var arch bytes.Buffer
	if _, err := CompressSeq(input, &arch, opt); err != nil {
		t.Fatal(err)
	}
	return arch.Bytes()
}

func TestCompressGPUFaultFreeMatchesSeq(t *testing.T) {
	input := gpuSample(t)
	opt := GPUOptions{Options: Options{BatchSize: 32 << 10}}
	var arch bytes.Buffer
	_, rep, err := CompressGPU(input, &arch, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CPUHash != 0 || rep.CPUCompress != 0 || rep.Retries != 0 {
		t.Fatalf("fault-free run reported recovery activity: %+v", rep)
	}
	if rep.GPUHash == 0 || rep.GPUCompress == 0 {
		t.Fatalf("no batches ran on the device: %+v", rep)
	}
	if !bytes.Equal(arch.Bytes(), seqArchive(t, input, opt.Options)) {
		t.Fatal("GPU archive differs from the sequential reference")
	}
	var out bytes.Buffer
	if err := Restore(bytes.NewReader(arch.Bytes()), &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), input) {
		t.Fatal("restore mismatch")
	}
}

func TestCompressGPUTransientFaultsRetry(t *testing.T) {
	input := gpuSample(t)
	opt := GPUOptions{
		Options:    Options{BatchSize: 16 << 10},
		MaxRetries: 8,
		Faults:     fault.Config{Seed: 33, TransferRate: 0.1, KernelRate: 0.1},
	}
	var arch bytes.Buffer
	_, rep, err := CompressGPU(input, &arch, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Fatalf("expected transient retries at 10%% rates: %+v", rep)
	}
	if rep.DeviceLost {
		t.Fatalf("no device loss configured: %+v", rep)
	}
	if !bytes.Equal(arch.Bytes(), seqArchive(t, input, opt.Options)) {
		t.Fatal("archive under transient faults differs from the fault-free reference")
	}
	var out bytes.Buffer
	if err := Restore(bytes.NewReader(arch.Bytes()), &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), input) {
		t.Fatal("restore mismatch under transient faults")
	}
}

func TestCompressGPUDeviceLossDegradesToCPU(t *testing.T) {
	input := gpuSample(t)
	opt := GPUOptions{
		Options: Options{BatchSize: 16 << 10},
		Faults:  fault.Config{Seed: 2, KillAfterOps: 9},
	}
	var arch bytes.Buffer
	_, rep, err := CompressGPU(input, &arch, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DeviceLost {
		t.Fatalf("device should be lost: %+v", rep)
	}
	if rep.CPUHash == 0 && rep.CPUCompress == 0 {
		t.Fatalf("after device loss some stages must degrade to CPU: %+v", rep)
	}
	if !bytes.Equal(arch.Bytes(), seqArchive(t, input, opt.Options)) {
		t.Fatal("archive after device loss differs from the fault-free reference")
	}
	var out bytes.Buffer
	if err := Restore(bytes.NewReader(arch.Bytes()), &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), input) {
		t.Fatal("restore mismatch after device loss")
	}
}

func TestCompressGPUDeterministicReport(t *testing.T) {
	input := gpuSample(t)
	opt := GPUOptions{
		Options:    Options{BatchSize: 16 << 10},
		MaxRetries: 4,
		Faults:     fault.Config{Seed: 17, TransferRate: 0.05, KernelRate: 0.05, KillAfterOps: 40},
	}
	var a, b bytes.Buffer
	_, repA, errA := CompressGPU(input, &a, opt)
	_, repB, errB := CompressGPU(input, &b, opt)
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v, %v", errA, errB)
	}
	if repA != repB {
		t.Fatalf("same seed, different reports: %+v vs %+v", repA, repB)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed, different archives")
	}
}
