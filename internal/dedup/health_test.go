package dedup

import (
	"bytes"
	"sync/atomic"
	"testing"

	"streamgpu/internal/fault"
	"streamgpu/internal/health"
)

// runProcessor streams input through a serving-path Processor batch by
// batch, returning the archive bytes and the final report.
func runProcessor(t *testing.T, input []byte, p *Processor, batchSize int) []byte {
	t.Helper()
	var arch bytes.Buffer
	dw := NewWriter(&arch)
	store := NewStore()
	var batches []*Batch
	Fragment(input, batchSize, func(b *Batch) { batches = append(batches, b) })
	for _, b := range batches {
		p.Process(b, store)
		if err := b.WriteBlocks(dw); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	return arch.Bytes()
}

// TestProcessorQuarantineReroutes drives a two-device Processor with device 1
// injecting heavy faults: the scoreboard must quarantine it, reroute its
// batches to the CPU, and the archive must stay byte-identical to the
// sequential reference — degradation costs throughput, never correctness.
func TestProcessorQuarantineReroutes(t *testing.T) {
	input := sample(512 << 10)
	const batchSize = 8 << 10
	var faultRate atomic.Value
	faultRate.Store(0.9)
	sb := health.New(health.Config{
		Devices: 2, Window: 8, MinSamples: 4, Threshold: 0.5,
		ProbeEvery: 4, ReadmitAfter: 2,
	})
	opt := GPUOptions{
		Options:    Options{BatchSize: batchSize},
		MaxRetries: 1,
		Devices:    2,
		Health:     sb,
		// This test pins the blind-placement semantics: a quarantined
		// device's batches reroute to the CPU. Score-weighted placement
		// (which sheds them to other devices instead) has its own test.
		BlindPlacement: true,
		FaultsFor: func(dev int) fault.Config {
			if dev != 1 {
				return fault.Config{Seed: 1}
			}
			return fault.Config{Seed: 7, TransferRate: faultRate.Load().(float64), KernelRate: faultRate.Load().(float64)}
		},
	}
	p := NewProcessor(opt, true)
	arch := runProcessor(t, input, p, batchSize)

	if !sb.Quarantined(1) {
		t.Fatalf("device 1 not quarantined at 90%% fault rates: %+v", sb.Snapshot())
	}
	if sb.Quarantined(0) {
		t.Fatalf("healthy device 0 quarantined: %+v", sb.Snapshot())
	}
	if p.Report().Rerouted == 0 {
		t.Fatalf("no batches rerouted around the quarantined device: %+v", p.Report())
	}
	if !bytes.Equal(arch, seqArchive(t, input, opt.Options)) {
		t.Fatal("archive under quarantine differs from the sequential reference")
	}
	var out bytes.Buffer
	if err := Restore(bytes.NewReader(arch), &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), input) {
		t.Fatal("restore mismatch under quarantine")
	}

	// Heal the device and keep streaming: probes come back clean and the
	// scoreboard must re-admit it.
	faultRate.Store(0.0)
	p2 := NewProcessor(opt, true)
	arch2 := runProcessor(t, input, p2, batchSize)
	if sb.Quarantined(1) {
		t.Fatalf("healed device 1 never re-admitted: %+v", sb.Snapshot())
	}
	if st := sb.Snapshot()[1]; st.Readmits == 0 {
		t.Fatalf("no re-admission recorded: %+v", st)
	}
	if !bytes.Equal(arch2, seqArchive(t, input, opt.Options)) {
		t.Fatal("archive across re-admission differs from the sequential reference")
	}
}
