package dedup

import (
	"io"
	"time"

	"streamgpu/internal/des"
	"streamgpu/internal/fault"
	"streamgpu/internal/gpu"
	"streamgpu/internal/health"
	"streamgpu/internal/lzss"
	"streamgpu/internal/sha1x"
)

// GPUOptions configures CompressGPU.
type GPUOptions struct {
	Options
	// MaxRetries bounds transient-fault retries per stage per batch before
	// the stage degrades to its CPU path.
	MaxRetries int
	// Faults is the device's injector config; the zero value runs fault-free.
	Faults fault.Config
	// Devices is the simulated device pool size for the serving path's
	// Processor: batches are spread across devices by sequence number
	// (default 1). CompressGPU ignores it — a one-shot run owns one device.
	Devices int
	// FaultsFor, when set, overrides Faults per device on the serving path —
	// the chaos harness's hook for degrading one device mid-stream. Called
	// once per batch with the batch's device index.
	FaultsFor func(dev int) fault.Config
	// Health, when set, routes each serving-path batch through the
	// per-device scoreboard: placement weights by health score, a
	// quarantined device gets only probe batches, a batch no device can
	// take runs on the CPU fallback, and every device-run outcome (and its
	// observed service time) is recorded.
	Health *health.Scoreboard
	// Fleet, when set, gives each serving-path device its own spec
	// (heterogeneous pools, gpu.ParseFleet); len(Fleet) overrides Devices.
	// CompressGPU's one-shot device uses Fleet[0] when present.
	Fleet []gpu.DeviceSpec
	// BlindPlacement forces sequence-modulo round-robin even when Health is
	// set (quarantined devices' batches reroute to the CPU instead of other
	// devices) — the pre-placement behavior, kept as the figures baseline.
	BlindPlacement bool
	// Placed, when set, observes every serving-path placement decision:
	// dev >= 0 with the batch's virtual device seconds, or dev = -1 for a
	// batch that ran on the CPU fallback. The fleet figure's lane-accounting
	// hook.
	Placed func(dev int, probe bool, virtualSeconds float64)
}

func (o GPUOptions) devices() int {
	if len(o.Fleet) > 0 {
		return len(o.Fleet)
	}
	if o.Devices <= 0 {
		return 1
	}
	return o.Devices
}

// specFor resolves device dev's hardware spec.
func (o GPUOptions) specFor(dev int) gpu.DeviceSpec {
	if dev >= 0 && dev < len(o.Fleet) {
		return o.Fleet[dev]
	}
	return gpu.TitanXPSpec()
}

// faultsFor resolves the injector config for one device.
func (o GPUOptions) faultsFor(dev int) fault.Config {
	if o.FaultsFor != nil {
		return o.FaultsFor(dev)
	}
	return o.Faults
}

func (o GPUOptions) maxRetries() int {
	if o.MaxRetries <= 0 {
		return 3
	}
	return o.MaxRetries
}

// GPUReport describes where each stage of each batch actually ran and what
// the recovery machinery absorbed.
type GPUReport struct {
	Retries     int // transient faults absorbed by retry
	GPUHash     int // batches hashed on the device
	GPUCompress int // batches match-scanned on the device
	CPUHash     int // batches whose hashing degraded to the CPU
	CPUCompress int // batches whose compression degraded to the CPU
	Rerouted    int // batches rerouted to the CPU by device quarantine
	DeviceLost  bool
}

// CompressGPU is the offloaded Dedup pipeline (§IV-B) under the
// fault-tolerance layer: SHA-1 hashing and LZSS match-finding run as device
// kernels, transient faults are retried with exponential backoff in virtual
// time, and a dead device (or an exhausted retry budget) degrades the
// affected stage to the CPU path. The archive is byte-identical to
// CompressSeq's regardless of the injected fault schedule, because both
// kernels are bit-exact against their CPU references and the Writer makes
// the authoritative stream-order dedup decision either way.
func CompressGPU(input []byte, w io.Writer, opt GPUOptions) (Stats, GPUReport, error) {
	dw := NewWriter(w)
	store := NewStore()
	var rep GPUReport

	var batches []*Batch
	Fragment(input, opt.batchSize(), func(b *Batch) { batches = append(batches, b) })

	sim := des.New()
	dev := gpu.NewDevice(sim, opt.specFor(0), 0)
	dev.SetTelemetry(opt.Metrics)
	if opt.Faults != (fault.Config{}) {
		dev.SetFaultInjector(fault.New(opt.Faults))
	}
	var writeErr error
	sim.Spawn("dedup-gpu", func(proc *des.Proc) {
		st := dev.NewStream("")
		for _, b := range batches {
			gpuHashBatch(proc, st, dev, b, opt, &rep)
			gpuCompressBatch(proc, st, dev, b, store, opt, &rep)
			if err := writeBatch(b, dw); err != nil {
				writeErr = err
				return
			}
		}
	})
	if _, err := sim.Run(); err != nil {
		return dw.Stats(), rep, err
	}
	rep.DeviceLost = dev.Lost()
	if writeErr != nil {
		return dw.Stats(), rep, writeErr
	}
	st := dw.Stats()
	if err := dw.Close(); err != nil {
		return st, rep, err
	}
	return dw.Stats(), rep, nil
}

// gpuHashBatch fills b.Hashes, preferring the device SHA-1 kernel and
// degrading to the CPU path on device loss or an exhausted retry budget.
func gpuHashBatch(proc *des.Proc, st *gpu.Stream, dev *gpu.Device, b *Batch, opt GPUOptions, rep *GPUReport) {
	n := b.NBlocks()
	if n == 0 {
		b.Hashes = nil
		return
	}
	cpu := func() {
		b.HashBlocks()
		rep.CPUHash++
	}
	dIn, dSp, dOut, freeAll, err := mallocN(dev, int64(len(b.Data)), int64(n*4), int64(n*sha1x.Size))
	if err != nil {
		cpu()
		return
	}
	defer freeAll()
	hIn := gpu.WrapHost(b.Data)
	hSp := gpu.NewPinnedBuf(int64(n * 4))
	sha1x.PutStartPos(hSp.Data, b.StartPos)
	hOut := gpu.NewPinnedBuf(int64(n * sha1x.Size))

	run := func() error {
		ev1 := st.CopyH2D(proc, dIn, 0, hIn, 0, int64(len(b.Data)))
		ev2 := st.CopyH2D(proc, dSp, 0, hSp, 0, int64(n*4))
		evK := st.Launch(proc, sha1x.Kernel.Bind(dIn, dSp, n, len(b.Data), dOut), gpu.Grid1D(n, 64))
		evC := st.CopyD2H(proc, hOut, 0, dOut, 0, int64(n*sha1x.Size))
		return gpu.WaitErr(proc, ev1, ev2, evK, evC)
	}
	if err := withRetry(proc, opt.maxRetries(), rep, run); err != nil {
		cpu()
		return
	}
	b.Hashes = make([][sha1x.Size]byte, n)
	for k := 0; k < n; k++ {
		copy(b.Hashes[k][:], hOut.Data[k*sha1x.Size:])
	}
	rep.GPUHash++
}

// gpuCompressBatch fills b.Comp for the blocks this run sees first,
// preferring the device match kernel and degrading to the CPU path on
// device loss or an exhausted retry budget.
func gpuCompressBatch(proc *des.Proc, st *gpu.Stream, dev *gpu.Device, b *Batch, store BlockStore, opt GPUOptions, rep *GPUReport) {
	n := b.NBlocks()
	b.Comp = make([][]byte, n)
	if n == 0 {
		return
	}
	isFirst := make([]bool, n)
	store.FirstSightings(b.Hashes, isFirst)
	var firsts []int
	for k := 0; k < n; k++ {
		if isFirst[k] {
			firsts = append(firsts, k)
		}
	}
	if len(firsts) == 0 {
		return
	}
	cpu := func() {
		for _, k := range firsts {
			lo, hi := b.Block(k)
			b.Comp[k] = lzss.Compress(b.Data[lo:hi])
		}
		rep.CPUCompress++
	}
	sz := int64(len(b.Data))
	dIn, dSp, dMl, dMo, freeAll, err := malloc4(dev, sz, int64(n*4), sz*4, sz*4)
	if err != nil {
		cpu()
		return
	}
	defer freeAll()
	hIn := gpu.WrapHost(b.Data)
	hSp := gpu.NewPinnedBuf(int64(n * 4))
	sha1x.PutStartPos(hSp.Data, b.StartPos)
	hMl := gpu.NewPinnedBuf(sz * 4)
	hMo := gpu.NewPinnedBuf(sz * 4)
	pre := lzss.Precompute(b.Data, b.StartPos)
	spec := lzss.FastKernel()

	run := func() error {
		ev1 := st.CopyH2D(proc, dIn, 0, hIn, 0, sz)
		ev2 := st.CopyH2D(proc, dSp, 0, hSp, 0, int64(n*4))
		evK := st.Launch(proc, spec.Bind(dIn, len(b.Data), dSp, n, dMl, dMo, pre), gpu.Grid1D(len(b.Data), 128))
		evL := st.CopyD2H(proc, hMl, 0, dMl, 0, sz*4)
		evO := st.CopyD2H(proc, hMo, 0, dMo, 0, sz*4)
		return gpu.WaitErr(proc, ev1, ev2, evK, evL, evO)
	}
	if err := withRetry(proc, opt.maxRetries(), rep, run); err != nil {
		cpu()
		return
	}
	ml, mo := lzss.ReadMatches(hMl.Data, hMo.Data, len(b.Data))
	for _, k := range firsts {
		lo, hi := b.Block(k)
		b.Comp[k] = lzss.EncodeFromMatches(b.Data, lo, hi, ml, mo)
	}
	rep.GPUCompress++
}

// withRetry runs fn, retrying transient faults with exponential backoff in
// virtual time up to maxRetries. Device loss is returned immediately.
func withRetry(proc *des.Proc, maxRetries int, rep *GPUReport, fn func() error) error {
	backoff := des.Duration(50 * time.Microsecond)
	for attempt := 0; ; attempt++ {
		err := fn()
		if err == nil {
			return nil
		}
		if fault.IsDeviceLost(err) || attempt >= maxRetries {
			return err
		}
		rep.Retries++
		proc.Wait(backoff)
		backoff *= 2
	}
}

// mallocN allocates three device buffers or none, returning a single
// release function.
func mallocN(dev *gpu.Device, n1, n2, n3 int64) (b1, b2, b3 *gpu.Buf, free func(), err error) {
	bufs := make([]*gpu.Buf, 0, 3)
	free = func() {
		for _, b := range bufs {
			b.Free()
		}
	}
	for _, n := range []int64{n1, n2, n3} {
		b, err := dev.Malloc(n)
		if err != nil {
			free()
			return nil, nil, nil, nil, err
		}
		bufs = append(bufs, b)
	}
	return bufs[0], bufs[1], bufs[2], free, nil
}

// malloc4 is mallocN for four buffers.
func malloc4(dev *gpu.Device, n1, n2, n3, n4 int64) (b1, b2, b3, b4 *gpu.Buf, free func(), err error) {
	a, b, c, freeABC, err := mallocN(dev, n1, n2, n3)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	d, err := dev.Malloc(n4)
	if err != nil {
		freeABC()
		return nil, nil, nil, nil, nil, err
	}
	return a, b, c, d, func() { freeABC(); d.Free() }, nil
}
