package dedup

import (
	"bytes"
	"sync"
	"testing"

	"streamgpu/internal/pool"
	"streamgpu/internal/rabin"
)

// TestPooledPipelineStress runs several 5-stage pooled pipelines
// concurrently over the shared batch free list and checks every archive is
// byte-identical to the sequential reference. Under -race this exercises
// the ownership contract: a use-after-release of a recycled batch (or of
// any slice hanging off one) shows up as a data race or a corrupt archive.
func TestPooledPipelineStress(t *testing.T) {
	input := sample(2 << 20)
	var want bytes.Buffer
	if _, err := CompressSeq(input, &want, Options{BatchSize: 96 << 10}); err != nil {
		t.Fatal(err)
	}

	const runs = 4
	var wg sync.WaitGroup
	errs := make([]error, runs)
	archs := make([]bytes.Buffer, runs)
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			opt := Options{BatchSize: 96 << 10, Workers: 3}
			_, errs[r] = CompressSPar(input, &archs[r], opt)
		}(r)
	}
	wg.Wait()
	for r := 0; r < runs; r++ {
		if errs[r] != nil {
			t.Fatalf("run %d: %v", r, errs[r])
		}
		if !bytes.Equal(archs[r].Bytes(), want.Bytes()) {
			t.Fatalf("run %d: pooled pipeline archive differs from CompressSeq", r)
		}
	}

	// Round-trip one of them for good measure.
	var out bytes.Buffer
	if err := Restore(bytes.NewReader(archs[0].Bytes()), &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), input) {
		t.Fatal("restore mismatch")
	}
}

// TestFragmentIntoRecycles checks released batches actually come back from
// the free list with their per-batch state cleared.
func TestFragmentIntoRecycles(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("sync.Pool randomizes reuse under -race")
	}
	input := sample(512 << 10)
	var batches []*Batch
	FragmentInto(input, 128<<10, func(b *Batch) {
		if b.NBlocks() == 0 || b.StartPos[0] != 0 {
			t.Fatalf("batch %d: bad boundaries", b.Seq)
		}
		batches = append(batches, b)
	})
	if len(batches) != 4 {
		t.Fatalf("got %d batches, want 4", len(batches))
	}
	for _, b := range batches {
		b.HashBlocks()
		b.Release()
	}
	// A fresh fragmentation must find recycled containers with cleared
	// result state.
	FragmentInto(input, 128<<10, func(b *Batch) {
		if len(b.Hashes) != 0 || len(b.Comp) != 0 {
			t.Fatalf("batch %d: recycled with stale results", b.Seq)
		}
		b.Release()
	})
	st := batchPool.Stats()
	if st.Gets-st.Misses == 0 {
		t.Fatalf("no batch reuse observed: %+v", st)
	}
}

// TestReleaseOnPlainBatchIsNoOp guards the unconditional-release contract
// for batches created by Fragment.
func TestReleaseOnPlainBatchIsNoOp(t *testing.T) {
	input := sample(64 << 10)
	Fragment(input, 0, func(b *Batch) {
		b.Release()
		if b.Data == nil {
			t.Fatal("Release cleared a non-pooled batch")
		}
	})
}

// TestSeqAllocsSteadyState pins the sequential host path: after a warm-up
// run, compressing with a warm Writer must stay modest on allocations per
// batch (the archive map and bufio flushing still allocate, but the kernel
// paths must not). This is a regression tripwire rather than a strict zero.
func TestSeqAllocsSteadyState(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	input := sample(1 << 20)
	b := &Batch{Data: input}
	c := rabin.NewChunker()
	b.StartPos = c.AppendBoundaries(nil, input)
	b.HashBlocks()
	allocs := testing.AllocsPerRun(5, func() {
		b.StartPos = c.AppendBoundaries(b.StartPos[:0], input)
		b.HashBlocks()
	})
	if allocs != 0 {
		t.Fatalf("fragment+hash allocates %v per batch, want 0", allocs)
	}
}
