package dedup

import (
	"context"
	"io"

	"streamgpu/internal/core"
	"streamgpu/internal/lzss"
	"streamgpu/internal/telemetry"
)

// Options configures a compression run.
type Options struct {
	// BatchSize is the fragmentation size (default 1 MB).
	BatchSize int
	// Workers replicates the hash+compress stage (the paper uses 19).
	Workers int
	// Metrics, when set, instruments the run: the SPar pipeline surfaces
	// per-stage counters, service histograms and queue gauges labelled
	// {pipeline="dedup"}; the GPU path additionally attaches the device
	// engine metrics. nil is off.
	Metrics *telemetry.Registry
	// Trace, when set, records per-batch stage enter/exit events on the
	// SPar pipeline. nil is off.
	Trace *telemetry.StreamTracer
}

func (o Options) batchSize() int {
	if o.BatchSize <= 0 {
		return DefaultBatchSize
	}
	return o.BatchSize
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return 1
	}
	return o.Workers
}

// CompressSeq is the single-threaded reference implementation: fragment,
// hash, dedup, compress, write — one batch at a time.
func CompressSeq(input []byte, w io.Writer, opt Options) (Stats, error) {
	dw := NewWriter(w)
	var firstErr error
	Fragment(input, opt.batchSize(), func(b *Batch) {
		if firstErr != nil {
			return
		}
		b.HashBlocks()
		for k := 0; k < b.NBlocks(); k++ {
			lo, hi := b.Block(k)
			if err := dw.WriteBlock(b.Hashes[k], b.Data[lo:hi], nil); err != nil {
				firstErr = err
				return
			}
		}
	})
	if firstErr != nil {
		return dw.Stats(), firstErr
	}
	// The sequential path always compresses inline; that is not a race
	// fallback, so do not report it as one.
	st := dw.Stats()
	st.FallbackCompressions = 0
	if err := dw.Close(); err != nil {
		return st, err
	}
	return st, nil
}

// processBatch is the replicated middle-stage body shared by the parallel
// CPU pipelines: hash every block, consult the shared store, and compress
// the blocks this worker saw first.
func processBatch(b *Batch, store *Store) {
	b.HashBlocks()
	b.Comp = make([][]byte, b.NBlocks())
	for k := 0; k < b.NBlocks(); k++ {
		if store.FirstSighting(b.Hashes[k]) {
			lo, hi := b.Block(k)
			b.Comp[k] = lzss.Compress(b.Data[lo:hi])
		}
	}
}

// writeBatch is the ordered final-stage body: the authoritative
// stream-order dedup decision plus archive output.
func writeBatch(b *Batch, dw *Writer) error {
	for k := 0; k < b.NBlocks(); k++ {
		lo, hi := b.Block(k)
		if err := dw.WriteBlock(b.Hashes[k], b.Data[lo:hi], b.Comp[k]); err != nil {
			return err
		}
	}
	return nil
}

// CompressSPar runs the paper's CPU-only Dedup: a SPar ToStream region with
// three stages — fragmentation (source), replicated hash/dedup/compress,
// and ordered reorder+write — the structure of Griebler et al. [22].
func CompressSPar(input []byte, w io.Writer, opt Options) (Stats, error) {
	return CompressSParContext(context.Background(), input, w, opt)
}

// CompressSParContext is CompressSPar under a context: cancellation or
// timeout aborts the stream mid-run (the archive is then truncated and the
// context error is returned).
func CompressSParContext(ctx context.Context, input []byte, w io.Writer, opt Options) (Stats, error) {
	dw := NewWriter(w)
	store := NewStore()

	ts := core.NewToStream(core.Ordered(), core.Input("input", "batchSize"),
		core.Telemetry(opt.Metrics, "dedup"), core.Trace(opt.Trace)).
		Stage(func(item any, emit func(any)) {
			b := item.(*Batch)
			processBatch(b, store)
			emit(b)
		}, core.Replicate(opt.workers()), core.Name("hash+compress"),
			core.Input("input", "batchSize"), core.Output("batch")).
		StageErr(func(item any, emit func(any)) error {
			// A write failure flows through the runtime's error channel:
			// the stream is canceled and the error returns from Run.
			return writeBatch(item.(*Batch), dw)
		}, core.Name("reorder+write"), core.Input("batch"))

	err := ts.RunContext(ctx, func(emit func(any)) {
		Fragment(input, opt.batchSize(), func(b *Batch) { emit(b) })
	})
	if err == nil {
		err = dw.Close()
	}
	return dw.Stats(), err
}
