package dedup

import (
	"context"
	"io"

	"streamgpu/internal/core"
	"streamgpu/internal/lzss"
	"streamgpu/internal/telemetry"
)

// Options configures a compression run.
type Options struct {
	// BatchSize is the fragmentation size (default 1 MB).
	BatchSize int
	// Workers replicates the hash+compress stage (the paper uses 19).
	Workers int
	// Lanes is the intra-batch parallelism of the compress stage: each
	// batch's blocks are split into up to Lanes byte-balanced ranges
	// compressed concurrently (lzss.FindMatchesPar's partition), bit-exact
	// to the sequential encoder. 0 derives the count from GOMAXPROCS
	// (lzss.DefaultLanes) on the parallel paths; CompressSeq stays the
	// single-threaded reference unless Lanes > 1 is set explicitly.
	// Negative forces one lane.
	Lanes int
	// StoreShards is the duplicate store's stripe count (rounded up to a
	// power of two; default DefaultStoreShards). More stripes cut lock
	// collisions between replicated compress stages.
	StoreShards int
	// Metrics, when set, instruments the run: the SPar pipeline surfaces
	// per-stage counters, service histograms and queue gauges labelled
	// {pipeline="dedup"}; the GPU path additionally attaches the device
	// engine metrics. nil is off.
	Metrics *telemetry.Registry
	// Trace, when set, records per-batch stage enter/exit events on the
	// SPar pipeline. nil is off.
	Trace *telemetry.StreamTracer
}

func (o Options) batchSize() int {
	if o.BatchSize <= 0 {
		return DefaultBatchSize
	}
	return o.BatchSize
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return 1
	}
	return o.Workers
}

// lanes resolves the effective compress-lane count for the parallel paths.
func (o Options) lanes() int {
	if o.Lanes > 0 {
		return o.Lanes
	}
	if o.Lanes < 0 {
		return 1
	}
	return lzss.DefaultLanes()
}

func (o Options) storeShards() int {
	if o.StoreShards <= 0 {
		return DefaultStoreShards
	}
	return o.StoreShards
}

// newStore builds the run's duplicate store with the configured striping.
func (o Options) newStore() *Store { return NewStoreSharded(o.storeShards()) }

// CompressSeq is the single-threaded reference implementation: fragment,
// hash, dedup, compress, write — one batch at a time. With Lanes > 1 the
// batch traversal stays sequential but each batch's compression fans out
// across lanes (CompressFirsts); the archive bytes are identical either way
// because the Writer makes the authoritative stream-order dedup decision and
// per-block encoding is deterministic.
func CompressSeq(input []byte, w io.Writer, opt Options) (Stats, error) {
	dw := NewWriter(w)
	var firstErr error
	if opt.Lanes > 1 {
		store := opt.newStore()
		m := lzss.NewMatcher()
		Fragment(input, opt.batchSize(), func(b *Batch) {
			if firstErr != nil {
				return
			}
			b.HashBlocks()
			b.markFirsts(store)
			b.CompressFirsts(m, opt.Lanes)
			if err := writeBatch(b, dw); err != nil {
				firstErr = err
			}
		})
	} else {
		Fragment(input, opt.batchSize(), func(b *Batch) {
			if firstErr != nil {
				return
			}
			b.HashBlocks()
			for k := 0; k < b.NBlocks(); k++ {
				lo, hi := b.Block(k)
				if err := dw.WriteBlock(b.Hashes[k], b.Data[lo:hi], nil); err != nil {
					firstErr = err
					return
				}
			}
		})
	}
	if firstErr != nil {
		return dw.Stats(), firstErr
	}
	// The sequential path always compresses inline; that is not a race
	// fallback, so do not report it as one.
	st := dw.Stats()
	st.FallbackCompressions = 0
	if err := dw.Close(); err != nil {
		return st, err
	}
	return st, nil
}

// writeBatch is the ordered final-stage body: the authoritative
// stream-order dedup decision plus archive output.
func writeBatch(b *Batch, dw *Writer) error {
	for k := 0; k < b.NBlocks(); k++ {
		lo, hi := b.Block(k)
		if err := dw.WriteBlock(b.Hashes[k], b.Data[lo:hi], b.Comp[k]); err != nil {
			return err
		}
	}
	return nil
}

// compressWorker is a stateful compress-stage replica: each replica owns an
// lzss.Matcher whose hash-chain tables and match arrays are reused across
// batches without locking; lanes > 1 additionally fans each batch out
// across borrowed lane matchers (CompressFirsts).
type compressWorker struct {
	m     *lzss.Matcher
	lanes int
}

// Init implements core.Worker.
func (w *compressWorker) Init() error { w.m = lzss.NewMatcher(); return nil }

// End implements core.Worker.
func (w *compressWorker) End() {}

// Process implements core.Worker.
func (w *compressWorker) Process(item any, emit func(any)) {
	b := item.(*Batch)
	b.CompressFirsts(w.m, w.lanes)
	emit(b)
}

// CompressSPar runs the paper's CPU-only Dedup: a SPar ToStream region with
// five stages — fragmentation (source, pooled batches), replicated hash,
// serial dedup-mark, replicated compress (per-replica Matcher state, arena
// output), and ordered reorder+write, which releases each batch back to the
// free list — the structure of Griebler et al. [22] with FastFlow's
// buffer-reuse discipline. A warm stream runs the whole path without heap
// allocation.
func CompressSPar(input []byte, w io.Writer, opt Options) (Stats, error) {
	return CompressSParContext(context.Background(), input, w, opt)
}

// CompressSParContext is CompressSPar under a context: cancellation or
// timeout aborts the stream mid-run (the archive is then truncated and the
// context error is returned).
func CompressSParContext(ctx context.Context, input []byte, w io.Writer, opt Options) (Stats, error) {
	dw := NewWriter(w)
	store := opt.newStore()
	lanes := opt.lanes()

	ts := core.NewToStream(core.Ordered(), core.Input("input", "batchSize"),
		core.Telemetry(opt.Metrics, "dedup"), core.Trace(opt.Trace)).
		Stage(func(item any, emit func(any)) {
			b := item.(*Batch)
			b.HashBlocks()
			emit(b)
		}, core.Replicate(opt.workers()), core.Name("hash"),
			core.Input("input", "batchSize"), core.Output("hashes")).
		Stage(func(item any, emit func(any)) {
			b := item.(*Batch)
			b.markFirsts(store)
			emit(b)
		}, core.Name("dedup"), core.Input("hashes"), core.Output("firsts")).
		StageWorkers(func() core.Worker { return &compressWorker{lanes: lanes} },
			core.Replicate(opt.workers()),
			core.Name("compress"), core.Input("firsts"), core.Output("batch")).
		StageErr(func(item any, emit func(any)) error {
			// A write failure flows through the runtime's error channel:
			// the stream is canceled and the error returns from Run.
			b := item.(*Batch)
			err := writeBatch(b, dw)
			b.Release()
			return err
		}, core.Name("reorder+write"), core.Input("batch"))

	err := ts.RunContext(ctx, func(emit func(any)) {
		FragmentInto(input, opt.batchSize(), func(b *Batch) { emit(b) })
	})
	if err == nil {
		err = dw.Close()
	}
	return dw.Stats(), err
}
