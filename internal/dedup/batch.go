package dedup

import (
	"sync"

	"streamgpu/internal/rabin"
	"streamgpu/internal/sha1x"
)

// DefaultBatchSize is the paper's fixed fragmentation size: "we made it to
// generate fixed batch sizes (1MB) and generate different block sizes with
// rabin fingerprint".
const DefaultBatchSize = 1 << 20

// Batch is one stream item of the Dedup pipeline (Fig. 2): a fixed-size
// slice of the input plus the Rabin block boundaries inside it.
type Batch struct {
	Seq      int
	Data     []byte
	StartPos []int32
	// Per-block results filled by later stages, indexed like StartPos.
	Hashes [][sha1x.Size]byte
	Comp   [][]byte // nil entry: block was judged duplicate upstream
}

// NBlocks reports the number of blocks in the batch.
func (b *Batch) NBlocks() int { return len(b.StartPos) }

// Block returns the bounds of block k.
func (b *Batch) Block(k int) (lo, hi int) {
	lo = int(b.StartPos[k])
	hi = len(b.Data)
	if k+1 < len(b.StartPos) {
		hi = int(b.StartPos[k+1])
	}
	return lo, hi
}

// Fragment cuts input into batches of batchSize bytes (the last one may be
// short) and computes Rabin boundaries for each — the paper's stage 1,
// always on the CPU.
func Fragment(input []byte, batchSize int, emit func(*Batch)) {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	chunker := rabin.NewChunker()
	seq := 0
	for off := 0; off < len(input); off += batchSize {
		end := off + batchSize
		if end > len(input) {
			end = len(input)
		}
		data := input[off:end]
		emit(&Batch{Seq: seq, Data: data, StartPos: chunker.Boundaries(data)})
		seq++
	}
}

// HashBlocks computes the SHA-1 of every block (the CPU path of stage 2).
func (b *Batch) HashBlocks() {
	b.Hashes = make([][sha1x.Size]byte, b.NBlocks())
	for k := 0; k < b.NBlocks(); k++ {
		lo, hi := b.Block(k)
		b.Hashes[k] = sha1x.Sum20(b.Data[lo:hi])
	}
}

// Store is the shared duplicate-detection table (stage 3). It is a
// processing-time hint: the first processor of a hash wins and compresses;
// the archive Writer makes the authoritative stream-order decision.
type Store struct {
	mu   sync.Mutex
	seen map[[sha1x.Size]byte]struct{}
}

// NewStore creates an empty duplicate store.
func NewStore() *Store {
	return &Store{seen: make(map[[sha1x.Size]byte]struct{})}
}

// FirstSighting atomically records h and reports whether this call was the
// first to see it.
func (s *Store) FirstSighting(h [sha1x.Size]byte) bool {
	s.mu.Lock()
	_, dup := s.seen[h]
	if !dup {
		s.seen[h] = struct{}{}
	}
	s.mu.Unlock()
	return !dup
}

// Len reports the number of distinct hashes seen.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seen)
}
