package dedup

import (
	"sync"

	"streamgpu/internal/lzss"
	"streamgpu/internal/pool"
	"streamgpu/internal/rabin"
	"streamgpu/internal/sha1x"
)

// DefaultBatchSize is the paper's fixed fragmentation size: "we made it to
// generate fixed batch sizes (1MB) and generate different block sizes with
// rabin fingerprint".
const DefaultBatchSize = 1 << 20

// Batch is one stream item of the Dedup pipeline (Fig. 2): a fixed-size
// slice of the input plus the Rabin block boundaries inside it.
type Batch struct {
	Seq      int
	Data     []byte
	StartPos []int32
	// Per-block results filled by later stages, indexed like StartPos.
	Hashes [][sha1x.Size]byte
	Comp   [][]byte // nil entry: block was judged duplicate upstream

	// Recycling state, used by the pooled pipelines (FragmentInto):
	// pooled marks a batch owned by batchPool, arena is the per-batch
	// compression output buffer Comp entries subslice, firsts is the
	// dedup stage's first-sighting verdict per block, and compOff is the
	// compress stage's offset scratch. laneArenas are the per-lane output
	// buffers of the lane-parallel compress path (compressFirstsPar). All
	// survive Release so the next batch reuses their capacity.
	pooled     bool
	arena      []byte
	firsts     []bool
	compOff    []int32
	laneArenas [][]byte
}

// batchPool recycles Batch containers (and the slices hanging off them)
// across the stream — the FastFlow buffer-reuse discipline.
var batchPool = pool.New[*Batch]("dedup.batch", func() *Batch { return new(Batch) })

// Release returns a pooled batch (one emitted by FragmentInto) to the free
// list; the batch and everything reachable from it must not be used
// afterwards. Calling Release on a non-pooled batch is a no-op, so sinks
// may release unconditionally.
func (b *Batch) Release() {
	if !b.pooled {
		return
	}
	b.pooled = false
	b.Seq = 0
	b.Data = nil
	b.StartPos = b.StartPos[:0]
	b.Hashes = b.Hashes[:0]
	for k := range b.Comp {
		b.Comp[k] = nil
	}
	b.Comp = b.Comp[:0]
	b.arena = b.arena[:0]
	b.firsts = b.firsts[:0]
	for i := range b.laneArenas {
		b.laneArenas[i] = b.laneArenas[i][:0]
	}
	batchPool.Release(b)
}

// NBlocks reports the number of blocks in the batch.
func (b *Batch) NBlocks() int { return len(b.StartPos) }

// Block returns the bounds of block k.
func (b *Batch) Block(k int) (lo, hi int) {
	lo = int(b.StartPos[k])
	hi = len(b.Data)
	if k+1 < len(b.StartPos) {
		hi = int(b.StartPos[k+1])
	}
	return lo, hi
}

// Fragment cuts input into batches of batchSize bytes (the last one may be
// short) and computes Rabin boundaries for each — the paper's stage 1,
// always on the CPU. Each call allocates fresh batches the consumer keeps
// forever; the streaming pipelines use FragmentInto instead.
func Fragment(input []byte, batchSize int, emit func(*Batch)) {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	chunker := rabin.NewChunker()
	seq := 0
	for off := 0; off < len(input); off += batchSize {
		end := off + batchSize
		if end > len(input) {
			end = len(input)
		}
		data := input[off:end]
		emit(&Batch{Seq: seq, Data: data, StartPos: chunker.Boundaries(data)})
		seq++
	}
}

// FragmentInto is the recycling form of Fragment: every emitted batch comes
// from the package free list and its boundary array is computed in place
// into the batch's recycled StartPos (rabin.AppendBoundaries), so a warm
// stream fragments without heap allocation. Ownership of each batch
// transfers to the consumer, which must call (*Batch).Release when the
// batch has fully left the pipeline.
func FragmentInto(input []byte, batchSize int, emit func(*Batch)) {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	chunker := rabin.NewChunker()
	seq := 0
	for off := 0; off < len(input); off += batchSize {
		end := off + batchSize
		if end > len(input) {
			end = len(input)
		}
		data := input[off:end]
		b := batchPool.Get()
		b.pooled = true
		b.Seq = seq
		b.Data = data
		b.StartPos = chunker.AppendBoundaries(b.StartPos[:0], data)
		emit(b)
		seq++
	}
}

// HashBlocks computes the SHA-1 of every block (the CPU path of stage 2),
// reusing the batch's Hashes capacity when it suffices.
func (b *Batch) HashBlocks() {
	n := b.NBlocks()
	if cap(b.Hashes) < n {
		b.Hashes = make([][sha1x.Size]byte, n)
	}
	b.Hashes = b.Hashes[:n]
	sha1x.SumBatch(b.Data, b.StartPos, b.Hashes)
}

// markFirsts runs the dedup stage: one batched store lookup fills
// b.firsts[k] with whether block k's hash was seen here first.
func (b *Batch) markFirsts(store BlockStore) {
	n := b.NBlocks()
	if cap(b.firsts) < n {
		b.firsts = make([]bool, n)
	}
	b.firsts = b.firsts[:n]
	store.FirstSightings(b.Hashes, b.firsts)
}

// compressFirsts LZSS-compresses every first-sighting block into the
// batch's arena and points Comp[k] at the block's subslice (capacity-capped
// so downstream code cannot grow one block into the next). Appending into
// one arena means a warm batch compresses with zero heap allocations: the
// arena's capacity stabilizes after a few batches.
func (b *Batch) compressFirsts(m *lzss.Matcher) {
	n := b.NBlocks()
	if cap(b.Comp) < n {
		b.Comp = make([][]byte, n)
	}
	b.Comp = b.Comp[:n]
	if cap(b.compOff) < n {
		b.compOff = make([]int32, n)
	}
	off := b.compOff[:n]
	arena := b.arena[:0]
	for k := 0; k < n; k++ {
		off[k] = -1
		if b.firsts[k] {
			off[k] = int32(len(arena))
			lo, hi := b.Block(k)
			arena = m.AppendCompress(arena, b.Data[lo:hi])
		}
	}
	b.arena = arena
	// Subslice only once the arena has stopped growing: offsets survive
	// reallocation, pointers would not.
	end := int32(len(arena))
	for k := n - 1; k >= 0; k-- {
		if off[k] >= 0 {
			b.Comp[k] = arena[off[k]:end:end]
			end = off[k]
		} else {
			b.Comp[k] = nil
		}
	}
}

// BlockStore is the duplicate-detection interface stage 3 consults: one
// batched lookup records every hash and reports which were first sightings.
// It is a processing-time hint — the archive Writer still makes the
// authoritative stream-order decision — so an implementation may be a
// process-local table (*Store) or span a whole cluster (internal/cluster's
// content-addressed store) without affecting archive bytes.
type BlockStore interface {
	// FirstSightings records every hash and fills dst[i] with whether
	// hashes[i] was new to the store. dst must be at least as long as hashes.
	FirstSightings(hashes [][sha1x.Size]byte, dst []bool)
}

// CompSource is an optional BlockStore extension: a store that can supply
// the compressed body of a previously published block, so a duplicate block
// costs a lookup instead of a recompression. The returned slice must stay
// valid and immutable after the call (implementations return stable copies).
// Correctness does not depend on it — a miss just falls back to the archive
// Writer's inline compression, and LZSS is deterministic, so archive bytes
// are identical either way.
type CompSource interface {
	FetchComp(h [sha1x.Size]byte) ([]byte, bool)
}

// CompSink is the publishing half: a processor hands every block it
// compressed to the sink so later sightings anywhere in the store's scope
// can fetch instead of recompress. comp is only valid during the call
// (batch arenas are recycled); implementations must copy.
type CompSink interface {
	PublishComp(h [sha1x.Size]byte, comp []byte)
}

// DefaultStoreShards is the default stripe count of a Store: enough that a
// farm of compress replicas almost never collides on a stripe (collision
// probability ~replicas/shards per lookup), small enough that the per-shard
// maps stay dense.
const DefaultStoreShards = 64

// storeShard is one stripe of the table. The padding keeps neighbouring
// stripes' mutexes off one cache line, so contended stripes do not false-share.
type storeShard struct {
	mu   sync.Mutex
	seen map[[sha1x.Size]byte]struct{}
	_    [64 - 8 - 8]byte
}

// Store is the shared duplicate-detection table (stage 3). It is a
// processing-time hint: the first processor of a hash wins and compresses;
// the archive Writer makes the authoritative stream-order decision.
//
// The table is striped across power-of-two shards keyed by the hash's first
// bytes: every hash maps to exactly one shard, whose mutex serializes the
// check-and-record, so the exactly-once FirstSighting guarantee holds
// per hash exactly as it did under one global lock — while replicated
// compress stages touching different hashes proceed in parallel.
type Store struct {
	mask   uint32
	shards []storeShard
}

// NewStore creates an empty duplicate store with DefaultStoreShards stripes.
func NewStore() *Store { return NewStoreSharded(DefaultStoreShards) }

// NewStoreSharded creates an empty duplicate store with n stripes, rounded
// up to a power of two (minimum 1).
func NewStoreSharded(n int) *Store {
	if n < 1 {
		n = 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	s := &Store{mask: uint32(p - 1), shards: make([]storeShard, p)}
	for i := range s.shards {
		s.shards[i].seen = make(map[[sha1x.Size]byte]struct{})
	}
	return s
}

// Shards reports the stripe count.
func (s *Store) Shards() int { return len(s.shards) }

// shardFor routes h to its stripe. SHA-1 output is uniform, so the low two
// bytes index up to 2^16 stripes without skew.
func (s *Store) shardFor(h *[sha1x.Size]byte) *storeShard {
	return &s.shards[(uint32(h[0])|uint32(h[1])<<8)&s.mask]
}

// FirstSighting atomically records h and reports whether this call was the
// first to see it.
func (s *Store) FirstSighting(h [sha1x.Size]byte) bool {
	sh := s.shardFor(&h)
	sh.mu.Lock()
	_, dup := sh.seen[h]
	if !dup {
		sh.seen[h] = struct{}{}
	}
	sh.mu.Unlock()
	return !dup
}

// FirstSightings is the batched form of FirstSighting: every hash is
// recorded in its stripe and dst[i] filled with whether hashes[i] was new.
// dst must be at least as long as hashes. Each stripe's check-and-record is
// atomic per hash; concurrent batches only serialize where their hashes
// share a stripe.
func (s *Store) FirstSightings(hashes [][sha1x.Size]byte, dst []bool) {
	for i := range hashes {
		h := &hashes[i]
		sh := s.shardFor(h)
		sh.mu.Lock()
		_, dup := sh.seen[*h]
		if !dup {
			sh.seen[*h] = struct{}{}
		}
		sh.mu.Unlock()
		dst[i] = !dup
	}
}

// Len reports the number of distinct hashes seen.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.seen)
		sh.mu.Unlock()
	}
	return n
}
