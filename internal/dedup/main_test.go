package dedup

import (
	"testing"

	"streamgpu/internal/testutil"
)

// TestMain fails the package if any test leaks pipeline goroutines — the
// compress and restore pipelines must drain fully on success, cancellation,
// and error paths alike.
func TestMain(m *testing.M) { testutil.Main(m) }
