package dedup

import (
	"sync"

	"streamgpu/internal/lzss"
	"streamgpu/internal/pool"
)

// laneMatchers backs the extra matchers the lane-parallel compress path
// borrows: lane 0 always runs on the replica's own Matcher, lanes 1..K-1 on
// pooled ones, returned as soon as the join completes. A warm pipeline
// therefore holds (replicas + lanes-1) matcher states, not replicas*lanes.
var laneMatchers = pool.New[*lzss.Matcher]("dedup.lane-matcher", lzss.NewMatcher)

// compressLaneTask is one lane of a batch compression: a contiguous block
// range encoded into the batch's per-lane arena. run is built once per task
// (capturing only the task pointer), so a lane spawn is a no-argument func
// value the runtime starts without allocating.
type compressLaneTask struct {
	b      *Batch
	m      *lzss.Matcher
	lane   int
	k0, k1 int
	wg     *sync.WaitGroup
	run    func()
}

func (t *compressLaneTask) clear() {
	t.b = nil
	t.m = nil
}

// compressLaneScratch is the pooled fan-out state of compressFirstsPar.
type compressLaneScratch struct {
	tasks []*compressLaneTask
	wg    sync.WaitGroup
}

func (s *compressLaneScratch) grow(n int) {
	for len(s.tasks) < n {
		t := &compressLaneTask{wg: &s.wg}
		t.run = func() {
			t.b.compressLane(t.m, t.lane, t.k0, t.k1)
			t.wg.Done()
		}
		s.tasks = append(s.tasks, t)
	}
}

var laneScratchPool = pool.New[*compressLaneScratch]("dedup.compress-lanes", func() *compressLaneScratch {
	return new(compressLaneScratch)
})

// laneCut returns the first block whose start position is at or past the
// byte-proportional target for lane boundary i of lanes — the same
// byte-balanced partition lzss.FindMatchesPar uses (Rabin blocks vary widely
// in size, so splitting by block count would skew lanes).
func (b *Batch) laneCut(i, lanes int) int {
	if i <= 0 {
		return 0
	}
	if i >= lanes {
		return len(b.StartPos)
	}
	target := int32(uint64(len(b.Data)) * uint64(i) / uint64(lanes))
	lo, hi := 0, len(b.StartPos)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.StartPos[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// compressLane encodes the first-sighting blocks of [k0, k1) into the lane's
// arena, recording each block's arena offset in the shared compOff array
// (disjoint writes: every block belongs to exactly one lane).
func (b *Batch) compressLane(m *lzss.Matcher, lane, k0, k1 int) {
	arena := b.laneArenas[lane][:0]
	off := b.compOff
	for k := k0; k < k1; k++ {
		off[k] = -1
		if b.firsts[k] {
			off[k] = int32(len(arena))
			lo, hi := b.Block(k)
			arena = m.AppendCompress(arena, b.Data[lo:hi])
		}
	}
	b.laneArenas[lane] = arena
}

// CompressFirsts LZSS-compresses every first-sighting block (per b.firsts,
// see MarkFirsts) into batch-owned arenas and points Comp[k] at each block's
// bytes. lanes <= 1 is the sequential arena path; lanes > 1 splits the
// batch's blocks into byte-balanced contiguous lanes compressed
// concurrently, each on its own Matcher — output bytes are identical either
// way because every block is encoded independently by a deterministic
// encoder. m is the caller's own matcher (lane 0 runs on it); extra lanes
// borrow pooled matchers for the duration of the call. A warm batch
// compresses with zero heap allocations on both paths.
func (b *Batch) CompressFirsts(m *lzss.Matcher, lanes int) {
	n := b.NBlocks()
	if lanes > n {
		lanes = n
	}
	if lanes <= 1 {
		b.compressFirsts(m)
		return
	}
	b.compressFirstsPar(m, lanes)
}

// compressFirstsPar is the lane-parallel body of CompressFirsts.
func (b *Batch) compressFirstsPar(m *lzss.Matcher, lanes int) {
	n := b.NBlocks()
	if cap(b.Comp) < n {
		b.Comp = make([][]byte, n)
	}
	b.Comp = b.Comp[:n]
	if cap(b.compOff) < n {
		b.compOff = make([]int32, n)
	}
	b.compOff = b.compOff[:n]
	for len(b.laneArenas) < lanes {
		b.laneArenas = append(b.laneArenas, nil)
	}

	sc := laneScratchPool.Get()
	sc.grow(lanes)
	spawned := 0
	k0 := 0
	for i := 0; i < lanes; i++ {
		k1 := b.laneCut(i+1, lanes)
		if k1 <= k0 {
			continue
		}
		t := sc.tasks[spawned]
		t.b = b
		t.lane = spawned
		t.k0, t.k1 = k0, k1
		if spawned == 0 {
			t.m = m
		} else {
			t.m = laneMatchers.Get()
		}
		spawned++
		k0 = k1
	}
	sc.wg.Add(spawned - 1)
	for i := 1; i < spawned; i++ {
		go sc.tasks[i].run()
	}
	t0 := sc.tasks[0]
	b.compressLane(t0.m, t0.lane, t0.k0, t0.k1)
	sc.wg.Wait()

	// Join: point Comp[k] at its lane arena subslice, back to front within
	// each lane so every entry is capacity-capped at its successor's start
	// (downstream code cannot grow one block into the next).
	for i := 0; i < spawned; i++ {
		t := sc.tasks[i]
		arena := b.laneArenas[t.lane]
		end := int32(len(arena))
		for k := t.k1 - 1; k >= t.k0; k-- {
			if b.compOff[k] >= 0 {
				b.Comp[k] = arena[b.compOff[k]:end:end]
				end = b.compOff[k]
			} else {
				b.Comp[k] = nil
			}
		}
		if i > 0 {
			laneMatchers.Release(t.m)
		}
		t.clear()
	}
	laneScratchPool.Release(sc)
}
