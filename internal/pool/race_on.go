//go:build race

package pool

// RaceEnabled reports whether the race detector is compiled in. The
// allocation-pinning tests (testing.AllocsPerRun) skip under -race: the
// detector instruments allocations and the counts stop being meaningful.
const RaceEnabled = true
