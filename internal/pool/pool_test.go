package pool

import (
	"runtime"
	"sync"
	"testing"

	"streamgpu/internal/telemetry"
)

func TestPoolReuse(t *testing.T) {
	if RaceEnabled {
		t.Skip("sync.Pool randomizes reuse under -race")
	}
	type thing struct{ n int }
	p := New[*thing]("things", func() *thing { return &thing{} })
	a := p.Get()
	a.n = 7
	p.Release(a)
	b := p.Get()
	if b != a {
		t.Fatalf("expected the released value back, got a fresh one")
	}
	st := p.Stats()
	if st.Gets != 2 || st.Misses != 1 || st.Releases != 1 {
		t.Fatalf("stats = %+v, want gets=2 misses=1 releases=1", st)
	}
}

func TestSlicesClassing(t *testing.T) {
	if RaceEnabled {
		t.Skip("sync.Pool randomizes reuse under -race")
	}
	p := NewInt32s("int32s")
	s := p.Get(300)
	if len(s) != 300 {
		t.Fatalf("len = %d, want 300", len(s))
	}
	if cap(s) != 512 {
		t.Fatalf("cap = %d, want the 512 class", cap(s))
	}
	p.Release(s)
	s2 := p.Get(400)
	if cap(s2) != 512 {
		t.Fatalf("cap = %d, want the recycled 512-class slice", cap(s2))
	}
	st := p.Stats()
	if st.Gets != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want gets=2 misses=1", st)
	}
	cs := p.ClassStats()
	if cs[1].Cap != 512 || cs[1].Gets != 2 || cs[1].Misses != 1 {
		t.Fatalf("class 512 stats = %+v, want gets=2 misses=1", cs[1])
	}
}

func TestSlicesTinyAndHuge(t *testing.T) {
	p := NewBytes("bytes")
	tiny := p.Get(3)
	if len(tiny) != 3 || cap(tiny) != 256 {
		t.Fatalf("tiny len/cap = %d/%d, want 3/256", len(tiny), cap(tiny))
	}
	p.Release(tiny)

	huge := p.Get(1 << 25) // above the top class
	if len(huge) != 1<<25 {
		t.Fatalf("huge len = %d", len(huge))
	}
	p.Release(huge) // dropped, not filed
	if st := p.Stats(); st.Misses < 1 {
		t.Fatalf("expected the huge get to count as a miss, stats = %+v", st)
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {256, 0}, {257, 1}, {512, 1}, {513, 2},
		{1 << 20, 12}, {1 << 24, 16}, {1<<24 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestSetTelemetry(t *testing.T) {
	reg := telemetry.New()
	p := NewBytes("arena")
	p.SetTelemetry(reg)
	b := p.Get(1024)
	p.Release(b)
	p.Get(1024) //streamvet:ignore poolrelease deliberately unreleased to make the gets/releases gauges diverge for the assertion below

	snap := reg.Snapshot()
	var gets float64
	for _, m := range snap.Metrics {
		if m.Name == "pool_gets" {
			for _, s := range m.Series {
				if s.Labels["pool"] == "arena" {
					gets = s.Value
				}
			}
		}
	}
	if gets != 2 {
		t.Fatalf("pool_gets gauge = %v, want 2", gets)
	}
}

// TestConcurrent hammers one pool from several goroutines; run under -race
// this checks the free lists are safe for concurrent Get/Release.
func TestConcurrent(t *testing.T) {
	p := NewInt32s("conc")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s := p.Get(256 + (seed+i)%1024)
				s[0] = int32(i)
				p.Release(s)
			}
		}(g)
	}
	wg.Wait()
	if st := p.Stats(); st.Gets != 8000 || st.Releases != 8000 {
		t.Fatalf("stats = %+v, want 8000 gets and releases", st)
	}
}

// TestSteadyStateAllocs pins the pooled round trip to zero allocations once
// the free list is warm.
func TestSteadyStateAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	p := NewBytes("steady")
	p.Release(p.Get(4096)) // warm the class and the spare box
	allocs := testing.AllocsPerRun(100, func() {
		s := p.Get(4096)
		p.Release(s)
	})
	if allocs != 0 {
		t.Fatalf("pooled Get/Release allocates %v per op, want 0", allocs)
	}
	runtime.KeepAlive(p)
}
