// Package pool provides the typed free lists behind the repository's
// zero-allocation hot paths: a generic object pool (Pool) and size-classed
// slice pools (Slices, Bytes, Int32s), all layered over sync.Pool so idle
// memory still returns to the garbage collector.
//
// The design follows FastFlow's buffer-reuse discipline [Aldinucci et al.]:
// stream runtimes amortize allocation by recycling the containers that flow
// through the pipeline, not by avoiding containers. Ownership is explicit —
// every Get must be balanced by exactly one Release once the value is no
// longer referenced, and releasing a value while any alias is still live is
// a use-after-release bug (the dedup race stress test exercises exactly
// this contract under -race). The streamvet analyzer `poolrelease` flags
// Gets that can never reach a Release.
//
// Every pool counts gets, misses (a Get that had to allocate) and releases;
// SetTelemetry exposes the counts as gauges so reuse effectiveness is
// observable next to the pipeline metrics (DESIGN.md §10).
package pool

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"streamgpu/internal/telemetry"
)

// Stats is a point-in-time view of one pool's traffic.
type Stats struct {
	// Gets counts acquisitions; Misses counts the subset that allocated a
	// fresh value (so Gets-Misses is the number of reuses).
	Gets, Misses, Releases int64
}

// counters is the shared bookkeeping embedded in every pool flavour.
type counters struct {
	gets, misses, releases atomic.Int64
}

func (c *counters) stats() Stats {
	return Stats{
		Gets:     c.gets.Load(),
		Misses:   c.misses.Load(),
		Releases: c.releases.Load(),
	}
}

// register exposes the counters as cumulative gauges labelled {pool=name}.
func (c *counters) register(reg *telemetry.Registry, name string) {
	if reg == nil {
		return
	}
	lbl := telemetry.Labels{"pool": name}
	reg.GaugeFunc("pool_gets", lbl, func() float64 { return float64(c.gets.Load()) })
	reg.GaugeFunc("pool_misses", lbl, func() float64 { return float64(c.misses.Load()) })
	reg.GaugeFunc("pool_releases", lbl, func() float64 { return float64(c.releases.Load()) })
}

// Pool is a typed free list for whole objects (T is normally a pointer
// type, e.g. *dedup.Batch). The zero value is not usable; create with New.
type Pool[T any] struct {
	name  string
	newFn func() T
	p     sync.Pool
	counters
}

// New creates an object pool. newFn builds a fresh value on a miss; it must
// not be nil. name labels the pool's stats.
func New[T any](name string, newFn func() T) *Pool[T] {
	if newFn == nil {
		panic("pool: New requires a constructor")
	}
	return &Pool[T]{name: name, newFn: newFn}
}

// Get acquires a value: a recycled one when available, a fresh one
// otherwise. The caller owns the value until it calls Release.
func (p *Pool[T]) Get() T {
	p.gets.Add(1)
	if v, ok := p.p.Get().(T); ok {
		return v
	}
	p.misses.Add(1)
	return p.newFn()
}

// Release returns v to the free list. v must not be used — through any
// alias — after the call.
func (p *Pool[T]) Release(v T) {
	p.releases.Add(1)
	p.p.Put(v)
}

// Name returns the pool's label.
func (p *Pool[T]) Name() string { return p.name }

// Stats returns the pool's traffic counters.
func (p *Pool[T]) Stats() Stats { return p.counters.stats() }

// SetTelemetry exposes the pool's counters in reg as cumulative gauges
// (pool_gets / pool_misses / pool_releases, labelled {pool=name}). nil reg
// is a no-op.
func (p *Pool[T]) SetTelemetry(reg *telemetry.Registry) { p.register(reg, p.name) }

// Size classes for slice pools: powers of two from 1<<minClassBits up to
// 1<<maxClassBits elements. Requests above the top class are served by
// plain allocation and dropped on Release (counted as misses), so a rare
// giant buffer never pins memory in the free list.
const (
	minClassBits = 8
	maxClassBits = 24
	numClasses   = maxClassBits - minClassBits + 1
)

// classFor maps a requested element count to its size class, or -1 when the
// request is above the largest class.
func classFor(n int) int {
	if n <= 0 {
		return 0
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b < minClassBits {
		return 0
	}
	if b > maxClassBits {
		return -1
	}
	return b - minClassBits
}

// classCap is the element capacity of class c.
func classCap(c int) int { return 1 << (minClassBits + c) }

// box carries a slice header through sync.Pool without allocating on every
// round trip: full boxes wait in a class's pool, empty boxes are recycled
// through the Slices-wide spare-box pool.
type box[T any] struct{ s []T }

// ClassStats is one size class's traffic.
type ClassStats struct {
	Cap          int // element capacity of the class
	Gets, Misses int64
}

// Slices is a size-classed free list of []T. Get returns a slice with the
// requested length (contents undefined — callers overwrite); Release files
// the slice under the class its capacity fits.
type Slices[T any] struct {
	name                   string
	classes                [numClasses]sync.Pool
	spare                  sync.Pool // empty *box[T]
	classGets, classMisses [numClasses]atomic.Int64
	counters
}

// NewSlices creates a size-classed slice pool labelled name.
func NewSlices[T any](name string) *Slices[T] {
	return &Slices[T]{name: name}
}

// Get acquires a slice of length n (capacity is the class size). The
// contents are undefined: callers must overwrite before reading.
func (p *Slices[T]) Get(n int) []T {
	p.gets.Add(1)
	c := classFor(n)
	if c < 0 {
		p.misses.Add(1)
		return make([]T, n)
	}
	p.classGets[c].Add(1)
	if bx, ok := p.classes[c].Get().(*box[T]); ok {
		s := bx.s
		bx.s = nil
		p.spare.Put(bx)
		return s[:n]
	}
	p.misses.Add(1)
	p.classMisses[c].Add(1)
	return make([]T, n, classCap(c))
}

// Release returns s to the free list. s must not be used — through any
// alias or subslice — after the call. Slices whose capacity matches no
// class (including nil) are dropped.
func (p *Slices[T]) Release(s []T) {
	p.releases.Add(1)
	c := classFor(cap(s))
	if c < 0 || cap(s) < classCap(c) {
		return // odd capacity or above the top class: let the GC have it
	}
	bx, ok := p.spare.Get().(*box[T])
	if !ok {
		bx = new(box[T])
	}
	bx.s = s[:0]
	p.classes[c].Put(bx)
}

// Name returns the pool's label.
func (p *Slices[T]) Name() string { return p.name }

// Stats returns the pool's aggregate traffic counters.
func (p *Slices[T]) Stats() Stats { return p.counters.stats() }

// ClassStats returns per-size-class traffic, smallest class first.
func (p *Slices[T]) ClassStats() []ClassStats {
	out := make([]ClassStats, numClasses)
	for c := range out {
		out[c] = ClassStats{
			Cap:    classCap(c),
			Gets:   p.classGets[c].Load(),
			Misses: p.classMisses[c].Load(),
		}
	}
	return out
}

// SetTelemetry exposes the pool's counters in reg: the aggregate gauges of
// every pool plus per-class gauges labelled {pool=name, class=<cap>}.
// nil reg is a no-op.
func (p *Slices[T]) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	p.register(reg, p.name)
	for c := 0; c < numClasses; c++ {
		c := c
		lbl := telemetry.Labels{"pool": p.name, "class": fmt.Sprint(classCap(c))}
		reg.GaugeFunc("pool_class_gets", lbl, func() float64 { return float64(p.classGets[c].Load()) })
	}
}

// Bytes is a size-classed []byte pool.
type Bytes = Slices[byte]

// NewBytes creates a byte-slice pool labelled name.
func NewBytes(name string) *Bytes { return NewSlices[byte](name) }

// Int32s is a size-classed []int32 pool (Rabin boundary and LZSS match
// arrays).
type Int32s = Slices[int32]

// NewInt32s creates an int32-slice pool labelled name.
func NewInt32s(name string) *Int32s { return NewSlices[int32](name) }
