// Package loadgen is a closed-loop load generator for the streaming service
// front-end (internal/server, cmd/streamd): N concurrent clients each keep
// exactly one request outstanding, drawing payload sizes from a seeded
// distribution, and the run produces a latency/throughput report in the
// benchdiff-compatible HostReport schema (internal/bench) plus serving
// detail — admission verdict counts, percentile latencies, and end-to-end
// restore verification.
//
// Closed-loop matters here: an open-loop generator against a server with
// admission control measures mostly its own queue, while a closed loop
// measures the server's actual service capability and lets rejection rates
// be interpreted (each client's next request is only offered after the
// previous verdict).
//
// Against a cluster (Addrs lists several nodes) each client additionally
// speaks the routing protocol: a TRedirect verdict makes it re-dial the
// owning node under the same capped backoff as a reject retry, and a dead
// connection makes it fail over to the next node in the list and re-offer
// the in-flight request. Dedup verification then works per connection:
// every connection is its own server session with its own archive stream,
// and the archive deltas acked on a connection restore to exactly the
// payloads acked on it — so each segment is restored and compared
// independently, and a mid-stream node kill costs no verifiable bytes.
package loadgen

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"streamgpu/internal/bench"
	"streamgpu/internal/dedup"
	"streamgpu/internal/mandel"
	"streamgpu/internal/server"
	"streamgpu/internal/server/wire"
	"streamgpu/internal/stats"
	"streamgpu/internal/workload"
)

// Config shapes a load-generation run.
type Config struct {
	// Addr is the streamd address to dial (single-node form).
	Addr string
	// Addrs lists the cluster's nodes; when set it wins over Addr. Clients
	// spread their initial dials across the list round-robin and fail over
	// along it when a connection dies.
	Addrs []string
	// Service selects the target pipeline (default wire.SvcDedup).
	Service wire.Svc
	// Clients is the closed-loop concurrency (default 8).
	Clients int
	// Requests is the per-client request count (default 32).
	Requests int
	// Tenants spreads clients across this many tenant IDs (default 4).
	Tenants int
	// MinBytes/MaxBytes bound the uniform payload-size distribution for the
	// dedup service (defaults 1 KiB / 64 KiB).
	MinBytes, MaxBytes int
	// Dim/Niter/RowsPerReq shape mandel requests (defaults 256/256/16).
	Dim, Niter, RowsPerReq int
	// FirstTenant offsets the tenant IDs clients spread across — scenario
	// runs (a hog fleet and a small fleet against one server) use disjoint
	// ranges so per-tenant verdicts can be attributed.
	FirstTenant uint32
	// Seed makes the run reproducible (payload sizes and contents).
	Seed int64
	// Deadline, when positive, rides every request as its wire deadline: the
	// server fast-fails the request when its estimated queue wait exceeds
	// it. Rejections for this reason count as deadline misses, not retries.
	Deadline time.Duration
	// Retries is how many times a rejected request is re-offered before it
	// counts as rejected. Each retry honors the server's retry-after hint
	// under capped exponential backoff with jitter. 0 disables retries.
	Retries int
	// BackoffCap bounds one retry's sleep, hint included (default 1s).
	BackoffCap time.Duration
	// Verify restores every session's archive (or recomputes every row
	// range) and counts mismatches.
	Verify bool
	// DialTimeout bounds each client's dial (default 5s).
	DialTimeout time.Duration
	// SkipCalib omits the machine-speed calibration measurement (useful in
	// tests where the report is not compared across machines).
	SkipCalib bool
}

func (c Config) clients() int {
	if c.Clients <= 0 {
		return 8
	}
	return c.Clients
}

func (c Config) requests() int {
	if c.Requests <= 0 {
		return 32
	}
	return c.Requests
}

func (c Config) tenants() int {
	if c.Tenants <= 0 {
		return 4
	}
	return c.Tenants
}

func (c Config) addrList() []string {
	if len(c.Addrs) > 0 {
		return c.Addrs
	}
	if c.Addr != "" {
		return []string{c.Addr}
	}
	return nil
}

func (c Config) sizeBounds() (int, int) {
	lo, hi := c.MinBytes, c.MaxBytes
	if lo <= 0 {
		lo = 1 << 10
	}
	if hi < lo {
		hi = 64 << 10
		if hi < lo {
			hi = lo
		}
	}
	return lo, hi
}

func (c Config) service() wire.Svc {
	if c.Service == 0 {
		return wire.SvcDedup
	}
	return c.Service
}

func (c Config) mandelShape() (dim, niter, rows int) {
	dim, niter, rows = c.Dim, c.Niter, c.RowsPerReq
	if dim <= 0 {
		dim = 256
	}
	if niter <= 0 {
		niter = 256
	}
	if rows <= 0 {
		rows = 16
	}
	if rows > dim {
		rows = dim
	}
	return dim, niter, rows
}

func (c Config) dialTimeout() time.Duration {
	if c.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return c.DialTimeout
}

func (c Config) backoffCap() time.Duration {
	if c.BackoffCap <= 0 {
		return time.Second
	}
	return c.BackoffCap
}

// Report is the run summary. It embeds the benchdiff-comparable fields
// (schema, calibration, results) and adds serving detail; latency entries
// appear in Results as inverse rates (1/seconds) so benchdiff's
// lower-is-a-regression rule applies to them with the right sign.
type Report struct {
	bench.HostReport
	Service  string `json:"service"`
	Clients  int    `json:"clients"`
	Requests int    `json:"requests_per_client"`
	Accepted int64  `json:"accepted"`
	Rejected int64  `json:"rejected"`
	// Retries counts re-offers of rejected requests (each honoring the
	// server's retry-after hint); Throttled counts tenant-throttled verdicts
	// observed, retried or not; DeadlineMisses counts requests fast-failed
	// for their deadline (never retried — a late answer is still late).
	Retries        int64 `json:"retries"`
	Throttled      int64 `json:"throttled"`
	DeadlineMisses int64 `json:"deadline_misses"`
	// Redirects counts TRedirect verdicts followed (cluster runs); Failovers
	// counts dead connections replaced mid-stream (node kills, drains).
	Redirects  int64   `json:"redirects"`
	Failovers  int64   `json:"failovers"`
	SentBytes  int64   `json:"sent_bytes"`
	RecvBytes  int64   `json:"recv_bytes"`
	Seconds    float64 `json:"seconds"`
	LatencyP50 float64 `json:"latency_p50_seconds"`
	LatencyP90 float64 `json:"latency_p90_seconds"`
	LatencyP99 float64 `json:"latency_p99_seconds"`
	// Nodes breaks accepted traffic down by the node that served it
	// (cluster runs only). Forwarding is invisible to clients — a forwarded
	// session tallies under the node dialed, and the hop shows up in that
	// node's cluster_forwarded_conns_total metric instead.
	Nodes []NodeReport `json:"nodes,omitempty"`
	// RestoreFailures counts sessions whose restored archive (dedup) or
	// recomputed rows (mandel) did not match what was sent. Zero is the
	// soak-test invariant.
	RestoreFailures int      `json:"restore_failures"`
	Errors          []string `json:"errors,omitempty"`
}

// NodeReport is one node's share of a cluster run, as clients observed it.
type NodeReport struct {
	Addr       string  `json:"addr"`
	Accepted   int64   `json:"accepted"`
	SentBytes  int64   `json:"sent_bytes"`
	Throughput float64 `json:"throughput_mb_s"`
	// Share is this node's fraction of all accepted requests — the
	// client-visible balance of the ring placement.
	Share float64 `json:"share"`
}

// nodeCounts tallies one client's accepted traffic per serving node.
type nodeCounts struct {
	accepted int64
	sent     int64
}

// clientResult is one client's tally.
type clientResult struct {
	accepted, rejected int64
	retries, throttled int64
	deadlineMisses     int64
	redirects          int64
	failovers          int64
	sent, recv         int64
	lats               []float64
	nodes              map[string]*nodeCounts
	restoreFailed      bool
	err                error
}

// Run executes the configured load against a live server (or cluster) and
// aggregates the report. A client error (dial failure, protocol error)
// aborts that client but the run still reports the others; the first error
// is surfaced in Report.Errors.
func Run(cfg Config) (Report, error) {
	n := cfg.clients()
	results := make([]clientResult, n)
	// Shared compressible corpus: clients slice random windows out of it,
	// which gives the dedup store real duplicate hits across requests.
	corpus := workload.Generate(workload.Spec{Kind: workload.Silesia, Size: 4 << 20, Seed: cfg.Seed + 7})

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id] = runClient(cfg, id, corpus)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := Report{
		Service:  cfg.service().String(),
		Clients:  n,
		Requests: cfg.requests(),
		Seconds:  elapsed,
	}
	rep.Schema = "streamgpu-loadgen/v1"
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	if !cfg.SkipCalib {
		rep.Calib = bench.Calib()
	} else {
		rep.Calib = 1
	}
	var lats []float64
	nodeTotals := make(map[string]*nodeCounts)
	for i := range results {
		r := &results[i]
		rep.Accepted += r.accepted
		rep.Rejected += r.rejected
		rep.Retries += r.retries
		rep.Throttled += r.throttled
		rep.DeadlineMisses += r.deadlineMisses
		rep.Redirects += r.redirects
		rep.Failovers += r.failovers
		rep.SentBytes += r.sent
		rep.RecvBytes += r.recv
		lats = append(lats, r.lats...)
		for addr, nc := range r.nodes {
			t := nodeTotals[addr]
			if t == nil {
				t = &nodeCounts{}
				nodeTotals[addr] = t
			}
			t.accepted += nc.accepted
			t.sent += nc.sent
		}
		if r.restoreFailed {
			rep.RestoreFailures++
		}
		if r.err != nil && len(rep.Errors) < 8 {
			rep.Errors = append(rep.Errors, fmt.Sprintf("client %d: %v", i, r.err))
		}
	}
	sort.Float64s(lats)
	if len(lats) > 0 {
		rep.LatencyP50 = stats.Percentile(lats, 50)
		rep.LatencyP90 = stats.Percentile(lats, 90)
		rep.LatencyP99 = stats.Percentile(lats, 99)
	}
	svc := cfg.service().String()
	addResult := func(name, unit string, v float64) {
		rep.Results = append(rep.Results, bench.HostResult{
			Name: "serve/" + svc + "/" + name, Unit: unit, Value: v, AllocsPerOp: -1,
		})
	}
	if elapsed > 0 {
		addResult("throughput", "MB/s", float64(rep.SentBytes)/1e6/elapsed)
		addResult("requests", "req/s", float64(rep.Accepted)/elapsed)
	}
	if rep.LatencyP50 > 0 {
		addResult("p50-rate", "1/s", 1/rep.LatencyP50)
	}
	if rep.LatencyP99 > 0 {
		addResult("p99-rate", "1/s", 1/rep.LatencyP99)
	}
	if cluster := cfg.addrList(); len(cluster) > 1 {
		// Per-node columns, named by position in the configured node list so
		// benchdiff can compare runs across clusters with different ports.
		// Nodes reached only via redirect (not in the list) sort after.
		order := append([]string(nil), cluster...)
		inList := make(map[string]bool, len(order))
		for _, a := range order {
			inList[a] = true
		}
		var extra []string
		for addr := range nodeTotals {
			if !inList[addr] {
				extra = append(extra, addr)
			}
		}
		sort.Strings(extra)
		order = append(order, extra...)
		for i, addr := range order {
			t := nodeTotals[addr]
			if t == nil {
				t = &nodeCounts{}
			}
			nr := NodeReport{Addr: addr, Accepted: t.accepted, SentBytes: t.sent}
			if elapsed > 0 {
				nr.Throughput = float64(t.sent) / 1e6 / elapsed
			}
			if rep.Accepted > 0 {
				nr.Share = float64(t.accepted) / float64(rep.Accepted)
			}
			rep.Nodes = append(rep.Nodes, nr)
			addResult(fmt.Sprintf("node%d-throughput", i), "MB/s", nr.Throughput)
			addResult(fmt.Sprintf("node%d-requests", i), "req/s", float64(t.accepted)/elapsed)
		}
	}
	var firstErr error
	for i := range results {
		if results[i].err != nil {
			firstErr = results[i].err
			break
		}
	}
	return rep, firstErr
}

// clientConn is one client's connection to the cluster: it dials, follows
// redirects, and fails over along the node list, so the request loops above
// it only see offer/endStream.
type clientConn struct {
	cfg   *Config
	rng   *rand.Rand
	res   *clientResult
	addrs []string
	next  int // round-robin cursor for the next (re)dial

	conn net.Conn
	fw   *wire.Writer
	fr   *wire.Reader
	addr string

	// onLoss runs whenever the current connection is abandoned (failover or
	// redirect) — the dedup client seals its archive segment there, because
	// a new connection is a new server session with a fresh archive stream.
	onLoss func()
}

// maxHops bounds connection replacements (redirects + failovers + failed
// dials) per request: generous enough to ride out a membership-convergence
// window, small enough that a dead cluster fails the run promptly.
func (cl *clientConn) maxHops() int { return 8*len(cl.addrs) + 8 }

func (cl *clientConn) dial(addr string) error {
	c, err := net.DialTimeout("tcp", addr, cl.cfg.dialTimeout())
	if err != nil {
		return err
	}
	cl.conn, cl.addr = c, addr
	cl.fw = wire.NewWriter(c)
	// Responses can carry a whole coalesced batch's archive delta, so the
	// client-side payload cap is generous.
	cl.fr = wire.NewReader(c, 8<<20)
	return nil
}

// redial dials the next node in the round-robin order.
func (cl *clientConn) redial() error {
	addr := cl.addrs[cl.next%len(cl.addrs)]
	cl.next++
	return cl.dial(addr)
}

// lose abandons the current connection (it is dead, or it redirected us).
func (cl *clientConn) lose() {
	if cl.conn != nil {
		cl.conn.Close()
		cl.conn = nil
	}
	if cl.onLoss != nil {
		cl.onLoss()
	}
}

func (cl *clientConn) close() {
	if cl.conn != nil {
		cl.conn.Close()
		cl.conn = nil
	}
}

// tally attributes one accepted request to the node that served it.
func (cl *clientConn) tally(payloadLen int) {
	nc := cl.res.nodes[cl.addr]
	if nc == nil {
		nc = &nodeCounts{}
		cl.res.nodes[cl.addr] = nc
	}
	nc.accepted++
	nc.sent += int64(payloadLen)
}

// runClient drives one closed-loop client.
func runClient(cfg Config, id int, corpus []byte) clientResult {
	res := clientResult{nodes: make(map[string]*nodeCounts)}
	addrs := cfg.addrList()
	if len(addrs) == 0 {
		res.err = errors.New("no server address configured")
		return res
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*1543))
	cl := &clientConn{cfg: &cfg, rng: rng, res: &res, addrs: addrs, next: id}
	defer cl.close()
	tenant := cfg.FirstTenant + uint32(id%cfg.tenants())

	switch cfg.service() {
	case wire.SvcMandel:
		runMandelClient(cfg, rng, tenant, cl, &res)
	default:
		runDedupClient(cfg, rng, tenant, cl, corpus, &res)
	}
	return res
}

// sendFrame writes and flushes one frame.
func sendFrame(fw *wire.Writer, f wire.Frame) error {
	if err := fw.Write(f); err != nil {
		return err
	}
	return fw.Flush()
}

// awaitVerdict reads the verdict frame for request seq: TResult, TReject, or
// TRedirect. A server TEnd (drain) or TError aborts.
func awaitVerdict(fr *wire.Reader, seq uint64) (wire.Frame, error) {
	for {
		f, err := fr.Next()
		if err != nil {
			return wire.Frame{}, fmt.Errorf("awaiting verdict for %d: %w", seq, err)
		}
		switch f.Type {
		case wire.TResult, wire.TReject, wire.TRedirect:
			if f.Seq != seq {
				return wire.Frame{}, fmt.Errorf("verdict for request %d while waiting for %d", f.Seq, seq)
			}
			return f, nil
		case wire.TError:
			return wire.Frame{}, fmt.Errorf("server error: %s", f.Payload)
		case wire.TEnd:
			return wire.Frame{}, fmt.Errorf("server ended stream while request %d outstanding", seq)
		default:
			return wire.Frame{}, fmt.Errorf("unexpected %s frame", f.Type)
		}
	}
}

// offer sends one request and awaits its verdict, handling the full retry
// surface: rejected requests are re-offered up to cfg.Retries times (each
// retry sleeps for the server's retry-after hint — or, when the hint is
// zero, an exponentially growing base — capped by cfg.BackoffCap, with up to
// 25% added jitter so a fleet of synchronized rejects does not retry as a
// thundering herd); a TRedirect re-dials the owning node under the same
// capped backoff; and a dead connection fails over to the next node in the
// list and re-offers. Deadline rejects are terminal: retrying cannot un-miss
// a latency budget. offer reports whether the request was ultimately
// accepted; the frame is the accepting TResult when it was.
func (cl *clientConn) offer(f wire.Frame, res *clientResult) (wire.Frame, bool, error) {
	const backoffBase = 2 * time.Millisecond
	cfg := cl.cfg
	f.Deadline = cfg.Deadline
	rejects, hops := 0, 0
	backoff := func(hint time.Duration, n int) {
		sleep := backoffBase << uint(n)
		if hint > sleep {
			sleep = hint
		}
		if limit := cfg.backoffCap(); sleep > limit {
			sleep = limit
		}
		sleep += time.Duration(cl.rng.Int63n(int64(sleep)/4 + 1))
		time.Sleep(sleep)
	}
	hop := func(hint time.Duration) error {
		hops++
		if hops > cl.maxHops() {
			return fmt.Errorf("request %d: no node served it after %d connection attempts", f.Seq, hops)
		}
		backoff(hint, hops)
		return nil
	}
	for {
		if cl.conn == nil {
			if err := cl.redial(); err != nil {
				if herr := hop(0); herr != nil {
					return wire.Frame{}, false, herr
				}
				continue
			}
		}
		if err := sendFrame(cl.fw, f); err != nil {
			cl.lose()
			res.failovers++
			if herr := hop(0); herr != nil {
				return wire.Frame{}, false, herr
			}
			continue
		}
		res.sent += int64(len(f.Payload))
		v, err := awaitVerdict(cl.fr, f.Seq)
		if err != nil {
			// The connection is unusable whether the node died or the stream
			// desynchronized; fail over either way.
			cl.lose()
			res.failovers++
			if herr := hop(0); herr != nil {
				return wire.Frame{}, false, herr
			}
			continue
		}
		switch v.Type {
		case wire.TResult:
			return v, true, nil
		case wire.TRedirect:
			res.redirects++
			hint, owner := wire.ParseRedirectInfo(v.Payload)
			cl.lose() // no session was established on the redirecting node
			if herr := hop(hint); herr != nil {
				return wire.Frame{}, false, herr
			}
			if owner != "" {
				// Best effort: a failed dial (owner just died) falls back to
				// the round-robin redial at the top of the loop.
				_ = cl.dial(owner)
			}
			continue
		default: // TReject
			reason, hint := wire.ParseRejectInfo(v.Payload)
			switch reason {
			case wire.ReasonDeadline:
				res.deadlineMisses++
				return v, false, nil
			case wire.ReasonThrottled:
				res.throttled++
			}
			if rejects >= cfg.Retries {
				res.rejected++
				return v, false, nil
			}
			rejects++
			res.retries++
			backoff(hint, rejects)
		}
	}
}

// runDedupClient streams random corpus windows and verifies the restored
// archive against exactly the accepted payloads. Each connection is its own
// server session with its own archive stream, so verification works in
// segments: a failover seals the current segment, and every segment must
// restore to the payloads acked on it.
func runDedupClient(cfg Config, rng *rand.Rand, tenant uint32, cl *clientConn, corpus []byte, res *clientResult) {
	lo, hi := cfg.sizeBounds()
	type segment struct{ archive, expected bytes.Buffer }
	seg := &segment{}
	var segments []*segment
	seal := func() {
		if seg.archive.Len() > 0 || seg.expected.Len() > 0 {
			segments = append(segments, seg)
			seg = &segment{}
		}
	}
	cl.onLoss = seal
	for i := 0; i < cfg.requests(); i++ {
		size := lo + rng.Intn(hi-lo+1)
		if size > len(corpus) {
			size = len(corpus)
		}
		off := rng.Intn(len(corpus) - size + 1)
		payload := corpus[off : off+size]
		seq := uint64(i)
		t0 := time.Now()
		v, ok, err := cl.offer(
			wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: tenant, Seq: seq, Payload: payload}, res)
		if err != nil {
			res.err = err
			break // already-sealed segments still verify below
		}
		if !ok {
			continue
		}
		res.accepted++
		res.lats = append(res.lats, time.Since(t0).Seconds())
		res.recv += int64(len(v.Payload))
		cl.tally(len(payload))
		seg.archive.Write(v.Payload)
		if cfg.Verify {
			seg.expected.Write(payload)
		}
	}
	if res.err == nil && cl.conn != nil {
		tail, err := cl.endStream(res)
		if err != nil {
			if len(cl.addrs) > 1 {
				// The node died during the end handshake. Every request was
				// already acked, so the segment verifies without the tail.
				res.failovers++
			} else {
				res.err = err
			}
		} else {
			seg.archive.Write(tail)
		}
	}
	seal()
	if cfg.Verify {
		for _, s := range segments {
			var restored bytes.Buffer
			if err := dedup.Restore(bytes.NewReader(s.archive.Bytes()), &restored); err != nil {
				res.restoreFailed = true
				res.err = fmt.Errorf("restore: %w", err)
				return
			}
			if !bytes.Equal(restored.Bytes(), s.expected.Bytes()) {
				res.restoreFailed = true
				res.err = fmt.Errorf("restore mismatch: %d bytes restored, %d sent", restored.Len(), s.expected.Len())
				return
			}
		}
	}
}

// runMandelClient requests random row ranges and optionally recomputes them
// locally for verification.
func runMandelClient(cfg Config, rng *rand.Rand, tenant uint32, cl *clientConn, res *clientResult) {
	dim, niter, rows := cfg.mandelShape()
	p := mandel.Params{Dim: dim, Niter: niter, InitA: -2.0, InitB: -1.25, Range: 2.5}
	row := make([]byte, dim)
	for i := 0; i < cfg.requests(); i++ {
		nrows := 1 + rng.Intn(rows)
		row0 := rng.Intn(dim - nrows + 1)
		req := MandelReqPayload(uint32(dim), uint32(niter), uint32(row0), uint32(nrows))
		seq := uint64(i)
		t0 := time.Now()
		v, ok, err := cl.offer(
			wire.Frame{Type: wire.TData, Svc: wire.SvcMandel, Tenant: tenant, Seq: seq, Payload: req}, res)
		if err != nil {
			res.err = err
			return
		}
		if !ok {
			continue
		}
		res.accepted++
		res.lats = append(res.lats, time.Since(t0).Seconds())
		res.recv += int64(len(v.Payload))
		cl.tally(len(req))
		if len(v.Payload) != nrows*dim {
			res.restoreFailed = true
			res.err = fmt.Errorf("request %d: %d response bytes, want %d", seq, len(v.Payload), nrows*dim)
			return
		}
		if cfg.Verify {
			for r := 0; r < nrows; r++ {
				p.ComputeRow(row0+r, row)
				if !bytes.Equal(v.Payload[r*dim:(r+1)*dim], row) {
					res.restoreFailed = true
					res.err = fmt.Errorf("request %d: row %d mismatch", seq, row0+r)
					return
				}
			}
		}
	}
	if cl.conn == nil {
		return
	}
	if _, err := cl.endStream(res); err != nil && len(cl.addrs) == 1 {
		res.err = err
	}
}

// MandelReqPayload encodes a row-range request body.
func MandelReqPayload(dim, niter, row0, nrows uint32) []byte {
	return server.AppendMandelReq(nil, server.MandelReq{Dim: dim, Niter: niter, Row0: row0, NRows: nrows})
}

// endStream performs the TEnd handshake on the current connection,
// collecting any trailing result payloads and the TEnd tail (residual
// archive bytes).
func (cl *clientConn) endStream(res *clientResult) ([]byte, error) {
	if err := sendFrame(cl.fw, wire.Frame{Type: wire.TEnd}); err != nil {
		return nil, fmt.Errorf("send end: %w", err)
	}
	var tail bytes.Buffer
	for {
		f, err := cl.fr.Next()
		if err == io.EOF {
			return tail.Bytes(), nil
		}
		if err != nil {
			return nil, fmt.Errorf("awaiting end: %w", err)
		}
		switch f.Type {
		case wire.TEnd:
			tail.Write(f.Payload)
			res.recv += int64(len(f.Payload))
			return tail.Bytes(), nil
		case wire.TResult:
			tail.Write(f.Payload)
			res.recv += int64(len(f.Payload))
		case wire.TError:
			return nil, fmt.Errorf("server error at end: %s", f.Payload)
		}
	}
}
