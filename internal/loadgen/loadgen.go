// Package loadgen is a closed-loop load generator for the streaming service
// front-end (internal/server, cmd/streamd): N concurrent clients each keep
// exactly one request outstanding, drawing payload sizes from a seeded
// distribution, and the run produces a latency/throughput report in the
// benchdiff-compatible HostReport schema (internal/bench) plus serving
// detail — admission verdict counts, percentile latencies, and end-to-end
// restore verification.
//
// Closed-loop matters here: an open-loop generator against a server with
// admission control measures mostly its own queue, while a closed loop
// measures the server's actual service capability and lets rejection rates
// be interpreted (each client's next request is only offered after the
// previous verdict).
package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"streamgpu/internal/bench"
	"streamgpu/internal/dedup"
	"streamgpu/internal/mandel"
	"streamgpu/internal/server"
	"streamgpu/internal/server/wire"
	"streamgpu/internal/stats"
	"streamgpu/internal/workload"
)

// Config shapes a load-generation run.
type Config struct {
	// Addr is the streamd address to dial.
	Addr string
	// Service selects the target pipeline (default wire.SvcDedup).
	Service wire.Svc
	// Clients is the closed-loop concurrency (default 8).
	Clients int
	// Requests is the per-client request count (default 32).
	Requests int
	// Tenants spreads clients across this many tenant IDs (default 4).
	Tenants int
	// MinBytes/MaxBytes bound the uniform payload-size distribution for the
	// dedup service (defaults 1 KiB / 64 KiB).
	MinBytes, MaxBytes int
	// Dim/Niter/RowsPerReq shape mandel requests (defaults 256/256/16).
	Dim, Niter, RowsPerReq int
	// FirstTenant offsets the tenant IDs clients spread across — scenario
	// runs (a hog fleet and a small fleet against one server) use disjoint
	// ranges so per-tenant verdicts can be attributed.
	FirstTenant uint32
	// Seed makes the run reproducible (payload sizes and contents).
	Seed int64
	// Deadline, when positive, rides every request as its wire deadline: the
	// server fast-fails the request when its estimated queue wait exceeds
	// it. Rejections for this reason count as deadline misses, not retries.
	Deadline time.Duration
	// Retries is how many times a rejected request is re-offered before it
	// counts as rejected. Each retry honors the server's retry-after hint
	// under capped exponential backoff with jitter. 0 disables retries.
	Retries int
	// BackoffCap bounds one retry's sleep, hint included (default 1s).
	BackoffCap time.Duration
	// Verify restores every session's archive (or recomputes every row
	// range) and counts mismatches.
	Verify bool
	// DialTimeout bounds each client's dial (default 5s).
	DialTimeout time.Duration
	// SkipCalib omits the machine-speed calibration measurement (useful in
	// tests where the report is not compared across machines).
	SkipCalib bool
}

func (c Config) clients() int {
	if c.Clients <= 0 {
		return 8
	}
	return c.Clients
}

func (c Config) requests() int {
	if c.Requests <= 0 {
		return 32
	}
	return c.Requests
}

func (c Config) tenants() int {
	if c.Tenants <= 0 {
		return 4
	}
	return c.Tenants
}

func (c Config) sizeBounds() (int, int) {
	lo, hi := c.MinBytes, c.MaxBytes
	if lo <= 0 {
		lo = 1 << 10
	}
	if hi < lo {
		hi = 64 << 10
		if hi < lo {
			hi = lo
		}
	}
	return lo, hi
}

func (c Config) service() wire.Svc {
	if c.Service == 0 {
		return wire.SvcDedup
	}
	return c.Service
}

func (c Config) mandelShape() (dim, niter, rows int) {
	dim, niter, rows = c.Dim, c.Niter, c.RowsPerReq
	if dim <= 0 {
		dim = 256
	}
	if niter <= 0 {
		niter = 256
	}
	if rows <= 0 {
		rows = 16
	}
	if rows > dim {
		rows = dim
	}
	return dim, niter, rows
}

func (c Config) dialTimeout() time.Duration {
	if c.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return c.DialTimeout
}

func (c Config) backoffCap() time.Duration {
	if c.BackoffCap <= 0 {
		return time.Second
	}
	return c.BackoffCap
}

// Report is the run summary. It embeds the benchdiff-comparable fields
// (schema, calibration, results) and adds serving detail; latency entries
// appear in Results as inverse rates (1/seconds) so benchdiff's
// lower-is-a-regression rule applies to them with the right sign.
type Report struct {
	bench.HostReport
	Service  string `json:"service"`
	Clients  int    `json:"clients"`
	Requests int    `json:"requests_per_client"`
	Accepted int64  `json:"accepted"`
	Rejected int64  `json:"rejected"`
	// Retries counts re-offers of rejected requests (each honoring the
	// server's retry-after hint); Throttled counts tenant-throttled verdicts
	// observed, retried or not; DeadlineMisses counts requests fast-failed
	// for their deadline (never retried — a late answer is still late).
	Retries        int64   `json:"retries"`
	Throttled      int64   `json:"throttled"`
	DeadlineMisses int64   `json:"deadline_misses"`
	SentBytes      int64   `json:"sent_bytes"`
	RecvBytes      int64   `json:"recv_bytes"`
	Seconds        float64 `json:"seconds"`
	LatencyP50     float64 `json:"latency_p50_seconds"`
	LatencyP90     float64 `json:"latency_p90_seconds"`
	LatencyP99     float64 `json:"latency_p99_seconds"`
	// RestoreFailures counts sessions whose restored archive (dedup) or
	// recomputed rows (mandel) did not match what was sent. Zero is the
	// soak-test invariant.
	RestoreFailures int      `json:"restore_failures"`
	Errors          []string `json:"errors,omitempty"`
}

// clientResult is one client's tally.
type clientResult struct {
	accepted, rejected int64
	retries, throttled int64
	deadlineMisses     int64
	sent, recv         int64
	lats               []float64
	restoreFailed      bool
	err                error
}

// Run executes the configured load against a live server and aggregates the
// report. A client error (dial failure, protocol error) aborts that client
// but the run still reports the others; the first error is surfaced in
// Report.Errors.
func Run(cfg Config) (Report, error) {
	n := cfg.clients()
	results := make([]clientResult, n)
	// Shared compressible corpus: clients slice random windows out of it,
	// which gives the dedup store real duplicate hits across requests.
	corpus := workload.Generate(workload.Spec{Kind: workload.Silesia, Size: 4 << 20, Seed: cfg.Seed + 7})

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id] = runClient(cfg, id, corpus)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := Report{
		Service:  cfg.service().String(),
		Clients:  n,
		Requests: cfg.requests(),
		Seconds:  elapsed,
	}
	rep.Schema = "streamgpu-loadgen/v1"
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	if !cfg.SkipCalib {
		rep.Calib = bench.Calib()
	} else {
		rep.Calib = 1
	}
	var lats []float64
	for i := range results {
		r := &results[i]
		rep.Accepted += r.accepted
		rep.Rejected += r.rejected
		rep.Retries += r.retries
		rep.Throttled += r.throttled
		rep.DeadlineMisses += r.deadlineMisses
		rep.SentBytes += r.sent
		rep.RecvBytes += r.recv
		lats = append(lats, r.lats...)
		if r.restoreFailed {
			rep.RestoreFailures++
		}
		if r.err != nil && len(rep.Errors) < 8 {
			rep.Errors = append(rep.Errors, fmt.Sprintf("client %d: %v", i, r.err))
		}
	}
	sort.Float64s(lats)
	if len(lats) > 0 {
		rep.LatencyP50 = stats.Percentile(lats, 50)
		rep.LatencyP90 = stats.Percentile(lats, 90)
		rep.LatencyP99 = stats.Percentile(lats, 99)
	}
	svc := cfg.service().String()
	addResult := func(name, unit string, v float64) {
		rep.Results = append(rep.Results, bench.HostResult{
			Name: "serve/" + svc + "/" + name, Unit: unit, Value: v, AllocsPerOp: -1,
		})
	}
	if elapsed > 0 {
		addResult("throughput", "MB/s", float64(rep.SentBytes)/1e6/elapsed)
		addResult("requests", "req/s", float64(rep.Accepted)/elapsed)
	}
	if rep.LatencyP50 > 0 {
		addResult("p50-rate", "1/s", 1/rep.LatencyP50)
	}
	if rep.LatencyP99 > 0 {
		addResult("p99-rate", "1/s", 1/rep.LatencyP99)
	}
	var firstErr error
	for i := range results {
		if results[i].err != nil {
			firstErr = results[i].err
			break
		}
	}
	return rep, firstErr
}

// runClient drives one closed-loop connection.
func runClient(cfg Config, id int, corpus []byte) clientResult {
	var res clientResult
	conn, err := net.DialTimeout("tcp", cfg.Addr, cfg.dialTimeout())
	if err != nil {
		res.err = fmt.Errorf("dial: %w", err)
		return res
	}
	defer conn.Close()
	fw := wire.NewWriter(conn)
	// Responses can carry a whole coalesced batch's archive delta, so the
	// client-side payload cap is generous.
	fr := wire.NewReader(conn, 8<<20)
	rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*1543))
	tenant := cfg.FirstTenant + uint32(id%cfg.tenants())

	switch cfg.service() {
	case wire.SvcMandel:
		runMandelClient(cfg, rng, tenant, fw, fr, &res)
	default:
		runDedupClient(cfg, rng, tenant, fw, fr, corpus, &res)
	}
	return res
}

// sendFrame writes and flushes one frame.
func sendFrame(fw *wire.Writer, f wire.Frame) error {
	if err := fw.Write(f); err != nil {
		return err
	}
	return fw.Flush()
}

// awaitVerdict reads the verdict frame for request seq: TResult or TReject.
// A server TEnd (drain) or TError aborts.
func awaitVerdict(fr *wire.Reader, seq uint64) (wire.Frame, error) {
	for {
		f, err := fr.Next()
		if err != nil {
			return wire.Frame{}, fmt.Errorf("awaiting verdict for %d: %w", seq, err)
		}
		switch f.Type {
		case wire.TResult, wire.TReject:
			if f.Seq != seq {
				return wire.Frame{}, fmt.Errorf("verdict for request %d while waiting for %d", f.Seq, seq)
			}
			return f, nil
		case wire.TError:
			return wire.Frame{}, fmt.Errorf("server error: %s", f.Payload)
		case wire.TEnd:
			return wire.Frame{}, fmt.Errorf("server ended stream while request %d outstanding", seq)
		default:
			return wire.Frame{}, fmt.Errorf("unexpected %s frame", f.Type)
		}
	}
}

// offer sends one request and awaits its verdict, re-offering rejected
// requests up to cfg.Retries times. Each retry sleeps for the server's
// retry-after hint — or, when the hint is zero, an exponentially growing
// base — capped by cfg.BackoffCap, with up to 25% added jitter so a fleet of
// synchronized rejects does not retry as a thundering herd. Deadline rejects
// are terminal: retrying cannot un-miss a latency budget. offer reports
// whether the request was ultimately accepted; the frame is the accepting
// TResult when it was.
func offer(cfg Config, rng *rand.Rand, fw *wire.Writer, fr *wire.Reader, f wire.Frame, res *clientResult) (wire.Frame, bool, error) {
	const backoffBase = 2 * time.Millisecond
	f.Deadline = cfg.Deadline
	for attempt := 0; ; attempt++ {
		if err := sendFrame(fw, f); err != nil {
			return wire.Frame{}, false, fmt.Errorf("send request %d: %w", f.Seq, err)
		}
		res.sent += int64(len(f.Payload))
		v, err := awaitVerdict(fr, f.Seq)
		if err != nil {
			return wire.Frame{}, false, err
		}
		if v.Type == wire.TResult {
			return v, true, nil
		}
		reason, hint := wire.ParseRejectInfo(v.Payload)
		switch reason {
		case wire.ReasonDeadline:
			res.deadlineMisses++
			return v, false, nil
		case wire.ReasonThrottled:
			res.throttled++
		}
		if attempt >= cfg.Retries {
			res.rejected++
			return v, false, nil
		}
		res.retries++
		sleep := backoffBase << uint(attempt)
		if hint > sleep {
			sleep = hint
		}
		if limit := cfg.backoffCap(); sleep > limit {
			sleep = limit
		}
		sleep += time.Duration(rng.Int63n(int64(sleep)/4 + 1))
		time.Sleep(sleep)
	}
}

// runDedupClient streams random corpus windows and verifies the restored
// archive against exactly the accepted payloads.
func runDedupClient(cfg Config, rng *rand.Rand, tenant uint32, fw *wire.Writer, fr *wire.Reader, corpus []byte, res *clientResult) {
	lo, hi := cfg.sizeBounds()
	var expected, archive bytes.Buffer
	for i := 0; i < cfg.requests(); i++ {
		size := lo + rng.Intn(hi-lo+1)
		if size > len(corpus) {
			size = len(corpus)
		}
		off := rng.Intn(len(corpus) - size + 1)
		payload := corpus[off : off+size]
		seq := uint64(i)
		t0 := time.Now()
		v, ok, err := offer(cfg, rng, fw, fr,
			wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: tenant, Seq: seq, Payload: payload}, res)
		if err != nil {
			res.err = err
			return
		}
		if !ok {
			continue
		}
		res.accepted++
		res.lats = append(res.lats, time.Since(t0).Seconds())
		res.recv += int64(len(v.Payload))
		archive.Write(v.Payload)
		if cfg.Verify {
			expected.Write(payload)
		}
	}
	tail, err := endStream(fw, fr, res)
	if err != nil {
		res.err = err
		return
	}
	archive.Write(tail)
	if cfg.Verify {
		var restored bytes.Buffer
		if err := dedup.Restore(bytes.NewReader(archive.Bytes()), &restored); err != nil {
			res.restoreFailed = true
			res.err = fmt.Errorf("restore: %w", err)
			return
		}
		if !bytes.Equal(restored.Bytes(), expected.Bytes()) {
			res.restoreFailed = true
			res.err = fmt.Errorf("restore mismatch: %d bytes restored, %d sent", restored.Len(), expected.Len())
		}
	}
}

// runMandelClient requests random row ranges and optionally recomputes them
// locally for verification.
func runMandelClient(cfg Config, rng *rand.Rand, tenant uint32, fw *wire.Writer, fr *wire.Reader, res *clientResult) {
	dim, niter, rows := cfg.mandelShape()
	p := mandel.Params{Dim: dim, Niter: niter, InitA: -2.0, InitB: -1.25, Range: 2.5}
	row := make([]byte, dim)
	for i := 0; i < cfg.requests(); i++ {
		nrows := 1 + rng.Intn(rows)
		row0 := rng.Intn(dim - nrows + 1)
		req := MandelReqPayload(uint32(dim), uint32(niter), uint32(row0), uint32(nrows))
		seq := uint64(i)
		t0 := time.Now()
		v, ok, err := offer(cfg, rng, fw, fr,
			wire.Frame{Type: wire.TData, Svc: wire.SvcMandel, Tenant: tenant, Seq: seq, Payload: req}, res)
		if err != nil {
			res.err = err
			return
		}
		if !ok {
			continue
		}
		res.accepted++
		res.lats = append(res.lats, time.Since(t0).Seconds())
		res.recv += int64(len(v.Payload))
		if len(v.Payload) != nrows*dim {
			res.restoreFailed = true
			res.err = fmt.Errorf("request %d: %d response bytes, want %d", seq, len(v.Payload), nrows*dim)
			return
		}
		if cfg.Verify {
			for r := 0; r < nrows; r++ {
				p.ComputeRow(row0+r, row)
				if !bytes.Equal(v.Payload[r*dim:(r+1)*dim], row) {
					res.restoreFailed = true
					res.err = fmt.Errorf("request %d: row %d mismatch", seq, row0+r)
					return
				}
			}
		}
	}
	if _, err := endStream(fw, fr, res); err != nil {
		res.err = err
	}
}

// MandelReqPayload encodes a row-range request body.
func MandelReqPayload(dim, niter, row0, nrows uint32) []byte {
	return server.AppendMandelReq(nil, server.MandelReq{Dim: dim, Niter: niter, Row0: row0, NRows: nrows})
}

// endStream performs the TEnd handshake, collecting any trailing result
// payloads and the TEnd tail (residual archive bytes).
func endStream(fw *wire.Writer, fr *wire.Reader, res *clientResult) ([]byte, error) {
	if err := sendFrame(fw, wire.Frame{Type: wire.TEnd}); err != nil {
		return nil, fmt.Errorf("send end: %w", err)
	}
	var tail bytes.Buffer
	for {
		f, err := fr.Next()
		if err == io.EOF {
			return tail.Bytes(), nil
		}
		if err != nil {
			return nil, fmt.Errorf("awaiting end: %w", err)
		}
		switch f.Type {
		case wire.TEnd:
			tail.Write(f.Payload)
			res.recv += int64(len(f.Payload))
			return tail.Bytes(), nil
		case wire.TResult:
			tail.Write(f.Payload)
			res.recv += int64(len(f.Payload))
		case wire.TError:
			return nil, fmt.Errorf("server error at end: %s", f.Payload)
		}
	}
}
