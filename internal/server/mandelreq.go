package server

import (
	"encoding/binary"
	"fmt"
)

// MandelReq is the SvcMandel request payload: compute NRows rows starting
// at Row0 of a Dim×Dim Mandelbrot image over the paper's complex-plane
// window, iterating Niter times per pixel. Encoded as four big-endian
// uint32s (16 bytes).
type MandelReq struct {
	Dim   uint32
	Niter uint32
	Row0  uint32
	NRows uint32
}

// Validation caps: a request may not demand more device time or response
// memory than one dedup batch's worth, so admission can treat the two
// services uniformly.
const (
	mandelMaxDim   = 8192
	mandelMaxNiter = 1 << 20
	mandelMaxOut   = 1 << 20 // response bytes (Dim * NRows)
	mandelReqLen   = 16
)

// AppendMandelReq encodes r onto dst.
func AppendMandelReq(dst []byte, r MandelReq) []byte {
	var b [mandelReqLen]byte
	binary.BigEndian.PutUint32(b[0:], r.Dim)
	binary.BigEndian.PutUint32(b[4:], r.Niter)
	binary.BigEndian.PutUint32(b[8:], r.Row0)
	binary.BigEndian.PutUint32(b[12:], r.NRows)
	return append(dst, b[:]...)
}

// ParseMandelReq decodes and validates a request payload. Every bound is
// checked before any allocation happens downstream, so a hostile payload
// cannot size a response buffer.
func ParseMandelReq(p []byte) (MandelReq, error) {
	if len(p) != mandelReqLen {
		return MandelReq{}, fmt.Errorf("mandel request: %d payload bytes, want %d", len(p), mandelReqLen)
	}
	r := MandelReq{
		Dim:   binary.BigEndian.Uint32(p[0:]),
		Niter: binary.BigEndian.Uint32(p[4:]),
		Row0:  binary.BigEndian.Uint32(p[8:]),
		NRows: binary.BigEndian.Uint32(p[12:]),
	}
	switch {
	case r.Dim == 0 || r.Dim > mandelMaxDim:
		return MandelReq{}, fmt.Errorf("mandel request: dim %d out of range [1,%d]", r.Dim, mandelMaxDim)
	case r.Niter == 0 || r.Niter > mandelMaxNiter:
		return MandelReq{}, fmt.Errorf("mandel request: niter %d out of range [1,%d]", r.Niter, mandelMaxNiter)
	case r.NRows == 0 || uint64(r.Row0)+uint64(r.NRows) > uint64(r.Dim):
		return MandelReq{}, fmt.Errorf("mandel request: rows [%d,%d) outside image of %d rows", r.Row0, uint64(r.Row0)+uint64(r.NRows), r.Dim)
	case uint64(r.Dim)*uint64(r.NRows) > mandelMaxOut:
		return MandelReq{}, fmt.Errorf("mandel request: %d response bytes exceed cap %d", uint64(r.Dim)*uint64(r.NRows), mandelMaxOut)
	}
	return r, nil
}
