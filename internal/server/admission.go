package server

import (
	"sync"
	"time"

	"streamgpu/internal/server/qos"
	"streamgpu/internal/server/wire"
	"streamgpu/internal/telemetry"
)

// verdict is one admission decision.
type verdict struct {
	ok         bool
	reason     wire.Reason   // set when !ok
	retryAfter time.Duration // backoff hint shipped in the TReject payload
}

func accepted() verdict { return verdict{ok: true} }

func rejected(reason wire.Reason, retryAfter time.Duration) verdict {
	return verdict{reason: reason, retryAfter: retryAfter}
}

// tenantState is one tenant's live admission state.
type tenantState struct {
	spec     qos.Spec
	bucket   *qos.Bucket
	inflight int
	lastSeen time.Time
}

// admission is the per-tenant gate in front of the shared window: token
// buckets bound each tenant's sustained byte rate, and once the shared
// window runs hot a tenant's share of it is capped in proportion to its
// weight. The gate is deliberately work-conserving — under light load any
// tenant may use the whole window; the weighted cap only engages above the
// contention threshold, so fairness costs nothing when there is nothing to
// be fair about.
type admission struct {
	mu      sync.Mutex
	table   qos.Table
	window  int
	now     func() time.Time
	tenants map[uint32]*tenantState
}

const (
	// contentionNum/contentionDen: the weighted fair-share cap engages when
	// the shared window is at least 3/4 full.
	contentionNum = 3
	contentionDen = 4
	// activityWindow bounds how long a tenant stays in the fair-share
	// denominator after its last admission attempt. Competitors must count
	// even while they are being rejected — a hog that filled the window
	// before a small tenant's first request would otherwise keep a
	// full-window share forever, because the small tenant never gets
	// inflight work to be counted by.
	activityWindow = time.Second
)

func newAdmission(table qos.Table, window int, now func() time.Time) *admission {
	if now == nil {
		now = time.Now
	}
	return &admission{
		table:   table,
		window:  window,
		now:     now,
		tenants: make(map[uint32]*tenantState),
	}
}

func (a *admission) state(tenant uint32) *tenantState {
	st := a.tenants[tenant]
	if st == nil {
		spec := a.table.Spec(tenant)
		st = &tenantState{spec: spec, bucket: qos.NewBucket(spec, a.now())}
		a.tenants[tenant] = st
	}
	return st
}

// admit runs the per-tenant stages of the admission machine for one request
// of the given cost (bytes of work). total is the current shared-window
// occupancy. It runs before the shared-window overload check so that every
// arrival — even one about to be overload-rejected — registers the tenant as
// a competitor. On success the tenant's inflight share is charged; the
// caller must pair it with release (after service) or cancel (when a later
// admission stage rejects the request).
func (a *admission) admit(tenant uint32, cost int, total int64) verdict {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.state(tenant)
	now := a.now()
	st.lastSeen = now

	// Stage 1 — token bucket: the tenant's own sustained rate contract,
	// enforced regardless of contention.
	if !st.bucket.Take(cost, now) {
		return rejected(wire.ReasonThrottled, st.bucket.Wait(cost, now))
	}

	// Stage 2 — weighted window share, only under contention: a tenant may
	// not hold more of a hot window than its weight entitles it to against
	// the tenants currently competing for it.
	if int(total) >= a.window*contentionNum/contentionDen {
		share := a.window * st.spec.Weight / a.competingWeight(now)
		if share < 1 {
			share = 1
		}
		if st.inflight >= share {
			// The hog pays back one service time's worth of patience; its
			// bucket tokens for this request are forfeit (the simplest
			// accounting that still punishes oversubscription).
			return rejected(wire.ReasonThrottled, 0)
		}
	}

	st.inflight++
	return accepted()
}

// competingWeight sums the weights of tenants competing for the window: those
// holding admitted work plus those that knocked within activityWindow. The
// caller holds a.mu.
func (a *admission) competingWeight(now time.Time) int {
	aw := 0
	for _, st := range a.tenants {
		if st.inflight > 0 || now.Sub(st.lastSeen) <= activityWindow {
			aw += st.spec.Weight
		}
	}
	if aw < 1 {
		aw = 1
	}
	return aw
}

// release returns one admitted request's window share.
func (a *admission) release(tenant uint32) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.tenants[tenant]
	if st == nil || st.inflight == 0 {
		return
	}
	st.inflight--
}

// cancel undoes an admit whose request then failed a later admission stage
// (shared-window overload, deadline): the window share comes back and the
// bucket tokens are refunded — the tenant never got service, so it should not
// pay rate budget for the attempt.
func (a *admission) cancel(tenant uint32, cost int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.tenants[tenant]
	if st == nil || st.inflight == 0 {
		return
	}
	st.inflight--
	st.bucket.Refund(cost)
}

// estimator tracks per-service service-time distributions for the
// deadline-admission wait estimate. It always exists — when the server has a
// metrics registry the same observations also feed the registry's
// server_service_seconds series, but admission must not depend on metrics
// being enabled.
type estimator struct {
	hists map[wire.Svc]*telemetry.Histogram
}

func newEstimator() *estimator {
	return &estimator{hists: map[wire.Svc]*telemetry.Histogram{
		wire.SvcDedup:  telemetry.NewHistogram(nil),
		wire.SvcMandel: telemetry.NewHistogram(nil),
	}}
}

// observe records one completed request's service time.
func (e *estimator) observe(svc wire.Svc, d time.Duration) {
	e.hists[svc].ObserveDuration(d)
}

// wait estimates how long a newly admitted request of svc will sit before
// completing: the queue ahead of it (the shared window occupancy), spread
// across the worker replicas, at the median observed service time. Before
// any observation exists the estimate is zero — the server admits
// optimistically and lets the histogram converge.
func (e *estimator) wait(svc wire.Svc, queued int64, workers int) time.Duration {
	h := e.hists[svc]
	if h.Count() == 0 || queued <= 0 {
		return 0
	}
	p50 := h.Snapshot().Quantile(0.50)
	if p50 <= 0 || workers < 1 {
		return 0
	}
	turns := float64(queued)/float64(workers) + 1
	return time.Duration(turns * p50 * float64(time.Second))
}
