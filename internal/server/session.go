package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"streamgpu/internal/dedup"
	"streamgpu/internal/rabin"
	"streamgpu/internal/server/qos"
	"streamgpu/internal/server/wire"
	"streamgpu/internal/telemetry"
)

// completion records one accepted request whose final byte lands in a
// particular batch: when that batch's archive records are written, the
// request is answered and its service time observed.
type completion struct {
	seq    uint64
	tenant uint32
	t0     time.Time
}

// job is one sealed dedup batch flowing through the shared pipeline.
type job struct {
	sess  *session
	batch *dedup.Batch
	// data is the pooled payload buffer batch.Data aliases; the sink
	// returns it to the server's byte pool after the batch is written.
	data []byte
	// done lists the requests this batch completes, in arrival order.
	done []completion
}

// mandelJob is one row-range request flowing through the Mandelbrot farm.
type mandelJob struct {
	sess   *session
	seq    uint64
	tenant uint32
	t0     time.Time
	req    MandelReq
	out    []byte // filled by the compute stage (pooled)
}

// session is one client connection: a read loop that stages request bytes
// into coalesced batches, plus the per-session archive state the ordered
// sink writes into.
type session struct {
	srv  *Server
	conn net.Conn

	wmu sync.Mutex // serializes response frames (sinks and read loop both write)
	fw  *wire.Writer

	// Staging state, guarded by mu. The linger timer and the read loop both
	// seal batches; sealing submits to the shared pipeline *under mu* so
	// batch sequence numbers enter the (ordered) pipeline in order — the
	// sink never takes mu, so holding it across a blocking submit cannot
	// deadlock.
	mu       sync.Mutex
	cur      []byte // pooled staging buffer; nil when empty
	pending  []completion
	batchSeq int
	chunker  *rabin.Chunker
	linger   *time.Timer
	// qosTenant keys the session's dedup scheduler lane: the tenant of the
	// first admitted dedup request (sessions are single-tenant in practice;
	// a mixed session is simply scheduled under its first tenant). Fixed
	// once set so every batch of the session lands in one lane — per-lane
	// FIFO is what keeps the session's batches in archive order.
	qosTenant    uint32
	qosTenantSet bool

	// Archive state, touched only by the serial ordered sink (plus the read
	// loop's final flush, which runs strictly after the last job drains).
	// store is per-session by default; a cluster node injects one shared
	// content-addressed store through Config.Store.
	store dedup.BlockStore
	out   bytes.Buffer
	dw    *dedup.Writer

	// Outstanding-job accounting for drain, guarded by cmu.
	cmu         sync.Mutex
	outstanding int
	ended       bool
	drained     chan struct{}

	dead atomic.Bool
}

func newSession(s *Server, conn net.Conn) *session {
	store := s.cfg.Store
	if store == nil {
		store = dedup.NewStore()
	}
	sess := &session{
		srv:     s,
		conn:    conn,
		fw:      wire.NewWriter(conn),
		chunker: rabin.NewChunker(),
		store:   store,
		drained: make(chan struct{}),
	}
	sess.dw = dedup.NewWriter(&sess.out)
	return sess
}

// run is the session goroutine: decode frames until the client ends the
// stream, the connection drops, or the server drains.
func (sess *session) run() {
	defer sess.srv.sessWG.Done()
	defer sess.srv.dropSession(sess)
	defer sess.conn.Close()

	sess.srv.sessionGauge(+1)
	defer sess.srv.sessionGauge(-1)

	fr := wire.NewReader(sess.conn, sess.srv.cfg.maxPayload())
	clean := false
loop:
	for {
		// Idle-poll with a short deadline so the session notices server
		// drain: Peek consumes nothing, so an expiry here cannot strand a
		// half-read frame. Once bytes are flowing, the frame itself gets a
		// generous deadline.
		sess.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		if err := fr.Peek(); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if sess.srv.drainingNow() {
					break loop
				}
				continue
			}
			if err != io.EOF {
				sess.fail(fmt.Errorf("read: %w", err))
			}
			break loop
		}
		sess.conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		f, err := fr.Next()
		if err != nil {
			if err != io.EOF {
				sess.fail(fmt.Errorf("read: %w", err))
			}
			break loop
		}
		switch f.Type {
		case wire.TData:
			if !sess.handleData(f) {
				break loop
			}
		case wire.TFlush:
			sess.flushPartial(sealFlush)
		case wire.TEnd:
			clean = true
			break loop
		default:
			sess.fail(fmt.Errorf("unexpected %s frame from client", f.Type))
			break loop
		}
	}
	sess.finish(clean)
}

// handleData validates, admits and stages one request. It returns false on
// a fatal protocol error.
//
// Admission is a four-stage machine:
//
//	tenant throttle → fair share → overload → deadline
//
// The per-tenant gate runs first so every arrival registers as a competitor
// even while it is being rejected — a hog that filled the shared window
// before a small tenant's first request must still see its fair share shrink
// when that tenant starts knocking. Overload then guards the shared window
// (every tenant sees it), and the deadline stage fast-fails a request whose
// estimated queue wait already exceeds the deadline it carries — doing the
// work would only produce an answer nobody is waiting for. Every rejection
// ships a reason and a retry-after hint in the TReject payload.
func (sess *session) handleData(f wire.Frame) bool {
	s := sess.srv
	if len(f.Payload) == 0 {
		sess.fail(errors.New("empty request payload"))
		return false
	}
	// cost is the request's size in bytes of work — payload bytes for
	// dedup, output pixels for mandel — so fairness cannot be cheated by
	// packing more work into fewer requests.
	cost := len(f.Payload)
	var mreq MandelReq
	switch f.Svc {
	case wire.SvcDedup:
	case wire.SvcMandel:
		var err error
		if mreq, err = ParseMandelReq(f.Payload); err != nil {
			sess.fail(err)
			return false
		}
		cost = int(mreq.Dim) * int(mreq.NRows)
	default:
		sess.fail(fmt.Errorf("unknown service %d", uint8(f.Svc)))
		return false
	}
	s.cfg.Metrics.Counter("server_request_bytes_total", tenantLabels(f.Svc, f.Tenant)).
		Add(int64(len(f.Payload)))

	deadline := f.Deadline
	if deadline <= 0 {
		deadline = s.cfg.DefaultDeadline
	}

	total := s.inflight.Load()
	if v := s.adm.admit(f.Tenant, cost, total); !v.ok {
		sess.sendReject(f.Svc, f.Tenant, f.Seq, v.reason, v.retryAfter)
		return true
	}
	if total >= int64(s.cfg.maxInflight()) {
		s.adm.cancel(f.Tenant, cost)
		sess.sendReject(f.Svc, f.Tenant, f.Seq, wire.ReasonOverload,
			s.est.wait(f.Svc, total, s.cfg.workers()))
		return true
	}
	if deadline > 0 {
		if est := s.est.wait(f.Svc, total, s.cfg.workers()); est > deadline {
			s.adm.cancel(f.Tenant, cost)
			sess.sendReject(f.Svc, f.Tenant, f.Seq, wire.ReasonDeadline, est-deadline)
			return true
		}
	}
	s.inflight.Add(1)
	s.countVerdict(f.Svc, f.Tenant, "accepted", wire.ReasonNone)

	switch f.Svc {
	case wire.SvcDedup:
		sess.stageDedup(f)
	case wire.SvcMandel:
		sess.stageMandel(f, mreq, cost, deadline)
	}
	return true
}

// stageMandel queues one row-range request into the fair scheduler. A
// deadline rides along as the item's expiry: a request still queued past it
// is settled with a late deadline reject instead of computed — the wasted
// work the deadline exists to avoid.
func (sess *session) stageMandel(f wire.Frame, mreq MandelReq, cost int, deadline time.Duration) {
	s := sess.srv
	mj := &mandelJob{sess: sess, seq: f.Seq, tenant: f.Tenant, t0: time.Now(), req: mreq}
	sess.addOutstanding(1)
	var expiry time.Time
	if deadline > 0 {
		expiry = mj.t0.Add(deadline)
	}
	s.mandelSched.Enqueue(f.Tenant, qos.Item{
		Cost:     cost,
		Deadline: expiry,
		Run: func() {
			// Blocking push with backpressure; a forced drain (context
			// cancel) unblocks it and the job is settled here instead.
			if !s.mjobs.PushCtx(s.ctx, mj) {
				s.releaseAdmitted(mj.tenant)
				sess.dropJob(1)
			}
		},
		Expire: func() {
			s.releaseAdmitted(mj.tenant)
			sess.sendReject(wire.SvcMandel, mj.tenant, mj.seq, wire.ReasonDeadline, 0)
			sess.dropJob(1)
		},
		Drop: func() {
			s.releaseAdmitted(mj.tenant)
			sess.dropJob(1)
		},
	})
}

// Seal triggers, recorded per batch for the coalescing metrics.
const (
	sealFull  = "full"
	sealLing  = "linger"
	sealFlush = "flush"
	sealEnd   = "end"
)

// stageDedup appends one accepted request's bytes to the session's staging
// buffer, sealing every batch it fills. The request's completion is
// attached to the batch holding its final byte; if that batch stays
// partial, the completion waits in pending for the seal that eventually
// ships it (next request, client flush, linger expiry, or stream end).
func (sess *session) stageDedup(f wire.Frame) {
	s := sess.srv
	batchSize := s.cfg.batchSize()
	c := completion{seq: f.Seq, tenant: f.Tenant, t0: time.Now()}
	payload := f.Payload

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if !sess.qosTenantSet {
		sess.qosTenant = f.Tenant
		sess.qosTenantSet = true
	}
	for {
		if sess.cur == nil {
			sess.cur = s.payloads.Get(batchSize)[:0]
		}
		take := batchSize - len(sess.cur)
		if take > len(payload) {
			take = len(payload)
		}
		sess.cur = append(sess.cur, payload[:take]...)
		payload = payload[take:]
		if len(payload) == 0 {
			sess.pending = append(sess.pending, c)
			if len(sess.cur) == batchSize {
				sess.sealLocked(sealFull)
			}
			break
		}
		// The request continues past this batch: seal without completion.
		sess.sealLocked(sealFull)
	}
	sess.armLingerLocked()
}

// sealLocked turns the staging buffer into a pooled batch and hands it to
// the fair scheduler. Called with mu held; enqueueing under mu keeps batch
// order equal to sequence order within the session's lane, and the
// dispatcher's blocking forward into the bounded job channel is what turns
// a full admission queue into backpressure. Sealed batches carry no
// deadline: their bytes are already part of the session's archive stream
// and must reach the writer or the stream is corrupt.
func (sess *session) sealLocked(trigger string) {
	if len(sess.cur) == 0 {
		return
	}
	s := sess.srv
	j := &job{
		sess:  sess,
		batch: dedup.NewStreamBatch(sess.batchSeq, sess.cur, sess.chunker),
		data:  sess.cur,
		done:  sess.pending,
	}
	sess.batchSeq++
	sess.cur = nil
	sess.pending = nil
	m := s.cfg.Metrics
	m.Counter("server_batches_sealed_total", telemetry.Labels{"trigger": trigger}).Inc()
	m.Counter("server_batch_bytes_total", telemetry.Labels{}).Add(int64(len(j.data)))
	sess.addOutstanding(1)
	discard := func() {
		// Forced drain: the pipeline is going away, recycle and give up on
		// the batch's requests (the client is being disconnected anyway).
		j.batch.Release()
		s.payloads.Release(j.data)
		for _, c := range j.done {
			s.releaseAdmitted(c.tenant)
		}
		sess.dropJob(1)
	}
	s.dedupSched.Enqueue(sess.qosTenant, qos.Item{
		Cost: len(j.data),
		Run: func() {
			if !s.jobs.PushCtx(s.ctx, j) {
				discard()
			}
		},
		Drop: discard,
	})
}

// flushPartial seals the partial batch outside the data path (client flush,
// linger expiry, stream end).
func (sess *session) flushPartial(trigger string) {
	sess.mu.Lock()
	sess.sealLocked(trigger)
	sess.mu.Unlock()
}

// armLingerLocked (re)arms the linger timer while a partial batch is
// staged. Called with mu held.
func (sess *session) armLingerLocked() {
	d := sess.srv.cfg.linger()
	if sess.cur == nil {
		if sess.linger != nil {
			sess.linger.Stop()
		}
		return
	}
	if sess.linger == nil {
		sess.linger = time.AfterFunc(d, func() { sess.flushPartial(sealLing) })
		return
	}
	sess.linger.Reset(d)
}

// finish drains the session: seal what remains, wait for the pipeline to
// answer every outstanding job, then send the final TEnd (carrying any
// residual archive bytes) and close.
func (sess *session) finish(clean bool) {
	sess.mu.Lock()
	if sess.linger != nil {
		sess.linger.Stop()
	}
	sess.sealLocked(sealEnd)
	sess.mu.Unlock()

	sess.cmu.Lock()
	sess.ended = true
	if sess.outstanding == 0 {
		sess.closeDrainedLocked()
	}
	sess.cmu.Unlock()

	select {
	case <-sess.drained:
	case <-sess.srv.ctx.Done():
		// Forced drain: canceled pipelines discard items without running
		// the sink, so outstanding may never reach zero.
	}

	if clean && !sess.dead.Load() {
		// All jobs are answered, so the sink no longer touches this
		// session's archive state: flush any tail the last result frame did
		// not carry and end the stream.
		var tail []byte
		if err := sess.dw.Flush(); err == nil {
			tail = sess.takeArchiveDelta()
		}
		sess.sendFrame(wire.Frame{Type: wire.TEnd, Svc: wire.SvcDedup, Payload: tail})
	}
}

// closeDrainedLocked closes the drained channel once. Called with cmu held.
func (sess *session) closeDrainedLocked() {
	select {
	case <-sess.drained:
	default:
		close(sess.drained)
	}
}

// addOutstanding registers n submitted jobs.
func (sess *session) addOutstanding(n int) {
	sess.cmu.Lock()
	sess.outstanding += n
	sess.cmu.Unlock()
}

// jobDone is called by a sink after fully processing one job; nDone is the
// number of requests it answered (informational only).
func (sess *session) jobDone(int) {
	sess.cmu.Lock()
	sess.outstanding--
	if sess.ended && sess.outstanding == 0 {
		sess.closeDrainedLocked()
	}
	sess.cmu.Unlock()
}

// dropJob un-registers a job that was never submitted (forced drain).
func (sess *session) dropJob(n int) {
	sess.cmu.Lock()
	sess.outstanding -= n
	if sess.ended && sess.outstanding == 0 {
		sess.closeDrainedLocked()
	}
	sess.cmu.Unlock()
}

// takeArchiveDelta removes and returns the archive bytes produced since the
// previous call. Only the sink (or finish, after the drain barrier) calls
// it.
func (sess *session) takeArchiveDelta() []byte {
	if sess.out.Len() == 0 {
		return nil
	}
	delta := make([]byte, sess.out.Len())
	copy(delta, sess.out.Bytes())
	sess.out.Reset()
	return delta
}

// sendResult ships one TResult frame.
func (sess *session) sendResult(svc wire.Svc, seq uint64, tenant uint32, payload []byte) {
	sess.sendFrame(wire.Frame{Type: wire.TResult, Svc: svc, Tenant: tenant, Seq: seq, Payload: payload})
}

// sendReject fast-fails one request with a reason code and a retry-after
// hint, and counts the rejection under its reason label.
func (sess *session) sendReject(svc wire.Svc, tenant uint32, seq uint64, reason wire.Reason, retryAfter time.Duration) {
	sess.srv.countVerdict(svc, tenant, "rejected", reason)
	sess.sendFrame(wire.Frame{
		Type: wire.TReject, Svc: svc, Tenant: tenant, Seq: seq,
		Payload: wire.AppendRejectInfo(nil, reason, retryAfter),
	})
}

// sendFrame writes and flushes one frame; write errors mark the session
// dead (the pipeline keeps draining, responses are dropped).
func (sess *session) sendFrame(f wire.Frame) {
	if sess.dead.Load() {
		return
	}
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	sess.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if err := sess.fw.Write(f); err != nil {
		sess.dead.Store(true)
		return
	}
	if err := sess.fw.Flush(); err != nil {
		sess.dead.Store(true)
	}
}

// fail reports a fatal session error to the client and marks the session
// dead.
func (sess *session) fail(err error) {
	if sess.dead.Load() {
		return
	}
	sess.sendFrame(wire.Frame{Type: wire.TError, Payload: []byte(err.Error())})
	sess.dead.Store(true)
}

// failed reports whether the session has been marked dead.
func (sess *session) failed() bool { return sess.dead.Load() }
