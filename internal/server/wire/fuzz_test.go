package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

// rawDeadlineFrame hand-builds a deadline-flagged TData frame with an
// arbitrary (possibly invalid) deadline word, bypassing Append's clamping.
func rawDeadlineFrame(deadline uint64, payload []byte) []byte {
	b := make([]byte, prefixLen+headerLen+extLen, prefixLen+headerLen+extLen+len(payload))
	binary.BigEndian.PutUint32(b, uint32(headerLen+extLen+len(payload)))
	b[4] = byte(TData) | 0x80
	b[5] = byte(SvcDedup)
	binary.BigEndian.PutUint32(b[6:], 1)
	binary.BigEndian.PutUint64(b[10:], 2)
	binary.BigEndian.PutUint64(b[prefixLen+headerLen:], deadline)
	return append(b, payload...)
}

// FuzzFrameDecode feeds arbitrary bytes to both decoders. The contracts:
// neither panics; a successful Decode re-encodes to exactly the consumed
// bytes; Reader.Next errors are always io.EOF or ErrFrame-wrapped; and the
// two decoders agree on the frames they extract.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 1})
	f.Add(Append(nil, Frame{Type: TData, Svc: SvcDedup, Tenant: 1, Seq: 2, Payload: []byte("seed")}))
	f.Add(Append(Append(nil, Frame{Type: TEnd}), Frame{Type: TResult, Seq: 9, Payload: []byte("xy")}))
	// v2 deadline frames, well-formed and hostile. rawDeadlineFrame builds
	// the flagged layout by hand so the corpus can carry deadline words
	// Append would never emit: zero, sign-bit garbage, all-ones.
	f.Add(Append(nil, Frame{Type: TData, Svc: SvcDedup, Tenant: 3, Seq: 1, Deadline: 250 * time.Millisecond, Payload: []byte("dl")}))
	f.Add(rawDeadlineFrame(0, []byte("zero-deadline")))
	f.Add(rawDeadlineFrame(1<<63, []byte("sign-bit")))
	f.Add(rawDeadlineFrame(^uint64(0), nil))
	f.Add(rawDeadlineFrame(1, nil))
	// Flagged frame whose declared length covers the base header only — the
	// extension would run past the frame.
	short := Append(nil, Frame{Type: TData, Svc: SvcDedup, Seq: 4})
	short[4] |= 0x80
	f.Add(short)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Buffer decoder: walk as many frames as the data holds.
		var fromDecode []Frame
		rest := data
		for {
			fr, n, err := Decode(rest)
			if err != nil {
				if !errors.Is(err, ErrFrame) {
					t.Fatalf("Decode error %v does not wrap ErrFrame", err)
				}
				break
			}
			if n <= 0 || n > len(rest) {
				t.Fatalf("Decode consumed %d of %d", n, len(rest))
			}
			if re := Append(nil, fr); !bytes.Equal(re, rest[:n]) {
				t.Fatalf("re-encode mismatch: %x != %x", re, rest[:n])
			}
			// Copy: the payload aliases rest, and we compare across decoders.
			fr.Payload = append([]byte(nil), fr.Payload...)
			fromDecode = append(fromDecode, fr)
			rest = rest[n:]
		}

		// Stream decoder over the same bytes must yield the same frames.
		rd := NewReader(bytes.NewReader(data), DefaultMaxPayload)
		var fromReader []Frame
		for {
			fr, err := rd.Next()
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrFrame) {
					t.Fatalf("Reader error %v is neither io.EOF nor ErrFrame", err)
				}
				break
			}
			fr.Payload = append([]byte(nil), fr.Payload...)
			fromReader = append(fromReader, fr)
		}
		if len(fromReader) < len(fromDecode) {
			t.Fatalf("Reader decoded %d frames, Decode %d", len(fromReader), len(fromDecode))
		}
		for i, fr := range fromDecode {
			got := fromReader[i]
			if got.Type != fr.Type || got.Svc != fr.Svc || got.Tenant != fr.Tenant || got.Seq != fr.Seq || got.Deadline != fr.Deadline || !bytes.Equal(got.Payload, fr.Payload) {
				t.Fatalf("frame %d: Reader %+v != Decode %+v", i, got, fr)
			}
		}
	})
}

// FuzzFrameRoundTrip encodes arbitrary frame fields and checks both decode
// paths reproduce them exactly. The type is masked to its low 7 bits (bit 7
// is the deadline flag, owned by the codec) and the deadline clamped to the
// encodable range, mirroring what any real encoder produces.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint32(0), uint64(0), int64(0), []byte{})
	f.Add(uint8(4), uint8(2), uint32(77), uint64(1<<40), int64(0), []byte("payload"))
	f.Add(uint8(255), uint8(255), uint32(1<<31), uint64(3), int64(0), bytes.Repeat([]byte{7}, 300))
	f.Add(uint8(1), uint8(1), uint32(9), uint64(5), int64(time.Second), []byte("deadline"))
	f.Add(uint8(1), uint8(2), uint32(0), uint64(0), int64(1), []byte{})
	f.Add(uint8(1), uint8(1), uint32(1), uint64(1), int64(-5), []byte("negative: no flag"))
	f.Fuzz(func(t *testing.T, typ, svc uint8, tenant uint32, seq uint64, deadline int64, payload []byte) {
		in := Frame{Type: Type(typ & 0x7F), Svc: Svc(svc), Tenant: tenant, Seq: seq, Payload: payload}
		if deadline > 0 {
			in.Deadline = time.Duration(deadline)
		}
		enc := Append(nil, in)
		got, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d", n, len(enc))
		}
		if got.Type != in.Type || got.Svc != in.Svc || got.Tenant != in.Tenant || got.Seq != in.Seq || got.Deadline != in.Deadline || !bytes.Equal(got.Payload, in.Payload) {
			t.Fatalf("Decode round-trip: got %+v want %+v", got, in)
		}
		rd := NewReader(bytes.NewReader(enc), len(payload)+1)
		sg, err := rd.Next()
		if err != nil {
			t.Fatalf("Reader round-trip: %v", err)
		}
		if sg.Type != in.Type || sg.Svc != in.Svc || sg.Tenant != in.Tenant || sg.Seq != in.Seq || sg.Deadline != in.Deadline || !bytes.Equal(sg.Payload, in.Payload) {
			t.Fatalf("Reader round-trip: got %+v want %+v", sg, in)
		}
		if _, err := rd.Next(); err != io.EOF {
			t.Fatalf("trailing read: %v, want io.EOF", err)
		}
	})
}
