// Package wire is the streaming service's binary frame protocol: a
// length-prefixed codec carrying a frame type, the target service, a tenant
// ID, a request sequence number, and an opaque payload.
//
// The framing is deliberately minimal — FastFlow's argument (TR-09-12) is
// that sustained streaming lives or dies on per-item overhead, so the header
// is a fixed 18 bytes with no varints and no reflection, and decoding is
// zero-copy: Decode and Reader.Next return payloads that alias the input
// buffer. The length prefix is validated against a payload cap *before* any
// allocation, so a corrupted or hostile length field can never over-allocate
// (the contract the FuzzFrameDecode target enforces).
//
// Layout, all integers big-endian:
//
//	u32  length   // bytes after this field: 14 + len(payload)
//	u8   type     // Type
//	u8   svc      // Svc
//	u32  tenant
//	u64  seq
//	...  payload
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Type discriminates frames.
type Type uint8

// Frame types. Client→server frames carry request payloads and stream
// control; server→client frames carry results and admission verdicts.
const (
	// TData (client→server) is one request: Seq identifies it and the
	// payload is the request body (stream bytes for SvcDedup, an encoded
	// row-range request for SvcMandel).
	TData Type = 1
	// TFlush (client→server) asks the server to seal and submit the
	// session's partially filled batch immediately instead of waiting for
	// the linger deadline.
	TFlush Type = 2
	// TEnd ends the stream. Client→server it means "no more requests: flush
	// everything"; the server answers with a final TEnd after the last
	// result frame, then closes.
	TEnd Type = 3
	// TResult (server→client) completes request Seq. For SvcDedup the
	// payload is the archive bytes produced since the previous result frame
	// on this session; for SvcMandel it is the computed pixel rows.
	TResult Type = 4
	// TReject (server→client) fast-fails request Seq: the server is over
	// its admission high-water mark and dropped the request unprocessed.
	TReject Type = 5
	// TError (server→client) reports a fatal session error; the payload is
	// a human-readable message and the connection closes after it.
	TError Type = 6
)

// String names the frame type.
func (t Type) String() string {
	switch t {
	case TData:
		return "data"
	case TFlush:
		return "flush"
	case TEnd:
		return "end"
	case TResult:
		return "result"
	case TReject:
		return "reject"
	case TError:
		return "error"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Svc selects the resident pipeline a frame targets.
type Svc uint8

// The two services streamd exposes.
const (
	// SvcDedup streams bytes through the shared Dedup compression pipeline.
	SvcDedup Svc = 1
	// SvcMandel computes Mandelbrot row ranges on the shared farm.
	SvcMandel Svc = 2
)

// String names the service.
func (s Svc) String() string {
	switch s {
	case SvcDedup:
		return "dedup"
	case SvcMandel:
		return "mandel"
	}
	return fmt.Sprintf("Svc(%d)", uint8(s))
}

// Frame is one protocol message.
type Frame struct {
	Type    Type
	Svc     Svc
	Tenant  uint32
	Seq     uint64
	Payload []byte
}

// Header and limit constants.
const (
	// headerLen is the fixed byte count after the length prefix.
	headerLen = 1 + 1 + 4 + 8
	// prefixLen is the length prefix itself.
	prefixLen = 4
	// DefaultMaxPayload caps payloads at the Dedup batch size: one request
	// fills at most one batch, so admission counts requests and batches
	// interchangeably.
	DefaultMaxPayload = 1 << 20
)

// Protocol errors.
var (
	// ErrFrame reports a malformed frame.
	ErrFrame = errors.New("wire: bad frame")
	// ErrTooLarge reports a frame whose declared payload exceeds the
	// reader's cap. It wraps ErrFrame.
	ErrTooLarge = fmt.Errorf("%w: payload too large", ErrFrame)
)

// Append encodes f and appends it to dst, returning the extended slice.
func Append(dst []byte, f Frame) []byte {
	var hdr [prefixLen + headerLen]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(headerLen+len(f.Payload)))
	hdr[4] = byte(f.Type)
	hdr[5] = byte(f.Svc)
	binary.BigEndian.PutUint32(hdr[6:], f.Tenant)
	binary.BigEndian.PutUint64(hdr[10:], f.Seq)
	dst = append(dst, hdr[:]...)
	return append(dst, f.Payload...)
}

// EncodedLen reports the wire size of f.
func EncodedLen(f Frame) int { return prefixLen + headerLen + len(f.Payload) }

// Decode parses one frame from the front of b without copying: the returned
// frame's payload aliases b. It returns the number of bytes consumed.
// Decode never allocates, so no length field in b can cause memory growth.
func Decode(b []byte) (Frame, int, error) {
	if len(b) < prefixLen+headerLen {
		return Frame{}, 0, fmt.Errorf("%w: %d bytes, need at least %d", ErrFrame, len(b), prefixLen+headerLen)
	}
	n := binary.BigEndian.Uint32(b)
	if n < headerLen {
		return Frame{}, 0, fmt.Errorf("%w: declared length %d below header size", ErrFrame, n)
	}
	if uint64(n) > uint64(len(b)-prefixLen) {
		return Frame{}, 0, fmt.Errorf("%w: declared length %d exceeds buffer %d", ErrFrame, n, len(b)-prefixLen)
	}
	f := Frame{
		Type:   Type(b[4]),
		Svc:    Svc(b[5]),
		Tenant: binary.BigEndian.Uint32(b[6:]),
		Seq:    binary.BigEndian.Uint64(b[10:]),
	}
	if n > headerLen {
		f.Payload = b[prefixLen+headerLen : prefixLen+n]
	}
	return f, prefixLen + int(n), nil
}

// Writer serializes frames onto an io.Writer. Not safe for concurrent use;
// callers serialize with their own lock.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write encodes f. The frame is buffered; call Flush to push it to the
// connection.
func (fw *Writer) Write(f Frame) error {
	fw.buf = Append(fw.buf[:0], f)
	_, err := fw.w.Write(fw.buf)
	return err
}

// Flush pushes buffered frames to the underlying writer.
func (fw *Writer) Flush() error { return fw.w.Flush() }

// Reader decodes frames from an io.Reader. The payload cap is enforced
// before the payload is read, so a corrupt length prefix fails fast instead
// of allocating. Frames returned by Next share one internal buffer: each
// call invalidates the previous frame's payload.
type Reader struct {
	r   *bufio.Reader
	max int
	buf []byte
}

// NewReader wraps r with the given payload cap (<= 0 selects
// DefaultMaxPayload).
func NewReader(r io.Reader, maxPayload int) *Reader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	return &Reader{r: bufio.NewReaderSize(r, 1<<16), max: maxPayload}
}

// Peek blocks until at least one byte is available without consuming it,
// returning any underlying read error verbatim (io.EOF, net timeouts).
// Servers poll with a short read deadline here — a deadline that expires
// during Peek leaves the stream intact, unlike one expiring inside Next,
// which would strand a half-read frame.
func (fr *Reader) Peek() error {
	_, err := fr.r.Peek(1)
	return err
}

// Next reads one frame. io.EOF is returned verbatim at a clean frame
// boundary; a partial frame returns an ErrFrame-wrapped error.
func (fr *Reader) Next() (Frame, error) {
	var pfx [prefixLen + headerLen]byte
	if _, err := io.ReadFull(fr.r, pfx[:prefixLen]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: truncated length prefix: %v", ErrFrame, err)
	}
	n := binary.BigEndian.Uint32(pfx[:])
	if n < headerLen {
		return Frame{}, fmt.Errorf("%w: declared length %d below header size", ErrFrame, n)
	}
	if int64(n)-headerLen > int64(fr.max) {
		return Frame{}, fmt.Errorf("%w: payload %d exceeds cap %d", ErrTooLarge, n-headerLen, fr.max)
	}
	if _, err := io.ReadFull(fr.r, pfx[prefixLen:]); err != nil {
		return Frame{}, fmt.Errorf("%w: truncated header: %v", ErrFrame, err)
	}
	f := Frame{
		Type:   Type(pfx[4]),
		Svc:    Svc(pfx[5]),
		Tenant: binary.BigEndian.Uint32(pfx[6:]),
		Seq:    binary.BigEndian.Uint64(pfx[10:]),
	}
	if pl := int(n) - headerLen; pl > 0 {
		if cap(fr.buf) < pl {
			fr.buf = make([]byte, pl)
		}
		fr.buf = fr.buf[:pl]
		if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
			return Frame{}, fmt.Errorf("%w: truncated payload: %v", ErrFrame, err)
		}
		f.Payload = fr.buf
	}
	return f, nil
}
