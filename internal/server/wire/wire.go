// Package wire is the streaming service's binary frame protocol: a
// length-prefixed codec carrying a frame type, the target service, a tenant
// ID, a request sequence number, and an opaque payload.
//
// The framing is deliberately minimal — FastFlow's argument (TR-09-12) is
// that sustained streaming lives or dies on per-item overhead, so the header
// is a fixed 18 bytes with no varints and no reflection, and decoding is
// zero-copy: Decode and Reader.Next return payloads that alias the input
// buffer. The length prefix is validated against a payload cap *before* any
// allocation, so a corrupted or hostile length field can never over-allocate
// (the contract the FuzzFrameDecode target enforces).
//
// Layout, all integers big-endian:
//
//	u32  length   // bytes after this field: 14 + [8] + len(payload)
//	u8   type     // Type (low 7 bits) | flags (bit 7: deadline present)
//	u8   svc      // Svc
//	u32  tenant
//	u64  seq
//	[u64 deadline] // only when bit 7 of the type byte is set: relative
//	               // deadline in nanoseconds (Frame.Deadline)
//	...  payload
//
// Versioning: the codec's v1 layout had no deadline and a bare type byte.
// v2 carries the optional deadline behind a flag bit in the type byte, so
// every frame a v2 encoder emits *without* a deadline is byte-identical to
// v1 — old clients keep decoding everything a server sends them (servers
// never send deadlines; the reject reason and retry-after hint ride the
// TReject payload, which v1 clients ignore). A v1 decoder handed a
// deadline-flagged frame fails fast with an unknown-type error rather than
// misparsing, and the length prefix still covers the extension, so framing
// never desynchronizes across versions.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// Type discriminates frames.
type Type uint8

// Frame types. Client→server frames carry request payloads and stream
// control; server→client frames carry results and admission verdicts.
const (
	// TData (client→server) is one request: Seq identifies it and the
	// payload is the request body (stream bytes for SvcDedup, an encoded
	// row-range request for SvcMandel).
	TData Type = 1
	// TFlush (client→server) asks the server to seal and submit the
	// session's partially filled batch immediately instead of waiting for
	// the linger deadline.
	TFlush Type = 2
	// TEnd ends the stream. Client→server it means "no more requests: flush
	// everything"; the server answers with a final TEnd after the last
	// result frame, then closes.
	TEnd Type = 3
	// TResult (server→client) completes request Seq. For SvcDedup the
	// payload is the archive bytes produced since the previous result frame
	// on this session; for SvcMandel it is the computed pixel rows.
	TResult Type = 4
	// TReject (server→client) fast-fails request Seq: the request was
	// dropped unprocessed. The payload, when present, is a RejectInfo
	// (one-byte Reason plus a retry-after hint); v1 servers send it empty
	// and v1 clients ignore it either way.
	TReject Type = 5
	// TError (server→client) reports a fatal session error; the payload is
	// a human-readable message and the connection closes after it.
	TError Type = 6
	// TRedirect (server→client) is the cluster routing verdict: this node
	// does not own the request's tenant, and the payload is a RejectInfo
	// (reason ReasonRedirect) followed by the owning node's dial address.
	// Clients re-dial the address and re-offer the request there; v1 clients
	// never see it because single-node servers never send it.
	TRedirect Type = 7
	// TGossip (node→node) carries one SWIM membership message (ping, ack, or
	// indirect ping request) between cluster nodes; the payload encoding is
	// internal/cluster's.
	TGossip Type = 8
	// TStore (node→node) is one cluster-store RPC (hash query, block fetch,
	// block put) between cluster nodes; the payload's first byte is the
	// subtype, defined by internal/cluster.
	TStore Type = 9
)

// String names the frame type.
func (t Type) String() string {
	switch t {
	case TData:
		return "data"
	case TFlush:
		return "flush"
	case TEnd:
		return "end"
	case TResult:
		return "result"
	case TReject:
		return "reject"
	case TError:
		return "error"
	case TRedirect:
		return "redirect"
	case TGossip:
		return "gossip"
	case TStore:
		return "store"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Svc selects the resident pipeline a frame targets.
type Svc uint8

// The two services streamd exposes.
const (
	// SvcDedup streams bytes through the shared Dedup compression pipeline.
	SvcDedup Svc = 1
	// SvcMandel computes Mandelbrot row ranges on the shared farm.
	SvcMandel Svc = 2
)

// String names the service.
func (s Svc) String() string {
	switch s {
	case SvcDedup:
		return "dedup"
	case SvcMandel:
		return "mandel"
	}
	return fmt.Sprintf("Svc(%d)", uint8(s))
}

// Frame is one protocol message.
type Frame struct {
	Type   Type
	Svc    Svc
	Tenant uint32
	Seq    uint64
	// Deadline is the request's relative service budget: the client asks
	// the server to answer within this long or fast-fail. Zero (or
	// negative) means "no deadline" and encodes in the v1 layout; positive
	// values set the deadline flag bit and append the extension word.
	// Server→client frames never carry a deadline.
	Deadline time.Duration
	Payload  []byte
}

// Header and limit constants.
const (
	// headerLen is the fixed byte count after the length prefix.
	headerLen = 1 + 1 + 4 + 8
	// extLen is the deadline extension appended to the header when the
	// type byte's flagDeadline bit is set.
	extLen = 8
	// prefixLen is the length prefix itself.
	prefixLen = 4
	// flagDeadline in the type byte marks a header carrying the deadline
	// extension. Frame types themselves stay in the low 7 bits.
	flagDeadline = 0x80
	// DefaultMaxPayload caps payloads at the Dedup batch size: one request
	// fills at most one batch, so admission counts requests and batches
	// interchangeably.
	DefaultMaxPayload = 1 << 20
)

// hdrLen returns the post-prefix header size for a frame with or without
// the deadline extension.
func hdrLen(withDeadline bool) int {
	if withDeadline {
		return headerLen + extLen
	}
	return headerLen
}

// Reason is the one-byte code a TReject frame carries explaining the
// fast-fail, so clients can distinguish "back off" from "lower your load"
// from "shorten your deadline".
type Reason uint8

// Reject reasons.
const (
	// ReasonNone is the zero value: the server predates reasons (a v1
	// TReject with an empty payload) or did not specify one.
	ReasonNone Reason = 0
	// ReasonOverload: the shared admission window is full.
	ReasonOverload Reason = 1
	// ReasonDeadline: the queue-wait estimate already exceeded the
	// request's deadline, so processing it would be wasted work.
	ReasonDeadline Reason = 2
	// ReasonQuarantine: capacity is degraded because one or more devices
	// are quarantined and their work is rerouted to slower paths.
	ReasonQuarantine Reason = 3
	// ReasonThrottled: the tenant exhausted its own token bucket or fair
	// share — other tenants are unaffected.
	ReasonThrottled Reason = 4
	// ReasonRedirect: the node answering does not own the request's tenant on
	// the cluster's consistent-hash ring; the owning node's address follows
	// the RejectInfo in the payload (TRedirect frames only).
	ReasonRedirect Reason = 5
)

// String names the reject reason; used as the metrics label value.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonOverload:
		return "overload"
	case ReasonDeadline:
		return "deadline"
	case ReasonQuarantine:
		return "quarantine"
	case ReasonThrottled:
		return "tenant-throttled"
	case ReasonRedirect:
		return "redirect"
	}
	return fmt.Sprintf("Reason(%d)", uint8(r))
}

// rejectInfoLen is the encoded size of a RejectInfo payload.
const rejectInfoLen = 1 + 8

// AppendRejectInfo encodes a TReject payload: the reason byte followed by a
// big-endian retry-after hint in nanoseconds (how long the client should
// back off before retrying; 0 means "no hint, use your own backoff").
func AppendRejectInfo(dst []byte, reason Reason, retryAfter time.Duration) []byte {
	var buf [rejectInfoLen]byte
	buf[0] = byte(reason)
	if retryAfter > 0 {
		binary.BigEndian.PutUint64(buf[1:], uint64(retryAfter))
	}
	return append(dst, buf[:]...)
}

// ParseRejectInfo decodes a TReject payload tolerantly: an empty or short
// payload (a v1 server, or a truncated hint) yields ReasonNone and a zero
// retry-after rather than an error, and a negative or absurd hint is clamped
// to zero — a hostile server must never be able to park a client forever.
func ParseRejectInfo(payload []byte) (Reason, time.Duration) {
	if len(payload) < 1 {
		return ReasonNone, 0
	}
	reason := Reason(payload[0])
	if len(payload) < rejectInfoLen {
		return reason, 0
	}
	d := binary.BigEndian.Uint64(payload[1:])
	if d > uint64(math.MaxInt64) {
		return reason, 0
	}
	return reason, time.Duration(d)
}

// AppendRedirectInfo encodes a TRedirect payload: a RejectInfo with reason
// ReasonRedirect (the new reason byte; the retry-after hint tells the client
// how long to wait before re-dialing when the ring is still converging)
// followed by the owning node's dial address.
func AppendRedirectInfo(dst []byte, retryAfter time.Duration, addr string) []byte {
	dst = AppendRejectInfo(dst, ReasonRedirect, retryAfter)
	return append(dst, addr...)
}

// ParseRedirectInfo decodes a TRedirect payload tolerantly, mirroring
// ParseRejectInfo: a short payload yields an empty address (the client falls
// back to its own node list), and the hint is clamped like a reject hint.
func ParseRedirectInfo(payload []byte) (retryAfter time.Duration, addr string) {
	_, retryAfter = ParseRejectInfo(payload)
	if len(payload) > rejectInfoLen {
		addr = string(payload[rejectInfoLen:])
	}
	return retryAfter, addr
}

// Protocol errors.
var (
	// ErrFrame reports a malformed frame.
	ErrFrame = errors.New("wire: bad frame")
	// ErrTooLarge reports a frame whose declared payload exceeds the
	// reader's cap. It wraps ErrFrame.
	ErrTooLarge = fmt.Errorf("%w: payload too large", ErrFrame)
)

// Append encodes f and appends it to dst, returning the extended slice.
func Append(dst []byte, f Frame) []byte {
	hl := hdrLen(f.Deadline > 0)
	var hdr [prefixLen + headerLen + extLen]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(hl+len(f.Payload)))
	tb := byte(f.Type) &^ flagDeadline
	if f.Deadline > 0 {
		tb |= flagDeadline
	}
	hdr[4] = tb
	hdr[5] = byte(f.Svc)
	binary.BigEndian.PutUint32(hdr[6:], f.Tenant)
	binary.BigEndian.PutUint64(hdr[10:], f.Seq)
	if f.Deadline > 0 {
		binary.BigEndian.PutUint64(hdr[prefixLen+headerLen:], uint64(f.Deadline))
	}
	dst = append(dst, hdr[:prefixLen+hl]...)
	return append(dst, f.Payload...)
}

// EncodedLen reports the wire size of f.
func EncodedLen(f Frame) int {
	return prefixLen + hdrLen(f.Deadline > 0) + len(f.Payload)
}

// decodeHeader parses the post-prefix header bytes (which must span the full
// header including any extension) into f, returning the total header length.
// A flagged deadline with the sign bit set is rejected: it cannot represent a
// positive time.Duration, so it is hostile or corrupt by construction.
func decodeHeader(hdr []byte) (Frame, int, error) {
	tb := hdr[0]
	f := Frame{
		Type:   Type(tb &^ flagDeadline),
		Svc:    Svc(hdr[1]),
		Tenant: binary.BigEndian.Uint32(hdr[2:]),
		Seq:    binary.BigEndian.Uint64(hdr[6:]),
	}
	if tb&flagDeadline == 0 {
		return f, headerLen, nil
	}
	d := binary.BigEndian.Uint64(hdr[headerLen:])
	if d == 0 || d > uint64(math.MaxInt64) {
		return Frame{}, 0, fmt.Errorf("%w: deadline %#x out of range", ErrFrame, d)
	}
	f.Deadline = time.Duration(d)
	return f, headerLen + extLen, nil
}

// Decode parses one frame from the front of b without copying: the returned
// frame's payload aliases b. It returns the number of bytes consumed.
// Decode never allocates, so no length field in b can cause memory growth.
func Decode(b []byte) (Frame, int, error) {
	if len(b) < prefixLen+headerLen {
		return Frame{}, 0, fmt.Errorf("%w: %d bytes, need at least %d", ErrFrame, len(b), prefixLen+headerLen)
	}
	n := binary.BigEndian.Uint32(b)
	if n < headerLen {
		return Frame{}, 0, fmt.Errorf("%w: declared length %d below header size", ErrFrame, n)
	}
	if uint64(n) > uint64(len(b)-prefixLen) {
		return Frame{}, 0, fmt.Errorf("%w: declared length %d exceeds buffer %d", ErrFrame, n, len(b)-prefixLen)
	}
	hl := hdrLen(b[4]&flagDeadline != 0)
	if int(n) < hl {
		return Frame{}, 0, fmt.Errorf("%w: declared length %d below extended header size %d", ErrFrame, n, hl)
	}
	f, hl, err := decodeHeader(b[prefixLen : prefixLen+hl])
	if err != nil {
		return Frame{}, 0, err
	}
	if int(n) > hl {
		f.Payload = b[prefixLen+hl : prefixLen+n]
	}
	return f, prefixLen + int(n), nil
}

// ReadRaw reads one complete frame — length prefix included — from r without
// decoding it, enforcing the payload cap before allocating (<= 0 selects
// DefaultMaxPayload). The cluster router uses it to inspect and then replay or
// forward a frame byte-for-byte: the returned slice decodes with Decode and
// writes back out verbatim. io.EOF is returned verbatim at a clean frame
// boundary.
func ReadRaw(r io.Reader, maxPayload int) ([]byte, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var pfx [prefixLen]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: truncated length prefix: %v", ErrFrame, err)
	}
	n := binary.BigEndian.Uint32(pfx[:])
	if n < headerLen {
		return nil, fmt.Errorf("%w: declared length %d below header size", ErrFrame, n)
	}
	if int64(n)-headerLen > int64(maxPayload)+extLen {
		return nil, fmt.Errorf("%w: payload %d exceeds cap %d", ErrTooLarge, n-headerLen, maxPayload)
	}
	raw := make([]byte, prefixLen+int(n))
	copy(raw, pfx[:])
	if _, err := io.ReadFull(r, raw[prefixLen:]); err != nil {
		return nil, fmt.Errorf("%w: truncated frame: %v", ErrFrame, err)
	}
	return raw, nil
}

// Writer serializes frames onto an io.Writer. Not safe for concurrent use;
// callers serialize with their own lock.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write encodes f. The frame is buffered; call Flush to push it to the
// connection.
func (fw *Writer) Write(f Frame) error {
	fw.buf = Append(fw.buf[:0], f)
	_, err := fw.w.Write(fw.buf)
	return err
}

// Flush pushes buffered frames to the underlying writer.
func (fw *Writer) Flush() error { return fw.w.Flush() }

// Reader decodes frames from an io.Reader. The payload cap is enforced
// before the payload is read, so a corrupt length prefix fails fast instead
// of allocating. Frames returned by Next share one internal buffer: each
// call invalidates the previous frame's payload.
type Reader struct {
	r   *bufio.Reader
	max int
	buf []byte
}

// NewReader wraps r with the given payload cap (<= 0 selects
// DefaultMaxPayload).
func NewReader(r io.Reader, maxPayload int) *Reader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	return &Reader{r: bufio.NewReaderSize(r, 1<<16), max: maxPayload}
}

// Peek blocks until at least one byte is available without consuming it,
// returning any underlying read error verbatim (io.EOF, net timeouts).
// Servers poll with a short read deadline here — a deadline that expires
// during Peek leaves the stream intact, unlike one expiring inside Next,
// which would strand a half-read frame.
func (fr *Reader) Peek() error {
	_, err := fr.r.Peek(1)
	return err
}

// Next reads one frame. io.EOF is returned verbatim at a clean frame
// boundary; a partial frame returns an ErrFrame-wrapped error.
func (fr *Reader) Next() (Frame, error) {
	var pfx [prefixLen + headerLen + extLen]byte
	if _, err := io.ReadFull(fr.r, pfx[:prefixLen]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: truncated length prefix: %v", ErrFrame, err)
	}
	n := binary.BigEndian.Uint32(pfx[:])
	if n < headerLen {
		return Frame{}, fmt.Errorf("%w: declared length %d below header size", ErrFrame, n)
	}
	// The cap check uses the v1 header size: a deadline-flagged frame's 8
	// extension bytes count against the cap slack, which is harmless.
	if int64(n)-headerLen > int64(fr.max)+extLen {
		return Frame{}, fmt.Errorf("%w: payload %d exceeds cap %d", ErrTooLarge, n-headerLen, fr.max)
	}
	if _, err := io.ReadFull(fr.r, pfx[prefixLen:prefixLen+headerLen]); err != nil {
		return Frame{}, fmt.Errorf("%w: truncated header: %v", ErrFrame, err)
	}
	hl := hdrLen(pfx[4]&flagDeadline != 0)
	if int(n) < hl {
		return Frame{}, fmt.Errorf("%w: declared length %d below extended header size %d", ErrFrame, n, hl)
	}
	if hl > headerLen {
		if _, err := io.ReadFull(fr.r, pfx[prefixLen+headerLen:prefixLen+hl]); err != nil {
			return Frame{}, fmt.Errorf("%w: truncated deadline extension: %v", ErrFrame, err)
		}
	}
	f, hl, err := decodeHeader(pfx[prefixLen : prefixLen+hl])
	if err != nil {
		return Frame{}, err
	}
	if pl := int(n) - hl; pl > 0 {
		if pl > fr.max {
			return Frame{}, fmt.Errorf("%w: payload %d exceeds cap %d", ErrTooLarge, pl, fr.max)
		}
		if cap(fr.buf) < pl {
			fr.buf = make([]byte, pl)
		}
		fr.buf = fr.buf[:pl]
		if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
			return Frame{}, fmt.Errorf("%w: truncated payload: %v", ErrFrame, err)
		}
		f.Payload = fr.buf
	}
	return f, nil
}
