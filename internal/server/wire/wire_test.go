package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TData, Svc: SvcDedup, Tenant: 7, Seq: 42, Payload: []byte("hello stream")},
		{Type: TFlush, Svc: SvcDedup, Tenant: 0, Seq: 0},
		{Type: TEnd},
		{Type: TResult, Svc: SvcMandel, Tenant: 0xFFFFFFFF, Seq: 1<<64 - 1, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{Type: TReject, Svc: SvcDedup, Tenant: 3, Seq: 9},
		{Type: TError, Payload: []byte("boom")},
	}
	for _, f := range frames {
		enc := Append(nil, f)
		if len(enc) != EncodedLen(f) {
			t.Errorf("%v: encoded %d bytes, EncodedLen says %d", f.Type, len(enc), EncodedLen(f))
		}
		got, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", f.Type, err)
		}
		if n != len(enc) {
			t.Errorf("%v: consumed %d of %d", f.Type, n, len(enc))
		}
		if got.Type != f.Type || got.Svc != f.Svc || got.Tenant != f.Tenant || got.Seq != f.Seq || !bytes.Equal(got.Payload, f.Payload) {
			t.Errorf("%v: round-trip mismatch: got %+v", f.Type, got)
		}
	}
}

func TestDeadlineRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TData, Svc: SvcDedup, Tenant: 7, Seq: 1, Deadline: time.Millisecond, Payload: []byte("dl")},
		{Type: TData, Svc: SvcMandel, Tenant: 0, Seq: 0, Deadline: 1},
		{Type: TFlush, Svc: SvcDedup, Tenant: 9, Seq: 3, Deadline: 10 * time.Second},
		// Negative deadlines encode as "none" — the frame is plain v1.
		{Type: TData, Svc: SvcDedup, Tenant: 1, Seq: 2, Deadline: -time.Second},
	}
	for _, f := range frames {
		enc := Append(nil, f)
		if len(enc) != EncodedLen(f) {
			t.Errorf("%+v: encoded %d bytes, EncodedLen says %d", f, len(enc), EncodedLen(f))
		}
		want := f
		if want.Deadline < 0 {
			want.Deadline = 0
		}
		got, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("%+v: decode: %v", f, err)
		}
		if n != len(enc) || got.Deadline != want.Deadline || got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("%+v: Decode got %+v (consumed %d of %d)", f, got, n, len(enc))
		}
		rd := NewReader(bytes.NewReader(enc), 0)
		sg, err := rd.Next()
		if err != nil {
			t.Fatalf("%+v: Reader: %v", f, err)
		}
		if sg.Deadline != want.Deadline || sg.Type != want.Type || !bytes.Equal(sg.Payload, want.Payload) {
			t.Errorf("%+v: Reader got %+v", f, sg)
		}
	}
}

// TestV1Compat pins the deadline-free encoding to the literal v1 byte
// layout: a v2 encoder that never sets a deadline must be indistinguishable
// from a v1 encoder, or old clients break.
func TestV1Compat(t *testing.T) {
	f := Frame{Type: TResult, Svc: SvcMandel, Tenant: 0x01020304, Seq: 0x05060708090a0b0c, Payload: []byte("v1")}
	want := []byte{
		0, 0, 0, 16, // length: 14-byte header + 2 payload
		4, 2, // type (no flag bit), svc
		1, 2, 3, 4, // tenant
		5, 6, 7, 8, 9, 0x0a, 0x0b, 0x0c, // seq
		'v', '1',
	}
	if got := Append(nil, f); !bytes.Equal(got, want) {
		t.Fatalf("v1 layout drifted:\n got %x\nwant %x", got, want)
	}
}

func TestHostileDeadlines(t *testing.T) {
	base := Append(nil, Frame{Type: TData, Svc: SvcDedup, Tenant: 1, Seq: 2, Deadline: time.Second, Payload: []byte("p")})
	mut := func(edit func(b []byte)) []byte {
		b := append([]byte(nil), base...)
		edit(b)
		return b
	}
	cases := map[string][]byte{
		"zero deadline":     mut(func(b []byte) { binary.BigEndian.PutUint64(b[prefixLen+headerLen:], 0) }),
		"sign-bit deadline": mut(func(b []byte) { binary.BigEndian.PutUint64(b[prefixLen+headerLen:], 1<<63) }),
		"all-ones deadline": mut(func(b []byte) { binary.BigEndian.PutUint64(b[prefixLen+headerLen:], ^uint64(0)) }),
		// Flag set but declared length only covers the base header.
		"flag without extension": mut(func(b []byte) { binary.BigEndian.PutUint32(b, headerLen) }),
	}
	for name, b := range cases {
		if _, _, err := Decode(b); !errors.Is(err, ErrFrame) {
			t.Errorf("Decode %s: err = %v, want ErrFrame", name, err)
		}
		if _, err := NewReader(bytes.NewReader(b), 0).Next(); !errors.Is(err, ErrFrame) {
			t.Errorf("Reader %s: err = %v, want ErrFrame", name, err)
		}
	}
}

func TestRejectInfo(t *testing.T) {
	for _, tc := range []struct {
		reason Reason
		after  time.Duration
	}{
		{ReasonOverload, 0},
		{ReasonDeadline, 50 * time.Millisecond},
		{ReasonQuarantine, time.Minute},
		{ReasonThrottled, 1},
	} {
		p := AppendRejectInfo(nil, tc.reason, tc.after)
		r, d := ParseRejectInfo(p)
		if r != tc.reason || d != tc.after {
			t.Errorf("round-trip (%v, %v) = (%v, %v)", tc.reason, tc.after, r, d)
		}
	}
	// Tolerant parses: v1 empty payload, truncated hint, hostile huge hint.
	if r, d := ParseRejectInfo(nil); r != ReasonNone || d != 0 {
		t.Errorf("empty payload = (%v, %v), want (none, 0)", r, d)
	}
	if r, d := ParseRejectInfo([]byte{byte(ReasonDeadline), 1, 2}); r != ReasonDeadline || d != 0 {
		t.Errorf("truncated payload = (%v, %v), want (deadline, 0)", r, d)
	}
	hostile := AppendRejectInfo(nil, ReasonOverload, 0)
	binary.BigEndian.PutUint64(hostile[1:], ^uint64(0))
	if r, d := ParseRejectInfo(hostile); r != ReasonOverload || d != 0 {
		t.Errorf("hostile hint = (%v, %v), want clamp to 0", r, d)
	}
	// Reason labels are stable metric values.
	for r, want := range map[Reason]string{
		ReasonNone: "none", ReasonOverload: "overload", ReasonDeadline: "deadline",
		ReasonQuarantine: "quarantine", ReasonThrottled: "tenant-throttled",
	} {
		if got := r.String(); got != want {
			t.Errorf("Reason(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestDecodeConcatenated(t *testing.T) {
	a := Frame{Type: TData, Svc: SvcDedup, Tenant: 1, Seq: 1, Payload: []byte("first")}
	b := Frame{Type: TData, Svc: SvcDedup, Tenant: 1, Seq: 2, Payload: []byte("second")}
	buf := Append(Append(nil, a), b)
	got1, n1, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	got2, n2, err := Decode(buf[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if n1+n2 != len(buf) {
		t.Errorf("consumed %d+%d of %d", n1, n2, len(buf))
	}
	if string(got1.Payload) != "first" || string(got2.Payload) != "second" {
		t.Errorf("payloads %q, %q", got1.Payload, got2.Payload)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":            nil,
		"short prefix":     {0, 0},
		"header only":      {0, 0, 0, 0},
		"length below min": append([]byte{0, 0, 0, 5}, make([]byte, headerLen)...),
		"length past end":  append([]byte{0, 0, 1, 0}, make([]byte, headerLen)...),
	}
	for name, b := range cases {
		if _, _, err := Decode(b); !errors.Is(err, ErrFrame) {
			t.Errorf("%s: err = %v, want ErrFrame", name, err)
		}
	}
}

func TestWriterReader(t *testing.T) {
	var buf bytes.Buffer
	fw := NewWriter(&buf)
	want := []Frame{
		{Type: TData, Svc: SvcDedup, Tenant: 2, Seq: 0, Payload: []byte("abc")},
		{Type: TData, Svc: SvcDedup, Tenant: 2, Seq: 1, Payload: bytes.Repeat([]byte("x"), 1000)},
		{Type: TEnd},
	}
	for _, f := range want {
		if err := fw.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewReader(&buf, 0)
	for i, f := range want {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != f.Type || got.Seq != f.Seq || !bytes.Equal(got.Payload, f.Payload) {
			t.Errorf("frame %d: got %+v", i, got)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestReaderPayloadCap(t *testing.T) {
	enc := Append(nil, Frame{Type: TData, Payload: make([]byte, 100)})
	fr := NewReader(bytes.NewReader(enc), 99)
	if _, err := fr.Next(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestReaderTruncated(t *testing.T) {
	enc := Append(nil, Frame{Type: TData, Payload: []byte("payload")})
	for cut := 1; cut < len(enc); cut++ {
		fr := NewReader(bytes.NewReader(enc[:cut]), 0)
		_, err := fr.Next()
		if !errors.Is(err, ErrFrame) {
			t.Errorf("cut at %d: err = %v, want ErrFrame-wrapped", cut, err)
		}
	}
}

// TestReaderHostileLengthNoAlloc: a declared length far past the cap must be
// rejected before any payload-sized allocation happens.
func TestReaderHostileLengthNoAlloc(t *testing.T) {
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	fr := NewReader(bytes.NewReader(hostile), 1<<20)
	allocs := testing.AllocsPerRun(10, func() {
		fr2 := *fr
		fr2.r.Reset(bytes.NewReader(hostile))
		fr2.Next()
	})
	// The error path formats a message (a couple of small allocations); the
	// point is that nothing payload-sized is allocated.
	if allocs > 10 {
		t.Errorf("hostile length allocated %v objects per run", allocs)
	}
}

func TestRedirectInfo(t *testing.T) {
	for _, tc := range []struct {
		after time.Duration
		addr  string
	}{
		{0, "10.1.2.3:7070"},
		{200 * time.Millisecond, "node-b.internal:9999"},
		{time.Second, ""},
	} {
		p := AppendRedirectInfo(nil, tc.after, tc.addr)
		after, addr := ParseRedirectInfo(p)
		if after != tc.after || addr != tc.addr {
			t.Errorf("round-trip (%v, %q) = (%v, %q)", tc.after, tc.addr, after, addr)
		}
	}
	// A full TRedirect frame survives encode/decode with the payload intact,
	// and pre-cluster frame types are untouched by the new type values.
	f := Frame{Type: TRedirect, Svc: SvcDedup, Tenant: 7, Seq: 3,
		Payload: AppendRedirectInfo(nil, 100*time.Millisecond, "127.0.0.1:7071")}
	enc := Append(nil, f)
	got, _, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	after, addr := ParseRedirectInfo(got.Payload)
	if got.Type != TRedirect || addr != "127.0.0.1:7071" || after != 100*time.Millisecond {
		t.Errorf("decoded redirect = %+v (after %v, addr %q)", got, after, addr)
	}
	// Tolerant parses: empty and truncated payloads yield zero values.
	if after, addr := ParseRedirectInfo(nil); after != 0 || addr != "" {
		t.Errorf("empty payload = (%v, %q)", after, addr)
	}
	if after, addr := ParseRedirectInfo(enc[:3]); after != 0 && addr != "" {
		t.Errorf("truncated payload = (%v, %q)", after, addr)
	}
}

func TestReadRaw(t *testing.T) {
	a := Frame{Type: TData, Svc: SvcDedup, Tenant: 1, Seq: 1, Payload: []byte("first")}
	b := Frame{Type: TGossip, Seq: 2, Payload: []byte("membership table")}
	stream := Append(Append(nil, a), b)
	r := bytes.NewReader(stream)

	rawA, err := ReadRaw(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawA, Append(nil, a)) {
		t.Fatal("raw frame bytes differ from the encoding")
	}
	gotA, n, err := Decode(rawA)
	if err != nil || n != len(rawA) {
		t.Fatalf("decode raw: n=%d err=%v", n, err)
	}
	if gotA.Type != TData || !bytes.Equal(gotA.Payload, a.Payload) {
		t.Fatalf("decoded %+v", gotA)
	}
	rawB, err := ReadRaw(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gotB, _, err := Decode(rawB); err != nil || gotB.Type != TGossip || gotB.Seq != 2 {
		t.Fatalf("second frame: %+v err=%v", gotB, err)
	}
	// Clean boundary → io.EOF verbatim.
	if _, err := ReadRaw(r, 0); err != io.EOF {
		t.Fatalf("at stream end: %v, want io.EOF", err)
	}
	// Mid-frame truncation is a framing error, not EOF.
	tr := bytes.NewReader(stream[:len(stream)-3])
	if _, err := ReadRaw(tr, 0); err != nil {
		t.Fatalf("first frame of truncated stream: %v", err)
	}
	if _, err := ReadRaw(tr, 0); err == nil || err == io.EOF || !errors.Is(err, ErrFrame) {
		t.Fatalf("truncated frame: %v, want ErrFrame", err)
	}
	// A hostile length never allocates past the cap.
	hostile := make([]byte, 4)
	binary.BigEndian.PutUint32(hostile, 1<<31)
	if _, err := ReadRaw(bytes.NewReader(hostile), 1<<10); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("hostile length: %v, want ErrTooLarge", err)
	}
}
