package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TData, Svc: SvcDedup, Tenant: 7, Seq: 42, Payload: []byte("hello stream")},
		{Type: TFlush, Svc: SvcDedup, Tenant: 0, Seq: 0},
		{Type: TEnd},
		{Type: TResult, Svc: SvcMandel, Tenant: 0xFFFFFFFF, Seq: 1<<64 - 1, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{Type: TReject, Svc: SvcDedup, Tenant: 3, Seq: 9},
		{Type: TError, Payload: []byte("boom")},
	}
	for _, f := range frames {
		enc := Append(nil, f)
		if len(enc) != EncodedLen(f) {
			t.Errorf("%v: encoded %d bytes, EncodedLen says %d", f.Type, len(enc), EncodedLen(f))
		}
		got, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", f.Type, err)
		}
		if n != len(enc) {
			t.Errorf("%v: consumed %d of %d", f.Type, n, len(enc))
		}
		if got.Type != f.Type || got.Svc != f.Svc || got.Tenant != f.Tenant || got.Seq != f.Seq || !bytes.Equal(got.Payload, f.Payload) {
			t.Errorf("%v: round-trip mismatch: got %+v", f.Type, got)
		}
	}
}

func TestDecodeConcatenated(t *testing.T) {
	a := Frame{Type: TData, Svc: SvcDedup, Tenant: 1, Seq: 1, Payload: []byte("first")}
	b := Frame{Type: TData, Svc: SvcDedup, Tenant: 1, Seq: 2, Payload: []byte("second")}
	buf := Append(Append(nil, a), b)
	got1, n1, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	got2, n2, err := Decode(buf[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if n1+n2 != len(buf) {
		t.Errorf("consumed %d+%d of %d", n1, n2, len(buf))
	}
	if string(got1.Payload) != "first" || string(got2.Payload) != "second" {
		t.Errorf("payloads %q, %q", got1.Payload, got2.Payload)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":            nil,
		"short prefix":     {0, 0},
		"header only":      {0, 0, 0, 0},
		"length below min": append([]byte{0, 0, 0, 5}, make([]byte, headerLen)...),
		"length past end":  append([]byte{0, 0, 1, 0}, make([]byte, headerLen)...),
	}
	for name, b := range cases {
		if _, _, err := Decode(b); !errors.Is(err, ErrFrame) {
			t.Errorf("%s: err = %v, want ErrFrame", name, err)
		}
	}
}

func TestWriterReader(t *testing.T) {
	var buf bytes.Buffer
	fw := NewWriter(&buf)
	want := []Frame{
		{Type: TData, Svc: SvcDedup, Tenant: 2, Seq: 0, Payload: []byte("abc")},
		{Type: TData, Svc: SvcDedup, Tenant: 2, Seq: 1, Payload: bytes.Repeat([]byte("x"), 1000)},
		{Type: TEnd},
	}
	for _, f := range want {
		if err := fw.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewReader(&buf, 0)
	for i, f := range want {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != f.Type || got.Seq != f.Seq || !bytes.Equal(got.Payload, f.Payload) {
			t.Errorf("frame %d: got %+v", i, got)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestReaderPayloadCap(t *testing.T) {
	enc := Append(nil, Frame{Type: TData, Payload: make([]byte, 100)})
	fr := NewReader(bytes.NewReader(enc), 99)
	if _, err := fr.Next(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestReaderTruncated(t *testing.T) {
	enc := Append(nil, Frame{Type: TData, Payload: []byte("payload")})
	for cut := 1; cut < len(enc); cut++ {
		fr := NewReader(bytes.NewReader(enc[:cut]), 0)
		_, err := fr.Next()
		if !errors.Is(err, ErrFrame) {
			t.Errorf("cut at %d: err = %v, want ErrFrame-wrapped", cut, err)
		}
	}
}

// TestReaderHostileLengthNoAlloc: a declared length far past the cap must be
// rejected before any payload-sized allocation happens.
func TestReaderHostileLengthNoAlloc(t *testing.T) {
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	fr := NewReader(bytes.NewReader(hostile), 1<<20)
	allocs := testing.AllocsPerRun(10, func() {
		fr2 := *fr
		fr2.r.Reset(bytes.NewReader(hostile))
		fr2.Next()
	})
	// The error path formats a message (a couple of small allocations); the
	// point is that nothing payload-sized is allocated.
	if allocs > 10 {
		t.Errorf("hostile length allocated %v objects per run", allocs)
	}
}
