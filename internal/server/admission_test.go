package server

import (
	"testing"
	"time"

	"streamgpu/internal/server/qos"
	"streamgpu/internal/server/wire"
)

func TestAdmissionBucketThrottle(t *testing.T) {
	clk := time.Unix(1000, 0)
	now := func() time.Time { return clk }
	table := qos.Table{Tenants: map[uint32]qos.Spec{
		7: {Weight: 1, Rate: 1000, Burst: 500},
	}}
	a := newAdmission(table, 64, now)

	if v := a.admit(7, 500, 0); !v.ok {
		t.Fatalf("burst-sized request throttled: %+v", v)
	}
	v := a.admit(7, 100, 1)
	if v.ok || v.reason != wire.ReasonThrottled {
		t.Fatalf("over-budget request not throttled: %+v", v)
	}
	if v.retryAfter != 100*time.Millisecond {
		t.Fatalf("retry-after = %v, want 100ms (100 tokens at 1000/s)", v.retryAfter)
	}
	// An unconfigured tenant is unlimited.
	if v := a.admit(9, 1<<20, 2); !v.ok {
		t.Fatalf("default tenant throttled: %+v", v)
	}
	// Refill restores tenant 7.
	clk = clk.Add(time.Second)
	if v := a.admit(7, 400, 3); !v.ok {
		t.Fatalf("refilled bucket still throttled: %+v", v)
	}
}

func TestAdmissionFairShareUnderContention(t *testing.T) {
	// Window 16, hog weight 1, small weight 3: with both competing, the
	// hog's share is 16*1/4 = 4 slots.
	clk := time.Unix(1000, 0)
	now := func() time.Time { return clk }
	table := qos.Table{
		Default: qos.Spec{Weight: 3},
		Tenants: map[uint32]qos.Spec{1: {Weight: 1}},
	}
	a := newAdmission(table, 16, now)

	// Alone on the window the gate is work-conserving: the hog may take
	// everything on offer, even past the contention threshold (its share is
	// the whole window while nobody competes).
	for i := 0; i < 14; i++ {
		if v := a.admit(1, 1, int64(i)); !v.ok {
			t.Fatalf("admit %d with no competitors: %+v", i, v)
		}
	}
	// A small tenant starts knocking. Its share is 16*3/(1+3) = 12 and it
	// holds nothing, so it gets in — and merely arriving makes it a
	// competitor, shrinking the hog's share to 16*1/4 = 4.
	if v := a.admit(2, 1, 14); !v.ok {
		t.Fatalf("small tenant rejected at arrival: %+v", v)
	}
	v := a.admit(1, 1, 15)
	if v.ok || v.reason != wire.ReasonThrottled {
		t.Fatalf("hog not capped under contention: %+v", v)
	}
	// Releases restore the hog's headroom once it drops below its share.
	for i := 0; i < 11; i++ {
		a.release(1)
	}
	if v := a.admit(1, 1, 15); !v.ok {
		t.Fatalf("hog below share still capped: %+v", v)
	}
	// Once the small tenant drains and goes quiet past the activity window,
	// the hog has the window to itself again.
	a.release(2)
	clk = clk.Add(2 * activityWindow)
	for i := 0; i < 8; i++ {
		if v := a.admit(1, 1, 15); !v.ok {
			t.Fatalf("admit %d after competitor went idle: %+v", i, v)
		}
	}
}

func TestAdmissionRejectedCompetitorStillCounts(t *testing.T) {
	// The starvation case the seen-based denominator exists for: the hog
	// fills the whole window before the small tenant's first request, which
	// is then overload-rejected upstream (never admitted). The attempt alone
	// must still shrink the hog's share.
	table := qos.Table{
		Default: qos.Spec{Weight: 3},
		Tenants: map[uint32]qos.Spec{1: {Weight: 1}},
	}
	a := newAdmission(table, 16, nil)
	for i := 0; i < 16; i++ {
		if v := a.admit(1, 1, int64(i)); !v.ok {
			t.Fatalf("admit %d with no competitors: %+v", i, v)
		}
	}
	// Small tenant knocks at a full window; the caller would overload-reject
	// and cancel, but the knock registers.
	if v := a.admit(2, 1, 16); !v.ok {
		t.Fatalf("small tenant's knock rejected by the per-tenant gate: %+v", v)
	}
	a.cancel(2, 1)
	// The hog's next attempt is now throttled (16 held >= share 4), so the
	// slots its completions free up go to the small tenant.
	v := a.admit(1, 1, 15)
	if v.ok || v.reason != wire.ReasonThrottled {
		t.Fatalf("hog not capped after rejected competitor knocked: %+v", v)
	}
}

func TestAdmissionCancelRefundsBucket(t *testing.T) {
	clk := time.Unix(1000, 0)
	now := func() time.Time { return clk }
	table := qos.Table{Tenants: map[uint32]qos.Spec{7: {Weight: 1, Rate: 1000, Burst: 500}}}
	a := newAdmission(table, 64, now)

	if v := a.admit(7, 500, 0); !v.ok {
		t.Fatalf("burst-sized request throttled: %+v", v)
	}
	// Without a refund the bucket is empty now; cancel puts the tokens back
	// so the next identical request still fits.
	a.cancel(7, 500)
	if v := a.admit(7, 500, 0); !v.ok {
		t.Fatalf("request throttled after cancel refund: %+v", v)
	}
	if st := a.tenants[7]; st.inflight != 1 {
		t.Fatalf("inflight after admit+cancel+admit = %d, want 1", st.inflight)
	}
}

func TestAdmissionReleaseBookkeeping(t *testing.T) {
	a := newAdmission(qos.Table{}, 8, nil)
	for i := 0; i < 3; i++ {
		if v := a.admit(1, 1, int64(i)); !v.ok {
			t.Fatalf("admit %d: %+v", i, v)
		}
	}
	if got := a.tenants[1].inflight; got != 3 {
		t.Fatalf("inflight = %d, want 3", got)
	}
	a.release(1)
	a.release(1)
	a.release(1)
	if got := a.tenants[1].inflight; got != 0 {
		t.Fatalf("inflight after releases = %d, want 0", got)
	}
	// Spurious releases and cancels must not underflow.
	a.release(1)
	a.cancel(1, 1)
	a.release(99)
	if got := a.tenants[1].inflight; got != 0 {
		t.Fatalf("inflight after spurious releases = %d, want 0", got)
	}
}

func TestEstimatorWait(t *testing.T) {
	e := newEstimator()
	// No observations: admit optimistically.
	if got := e.wait(wire.SvcDedup, 100, 4); got != 0 {
		t.Fatalf("cold estimator wait = %v, want 0", got)
	}
	for i := 0; i < 100; i++ {
		e.observe(wire.SvcDedup, 10*time.Millisecond)
	}
	w := e.wait(wire.SvcDedup, 8, 4)
	// 8 queued over 4 workers + 1 turn = 3 turns at ~10ms each; the
	// histogram quantile is bucketed, so allow generous bounds.
	if w < 5*time.Millisecond || w > 200*time.Millisecond {
		t.Fatalf("wait = %v, want on the order of 30ms", w)
	}
	// Other service remains cold.
	if got := e.wait(wire.SvcMandel, 8, 4); got != 0 {
		t.Fatalf("mandel estimator warmed by dedup observations: %v", got)
	}
	// Deeper queues wait longer.
	if e.wait(wire.SvcDedup, 64, 4) <= w {
		t.Fatal("wait not monotone in queue depth")
	}
}
