package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestShutdownConcurrentHonorsCtx is the regression test for a bug found by
// the ctxprop analyzer: a Shutdown call that arrived while another Shutdown
// was already draining blocked on the first call's completion with a naked
// receive, ignoring its own ctx — even though Shutdown documents that an
// expired ctx returns its error. The second caller must come back as soon
// as its ctx is done.
func TestShutdownConcurrentHonorsCtx(t *testing.T) {
	s := &Server{done: make(chan struct{}), draining: true}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	errc := make(chan error, 1)
	go func() { errc <- s.Shutdown(ctx) }()

	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Shutdown = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown ignored its ctx while another Shutdown was draining")
	}
}
