package server_test

import (
	"context"
	"net"
	"testing"
	"time"

	"streamgpu/internal/fault"
	"streamgpu/internal/loadgen"
	"streamgpu/internal/server"
	"streamgpu/internal/server/wire"
	"streamgpu/internal/telemetry"
	"streamgpu/internal/testutil"
)

// TestSoakServeUnderRace hammers an in-process server with 64 concurrent
// closed-loop clients while the GPU path injects faults — the whole point is
// running it under -race (the CI race job does). Invariants: every accepted
// request restores correctly (zero restore failures; rejects are fine, that
// is admission control working), shutdown drains cleanly, and no goroutines
// survive.
func TestSoakServeUnderRace(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	testutil.CheckLeaks(t)

	reg := telemetry.New()
	srv := server.New(server.Config{
		MaxInflight: 32, // small window so rejection paths get exercised too
		Linger:      500 * time.Microsecond,
		GPU:         true,
		Faults:      fault.Config{Seed: 99, TransferRate: 0.02, KernelRate: 0.02},
		Metrics:     reg,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	for _, svc := range []wire.Svc{wire.SvcDedup, wire.SvcMandel} {
		rep, err := loadgen.Run(loadgen.Config{
			Addr:      ln.Addr().String(),
			Service:   svc,
			Clients:   64,
			Requests:  10,
			Tenants:   8,
			MinBytes:  256,
			MaxBytes:  32 << 10,
			Seed:      7,
			Verify:    true,
			SkipCalib: true,
		})
		if err != nil {
			t.Fatalf("%s: loadgen: %v (errors: %v)", svc, err, rep.Errors)
		}
		if rep.RestoreFailures != 0 {
			t.Fatalf("%s: %d restore failures", svc, rep.RestoreFailures)
		}
		if rep.Accepted == 0 {
			t.Fatalf("%s: no requests accepted", svc)
		}
		t.Logf("%s: %d accepted, %d rejected, p99 %.1fms",
			svc, rep.Accepted, rep.Rejected, rep.LatencyP99*1e3)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}
