package server_test

import (
	"bytes"
	"testing"
	"time"

	"streamgpu/internal/fault"
	"streamgpu/internal/health"
	"streamgpu/internal/server"
	"streamgpu/internal/server/qos"
	"streamgpu/internal/server/wire"
	"streamgpu/internal/testutil"
	"streamgpu/internal/workload"
)

// rejectInfo decodes a TReject frame's reason payload, failing the test on a
// frame of any other type.
func rejectInfo(t *testing.T, f wire.Frame) (wire.Reason, time.Duration) {
	t.Helper()
	if f.Type != wire.TReject {
		t.Fatalf("got %s, want reject", f.Type)
	}
	return wire.ParseRejectInfo(f.Payload)
}

// TestTenantThrottledReject: a tenant with a tiny rate contract exhausts its
// token bucket and is rejected with the tenant-throttled reason and a
// retry-after hint sized to the bucket's refill time — while an unlimited
// tenant on the same server is untouched.
func TestTenantThrottledReject(t *testing.T) {
	testutil.CheckLeaks(t)
	_, addr := startServer(t, server.Config{
		Linger: time.Millisecond,
		QoS: qos.Table{Tenants: map[uint32]qos.Spec{
			1: {Weight: 1, Rate: 100, Burst: 300},
		}},
	})
	c := dialClient(t, addr)
	payload := bytes.Repeat([]byte("x"), 300)

	c.send(wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: 1, Seq: 0, Payload: payload})
	if f := c.next(); f.Type != wire.TResult || f.Seq != 0 {
		t.Fatalf("burst-sized request got %s (seq %d), want result", f.Type, f.Seq)
	}
	// The bucket is empty and refills at 100 B/s: the next 300-byte request
	// is throttled with a ~3s hint.
	c.send(wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: 1, Seq: 1, Payload: payload})
	f := c.next()
	reason, retryAfter := rejectInfo(t, f)
	if reason != wire.ReasonThrottled {
		t.Fatalf("reason = %s, want %s", reason, wire.ReasonThrottled)
	}
	if retryAfter < time.Second || retryAfter > 5*time.Second {
		t.Fatalf("retry-after = %v, want ~3s", retryAfter)
	}
	// An unconfigured tenant is not rate limited.
	c.send(wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: 2, Seq: 2, Payload: payload})
	if f := c.next(); f.Type != wire.TResult || f.Seq != 2 {
		t.Fatalf("unlimited tenant got %s (seq %d), want result", f.Type, f.Seq)
	}
	finishStream(c)
}

// TestDeadlineReject: once the service-time estimator has an observation and
// the window holds queued work, a request carrying a deadline smaller than
// the estimated queue wait is fast-failed with the deadline reason instead of
// being computed.
func TestDeadlineReject(t *testing.T) {
	testutil.CheckLeaks(t)
	_, addr := startServer(t, server.Config{Linger: time.Minute, MaxInflight: 16})
	c := dialClient(t, addr)
	payload := bytes.Repeat([]byte("warm"), 64)

	// Warm the estimator: a completed request gives it a service-time
	// sample (the p50 of anything real is astronomically above 1ns).
	c.send(wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: 1, Seq: 0, Payload: payload})
	c.send(wire.Frame{Type: wire.TFlush})
	if f := c.next(); f.Type != wire.TResult || f.Seq != 0 {
		t.Fatalf("warmup got %s (seq %d), want result", f.Type, f.Seq)
	}

	// Hold one request in the window (long linger keeps it staged), then
	// offer a request that can only wait longer than its 1ns deadline.
	c.send(wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: 1, Seq: 1, Payload: payload})
	c.send(wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: 1, Seq: 2, Payload: payload, Deadline: time.Nanosecond})
	f := c.next()
	if f.Seq != 2 {
		t.Fatalf("got %s for seq %d, want reject of seq 2", f.Type, f.Seq)
	}
	if reason, _ := rejectInfo(t, f); reason != wire.ReasonDeadline {
		t.Fatalf("reason = %s, want %s", reason, wire.ReasonDeadline)
	}
	// The deadline-free request held by the window still completes.
	c.send(wire.Frame{Type: wire.TFlush})
	if f := c.next(); f.Type != wire.TResult || f.Seq != 1 {
		t.Fatalf("held request got %s (seq %d), want result", f.Type, f.Seq)
	}
	finishStream(c)
}

// TestOverloadRejectReason: a tenant that meets its own QoS contract but
// arrives at a full shared window is rejected with the overload reason — not
// throttled, which would misattribute the pressure to the tenant itself.
func TestOverloadRejectReason(t *testing.T) {
	testutil.CheckLeaks(t)
	_, addr := startServer(t, server.Config{MaxInflight: 1, Linger: time.Minute})
	c := dialClient(t, addr)
	payload := bytes.Repeat([]byte("req"), 100)
	c.send(wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: 1, Seq: 0, Payload: payload})
	c.send(wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: 2, Seq: 1, Payload: payload})

	f := c.next()
	if f.Seq != 1 {
		t.Fatalf("got %s for seq %d, want reject of seq 1", f.Type, f.Seq)
	}
	if reason, _ := rejectInfo(t, f); reason != wire.ReasonOverload {
		t.Fatalf("reason = %s, want %s", reason, wire.ReasonOverload)
	}
	c.send(wire.Frame{Type: wire.TFlush})
	if f := c.next(); f.Type != wire.TResult || f.Seq != 0 {
		t.Fatalf("after flush got %s (seq %d), want result for seq 0", f.Type, f.Seq)
	}
	finishStream(c)
}

// TestQuarantineEndToEnd: with one healthy and one heavily faulting device in
// the pool, serving traffic quarantines the bad device (visible through the
// server's scoreboard), reroutes its batches, and the archive still restores
// byte-exactly.
func TestQuarantineEndToEnd(t *testing.T) {
	testutil.CheckLeaks(t)
	srv, addr := startServer(t, server.Config{
		Linger:  time.Millisecond,
		GPU:     true,
		Devices: 2,
		// Pin sequence-modulo routing: this test asserts the quarantine
		// machinery itself, which needs the bad device to keep receiving
		// batches until MinSamples is reached. Score-weighted placement
		// (the default) starves it first and has its own tests.
		BlindPlacement: true,
		DeviceFaults: func(dev int) fault.Config {
			if dev == 1 {
				return fault.Config{Seed: 7, TransferRate: 0.95, KernelRate: 0.95}
			}
			return fault.Config{Seed: 1}
		},
		Health: health.Config{Window: 8, MinSamples: 4, Threshold: 0.5, ProbeEvery: 4, ReadmitAfter: 2},
	})
	data := workload.Generate(workload.Spec{Kind: workload.Linux, Size: 200 << 10, Seed: 17})
	var chunks [][]byte
	for rest := data; len(rest) > 0; {
		n := 10 << 10
		if n > len(rest) {
			n = len(rest)
		}
		chunks = append(chunks, rest[:n])
		rest = rest[n:]
	}
	c := dialClient(t, addr)
	archive := c.serveDedup(chunks...)
	if got := restoreArchive(t, archive); !bytes.Equal(got, data) {
		t.Fatal("restore with a quarantined device differs from sent bytes")
	}

	snap := srv.Health().Snapshot()
	if len(snap) != 2 {
		t.Fatalf("scoreboard has %d devices, want 2", len(snap))
	}
	if snap[0].Quarantines != 0 {
		t.Fatalf("healthy device quarantined %d times, want 0", snap[0].Quarantines)
	}
	if snap[1].Quarantines == 0 {
		t.Fatalf("faulting device never quarantined: %+v", snap[1])
	}
	if snap[0].Ops == 0 || snap[1].Ops == 0 {
		t.Fatalf("devices saw no work: %+v", snap)
	}
}
