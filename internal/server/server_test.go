package server_test

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"streamgpu/internal/dedup"
	"streamgpu/internal/fault"
	"streamgpu/internal/mandel"
	"streamgpu/internal/server"
	"streamgpu/internal/server/wire"
	"streamgpu/internal/telemetry"
	"streamgpu/internal/testutil"
	"streamgpu/internal/workload"
)

func TestMain(m *testing.M) { testutil.Main(m) }

// startServer runs srv on an ephemeral port and registers a graceful
// shutdown cleanup; it returns the dial address.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve returned: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// client is a minimal test-side protocol client.
type client struct {
	t    *testing.T
	conn net.Conn
	fw   *wire.Writer
	fr   *wire.Reader
}

func dialClient(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{t: t, conn: conn, fw: wire.NewWriter(conn), fr: wire.NewReader(conn, 8<<20)}
}

func (c *client) send(f wire.Frame) {
	c.t.Helper()
	if err := c.fw.Write(f); err != nil {
		c.t.Fatalf("send %s: %v", f.Type, err)
	}
	if err := c.fw.Flush(); err != nil {
		c.t.Fatalf("flush: %v", err)
	}
}

func (c *client) next() wire.Frame {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	f, err := c.fr.Next()
	if err != nil {
		c.t.Fatalf("next frame: %v", err)
	}
	return f
}

// serveDedup pushes chunks as individual requests, ends the stream, and
// returns the reassembled archive. It fails on any TReject.
func (c *client) serveDedup(chunks ...[]byte) []byte {
	c.t.Helper()
	var archive bytes.Buffer
	for i, chunk := range chunks {
		c.send(wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: 1, Seq: uint64(i), Payload: chunk})
		v := c.next()
		switch v.Type {
		case wire.TResult:
			if v.Seq != uint64(i) {
				c.t.Fatalf("result for seq %d, want %d", v.Seq, i)
			}
			archive.Write(v.Payload)
		default:
			c.t.Fatalf("request %d: unexpected %s", i, v.Type)
		}
	}
	c.send(wire.Frame{Type: wire.TEnd})
	for {
		f, err := c.fr.Next()
		if err == io.EOF {
			return archive.Bytes()
		}
		if err != nil {
			c.t.Fatalf("awaiting end: %v", err)
		}
		archive.Write(f.Payload)
		if f.Type == wire.TEnd {
			return archive.Bytes()
		}
	}
}

func restoreArchive(t *testing.T, archive []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	if err := dedup.Restore(bytes.NewReader(archive), &out); err != nil {
		t.Fatalf("restore: %v", err)
	}
	return out.Bytes()
}

func TestServeDedupEndToEnd(t *testing.T) {
	testutil.CheckLeaks(t)
	_, addr := startServer(t, server.Config{Linger: time.Millisecond})
	data := workload.Generate(workload.Spec{Kind: workload.Linux, Size: 300 << 10, Seed: 5})
	c := dialClient(t, addr)
	archive := c.serveDedup(data[:100<<10], data[100<<10:180<<10], data[180<<10:])
	if got := restoreArchive(t, archive); !bytes.Equal(got, data) {
		t.Fatalf("restored %d bytes != sent %d bytes", len(got), len(data))
	}
}

// TestAdmissionReject: with a one-request window and a long linger, the
// first request holds the window open (its batch stays staged), so the
// second is fast-failed with TReject — and a client flush then completes
// the first normally.
func TestAdmissionReject(t *testing.T) {
	testutil.CheckLeaks(t)
	_, addr := startServer(t, server.Config{MaxInflight: 1, Linger: time.Minute})
	c := dialClient(t, addr)
	payload := bytes.Repeat([]byte("req"), 100)
	c.send(wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: 1, Seq: 0, Payload: payload})
	c.send(wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: 1, Seq: 1, Payload: payload})

	f := c.next()
	if f.Type != wire.TReject || f.Seq != 1 {
		t.Fatalf("second request got %s (seq %d), want reject of seq 1", f.Type, f.Seq)
	}
	c.send(wire.Frame{Type: wire.TFlush})
	f = c.next()
	if f.Type != wire.TResult || f.Seq != 0 {
		t.Fatalf("after flush got %s (seq %d), want result for seq 0", f.Type, f.Seq)
	}
	archive := append(append([]byte(nil), f.Payload...), finishStream(c)...)
	if got := restoreArchive(t, archive); !bytes.Equal(got, payload) {
		t.Fatal("restored bytes != accepted payload")
	}
}

// finishStream ends the stream and returns any residual archive bytes.
func finishStream(c *client) []byte {
	c.t.Helper()
	c.send(wire.Frame{Type: wire.TEnd})
	var tail bytes.Buffer
	for {
		f, err := c.fr.Next()
		if err == io.EOF {
			return tail.Bytes()
		}
		if err != nil {
			c.t.Fatalf("awaiting end: %v", err)
		}
		tail.Write(f.Payload)
		if f.Type == wire.TEnd {
			return tail.Bytes()
		}
	}
}

// TestShutdownDeliversInflight: results for accepted requests arrive even
// when the server (not the client) initiates the drain.
func TestShutdownDeliversInflight(t *testing.T) {
	testutil.CheckLeaks(t)
	srv := server.New(server.Config{Linger: time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	c := dialClient(t, ln.Addr().String())
	data := workload.Generate(workload.Spec{Kind: workload.Silesia, Size: 64 << 10, Seed: 9})
	c.send(wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: 1, Seq: 0, Payload: data})
	v := c.next()
	if v.Type != wire.TResult {
		t.Fatalf("got %s, want result", v.Type)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := restoreArchive(t, v.Payload); !bytes.Equal(got, data) {
		t.Fatal("restored bytes != sent bytes")
	}
}

// TestMetamorphicSplit is the property test: however a byte stream is split
// into requests, serving the pieces restores to the same bytes — and to the
// same restore CompressSeq produces for the concatenated whole.
func TestMetamorphicSplit(t *testing.T) {
	testutil.CheckLeaks(t)
	_, addr := startServer(t, server.Config{Linger: time.Millisecond})
	rng := rand.New(rand.NewSource(31))
	data := workload.Generate(workload.Spec{Kind: workload.Large, Size: 256 << 10, Seed: 13})

	var seqArchive bytes.Buffer
	if _, err := dedup.CompressSeq(data, &seqArchive, dedup.Options{}); err != nil {
		t.Fatal(err)
	}
	want := restoreArchive(t, seqArchive.Bytes())
	if !bytes.Equal(want, data) {
		t.Fatal("CompressSeq does not round-trip (broken baseline)")
	}

	for trial := 0; trial < 3; trial++ {
		var chunks [][]byte
		for rest := data; len(rest) > 0; {
			n := 1 + rng.Intn(64<<10)
			if n > len(rest) {
				n = len(rest)
			}
			chunks = append(chunks, rest[:n])
			rest = rest[n:]
		}
		c := dialClient(t, addr)
		got := restoreArchive(t, c.serveDedup(chunks...))
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d (%d chunks): served restore differs from CompressSeq restore", trial, len(chunks))
		}
	}
}

// TestGPUFaultsRestore: the per-batch GPU path with aggressive fault
// injection must still produce a correct archive (retry + CPU degradation).
func TestGPUFaultsRestore(t *testing.T) {
	testutil.CheckLeaks(t)
	_, addr := startServer(t, server.Config{
		Linger: time.Millisecond,
		GPU:    true,
		Faults: fault.Config{Seed: 42, TransferRate: 0.05, KernelRate: 0.05},
	})
	data := workload.Generate(workload.Spec{Kind: workload.Linux, Size: 400 << 10, Seed: 21})
	c := dialClient(t, addr)
	archive := c.serveDedup(data[:150<<10], data[150<<10:300<<10], data[300<<10:])
	if got := restoreArchive(t, archive); !bytes.Equal(got, data) {
		t.Fatal("GPU+faults restore differs from sent bytes")
	}
}

func TestMandelService(t *testing.T) {
	testutil.CheckLeaks(t)
	_, addr := startServer(t, server.Config{})
	c := dialClient(t, addr)
	const dim, niter = 64, 100
	req := server.AppendMandelReq(nil, server.MandelReq{Dim: dim, Niter: niter, Row0: 10, NRows: 4})
	c.send(wire.Frame{Type: wire.TData, Svc: wire.SvcMandel, Tenant: 2, Seq: 7, Payload: req})
	f := c.next()
	if f.Type != wire.TResult || f.Seq != 7 {
		t.Fatalf("got %s (seq %d), want result for 7", f.Type, f.Seq)
	}
	if len(f.Payload) != 4*dim {
		t.Fatalf("payload %d bytes, want %d", len(f.Payload), 4*dim)
	}
	p := mandel.Params{Dim: dim, Niter: niter, InitA: -2.0, InitB: -1.25, Range: 2.5}
	row := make([]byte, dim)
	for r := 0; r < 4; r++ {
		p.ComputeRow(10+r, row)
		if !bytes.Equal(f.Payload[r*dim:(r+1)*dim], row) {
			t.Fatalf("row %d differs from local compute", 10+r)
		}
	}
	finishStream(c)
}

func TestMandelBadRequestFails(t *testing.T) {
	testutil.CheckLeaks(t)
	_, addr := startServer(t, server.Config{})
	c := dialClient(t, addr)
	c.send(wire.Frame{Type: wire.TData, Svc: wire.SvcMandel, Tenant: 2, Seq: 0, Payload: []byte{0, 0}})
	f := c.next()
	if f.Type != wire.TError {
		t.Fatalf("got %s, want error", f.Type)
	}
}

func TestMetricsExposition(t *testing.T) {
	testutil.CheckLeaks(t)
	reg := telemetry.New()
	_, addr := startServer(t, server.Config{Linger: time.Millisecond, Metrics: reg})
	c := dialClient(t, addr)
	data := workload.Generate(workload.Spec{Kind: workload.Silesia, Size: 32 << 10, Seed: 3})
	c.serveDedup(data)

	var prom strings.Builder
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, want := range []string{
		`server_requests_total{reason="none",svc="dedup",tenant="1",verdict="accepted"}`,
		`server_request_bytes_total{svc="dedup",tenant="1"}`,
		`server_response_bytes_total{svc="dedup",tenant="1"}`,
		`server_service_seconds`,
		`server_batches_sealed_total`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom exposition missing %s", want)
		}
	}
}
