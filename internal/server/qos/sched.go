package qos

import (
	"sync"
	"time"
)

// Item is one unit of queued work handed to the scheduler.
type Item struct {
	// Cost is the item's size in cost units (bytes of work); the deficit
	// round-robin spends tenant deficit on it. Minimum 1.
	Cost int
	// Deadline, when non-zero, is the absolute instant after which
	// dispatching the item is pointless; the scheduler calls Expire instead
	// of Run for overdue items. A zero Deadline marks work that must run
	// regardless of queue age (e.g. a sealed dedup batch, whose bytes are
	// already part of the session's archive stream).
	Deadline time.Time
	// Run dispatches the item. It may block (the pipeline submit is the
	// backpressure point) and is responsible for its own cancellation
	// cleanup — the scheduler calls it exactly once, from the dispatcher
	// goroutine, or calls Expire/Drop instead.
	Run func()
	// Expire is called (instead of Run) when Deadline passed while the
	// item was queued. May be nil when Deadline is zero.
	Expire func()
	// Drop is called (instead of Run) when the scheduler shuts down with
	// the item still queued — the forced-drain path. Must release the
	// item's resources and settle its accounting.
	Drop func()
}

// lane is one tenant's FIFO queue plus its DRR deficit.
type lane struct {
	items   []Item
	head    int // index of the first live item (amortized pop)
	deficit int
}

func (l *lane) empty() bool { return l.head >= len(l.items) }

func (l *lane) push(it Item) { l.items = append(l.items, it) }

func (l *lane) pop() Item {
	it := l.items[l.head]
	l.items[l.head] = Item{} // release closures
	l.head++
	if l.empty() {
		l.items = l.items[:0]
		l.head = 0
	}
	return it
}

// Sched is a deficit-round-robin scheduler over per-tenant FIFO lanes.
//
// Fairness model: each tenant with queued work occupies a slot in the
// round-robin ring. When the dispatcher's turn reaches a tenant, the
// tenant's deficit is credited quantum × weight cost units, and its queued
// items are dispatched head-first while the deficit covers their cost; the
// unspent remainder carries over to the tenant's next turn, so an item
// larger than one credit accumulates deficit across rounds instead of
// starving (the classic DRR guarantee). A tenant whose lane empties
// forfeits its deficit — idle tenants bank nothing.
//
// Enqueue may be called from any goroutine; Next is intended for a single
// dispatcher goroutine. Per-lane FIFO order is preserved end to end, which
// is what lets the serving layer keep one session's batches in archive
// order while interleaving sessions fairly.
type Sched struct {
	mu     sync.Mutex
	cond   *sync.Cond
	lanes  map[uint32]*lane
	ring   []uint32
	cur    int
	fresh  bool // the lane at cur has not been credited this turn
	depth  int
	closed bool

	quantum int
	weight  func(uint32) int
	now     func() time.Time
}

// NewSched builds a scheduler. quantum is the per-weight-unit credit in
// cost units (<= 0 selects 64 KiB); weight maps tenants to their share
// (nil, or non-positive results, mean weight 1); now is the clock (nil
// selects time.Now).
func NewSched(quantum int, weight func(uint32) int, now func() time.Time) *Sched {
	if quantum <= 0 {
		quantum = 64 << 10
	}
	if weight == nil {
		weight = func(uint32) int { return 1 }
	}
	if now == nil {
		now = time.Now
	}
	s := &Sched{
		lanes:   make(map[uint32]*lane),
		quantum: quantum,
		weight:  weight,
		now:     now,
		fresh:   true,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Enqueue appends one item to tenant's lane. Enqueueing after Close drops
// the item immediately.
func (s *Sched) Enqueue(tenant uint32, it Item) {
	if it.Cost < 1 {
		it.Cost = 1
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if it.Drop != nil {
			it.Drop()
		}
		return
	}
	l := s.lanes[tenant]
	if l == nil {
		l = &lane{}
		s.lanes[tenant] = l
	}
	if l.empty() {
		s.ring = append(s.ring, tenant)
	}
	l.push(it)
	s.depth++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Depth returns the number of queued items.
func (s *Sched) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depth
}

// Close stops the scheduler: Next drains the remaining items (calling their
// Drop instead of Run — the dispatcher is shutting down) and then reports
// done. Idempotent.
func (s *Sched) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Next blocks until an item is due and returns it, or reports !ok once the
// scheduler is closed. Expired items are settled internally (their Expire
// runs on this goroutine) and never returned. After Close, remaining items
// are settled through Drop and Next reports !ok.
func (s *Sched) Next() (Item, bool) {
	s.mu.Lock()
	for {
		if s.closed {
			rest := s.takeAllLocked()
			s.mu.Unlock()
			for _, it := range rest {
				if it.Drop != nil {
					it.Drop()
				}
			}
			return Item{}, false
		}
		if it, ok := s.nextLocked(); ok {
			s.mu.Unlock()
			if expired(it, s.now()) {
				s.settleExpired(it)
				s.mu.Lock()
				continue
			}
			return it, true
		}
		s.cond.Wait()
	}
}

// settleExpired runs an overdue item's Expire (or Drop) callback.
func (s *Sched) settleExpired(it Item) {
	switch {
	case it.Expire != nil:
		it.Expire()
	case it.Drop != nil:
		it.Drop()
	}
}

func expired(it Item, now time.Time) bool {
	return !it.Deadline.IsZero() && now.After(it.Deadline)
}

// nextLocked advances the DRR state by at most one full round and pops the
// next affordable item, if any lane holds one.
func (s *Sched) nextLocked() (Item, bool) {
	if len(s.ring) == 0 {
		return Item{}, false
	}
	// Every lane in the ring is non-empty (emptied lanes leave the ring),
	// and each full round credits every lane at least quantum, so this loop
	// terminates: within ceil(maxCost/quantum) rounds some head item
	// becomes affordable. The loop — not a per-call credit bound — is what
	// lets an item costlier than one credit accumulate deficit instead of
	// stranding its lane.
	for {
		if s.cur >= len(s.ring) {
			s.cur = 0
		}
		t := s.ring[s.cur]
		l := s.lanes[t]
		if s.fresh {
			w := s.weight(t)
			if w < 1 {
				w = 1
			}
			l.deficit += s.quantum * w
			s.fresh = false
		}
		if !l.empty() && l.deficit >= l.items[l.head].Cost {
			it := l.pop()
			l.deficit -= it.Cost
			s.depth--
			if l.empty() {
				l.deficit = 0
				s.ring = append(s.ring[:s.cur], s.ring[s.cur+1:]...)
				s.fresh = true
				// cur now points at the next lane already.
			}
			return it, true
		}
		// Deficit does not cover the head item: carry it over and serve
		// the next lane.
		s.cur++
		s.fresh = true
	}
}

// takeAllLocked removes every queued item in lane order for shutdown
// settling.
func (s *Sched) takeAllLocked() []Item {
	var out []Item
	for _, t := range s.ring {
		l := s.lanes[t]
		for !l.empty() {
			out = append(out, l.pop())
		}
		l.deficit = 0
	}
	s.ring = s.ring[:0]
	s.depth = 0
	return out
}
