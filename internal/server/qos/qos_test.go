package qos

import (
	"math"
	"testing"
	"time"
)

// fakeClock is a hand-advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time                  { return c.t }
func (c *fakeClock) advance(d time.Duration)         { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                       { return &fakeClock{t: time.Unix(1000, 0)} }
func (c *fakeClock) after(d time.Duration) time.Time { return c.t.Add(d) }

func TestParseTable(t *testing.T) {
	cases := []struct {
		in      string
		wantErr bool
		check   func(t *testing.T, tab Table)
	}{
		{in: "", check: func(t *testing.T, tab Table) {
			if got := tab.Weight(99); got != 1 {
				t.Errorf("default weight = %d, want 1", got)
			}
			if tab.Spec(99).Rate != 0 {
				t.Error("default rate should be unlimited")
			}
		}},
		{in: "7:8", check: func(t *testing.T, tab Table) {
			if got := tab.Weight(7); got != 8 {
				t.Errorf("tenant 7 weight = %d, want 8", got)
			}
		}},
		{in: "default:2:1e6,9:4:5e5:250000", check: func(t *testing.T, tab Table) {
			if got := tab.Weight(123); got != 2 {
				t.Errorf("default weight = %d, want 2", got)
			}
			if got := tab.Spec(123).Burst; got != 1e6 {
				t.Errorf("default burst = %g, want rate-derived 1e6", got)
			}
			s := tab.Spec(9)
			if s.Weight != 4 || s.Rate != 5e5 || s.Burst != 250000 {
				t.Errorf("tenant 9 spec = %+v", s)
			}
		}},
		{in: "7", wantErr: true},
		{in: "7:0", wantErr: true},
		{in: "7:-1", wantErr: true},
		{in: "x:1", wantErr: true},
		{in: "7:1:abc", wantErr: true},
		{in: "7:1:1:1:1", wantErr: true},
	}
	for _, tc := range cases {
		tab, err := ParseTable(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseTable(%q): no error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTable(%q): %v", tc.in, err)
			continue
		}
		tc.check(t, tab)
	}
}

func TestTableStringRoundTrip(t *testing.T) {
	const in = "default:2:1e+06,7:8,9:4:500000:250000"
	tab, err := ParseTable(in)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTable(tab.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", tab.String(), err)
	}
	for _, id := range []uint32{7, 9, 1000} {
		if a, b := tab.Spec(id), back.Spec(id); a != b {
			t.Errorf("tenant %d: %+v != %+v after round trip", id, a, b)
		}
	}
}

func TestBucketRefill(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(Spec{Rate: 1000, Burst: 500}, clk.now())

	// Burst drains first.
	if !b.Take(500, clk.now()) {
		t.Fatal("full bucket refused its burst")
	}
	if b.Take(1, clk.now()) {
		t.Fatal("empty bucket granted a token")
	}
	// Refill at 1000/s: after 100ms there are 100 tokens.
	clk.advance(100 * time.Millisecond)
	if !b.Take(100, clk.now()) {
		t.Fatal("refill did not credit 100 tokens after 100ms")
	}
	if b.Take(1, clk.now()) {
		t.Fatal("bucket granted beyond refill")
	}
	// Refill caps at burst.
	clk.advance(time.Hour)
	if !b.Take(500, clk.now()) {
		t.Fatal("bucket did not refill to burst")
	}
	if b.Take(1, clk.now()) {
		t.Fatal("bucket exceeded burst after long idle")
	}
}

func TestBucketWait(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(Spec{Rate: 1000, Burst: 1000}, clk.now())
	if got := b.Wait(100, clk.now()); got != 0 {
		t.Errorf("full bucket wait = %v, want 0", got)
	}
	b.Take(1000, clk.now())
	if got := b.Wait(250, clk.now()); got != 250*time.Millisecond {
		t.Errorf("wait for 250 tokens at 1000/s = %v, want 250ms", got)
	}
	// A cost above burst is reported as the time to fill the bucket, not
	// infinity.
	if got := b.Wait(5000, clk.now()); got != time.Second {
		t.Errorf("oversized cost wait = %v, want 1s (full bucket)", got)
	}
}

func TestBucketUnlimited(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(Spec{}, clk.now())
	if b.Limited() {
		t.Fatal("zero spec should be unlimited")
	}
	for i := 0; i < 1000; i++ {
		if !b.Take(1<<20, clk.now()) {
			t.Fatal("unlimited bucket refused")
		}
	}
	if b.Wait(1<<30, clk.now()) != 0 {
		t.Fatal("unlimited bucket has nonzero wait")
	}
}

// enqueueTagged queues an item whose Run records its tenant into out.
func enqueueTagged(s *Sched, tenant uint32, cost int, out *[]uint32) {
	s.Enqueue(tenant, Item{Cost: cost, Run: func() { *out = append(*out, tenant) }})
}

func TestSchedWeightRatios(t *testing.T) {
	weights := map[uint32]int{1: 1, 2: 2, 3: 4}
	clk := newFakeClock()
	s := NewSched(1000, func(t uint32) int { return weights[t] }, clk.now)

	// Saturate: every tenant offers far more than one round's credit.
	const perTenant, cost = 400, 500
	var order []uint32
	for i := 0; i < perTenant; i++ {
		for tenant := uint32(1); tenant <= 3; tenant++ {
			enqueueTagged(s, tenant, cost, &order)
		}
	}
	// Dispatch roughly half the queue so every lane stays backlogged (the
	// tail of a drained queue is trivially "fair").
	served := make(map[uint32]int)
	total := 0
	for total < 3*perTenant/2*1 {
		it, ok := s.Next()
		if !ok {
			t.Fatal("scheduler reported done with work queued")
		}
		it.Run()
		served[order[len(order)-1]]++
		total++
	}

	// Weight ratios hold within tolerance: tenant 3 (w=4) serves ~4× tenant
	// 1 (w=1) and ~2× tenant 2 (w=2).
	ratio := func(a, b uint32) float64 { return float64(served[a]) / float64(served[b]) }
	for _, tc := range []struct {
		a, b uint32
		want float64
	}{{3, 1, 4}, {3, 2, 2}, {2, 1, 2}} {
		if got := ratio(tc.a, tc.b); math.Abs(got-tc.want)/tc.want > 0.15 {
			t.Errorf("served ratio %d:%d = %.2f, want %.2f ±15%% (served=%v)",
				tc.a, tc.b, got, tc.want, served)
		}
	}
}

func TestSchedDeficitCarryover(t *testing.T) {
	// Quantum 100: tenant 1's item costs 350, so it needs four turns of
	// credit. Tenant 2's cheap items must keep flowing meanwhile, and the
	// big item must eventually dispatch (no starvation).
	clk := newFakeClock()
	s := NewSched(100, nil, clk.now)
	var order []uint32
	enqueueTagged(s, 1, 350, &order)
	for i := 0; i < 10; i++ {
		enqueueTagged(s, 2, 100, &order)
	}

	for s.Depth() > 0 {
		it, ok := s.Next()
		if !ok {
			t.Fatal("done with items queued")
		}
		it.Run()
	}
	// The big item lands after a few of tenant 2's items (carryover), not
	// first and not last.
	bigAt := -1
	for i, tenant := range order {
		if tenant == 1 {
			bigAt = i
		}
	}
	if bigAt <= 0 || bigAt == len(order)-1 {
		t.Fatalf("big item dispatched at position %d of %d (order %v)", bigAt, len(order), order)
	}
}

func TestSchedFIFOPerLane(t *testing.T) {
	clk := newFakeClock()
	s := NewSched(1<<20, nil, clk.now)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		tenant := uint32(i % 3)
		s.Enqueue(tenant, Item{Cost: 1 + i%7, Run: func() { got = append(got, i) }})
	}
	for s.Depth() > 0 {
		it, _ := s.Next()
		it.Run()
	}
	// Per-tenant subsequences must be increasing.
	last := map[int]int{0: -1, 1: -1, 2: -1}
	for _, i := range got {
		if i <= last[i%3] {
			t.Fatalf("lane %d reordered: %d after %d", i%3, i, last[i%3])
		}
		last[i%3] = i
	}
	if len(got) != 100 {
		t.Fatalf("dispatched %d of 100", len(got))
	}
}

func TestSchedExpiry(t *testing.T) {
	clk := newFakeClock()
	s := NewSched(0, nil, clk.now)
	var ran, expired int
	s.Enqueue(1, Item{Cost: 1, Deadline: clk.after(time.Second),
		Run: func() { ran++ }, Expire: func() { expired++ }})
	s.Enqueue(1, Item{Cost: 1, // zero deadline: never expires
		Run: func() { ran++ }, Expire: func() { t.Error("zero-deadline item expired") }})
	clk.advance(2 * time.Second)
	for s.Depth() > 0 {
		it, _ := s.Next()
		it.Run()
	}
	if ran != 1 || expired != 1 {
		t.Fatalf("ran=%d expired=%d, want 1 and 1", ran, expired)
	}
}

func TestSchedCloseDrops(t *testing.T) {
	clk := newFakeClock()
	s := NewSched(0, nil, clk.now)
	var dropped int
	for i := 0; i < 5; i++ {
		s.Enqueue(1, Item{Cost: 1, Run: func() { t.Error("ran after close") },
			Drop: func() { dropped++ }})
	}
	s.Close()
	if _, ok := s.Next(); ok {
		t.Fatal("Next returned an item after Close")
	}
	if dropped != 5 {
		t.Fatalf("dropped %d of 5", dropped)
	}
	// Enqueue after close drops immediately.
	s.Enqueue(2, Item{Cost: 1, Drop: func() { dropped++ }})
	if dropped != 6 {
		t.Fatal("post-close enqueue was not dropped")
	}
}

func TestSchedBlocksUntilEnqueue(t *testing.T) {
	s := NewSched(0, nil, nil)
	done := make(chan uint32, 1)
	go func() {
		it, ok := s.Next()
		if !ok {
			done <- 0
			return
		}
		it.Run()
	}()
	time.Sleep(10 * time.Millisecond)
	s.Enqueue(7, Item{Cost: 1, Run: func() { done <- 7 }})
	select {
	case got := <-done:
		if got != 7 {
			t.Fatalf("got %d, want 7", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dispatcher never woke")
	}
	s.Close()
}
