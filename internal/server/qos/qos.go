// Package qos holds the per-tenant quality-of-service primitives of the
// serving layer: token buckets for rate limiting, a weight table with a
// flag-friendly text form, and a deficit-round-robin (DRR) scheduler that
// interleaves tenants' queued work by weight.
//
// The serving layer's original admission control was a single high-water
// mark shared by every tenant — correct as backpressure, but at
// millions-of-users scale one hog tenant fills the window and every other
// tenant sees indiscriminate rejects. The FastFlow lesson (farms that
// resize and shed load *selectively*) applied at the service boundary is
// exactly weighted fair queuing: each tenant owns a bounded FIFO lane, the
// dispatcher drains lanes by deficit round-robin so a tenant's share of the
// pipeline tracks its weight regardless of how much it offers, and token
// buckets bound the rate at which any single tenant may claim admission in
// the first place. Costs are in bytes of work (request payload for dedup,
// output pixels for mandel), not request counts, so a tenant cannot cheat
// fairness by packing its load into fewer, larger requests.
//
// Everything here is clock-injected and single-purpose so the scheduler's
// fairness properties are unit-testable without a live server: see
// qos_test.go for the weight-ratio, refill and deficit-carryover tables.
package qos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Spec is one tenant's QoS contract.
type Spec struct {
	// Weight is the tenant's relative share of contended capacity
	// (scheduler bandwidth and admission-window slots). Minimum 1.
	Weight int
	// Rate is the sustained admission rate in cost units (bytes of work)
	// per second. 0 means unlimited: the tenant is bounded only by its
	// weight under contention.
	Rate float64
	// Burst is the token-bucket depth in cost units: how much a tenant may
	// claim instantaneously before Rate takes over. When Rate > 0 and
	// Burst <= 0, the bucket defaults to one second's worth of Rate.
	Burst float64
}

// withDefaults normalizes a spec.
func (s Spec) withDefaults() Spec {
	if s.Weight <= 0 {
		s.Weight = 1
	}
	if s.Rate > 0 && s.Burst <= 0 {
		s.Burst = s.Rate
	}
	return s
}

// Table maps tenant IDs to their QoS specs, with a default for tenants not
// explicitly configured.
type Table struct {
	Default Spec
	Tenants map[uint32]Spec
}

// Spec returns the (normalized) spec for tenant.
func (t Table) Spec(tenant uint32) Spec {
	if s, ok := t.Tenants[tenant]; ok {
		return s.withDefaults()
	}
	return t.Default.withDefaults()
}

// Weight returns the tenant's normalized weight.
func (t Table) Weight(tenant uint32) int { return t.Spec(tenant).Weight }

// ParseTable parses the -tenant-weights flag form: a comma-separated list
// of tenant:weight[:rate[:burst]] entries, where tenant is a decimal tenant
// ID or the literal "default". Rate and burst are cost units (bytes of
// work) per second and absolute cost units respectively; both accept
// scientific notation ("2e6").
//
//	"default:1:1e6,7:8,9:2:5e5:1e6"
//
// An empty string yields a zero Table (every tenant weight 1, unlimited).
func ParseTable(s string) (Table, error) {
	t := Table{Tenants: make(map[uint32]Spec)}
	s = strings.TrimSpace(s)
	if s == "" {
		return t, nil
	}
	for _, entry := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 || len(parts) > 4 {
			return t, fmt.Errorf("qos: entry %q: want tenant:weight[:rate[:burst]]", entry)
		}
		var spec Spec
		w, err := strconv.Atoi(parts[1])
		if err != nil || w <= 0 {
			return t, fmt.Errorf("qos: entry %q: bad weight %q", entry, parts[1])
		}
		spec.Weight = w
		if len(parts) >= 3 {
			if spec.Rate, err = strconv.ParseFloat(parts[2], 64); err != nil || spec.Rate < 0 {
				return t, fmt.Errorf("qos: entry %q: bad rate %q", entry, parts[2])
			}
		}
		if len(parts) == 4 {
			if spec.Burst, err = strconv.ParseFloat(parts[3], 64); err != nil || spec.Burst < 0 {
				return t, fmt.Errorf("qos: entry %q: bad burst %q", entry, parts[3])
			}
		}
		if parts[0] == "default" {
			t.Default = spec
			continue
		}
		id, err := strconv.ParseUint(parts[0], 10, 32)
		if err != nil {
			return t, fmt.Errorf("qos: entry %q: bad tenant %q", entry, parts[0])
		}
		t.Tenants[uint32(id)] = spec
	}
	return t, nil
}

// String renders the table back into the flag form, sorted by tenant ID.
func (t Table) String() string {
	var parts []string
	if t.Default != (Spec{}) {
		parts = append(parts, renderSpec("default", t.Default))
	}
	ids := make([]uint32, 0, len(t.Tenants))
	for id := range t.Tenants {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		parts = append(parts, renderSpec(strconv.FormatUint(uint64(id), 10), t.Tenants[id]))
	}
	return strings.Join(parts, ",")
}

func renderSpec(key string, s Spec) string {
	switch {
	case s.Burst > 0:
		return fmt.Sprintf("%s:%d:%g:%g", key, s.Weight, s.Rate, s.Burst)
	case s.Rate > 0:
		return fmt.Sprintf("%s:%d:%g", key, s.Weight, s.Rate)
	default:
		return fmt.Sprintf("%s:%d", key, s.Weight)
	}
}

// Bucket is a token bucket: capacity Burst, refilled at Rate units/second.
// Not safe for concurrent use; the admission path serializes access per
// tenant under its own lock. The clock is passed in, so refill behavior is
// unit-testable with a fake time source.
type Bucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// NewBucket builds a full bucket from spec (Rate 0 disables limiting).
func NewBucket(spec Spec, now time.Time) *Bucket {
	spec = spec.withDefaults()
	return &Bucket{rate: spec.Rate, burst: spec.Burst, tokens: spec.Burst, last: now}
}

// Limited reports whether the bucket enforces a rate at all.
func (b *Bucket) Limited() bool { return b.rate > 0 }

// refill credits tokens for the time elapsed since the last observation.
func (b *Bucket) refill(now time.Time) {
	if d := now.Sub(b.last); d > 0 {
		b.tokens += b.rate * d.Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// Take debits cost tokens if available and reports whether it did. An
// unlimited bucket always succeeds.
func (b *Bucket) Take(cost int, now time.Time) bool {
	if !b.Limited() {
		return true
	}
	b.refill(now)
	if b.tokens < float64(cost) {
		return false
	}
	b.tokens -= float64(cost)
	return true
}

// Refund credits cost tokens back, capped at the burst depth — for callers
// whose Take succeeded but whose request then failed a later admission stage
// and never received service.
func (b *Bucket) Refund(cost int) {
	if !b.Limited() {
		return
	}
	b.tokens += float64(cost)
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Wait reports how long until Take(cost) could succeed — the basis of the
// retry-after hint a throttled tenant receives. Zero for unlimited buckets;
// a cost above the burst depth can never succeed, reported as the time to
// fill the whole bucket.
func (b *Bucket) Wait(cost int, now time.Time) time.Duration {
	if !b.Limited() {
		return 0
	}
	b.refill(now)
	need := float64(cost)
	if need > b.burst {
		need = b.burst
	}
	deficit := need - b.tokens
	if deficit <= 0 {
		return 0
	}
	return time.Duration(deficit / b.rate * float64(time.Second))
}
