// Package server is the streaming service front-end: it turns the repo's
// one-shot Dedup and Mandelbrot pipelines into resident services that
// multiplex many concurrent client sessions onto one shared SPar pipeline
// per application.
//
// The shape follows the paper's own runtime argument. FastFlow's bounded
// lock-free queues exist so a stream can absorb bursts with backpressure
// instead of unbounded buffering; the server applies the same discipline at
// the service boundary: a bounded admission window (-max-inflight) under
// which sessions exert TCP backpressure, and above which requests are
// fast-fail rejected with a TReject frame — never queued without bound,
// never a goroutine per item. Small client payloads are coalesced across
// requests into the pooled 1 MB dedup.Batch containers (the PR 4 free
// lists), sealed when full, when a client flushes, or when the max-linger
// deadline expires, so device-sized batches stay full under small-request
// traffic while latency stays bounded.
//
// Graceful drain reuses the fault-tolerance layer's RunContext cancellation
// paths: Shutdown stops the accept loop, lets sessions flush and their
// in-flight batches drain through the pipeline, then ends the resident
// ToStream regions by closing their sources; if the caller's context
// expires first, the shared context is canceled and the ff runtime's
// cancel+drain machinery aborts the streams without deadlock.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streamgpu/internal/core"
	"streamgpu/internal/dedup"
	"streamgpu/internal/diag"
	"streamgpu/internal/fault"
	"streamgpu/internal/ff"
	"streamgpu/internal/gpu"
	"streamgpu/internal/health"
	"streamgpu/internal/mandel"
	"streamgpu/internal/pool"
	"streamgpu/internal/server/qos"
	"streamgpu/internal/server/wire"
	"streamgpu/internal/telemetry"
)

// Config sizes the server. The zero value serves with the documented
// defaults.
type Config struct {
	// MaxInflight is the admission high-water mark: the number of accepted,
	// not-yet-answered requests above which new requests are rejected with
	// TReject instead of queued (default 64).
	MaxInflight int
	// Linger bounds how long a partially filled dedup batch may wait for
	// more client bytes before it is sealed and submitted anyway
	// (default 2ms). <= 0 keeps the default; coalescing cannot be disabled,
	// only bounded, because a partial batch must eventually flush.
	Linger time.Duration
	// Workers replicates the batch-processing stage (default GOMAXPROCS).
	Workers int
	// BatchSize is the dedup coalescing target (default dedup.DefaultBatchSize).
	BatchSize int
	// MaxPayload caps one request frame's payload (default BatchSize).
	MaxPayload int
	// GPU offloads dedup batch processing to the simulated device (per-batch
	// kernels with retry and CPU degradation).
	GPU bool
	// MaxRetries bounds per-batch transient-fault retries on the GPU path.
	MaxRetries int
	// Faults configures the GPU path's fault injector; the zero value
	// injects nothing.
	Faults fault.Config
	// Metrics, when set, receives the server's per-tenant counters and
	// histograms plus the pipeline and device instrumentation. nil is off.
	Metrics *telemetry.Registry
	// QoS is the per-tenant weight/rate/burst table (-tenant-weights). The
	// zero value gives every tenant weight 1 and no rate limit.
	QoS qos.Table
	// DefaultDeadline applies to requests that carry no deadline of their
	// own (-default-deadline). 0 disables deadline admission for them.
	DefaultDeadline time.Duration
	// Devices is the simulated GPU pool size for the dedup path (default
	// 1). Batches spread across devices by sequence number.
	Devices int
	// Fleet, when non-empty, is the heterogeneous per-device spec list
	// (-fleet; gpu.ParseFleet builds it). Its length overrides Devices and
	// its specs seed the health scoreboard's service-time baselines.
	Fleet []gpu.DeviceSpec
	// Health configures the per-device quarantine scoreboard; the zero
	// value uses the documented defaults. Only consulted when GPU is set.
	Health health.Config
	// ProbeInterval runs the diag probe suite against every device this
	// often in the background, feeding pass/fail into the scoreboard
	// (quarantined devices re-admit after clean probe cycles). 0 disables
	// background probing. Only consulted when GPU is set.
	ProbeInterval time.Duration
	// ProbeLevel is the background probes' diag run level (1..3, default 1).
	ProbeLevel int
	// BlindPlacement disables score-weighted placement and falls back to
	// sequence-modulo device routing — the figures baseline.
	BlindPlacement bool
	// DeviceFaults, when set, overrides Faults per device — the chaos
	// harness's hook for degrading one device mid-stream.
	DeviceFaults func(dev int) fault.Config
	// Store, when set, is shared by every session's dedup-hint stage instead
	// of the default per-session table — the cluster layer injects its
	// content-addressed store here so duplicate blocks dedup across sessions
	// and nodes. Archive bytes are unaffected either way: each session's
	// Writer still makes the authoritative stream-order decision.
	Store dedup.BlockStore
	// Lanes is the intra-batch compress parallelism of the dedup workers
	// (-lzss-lanes): each batch's blocks split into byte-balanced lanes
	// compressed concurrently, bit-exact to the sequential encoder. 0
	// derives the count from GOMAXPROCS; negative forces one lane.
	Lanes int
	// StoreShards stripes the per-session duplicate stores (-store-shards;
	// rounded up to a power of two, default dedup.DefaultStoreShards).
	// Ignored when Store injects a shared store.
	StoreShards int
}

func (c Config) maxInflight() int {
	if c.MaxInflight <= 0 {
		return 64
	}
	return c.MaxInflight
}

func (c Config) linger() time.Duration {
	if c.Linger <= 0 {
		return 2 * time.Millisecond
	}
	return c.Linger
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) batchSize() int {
	if c.BatchSize <= 0 {
		return dedup.DefaultBatchSize
	}
	return c.BatchSize
}

func (c Config) maxPayload() int {
	if c.MaxPayload > 0 {
		return c.MaxPayload
	}
	return c.batchSize()
}

func (c Config) devices() int {
	if len(c.Fleet) > 0 {
		return len(c.Fleet)
	}
	if c.Devices <= 0 {
		return 1
	}
	return c.Devices
}

// fleet resolves the per-device spec list: the explicit Fleet, or Devices
// copies of the reference Titan XP.
func (c Config) fleet() []gpu.DeviceSpec {
	if len(c.Fleet) > 0 {
		return c.Fleet
	}
	fl := make([]gpu.DeviceSpec, c.devices())
	for i := range fl {
		fl[i] = gpu.TitanXPSpec()
	}
	return fl
}

func (c Config) probeLevel() int {
	if c.ProbeLevel < diag.LevelQuick {
		return diag.LevelQuick
	}
	if c.ProbeLevel > diag.LevelLong {
		return diag.LevelLong
	}
	return c.ProbeLevel
}

// Server is a resident streaming service. Create with New, run with Serve,
// stop with Shutdown.
type Server struct {
	cfg Config

	ctx    context.Context
	cancel context.CancelFunc

	jobs  *ff.MPMC[*job]
	mjobs *ff.MPMC[*mandelJob]

	// The DRR schedulers sit between the sessions and the bounded job
	// channels: sessions enqueue into per-tenant lanes, one dispatcher
	// goroutine per service drains lanes fairly and forwards into the
	// channel (the blocking send is still the backpressure point). Queue
	// depth is bounded by the admission window — every scheduled item holds
	// admitted requests — so the lanes cannot grow without bound.
	dedupSched  *qos.Sched
	mandelSched *qos.Sched
	dispWG      sync.WaitGroup

	adm    *admission
	est    *estimator
	scores *health.Scoreboard // nil when GPU is off
	fleet  []gpu.DeviceSpec   // resolved per-device specs (GPU only)

	probeStop chan struct{} // stops the background prober
	probing   bool          // prober launched (guarded by mu)
	probeWG   sync.WaitGroup

	inflight atomic.Int64

	payloads *pool.Bytes

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	draining bool
	started  bool // pipelines launched (Start)
	serving  bool // accept loop claimed (Serve)

	sessWG sync.WaitGroup
	pipeWG sync.WaitGroup

	pipeMu   sync.Mutex
	pipeErrs []error

	done        chan struct{}
	shutdownErr error
}

// New builds a server from cfg.
func New(cfg Config) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		// The job queues are the bounded admission queues feeding the
		// resident pipelines: capacity tracks the admission window, so a
		// full window exerts backpressure on session readers (and through
		// them, TCP) instead of buffering without bound. MPMC because many
		// dispatch/drop paths push while one pipeline source pops in bursts.
		jobs:     ff.NewMPMC[*job](cfg.maxInflight(), false),
		mjobs:    ff.NewMPMC[*mandelJob](cfg.maxInflight(), false),
		payloads: pool.NewBytes("server.payload"),
		sessions: make(map[*session]struct{}),
		done:     make(chan struct{}),
	}
	s.adm = newAdmission(cfg.QoS, cfg.maxInflight(), nil)
	s.est = newEstimator()
	weight := cfg.QoS.Weight
	s.dedupSched = qos.NewSched(cfg.batchSize(), weight, nil)
	s.mandelSched = qos.NewSched(cfg.batchSize(), weight, nil)
	if cfg.GPU {
		s.fleet = cfg.fleet()
		s.probeStop = make(chan struct{})
		hc := cfg.Health
		hc.Devices = len(s.fleet)
		hc.OnTransition = s.quarantineTransition
		s.scores = health.New(hc)
		// Seed per-device service-time baselines from the specs so a slow
		// device on a heterogeneous fleet is judged against its own expected
		// pace, not the fleet's fastest.
		bs := cfg.batchSize()
		for i, spec := range s.fleet {
			s.scores.SetBaseline(i, spec.ServiceSecondsHint(bs)/float64(bs))
		}
	}
	s.payloads.SetTelemetry(cfg.Metrics)
	cfg.Metrics.GaugeFunc("server_inflight", telemetry.Labels{}, func() float64 {
		return float64(s.inflight.Load())
	})
	cfg.Metrics.GaugeFunc("server_sched_depth", telemetry.Labels{"svc": "dedup"}, func() float64 {
		return float64(s.dedupSched.Depth())
	})
	cfg.Metrics.GaugeFunc("server_sched_depth", telemetry.Labels{"svc": "mandel"}, func() float64 {
		return float64(s.mandelSched.Depth())
	})
	if s.scores != nil {
		cfg.Metrics.GaugeFunc("server_devices_quarantined", telemetry.Labels{}, func() float64 {
			return float64(s.scores.QuarantinedCount())
		})
		for i := range s.fleet {
			dev := i
			cfg.Metrics.GaugeFunc("health_device_score", telemetry.Labels{"device": fmt.Sprintf("gpu%d", dev)}, func() float64 {
				return s.scores.Score(dev)
			})
		}
	}
	return s
}

// Health exposes the device scoreboard (nil when the GPU path is off) — the
// chaos harness asserts quarantine and re-admission through it.
func (s *Server) Health() *health.Scoreboard { return s.scores }

// Start launches the resident pipelines without an accept loop. Serve calls
// it implicitly; the cluster layer calls it directly because it owns the
// listener and hands accepted connections in through ServeConn. Safe to call
// more than once; only the first call starts anything.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	s.startPipelines()
}

// Serve accepts connections on ln and blocks until Shutdown completes (or
// the listener fails for a reason other than shutdown). The resident
// pipelines start on the first call.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.serving {
		s.mu.Unlock()
		return errors.New("server: Serve called twice")
	}
	s.serving = true
	s.ln = ln
	s.mu.Unlock()

	s.Start()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				<-s.done
				return s.shutdownErr
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		sess := newSession(s, conn)
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.sessWG.Add(1)
		go sess.run()
	}
}

// ServeConn runs one already-accepted connection as a client session,
// blocking until the session finishes; conn is closed on return. It reports
// false when the server is draining (the connection is closed unserved).
// This is the cluster layer's entry point: the node's accept loop routes the
// connection by tenant ownership first and hands it here only when this node
// is the owner.
func (s *Server) ServeConn(conn net.Conn) bool {
	s.Start()
	sess := newSession(s, conn)
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		conn.Close()
		return false
	}
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	s.sessWG.Add(1)
	sess.run()
	return true
}

// Shutdown drains the server: stop accepting, let sessions flush and their
// in-flight work complete, then end the resident pipelines. If ctx expires
// first, the shared context is canceled — sessions are disconnected and the
// ff cancel+drain path aborts the streams — and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		// A concurrent Shutdown is already draining; wait for it, but honor
		// our own ctx — the other call may be running under a longer one.
		select {
		case <-s.done:
			return s.shutdownErr
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.draining = true
	ln := s.ln
	probing := s.probing
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	if probing {
		close(s.probeStop)
		s.probeWG.Wait() //streamvet:ignore ctxprop close(probeStop) unblocks the prober's select immediately, so this wait is finite by construction
	}

	var forced error
	if !s.waitCtx(ctx, &s.sessWG) {
		// Sessions did not drain in time: cancel the shared context (which
		// unblocks submissions and session waits) and force-close their
		// connections so read loops exit.
		forced = ctx.Err()
		s.cancel()
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		s.sessWG.Wait() //streamvet:ignore ctxprop ctx already expired on this path; cancel+conn close makes every session read loop exit unconditionally
	}

	// Sessions are gone, so nothing enqueues anymore. Closing the
	// schedulers lets the dispatchers drain what remains (graceful drain
	// leaves the lanes empty — every session waited for its jobs; forced
	// drain settles leftovers through their Drop callbacks), then exit.
	s.dedupSched.Close()
	s.mandelSched.Close()
	s.dispWG.Wait() //streamvet:ignore ctxprop Close unblocks the dispatchers' cond.Wait and they drain bounded lanes, so this wait is finite by construction

	// All producers are gone: closing the sources ends the resident
	// ToStream regions through their normal EOS path (PopWait drains what
	// remains, then reports end-of-stream).
	s.jobs.Close()
	s.mjobs.Close()
	if !s.waitCtx(ctx, &s.pipeWG) {
		forced = ctx.Err()
		s.cancel()
		s.pipeWG.Wait() //streamvet:ignore ctxprop ctx already expired on this path; cancel aborts the resident streams through the ff cancel+drain path
	}
	s.cancel()

	s.pipeMu.Lock()
	for _, err := range s.pipeErrs {
		if err != nil && !errors.Is(err, context.Canceled) && forced == nil {
			forced = err
		}
	}
	s.pipeMu.Unlock()
	s.shutdownErr = forced
	close(s.done)
	return forced
}

// waitCtx waits for wg, bounded by ctx; it reports whether the group
// finished in time.
func (s *Server) waitCtx(ctx context.Context, wg *sync.WaitGroup) bool {
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	select {
	case <-ch:
		return true
	case <-ctx.Done():
		return false
	}
}

// startPipelines launches the two resident ToStream regions. Each runs
// until its source channel closes (graceful drain) or the shared context is
// canceled (forced drain).
func (s *Server) startPipelines() {
	gopt := dedup.GPUOptions{
		Options: dedup.Options{
			Metrics:     s.cfg.Metrics,
			Lanes:       s.cfg.Lanes,
			StoreShards: s.cfg.StoreShards,
		},
		MaxRetries:     s.cfg.MaxRetries,
		Faults:         s.cfg.Faults,
		Devices:        s.cfg.devices(),
		Fleet:          s.cfg.Fleet,
		BlindPlacement: s.cfg.BlindPlacement,
		FaultsFor:      s.cfg.DeviceFaults,
		Health:         s.scores,
	}
	useGPU := s.cfg.GPU
	if useGPU && s.cfg.ProbeInterval > 0 {
		s.mu.Lock()
		s.probing = true
		s.mu.Unlock()
		s.probeWG.Add(1)
		go s.probeLoop()
	}

	// One dispatcher per service pulls items from the fair scheduler and
	// runs them (a blocking forward into the bounded job channel). Expired
	// and dropped items are settled inside Next.
	s.dispWG.Add(2)
	go s.dispatch(s.dedupSched)
	go s.dispatch(s.mandelSched)

	dedupTS := core.NewToStream(core.Ordered(),
		core.Telemetry(s.cfg.Metrics, "serve-dedup")).
		StageWorkers(func() core.Worker {
			return &dedupWorker{p: dedup.NewProcessor(gopt, useGPU)}
		}, core.Replicate(s.cfg.workers()), core.Name("process")).
		Stage(s.dedupSink, core.Name("write+respond"))

	mandelTS := core.NewToStream(core.Ordered(),
		core.Telemetry(s.cfg.Metrics, "serve-mandel")).
		Stage(s.mandelCompute, core.Replicate(s.cfg.workers()), core.Name("compute")).
		Stage(s.mandelSink, core.Name("respond"))

	s.pipeWG.Add(2)
	go func() {
		defer s.pipeWG.Done()
		err := dedupTS.RunContext(s.ctx, func(emit func(any)) {
			mpmcSource(s.jobs, emit)
		})
		s.recordPipeErr(err)
	}()
	go func() {
		defer s.pipeWG.Done()
		err := mandelTS.RunContext(s.ctx, func(emit func(any)) {
			mpmcSource(s.mjobs, emit)
		})
		s.recordPipeErr(err)
	}()
}

// mpmcSource feeds a resident pipeline from its admission queue: burst pops
// while the queue has backlog (one claim per burst instead of per job),
// blocking pops when it runs dry, until the queue is closed and drained.
func mpmcSource[T any](q *ff.MPMC[T], emit func(any)) {
	var burst [16]T
	for {
		n := q.TryPopN(burst[:])
		if n == 0 {
			v, ok := q.PopWait()
			if !ok {
				return
			}
			emit(v)
			continue
		}
		var zero T
		for i := 0; i < n; i++ {
			emit(burst[i])
			burst[i] = zero
		}
	}
}

// probeLoop is the background prober: every ProbeInterval it runs the diag
// suite over the fleet (small workloads — the point is the verdict, not the
// numbers), records per-device pass/fail into the scoreboard, and ticks the
// idle-decay clock. Quarantined devices earn re-admission through these
// cycles even when placement sends them no traffic.
func (s *Server) probeLoop() {
	defer s.probeWG.Done()
	ticker := time.NewTicker(s.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.probeStop:
			return
		case <-s.ctx.Done():
			return
		case <-ticker.C:
			s.probeCycle()
		}
	}
}

// probeCycle runs one diag pass and feeds the scoreboard.
func (s *Server) probeCycle() {
	rep := diag.Run(diag.Options{
		Level:     s.cfg.probeLevel(),
		Fleet:     s.fleet,
		FaultsFor: s.cfg.DeviceFaults,
		Metrics:   s.cfg.Metrics,
		VectorLen: 4 << 10,
		GrindOps:  4,
	})
	for i := range s.fleet {
		s.scores.RecordProbe(i, rep.DevicePass(i))
	}
	s.scores.Tick()
}

// dispatch is one service's scheduler-drain loop.
func (s *Server) dispatch(sched *qos.Sched) {
	defer s.dispWG.Done()
	for {
		it, ok := sched.Next()
		if !ok {
			return
		}
		it.Run()
	}
}

func (s *Server) recordPipeErr(err error) {
	s.pipeMu.Lock()
	s.pipeErrs = append(s.pipeErrs, err)
	s.pipeMu.Unlock()
}

// dedupWorker is one replica of the shared batch-processing stage.
type dedupWorker struct {
	p *dedup.Processor
}

// Init implements core.Worker.
func (w *dedupWorker) Init() error { return nil }

// End implements core.Worker.
func (w *dedupWorker) End() {}

// Process implements core.Worker: hash, dedup-mark and compress one batch
// against its session's store.
func (w *dedupWorker) Process(item any, emit func(any)) {
	j := item.(*job)
	w.p.Process(j.batch, j.sess.store)
	emit(j)
}

// dedupSink is the serial ordered tail of the dedup pipeline: it appends
// each batch to its session's archive stream, ships the archive delta to
// the client for every request the batch completes, and recycles the batch
// and its payload buffer.
func (s *Server) dedupSink(item any, _ func(any)) {
	j := item.(*job)
	sess := j.sess
	if err := j.batch.WriteBlocks(sess.dw); err != nil {
		sess.fail(fmt.Errorf("archive write: %w", err))
	}
	if len(j.done) > 0 {
		if err := sess.dw.Flush(); err != nil {
			sess.fail(fmt.Errorf("archive flush: %w", err))
		}
		// The archive delta belongs to the session stream, not to one
		// request; it rides the first completion frame and the rest are
		// bare acknowledgements. Clients concatenate every result payload.
		// A batch completing no request leaves its bytes buffered for the
		// next completing batch (or the final TEnd flush).
		delta := sess.takeArchiveDelta()
		now := time.Now()
		for i, c := range j.done {
			payload := delta
			if i > 0 {
				payload = nil
			}
			sess.sendResult(wire.SvcDedup, c.seq, c.tenant, payload)
			s.observeDone(wire.SvcDedup, c.tenant, len(payload), now.Sub(c.t0))
		}
	}
	j.batch.Release()
	s.payloads.Release(j.data)
	sess.jobDone(len(j.done))
}

// mandelCompute is one replica of the Mandelbrot row farm.
func (s *Server) mandelCompute(item any, emit func(any)) {
	mj := item.(*mandelJob)
	dim := int(mj.req.Dim)
	out := s.payloads.Get(dim * int(mj.req.NRows))
	p := mandelParams(mj.req)
	for r := 0; r < int(mj.req.NRows); r++ {
		p.ComputeRow(int(mj.req.Row0)+r, out[r*dim:(r+1)*dim])
	}
	mj.out = out
	emit(mj)
}

// mandelSink responds to completed row-range requests in order.
func (s *Server) mandelSink(item any, _ func(any)) {
	mj := item.(*mandelJob)
	mj.sess.sendResult(wire.SvcMandel, mj.seq, mj.tenant, mj.out)
	s.observeDone(wire.SvcMandel, mj.tenant, len(mj.out), time.Since(mj.t0))
	s.payloads.Release(mj.out)
	mj.sess.jobDone(1)
}

// mandelParams maps a validated request onto the paper's complex-plane
// window.
func mandelParams(r MandelReq) mandel.Params {
	return mandel.Params{
		Dim: int(r.Dim), Niter: int(r.Niter),
		InitA: -2.0, InitB: -1.25, Range: 2.5,
	}
}

// observeDone finishes one accepted request: service-time histogram,
// response byte counter, admission-window release (shared and per-tenant),
// and the deadline estimator's service-time sample.
func (s *Server) observeDone(svc wire.Svc, tenant uint32, respBytes int, d time.Duration) {
	s.releaseAdmitted(tenant)
	s.est.observe(svc, d)
	m := s.cfg.Metrics
	m.Counter("server_response_bytes_total", tenantLabels(svc, tenant)).Add(int64(respBytes))
	m.Histogram("server_service_seconds", nil, tenantLabels(svc, tenant)).ObserveDuration(d)
}

// releaseAdmitted returns one admitted request's shared-window slot and
// tenant share without recording a completion — the path for requests that
// die before reaching a sink (forced drain, deadline expiry in queue).
func (s *Server) releaseAdmitted(tenant uint32) {
	s.inflight.Add(-1)
	s.adm.release(tenant)
}
