package server

import (
	"strconv"

	"streamgpu/internal/server/wire"
	"streamgpu/internal/telemetry"
)

// tenantLabels identifies one tenant's series of a per-service metric.
// Tenant IDs come from the client, so their cardinality is bounded by the
// deployment's tenant population, not by request volume.
func tenantLabels(svc wire.Svc, tenant uint32) telemetry.Labels {
	return telemetry.Labels{"svc": svc.String(), "tenant": strconv.FormatUint(uint64(tenant), 10)}
}

// verdictLabels extends tenantLabels with the admission verdict.
func verdictLabels(svc wire.Svc, tenant uint32, verdict string) telemetry.Labels {
	l := tenantLabels(svc, tenant)
	l["verdict"] = verdict
	return l
}

// sessionGauge tracks live sessions.
func (s *Server) sessionGauge(d float64) {
	s.cfg.Metrics.Gauge("server_sessions", telemetry.Labels{}).Add(d)
}

// drainingNow reports whether Shutdown has begun.
func (s *Server) drainingNow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// dropSession removes a finished session from the live set.
func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
}
