package server

import (
	"strconv"

	"streamgpu/internal/server/wire"
	"streamgpu/internal/telemetry"
)

// tenantLabels identifies one tenant's series of a per-service metric.
// Tenant IDs come from the client, so their cardinality is bounded by the
// deployment's tenant population, not by request volume.
func tenantLabels(svc wire.Svc, tenant uint32) telemetry.Labels {
	return telemetry.Labels{"svc": svc.String(), "tenant": strconv.FormatUint(uint64(tenant), 10)}
}

// verdictLabels extends tenantLabels with the admission verdict and — for
// rejections — the one-byte wire reason ("none" on acceptance), so a
// dashboard can tell a throttled tenant from a deadline miss from shared
// overload without scraping logs.
func verdictLabels(svc wire.Svc, tenant uint32, verdict string, reason wire.Reason) telemetry.Labels {
	l := tenantLabels(svc, tenant)
	l["verdict"] = verdict
	l["reason"] = reason.String()
	return l
}

// countVerdict is the single call site of the per-tenant admission verdict
// counter (one call site per series keeps the label set coherent).
func (s *Server) countVerdict(svc wire.Svc, tenant uint32, verdict string, reason wire.Reason) {
	s.cfg.Metrics.Counter("server_requests_total", verdictLabels(svc, tenant, verdict, reason)).Inc()
}

// quarantineTransition is the health scoreboard's metrics hook.
func (s *Server) quarantineTransition(dev int, quarantined bool) {
	state := "readmitted"
	if quarantined {
		state = "quarantined"
	}
	s.cfg.Metrics.Counter("server_device_transitions_total",
		telemetry.Labels{"dev": strconv.Itoa(dev), "state": state}).Inc()
}

// sessionGauge tracks live sessions.
func (s *Server) sessionGauge(d float64) {
	s.cfg.Metrics.Gauge("server_sessions", telemetry.Labels{}).Add(d)
}

// drainingNow reports whether Shutdown has begun.
func (s *Server) drainingNow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// dropSession removes a finished session from the live set.
func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
}
