package testutil

import (
	"testing"
	"time"
)

func TestMain(m *testing.M) { Main(m) }

func TestCheckLeaksCleanTest(t *testing.T) {
	CheckLeaks(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

func TestCheckLeaksToleratesSlowExit(t *testing.T) {
	CheckLeaks(t)
	// A goroutine still draining when the test body returns must be absorbed
	// by the checker's polling window rather than reported.
	go func() { time.Sleep(50 * time.Millisecond) }()
}

func TestLeakedDetects(t *testing.T) {
	baseline := make(map[string]int)
	for _, g := range stacks() {
		baseline[stackKey(g)]++
	}
	stop := make(chan struct{})
	go func() { <-stop }()
	rest := leaked(copyCounts(baseline), 100*time.Millisecond)
	if len(rest) != 1 {
		t.Errorf("leaked reported %d goroutines, want 1", len(rest))
	}
	close(stop)
	if rest := leaked(copyCounts(baseline), 2*time.Second); len(rest) != 0 {
		t.Errorf("after stop, leaked still reports %d goroutines", len(rest))
	}
}

func copyCounts(m map[string]int) map[string]int {
	c := make(map[string]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}
