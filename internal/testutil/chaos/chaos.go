// Package chaos is the serving layer's failure-injection harness: a seeded
// scenario driver that runs an in-process streamd and composes the failure
// modes the overload design must absorb — per-device GPU fault storms
// (including degradation that begins mid-stream), abrupt connection drops,
// and hog-versus-small tenant mixes — while the assertions stay the boring
// invariants that matter: fleets see zero corrupted archives, quarantined
// devices come back, shutdown drains cleanly, and no goroutine outlives the
// run (testutil.CheckLeaks in every test).
//
// The driver is deliberately phase-oriented rather than timer-oriented:
// tests degrade a device *between* traffic phases instead of racing a timer
// against a fleet, which keeps scenarios reproducible from their seed alone.
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamgpu/internal/fault"
	"streamgpu/internal/health"
	"streamgpu/internal/loadgen"
	"streamgpu/internal/server"
	"streamgpu/internal/server/wire"
)

// Runner owns one live server plus the knobs a scenario turns.
type Runner struct {
	tb   testing.TB
	srv  *server.Server
	addr string

	faults []atomic.Value // fault.Config per device

	mu  sync.Mutex
	rng *rand.Rand

	serveErr chan error
	closed   bool
}

// Start launches a server configured by cfg on an ephemeral port. The
// runner installs itself as cfg.DeviceFaults so scenarios can degrade and
// heal individual devices while traffic flows; cfg.Faults seeds every
// device's initial injector. Close (registered as a test cleanup) asserts a
// clean graceful drain.
func Start(tb testing.TB, seed int64, cfg server.Config) *Runner {
	tb.Helper()
	r := &Runner{
		tb:       tb,
		rng:      rand.New(rand.NewSource(seed)),
		serveErr: make(chan error, 1),
	}
	devs := cfg.Devices
	if len(cfg.Fleet) > 0 {
		devs = len(cfg.Fleet)
	}
	if devs <= 0 {
		devs = 1
	}
	r.faults = make([]atomic.Value, devs)
	for i := range r.faults {
		fc := cfg.Faults
		fc.Seed = seed + int64(i)
		r.faults[i].Store(fc)
	}
	if cfg.GPU {
		cfg.DeviceFaults = r.faultsFor
	}
	r.srv = server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatalf("chaos: listen: %v", err)
	}
	r.addr = ln.Addr().String()
	go func() { r.serveErr <- r.srv.Serve(ln) }()
	tb.Cleanup(r.Close)
	return r
}

// Addr is the server's dial address.
func (r *Runner) Addr() string { return r.addr }

// Health exposes the server's device scoreboard (nil when GPU is off).
func (r *Runner) Health() *health.Scoreboard { return r.srv.Health() }

func (r *Runner) faultsFor(dev int) fault.Config {
	if dev < 0 || dev >= len(r.faults) {
		dev = 0
	}
	return r.faults[dev].Load().(fault.Config)
}

// Degrade points device dev's fault injection at fc from the next batch on —
// injectors are built per batch, so the change lands mid-stream without
// restarting anything.
func (r *Runner) Degrade(dev int, fc fault.Config) {
	if fc.Seed == 0 {
		fc.Seed = r.nextSeed()
	}
	r.faults[dev].Store(fc)
}

// Heal clears device dev's fault injection.
func (r *Runner) Heal(dev int) { r.faults[dev].Store(fault.Config{}) }

// nextSeed derives a fresh deterministic seed from the scenario's.
func (r *Runner) nextSeed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Int63()
}

// Fleets runs the given loadgen fleets concurrently against the server and
// returns their reports in argument order. The runner fills in the address,
// derives a seed for any fleet that has none, and fails the test on client
// errors — a chaos scenario's traffic must end verdicts-only, never broken.
func (r *Runner) Fleets(cfgs ...loadgen.Config) []loadgen.Report {
	r.tb.Helper()
	reports := make([]loadgen.Report, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		cfg := cfgs[i]
		cfg.Addr = r.addr
		cfg.SkipCalib = true
		if cfg.Seed == 0 {
			cfg.Seed = r.nextSeed()
		}
		wg.Add(1)
		go func(i int, cfg loadgen.Config) {
			defer wg.Done()
			reports[i], errs[i] = loadgen.Run(cfg)
		}(i, cfg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			r.tb.Errorf("chaos: fleet %d: %v", i, err)
		}
		if reports[i].RestoreFailures > 0 {
			r.tb.Errorf("chaos: fleet %d: %d corrupted archives", i, reports[i].RestoreFailures)
		}
	}
	return reports
}

// Drops opens n connections and severs each abruptly mid-stream: a valid
// request, then (for some) a torn half-frame, then a hard close with no
// TEnd handshake. The server must absorb all of it without corrupting other
// sessions or leaking the admitted work.
func (r *Runner) Drops(n int) {
	r.tb.Helper()
	for i := 0; i < n; i++ {
		conn, err := net.DialTimeout("tcp", r.addr, 5*time.Second)
		if err != nil {
			r.tb.Errorf("chaos: drop dial: %v", err)
			return
		}
		seed := r.nextSeed()
		payload := make([]byte, 256+seed%1024)
		for j := range payload {
			payload[j] = byte(seed >> (uint(j) % 8 * 8))
		}
		fw := wire.NewWriter(conn)
		fw.Write(wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: 999, Seq: 0, Payload: payload})
		fw.Flush()
		if seed%2 == 0 {
			// Tear a frame in half before hanging up.
			torn := wire.Append(nil, wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: 999, Seq: 1, Payload: payload})
			conn.Write(torn[:len(torn)/2])
		}
		conn.Close()
	}
}

// Close drains the server and asserts the drain was clean. Registered as a
// cleanup by Start; calling it early (to assert drain before inspecting
// state) is fine.
func (r *Runner) Close() {
	r.tb.Helper()
	if r.closed {
		return
	}
	r.closed = true
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := r.srv.Shutdown(ctx); err != nil {
		r.tb.Errorf("chaos: shutdown not clean: %v", err)
	}
	if err := <-r.serveErr; err != nil {
		r.tb.Errorf("chaos: serve returned: %v", err)
	}
}

// ScaledRequests picks a per-client request count: full depth normally,
// shallow under -short (the CI race pass runs chaos in short mode).
func ScaledRequests(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

// Describe renders the one-line fleet summary chaos failures print.
func Describe(name string, rep loadgen.Report) string {
	return fmt.Sprintf("%s: accepted=%d rejected=%d retries=%d throttled=%d deadline_misses=%d p99=%.1fms",
		name, rep.Accepted, rep.Rejected, rep.Retries, rep.Throttled, rep.DeadlineMisses,
		rep.LatencyP99*1e3)
}
