package chaos_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"streamgpu/internal/fault"
	"streamgpu/internal/gpu"
	"streamgpu/internal/health"
	"streamgpu/internal/loadgen"
	"streamgpu/internal/server"
	"streamgpu/internal/telemetry"
	"streamgpu/internal/testutil"
	"streamgpu/internal/testutil/chaos"
)

// placedCounts reads the dedup_placed_total counter per placement target
// ("gpu0".."gpuN", "cpu") from the registry, excluding probe batches —
// probes are surveillance of a quarantined device, not served traffic.
func placedCounts(reg *telemetry.Registry) map[string]float64 {
	out := make(map[string]float64)
	for _, m := range reg.Snapshot().Metrics {
		if m.Name != "dedup_placed_total" {
			continue
		}
		for _, s := range m.Series {
			if s.Labels["probe"] == "true" {
				continue
			}
			out[s.Labels["device"]] += s.Value
		}
	}
	return out
}

// TestFleetDerateShedsAndReadmits is the fleet chaos acceptance scenario: a
// heterogeneous 4-GPU fleet serves verified traffic, one device derates
// mid-stream (heavy transfer+kernel faults from the next batch on), and the
// scoreboard must quarantine it, placement must shed its share onto the
// healthy devices (visible as a collapse of the device's placement counter,
// not a pile-up of CPU fallbacks), probe batches must keep reaching it, and
// after the device heals it must be re-admitted and serve real traffic
// again. Every archive in every phase restores byte-exactly (loadgen
// Verify), and teardown is leak-clean.
func TestFleetDerateShedsAndReadmits(t *testing.T) {
	testutil.CheckLeaks(t)
	fleet, err := gpu.ParseFleet("titanxp*2,titanxp@clock=0.8,titanxp@gen=2")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	r := chaos.Start(t, 99, server.Config{
		Linger:    time.Millisecond,
		GPU:       true,
		Fleet:     fleet,
		BatchSize: 8 << 10, // ~one batch per request, so the scoreboard sees real traffic
		Metrics:   reg,
		Health: health.Config{
			Window: 8, MinSamples: 4, Threshold: 0.5,
			ProbeEvery: 2, ReadmitAfter: 2,
		},
	})
	requests := chaos.ScaledRequests(40, 10)

	// Phase 1: healthy heterogeneous fleet. Every device serves.
	rep := r.Fleets(smallFleet(requests))[0]
	if rep.Accepted == 0 {
		t.Fatalf("healthy phase did no work: %s", chaos.Describe("healthy", rep))
	}
	healthyCounts := placedCounts(reg)
	for dev := 0; dev < len(fleet); dev++ {
		if healthyCounts[fmt.Sprintf("gpu%d", dev)] == 0 {
			t.Fatalf("device %d served nothing on the healthy fleet: %v", dev, healthyCounts)
		}
	}

	// Phase 2: derate gpu1 mid-stream. The injector change lands on its next
	// batch; the scoreboard must quarantine it and shed its share.
	r.Degrade(1, fault.Config{Seed: 7, TransferRate: 0.9, KernelRate: 0.9})
	rep = r.Fleets(smallFleet(requests))[0]
	if rep.Accepted == 0 {
		t.Fatalf("derated phase did no work: %s", chaos.Describe("derated", rep))
	}
	snap := r.Health().Snapshot()
	if snap[1].Quarantines == 0 {
		t.Fatalf("gpu1 never quarantined at 90%% fault rates: %+v", snap[1])
	}
	deratedCounts := placedCounts(reg)
	sickShare := deratedCounts["gpu1"] - healthyCounts["gpu1"]
	var healthyShare float64
	for _, dev := range []int{0, 2, 3} {
		healthyShare += deratedCounts[fmt.Sprintf("gpu%d", dev)] - healthyCounts[fmt.Sprintf("gpu%d", dev)]
	}
	if sickShare*float64(len(fleet)-1) >= healthyShare {
		t.Fatalf("placement did not shed the derated device: gpu1 took %.0f batches vs %.0f on the healthy three",
			sickShare, healthyShare)
	}
	if snap[1].Probes == 0 {
		t.Fatalf("no probe batches reached the quarantined device: %+v", snap[1])
	}

	// Phase 3: heal gpu1. Clean probe batches must earn re-admission, and the
	// device must return to real service.
	r.Heal(1)
	rep = r.Fleets(smallFleet(requests))[0]
	if rep.Accepted == 0 {
		t.Fatalf("healed phase did no work: %s", chaos.Describe("healed", rep))
	}
	snap = r.Health().Snapshot()
	if snap[1].Readmits == 0 {
		t.Fatalf("gpu1 never re-admitted after healing: %+v", snap[1])
	}
	if snap[1].Quarantined {
		t.Fatalf("gpu1 still quarantined after healing: %+v", snap[1])
	}
	healedCounts := placedCounts(reg)
	if healedCounts["gpu1"] <= deratedCounts["gpu1"] {
		t.Fatalf("re-admitted device served nothing: %v -> %v", deratedCounts["gpu1"], healedCounts["gpu1"])
	}
}

// TestFleetPlacementPreservesOrder is the order property: across randomized
// heterogeneous fleets, seeds, and a mid-run derate, score-weighted
// placement must preserve every session's batch order — each archive
// restores to exactly the bytes that session sent, in order (loadgen's
// Verify recomputes the restore). Payloads span several batches per request
// so reordering between in-flight batches would corrupt restores.
func TestFleetPlacementPreservesOrder(t *testing.T) {
	testutil.CheckLeaks(t)
	kinds := []string{"titanxp", "titanxp@clock=0.6", "titanxp@gen=2", "titanxp@sms=16", "titanxp@clock=0.8@gen=4"}
	seeds := []int64{3, 17}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			spec := ""
			for i, n := 0, 2+rng.Intn(3); i < n; i++ {
				if i > 0 {
					spec += ","
				}
				spec += kinds[rng.Intn(len(kinds))]
			}
			fleet, err := gpu.ParseFleet(spec)
			if err != nil {
				t.Fatalf("fleet %q: %v", spec, err)
			}
			t.Logf("fleet %q", spec)
			r := chaos.Start(t, seed, server.Config{
				Linger:     time.Millisecond,
				GPU:        true,
				Fleet:      fleet,
				BatchSize:  4 << 10,
				MaxPayload: 64 << 10,
				Health: health.Config{
					Window: 8, MinSamples: 4, Threshold: 0.5,
					ProbeEvery: 2, ReadmitAfter: 2,
				},
			})
			sick := rng.Intn(len(fleet))
			cfg := loadgen.Config{
				Clients:     4,
				Tenants:     4,
				FirstTenant: 1,
				Requests:    chaos.ScaledRequests(12, 4),
				MinBytes:    8 << 10, // 2+ batches per request: order bugs corrupt restores
				MaxBytes:    48 << 10,
				Retries:     3,
				BackoffCap:  100 * time.Millisecond,
				Verify:      true,
				Seed:        seed + 1,
			}
			r.Fleets(cfg) // healthy phase
			r.Degrade(sick, fault.Config{Seed: seed + 2, TransferRate: 0.8, KernelRate: 0.8})
			r.Fleets(cfg) // degraded phase: reroutes and probes in flight
			r.Heal(sick)
			r.Fleets(cfg) // recovery phase: re-admission mid-traffic
			// Verify:true inside Fleets already failed the test on any
			// restore mismatch; reaching here means order held everywhere.
		})
	}
}
