package chaos_test

import (
	"testing"
	"time"

	"streamgpu/internal/fault"
	"streamgpu/internal/health"
	"streamgpu/internal/loadgen"
	"streamgpu/internal/server"
	"streamgpu/internal/server/qos"
	"streamgpu/internal/testutil"
	"streamgpu/internal/testutil/chaos"
)

func TestMain(m *testing.M) { testutil.Main(m) }

// smallFleet is the 8-tenant small-request fleet every scenario shares: one
// client per tenant, modest payloads, retries that honor the server's hints,
// and full restore verification.
func smallFleet(requests int) loadgen.Config {
	return loadgen.Config{
		Clients:     8,
		Tenants:     8,
		FirstTenant: 1,
		Requests:    requests,
		MinBytes:    1 << 10,
		MaxBytes:    8 << 10,
		Retries:     3,
		BackoffCap:  100 * time.Millisecond,
		Verify:      true,
	}
}

// TestIsolationSLO is the acceptance scenario: a hog tenant offering 10x the
// small fleet's bytes, plus GPU fault injection on one device, must not
// destroy the small tenants' latency — their p99 stays within 3x of a
// no-hog baseline, the *hog* is the tenant that gets throttled, and every
// archive still restores byte-exactly.
func TestIsolationSLO(t *testing.T) {
	testutil.CheckLeaks(t)
	r := chaos.Start(t, 1, server.Config{
		Linger:      time.Millisecond,
		MaxInflight: 32,
		GPU:         true,
		Devices:     2,
		Faults:      fault.Config{Seed: 11, TransferRate: 0.1, KernelRate: 0.1},
		QoS: qos.Table{
			// Small tenants: weight 4, unlimited rate. The hog (tenant 9):
			// weight 1 and a rate contract far below what it offers.
			Default: qos.Spec{Weight: 4},
			Tenants: map[uint32]qos.Spec{9: {Weight: 1, Rate: 256 << 10, Burst: 64 << 10}},
		},
	})

	requests := chaos.ScaledRequests(32, 8)
	baseline := r.Fleets(smallFleet(requests))[0]
	if baseline.Accepted == 0 || baseline.LatencyP99 <= 0 {
		t.Fatalf("baseline fleet did no work: %s", chaos.Describe("baseline", baseline))
	}

	// Hog: same client count, 10x the payload bytes, one tenant, fewer
	// retries (it is *supposed* to be turned away).
	hogCfg := loadgen.Config{
		Clients:     8,
		Tenants:     1,
		FirstTenant: 9,
		Requests:    requests,
		MinBytes:    10 << 10,
		MaxBytes:    80 << 10,
		Retries:     1,
		BackoffCap:  50 * time.Millisecond,
		Verify:      true,
	}
	reports := r.Fleets(smallFleet(requests), hogCfg)
	small, hog := reports[0], reports[1]
	t.Log(chaos.Describe("baseline", baseline))
	t.Log(chaos.Describe("small", small))
	t.Log(chaos.Describe("hog", hog))

	if small.Accepted == 0 {
		t.Fatalf("small fleet starved under hog: %s", chaos.Describe("small", small))
	}
	if small.LatencyP99 > 3*baseline.LatencyP99 {
		t.Errorf("small p99 %.1fms > 3x no-hog baseline %.1fms",
			small.LatencyP99*1e3, baseline.LatencyP99*1e3)
	}
	// The hog is the throttled party; the small tenants never are.
	if hog.Throttled == 0 {
		t.Errorf("hog saw no tenant-throttled verdicts: %s", chaos.Describe("hog", hog))
	}
	if small.Throttled != 0 {
		t.Errorf("small tenants throttled %d times, want 0", small.Throttled)
	}
}

// TestQuarantineMidStream degrades one device of the pool *between* traffic
// phases: healthy traffic first, then a fault storm that must quarantine the
// device (and only it), then a healed phase in which probe batches re-admit
// it. Archives verify in every phase.
func TestQuarantineMidStream(t *testing.T) {
	testutil.CheckLeaks(t)
	r := chaos.Start(t, 2, server.Config{
		Linger:  time.Millisecond,
		GPU:     true,
		Devices: 2,
		Health:  health.Config{Window: 8, MinSamples: 4, Threshold: 0.5, ProbeEvery: 2, ReadmitAfter: 2},
	})
	requests := chaos.ScaledRequests(24, 8)

	r.Fleets(smallFleet(requests))
	snap := r.Health().Snapshot()
	if snap[0].Quarantines != 0 || snap[1].Quarantines != 0 {
		t.Fatalf("healthy phase tripped quarantine: %+v", snap)
	}

	r.Degrade(1, fault.Config{Seed: 21, TransferRate: 0.9, KernelRate: 0.9})
	r.Fleets(smallFleet(requests))
	snap = r.Health().Snapshot()
	if snap[1].Quarantines == 0 {
		t.Fatalf("degraded device never quarantined: %+v", snap)
	}
	if snap[0].Quarantines != 0 {
		t.Fatalf("healthy device quarantined alongside the degraded one: %+v", snap)
	}

	r.Heal(1)
	r.Fleets(smallFleet(requests))
	snap = r.Health().Snapshot()
	if snap[1].Readmits == 0 {
		t.Fatalf("healed device never re-admitted: %+v", snap)
	}
	if snap[1].Quarantined {
		t.Fatalf("healed device still quarantined after clean probes: %+v", snap)
	}
}

// TestConnectionDropsDontCorrupt slams abrupt disconnects (some mid-frame)
// into the server while a verifying fleet runs. The dropped sessions' work
// must vanish without corrupting anyone else's archive, and the server must
// still drain cleanly (asserted by the runner's Close cleanup plus the leak
// check).
func TestConnectionDropsDontCorrupt(t *testing.T) {
	testutil.CheckLeaks(t)
	r := chaos.Start(t, 3, server.Config{Linger: time.Millisecond})
	requests := chaos.ScaledRequests(32, 8)

	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Drops(10)
	}()
	rep := r.Fleets(smallFleet(requests))[0]
	<-done
	if rep.Accepted == 0 {
		t.Fatalf("fleet did no work amid drops: %s", chaos.Describe("small", rep))
	}
	// Give the dropped sessions' lingering batches a moment to settle, then
	// assert the drain (Close errors the test if it is not clean).
	r.Close()
}
