// Package testutil holds shared test infrastructure. Its centerpiece is the
// goroutine-leak checker: the streaming runtimes in this repo live on
// carefully joined goroutines (ff nodes, SPSC consumers, session readers,
// linger timers), and a leaked one is a bug even when no test assertion
// notices — it means a pipeline did not actually drain. CheckLeaks snapshots
// the goroutines a test leaves behind; Main does the same for a whole
// package.
package testutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// ignoredStack reports whether one goroutine's stack belongs to test
// machinery or the runtime itself rather than code under test.
func ignoredStack(stack string) bool {
	for _, frame := range []string{
		"testing.RunTests",
		"testing.Main(",
		"testing.(*T).Run",
		"testing.(*M).",
		"testing.(*F).",
		"testing.runFuzzing",
		"testing.runFuzzTests",
		"testing.tRunner",
		"testing.fRunner",
		"runtime.goexit",
		"os/signal.signal_recv",
		"os/signal.loop",
		"runtime/pprof.",
		"testing.(*testContext)",
	} {
		if strings.Contains(stack, frame) {
			return true
		}
	}
	// The goroutine running the check itself.
	if strings.Contains(stack, "testutil.stacks") {
		return true
	}
	return false
}

// stacks returns the stacks of all live goroutines that are not test
// machinery, one entry per goroutine.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" || ignoredStack(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// leaked polls until no unexpected goroutines remain or the deadline
// passes, returning the survivors. Polling absorbs legitimate teardown
// races: a pipeline's last worker may still be between its final item and
// its return when the test body finishes.
func leaked(baseline map[string]int, deadline time.Duration) []string {
	var last []string
	for end := time.Now().Add(deadline); ; {
		last = last[:0]
		for _, g := range stacks() {
			key := stackKey(g)
			if baseline[key] > 0 {
				baseline[key]--
				continue
			}
			last = append(last, g)
		}
		if len(last) == 0 || time.Now().After(end) {
			return last
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// stackKey reduces a goroutine stack to its creation site + top function,
// which identifies "the same goroutine" across snapshots without being
// sensitive to line-level scheduling state.
func stackKey(stack string) string {
	lines := strings.Split(stack, "\n")
	top, created := "", ""
	if len(lines) > 1 {
		top = lines[1]
	}
	for _, l := range lines {
		if strings.HasPrefix(l, "created by ") {
			created = l
			break
		}
	}
	return top + "|" + created
}

// inFuzzWorker reports whether this process is a fuzzing worker; leak
// checking there produces false positives from the fuzz coordinator's
// plumbing.
func inFuzzWorker() bool {
	f := flag.Lookup("test.fuzz")
	return f != nil && f.Value.String() != ""
}

// CheckLeaks registers a cleanup that fails t if the test leaves goroutines
// behind that were not running when CheckLeaks was called.
func CheckLeaks(t *testing.T) {
	t.Helper()
	if inFuzzWorker() {
		return
	}
	baseline := make(map[string]int)
	for _, g := range stacks() {
		baseline[stackKey(g)]++
	}
	t.Cleanup(func() {
		if t.Failed() {
			return // don't stack a leak report on top of a real failure
		}
		if rest := leaked(baseline, 5*time.Second); len(rest) > 0 {
			t.Errorf("leaked %d goroutine(s):\n%s", len(rest), strings.Join(rest, "\n\n"))
		}
	})
}

// Main wraps a package's TestMain: it runs the tests, then fails the
// process if any non-test goroutines survive the whole run. Use it as
//
//	func TestMain(m *testing.M) { testutil.Main(m) }
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 && !inFuzzWorker() {
		if rest := leaked(map[string]int{}, 5*time.Second); len(rest) > 0 {
			fmt.Fprintf(os.Stderr, "testutil: package leaked %d goroutine(s):\n%s\n",
				len(rest), strings.Join(rest, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}
