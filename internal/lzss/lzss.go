// Package lzss implements the LZSS compression algorithm used by the
// paper's Dedup (replacing PARSEC's gzip/bzip2, following Stein et al.
// [24]), in the batch-oriented shape the paper's Fig. 2 describes:
//
//   - a 1 MB batch holds many content-defined blocks, delimited by the
//     startPos array produced by the Rabin chunker;
//   - FindMatches computes, for every byte position of the batch, the
//     longest match strictly inside that position's block and within the
//     sliding window — this is the work the paper offloads to the GPU as a
//     single FindMatchKernel call per batch (Listing 3);
//   - EncodeFromMatches then performs the cheap sequential entropy step on
//     the CPU, exactly as the paper does ("In CPU, we used the result of
//     the kernel function to run the compression on each block").
//
// Match semantics: a match for position i is a source range [c, c+L) with
// c in the same block, i-c <= WindowSize, c+L <= i (no self-overlap, as in
// the paper's kernel which stops the search at the current position), and
// MinMatch <= L <= MaxMatch. Among longest matches the nearest source wins.
//
// Two implementations are provided and tested for exact equivalence: a
// brute-force reference with the kernel's loop structure (FindMatchesRef)
// and a hash-chain implementation (FindMatches) used both by the CPU
// compressor and as the functional body of the GPU kernel, whose *cost
// model* still charges the brute-force work a real GPU would do.
package lzss

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	// WindowSize is the sliding-window span in bytes (12-bit distances).
	WindowSize = 4096
	// MinMatch is the shortest encodable match.
	MinMatch = 3
	// MaxMatch is the longest encodable match (4-bit length field).
	MaxMatch = MinMatch + 15
)

const (
	hashBits = 15
	hashSize = 1 << hashBits
)

// hash3 mixes three bytes into a chain bucket.
func hash3(a, b, c byte) uint32 {
	v := uint32(a)<<16 | uint32(b)<<8 | uint32(c)
	return (v * 2654435761) >> (32 - hashBits) & (hashSize - 1)
}

// blockEnd returns the end offset of the block starting at startPos[k].
func blockEnd(startPos []int32, k, inputLen int) int {
	if k+1 < len(startPos) {
		return int(startPos[k+1])
	}
	return inputLen
}

// FindMatchesRef is the brute-force reference with the same loop structure
// as the paper's Listing 3: for every position, scan the whole window
// backwards (nearest first) and keep the first strictly-longest match.
// matchLen[i] is 0 when no match of at least MinMatch exists; otherwise
// matchOff[i] is the backward distance (1..WindowSize).
func FindMatchesRef(input []byte, startPos []int32, matchLen, matchOff []int32) {
	checkMatchArgs(input, startPos, matchLen, matchOff)
	for k := range startPos {
		lo := int(startPos[k])
		hi := blockEnd(startPos, k, len(input))
		for i := lo; i < hi; i++ {
			best, bestC := 0, -1
			maxHere := hi - i
			if maxHere > MaxMatch {
				maxHere = MaxMatch
			}
			winLo := i - WindowSize
			if winLo < lo {
				winLo = lo
			}
			for c := i - 1; c >= winLo; c-- {
				limit := maxHere
				if d := i - c; limit > d {
					limit = d // no overlap: source must end at or before i
				}
				l := 0
				for l < limit && input[c+l] == input[i+l] {
					l++
				}
				if l > best {
					best, bestC = l, c
					if best == maxHere {
						break
					}
				}
			}
			if best >= MinMatch {
				matchLen[i] = int32(best)
				matchOff[i] = int32(i - bestC)
			} else {
				matchLen[i] = 0
				matchOff[i] = 0
			}
		}
	}
}

// FindMatches computes the same result as FindMatchesRef using per-block
// hash chains: only candidates sharing the first three bytes are visited,
// which cannot change the outcome because shorter candidates can never
// reach MinMatch. Candidates are walked nearest-first, matching the
// reference tie-break.
func FindMatches(input []byte, startPos []int32, matchLen, matchOff []int32) {
	checkMatchArgs(input, startPos, matchLen, matchOff)
	head := make([]int32, hashSize)
	stamp := make([]int32, hashSize)
	prev := make([]int32, len(input))
	epoch := int32(0)
	for k := range startPos {
		lo := int(startPos[k])
		hi := blockEnd(startPos, k, len(input))
		epoch++
		for i := lo; i < hi; i++ {
			best, bestC := 0, -1
			maxHere := hi - i
			if maxHere > MaxMatch {
				maxHere = MaxMatch
			}
			if maxHere >= MinMatch {
				h := hash3(input[i], input[i+1], input[i+2])
				if stamp[h] == epoch {
					winLo := i - WindowSize
					if winLo < lo {
						winLo = lo
					}
					for c := head[h]; c >= int32(winLo); c = prev[c] {
						limit := maxHere
						if d := i - int(c); limit > d {
							limit = d
						}
						l := 0
						for l < limit && input[int(c)+l] == input[i+l] {
							l++
						}
						if l > best {
							best, bestC = l, int(c)
							if best == maxHere {
								break
							}
						}
					}
				}
				// Insert i for later positions (candidates are strictly
				// earlier, so insert after searching).
				if stamp[h] == epoch {
					prev[i] = head[h]
				} else {
					stamp[h] = epoch
					prev[i] = -1
				}
				head[h] = int32(i)
			}
			if best >= MinMatch {
				matchLen[i] = int32(best)
				matchOff[i] = int32(i - bestC)
			} else {
				matchLen[i] = 0
				matchOff[i] = 0
			}
		}
	}
}

func checkMatchArgs(input []byte, startPos []int32, matchLen, matchOff []int32) {
	if len(matchLen) < len(input) || len(matchOff) < len(input) {
		panic(fmt.Sprintf("lzss: match arrays too short: %d/%d for %d bytes",
			len(matchLen), len(matchOff), len(input)))
	}
	for k, s := range startPos {
		if int(s) > len(input) || (k > 0 && s <= startPos[k-1]) || s < 0 {
			panic(fmt.Sprintf("lzss: bad startPos[%d]=%d", k, s))
		}
	}
	if len(input) > 0 && (len(startPos) == 0 || startPos[0] != 0) {
		panic("lzss: startPos must begin with 0")
	}
}

// EncodeFromMatches greedily encodes the block [lo, hi) of the batch using
// the precomputed per-position matches (batch-absolute indices). The output
// is self-contained: a uvarint of the uncompressed length followed by the
// token stream.
func EncodeFromMatches(input []byte, lo, hi int, matchLen, matchOff []int32) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(hi-lo))
	out := make([]byte, n, (hi-lo)/2+16)
	copy(out, hdr[:n])

	var flags byte
	var nflags int
	flagPos := -1
	emitFlag := func(bit byte) {
		if nflags == 0 {
			flagPos = len(out)
			out = append(out, 0)
		}
		flags |= bit << uint(nflags)
		nflags++
		out[flagPos] = flags
		if nflags == 8 {
			flags, nflags = 0, 0
		}
	}

	i := lo
	for i < hi {
		l := int(matchLen[i])
		if l >= MinMatch {
			d := int(matchOff[i])
			emitFlag(1)
			v := uint16(d-1)<<4 | uint16(l-MinMatch)
			out = append(out, byte(v>>8), byte(v))
			i += l
		} else {
			emitFlag(0)
			out = append(out, input[i])
			i++
		}
	}
	return out
}

// Compress encodes a single standalone block.
func Compress(block []byte) []byte {
	if len(block) == 0 {
		return []byte{0}
	}
	matchLen := make([]int32, len(block))
	matchOff := make([]int32, len(block))
	FindMatches(block, []int32{0}, matchLen, matchOff)
	return EncodeFromMatches(block, 0, len(block), matchLen, matchOff)
}

// ErrCorrupt is returned by Decompress for malformed input.
var ErrCorrupt = errors.New("lzss: corrupt input")

// Decompress decodes a block produced by Compress/EncodeFromMatches.
func Decompress(comp []byte) ([]byte, error) {
	n, used := binary.Uvarint(comp)
	if used <= 0 {
		return nil, fmt.Errorf("%w: bad length header", ErrCorrupt)
	}
	if n > 1<<31 {
		return nil, fmt.Errorf("%w: implausible length %d", ErrCorrupt, n)
	}
	out := make([]byte, 0, n)
	p := used
	var flags byte
	var nflags int
	for uint64(len(out)) < n {
		if nflags == 0 {
			if p >= len(comp) {
				return nil, fmt.Errorf("%w: truncated at flag byte", ErrCorrupt)
			}
			flags = comp[p]
			p++
			nflags = 8
		}
		isPair := flags&1 == 1
		flags >>= 1
		nflags--
		if isPair {
			if p+2 > len(comp) {
				return nil, fmt.Errorf("%w: truncated pair", ErrCorrupt)
			}
			v := uint16(comp[p])<<8 | uint16(comp[p+1])
			p += 2
			d := int(v>>4) + 1
			l := int(v&0xF) + MinMatch
			src := len(out) - d
			if src < 0 || src+l > len(out) {
				return nil, fmt.Errorf("%w: pair (d=%d,l=%d) out of range at %d", ErrCorrupt, d, l, len(out))
			}
			out = append(out, out[src:src+l]...)
		} else {
			if p >= len(comp) {
				return nil, fmt.Errorf("%w: truncated literal", ErrCorrupt)
			}
			out = append(out, comp[p])
			p++
		}
	}
	if uint64(len(out)) != n {
		return nil, fmt.Errorf("%w: length mismatch", ErrCorrupt)
	}
	return out, nil
}
