// Package lzss implements the LZSS compression algorithm used by the
// paper's Dedup (replacing PARSEC's gzip/bzip2, following Stein et al.
// [24]), in the batch-oriented shape the paper's Fig. 2 describes:
//
//   - a 1 MB batch holds many content-defined blocks, delimited by the
//     startPos array produced by the Rabin chunker;
//   - FindMatches computes, for every byte position of the batch, the
//     longest match strictly inside that position's block and within the
//     sliding window — this is the work the paper offloads to the GPU as a
//     single FindMatchKernel call per batch (Listing 3);
//   - EncodeFromMatches then performs the cheap sequential entropy step on
//     the CPU, exactly as the paper does ("In CPU, we used the result of
//     the kernel function to run the compression on each block").
//
// Match semantics: a match for position i is a source range [c, c+L) with
// c in the same block, i-c <= WindowSize, c+L <= i (no self-overlap, as in
// the paper's kernel which stops the search at the current position), and
// MinMatch <= L <= MaxMatch. Among longest matches the nearest source wins.
//
// Two implementations are provided and tested for exact equivalence: a
// brute-force reference with the kernel's loop structure (FindMatchesRef)
// and a hash-chain implementation (FindMatches) used both by the CPU
// compressor and as the functional body of the GPU kernel, whose *cost
// model* still charges the brute-force work a real GPU would do.
package lzss

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"

	"streamgpu/internal/pool"
)

const (
	// WindowSize is the sliding-window span in bytes (12-bit distances).
	WindowSize = 4096
	// MinMatch is the shortest encodable match.
	MinMatch = 3
	// MaxMatch is the longest encodable match (4-bit length field).
	MaxMatch = MinMatch + 15
)

const (
	hashBits = 15
	hashSize = 1 << hashBits
)

// hash3 mixes three bytes into a chain bucket.
func hash3(a, b, c byte) uint32 {
	v := uint32(a)<<16 | uint32(b)<<8 | uint32(c)
	return (v * 2654435761) >> (32 - hashBits) & (hashSize - 1)
}

// blockEnd returns the end offset of the block starting at startPos[k].
func blockEnd(startPos []int32, k, inputLen int) int {
	if k+1 < len(startPos) {
		return int(startPos[k+1])
	}
	return inputLen
}

// FindMatchesRef is the brute-force reference with the same loop structure
// as the paper's Listing 3: for every position, scan the whole window
// backwards (nearest first) and keep the first strictly-longest match.
// matchLen[i] is 0 when no match of at least MinMatch exists; otherwise
// matchOff[i] is the backward distance (1..WindowSize).
func FindMatchesRef(input []byte, startPos []int32, matchLen, matchOff []int32) {
	checkMatchArgs(input, startPos, matchLen, matchOff)
	for k := range startPos {
		lo := int(startPos[k])
		hi := blockEnd(startPos, k, len(input))
		for i := lo; i < hi; i++ {
			best, bestC := 0, -1
			maxHere := hi - i
			if maxHere > MaxMatch {
				maxHere = MaxMatch
			}
			winLo := i - WindowSize
			if winLo < lo {
				winLo = lo
			}
			for c := i - 1; c >= winLo; c-- {
				limit := maxHere
				if d := i - c; limit > d {
					limit = d // no overlap: source must end at or before i
				}
				l := 0
				for l < limit && input[c+l] == input[i+l] {
					l++
				}
				if l > best {
					best, bestC = l, c
					if best == maxHere {
						break
					}
				}
			}
			if best >= MinMatch {
				matchLen[i] = int32(best)
				matchOff[i] = int32(i - bestC)
			} else {
				matchLen[i] = 0
				matchOff[i] = 0
			}
		}
	}
}

// Matcher holds the hash-chain tables FindMatches needs, so repeated calls
// reuse them instead of reallocating ~¾ MB per batch. The zero value is
// ready to use; a Matcher must not be shared between concurrent calls.
// The streaming runtimes keep one Matcher per compress-stage replica.
type Matcher struct {
	head  [hashSize]int32
	stamp [hashSize]int32
	prev  []int32
	epoch int32
	// Scratch for AppendCompress (standalone single-block encoding).
	ml, mo []int32
	one    [1]int32
}

// NewMatcher returns a fresh Matcher.
func NewMatcher() *Matcher { return new(Matcher) }

// matcherPool backs the convenience FindMatches/Compress entry points so
// even the free functions stop allocating tables once warm.
var matcherPool = pool.New[*Matcher]("lzss.matcher", NewMatcher)

// FindMatches computes the same result as FindMatchesRef using per-block
// hash chains: only candidates sharing the first three bytes are visited,
// which cannot change the outcome because shorter candidates can never
// reach MinMatch. Candidates are walked nearest-first, matching the
// reference tie-break.
//
// This free function borrows a pooled Matcher; hot paths that own a
// replica should call (*Matcher).FindMatches directly.
func FindMatches(input []byte, startPos []int32, matchLen, matchOff []int32) {
	m := matcherPool.Get()
	m.FindMatches(input, startPos, matchLen, matchOff)
	matcherPool.Release(m)
}

// FindMatches is the reusable-state form of the package-level FindMatches;
// the result is bit-identical to FindMatchesRef. Two exact candidate-pruning
// steps keep it fast without changing any output:
//
//   - quick reject: a candidate can only beat the current best match if it
//     could be strictly longer (best < limit) and its byte at offset best
//     agrees with the target — otherwise its match length is <= best and
//     the reference would discard it too;
//   - wide compare: the common-prefix scan goes 8 bytes at a time via
//     XOR + trailing-zero count, which computes the same length.
func (m *Matcher) FindMatches(input []byte, startPos []int32, matchLen, matchOff []int32) {
	checkMatchArgs(input, startPos, matchLen, matchOff)
	m.findMatchesRange(input, startPos, 0, len(startPos), matchLen, matchOff)
}

// findMatchesRange runs the hash-chain search for blocks [k0, k1) only.
// All indices stay batch-absolute: block k covers
// [startPos[k], blockEnd(startPos, k, len(input))), and the match arrays are
// written exactly on that union of ranges. Because the chain tables are
// epoch-invalidated per block, the result for a block never depends on any
// other block — which is what makes a contiguous block range an independent
// unit of work (FindMatchesPar's lanes).
func (m *Matcher) findMatchesRange(input []byte, startPos []int32, k0, k1 int, matchLen, matchOff []int32) {
	if len(input) > cap(m.prev) {
		m.prev = make([]int32, len(input))
	}
	prev := m.prev[:cap(m.prev)]
	head, stamp := &m.head, &m.stamp
	for k := k0; k < k1; k++ {
		lo := int(startPos[k])
		hi := blockEnd(startPos, k, len(input))
		if m.epoch == math.MaxInt32 {
			// Epoch wrap: invalidate every stale stamp explicitly. In
			// practice unreachable (2^31 blocks), but cheap to be exact.
			m.stamp = [hashSize]int32{}
			m.epoch = 0
		}
		m.epoch++
		epoch := m.epoch
		for i := lo; i < hi; i++ {
			best, bestC := 0, -1
			maxHere := hi - i
			if maxHere > MaxMatch {
				maxHere = MaxMatch
			}
			if maxHere >= MinMatch {
				h := hash3(input[i], input[i+1], input[i+2])
				if stamp[h] == epoch {
					winLo := i - WindowSize
					if winLo < lo {
						winLo = lo
					}
					for c := head[h]; c >= int32(winLo); c = prev[c] {
						limit := maxHere
						if d := i - int(c); limit > d {
							limit = d
						}
						if best >= limit || input[int(c)+best] != input[i+best] {
							continue
						}
						l := matchLen8(input, int(c), i, limit)
						if l > best {
							best, bestC = l, int(c)
							if best == maxHere {
								break
							}
						}
					}
				}
				// Insert i for later positions (candidates are strictly
				// earlier, so insert after searching).
				if stamp[h] == epoch {
					prev[i] = head[h]
				} else {
					stamp[h] = epoch
					prev[i] = -1
				}
				head[h] = int32(i)
			}
			if best >= MinMatch {
				matchLen[i] = int32(best)
				matchOff[i] = int32(i - bestC)
			} else {
				matchLen[i] = 0
				matchOff[i] = 0
			}
		}
	}
}

// matchLen8 returns the length of the common prefix of input[c:] and
// input[i:], capped at limit, comparing 8 bytes at a time. Callers
// guarantee c < i, c+limit <= i and i+limit <= len(input).
func matchLen8(input []byte, c, i, limit int) int {
	l := 0
	for l+8 <= limit {
		x := binary.LittleEndian.Uint64(input[c+l:]) ^ binary.LittleEndian.Uint64(input[i+l:])
		if x != 0 {
			return l + bits.TrailingZeros64(x)>>3
		}
		l += 8
	}
	for l < limit && input[c+l] == input[i+l] {
		l++
	}
	return l
}

func checkMatchArgs(input []byte, startPos []int32, matchLen, matchOff []int32) {
	if len(matchLen) < len(input) || len(matchOff) < len(input) {
		panic(fmt.Sprintf("lzss: match arrays too short: %d/%d for %d bytes",
			len(matchLen), len(matchOff), len(input)))
	}
	for k, s := range startPos {
		if int(s) > len(input) || (k > 0 && s <= startPos[k-1]) || s < 0 {
			panic(fmt.Sprintf("lzss: bad startPos[%d]=%d", k, s))
		}
	}
	if len(input) > 0 && (len(startPos) == 0 || startPos[0] != 0) {
		panic("lzss: startPos must begin with 0")
	}
}

// EncodeFromMatches greedily encodes the block [lo, hi) of the batch using
// the precomputed per-position matches (batch-absolute indices). The output
// is self-contained: a uvarint of the uncompressed length followed by the
// token stream.
func EncodeFromMatches(input []byte, lo, hi int, matchLen, matchOff []int32) []byte {
	dst := make([]byte, 0, (hi-lo)/2+16+binary.MaxVarintLen64)
	return AppendEncode(dst, input, lo, hi, matchLen, matchOff)
}

// AppendEncode is EncodeFromMatches in appending form: the encoded block is
// appended to dst and the extended slice returned, so hot paths can grow one
// arena per batch instead of allocating per block. The bytes appended are
// identical to EncodeFromMatches' output.
func AppendEncode(dst []byte, input []byte, lo, hi int, matchLen, matchOff []int32) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(hi-lo))
	dst = append(dst, hdr[:n]...)

	var flags byte
	var nflags int
	flagPos := -1
	i := lo
	for i < hi {
		if nflags == 0 {
			flagPos = len(dst)
			dst = append(dst, 0)
		}
		l := int(matchLen[i])
		if l >= MinMatch {
			d := int(matchOff[i])
			flags |= 1 << uint(nflags)
			v := uint16(d-1)<<4 | uint16(l-MinMatch)
			dst = append(dst, byte(v>>8), byte(v))
			i += l
		} else {
			dst = append(dst, input[i])
			i++
		}
		dst[flagPos] = flags
		nflags++
		if nflags == 8 {
			flags, nflags = 0, 0
		}
	}
	return dst
}

// Compress encodes a single standalone block.
func Compress(block []byte) []byte {
	m := matcherPool.Get()
	out := m.AppendCompress(nil, block)
	matcherPool.Release(m)
	return out
}

// AppendCompress encodes a single standalone block, appending to dst, using
// the Matcher's internal match arrays as scratch. With a recycled dst this
// is the zero-allocation form of Compress.
func (m *Matcher) AppendCompress(dst []byte, block []byte) []byte {
	if len(block) == 0 {
		return append(dst, 0)
	}
	if len(block) > cap(m.ml) {
		m.ml = make([]int32, len(block))
		m.mo = make([]int32, len(block))
	}
	ml := m.ml[:len(block)]
	mo := m.mo[:len(block)]
	m.FindMatches(block, m.one[:], ml, mo)
	return AppendEncode(dst, block, 0, len(block), ml, mo)
}

// ErrCorrupt is returned by Decompress for malformed input.
var ErrCorrupt = errors.New("lzss: corrupt input")

// Decompress decodes a block produced by Compress/EncodeFromMatches.
func Decompress(comp []byte) ([]byte, error) {
	n, used := binary.Uvarint(comp)
	if used <= 0 {
		return nil, fmt.Errorf("%w: bad length header", ErrCorrupt)
	}
	if n > 1<<31 {
		return nil, fmt.Errorf("%w: implausible length %d", ErrCorrupt, n)
	}
	// Each compressed byte expands to at most MaxMatch output bytes (a
	// 2-byte pair yields <= MaxMatch, a literal yields 1), so a declared
	// length beyond that bound is corrupt — reject it before allocating,
	// or a tiny hostile input could demand gigabytes.
	if n > uint64(len(comp))*MaxMatch {
		return nil, fmt.Errorf("%w: length %d exceeds max expansion of %d input bytes", ErrCorrupt, n, len(comp))
	}
	out := make([]byte, 0, n)
	p := used
	var flags byte
	var nflags int
	for uint64(len(out)) < n {
		if nflags == 0 {
			if p >= len(comp) {
				return nil, fmt.Errorf("%w: truncated at flag byte", ErrCorrupt)
			}
			flags = comp[p]
			p++
			nflags = 8
		}
		isPair := flags&1 == 1
		flags >>= 1
		nflags--
		if isPair {
			if p+2 > len(comp) {
				return nil, fmt.Errorf("%w: truncated pair", ErrCorrupt)
			}
			v := uint16(comp[p])<<8 | uint16(comp[p+1])
			p += 2
			d := int(v>>4) + 1
			l := int(v&0xF) + MinMatch
			src := len(out) - d
			if src < 0 || src+l > len(out) {
				return nil, fmt.Errorf("%w: pair (d=%d,l=%d) out of range at %d", ErrCorrupt, d, l, len(out))
			}
			out = append(out, out[src:src+l]...)
		} else {
			if p >= len(comp) {
				return nil, fmt.Errorf("%w: truncated literal", ErrCorrupt)
			}
			out = append(out, comp[p])
			p++
		}
	}
	if uint64(len(out)) != n {
		return nil, fmt.Errorf("%w: length mismatch", ErrCorrupt)
	}
	return out, nil
}
