package lzss

import (
	"encoding/binary"
	"errors"
	"testing"
)

// TestDecompressRejectsImpossibleExpansion: a few-byte input declaring an
// output length beyond the format's maximum expansion (MaxMatch per
// compressed byte) must be rejected before the output buffer is allocated.
func TestDecompressRejectsImpossibleExpansion(t *testing.T) {
	hostile := binary.AppendUvarint(nil, 1<<30)
	hostile = append(hostile, 0, 'x')
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Decompress(hostile); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	if allocs > 5 {
		t.Errorf("hostile header cost %v allocations per run", allocs)
	}
}
