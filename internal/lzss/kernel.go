package lzss

import (
	"encoding/binary"

	"streamgpu/internal/gpu"
)

// Kernel argument layout shared by both kernel variants (mirroring
// Listing 3's parameter list):
//
//	args[0] *gpu.Buf  input       — the batch bytes
//	args[1] int       sizeInput
//	args[2] *gpu.Buf  startPoss   — int32 LE block start offsets
//	args[3] int       startPosSize
//	args[4] *gpu.Buf  matchesLength — int32 LE out
//	args[5] *gpu.Buf  matchesOffset — int32 LE out
//	args[6] *Matches  (fast kernel only) host-precomputed results
//
// Cost accounting: the paper's kernel walks the startPos array linearly to
// locate its block, then scans up to WindowSize candidates. We charge
// 2 cycles per startPos entry, ~3 cycles per candidate position in the
// window span, and ~4 cycles per matched byte.

// BruteKernel returns the faithful Listing 3 device function: every thread
// performs the full backward window scan itself. Results are bit-identical
// to FindMatchesRef. Use it in tests and small examples; its host-side
// execution cost is the real O(window) scan per byte.
func BruteKernel() *gpu.KernelSpec {
	return &gpu.KernelSpec{
		Name:          "lzss_find_match_brute",
		RegsPerThread: 28,
		Body: func(t gpu.Thread, args []any) int64 {
			input := args[0].(*gpu.Buf).Bytes()
			sizeInput := args[1].(int)
			spBuf := args[2].(*gpu.Buf).Bytes()
			startPosSize := args[3].(int)
			mlBuf := args[4].(*gpu.Buf).Bytes()
			moBuf := args[5].(*gpu.Buf).Bytes()

			i := t.GlobalX()
			if i >= sizeInput {
				return gpu.ExitCost
			}
			cycles := int64(2 * startPosSize) // linear block lookup, as in the paper
			// Locate the block containing i.
			lo, hi := 0, sizeInput
			for k := 0; k < startPosSize; k++ {
				s := int(int32(binary.LittleEndian.Uint32(spBuf[k*4:])))
				if s <= i {
					lo = s
					if k+1 < startPosSize {
						hi = int(int32(binary.LittleEndian.Uint32(spBuf[(k+1)*4:])))
					} else {
						hi = sizeInput
					}
				}
			}
			best, bestC := 0, -1
			maxHere := hi - i
			if maxHere > MaxMatch {
				maxHere = MaxMatch
			}
			winLo := i - WindowSize
			if winLo < lo {
				winLo = lo
			}
			for c := i - 1; c >= winLo; c-- {
				cycles += 3
				limit := maxHere
				if d := i - c; limit > d {
					limit = d
				}
				l := 0
				for l < limit && input[c+l] == input[i+l] {
					l++
					cycles += 4
				}
				if l > best {
					best, bestC = l, c
					if best == maxHere {
						break
					}
				}
			}
			var ml, mo int32
			if best >= MinMatch {
				ml, mo = int32(best), int32(i-bestC)
			}
			binary.LittleEndian.PutUint32(mlBuf[i*4:], uint32(ml))
			binary.LittleEndian.PutUint32(moBuf[i*4:], uint32(mo))
			return cycles + 10
		},
	}
}

// Matches carries host-precomputed match arrays into the fast kernel. Build
// one per batch with Precompute.
type Matches struct {
	Len []int32
	Off []int32
}

// Precompute runs the exact hash-chain matcher on the host for the batch,
// lane-parallel across cores (bit-identical to the sequential matcher).
// The result is what the brute-force device scan would produce.
func Precompute(batch []byte, startPos []int32) *Matches {
	m := &Matches{
		Len: make([]int32, len(batch)),
		Off: make([]int32, len(batch)),
	}
	FindMatchesPar(0, batch, startPos, m.Len, m.Off)
	return m
}

// FastKernel returns the device function used by the experiment harness:
// functionally it writes the precomputed (bit-identical) match results into
// the device buffers, while its cost model charges the window scan the
// brute-force kernel performs — so virtual timing matches BruteKernel
// without paying its host-side execution cost at megabyte scale. The
// equivalence of results and the cost band are covered by tests.
func FastKernel() *gpu.KernelSpec {
	return &gpu.KernelSpec{
		Name:          "lzss_find_match",
		RegsPerThread: 28,
		Body: func(t gpu.Thread, args []any) int64 {
			sizeInput := args[1].(int)
			spBuf := args[2].(*gpu.Buf).Bytes()
			startPosSize := args[3].(int)
			mlBuf := args[4].(*gpu.Buf).Bytes()
			moBuf := args[5].(*gpu.Buf).Bytes()
			pre := args[6].(*Matches)

			i := t.GlobalX()
			if i >= sizeInput {
				return gpu.ExitCost
			}
			binary.LittleEndian.PutUint32(mlBuf[i*4:], uint32(pre.Len[i]))
			binary.LittleEndian.PutUint32(moBuf[i*4:], uint32(pre.Off[i]))

			// Cost: block lookup + window-span scan + extension estimate.
			// The charged cost is the paper's linear startPos walk; the
			// host-side lookup itself binary-searches for speed.
			klo, khi := 0, startPosSize-1
			for klo < khi {
				mid := (klo + khi + 1) / 2
				if int(int32(binary.LittleEndian.Uint32(spBuf[mid*4:]))) <= i {
					klo = mid
				} else {
					khi = mid - 1
				}
			}
			lo := int(int32(binary.LittleEndian.Uint32(spBuf[klo*4:])))
			winLo := i - WindowSize
			if winLo < lo {
				winLo = lo
			}
			span := int64(i - winLo)
			return 2*int64(startPosSize) + 3*span + 4*int64(pre.Len[i]) + 10
		},
	}
}

// ReadMatches deserializes the kernel's int32 output buffers.
func ReadMatches(mlBuf, moBuf []byte, n int) (matchLen, matchOff []int32) {
	matchLen = make([]int32, n)
	matchOff = make([]int32, n)
	for i := 0; i < n; i++ {
		matchLen[i] = int32(binary.LittleEndian.Uint32(mlBuf[i*4:]))
		matchOff[i] = int32(binary.LittleEndian.Uint32(moBuf[i*4:]))
	}
	return
}
