package lzss

import (
	"runtime"
	"sync"

	"streamgpu/internal/pool"
)

// maxLanes caps the lane fan-out: beyond 8 lanes the per-batch work units
// (1 MB / lanes) get small enough that spawn/join overhead and cache traffic
// eat the gains, and the matcher pool would pin 8+ sets of chain tables.
const maxLanes = 8

// DefaultLanes is the GOMAXPROCS-derived lane count the pipelines use when
// the caller does not pick one: one lane per schedulable core, capped at
// maxLanes.
func DefaultLanes() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > maxLanes {
		n = maxLanes
	}
	return n
}

// laneTask is one lane's unit of work: a contiguous block range of the batch
// plus the shared output arrays. run is built once per task (capturing only
// the task pointer) so spawning a lane is `go t.run()` — a no-argument
// func value, which the runtime starts without allocating a closure.
type laneTask struct {
	m        *Matcher
	input    []byte
	startPos []int32
	k0, k1   int
	matchLen []int32
	matchOff []int32
	wg       *sync.WaitGroup
	run      func()
}

// clear drops the task's references to caller-owned memory so a pooled
// scratch never pins a batch past the call.
func (t *laneTask) clear() {
	t.m = nil
	t.input = nil
	t.startPos = nil
	t.matchLen = nil
	t.matchOff = nil
}

// parScratch is the reusable spawn state behind FindMatchesPar: the lane
// tasks (with their prebuilt run closures) and the join group. Pooled so a
// warm caller runs the whole fan-out/join with zero heap allocations.
type parScratch struct {
	tasks []*laneTask
	wg    sync.WaitGroup
}

// grow ensures at least n lane tasks exist.
func (s *parScratch) grow(n int) {
	for len(s.tasks) < n {
		t := &laneTask{wg: &s.wg}
		t.run = func() {
			t.m.findMatchesRange(t.input, t.startPos, t.k0, t.k1, t.matchLen, t.matchOff)
			t.wg.Done()
		}
		s.tasks = append(s.tasks, t)
	}
}

var parPool = pool.New[*parScratch]("lzss.par", func() *parScratch { return new(parScratch) })

// laneCut returns the first block index whose start position is >= the
// byte-proportional target for lane boundary i of lanes — the partition that
// balances lanes by bytes, not block count (Rabin blocks vary widely in
// size). laneCut(0)=0 and laneCut(lanes)=len(startPos); cuts are monotone, so
// a lane can be empty when blocks are huge relative to the batch.
func laneCut(i, lanes int, input []byte, startPos []int32) int {
	if i <= 0 {
		return 0
	}
	if i >= lanes {
		return len(startPos)
	}
	target := int32(uint64(len(input)) * uint64(i) / uint64(lanes))
	lo, hi := 0, len(startPos)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if startPos[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// FindMatchesPar computes exactly the bytes (*Matcher).FindMatches computes,
// split across up to lanes concurrent matchers. Correctness rests on the
// core property of the match semantics: a match never crosses a startPos
// boundary, and the chain tables are epoch-invalidated per block, so the
// per-block output is a pure function of that block's bytes. Partitioning
// the blocks into contiguous lanes therefore changes scheduling only — each
// lane writes the disjoint matchLen/matchOff region its blocks own, and the
// merged result is bit-identical to the sequential pass (proven against the
// equivalence harness in lzss_par_test.go).
//
// lanes <= 0 selects DefaultLanes(). The call borrows lane matchers and the
// spawn scratch from package pools and blocks until every lane finishes; a
// warm call performs no heap allocation.
func FindMatchesPar(lanes int, input []byte, startPos []int32, matchLen, matchOff []int32) {
	checkMatchArgs(input, startPos, matchLen, matchOff)
	if lanes <= 0 {
		lanes = DefaultLanes()
	}
	if lanes > maxLanes {
		lanes = maxLanes
	}
	if lanes > len(startPos) {
		lanes = len(startPos)
	}
	if lanes <= 1 {
		m := matcherPool.Get()
		m.findMatchesRange(input, startPos, 0, len(startPos), matchLen, matchOff)
		matcherPool.Release(m)
		return
	}

	sc := parPool.Get()
	sc.grow(lanes)
	spawned := 0
	k0 := 0
	for i := 0; i < lanes; i++ {
		k1 := laneCut(i+1, lanes, input, startPos)
		if k1 <= k0 {
			continue
		}
		t := sc.tasks[spawned]
		t.m = matcherPool.Get()
		t.input = input
		t.startPos = startPos
		t.k0, t.k1 = k0, k1
		t.matchLen = matchLen
		t.matchOff = matchOff
		spawned++
		k0 = k1
	}
	// Lanes 1..spawned-1 run on their own goroutines; lane 0 runs inline so
	// the caller's core is never idle during the join.
	sc.wg.Add(spawned - 1)
	for i := 1; i < spawned; i++ {
		go sc.tasks[i].run()
	}
	t0 := sc.tasks[0]
	t0.m.findMatchesRange(t0.input, t0.startPos, t0.k0, t0.k1, t0.matchLen, t0.matchOff)
	sc.wg.Wait()
	for i := 0; i < spawned; i++ {
		t := sc.tasks[i]
		matcherPool.Release(t.m)
		t.clear()
	}
	parPool.Release(sc)
}
