package lzss

import (
	"bytes"
	"testing"

	"streamgpu/internal/pool"
)

// TestMatcherFindMatchesAllocs pins the reusable matcher's steady state to
// zero heap allocations per batch.
func TestMatcherFindMatchesAllocs(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	input := textLike(64<<10, 1)
	startPos := []int32{0, 16 << 10, 40 << 10}
	ml := make([]int32, len(input))
	mo := make([]int32, len(input))
	m := NewMatcher()
	m.FindMatches(input, startPos, ml, mo) // warm the prev table
	allocs := testing.AllocsPerRun(10, func() {
		m.FindMatches(input, startPos, ml, mo)
	})
	if allocs != 0 {
		t.Fatalf("Matcher.FindMatches allocates %v per batch, want 0", allocs)
	}
}

// TestMatcherAppendCompressAllocs pins the standalone block encoder: with a
// warm matcher and a recycled destination it must not allocate.
func TestMatcherAppendCompressAllocs(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	block := textLike(8<<10, 2)
	m := NewMatcher()
	dst := m.AppendCompress(nil, block) // warm scratch and learn output size
	allocs := testing.AllocsPerRun(10, func() {
		dst = m.AppendCompress(dst[:0], block)
	})
	if allocs != 0 {
		t.Fatalf("Matcher.AppendCompress allocates %v per block, want 0", allocs)
	}
}

// TestAppendEncodeMatchesEncodeFromMatches checks the appending encoder
// emits byte-identical output.
func TestAppendEncodeMatchesEncodeFromMatches(t *testing.T) {
	input := textLike(32<<10, 3)
	startPos := []int32{0, 8 << 10, 20 << 10}
	ml := make([]int32, len(input))
	mo := make([]int32, len(input))
	FindMatches(input, startPos, ml, mo)
	for k := range startPos {
		lo := int(startPos[k])
		hi := blockEnd(startPos, k, len(input))
		want := EncodeFromMatches(input, lo, hi, ml, mo)
		got := AppendEncode(nil, input, lo, hi, ml, mo)
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d: AppendEncode differs from EncodeFromMatches", k)
		}
		// Appending after a prefix must leave the prefix intact.
		pre := append([]byte{0xAA, 0xBB}, nil...)
		full := AppendEncode(pre, input, lo, hi, ml, mo)
		if !bytes.Equal(full[:2], []byte{0xAA, 0xBB}) || !bytes.Equal(full[2:], want) {
			t.Fatalf("block %d: AppendEncode with prefix corrupted output", k)
		}
	}
}

// TestMatcherReuseAcrossInputs checks a matcher reused across different
// inputs matches the reference each time (the epoch stamping must isolate
// runs).
func TestMatcherReuseAcrossInputs(t *testing.T) {
	m := NewMatcher()
	for trial := 0; trial < 5; trial++ {
		input := textLike(4<<10+trial*997, int64(trial))
		startPos := []int32{0, int32(len(input) / 2)}
		ml := make([]int32, len(input))
		mo := make([]int32, len(input))
		m.FindMatches(input, startPos, ml, mo)
		refML := make([]int32, len(input))
		refMO := make([]int32, len(input))
		FindMatchesRef(input, startPos, refML, refMO)
		for i := range input {
			if ml[i] != refML[i] || mo[i] != refMO[i] {
				t.Fatalf("trial %d pos %d: matcher (%d,%d) != ref (%d,%d)",
					trial, i, ml[i], mo[i], refML[i], refMO[i])
			}
		}
	}
}
