package lzss

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"streamgpu/internal/des"
	"streamgpu/internal/gpu"
	"streamgpu/internal/sha1x"
)

// textLike produces compressible pseudo-text.
func textLike(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"stream", "parallel", "the", "kernel", "batch", "pipeline",
		"memory", "gpu", "and", "of", "processing", "data", "with", "for"}
	var b bytes.Buffer
	for b.Len() < n {
		b.WriteString(words[rng.Intn(len(words))])
		b.WriteByte(' ')
	}
	return b.Bytes()[:n]
}

func TestCompressRoundTripText(t *testing.T) {
	data := textLike(50_000, 1)
	comp := Compress(data)
	if len(comp) >= len(data) {
		t.Errorf("text should compress: %d -> %d", len(data), len(comp))
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestCompressRoundTripRandom(t *testing.T) {
	data := make([]byte, 10_000)
	rand.New(rand.NewSource(2)).Read(data)
	got, err := Decompress(Compress(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch on random data")
	}
}

func TestCompressEdgeCases(t *testing.T) {
	cases := [][]byte{
		{},
		{0},
		{1, 2, 3},
		bytes.Repeat([]byte{'a'}, 1),
		bytes.Repeat([]byte{'a'}, 2),
		bytes.Repeat([]byte{'a'}, 3),
		bytes.Repeat([]byte{'a'}, 100),
		bytes.Repeat([]byte{'a'}, WindowSize+100),
		[]byte(strings.Repeat("ab", 5000)),
	}
	for i, data := range cases {
		got, err := Decompress(Compress(data))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("case %d: round trip mismatch (len %d)", i, len(data))
		}
	}
}

func TestRunsCompressWell(t *testing.T) {
	data := bytes.Repeat([]byte{'x'}, 10_000)
	comp := Compress(data)
	// No-overlap matches cap at MaxMatch bytes per 2-byte token; expect
	// roughly (2+flag)/18 ≈ 12% plus warm-up.
	if len(comp) > len(data)/4 {
		t.Errorf("run of 10000 compressed to %d, want <= %d", len(comp), len(data)/4)
	}
	got, err := Decompress(comp)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("run round trip failed")
	}
}

func TestDecompressCorruptInputs(t *testing.T) {
	valid := Compress(textLike(1000, 3))
	cases := map[string][]byte{
		"empty":            {},
		"truncated header": {0xFF},
		"truncated body":   valid[:len(valid)/2],
		"length only":      {10},
	}
	for name, data := range cases {
		if _, err := Decompress(data); err == nil {
			t.Errorf("%s: Decompress should fail", name)
		}
	}
}

func TestDecompressBadDistance(t *testing.T) {
	// Handcraft: length 5, one pair token with distance 100 at position 0.
	comp := []byte{5, 0x01, 0x06, 0x30} // uvarint 5, flags=1, pair d=100? craft below
	// pair value: d-1=99 (<<4) | len-3=0 → v = 99<<4 = 0x630
	if _, err := Decompress(comp); err == nil {
		t.Error("pair referencing before start must fail")
	}
}

func TestFindMatchesEquivalenceStructured(t *testing.T) {
	// Brute force and hash chains must agree exactly, including the
	// nearest-longest tie-break, across data shapes.
	shapes := map[string][]byte{
		"text":     textLike(20_000, 4),
		"random":   randomBytes(20_000, 5),
		"zeros":    make([]byte, 8_000),
		"period7":  periodic(8_000, 7),
		"period19": periodic(8_000, 19),
		"mixed":    append(textLike(5_000, 6), make([]byte, 5_000)...),
	}
	for name, data := range shapes {
		t.Run(name, func(t *testing.T) {
			startPos := []int32{0, int32(len(data) / 3), int32(len(data) / 2)}
			la, oa := make([]int32, len(data)), make([]int32, len(data))
			lb, ob := make([]int32, len(data)), make([]int32, len(data))
			FindMatchesRef(data, startPos, la, oa)
			FindMatches(data, startPos, lb, ob)
			for i := range data {
				if la[i] != lb[i] || oa[i] != ob[i] {
					t.Fatalf("pos %d: ref=(%d,%d) fast=(%d,%d)", i, la[i], oa[i], lb[i], ob[i])
				}
			}
		})
	}
}

func TestFindMatchesRespectsBlockBoundaries(t *testing.T) {
	// Identical content in two blocks: matches must never cross the
	// boundary (the guarantee the paper needs for block-level dedup).
	half := textLike(4_000, 7)
	data := append(append([]byte{}, half...), half...)
	startPos := []int32{0, int32(len(half))}
	ml, mo := make([]int32, len(data)), make([]int32, len(data))
	FindMatches(data, startPos, ml, mo)
	for i := len(half); i < len(data); i++ {
		if ml[i] > 0 && i-int(mo[i]) < len(half) {
			t.Fatalf("pos %d: match source %d crosses block boundary %d", i, i-int(mo[i]), len(half))
		}
	}
}

func TestEncodePerBlockRoundTrip(t *testing.T) {
	// Batch of 4 blocks; encode each block from batch-wide matches and
	// verify each decompresses to its slice.
	data := textLike(30_000, 8)
	startPos := []int32{0, 7_000, 7_100, 21_000}
	ml, mo := make([]int32, len(data)), make([]int32, len(data))
	FindMatches(data, startPos, ml, mo)
	for k := range startPos {
		lo := int(startPos[k])
		hi := blockEnd(startPos, k, len(data))
		comp := EncodeFromMatches(data, lo, hi, ml, mo)
		got, err := Decompress(comp)
		if err != nil {
			t.Fatalf("block %d: %v", k, err)
		}
		if !bytes.Equal(got, data[lo:hi]) {
			t.Fatalf("block %d: round trip mismatch", k)
		}
	}
}

func TestBruteKernelMatchesRef(t *testing.T) {
	data := textLike(6_000, 9)
	startPos := []int32{0, 2_000, 2_500}
	wantLen, wantOff := make([]int32, len(data)), make([]int32, len(data))
	FindMatchesRef(data, startPos, wantLen, wantOff)

	gotLen, gotOff := runKernel(t, BruteKernel(), data, startPos, nil)
	for i := range data {
		if gotLen[i] != wantLen[i] || gotOff[i] != wantOff[i] {
			t.Fatalf("pos %d: kernel=(%d,%d) ref=(%d,%d)", i, gotLen[i], gotOff[i], wantLen[i], wantOff[i])
		}
	}
}

func TestFastKernelMatchesBrute(t *testing.T) {
	data := textLike(6_000, 10)
	startPos := []int32{0, 1_000, 4_096}
	pre := Precompute(data, startPos)
	fastLen, fastOff := runKernel(t, FastKernel(), data, startPos, pre)
	bruteLen, bruteOff := runKernel(t, BruteKernel(), data, startPos, nil)
	for i := range data {
		if fastLen[i] != bruteLen[i] || fastOff[i] != bruteOff[i] {
			t.Fatalf("pos %d: fast=(%d,%d) brute=(%d,%d)", i, fastLen[i], fastOff[i], bruteLen[i], bruteOff[i])
		}
	}
}

func TestFastKernelCostNearBrute(t *testing.T) {
	// The fast kernel's cost model should land within 3× of the brute
	// kernel's measured cycles on text-like data.
	data := textLike(4_096, 11)
	startPos := []int32{0, 2_048}
	fast := kernelTime(t, FastKernel(), data, startPos, Precompute(data, startPos))
	brute := kernelTime(t, BruteKernel(), data, startPos, nil)
	lo, hi := brute/3, brute*3
	if fast < lo || fast > hi {
		t.Errorf("fast kernel virtual time %v outside [%v, %v] of brute %v", fast, lo, hi, brute)
	}
}

// runKernel executes a FindMatch kernel variant on the simulated GPU.
func runKernel(t *testing.T, spec *gpu.KernelSpec, data []byte, startPos []int32, pre *Matches) ([]int32, []int32) {
	t.Helper()
	ml, mo, _ := execKernel(t, spec, data, startPos, pre)
	return ml, mo
}

func kernelTime(t *testing.T, spec *gpu.KernelSpec, data []byte, startPos []int32, pre *Matches) des.Time {
	t.Helper()
	_, _, end := execKernel(t, spec, data, startPos, pre)
	return end
}

func execKernel(t *testing.T, spec *gpu.KernelSpec, data []byte, startPos []int32, pre *Matches) ([]int32, []int32, des.Time) {
	t.Helper()
	sim := des.New()
	dev := gpu.NewDevice(sim, gpu.TitanXPSpec(), 0)
	mlHost := gpu.NewPinnedBuf(int64(len(data) * 4))
	moHost := gpu.NewPinnedBuf(int64(len(data) * 4))
	sim.Spawn("host", func(p *des.Proc) {
		dIn := mustMalloc(dev, int64(len(data)))
		dSp := mustMalloc(dev, int64(len(startPos)*4))
		dMl := mustMalloc(dev, int64(len(data)*4))
		dMo := mustMalloc(dev, int64(len(data)*4))
		spBytes := make([]byte, len(startPos)*4)
		sha1x.PutStartPos(spBytes, startPos)
		st := dev.NewStream("")
		evs := []*des.Event{
			st.CopyH2D(p, dIn, 0, gpu.WrapHost(data), 0, int64(len(data))),
			st.CopyH2D(p, dSp, 0, gpu.WrapHost(spBytes), 0, int64(len(spBytes))),
		}
		args := []any{dIn, len(data), dSp, len(startPos), dMl, dMo}
		if pre != nil {
			args = append(args, pre)
		}
		evs = append(evs,
			st.Launch(p, spec.Bind(args...), gpu.Grid1D(len(data), 128)),
			st.CopyD2H(p, mlHost, 0, dMl, 0, int64(len(data)*4)),
			st.CopyD2H(p, moHost, 0, dMo, 0, int64(len(data)*4)),
		)
		if err := gpu.WaitErr(p, evs...); err != nil {
			panic(err)
		}
	})
	end, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	ml, mo := ReadMatches(mlHost.Data, moHost.Data, len(data))
	return ml, mo, end
}

// Property: compress/decompress is the identity on arbitrary bytes.
func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		got, err := Decompress(Compress(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: FindMatches == FindMatchesRef for random data and random block
// boundaries.
func TestMatchEquivalenceProperty(t *testing.T) {
	f := func(seed int64, sizeSeed uint16, alphaSeed uint8) bool {
		size := int(sizeSeed)%6000 + 1
		alpha := int(alphaSeed)%8 + 2 // small alphabets make many matches
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(rng.Intn(alpha))
		}
		startPos := []int32{0}
		for p := rng.Intn(500) + 1; p < size; p += rng.Intn(2000) + 1 {
			startPos = append(startPos, int32(p))
		}
		la, oa := make([]int32, size), make([]int32, size)
		lb, ob := make([]int32, size), make([]int32, size)
		FindMatchesRef(data, startPos, la, oa)
		FindMatches(data, startPos, lb, ob)
		for i := 0; i < size; i++ {
			if la[i] != lb[i] || oa[i] != ob[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: per-block encoding from batch matches always round-trips.
func TestBatchEncodeProperty(t *testing.T) {
	f := func(seed int64, sizeSeed uint16) bool {
		size := int(sizeSeed)%8000 + 10
		rng := rand.New(rand.NewSource(seed))
		data := textLike(size, seed)
		startPos := []int32{0}
		for p := rng.Intn(1000) + 1; p < size; p += rng.Intn(3000) + 1 {
			startPos = append(startPos, int32(p))
		}
		ml, mo := make([]int32, size), make([]int32, size)
		FindMatches(data, startPos, ml, mo)
		for k := range startPos {
			lo := int(startPos[k])
			hi := blockEnd(startPos, k, size)
			got, err := Decompress(EncodeFromMatches(data, lo, hi, ml, mo))
			if err != nil || !bytes.Equal(got, data[lo:hi]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func randomBytes(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func periodic(n, period int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i % period)
	}
	return b
}

func BenchmarkFindMatches1MBText(b *testing.B) {
	data := textLike(1<<20, 42)
	startPos := []int32{0}
	for p := 2048; p < len(data); p += 2048 {
		startPos = append(startPos, int32(p))
	}
	ml, mo := make([]int32, len(data)), make([]int32, len(data))
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindMatches(data, startPos, ml, mo)
	}
}

func BenchmarkCompress64KB(b *testing.B) {
	data := textLike(64<<10, 43)
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		Compress(data)
	}
}

func BenchmarkDecompress64KB(b *testing.B) {
	comp := Compress(textLike(64<<10, 44))
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp); err != nil {
			b.Fatal(err)
		}
	}
}

// mustMalloc allocates or panics; inside a des process the panic becomes a
// Sim.Run error, which the tests treat as fatal.
func mustMalloc(d *gpu.Device, n int64) *gpu.Buf {
	b, err := d.Malloc(n)
	if err != nil {
		panic(err)
	}
	return b
}
