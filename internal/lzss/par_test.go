package lzss

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"streamgpu/internal/pool"
)

// parRef computes the sequential reference result for an equivalence check.
func parRef(input []byte, startPos []int32) (ml, mo []int32) {
	ml = make([]int32, len(input))
	mo = make([]int32, len(input))
	m := NewMatcher()
	m.FindMatches(input, startPos, ml, mo)
	return ml, mo
}

// checkParEquivalence asserts FindMatchesPar is bit-exact against the
// sequential matcher for every lane count 1..maxLanes.
func checkParEquivalence(t *testing.T, name string, input []byte, startPos []int32) {
	t.Helper()
	refML, refMO := parRef(input, startPos)
	for lanes := 1; lanes <= maxLanes; lanes++ {
		gotML := make([]int32, len(input))
		gotMO := make([]int32, len(input))
		// Poison the output arrays: any byte the parallel path fails to
		// write (a lost block between lane cuts) must show up, not hide
		// behind a zero the reference also wrote.
		for i := range gotML {
			gotML[i] = -7
			gotMO[i] = -7
		}
		FindMatchesPar(lanes, input, startPos, gotML, gotMO)
		for i := range input {
			if gotML[i] != refML[i] || gotMO[i] != refMO[i] {
				t.Fatalf("%s lanes=%d pos %d: par (%d,%d) != seq (%d,%d)",
					name, lanes, i, gotML[i], gotMO[i], refML[i], refMO[i])
			}
		}
	}
}

// TestFindMatchesParEquivalenceStructured covers the data shapes of the
// sequential equivalence harness plus the hostile startPos layouts the lane
// partitioner must survive: a single block spanning the whole batch, a block
// per byte, an empty trailing block, and more blocks than lanes by one.
func TestFindMatchesParEquivalenceStructured(t *testing.T) {
	data := textLike(40_000, 11)
	layouts := map[string][]int32{
		"block==batch":    {0},
		"thirds":          {0, int32(len(data) / 3), int32(len(data) / 2)},
		"empty-tail":      {0, int32(len(data) / 2), int32(len(data))},
		"nine-blocks":     {0, 1, 2, 3, 5000, 10000, 20000, 30000, 39999},
		"window-straddle": {0, WindowSize - 1, WindowSize, WindowSize + 1, 3 * WindowSize},
	}
	for name, sp := range layouts {
		t.Run(name, func(t *testing.T) {
			checkParEquivalence(t, name, data, sp)
		})
	}

	t.Run("single-byte-blocks", func(t *testing.T) {
		small := periodic(300, 5)
		sp := make([]int32, len(small))
		for i := range sp {
			sp[i] = int32(i)
		}
		checkParEquivalence(t, "single-byte-blocks", small, sp)
	})
	t.Run("empty-input", func(t *testing.T) {
		checkParEquivalence(t, "empty-input", nil, nil)
	})
	t.Run("shapes", func(t *testing.T) {
		shapes := map[string][]byte{
			"random":  randomBytes(20_000, 12),
			"zeros":   make([]byte, 8_000),
			"period7": periodic(8_000, 7),
		}
		for name, d := range shapes {
			sp := []int32{0}
			for p := 777; p < len(d); p += 777 {
				sp = append(sp, int32(p))
			}
			checkParEquivalence(t, name, d, sp)
		}
	})
}

// TestFindMatchesParFuzzCorpus replays the committed dedup fuzz seeds (the
// repo's only checked-in hostile byte corpus) as raw match-finding input.
func TestFindMatchesParFuzzCorpus(t *testing.T) {
	dir := filepath.Join("..", "dedup", "testdata", "fuzz", "FuzzRestore")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("no fuzz corpus: %v", err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			continue
		}
		sp := []int32{0}
		for p := 7; p < len(data); p += 13 {
			sp = append(sp, int32(p))
		}
		checkParEquivalence(t, e.Name(), data, sp)
	}
}

// TestFindMatchesParProperty is the randomized equivalence property: for
// arbitrary small-alphabet data, arbitrary block layouts, and arbitrary lane
// counts, the parallel result is bit-exact.
func TestFindMatchesParProperty(t *testing.T) {
	f := func(seed int64, sizeSeed uint16, alphaSeed, laneSeed uint8) bool {
		size := int(sizeSeed)%6000 + 1
		alpha := int(alphaSeed)%8 + 2
		lanes := int(laneSeed)%maxLanes + 1
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(rng.Intn(alpha))
		}
		startPos := []int32{0}
		for p := rng.Intn(500) + 1; p < size; p += rng.Intn(2000) + 1 {
			startPos = append(startPos, int32(p))
		}
		refML, refMO := parRef(data, startPos)
		gotML := make([]int32, size)
		gotMO := make([]int32, size)
		FindMatchesPar(lanes, data, startPos, gotML, gotMO)
		for i := 0; i < size; i++ {
			if gotML[i] != refML[i] || gotMO[i] != refMO[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLaneCutPartition checks the byte-balanced partitioner yields a
// monotone, complete cover of the block index space.
func TestLaneCutPartition(t *testing.T) {
	data := textLike(50_000, 3)
	startPos := []int32{0}
	for p := 617; p < len(data); p += 617 {
		startPos = append(startPos, int32(p))
	}
	for lanes := 1; lanes <= maxLanes; lanes++ {
		prev := 0
		if laneCut(0, lanes, data, startPos) != 0 {
			t.Fatalf("lanes=%d: laneCut(0) != 0", lanes)
		}
		for i := 1; i <= lanes; i++ {
			c := laneCut(i, lanes, data, startPos)
			if c < prev {
				t.Fatalf("lanes=%d: cut %d=%d below previous %d", lanes, i, c, prev)
			}
			prev = c
		}
		if prev != len(startPos) {
			t.Fatalf("lanes=%d: final cut %d != %d blocks", lanes, prev, len(startPos))
		}
	}
}

// TestFindMatchesParAllocs pins the warm lane fan-out to zero heap
// allocations per batch: the lane tasks, their spawn closures, and the lane
// matchers all come from pools, and goroutine start/join reuses runtime
// structures once warm.
func TestFindMatchesParAllocs(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	input := textLike(256<<10, 21)
	startPos := []int32{0}
	for p := 2048; p < len(input); p += 2048 {
		startPos = append(startPos, int32(p))
	}
	ml := make([]int32, len(input))
	mo := make([]int32, len(input))
	for _, lanes := range []int{2, 4} {
		// Warm pools, matcher tables and the runtime's goroutine free list.
		for i := 0; i < 3; i++ {
			FindMatchesPar(lanes, input, startPos, ml, mo)
		}
		allocs := testing.AllocsPerRun(10, func() {
			FindMatchesPar(lanes, input, startPos, ml, mo)
		})
		if allocs != 0 {
			t.Fatalf("FindMatchesPar(lanes=%d) allocates %v per batch, want 0", lanes, allocs)
		}
	}
}
