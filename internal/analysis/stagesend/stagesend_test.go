package stagesend_test

import (
	"testing"

	"streamgpu/internal/analysis/analysistest"
	"streamgpu/internal/analysis/stagesend"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, stagesend.Analyzer, "testdata/flagged", "testdata/clean")
}
