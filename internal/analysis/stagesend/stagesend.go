// Package stagesend defines an analyzer enforcing the drain-to-EOS design
// inside pipeline stage bodies: a raw channel send in a stage body must be
// the communication of a select that also watches a cancel/done channel.
//
// When a stream is canceled (stage failure, context expiry), downstream
// consumers stop reading. A stage blocked on a bare `ch <- v` at that moment
// deadlocks the drain — the precise failure mode the ff runtime's
// cancel+drain protocol exists to avoid. Stage bodies should communicate
// through emit/SendOut (which the runtime guards); when they must use a raw
// channel, the send has to be
//
//	select {
//	case ch <- v:
//	case <-done:
//	}
//
// The analyzer inspects function literals passed as stage bodies to the
// core DSL (Stage, StageErr, StageWorkers), the tbb pipeline (NewFilter)
// and the ff helpers (Source, Sink), and flags sends that are not select
// communications guarded by a receive.
package stagesend

import (
	"go/ast"
	"go/types"

	"streamgpu/internal/analysis"
)

// stageConstructors maps package path -> function/method names whose
// function-literal arguments are stage bodies.
var stageConstructors = map[string]map[string]bool{
	"streamgpu/internal/core": {"Stage": true, "StageErr": true, "StageWorkers": true},
	"streamgpu/internal/tbb":  {"NewFilter": true},
	"streamgpu/internal/ff":   {"Source": true, "Sink": true},
}

// Analyzer flags unguarded channel sends inside pipeline stage bodies.
var Analyzer = &analysis.Analyzer{
	Name: "stagesend",
	Doc: "channel sends inside pipeline stage bodies must be select communications that also " +
		"watch a cancel/done channel, or the stream's cancel+drain protocol can deadlock",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isStageConstructor(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkStageBody(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

// isStageConstructor reports whether call builds a pipeline stage from a
// function body.
func isStageConstructor(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	names := stageConstructors[fn.Pkg().Path()]
	return names != nil && names[fn.Name()]
}

// checkStageBody flags every unguarded send in one stage body, including
// sends in closures the body creates (they run in stage context too).
func checkStageBody(pass *analysis.Pass, lit *ast.FuncLit) {
	analysis.WithStack(lit.Body, func(n ast.Node, stack []ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		if !isGuardedSelectComm(send, stack) {
			pass.Reportf(send.Pos(), "channel send in pipeline stage body must select on the stream's cancel/done channel")
		}
		return true
	})
}

// isGuardedSelectComm reports whether send is the Comm of a select clause
// whose select also has at least one receive clause (the cancel watch).
func isGuardedSelectComm(send *ast.SendStmt, stack []ast.Node) bool {
	// Ancestors of a select communication: ..., SelectStmt, BlockStmt
	// (the select's body), CommClause.
	if len(stack) < 3 {
		return false
	}
	clause, ok := stack[len(stack)-1].(*ast.CommClause)
	if !ok || clause.Comm != ast.Stmt(send) {
		return false
	}
	sel, ok := stack[len(stack)-3].(*ast.SelectStmt)
	if !ok {
		return false
	}
	for _, s := range sel.Body.List {
		cc, ok := s.(*ast.CommClause)
		if !ok || cc == clause || cc.Comm == nil {
			continue
		}
		if isReceive(cc.Comm) {
			return true
		}
	}
	return false
}

// isReceive reports whether a select communication is a channel receive.
func isReceive(comm ast.Stmt) bool {
	switch c := comm.(type) {
	case *ast.ExprStmt:
		_, ok := ast.Unparen(c.X).(*ast.UnaryExpr)
		return ok
	case *ast.AssignStmt:
		return true // v := <-ch / v, ok := <-ch
	}
	return false
}
