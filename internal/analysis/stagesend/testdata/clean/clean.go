// Fixture: guarded sends in stage bodies, and raw sends outside any stage —
// nothing here should be flagged.
package fixture

import (
	"streamgpu/internal/core"
	"streamgpu/internal/ff"
)

func guarded(t *core.ToStream, out chan any, done <-chan struct{}) {
	t.Stage(func(item any, emit func(any)) {
		select {
		case out <- item:
		case <-done:
		}
	})
}

func guardedOkForm(t *core.ToStream, out chan any, done <-chan struct{}) {
	t.Stage(func(item any, emit func(any)) {
		select {
		case out <- item:
		case _, ok := <-done:
			_ = ok
		}
	})
}

func emitOnly(t *core.ToStream) {
	t.Stage(func(item any, emit func(any)) {
		emit(item) // the runtime-guarded path; no raw send at all
	})
}

func sinkGuarded(out chan any, done <-chan struct{}) ff.Node {
	return ff.Sink(func(task any) {
		select {
		case out <- task:
		case <-done:
		}
	})
}

// plainSend is not a stage body: raw sends are fine outside pipelines.
func plainSend(out chan any, v any) {
	out <- v
}
