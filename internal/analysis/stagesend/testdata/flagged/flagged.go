// Fixture: raw channel sends in stage bodies with no cancel guard.
package fixture

import (
	"streamgpu/internal/core"
	"streamgpu/internal/ff"
	"streamgpu/internal/tbb"
)

func unguarded(t *core.ToStream, out chan any) {
	t.Stage(func(item any, emit func(any)) {
		out <- item // want `select`
	})
}

func unguardedSelect(t *core.ToStream, out chan any) {
	t.Stage(func(item any, emit func(any)) {
		select {
		case out <- item: // want `select`
		default:
		}
	})
}

func unguardedClosure(t *core.ToStream, out chan any) {
	t.Stage(func(item any, emit func(any)) {
		flush := func() {
			out <- item // want `select`
		}
		flush()
	})
}

func sink(out chan any) ff.Node {
	return ff.Sink(func(task any) {
		out <- task // want `select`
	})
}

func filter(out chan any) *tbb.Filter {
	return tbb.NewFilter(tbb.Serial, func(item any) any {
		out <- item // want `select`
		return item
	})
}
