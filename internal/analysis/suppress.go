package analysis

import (
	"go/token"
	"strings"
)

// Suppression comments let a finding be acknowledged in place:
//
//	s.sessWG.Wait() //streamvet:ignore ctxprop shutdown already cancelled every session ctx
//
// The directive names exactly one analyzer and must carry a reason — a
// bare ignore is itself a diagnostic, so the tree can never accumulate
// unexplained exemptions. A directive covers diagnostics of that analyzer
// on its own line or on the line directly below (for the comment-above
// style). Matched diagnostics stay in the output marked Suppressed (and
// appear in -json) but do not fail the run.

const ignorePrefix = "streamvet:ignore"

// ignoreKey addresses one suppressible line.
type ignoreKey struct {
	file     string // full filename as recorded in the FileSet
	line     int
	analyzer string
}

// collectIgnores parses every suppression directive in pkgs. known is the
// set of analyzer names the run recognizes; directives outside it are
// malformed (catches typos that would otherwise silently suppress
// nothing). Returns the suppression index (key → reason) and a diagnostic
// per malformed directive.
func collectIgnores(pkgs []*Package, known map[string]bool) (map[ignoreKey]string, []Diagnostic) {
	index := make(map[ignoreKey]string)
	var malformed []Diagnostic
	seen := make(map[token.Pos]bool) // a file shared by two packages parses once per Fset, but guard anyway
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
					if !ok {
						continue
					}
					if seen[c.Pos()] {
						continue
					}
					seen[c.Pos()] = true
					bad := func(msg string) {
						malformed = append(malformed, Diagnostic{
							Pos: c.Pos(), Message: msg, Analyzer: "streamvet",
						})
					}
					fields := strings.Fields(text)
					if len(fields) == 0 {
						bad("streamvet:ignore needs an analyzer name and a reason")
						continue
					}
					name := fields[0]
					if !known[name] {
						bad("streamvet:ignore names unknown analyzer " + name)
						continue
					}
					reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), name))
					if reason == "" {
						bad("streamvet:ignore " + name + " needs a reason")
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					index[ignoreKey{pos.Filename, pos.Line, name}] = reason
				}
			}
		}
	}
	return index, malformed
}

// applySuppressions marks every diagnostic covered by a directive on its
// line or the line above.
func applySuppressions(fset *token.FileSet, diags []Diagnostic, index map[ignoreKey]string) {
	if len(index) == 0 {
		return
	}
	for i := range diags {
		if diags[i].Analyzer == "streamvet" {
			continue // malformed-directive findings are not suppressible
		}
		pos := fset.Position(diags[i].Pos)
		for _, line := range [2]int{pos.Line, pos.Line - 1} {
			if reason, ok := index[ignoreKey{pos.Filename, line, diags[i].Analyzer}]; ok {
				diags[i].Suppressed = true
				diags[i].SuppressReason = reason
				break
			}
		}
	}
}
