// Package goleak defines an analyzer that flags `go` statements whose
// goroutine can block on a channel forever with no reachable release path —
// the static twin of the runtime leak checker in internal/testutil. A
// leaked goroutine pins its stack and everything it captures for the life
// of the process; in a resident server (cmd/streamd) that is an unbounded
// resource drain no test notices.
//
// For every go edge in the call graph, the spawned body (function literal
// or declared function, one call level deep) is scanned for unguarded
// channel operations:
//
//   - a receive or range needs a close of that same channel somewhere in
//     the program, or a select alternative;
//   - a send needs the channel to be created with a buffer somewhere, a
//     receive of it elsewhere in the program, or a select alternative.
//
// Channel identity is the root variable (local, field, or package var);
// when the goroutine runs a declared function, the call's arguments are
// substituted for its parameters, so `go drain(ch)` is checked against the
// spawner's ch. Operations on parameters whose provenance the analyzer
// cannot see, and on call-result channels (ctx.Done(), time.After), are
// skipped.
//
// KNOWN-UNSOUND (documented limitation, proven by the clean fixture): a
// send to a channel that anywhere gets a non-zero buffer is assumed
// non-blocking, but a buffer only absorbs that many sends — a goroutine
// sending twice to a 1-buffered channel nobody drains still leaks. The
// receive rule is unsound the other way: the presence of a close statement
// does not prove the close is reached on every path.
package goleak

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"streamgpu/internal/analysis"
	"streamgpu/internal/analysis/callgraph"
)

// Analyzer flags goroutines that can block forever on a channel.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc: "a goroutine blocking on a channel must have a reachable release path " +
		"(close for receives, buffer or receiver for sends, or a select alternative); " +
		"otherwise it leaks for the life of the process",
	Run: run,
}

// chanIndex is the program-wide channel bookkeeping, built once per run.
type chanIndex struct {
	closed   map[*types.Var]bool // close(ch) exists
	buffered map[*types.Var]bool // make(chan T, n>0) reaches the var
	received map[*types.Var]int  // count of receive/range sites
	params   map[*types.Var]bool // declared as a function parameter
}

func run(pass *analysis.Pass) error {
	g := callgraph.Of(pass)
	idx := pass.Program.Cached("goleak.index", func() any {
		return buildIndex(pass.Program.Pkgs)
	}).(*chanIndex)

	// Check every go site whose spawner lives in this package: each site
	// is visited exactly once per run.
	for _, n := range g.Funcs() {
		if n.Pkg == nil || n.Pkg.Types != pass.Pkg {
			continue
		}
		seenSites := make(map[*ast.CallExpr]bool)
		for _, e := range n.Out {
			if !e.Go || seenSites[e.Site] {
				continue
			}
			seenSites[e.Site] = true
			checkSpawn(pass, idx, e)
		}
	}
	return nil
}

// checkSpawn reports the first hopeless blocking operation of one spawned
// goroutine.
func checkSpawn(pass *analysis.Pass, idx *chanIndex, e *callgraph.Edge) {
	body := e.Callee.Body()
	if body == nil {
		return
	}
	info := e.Callee.Pkg.Info

	// Parameter substitution for `go fn(ch)`: the callee's params map to
	// the go call's argument roots, resolved in the spawner's package.
	subst := paramSubst(pass.TypesInfo, e)

	var reported bool
	report := func(format string, args ...any) {
		if !reported {
			reported = true
			pass.Reportf(e.Site.Pos(), format, args...)
		}
	}
	analysis.WithStack(body, func(nd ast.Node, stack []ast.Node) bool {
		if reported {
			return false
		}
		if _, ok := nd.(*ast.FuncLit); ok {
			return false // nested spawn/callback: its own go edge if spawned
		}
		switch nd := nd.(type) {
		case *ast.UnaryExpr:
			if nd.Op != token.ARROW {
				return true
			}
			v := chanRoot(info, nd.X, subst, idx.params)
			if v == nil || selectGuarded(nd, stack) {
				return true
			}
			if !idx.closed[v] {
				report("goroutine blocks receiving from %s, which is never closed; close it when producers finish or select on a cancel path", v.Name())
			}
		case *ast.RangeStmt:
			if _, ok := info.TypeOf(nd.X).Underlying().(*types.Chan); !ok {
				return true
			}
			v := chanRoot(info, nd.X, subst, idx.params)
			if v == nil {
				return true
			}
			if !idx.closed[v] {
				report("goroutine ranges over %s, which is never closed, so the loop can never finish", v.Name())
			}
		case *ast.SendStmt:
			v := chanRoot(info, nd.Chan, subst, idx.params)
			if v == nil || selectGuarded(nd, stack) {
				return true
			}
			if !idx.buffered[v] && idx.received[v] == 0 {
				report("goroutine blocks sending to %s, which is unbuffered and never received from; add a receiver, a buffer, or a select alternative", v.Name())
			}
		}
		return true
	})
}

// paramSubst maps the spawned function's parameters to the root variables
// of the go call's arguments. Nil-valued entries mean "unknown".
func paramSubst(callerInfo *types.Info, e *callgraph.Edge) map[*types.Var]*types.Var {
	if e.Callee.Func == nil || e.Callee.Decl == nil {
		return nil
	}
	sig, ok := e.Callee.Func.Type().(*types.Signature)
	if !ok {
		return nil
	}
	subst := make(map[*types.Var]*types.Var)
	params := sig.Params()
	for i, arg := range e.Site.Args {
		if i >= params.Len() {
			break
		}
		subst[params.At(i)] = rawRoot(callerInfo, arg)
	}
	return subst
}

// chanRoot resolves a channel expression to its root variable, applying one
// round of parameter substitution and then refusing parameters with unknown
// provenance; nil when untrackable (call results, indexed channels).
func chanRoot(info *types.Info, expr ast.Expr, subst map[*types.Var]*types.Var, params map[*types.Var]bool) *types.Var {
	v := rawRoot(info, expr)
	if v == nil {
		return nil
	}
	if mapped, ok := subst[v]; ok {
		v = mapped // may be nil: unknown provenance at the go site
	}
	if v == nil || (params[v] && !v.IsField()) {
		return nil
	}
	return v
}

// selectGuarded reports whether the operation is the communication of a
// select clause with an alternative.
func selectGuarded(op ast.Node, stack []ast.Node) bool {
	child := op
	for i := len(stack) - 1; i >= 0; i-- {
		cc, ok := stack[i].(*ast.CommClause)
		if !ok {
			child = stack[i]
			continue
		}
		if cc.Comm == nil || !within(cc.Comm, child, op) {
			return false
		}
		for j := i - 1; j >= 0; j-- {
			if sel, ok := stack[j].(*ast.SelectStmt); ok {
				return len(sel.Body.List) >= 2
			}
			if _, ok := stack[j].(*ast.BlockStmt); !ok {
				break
			}
		}
		return false
	}
	return false
}

func within(root ast.Node, child, op ast.Node) bool {
	if child == root || op == root {
		return true
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == op {
			found = true
		}
		return !found
	})
	return found
}

// argBind records one call-site binding of an argument's root variable to
// a callee parameter, used to propagate closes and receives backwards:
// close(ch) inside helper(ch chan int) closes whatever the caller passed.
type argBind struct {
	param, arg *types.Var
}

// buildIndex scans every file of the program for closes, buffered makes,
// and receives.
func buildIndex(pkgs []*analysis.Package) *chanIndex {
	idx := &chanIndex{
		closed:   make(map[*types.Var]bool),
		buffered: make(map[*types.Var]bool),
		received: make(map[*types.Var]int),
		params:   make(map[*types.Var]bool),
	}
	var binds []argBind
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncType:
					// Parameters of declared functions, methods, and
					// function literals; names inside bare type expressions
					// have no Defs entry and are skipped by the nil check.
					if n.Params != nil {
						for _, field := range n.Params.List {
							for _, name := range field.Names {
								if v, ok := info.Defs[name].(*types.Var); ok {
									idx.params[v] = true
								}
							}
						}
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
						if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) == 1 {
							if v := rawRoot(info, n.Args[0]); v != nil {
								idx.closed[v] = true
							}
							return true
						}
					}
					if fn := analysis.Callee(info, n); fn != nil {
						if sig, ok := fn.Type().(*types.Signature); ok {
							for i, arg := range n.Args {
								if i >= sig.Params().Len() {
									break
								}
								pv := sig.Params().At(i)
								if _, isChan := pv.Type().Underlying().(*types.Chan); !isChan {
									continue
								}
								if av := rawRoot(info, arg); av != nil {
									binds = append(binds, argBind{param: pv, arg: av})
								}
							}
						}
					}
				case *ast.AssignStmt:
					for i, lhs := range n.Lhs {
						if i < len(n.Rhs) && isBufferedMake(info, n.Rhs[i]) {
							if v := rawRoot(info, lhs); v != nil {
								idx.buffered[v] = true
							}
						}
					}
				case *ast.ValueSpec:
					for i, name := range n.Names {
						if i < len(n.Values) && isBufferedMake(info, n.Values[i]) {
							if v, ok := info.Defs[name].(*types.Var); ok {
								idx.buffered[v] = true
							}
						}
					}
				case *ast.KeyValueExpr:
					if key, ok := n.Key.(*ast.Ident); ok && isBufferedMake(info, n.Value) {
						if v, ok := info.Uses[key].(*types.Var); ok {
							idx.buffered[v] = true
						}
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						if v := rawRoot(info, n.X); v != nil {
							idx.received[v]++
						}
					}
				case *ast.RangeStmt:
					if _, ok := info.TypeOf(n.X).Underlying().(*types.Chan); ok {
						if v := rawRoot(info, n.X); v != nil {
							idx.received[v]++
						}
					}
				}
				return true
			})
		}
	}
	// Propagate closes and receives through call-argument bindings so that
	// a helper closing or draining its channel parameter credits whatever
	// the caller passed in. A couple of rounds handles nested helpers.
	for range [3]int{} {
		changed := false
		for _, b := range binds {
			if idx.closed[b.param] && !idx.closed[b.arg] {
				idx.closed[b.arg] = true
				changed = true
			}
			if idx.received[b.param] > 0 && idx.received[b.arg] == 0 {
				idx.received[b.arg] = 1
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return idx
}

// rawRoot is chanRoot without the parameter filtering: the index must see
// closes and receives through parameters too (close(ch) inside a helper
// the channel was passed to still closes the caller's channel — it is the
// same object only when ch is the helper's param, which substitution
// handles at check time; indexing the param var is still useful for
// param-rooted goroutine bodies).
func rawRoot(info *types.Info, expr ast.Expr) *types.Var {
	switch expr := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[expr].(*types.Var); ok {
			return v
		}
		v, _ := info.Defs[expr].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[expr]; ok {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		v, _ := info.Uses[expr.Sel].(*types.Var)
		return v
	}
	return nil
}

// isBufferedMake reports whether expr is make(chan T, n) with constant
// n > 0 (or a non-constant capacity, assumed positive).
func isBufferedMake(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if _, isChan := info.TypeOf(call).Underlying().(*types.Chan); !isChan {
		return false
	}
	tv, ok := info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return true // runtime capacity: assume positive
	}
	n, ok := constant.Int64Val(tv.Value)
	return ok && n > 0
}
