package goleak_test

import (
	"testing"

	"streamgpu/internal/analysis/analysistest"
	"streamgpu/internal/analysis/goleak"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, goleak.Analyzer, "testdata/flagged", "testdata/clean")
}
