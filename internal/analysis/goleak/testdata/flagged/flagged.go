// Package flagged holds true-positive fixtures for goleak: goroutines
// blocking on channels with no close, no buffer, no receiver, and no
// select alternative — each leaks for the life of the process.
package flagged

// leakRecv receives on a channel nothing ever closes.
func leakRecv() {
	ch := make(chan int)
	go func() { // want `never closed`
		<-ch
	}()
}

// leakRange ranges over a channel nothing ever closes: the loop can never
// terminate even after the producer stops sending.
func leakRange() {
	jobs := make(chan int)
	go func() { // want `never closed`
		for range jobs {
		}
	}()
	jobs <- 1
}

// leakSend sends on an unbuffered channel nothing ever receives from —
// the classic abandoned-result leak.
func leakSend() {
	res := make(chan int)
	go func() { // want `unbuffered and never received from`
		res <- 42
	}()
}

// drainForever is spawned below; the leak is charged to the go statement,
// with the spawner's argument substituted for the parameter.
func drainForever(ch chan int) {
	for range ch {
	}
}

// leakSpawnDecl spawns a declared function over a channel it never closes.
func leakSpawnDecl() {
	ch := make(chan int)
	go drainForever(ch) // want `never closed`
	ch <- 1
}
