// Package clean holds true-negative fixtures for goleak: goroutines whose
// channel operations have a reachable release path, plus the documented
// known-unsound buffered-send case.
package clean

// workerPool ranges over a channel its producer closes.
func workerPool() {
	jobs := make(chan int)
	go func() {
		for range jobs {
		}
	}()
	jobs <- 1
	close(jobs)
}

// shutdown closes its parameter; the close is credited to the caller's
// channel through argument binding.
func shutdown(ch chan int) {
	close(ch)
}

// helperClosed hands its channel to a closing helper.
func helperClosed() {
	ch := make(chan int)
	go func() {
		for range ch {
		}
	}()
	ch <- 1
	shutdown(ch)
}

// guardedLocal blocks only inside a select with an alternative: either arm
// can release it.
func guardedLocal() {
	data := make(chan int)
	stop := make(chan struct{})
	go func() {
		select {
		case <-data:
		case <-stop:
		}
	}()
	close(stop)
	_ = data
}

// computeAsync sends to an unbuffered channel the spawner receives from.
func computeAsync() int {
	res := make(chan int)
	go func() {
		res <- 7
	}()
	return <-res
}

// spawnParam blocks on a parameter channel: its provenance is unknown at
// this depth, so goleak stays silent rather than guess.
func spawnParam(ch chan int) {
	go func() {
		<-ch
	}()
}

// KNOWN-UNSOUND (documented limitation): goleak assumes a send to a
// channel created with a buffer never blocks. The second send below
// overflows the 1-slot buffer with no receiver and leaks the goroutine
// forever, yet is not flagged — the analyzer trades this soundness hole
// for not flagging the ubiquitous `done := make(chan error, 1)`
// completion pattern, where the buffer guarantees the send returns even
// when the waiter has given up.
func unsoundBufferedSend() {
	done := make(chan int, 1)
	go func() {
		done <- 1
		done <- 2 // blocks forever: buffer full, nobody receives
	}()
}
