// Package escapepool defines the interprocedural, path-sensitive upgrade of
// poolrelease: a value from pool.Get must reach a Release along EVERY path
// through the acquiring function — including paths that run through callees.
//
// poolrelease is deliberately flow-insensitive: one Release anywhere in the
// function discharges the contract, and handing the value to any helper
// counts as an ownership transfer. That leaves two real leak shapes unseen:
//
//   - the early-return leak: Release on the happy path, a bare return on the
//     error path — the pool's gets/releases counters drift only under
//     faults, exactly when nobody is watching;
//   - the borrowing-helper leak: the value is passed to a callee that merely
//     reads it (so poolrelease says "escaped, fine") and then dropped —
//     nobody ever releases.
//
// escapepool runs a forward must-analysis over the dataflow CFG. Each
// tracked value is live, released, escaped, or mixed (released on some
// joined paths only); defers are applied at the exit block. Calls consult
// per-parameter summaries computed callee-first over the whole program and
// exported as facts: a callee that always releases its parameter counts as
// a release, one that releases conditionally makes the value mixed, one
// that stores or returns it is an escape (silent, matching poolrelease),
// and one that only borrows it leaves the caller still responsible.
//
// Precision bias, shared with poolrelease: escapes are forgiving. A callee
// whose body the analyzer cannot see, a send, a store, an interface call
// with disagreeing implementations — all silently end tracking. The
// analyzer's findings are therefore high-confidence; its silence is not a
// proof of correctness.
package escapepool

import (
	"go/ast"
	"go/types"

	"streamgpu/internal/analysis"
	"streamgpu/internal/analysis/callgraph"
	"streamgpu/internal/analysis/dataflow"
)

const poolPkg = "streamgpu/internal/pool"

// Analyzer flags pooled values that miss Release on some path.
var Analyzer = &analysis.Analyzer{
	Name: "escapepool",
	Doc: "a value from pool.Get must reach Release on every path through the acquiring " +
		"function and its callees; early returns and borrow-only helpers that drop the " +
		"value leak it from the free list exactly when error paths run",
	Run: run,
}

// ParamAct is what a function does with a pooled value passed at one
// parameter position.
type ParamAct uint8

const (
	// ActNone: the parameter is only borrowed; the caller still owns it.
	ActNone ParamAct = iota
	// ActReleases: every path through the callee releases the parameter.
	ActReleases
	// ActMaybe: some paths release the parameter, some do not.
	ActMaybe
	// ActEscapes: the callee stores, returns, or forwards the parameter.
	ActEscapes
)

// PoolFact is a function's per-parameter ownership summary.
type PoolFact struct {
	Params []ParamAct
}

// AFact brands PoolFact for the facts store.
func (*PoolFact) AFact() {}

func (f *PoolFact) equal(g *PoolFact) bool {
	if (f == nil) != (g == nil) {
		return false
	}
	if f == nil {
		return true
	}
	if len(f.Params) != len(g.Params) {
		return false
	}
	for i := range f.Params {
		if f.Params[i] != g.Params[i] {
			return false
		}
	}
	return true
}

// absState is one tracked value's ownership state on a path set.
type absState uint8

const (
	stUnseen   absState = iota // join identity: not bound on this path
	stLive                     // borrowed from the pool, unreleased
	stReleased                 // handed back on every joined path
	stMixed                    // released on some joined paths only
	stEscaped                  // ownership left the function; forgiving top
)

func joinState(a, b absState) absState {
	switch {
	case a == b:
		return a
	case a == stUnseen:
		return b
	case b == stUnseen:
		return a
	case a == stEscaped || b == stEscaped:
		return stEscaped
	default: // any mix of live/released/mixed
		return stMixed
	}
}

// state maps each tracked variable to its ownership state.
type state map[*types.Var]absState

func joinStates(a, b state) state {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(state, len(a)+len(b))
	for v, s := range a {
		out[v] = s
	}
	for v, s := range b {
		out[v] = joinState(out[v], s)
	}
	return out
}

func statesEqual(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for v, s := range a {
		if b[v] != s {
			return false
		}
	}
	return true
}

func set(st state, v *types.Var, s absState) state {
	out := make(state, len(st)+1)
	for k, val := range st {
		out[k] = val
	}
	out[v] = s
	return out
}

// pkgState is the per-run shared state, cached on the Program so every
// package's pass sees the same literal summaries and CFGs.
type pkgState struct {
	lits map[*callgraph.Node]*PoolFact
	cfgs map[*callgraph.Node]*dataflow.CFG
}

func run(pass *analysis.Pass) error {
	g := callgraph.Of(pass)
	shared := pass.Program.Cached("escapepool.state", func() any {
		return &pkgState{
			lits: make(map[*callgraph.Node]*PoolFact),
			cfgs: make(map[*callgraph.Node]*dataflow.CFG),
		}
	}).(*pkgState)

	var nodes []*callgraph.Node
	for _, n := range g.Funcs() {
		if n.Pkg != nil && n.Pkg.Types == pass.Pkg && n.Body() != nil {
			nodes = append(nodes, n)
		}
	}

	a := &analyzer{pass: pass, graph: g, shared: shared, local: make(map[*callgraph.Node]*PoolFact)}

	// Summary fixpoint within the package; callees in other packages are
	// already summarized (topological order) and reached through facts.
	for range [5]int{} {
		changed := false
		for _, n := range nodes {
			f := a.summarize(n)
			if !f.equal(a.local[n]) {
				a.local[n] = f
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, n := range nodes {
		f := a.local[n]
		if f == nil || len(f.Params) == 0 {
			continue
		}
		if n.Func != nil {
			pass.ExportObjectFact(n.Func, f)
		} else {
			shared.lits[n] = f
		}
	}

	for _, n := range nodes {
		a.emit(n)
	}
	return nil
}

type analyzer struct {
	pass   *analysis.Pass
	graph  *callgraph.Graph
	shared *pkgState
	local  map[*callgraph.Node]*PoolFact
}

func (a *analyzer) cfg(n *callgraph.Node) *dataflow.CFG {
	if c, ok := a.shared.cfgs[n]; ok {
		return c
	}
	c := dataflow.New(n.Body())
	a.shared.cfgs[n] = c
	return c
}

// summary returns the callee's parameter summary, nil when unknown.
func (a *analyzer) summary(n *callgraph.Node) *PoolFact {
	if f, ok := a.local[n]; ok {
		return f
	}
	if n.Func != nil {
		var f PoolFact
		if a.pass.ImportObjectFact(n.Func, &f) {
			return &f
		}
		return nil
	}
	return a.shared.lits[n]
}

// solved is the result of one function's ownership analysis.
type solved struct {
	cfg *dataflow.CFG
	res dataflow.Result[state]
	// acquired maps each Get-bound variable to its Get call, in the order
	// the calls appear.
	acquired map[*types.Var]*ast.CallExpr
	order    []*types.Var
	// borrowedBy names the first borrow-only callee each still-live value
	// was passed to — the interprocedural evidence for the live finding.
	borrowedBy map[*types.Var]string
	// exit is the state at function exit with defers applied.
	exit state
}

// solve runs the forward must-analysis over one function.
func (a *analyzer) solve(n *callgraph.Node, params []*types.Var) *solved {
	cfg := a.cfg(n)
	s := &solved{
		cfg:        cfg,
		acquired:   make(map[*types.Var]*ast.CallExpr),
		borrowedBy: make(map[*types.Var]string),
	}
	boundary := state{}
	for _, p := range params {
		boundary[p] = stLive
	}
	s.res = dataflow.Forward(cfg, dataflow.Problem[state]{
		Init:     func() state { return nil },
		Boundary: func() state { return boundary },
		Join:     joinStates,
		Equal:    statesEqual,
		Transfer: func(nd ast.Node, st state) state { return a.transfer(s, nd, st) },
	})
	s.exit = s.res.In[cfg.Exit]
	for _, d := range cfg.Defers {
		s.exit = a.applyDefer(s, d, s.exit)
	}
	return s
}

// transfer applies one CFG node to the ownership state. Defer statements
// are skipped here (their effect happens at exit); function literals end
// tracking for anything they capture.
func (a *analyzer) transfer(s *solved, nd ast.Node, st state) state {
	if _, ok := nd.(*ast.DeferStmt); ok {
		return st
	}
	info := a.pass.TypesInfo

	// Bind fresh Get results first, so uses in the same statement see them.
	if as, ok := nd.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isPoolGet(info, call) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue // discarded/untracked: poolrelease's finding
			}
			v := lhsVar(info, id)
			if v == nil {
				continue
			}
			st = set(st, v, stLive)
			if _, seen := s.acquired[v]; !seen {
				s.acquired[v] = call
				s.order = append(s.order, v)
			}
		}
	}

	analysis.WithStack(nd, func(inner ast.Node, stack []ast.Node) bool {
		if lit, ok := inner.(*ast.FuncLit); ok {
			// A closure capturing a tracked value may release or retain it
			// on its own schedule: ownership leaves this function's paths.
			for _, v := range capturedTracked(info, lit, st) {
				st = set(st, v, stEscaped)
			}
			return false
		}
		id, ok := inner.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		cur, tracked := st[v]
		if !tracked || cur == stEscaped {
			return true
		}
		switch use := a.classify(id, stack); use.kind {
		case useRelease:
			st = set(st, v, stReleased)
		case useEscape:
			st = set(st, v, stEscaped)
		case useCall:
			switch act := a.calleeAct(use.call, use.argIndex); act {
			case ActReleases:
				st = set(st, v, stReleased)
			case ActMaybe:
				st = set(st, v, stMixed)
			case ActEscapes:
				st = set(st, v, stEscaped)
			case ActNone:
				if cur == stLive && s.borrowedBy[v] == "" {
					s.borrowedBy[v] = calleeName(info, use.call)
				}
			}
		}
		return true
	})
	return st
}

// applyDefer replays one deferred call against the exit state, descending
// into deferred function literals (defer func() { b.Release() }()).
func (a *analyzer) applyDefer(s *solved, d *ast.DeferStmt, st state) state {
	info := a.pass.TypesInfo
	analysis.WithStack(d.Call, func(inner ast.Node, stack []ast.Node) bool {
		id, ok := inner.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		cur, tracked := st[v]
		if !tracked || cur == stEscaped || cur == stReleased {
			return true
		}
		switch use := a.classify(id, stack); use.kind {
		case useRelease:
			st = set(st, v, stReleased)
		case useCall:
			if a.calleeAct(use.call, use.argIndex) == ActReleases {
				st = set(st, v, stReleased)
			}
		}
		return true
	})
	return st
}

// useKind classifies one identifier occurrence, mirroring poolrelease.
type useKind uint8

const (
	useBorrow useKind = iota
	useRelease
	useEscape
	useCall // passed as an argument; argIndex/call say where
)

type use struct {
	kind     useKind
	call     *ast.CallExpr
	argIndex int
}

// classify decides what one identifier occurrence means for ownership. It
// mirrors poolrelease's classification, except that passing the value to a
// callee is not an automatic escape — the caller consults the callee's
// summary instead.
func (a *analyzer) classify(id *ast.Ident, stack []ast.Node) use {
	if len(stack) == 0 {
		return use{kind: useEscape}
	}
	for _, anc := range stack {
		if _, ok := anc.(*ast.ReturnStmt); ok {
			return use{kind: useEscape}
		}
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X == ast.Expr(id) {
			if len(stack) >= 2 {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == ast.Expr(p) && p.Sel.Name == "Release" {
					return use{kind: useRelease}
				}
			}
			return use{kind: useBorrow}
		}
		return use{kind: useEscape}
	case *ast.IndexExpr:
		if p.X == ast.Expr(id) {
			return use{kind: useBorrow}
		}
		return use{kind: useEscape}
	case *ast.SliceExpr:
		if p.X == ast.Expr(id) {
			return use{kind: useBorrow}
		}
		return use{kind: useEscape}
	case *ast.RangeStmt:
		if p.X == ast.Expr(id) {
			return use{kind: useBorrow} // ranging reads elements in place
		}
		return use{kind: useEscape}
	case *ast.CallExpr:
		if p.Fun == ast.Expr(id) {
			return use{kind: useBorrow} // calling a tracked func value: not pooled
		}
		if isLenCap(a.pass.TypesInfo, p) {
			return use{kind: useBorrow}
		}
		for i, arg := range p.Args {
			if ast.Unparen(arg) == ast.Expr(id) {
				fn := analysis.Callee(a.pass.TypesInfo, p)
				if fn != nil && fn.Name() == "Release" && isPoolMethod(fn) {
					return use{kind: useRelease}
				}
				return use{kind: useCall, call: p, argIndex: i}
			}
		}
		return use{kind: useEscape}
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == ast.Expr(id) {
				return use{kind: useBorrow}
			}
		}
		return use{kind: useEscape}
	}
	return use{kind: useEscape}
}

// isLenCap reports whether call is the builtin len or cap — pure reads
// that never take ownership.
func isLenCap(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || (id.Name != "len" && id.Name != "cap") {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// calleeName names the call's target for a diagnostic.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := analysis.Callee(info, call); fn != nil {
		return fn.Name()
	}
	return "a helper"
}

// calleeAct resolves what the callees of one call do with the argument at
// argIndex. Unknown bodies, go statements, variadic overflow, and summary
// disagreement between possible targets all degrade to ActEscapes —
// forgiving, matching poolrelease.
func (a *analyzer) calleeAct(call *ast.CallExpr, argIndex int) ParamAct {
	edges := a.graph.Callees(call)
	if len(edges) == 0 {
		return ActEscapes
	}
	act := ActEscapes
	first := true
	for _, e := range edges {
		if e.Go {
			return ActEscapes
		}
		f := a.summary(e.Callee)
		if f == nil || argIndex >= len(f.Params) {
			return ActEscapes
		}
		if isVariadicOverflow(e.Callee, argIndex) {
			return ActEscapes
		}
		if first {
			act, first = f.Params[argIndex], false
		} else if act != f.Params[argIndex] {
			return ActEscapes
		}
	}
	return act
}

// isVariadicOverflow reports whether argIndex lands in the variadic slot of
// the callee (several arguments share one parameter: no per-arg summary).
func isVariadicOverflow(n *callgraph.Node, argIndex int) bool {
	if n.Func == nil {
		return false
	}
	sig, ok := n.Func.Type().(*types.Signature)
	if !ok {
		return false
	}
	return sig.Variadic() && argIndex >= sig.Params().Len()-1
}

// summarize computes one function's per-parameter summary.
func (a *analyzer) summarize(n *callgraph.Node) *PoolFact {
	params := paramVars(a.pass.TypesInfo, n)
	if len(params) == 0 {
		return &PoolFact{}
	}
	s := a.solve(n, params)
	f := &PoolFact{Params: make([]ParamAct, len(params))}
	for i, p := range params {
		switch s.exit[p] {
		case stReleased:
			f.Params[i] = ActReleases
		case stMixed:
			f.Params[i] = ActMaybe
		case stEscaped:
			f.Params[i] = ActEscapes
		default:
			f.Params[i] = ActNone
		}
	}
	return f
}

// emit reports this function's findings from a final solve.
func (a *analyzer) emit(n *callgraph.Node) {
	s := a.solve(n, paramVars(a.pass.TypesInfo, n))
	for _, v := range s.order {
		call := s.acquired[v]
		switch s.exit[v] {
		case stMixed:
			a.pass.Reportf(call.Pos(),
				"pooled value %s is released on some paths but not all; every path must Release it or hand ownership off", v.Name())
		case stLive:
			if callee := s.borrowedBy[v]; callee != "" {
				a.pass.Reportf(call.Pos(),
					"pooled value %s is passed to %s, which only borrows it, and is never released; the caller still owns it", v.Name(), callee)
			}
			// A live value never passed anywhere is poolrelease's finding;
			// reporting it here too would double every diagnostic.
		}
	}
}

// paramVars lists the function's parameter objects in declaration order.
func paramVars(info *types.Info, n *callgraph.Node) []*types.Var {
	var fields *ast.FieldList
	switch {
	case n.Decl != nil:
		fields = n.Decl.Type.Params
	case n.Lit != nil:
		fields = n.Lit.Type.Params
	}
	if fields == nil {
		return nil
	}
	var out []*types.Var
	for _, field := range fields.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// capturedTracked lists tracked variables referenced inside a function
// literal.
func capturedTracked(info *types.Info, lit *ast.FuncLit, st state) []*types.Var {
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				if _, tracked := st[v]; tracked {
					out = append(out, v)
				}
			}
		}
		return true
	})
	return out
}

// lhsVar resolves the variable bound by an assignment target identifier.
func lhsVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// isPoolGet reports whether call invokes Get on a pool free-list type.
func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	return fn != nil && fn.Name() == "Get" && isPoolMethod(fn)
}

// isPoolMethod reports whether fn's receiver is one of the pool package's
// free-list types (shared contract with poolrelease).
func isPoolMethod(fn *types.Func) bool {
	recv := analysis.ReceiverNamed(fn)
	if recv == nil {
		return false
	}
	obj := recv.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != poolPkg {
		return false
	}
	switch obj.Name() {
	case "Pool", "Slices":
		return true
	}
	return false
}
