// Fixture: pooled values whose every path releases or hands off ownership —
// including releases that happen inside callees and defers, which the
// flow-insensitive checker cannot credit.
package fixture

import (
	"sync"

	"streamgpu/internal/pool"
)

var (
	bufs = pool.NewBytes("fixture.bufs")
	sink int
)

// releaseAll releases its parameter on every path.
func releaseAll(b []byte) {
	bufs.Release(b)
}

// handsOff delegates the release to a callee whose summary proves it
// always releases.
func handsOff() {
	b := bufs.Get(16)
	releaseAll(b)
}

// bothPaths releases on the early return and on the fallthrough.
func bothPaths(fail bool) {
	b := bufs.Get(8)
	if fail {
		bufs.Release(b)
		return
	}
	b[0] = 1
	bufs.Release(b)
}

// deferred releases at function exit.
func deferred() {
	b := bufs.Get(8)
	defer bufs.Release(b)
	sink = int(b[0])
}

// deferredClosure releases through a deferred literal.
func deferredClosure() {
	b := bufs.Get(8)
	defer func() { bufs.Release(b) }()
	b[0] = 1
}

// returned moves ownership to the caller: an escape, silent by design.
func returned() []byte {
	b := bufs.Get(8)
	return b
}

// escapeOnErrorPath mixes an escape with a release; escapes are forgiving,
// so the join stays silent.
func escapeOnErrorPath(fail bool) []byte {
	b := bufs.Get(8)
	if fail {
		return b
	}
	bufs.Release(b)
	return nil
}

// laneWorker borrows the buffer: every use is an index or a Done.
func laneWorker(b []byte, wg *sync.WaitGroup) {
	b[0] = 1
	wg.Done()
}

// laneFanOutJoin is the lane-parallel compress shape: Get, spawn a
// borrowing worker, join, Release from the spawner — ownership never moves
// even though the value crosses a goroutine boundary.
func laneFanOutJoin() {
	var wg sync.WaitGroup
	b := bufs.Get(64)
	wg.Add(1)
	go laneWorker(b, &wg)
	wg.Wait()
	bufs.Release(b)
}
