// Fixture: the two leak shapes poolrelease cannot see — a Release missing
// on some paths only, and a value handed to a borrow-only helper and then
// dropped.
package fixture

import (
	"errors"

	"streamgpu/internal/pool"
)

var (
	bufs       = pool.NewBytes("fixture.bufs")
	errFixture = errors.New("fixture")
	sink       int
)

// earlyReturn releases on the happy path but leaks on the error path —
// flow-insensitive checking is satisfied by the one Release.
func earlyReturn(fail bool) error {
	b := bufs.Get(64) // want `released on some paths but not all`
	if fail {
		return errFixture
	}
	bufs.Release(b)
	return nil
}

// fill only borrows its parameter: every use is an index or range.
func fill(b []byte, v byte) {
	for i := range b {
		b[i] = v
	}
}

// borrowedAndDropped passes the buffer to a borrow-only helper and drops
// it; the helper's summary proves ownership never moved.
func borrowedAndDropped() {
	b := bufs.Get(64) // want `only borrows it`
	fill(b, 1)
}

// maybeRelease releases its parameter on one path only.
func maybeRelease(b []byte, ok bool) {
	if ok {
		bufs.Release(b)
	}
}

// reliesOnMaybe inherits the callee's conditional release: some paths
// through the callee leak.
func reliesOnMaybe(ok bool) {
	b := bufs.Get(32) // want `released on some paths but not all`
	maybeRelease(b, ok)
}

// compressLane only borrows the lane buffer: every use is an index.
func compressLane(b []byte) {
	for i := range b {
		b[i]++
	}
}

// laneInlineEarlyReturn is the lane fan-out leak shape: lane 0 runs inline
// on the caller's own pooled value (compressLane only borrows), and the
// failure path returns before the post-join Release.
func laneInlineEarlyReturn(fail bool) {
	b := bufs.Get(64) // want `released on some paths but not all`
	compressLane(b)
	if fail {
		return
	}
	bufs.Release(b)
}
