package escapepool_test

import (
	"testing"

	"streamgpu/internal/analysis/analysistest"
	"streamgpu/internal/analysis/escapepool"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, escapepool.Analyzer, "testdata/flagged", "testdata/clean")
}
