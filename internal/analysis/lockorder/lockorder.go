// Package lockorder defines an analyzer that builds a lock-acquisition
// graph across sync.Mutex/sync.RWMutex call chains and flags cycles: if one
// code path acquires A then B while another acquires B then A, the two can
// deadlock under concurrency even though each path is locally correct. The
// serving layer's lock chains (session locks feeding the qos scheduler's
// lane lock, dispatcher vs. admission) are exactly where this bites.
//
// How it works (the first consumer of the interprocedural engine, see
// DESIGN.md §13): per function, a forward dataflow over the CFG tracks the
// set of locks that may be held at each point. Direct Lock/RLock calls add
// a lock, Unlock/RUnlock remove it, and a deferred Unlock keeps the lock
// held to the end of the function. Calls apply the callee's exported
// summary fact (what it acquires, still holds at return, and releases),
// computed callee-first — package topological order across packages, a
// small fixpoint within one. Every acquisition made while other locks are
// held contributes held→acquired edges to one program-wide graph; an edge
// that closes a cycle is reported at the acquisition that closed it.
//
// Lock identity is type-based: "pkg.Type.field" for a mutex field (or
// embedded mutex), "pkg.var" for a package-level mutex. Two instances of
// the same struct share an identity, so hand-over-hand locking over
// siblings (lock a1.mu then a2.mu) does not self-edge — cycles need at
// least two distinct identities. The exception is an exclusive Lock of a
// key already held through the *same receiver expression*, which is a
// guaranteed self-deadlock and flagged directly.
//
// Known imprecision (documented limitation): goroutine bodies spawned with
// `go` are analyzed as their own functions but acquisitions there do not
// order against locks the spawner holds, and lock sets flow through
// unresolved call sites (function values the call graph cannot see) as if
// the callee acquired nothing.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"streamgpu/internal/analysis"
	"streamgpu/internal/analysis/callgraph"
	"streamgpu/internal/analysis/dataflow"
)

// Analyzer flags lock-acquisition cycles and same-receiver double locks.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "acquiring mutexes in inconsistent order across code paths can deadlock; " +
		"every pair of locks must be acquired in one global order, including through callees",
	Run: run,
}

// LockFact is the exported per-function summary: the lock identities the
// function may acquire while running (transitively), those still held when
// it returns, and those it may release on the caller's behalf.
type LockFact struct {
	Acquires []string
	Holds    []string
	Releases []string
}

// AFact brands LockFact for the facts store.
func (*LockFact) AFact() {}

func (f *LockFact) equal(g *LockFact) bool {
	if g == nil {
		return false
	}
	eq := func(a, b []string) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	return eq(f.Acquires, g.Acquires) && eq(f.Holds, g.Holds) && eq(f.Releases, g.Releases)
}

// state is the program-wide accumulation shared by every package's pass.
type state struct {
	// edges is the acquisition graph: from -> to -> first site.
	edges map[string]map[string]edgeSite
	// reported dedupes cycles by canonical key.
	reported map[string]bool
	// lits holds summaries for function literals, which have no
	// types.Object to attach a fact to.
	lits map[*callgraph.Node]*LockFact
	// cfgs caches per-function CFGs across fixpoint iterations.
	cfgs map[*callgraph.Node]*dataflow.CFG
}

type edgeSite struct {
	pos token.Pos
	fn  string
}

func getState(pass *analysis.Pass) *state {
	return pass.Program.Cached("lockorder.state", func() any {
		return &state{
			edges:    make(map[string]map[string]edgeSite),
			reported: make(map[string]bool),
			lits:     make(map[*callgraph.Node]*LockFact),
			cfgs:     make(map[*callgraph.Node]*dataflow.CFG),
		}
	}).(*state)
}

func run(pass *analysis.Pass) error {
	g := callgraph.Of(pass)
	st := getState(pass)

	// This package's functions (declared and literals), in graph order.
	var nodes []*callgraph.Node
	for _, n := range g.Funcs() {
		if n.Pkg != nil && n.Pkg.Types == pass.Pkg && n.Body() != nil {
			nodes = append(nodes, n)
		}
	}

	a := &analyzer{pass: pass, graph: g, st: st, local: make(map[*callgraph.Node]*LockFact)}

	// Fixpoint over this package's summaries: mutual recursion within a
	// package converges in a few rounds; cross-package facts are already
	// final (topological order).
	for range [5]int{} {
		changed := false
		for _, n := range nodes {
			sum := a.summarize(n)
			if !sum.equal(a.local[n]) {
				a.local[n] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, n := range nodes {
		if n.Func != nil {
			pass.ExportObjectFact(n.Func, a.local[n])
		} else {
			st.lits[n] = a.local[n]
		}
	}

	// Emission: walk each function once with its solved held-sets,
	// recording edges and reporting cycles/double-locks.
	for _, n := range nodes {
		a.emit(n)
	}
	return nil
}

// analyzer carries one package pass's context.
type analyzer struct {
	pass  *analysis.Pass
	graph *callgraph.Graph
	st    *state
	local map[*callgraph.Node]*LockFact
}

// held maps lock key -> receiver expression text at acquisition ("" when
// merged paths disagree or the lock came from a callee summary). The
// expression text only powers the same-receiver double-lock check.
type held map[string]string

func (a *analyzer) cfg(n *callgraph.Node) *dataflow.CFG {
	c, ok := a.st.cfgs[n]
	if !ok {
		c = dataflow.New(n.Body())
		a.st.cfgs[n] = c
	}
	return c
}

// summary returns the callee's summary: local fixpoint value for
// same-package nodes, exported fact otherwise. Nil means unknown
// (unanalyzed or out-of-program) — treated as acquiring nothing.
func (a *analyzer) summary(n *callgraph.Node) *LockFact {
	if s, ok := a.local[n]; ok {
		return s
	}
	if n.Func != nil {
		var f LockFact
		if a.pass.ImportObjectFact(n.Func, &f) {
			return &f
		}
		return nil
	}
	return a.st.lits[n]
}

// problem builds the held-set dataflow problem for one function.
func (a *analyzer) problem(n *callgraph.Node) dataflow.Problem[held] {
	return dataflow.Problem[held]{
		Init:     func() held { return nil },
		Boundary: func() held { return held{} },
		Join: func(x, y held) held {
			if len(x) == 0 {
				return y
			}
			out := make(held, len(x)+len(y))
			for k, v := range x {
				out[k] = v
			}
			for k, v := range y {
				if old, ok := out[k]; ok && old != v {
					out[k] = ""
				} else {
					out[k] = v
				}
			}
			return out
		},
		Equal: func(x, y held) bool {
			if len(x) != len(y) {
				return false
			}
			for k, v := range x {
				if w, ok := y[k]; !ok || w != v {
					return false
				}
			}
			return true
		},
		Transfer: func(node ast.Node, in held) held {
			out := in
			a.walkOps(node, func(op mutexOp, call *ast.CallExpr) {
				out = a.apply(out, op, call)
			})
			return out
		},
	}
}

// apply is the single-operation transfer: returns a new held set (never
// mutates h).
func (a *analyzer) apply(h held, op mutexOp, call *ast.CallExpr) held {
	cp := make(held, len(h)+1)
	for k, v := range h {
		cp[k] = v
	}
	switch op.kind {
	case opLock, opRLock:
		cp[op.key] = op.recvText
	case opUnlock, opRUnlock:
		delete(cp, op.key)
	case opCall:
		for _, e := range a.graph.Callees(call) {
			if e.Go {
				continue // other goroutine: no ordering with our held set
			}
			sum := a.summary(e.Callee)
			if sum == nil {
				continue
			}
			for _, k := range sum.Releases {
				delete(cp, k)
			}
			for _, k := range sum.Holds {
				if _, ok := cp[k]; !ok {
					cp[k] = "" // held via callee: no receiver text
				}
			}
		}
	}
	return cp
}

// summarize computes one function's LockFact from its solved dataflow.
func (a *analyzer) summarize(n *callgraph.Node) *LockFact {
	cfg := a.cfg(n)
	res := dataflow.Forward(cfg, a.problem(n))

	acq := make(map[string]bool)
	rel := make(map[string]bool)
	for _, blk := range cfg.Blocks {
		for _, node := range blk.Nodes {
			a.walkOps(node, func(op mutexOp, call *ast.CallExpr) {
				switch op.kind {
				case opLock, opRLock:
					acq[op.key] = true
				case opUnlock, opRUnlock:
					rel[op.key] = true
				case opCall:
					for _, e := range a.graph.Callees(call) {
						if e.Go {
							continue
						}
						if sum := a.summary(e.Callee); sum != nil {
							for _, k := range sum.Acquires {
								acq[k] = true
							}
							for _, k := range sum.Releases {
								rel[k] = true
							}
						}
					}
				}
			})
		}
	}

	// Held at return: the exit in-set, with deferred operations applied
	// last-registered-first.
	holds := res.In[cfg.Exit]
	for i := len(cfg.Defers) - 1; i >= 0; i-- {
		d := cfg.Defers[i]
		holds = a.apply(holds, a.classify(d.Call), d.Call)
		// Deferred unlocks also count as releases the caller observes;
		// deferred callee effects were folded by apply above.
		if op := a.classify(d.Call); op.kind == opUnlock || op.kind == opRUnlock {
			rel[op.key] = true
		} else if op.kind == opLock || op.kind == opRLock {
			acq[op.key] = true
		}
	}
	return &LockFact{Acquires: sortedKeys(acq), Holds: sortedHeld(holds), Releases: sortedKeys(rel)}
}

// emit replays one function with its solved held-sets, recording
// acquisition edges and reporting.
func (a *analyzer) emit(n *callgraph.Node) {
	cfg := a.cfg(n)
	res := dataflow.Forward(cfg, a.problem(n))
	name := n.Name()
	for _, blk := range cfg.Blocks {
		h := res.In[blk]
		for _, node := range blk.Nodes {
			a.walkOps(node, func(op mutexOp, call *ast.CallExpr) {
				switch op.kind {
				case opLock, opRLock:
					if prev, already := h[op.key]; already && op.kind == opLock && prev != "" && prev == op.recvText {
						a.pass.Reportf(call.Pos(),
							"mutex %s is locked while already held through the same receiver %s: guaranteed self-deadlock",
							op.key, op.recvText)
					}
					for _, from := range sortedHeld(h) {
						a.addEdge(from, op.key, call.Pos(), name)
					}
				case opCall:
					for _, e := range a.graph.Callees(call) {
						if e.Go {
							continue
						}
						sum := a.summary(e.Callee)
						if sum == nil {
							continue
						}
						for _, from := range sortedHeld(h) {
							for _, to := range sum.Acquires {
								a.addEdge(from, to, call.Pos(), name)
							}
						}
					}
				}
				h = a.apply(h, op, call)
			})
		}
	}
}

// addEdge records from→to and reports when it closes a new cycle.
func (a *analyzer) addEdge(from, to string, pos token.Pos, fn string) {
	if from == to {
		return // same identity: sibling instances, not an order violation
	}
	if m := a.st.edges[from]; m != nil {
		if _, ok := m[to]; ok {
			return
		}
	} else {
		a.st.edges[from] = make(map[string]edgeSite)
	}
	a.st.edges[from][to] = edgeSite{pos: pos, fn: fn}

	cycle := a.findPath(to, from)
	if cycle == nil {
		return
	}
	full := append([]string{from}, cycle...) // from -> to -> ... -> from
	key := canonicalCycle(full)
	if a.st.reported[key] {
		return
	}
	a.st.reported[key] = true
	back := a.st.edges[cycle[len(cycle)-2]][from] // the edge closing back into from
	a.pass.Reportf(pos,
		"lock order cycle: %s; %s is acquired while holding %s here, but the reverse order exists at %s (in %s)",
		strings.Join(full, " -> "), to, from,
		a.pass.Fset.Position(back.pos), back.fn)
}

// findPath returns the shortest node sequence from -> ... -> target
// (inclusive of both, excluding the leading from) or nil.
func (a *analyzer) findPath(from, target string) []string {
	prev := map[string]string{from: ""}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range sortedEdgeKeys(a.st.edges[cur]) {
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = cur
			if next == target {
				var path []string
				for at := next; at != ""; at = prev[at] {
					path = append([]string{at}, path...)
				}
				return path
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// canonicalCycle rotates the cycle (first == last) to start at its
// smallest element so the same cycle found from different edges dedupes.
func canonicalCycle(cycle []string) string {
	ring := cycle[:len(cycle)-1]
	min := 0
	for i := range ring {
		if ring[i] < ring[min] {
			min = i
		}
	}
	rot := append(append([]string{}, ring[min:]...), ring[:min]...)
	return strings.Join(rot, "->")
}

// ---- operation classification ----

type opKind int

const (
	opCall opKind = iota // ordinary call: apply callee summary
	opLock
	opRLock
	opUnlock
	opRUnlock
)

type mutexOp struct {
	kind     opKind
	key      string
	recvText string
}

// walkOps visits every call in the node, in syntactic order, classifying
// each as a mutex operation or an ordinary call. Nested function literals
// are separate graph nodes; go statements run on another goroutine and
// deferred calls are handled at function exit, so all three are skipped.
func (a *analyzer) walkOps(root ast.Node, visit func(mutexOp, *ast.CallExpr)) {
	ast.Inspect(root, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			visit(a.classify(nd), nd)
		}
		return true
	})
}

// classify decides what one call does to the lock state.
func (a *analyzer) classify(call *ast.CallExpr) mutexOp {
	info := a.pass.TypesInfo
	fn := analysis.Callee(info, call)
	if fn == nil {
		return mutexOp{kind: opCall}
	}
	var kind opKind
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock":
		kind = opLock
	case "(*sync.RWMutex).RLock":
		kind = opRLock
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock":
		kind = opUnlock
	case "(*sync.RWMutex).RUnlock":
		kind = opRUnlock
	default:
		return mutexOp{kind: opCall}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return mutexOp{kind: opCall}
	}
	key := a.lockKey(sel)
	if key == "" {
		return mutexOp{kind: opCall} // unkeyable receiver: ignore the op
	}
	return mutexOp{kind: kind, key: key, recvText: types.ExprString(sel.X)}
}

// lockKey derives the type-based identity of the mutex a selector's method
// call operates on, or "" when no stable identity exists.
func (a *analyzer) lockKey(methodSel *ast.SelectorExpr) string {
	info := a.pass.TypesInfo
	x := ast.Unparen(methodSel.X)

	// Promoted method (t.Lock() with an embedded sync.Mutex): identity is
	// the owner type plus the embedding path.
	if sel, ok := info.Selections[methodSel]; ok && len(sel.Index()) > 1 {
		owner := namedName(sel.Recv())
		if owner == "" {
			return ""
		}
		return owner + fieldPath(sel.Recv(), sel.Index()[:len(sel.Index())-1])
	}

	switch x := x.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			// Field access s.mu (possibly through embedding): owner type +
			// field path.
			owner := namedName(sel.Recv())
			if owner == "" {
				return ""
			}
			return owner + fieldPath(sel.Recv(), sel.Index())
		}
		// Package-qualified var pkg.Mu.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
			// Local mutex: key by declaration line, unique enough and
			// stable across runs.
			return fmt.Sprintf("%s.%s@%d", v.Pkg().Path(), v.Name(),
				a.pass.Fset.Position(v.Pos()).Line)
		}
	}
	return ""
}

// namedName returns "pkgpath.TypeName" of t (unwrapping one pointer), ""
// for unnamed types.
func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// fieldPath renders ".a.b" for an index path through t's struct fields.
func fieldPath(t types.Type, index []int) string {
	var sb strings.Builder
	cur := t
	for _, i := range index {
		if p, ok := cur.(*types.Pointer); ok {
			cur = p.Elem()
		}
		st, ok := cur.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return sb.String()
		}
		f := st.Field(i)
		sb.WriteString(".")
		sb.WriteString(f.Name())
		cur = f.Type()
	}
	return sb.String()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedHeld(h held) []string {
	out := make([]string, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedEdgeKeys(m map[string]edgeSite) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
