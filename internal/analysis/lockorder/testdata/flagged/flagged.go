// Package flagged holds true-positive fixtures for lockorder: inconsistent
// acquisition orders, both direct and through a callee's summary, and a
// same-receiver double lock.
package flagged

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// ab establishes the A -> B acquisition order; recording an edge is not
// itself a finding.
func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// ba acquires in the reverse order, closing the cycle.
func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `lock order cycle`
	a.mu.Unlock()
	b.mu.Unlock()
}

// double re-locks through the same receiver while held: guaranteed
// self-deadlock, no second goroutine needed.
func double(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want `same receiver`
	a.mu.Unlock()
	a.mu.Unlock()
}

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

// lockD acquires d.mu on the caller's behalf; its summary says so.
func lockD(d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sink(d)
}

// cd holds C while calling lockD: the C -> D edge exists only through the
// callee summary, which is the interprocedural half of the analyzer.
func cd(c *C, d *D) {
	c.mu.Lock()
	lockD(d)
	c.mu.Unlock()
}

// dc acquires C while holding D, closing the interprocedural cycle.
func dc(c *C, d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c.mu.Lock() // want `lock order cycle`
	c.mu.Unlock()
}

func sink(any interface{}) {}
