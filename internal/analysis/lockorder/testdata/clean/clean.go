// Package clean holds true-negative fixtures for lockorder: consistent
// global order, hand-over-hand over sibling instances, sequential (not
// nested) acquisition, read locks, and the documented goroutine limitation.
package clean

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type R struct{ mu sync.RWMutex }

// one and two nest in the same global order (A before B), so only one edge
// direction ever exists.
func one(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func two(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
}

// chain is hand-over-hand over two instances of the same type: one lock
// identity, and same-identity pairs are never an order violation.
func chain(x, y *A) {
	x.mu.Lock()
	y.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}

// seq and seqRev acquire in opposite orders but never nest, so no edges
// arise at all.
func seq(a *A, b *B) {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

func seqRev(a *A, b *B) {
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// read takes only the read half of an RWMutex, paired and released.
func read(r *R, a *A) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// branches lock on both arms and re-join released.
func branches(a *A, b *B, cond bool) {
	if cond {
		a.mu.Lock()
		b.mu.Lock()
		b.mu.Unlock()
		a.mu.Unlock()
	} else {
		a.mu.Lock()
		a.mu.Unlock()
	}
	b.mu.Lock()
	b.mu.Unlock()
}

// spawn acquires B on another goroutine while holding A. Cross-goroutine
// acquisition order is a documented non-goal (the spawned body is analyzed
// as its own function), so no edge and no finding.
func spawn(a *A, b *B) {
	a.mu.Lock()
	go func() {
		b.mu.Lock()
		b.mu.Unlock()
	}()
	a.mu.Unlock()
}
