package lockorder_test

import (
	"testing"

	"streamgpu/internal/analysis/analysistest"
	"streamgpu/internal/analysis/lockorder"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "testdata/flagged", "testdata/clean")
}
