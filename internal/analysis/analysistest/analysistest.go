// Package analysistest checks an analyzer against fixture packages under
// testdata/, mirroring golang.org/x/tools/go/analysis/analysistest on top of
// the in-repo loader (testdata directories are invisible to the go tool, so
// fixtures may contain deliberate contract violations without breaking the
// build or the streamvet sweep).
//
// Expected diagnostics are declared inline in the fixture source:
//
//	st.Launch(p, k, gpu.Grid{}) // want `completion event`
//
// Each quoted pattern after `want` is a regexp that must match a diagnostic
// reported on that line. Diagnostics with no matching want comment, and want
// comments with no matching diagnostic, both fail the test — so a fixture
// with want comments proves the analyzer fires, and a clean fixture proves
// it stays silent.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"streamgpu/internal/analysis"
)

// expectation is one quoted pattern of a `// want` comment.
type expectation struct {
	file string // base name of the fixture file
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// wantRE extracts the quoted patterns of a want comment; both interpreted
// and raw string literal syntax are accepted.
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// Run type-checks each fixture directory (relative to the calling test's
// package directory), runs a over it, and reports every mismatch between
// actual diagnostics and the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	// The shared loader memoizes parses, export data, and fixture
	// type-checks process-wide, so a test binary with several Run calls
	// (flagged + clean fixtures, multiple subtests) loads everything once.
	loader := analysis.SharedLoader(cwd)
	for _, dir := range dirs {
		pkg, err := loader.CheckDir(filepath.Join(cwd, dir))
		if err != nil {
			t.Fatalf("%s: loading fixture: %v", dir, err)
		}
		wants, err := parseWants(t, pkg)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("%s: running %s: %v", dir, a.Name, err)
		}
		for _, d := range diags {
			if d.Suppressed {
				// A streamvet:ignore directive covered it; fixtures prove
				// suppression by having a flagged line with no want.
				continue
			}
			pos := loader.Fset.Position(d.Pos)
			if !claim(wants, filepath.Base(pos.Filename), pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			}
		}
		for _, w := range wants {
			if !w.met {
				t.Errorf("%s/%s:%d: no diagnostic matched %s", dir, w.file, w.line, w.raw)
			}
		}
	}
}

// parseWants collects every expectation declared in the package's comments.
func parseWants(t *testing.T, pkg *analysis.Package) ([]*expectation, error) {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lits := wantRE.FindAllString(strings.TrimPrefix(text, "want "), -1)
				if len(lits) == 0 {
					t.Errorf("%s: want comment with no quoted pattern", pos)
					continue
				}
				for _, lit := range lits {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s: bad pattern %s: %v", pos, lit, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad regexp %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &expectation{
						file: filepath.Base(pos.Filename), line: pos.Line, re: re, raw: lit,
					})
				}
			}
		}
	}
	return wants, nil
}

// claim marks the first unmet expectation matching the diagnostic as met.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.met && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.met = true
			return true
		}
	}
	return false
}
