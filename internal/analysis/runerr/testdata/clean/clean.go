// Fixture: every pipeline Run error is consumed — nothing here should be
// flagged, including tbb.Pipeline.Run, which returns no error at all.
package fixture

import (
	"context"
	"fmt"

	"streamgpu/internal/core"
	"streamgpu/internal/ff"
	"streamgpu/internal/tbb"
)

func checks(p *ff.Pipeline) error {
	if err := p.Run(); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	return p.RunContext(context.Background())
}

func checksCore(t *core.ToStream, source func(emit func(any))) error {
	return t.Run(source)
}

func forwards(p *ff.Pipeline) <-chan error {
	errc := make(chan error, 1)
	go func() { errc <- p.Run() }()
	return errc
}

func tbbNoError(q *tbb.Pipeline, s *tbb.Scheduler) {
	q.Run(s, 4) // tbb Run has no error result; not a runerr target
}
