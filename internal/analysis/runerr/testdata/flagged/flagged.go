// Fixture: pipeline Run errors that are dropped.
package fixture

import (
	"streamgpu/internal/core"
	"streamgpu/internal/ff"
)

func ignores(p *ff.Pipeline) {
	p.Run()       // want `not checked`
	_ = p.Run()   // want `assigned to _`
	go p.Run()    // want `discarded by go`
	defer p.Run() // want `discarded by defer`
}

func ignoresCore(t *core.ToStream, source func(emit func(any))) {
	t.Run(source) // want `not checked`
}
