package runerr_test

import (
	"testing"

	"streamgpu/internal/analysis/analysistest"
	"streamgpu/internal/analysis/runerr"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, runerr.Analyzer, "testdata/flagged", "testdata/clean")
}
