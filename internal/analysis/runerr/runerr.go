// Package runerr defines an analyzer enforcing the fault-tolerance
// contract of the pipeline runtimes: the error returned by Run/RunContext
// on ff, core and tbb pipelines must be consumed.
//
// PR 1 routed stage panics, stage error returns and injected GPU faults
// into exactly that error value; a call like `pipe.Run()` as a bare
// statement (or `_ = pipe.Run()`) silently reverts the program to
// crash-or-corrupt behavior the runtime was built to prevent. The analyzer
// flags discarded results of any method named Run or RunContext, declared
// in one of the pipeline packages, that returns an error.
package runerr

import (
	"go/ast"
	"go/types"

	"streamgpu/internal/analysis"
)

// pipelinePkgs are the packages whose Run contracts are enforced.
var pipelinePkgs = map[string]bool{
	"streamgpu/internal/ff":   true,
	"streamgpu/internal/core": true,
	"streamgpu/internal/tbb":  true,
}

// Analyzer flags discarded Run/RunContext errors on pipeline types.
var Analyzer = &analysis.Analyzer{
	Name: "runerr",
	Doc: "errors returned by Run/RunContext on ff, core and tbb pipelines must be checked; " +
		"discarding them bypasses the fault-tolerance layer",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok && isRunErrCall(pass.TypesInfo, call) {
					pass.Reportf(call.Pos(), "error returned by %s is not checked", runName(pass.TypesInfo, call))
				}
			case *ast.GoStmt:
				if isRunErrCall(pass.TypesInfo, stmt.Call) {
					pass.Reportf(stmt.Call.Pos(), "error returned by %s is discarded by go statement; run it in a goroutine that forwards the error", runName(pass.TypesInfo, stmt.Call))
				}
			case *ast.DeferStmt:
				if isRunErrCall(pass.TypesInfo, stmt.Call) {
					pass.Reportf(stmt.Call.Pos(), "error returned by %s is discarded by defer statement", runName(pass.TypesInfo, stmt.Call))
				}
			case *ast.AssignStmt:
				checkAssign(pass, stmt)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags Run errors assigned to the blank identifier. Unlike
// completion events (gpuwait), `_ =` is not an accepted opt-out here: the
// error is the only failure signal the runtime emits.
func checkAssign(pass *analysis.Pass, stmt *ast.AssignStmt) {
	if len(stmt.Lhs) != len(stmt.Rhs) {
		// err is part of a tuple (none of the pipeline Runs return tuples).
		return
	}
	for i, rhs := range stmt.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isRunErrCall(pass.TypesInfo, call) {
			continue
		}
		if id, ok := stmt.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(call.Pos(), "error returned by %s is assigned to _; handle it", runName(pass.TypesInfo, call))
		}
	}
}

// isRunErrCall reports whether call invokes Run or RunContext declared on a
// type of one of the pipeline packages, returning an error.
func isRunErrCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || (fn.Name() != "Run" && fn.Name() != "RunContext") {
		return false
	}
	recv := analysis.ReceiverNamed(fn)
	if recv == nil || recv.Obj().Pkg() == nil || !pipelinePkgs[recv.Obj().Pkg().Path()] {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			return true
		}
	}
	return false
}

// runName renders the call for diagnostics ("pipe.Run").
func runName(info *types.Info, call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	return "Run"
}
