// Package gpuwait defines an analyzer enforcing the completion-event
// contract of the simulated GPU stream API.
//
// Every asynchronous stream operation (Stream.CopyH2D, CopyD2H, CopyD2D,
// Launch, Record and their Exclusive/Staged variants) returns a *des.Event
// that carries the operation's outcome — including any injected fault
// (gpu.WaitErr surfaces those as errors). A call whose event is discarded
// silently swallows faults: the program observes neither completion nor
// failure, which is exactly the lost-completion-event bug class the paper
// warns about. The analyzer flags stream-op calls used as expression
// statements or spawned with go/defer. Assigning the event to a variable
// satisfies the contract (the variable is then subject to ordinary
// unused-variable checking); assigning to the blank identifier (`_ = ...`)
// is the errcheck-style explicit opt-out for code that intentionally
// ignores the outcome — the author has visibly acknowledged the event.
package gpuwait

import (
	"go/ast"
	"go/types"

	"streamgpu/internal/analysis"
)

// gpuPkg and desPkg are the packages whose types define the contract.
const (
	gpuPkg = "streamgpu/internal/gpu"
	desPkg = "streamgpu/internal/des"
)

// Analyzer flags discarded completion events from gpu.Stream operations.
var Analyzer = &analysis.Analyzer{
	Name: "gpuwait",
	Doc: "completion events returned by gpu.Stream operations must be waited on or assigned; " +
		"a dropped event discards injected faults",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok && isEventCall(pass.TypesInfo, call) {
					pass.Reportf(call.Pos(), "result of %s is a completion event; wait on it (gpu.WaitErr) or assign it", callName(call))
				}
			case *ast.GoStmt:
				if isEventCall(pass.TypesInfo, stmt.Call) {
					pass.Reportf(stmt.Call.Pos(), "completion event of %s is discarded by go statement", callName(stmt.Call))
				}
			case *ast.DeferStmt:
				if isEventCall(pass.TypesInfo, stmt.Call) {
					pass.Reportf(stmt.Call.Pos(), "completion event of %s is discarded by defer statement", callName(stmt.Call))
				}
			}
			return true
		})
	}
	return nil
}

// isEventCall reports whether call invokes a method on gpu.Stream whose
// single result is a *des.Event.
func isEventCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil {
		return false
	}
	recv := analysis.ReceiverNamed(fn)
	if recv == nil || recv.Obj().Name() != "Stream" || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != gpuPkg {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Results().Len() == 1 && analysis.IsNamed(sig.Results().At(0).Type(), desPkg, "Event")
}

// callName renders the call for diagnostics ("st.Launch").
func callName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	return "call"
}
