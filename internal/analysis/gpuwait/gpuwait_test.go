package gpuwait_test

import (
	"testing"

	"streamgpu/internal/analysis/analysistest"
	"streamgpu/internal/analysis/gpuwait"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, gpuwait.Analyzer, "testdata/flagged", "testdata/clean")
}
