// Fixture: stream operations whose completion events are dropped.
package fixture

import (
	"streamgpu/internal/des"
	"streamgpu/internal/gpu"
)

func drops(p *des.Proc, st *gpu.Stream, dst *gpu.Buf, h *gpu.HostBuf, k *gpu.Kernel) {
	st.CopyH2D(p, dst, 0, h, 0, 64)            // want `completion event`
	st.Launch(p, k, gpu.Grid{})                // want `completion event`
	go st.CopyD2H(p, h, 0, dst, 0, 64)         // want `discarded by go`
	defer st.Record(p)                         // want `discarded by defer`
	st.CopyD2D(p, dst, 0, dst, 64, 32)         // want `completion event`
	st.CopyH2DStaged(p, dst, 0, h, 0, 64, 0.5) // want `completion event`
}
