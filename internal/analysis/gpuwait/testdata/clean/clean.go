// Fixture: every completion event is kept, waited on, or explicitly
// discarded with the `_ =` opt-out — nothing here should be flagged.
package fixture

import (
	"streamgpu/internal/des"
	"streamgpu/internal/gpu"
)

func waits(p *des.Proc, st *gpu.Stream, dst *gpu.Buf, h *gpu.HostBuf, k *gpu.Kernel) error {
	ev := st.CopyH2D(p, dst, 0, h, 0, 64)
	if err := gpu.WaitErr(p, ev); err != nil {
		return err
	}
	evs := []*des.Event{
		st.Launch(p, k, gpu.Grid{}),
		st.CopyD2H(p, h, 0, dst, 0, 64),
	}
	return gpu.WaitErr(p, evs...)
}

func optsOut(p *des.Proc, st *gpu.Stream) {
	// Explicitly acknowledged drop: the errcheck-style opt-out.
	_ = st.Record(p)
	// Synchronize returns no event; nothing to flag.
	st.Synchronize(p)
}
