package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"testing"

	"streamgpu/internal/analysis/dataflow"
)

// parseBody parses src (a full file) and returns the body of its first
// function declaration.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "t.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// names is a set of identifier names; nil means "top" (every name), the
// identity of the intersection join below.
type names map[string]bool

func (s names) sorted() []string {
	var out []string
	for n := range s {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// assignedIn collects the names assigned by one CFG node.
func assignedIn(n ast.Node) []string {
	var out []string
	ast.Inspect(n, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		as, ok := nd.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
				out = append(out, id.Name)
			}
		}
		return true
	})
	return out
}

// definitelyAssigned is the canonical must-analysis: a name is in the fact
// only if every path to the point assigns it. Init is nil ("top"), the
// identity of the intersection.
func definitelyAssigned(g *dataflow.CFG) dataflow.Result[names] {
	return dataflow.Forward(g, dataflow.Problem[names]{
		Init:     func() names { return nil },
		Boundary: func() names { return names{} },
		Join: func(a, b names) names {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			out := names{}
			for n := range a {
				if b[n] {
					out[n] = true
				}
			}
			return out
		},
		Equal: namesEqual,
		Transfer: func(n ast.Node, in names) names {
			assigned := assignedIn(n)
			if len(assigned) == 0 {
				return in
			}
			out := names{}
			for k := range in {
				out[k] = true
			}
			for _, k := range assigned {
				out[k] = true
			}
			return out
		},
	})
}

// maybeAssigned is the union dual: a name is in the fact if some path
// assigns it. Init is the empty set, the identity of union.
func maybeAssigned(g *dataflow.CFG) dataflow.Result[names] {
	return dataflow.Forward(g, dataflow.Problem[names]{
		Init:     func() names { return names{} },
		Boundary: func() names { return names{} },
		Join: func(a, b names) names {
			out := names{}
			for n := range a {
				out[n] = true
			}
			for n := range b {
				out[n] = true
			}
			return out
		},
		Equal: namesEqual,
		Transfer: func(n ast.Node, in names) names {
			out := names{}
			for k := range in {
				out[k] = true
			}
			for _, k := range assignedIn(n) {
				out[k] = true
			}
			return out
		},
	})
}

func namesEqual(a, b names) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for n := range a {
		if !b[n] {
			return false
		}
	}
	return true
}

func atExit(t *testing.T, src string, solve func(*dataflow.CFG) dataflow.Result[names]) names {
	t.Helper()
	g := dataflow.New(parseBody(t, src))
	res := solve(g)
	return res.In[g.Exit]
}

func expect(t *testing.T, got names, want ...string) {
	t.Helper()
	g := got.sorted()
	sort.Strings(want)
	if len(g) != len(want) {
		t.Fatalf("fact = %v, want %v", g, want)
	}
	for i := range g {
		if g[i] != want[i] {
			t.Fatalf("fact = %v, want %v", g, want)
		}
	}
}

func TestMustBranchBothPaths(t *testing.T) {
	got := atExit(t, `package p
func f(c bool) {
	var x, y int
	if c {
		x = 1
		y = 1
	} else {
		x = 2
	}
	_ = x
	_ = y
}`, definitelyAssigned)
	// x is assigned on both arms, y only on one: the must-join keeps x
	// and drops y.
	expect(t, got, "x")
}

func TestMustLoopMayRunZeroTimes(t *testing.T) {
	got := atExit(t, `package p
func f(n int) {
	var x int
	for i := 0; i < n; i++ {
		x = 1
	}
	_ = x
}`, definitelyAssigned)
	// The loop body may never run: x must not be definitely assigned.
	// This is the classic must-analysis convergence case: seeding loop
	// blocks with the empty set instead of top would wrongly erase i too.
	expect(t, got, "i")
}

func TestMustInfiniteLoopWithBreak(t *testing.T) {
	got := atExit(t, `package p
func f(c bool) {
	var x int
	for {
		x = 1
		if c {
			break
		}
	}
	_ = x
}`, definitelyAssigned)
	// The only way out is the break after the assignment: x IS definite.
	expect(t, got, "x")
}

func TestMayLoopAndSwitch(t *testing.T) {
	got := atExit(t, `package p
func f(n int) {
	var x, y, z int
	for i := 0; i < n; i++ {
		switch {
		case n > 1:
			x = 1
		default:
			y = 1
		}
	}
	if n > 2 {
		z = 1
	}
	_, _, _ = x, y, z
}`, maybeAssigned)
	expect(t, got, "i", "x", "y", "z")
}

func TestNestedLoopsConverge(t *testing.T) {
	// Nested loops with cross-assignments: the solver must reach a fixed
	// point (the block-visit cap would panic the test binary through a
	// wrong result, not a hang, so the assertion is on the answer).
	got := atExit(t, `package p
func f(n int) {
	var a, b int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a = b
		}
		b = a
	}
	_, _ = a, b
}`, maybeAssigned)
	expect(t, got, "a", "b", "i", "j")
}

func TestBackwardUnion(t *testing.T) {
	// A backward may-analysis of assigned names: at function entry, every
	// assignment on some path onward is visible.
	src := `package p
func f(c bool) {
	var x, y int
	if c {
		x = 1
		return
	}
	y = 2
	_, _ = x, y
}`
	g := dataflow.New(parseBody(t, src))
	res := dataflow.Backward(g, dataflow.Problem[names]{
		Init:     func() names { return names{} },
		Boundary: func() names { return names{} },
		Join: func(a, b names) names {
			out := names{}
			for n := range a {
				out[n] = true
			}
			for n := range b {
				out[n] = true
			}
			return out
		},
		Equal: namesEqual,
		Transfer: func(n ast.Node, in names) names {
			out := names{}
			for k := range in {
				out[k] = true
			}
			for _, k := range assignedIn(n) {
				out[k] = true
			}
			return out
		},
	})
	expect(t, res.Out[g.Entry], "x", "y")
}

func TestDefersCollected(t *testing.T) {
	g := dataflow.New(parseBody(t, `package p
func f() {
	defer one()
	if true {
		defer two()
	}
}`))
	if len(g.Defers) != 2 {
		t.Fatalf("Defers = %d, want 2", len(g.Defers))
	}
}
