package dataflow

import "go/ast"

// Problem describes one dataflow analysis over facts of type F. The four
// functions define the lattice and its transfer; the solver owns iteration
// order and the fixpoint test.
//
// Init is the optimistic assumption a block starts from before any
// iteration — it must be the identity of Join. For a may-analysis
// (union join: "reaches along some path") that is the empty fact; for a
// must-analysis (intersection join: "holds along every path") it is the
// top element, typically "everything holds". Getting Init wrong is the
// classic must-analysis bug: seeding loops with the empty fact makes the
// intersection at the loop head empty forever.
type Problem[F any] struct {
	// Init returns the per-block starting fact: the identity of Join.
	Init func() F
	// Boundary returns the fact flowing into the entry block (Forward) or
	// out of the exit block (Backward).
	Boundary func() F
	// Join merges facts where control-flow paths meet. It must not mutate
	// its arguments.
	Join func(a, b F) F
	// Equal is the fixpoint test.
	Equal func(a, b F) bool
	// Transfer applies one node's effect to the incoming fact and returns
	// the outgoing fact. It must not mutate in.
	Transfer func(n ast.Node, in F) F
}

// Result holds the fixpoint solution: the fact at each block's entry (In)
// and exit (Out), in the direction of the analysis.
type Result[F any] struct {
	In, Out map[*Block]F
}

// maxVisitsPerBlock bounds the solver against a lattice with an infinite
// ascending chain (a Problem bug): after this many re-visits of a single
// block the solver stops refining and returns the current approximation,
// which for a monotone problem is still sound, just less precise.
const maxVisitsPerBlock = 256

// Forward solves the problem in execution order: In[b] joins the Out of
// b's predecessors, and Transfer runs over b's nodes first to last.
func Forward[F any](g *CFG, p Problem[F]) Result[F] {
	return solve(g, p, false)
}

// Backward solves the problem against execution order: In[b] (the fact at
// the block's *end*) joins the Out of b's successors, and Transfer runs
// over b's nodes last to first.
func Backward[F any](g *CFG, p Problem[F]) Result[F] {
	return solve(g, p, true)
}

func solve[F any](g *CFG, p Problem[F], backward bool) Result[F] {
	res := Result[F]{In: make(map[*Block]F, len(g.Blocks)), Out: make(map[*Block]F, len(g.Blocks))}
	for _, blk := range g.Blocks {
		res.Out[blk] = p.Init()
	}
	boundary := g.Entry
	if backward {
		boundary = g.Exit
	}
	// Worklist seeded with every block in index order: deterministic, and
	// unreachable blocks still get a (fully optimistic) solution.
	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make([]bool, len(g.Blocks))
	for i := range queued {
		queued[i] = true
	}
	visits := make([]int, len(g.Blocks))
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false
		if visits[blk.Index] >= maxVisitsPerBlock {
			continue
		}
		visits[blk.Index]++

		in := p.Init()
		if blk == boundary {
			in = p.Boundary()
		}
		flowIn := blk.Preds
		if backward {
			flowIn = blk.Succs
		}
		for _, pred := range flowIn {
			in = p.Join(in, res.Out[pred])
		}
		res.In[blk] = in

		out := in
		if backward {
			for i := len(blk.Nodes) - 1; i >= 0; i-- {
				out = p.Transfer(blk.Nodes[i], out)
			}
		} else {
			for _, n := range blk.Nodes {
				out = p.Transfer(n, out)
			}
		}
		if p.Equal(out, res.Out[blk]) {
			continue
		}
		res.Out[blk] = out
		flowOut := blk.Succs
		if backward {
			flowOut = blk.Preds
		}
		for _, next := range flowOut {
			if !queued[next.Index] {
				queued[next.Index] = true
				work = append(work, next)
			}
		}
	}
	return res
}
