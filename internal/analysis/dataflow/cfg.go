// Package dataflow is the per-function core of the interprocedural
// analysis layer: a control-flow graph derived from AST statements plus a
// forward/backward worklist solver over a caller-supplied lattice.
//
// The CFG is statement-granular. Each basic block holds a run of ast.Node
// values — simple statements, plus the condition / tag / range expressions
// of the control statements that end the block — and edges follow Go's
// structured control flow: if/else, for and range loops, expression and
// type switches (including fallthrough), select, labeled break/continue,
// goto, and return. Analyzers walk inside each node themselves; the graph
// only fixes the order and branching between them.
//
// Deliberate approximations, shared by every analyzer built on top (see
// DESIGN.md §13 for the soundness discussion):
//
//   - panics and runtime.Goexit do not end blocks; a call that cannot
//     return still appears to fall through.
//   - defer statements appear as ordinary nodes where they execute, and
//     are additionally collected in CFG.Defers so exit-sensitive analyses
//     (escapepool's must-release, lockorder's held-set) can model their
//     run-at-return semantics without re-walking the function.
//   - select is a nondeterministic branch; an empty select (which blocks
//     forever) still gets an edge onward so the graph stays connected.
package dataflow

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal run of nodes with a single entry.
type Block struct {
	// Index is the block's position in CFG.Blocks, stable across runs so
	// diagnostics derived from block order are deterministic.
	Index int
	// Nodes are the statements and control expressions executed in order.
	Nodes []ast.Node
	// Succs are the possible successors in source order (then before else,
	// case clauses in declaration order).
	Succs []*Block
	// Preds are the predecessors, maintained by the builder.
	Preds []*Block
}

// CFG is one function body's control-flow graph.
type CFG struct {
	// Blocks holds every block; Entry has index 0, Exit index 1.
	// Unreachable blocks (e.g. code after return) are retained so
	// analyzers still see their nodes.
	Blocks []*Block
	// Entry is the function's entry block; Exit is the single synthetic
	// exit block every return and final fallthrough reaches.
	Entry, Exit *Block
	// Defers lists every defer statement in the body, in syntactic order —
	// the run-at-return set for exit-sensitive analyses.
	Defers []*ast.DeferStmt
}

// labelTarget holds the three places a label can send control.
type labelTarget struct {
	entry      *Block // the labeled statement's first block (goto target)
	breakTo    *Block // block after the labeled statement (break target)
	continueTo *Block // loop post/head, set only when the label is on a loop
}

type pendingGoto struct {
	from  *Block
	label string
}

// builder carries the construction state.
type builder struct {
	cfg *CFG
	// cur is the block new nodes append to; nil after a terminating
	// statement (return/branch), in which case a fresh unreachable block
	// is started on the next node.
	cur *Block
	// breaks / continues are the targets of an unlabeled break/continue,
	// innermost last.
	breaks, continues []*Block
	// fallthroughTo is the next case clause's block inside a switch body.
	fallthroughTo *Block
	// labels maps every label seen so far to its targets. Labels are
	// registered before their statement is visited, so break/continue to
	// an enclosing label always resolves immediately; only goto can be a
	// forward reference.
	labels map[string]*labelTarget
	// labelHint is the pending label for the next loop statement, which
	// claims it as its continue target.
	labelHint *labelTarget
	// gotos are forward gotos to labels not yet seen, patched at the end.
	gotos []pendingGoto
}

// New builds the CFG of one function body. A nil body yields the bare
// entry→exit graph.
func New(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{}, labels: make(map[string]*labelTarget)}
	b.cfg.Entry = b.newBlock() // index 0
	b.cfg.Exit = b.newBlock()  // index 1
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(b.cfg.Exit)
	// Patch forward gotos now that every label is known. Unknown labels
	// (malformed code the type checker would reject) fall to the exit.
	for _, g := range b.gotos {
		if t := b.labels[g.label]; t != nil {
			b.edge(g.from, t.entry)
		} else {
			b.edge(g.from, b.cfg.Exit)
		}
	}
	return b.cfg
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an edge to target (if the current block
// is live) and leaves no current block.
func (b *builder) jump(target *Block) {
	if b.cur != nil {
		b.edge(b.cur, target)
	}
	b.cur = nil
}

func (b *builder) startBlock(target *Block) { b.cur = target }

// add appends one node to the current block, starting a fresh (unreachable)
// block if control already terminated.
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// live returns the current block, materializing one if control terminated.
func (b *builder) live() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

// takeLabelHint consumes the pending loop label, if any.
func (b *builder) takeLabelHint() *labelTarget {
	t := b.labelHint
	b.labelHint = nil
	return t
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		join := b.newBlock()
		thenB := b.newBlock()
		b.edge(cond, thenB)
		b.startBlock(thenB)
		b.stmt(s.Body)
		b.jump(join)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cond, elseB)
			b.startBlock(elseB)
			b.stmt(s.Else)
			b.jump(join)
		} else {
			b.edge(cond, join)
		}
		b.startBlock(join)

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		hint := b.takeLabelHint()
		head := b.newBlock()
		join := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		if hint != nil {
			hint.continueTo = post
		}
		b.jump(head)
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(b.cur, join)
		}
		// A condition-less for only exits via break.
		body := b.newBlock()
		b.edge(b.live(), body)
		b.startBlock(body)
		b.pushLoop(join, post)
		b.stmt(s.Body)
		b.popLoop()
		b.jump(post)
		if s.Post != nil {
			b.startBlock(post)
			b.stmt(s.Post)
			b.jump(head)
		}
		b.startBlock(join)

	case *ast.RangeStmt:
		hint := b.takeLabelHint()
		head := b.newBlock()
		join := b.newBlock()
		if hint != nil {
			hint.continueTo = head
		}
		b.jump(head)
		b.startBlock(head)
		b.add(s) // the range statement itself: per-iteration bind + test
		b.edge(b.cur, join)
		body := b.newBlock()
		b.edge(b.cur, body)
		b.startBlock(body)
		b.pushLoop(join, head)
		b.stmt(s.Body)
		b.popLoop()
		b.jump(head)
		b.startBlock(join)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		// Case expressions are evaluated during dispatch: keep them in the
		// head block so fallthrough edges skip them, as execution does.
		for _, cl := range s.Body.List {
			for _, e := range cl.(*ast.CaseClause).List {
				b.add(e)
			}
		}
		b.switchBody(s.Body)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body)

	case *ast.SelectStmt:
		head := b.live()
		join := b.newBlock()
		if len(s.Body.List) == 0 {
			// select{} blocks forever; keep the graph connected anyway.
			b.jump(join)
		} else {
			for _, cl := range s.Body.List {
				comm := cl.(*ast.CommClause)
				cb := b.newBlock()
				b.edge(head, cb)
				b.startBlock(cb)
				if comm.Comm != nil {
					b.stmt(comm.Comm)
				}
				b.breaks = append(b.breaks, join)
				b.stmtList(comm.Body)
				b.breaks = b.breaks[:len(b.breaks)-1]
				b.jump(join)
			}
			b.cur = nil
		}
		b.startBlock(join)

	case *ast.LabeledStmt:
		// Land the label on a fresh block so goto can target it, and
		// pre-create the break target so `break L` resolves while the
		// labeled statement is still being built.
		entry := b.newBlock()
		b.jump(entry)
		b.startBlock(entry)
		t := &labelTarget{entry: entry, breakTo: b.newBlock()}
		b.labels[s.Label.Name] = t
		b.labelHint = t
		b.stmt(s.Stmt)
		b.labelHint = nil
		b.jump(t.breakTo)
		b.startBlock(t.breakTo)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.EmptyStmt:
		// nothing

	default:
		// Simple statements: assignment, expression, send, inc/dec, decl, go.
		b.add(s)
	}
}

// switchBody wires the clauses of an expression or type switch: every
// clause is a successor of the head block, fallthrough chains to the next
// clause's body, and a missing default adds a head→join edge.
func (b *builder) switchBody(body *ast.BlockStmt) {
	head := b.live()
	join := b.newBlock()
	var clauseBlocks []*Block
	hasDefault := false
	for _, cl := range body.List {
		cb := b.newBlock()
		clauseBlocks = append(clauseBlocks, cb)
		b.edge(head, cb)
		if cl.(*ast.CaseClause).List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, join)
	}
	for i, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		b.startBlock(clauseBlocks[i])
		saveFt := b.fallthroughTo
		b.fallthroughTo = nil
		if i+1 < len(clauseBlocks) {
			b.fallthroughTo = clauseBlocks[i+1]
		}
		b.breaks = append(b.breaks, join)
		b.stmtList(cc.Body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.fallthroughTo = saveFt
		b.jump(join)
	}
	b.startBlock(join)
}

func (b *builder) pushLoop(breakTo, continueTo *Block) {
	b.breaks = append(b.breaks, breakTo)
	b.continues = append(b.continues, continueTo)
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// branch handles break/continue/goto/fallthrough. Labels always resolve
// immediately for break/continue (a label encloses its branch statement,
// so it was registered on the way down); only goto can point forward.
func (b *builder) branch(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if t := b.labels[s.Label.Name]; t != nil && t.breakTo != nil {
				b.jump(t.breakTo)
				return
			}
		} else if n := len(b.breaks); n > 0 {
			b.jump(b.breaks[n-1])
			return
		}
	case token.CONTINUE:
		if s.Label != nil {
			if t := b.labels[s.Label.Name]; t != nil && t.continueTo != nil {
				b.jump(t.continueTo)
				return
			}
		} else if n := len(b.continues); n > 0 {
			b.jump(b.continues[n-1])
			return
		}
	case token.GOTO:
		if s.Label != nil {
			if t := b.labels[s.Label.Name]; t != nil {
				b.jump(t.entry)
				return
			}
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			b.cur = nil
			return
		}
	case token.FALLTHROUGH:
		if b.fallthroughTo != nil {
			b.jump(b.fallthroughTo)
			return
		}
	}
	// Malformed (the type checker would reject it): terminate the block.
	b.cur = nil
}
