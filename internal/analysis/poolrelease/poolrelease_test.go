package poolrelease_test

import (
	"testing"

	"streamgpu/internal/analysis/analysistest"
	"streamgpu/internal/analysis/poolrelease"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, poolrelease.Analyzer, "testdata/flagged", "testdata/clean")
}
