// Package poolrelease defines an analyzer enforcing the free-list ownership
// contract: a value obtained from a pool.Pool or pool.Slices Get must reach
// a Release on some path of the acquiring function, or escape it (returned,
// stored, sent, or handed to another function that takes over ownership).
//
// Pooled containers that are acquired and dropped silently defeat the whole
// point of the free list — every such Get is a fresh allocation on the next
// cycle, and the pool's gets/releases counters drift apart without any test
// failing. The analyzer is intentionally flow-insensitive, like gpufree: one
// Release call (on the pool, or a Release method on the value itself, as
// dedup.Batch recycling does — including inside a defer or closure) anywhere
// in the function satisfies the contract.
//
// Uses that do NOT count as an escape: method calls on the value other than
// Release, field access, indexing, and reslicing — those borrow the
// container without moving ownership. Everything else — returns, composite
// literals, channel sends, unknown helpers — conservatively counts as an
// ownership transfer to code the analyzer cannot see.
package poolrelease

import (
	"go/ast"
	"go/types"

	"streamgpu/internal/analysis"
)

const poolPkg = "streamgpu/internal/pool"

// Analyzer flags pooled values that are neither released nor escape.
var Analyzer = &analysis.Analyzer{
	Name: "poolrelease",
	Doc: "a value from pool.Get must be released on some path or escape the acquiring function; " +
		"dropped containers turn every later Get into a fresh allocation",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// acquire is one tracked Get result variable.
type acquire struct {
	call *ast.CallExpr
	obj  types.Object
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var acqs []acquire
	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok && isPoolGet(info, call) {
				pass.Reportf(call.Pos(), "pooled value from Get is discarded without Release")
			}
		case *ast.AssignStmt:
			for _, a := range getAssigns(info, stmt) {
				if a.obj == nil {
					pass.Reportf(a.call.Pos(), "pooled value from Get is assigned to _ and is lost to the free list; keep it and Release it")
					continue
				}
				acqs = append(acqs, a)
			}
		}
		return true
	})
	for _, a := range acqs {
		released, escaped := traceUses(info, body, a.obj)
		if !released && !escaped {
			pass.Reportf(a.call.Pos(), "pooled value %s is never released and does not escape; return it to its pool with Release",
				a.obj.Name())
		}
	}
}

// getAssigns extracts the variables bound by stmt's pool Get calls. A nil
// obj means the value went to the blank identifier.
func getAssigns(info *types.Info, stmt *ast.AssignStmt) []acquire {
	if len(stmt.Lhs) != len(stmt.Rhs) {
		return nil // Get returns a single value; tuple forms are not it
	}
	var out []acquire
	for i, rhs := range stmt.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isPoolGet(info, call) {
			out = append(out, acquire{call: call, obj: lhsObj(info, stmt.Lhs[i])})
		}
	}
	return out
}

// lhsObj resolves the object bound by an assignment target, nil for blank;
// non-ident targets (fields, indexes) count as escapes and are not tracked.
func lhsObj(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return &escapeSentinel
	}
	if id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return &escapeSentinel
}

// escapeSentinel stands for "assigned somewhere we cannot track" — treated
// as escaped, never reported.
var escapeSentinel = struct{ types.Object }{}

// traceUses classifies every use of obj inside body.
func traceUses(info *types.Info, body *ast.BlockStmt, obj types.Object) (released, escaped bool) {
	if obj == types.Object(&escapeSentinel) {
		return false, true
	}
	analysis.WithStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		switch classifyUse(info, id, stack) {
		case useRelease:
			released = true
		case useEscape:
			escaped = true
		}
		return true
	})
	return released, escaped
}

type useKind int

const (
	useBorrow  useKind = iota // read-only use; does not discharge the contract
	useRelease                // handed back to a pool
	useEscape                 // ownership left the function
)

// classifyUse decides what one identifier occurrence means for ownership.
func classifyUse(info *types.Info, id *ast.Ident, stack []ast.Node) useKind {
	if len(stack) == 0 {
		return useEscape
	}
	parent := stack[len(stack)-1]

	// Anywhere under a return statement: the value leaves the function.
	for _, anc := range stack {
		if _, ok := anc.(*ast.ReturnStmt); ok {
			return useEscape
		}
	}

	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// v.M(...) or v.Field: methods and fields borrow the container;
		// a Release method (dedup.Batch style) discharges the contract.
		if p.X == id {
			if len(stack) >= 2 {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == p && p.Sel.Name == "Release" {
					return useRelease
				}
			}
			return useBorrow
		}
		return useEscape
	case *ast.IndexExpr:
		if p.X == id {
			return useBorrow // s[i]: element access borrows the backing array
		}
		return useEscape
	case *ast.SliceExpr:
		if p.X == id {
			return useBorrow // s[:n]: reslicing in place, common for reuse
		}
		return useEscape
	case *ast.CallExpr:
		// Value passed as an argument.
		return classifyArg(info, p)
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == ast.Expr(id) {
				return useBorrow // reassignment target, not a read
			}
		}
		return useEscape // aliased into another variable
	}
	return useEscape // composite literal, send, unary &, range, binary op, ...
}

// classifyArg decides whether passing the value to call transfers ownership.
// Handing it to a pool's Release is the discharge; any other callee — known
// or builtin — conservatively takes over ownership (append may reallocate,
// helpers may retain).
func classifyArg(info *types.Info, call *ast.CallExpr) useKind {
	fn := analysis.Callee(info, call)
	if fn == nil {
		return useEscape
	}
	if fn.Name() == "Release" && isPoolMethod(fn) {
		return useRelease
	}
	return useEscape
}

// isPoolGet reports whether call invokes Get on a pool.Pool or pool.Slices
// (including the Bytes and Int32s aliases, which share the Slices methods).
func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	return fn != nil && fn.Name() == "Get" && isPoolMethod(fn)
}

// isPoolMethod reports whether fn's receiver is one of the pool package's
// free-list types.
func isPoolMethod(fn *types.Func) bool {
	recv := analysis.ReceiverNamed(fn)
	if recv == nil {
		return false
	}
	obj := recv.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != poolPkg {
		return false
	}
	switch obj.Name() {
	case "Pool", "Slices":
		return true
	}
	return false
}
