// Fixture: pooled values handled correctly — released, released via the
// value's own Release method, or escaping to an owner the analyzer cannot
// see.
package fixture

import (
	"sync"

	"streamgpu/internal/pool"
)

type thing struct{ n int }

func (t *thing) Release() { things.Release(t) }

var (
	things = pool.New[*thing]("fixture.things", func() *thing { return new(thing) })
	bufs   = pool.NewBytes("fixture.bufs")
	sink   int
)

func releasesToPool() {
	b := bufs.Get(512)
	b[1] = 2
	sink = int(b[1])
	bufs.Release(b)
}

func releasesViaMethod() {
	t := things.Get()
	t.n = 1
	defer t.Release()
}

func releasesOnOnePath(fail bool) {
	t := things.Get()
	if fail {
		t.Release() // flow-insensitive: one Release anywhere satisfies
		return
	}
	t.n = 3
	things.Release(t)
}

func escapesViaReturn() *thing {
	t := things.Get()
	t.n = 4
	return t
}

func escapesViaCallback(emit func(*thing)) {
	t := things.Get()
	emit(t) // the callback takes over ownership
}

func escapesViaClosure() func() {
	t := things.Get()
	return func() { t.Release() }
}

func resliceThenRelease() {
	b := bufs.Get(256)
	b = b[:128]
	b[0] = 9
	bufs.Release(b)
}

// laneFanOut is the lane-parallel compress shape: acquire a matcher per
// lane, hand it to a spawned worker, join, then release from the spawner.
// The goroutine only borrows; ownership stays with the fan-out function.
func laneFanOut(wg *sync.WaitGroup) {
	t := things.Get()
	wg.Add(1)
	go func() {
		sink = t.n
		wg.Done()
	}()
	wg.Wait()
	things.Release(t)
}
