// Fixture: pooled values that leak — acquired from a free list but never
// released and never escaping.
package fixture

import "streamgpu/internal/pool"

type thing struct{ n int }

func (t *thing) Release() { things.Release(t) }

var (
	things = pool.New[*thing]("fixture.things", func() *thing { return new(thing) })
	bufs   = pool.NewBytes("fixture.bufs")
	starts = pool.NewInt32s("fixture.starts")
	sink   int
)

func leaksObject() {
	t := things.Get() // want `never released`
	t.n = 7           // field access borrows; the container is still lost
}

func leaksSlice() {
	b := bufs.Get(1024) // want `never released`
	b[0] = 1
	sink = int(b[0])
}

func leaksAfterReslice() {
	s := starts.Get(512) // want `never released`
	s = s[:0]
}

func discards() {
	things.Get() // want `discarded without Release`
}

func blanks() {
	_ = bufs.Get(64) // want `assigned to _`
}

func mustGet() *thing {
	t := things.Get()
	t.n = 1
	return t // escapes: helper hands ownership to its caller
}

func helperLeaks() {
	t := mustGet() // not a Get call: the helper owns the contract
	t.n = 2
}

func borrowsDoNotDischarge() {
	t := things.Get() // want `never released`
	use(t.n)          // reading a field through the selector borrows
}

func use(int) {}

// laneSkippedLeaks models the lane fan-out bug: a matcher acquired for a
// lane that turns out empty is dropped on the early return instead of
// going back to the free list.
func laneSkippedLeaks(empty bool) {
	t := things.Get() // want `never released`
	if empty {
		return // lane had no blocks; the matcher is lost
	}
	use(t.n)
}
