package analysis_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"streamgpu/internal/analysis"
	"streamgpu/internal/analysis/goleak"
)

// loadSuppress runs goleak over the suppress fixture, which leaks a
// goroutine under each directive shape.
func loadSuppress(t *testing.T) (*analysis.Loader, []analysis.Diagnostic) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.SharedLoader(cwd)
	pkg, err := loader.CheckDir(filepath.Join(cwd, "testdata/suppress"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{goleak.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	return loader, diags
}

func TestSuppressionsAndMalformedDirectives(t *testing.T) {
	loader, diags := loadSuppress(t)

	var suppressed, unsuppressedLeaks int
	var malformed []string
	for _, d := range diags {
		switch {
		case d.Analyzer == "streamvet":
			malformed = append(malformed, d.Message)
		case d.Suppressed:
			suppressed++
			if d.SuppressReason != "fixture proves a reasoned directive suppresses the diagnostic" {
				t.Errorf("suppressed diagnostic carries reason %q", d.SuppressReason)
			}
		default:
			unsuppressedLeaks++
		}
	}
	// One reasoned directive suppresses its leak; the three malformed
	// directives suppress nothing, so their leaks stay reported.
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", suppressed)
	}
	if unsuppressedLeaks != 3 {
		t.Errorf("unsuppressed goleak diagnostics = %d, want 3", unsuppressedLeaks)
	}
	wantMalformed := []string{
		"streamvet:ignore goleak needs a reason",
		"streamvet:ignore needs an analyzer name and a reason",
		"streamvet:ignore names unknown analyzer nosuchcheck",
	}
	sort.Strings(malformed)
	sort.Strings(wantMalformed)
	if strings.Join(malformed, "|") != strings.Join(wantMalformed, "|") {
		t.Errorf("malformed directives = %q, want %q", malformed, wantMalformed)
	}

	// PrintDiagnostics skips suppressed entries and reports the rest.
	var buf bytes.Buffer
	n := analysis.PrintDiagnostics(&buf, loader.Fset, diags)
	if want := len(diags) - 1; n != want {
		t.Errorf("PrintDiagnostics = %d, want %d", n, want)
	}
	if strings.Contains(buf.String(), "fixture proves") {
		t.Error("suppressed diagnostic leaked into text output")
	}
}

func TestDiagnosticsSortedAndJSON(t *testing.T) {
	loader, diags := loadSuppress(t)

	// Stable order: by file, then position, then analyzer.
	positions := make([]int, len(diags))
	for i, d := range diags {
		positions[i] = loader.Fset.Position(d.Pos).Offset
	}
	if !sort.IntsAreSorted(positions) {
		t.Errorf("diagnostics not position-sorted: %v", positions)
	}

	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, loader.Fset, cwd, diags); err != nil {
		t.Fatal(err)
	}
	var out []analysis.JSONDiagnostic
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if len(out) != len(diags) {
		t.Fatalf("JSON has %d entries, want %d (suppressed included)", len(out), len(diags))
	}
	var haveSuppressed bool
	for _, d := range out {
		if d.File != "testdata/suppress/suppress.go" {
			t.Errorf("JSON file path %q not repo-relative", d.File)
		}
		if d.Suppressed {
			haveSuppressed = true
			if d.Reason == "" {
				t.Error("suppressed JSON entry missing its reason")
			}
		}
	}
	if !haveSuppressed {
		t.Error("JSON omits the suppressed diagnostic")
	}
}
