// Package facts is the fact-export mechanism of the interprocedural
// analysis layer: a typed, object-keyed store through which analyzers
// publish what they proved about a declaration so that other passes — the
// same analyzer visiting a downstream package, or a different analyzer
// entirely — can consume it without re-deriving it.
//
// It mirrors golang.org/x/tools/go/analysis Facts closely enough to be
// recognizable (a Fact is a marker-interface value attached to a
// types.Object; import copies into a caller-supplied pointer), with one
// deliberate difference: the x/tools driver serializes facts between
// separate analysis processes, while this repo's driver analyzes the whole
// module in one process, so the store is a plain in-memory map shared by
// every pass of a run. The driver (analysis.RunAnalyzers) visits packages
// in dependency order, which is what makes the callee-before-caller
// summary flow of the interprocedural analyzers (lockorder, ctxprop,
// goleak, escapepool) work: by the time a caller's package is analyzed,
// facts about everything it imports are already in the store.
package facts

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// Fact is a marker interface for analyzer-exported facts. Implementations
// must be pointer types (the store copies through them) and should be
// declared by the exporting analyzer's package.
type Fact interface {
	// AFact brands the type; it is never called.
	AFact()
}

// key identifies one fact: facts of different types attached to the same
// object coexist (an object can carry a lockorder summary and a ctxprop
// summary at once).
type key struct {
	obj types.Object
	t   reflect.Type
}

// Store holds every fact of one analysis run. The zero value is not
// usable; create with NewStore. Safe for concurrent use.
type Store struct {
	mu sync.Mutex
	m  map[key]Fact
}

// NewStore creates an empty fact store.
func NewStore() *Store {
	return &Store{m: make(map[key]Fact)}
}

// factType validates that f is a non-nil pointer and returns its type.
func factType(f Fact) reflect.Type {
	t := reflect.TypeOf(f)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("facts: fact %T must be a pointer type", f))
	}
	return t
}

// Export attaches f to obj, replacing any previous fact of the same type.
// The stored value is a copy, so the caller may reuse f.
func (s *Store) Export(obj types.Object, f Fact) {
	if obj == nil {
		panic("facts: Export with nil object")
	}
	t := factType(f)
	cp := reflect.New(t.Elem())
	cp.Elem().Set(reflect.ValueOf(f).Elem())
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key{obj, t}] = cp.Interface().(Fact)
}

// Import copies the fact of ptr's type attached to obj into ptr and reports
// whether one existed.
func (s *Store) Import(obj types.Object, ptr Fact) bool {
	if obj == nil {
		return false
	}
	t := factType(ptr)
	s.mu.Lock()
	f, ok := s.m[key{obj, t}]
	s.mu.Unlock()
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// ObjectFact pairs an object with one exported fact, for All.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// All returns every stored fact whose type matches example's, in a
// deterministic order (sorted by object position then name) — the global
// view an analyzer needs for whole-program post-processing such as
// lockorder's cycle detection.
func (s *Store) All(example Fact) []ObjectFact {
	t := factType(example)
	s.mu.Lock()
	var out []ObjectFact
	for k, f := range s.m {
		if k.t == t {
			out = append(out, ObjectFact{Object: k.obj, Fact: f})
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		oi, oj := out[i].Object, out[j].Object
		if oi.Pos() != oj.Pos() {
			return oi.Pos() < oj.Pos()
		}
		return oi.Name() < oj.Name()
	})
	return out
}
