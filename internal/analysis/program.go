package analysis

import (
	"go/token"
	"sort"
	"sync"

	"streamgpu/internal/analysis/facts"
)

// Program is the whole set of packages of one analysis run, shared by every
// pass. Interprocedural analyzers use it two ways: Pkgs gives the program
// view (for building the call graph over everything the run loaded), and
// the fact store carries per-object summaries between passes.
//
// Pkgs is in topological import order — a package appears after every
// package it imports. Because the driver visits packages in this order, an
// analyzer that exports a fact about a function has already run on the
// function's package by the time any caller's package is analyzed; that
// callee-before-caller ordering is the backbone of the summary-based
// interprocedural analyzers (lockorder, ctxprop, goleak, escapepool).
type Program struct {
	Fset *token.FileSet
	// Pkgs is every loaded package in topological import order.
	Pkgs []*Package

	facts *facts.Store

	mu    sync.Mutex
	cache map[string]any
}

// NewProgram assembles a program from loaded packages. RunAnalyzers calls
// this; tests may too.
func NewProgram(pkgs []*Package) *Program {
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	return &Program{
		Fset:  fset,
		Pkgs:  topoSort(pkgs),
		facts: facts.NewStore(),
		cache: make(map[string]any),
	}
}

// Facts exposes the program-wide fact store (see the facts package).
func (p *Program) Facts() *facts.Store { return p.facts }

// Cached memoizes an expensive program-wide structure under key — in
// practice the call graph, which every interprocedural analyzer needs but
// must only be built once per run.
func (p *Program) Cached(key string, build func() any) any {
	p.mu.Lock()
	v, ok := p.cache[key]
	p.mu.Unlock()
	if ok {
		return v
	}
	built := build()
	p.mu.Lock()
	defer p.mu.Unlock()
	if v, ok := p.cache[key]; ok { // lost a race: keep the first
		return v
	}
	p.cache[key] = built
	return built
}

// topoSort orders packages callee-first: every package follows the
// packages it imports. Ties (and the unreachable case of a cycle, which Go
// forbids anyway) break on the incoming order, which Load already sorts by
// import path, so the result is deterministic.
func topoSort(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	out := make([]*Package, 0, len(pkgs))
	state := make(map[string]int, len(pkgs)) // 0 new, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p.PkgPath] != 0 {
			return
		}
		state[p.PkgPath] = 1
		imps := p.Types.Imports()
		paths := make([]string, 0, len(imps))
		for _, im := range imps {
			paths = append(paths, im.Path())
		}
		sort.Strings(paths)
		for _, path := range paths {
			if dep, ok := byPath[path]; ok {
				visit(dep)
			}
		}
		state[p.PkgPath] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}
