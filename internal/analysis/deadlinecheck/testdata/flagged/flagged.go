// Fixture: handler paths that enqueue into the fair scheduler without ever
// consulting a deadline.
package fixture

import "streamgpu/internal/server/qos"

func enqueueBlind(s *qos.Sched, cost int) {
	s.Enqueue(1, qos.Item{Cost: cost, Run: func() {}}) // want `without consulting a deadline`
}

// stageAll fans a cost list out across tenant lanes.
func stageAll(s *qos.Sched, costs []int) {
	for i, c := range costs {
		s.Enqueue(uint32(i), qos.Item{Cost: c, Run: func() {}}) // want `without consulting a deadline`
	}
}

// enqueueFromClosure still flags: the closure runs under this function's
// contract and nothing here mentions the decision.
func enqueueFromClosure(s *qos.Sched, cost int) func() {
	return func() {
		s.Enqueue(1, qos.Item{Cost: cost, Run: func() {}}) // want `without consulting a deadline`
	}
}
