// Fixture: enqueue paths that consult the request deadline — or document
// why the enqueued work is exempt from it.
package fixture

import (
	"time"

	"streamgpu/internal/server/qos"
)

func enqueueWithDeadline(s *qos.Sched, cost int, deadline time.Duration) {
	var expiry time.Time
	if deadline > 0 {
		expiry = time.Now().Add(deadline)
	}
	s.Enqueue(1, qos.Item{Cost: cost, Deadline: expiry, Run: func() {}})
}

// enqueueSetsField threads an expiry computed elsewhere; naming the Deadline
// field is consulting the decision.
func enqueueSetsField(s *qos.Sched, cost int, expiry time.Time) {
	s.Enqueue(1, qos.Item{Cost: cost, Deadline: expiry, Run: func() {}})
}

// enqueueExempt ships sealed archive bytes, which carry no deadline on
// purpose: they are already part of the session's stream and must reach the
// writer or the stream is corrupt.
func enqueueExempt(s *qos.Sched, cost int) {
	s.Enqueue(1, qos.Item{Cost: cost, Run: func() {}})
}

// otherQueue is not the fair scheduler; its Enqueue is none of our business.
type otherQueue struct{ items []int }

func (q *otherQueue) Enqueue(cost int) { q.items = append(q.items, cost) }

func enqueueElsewhere(q *otherQueue, cost int) {
	q.Enqueue(cost)
}
