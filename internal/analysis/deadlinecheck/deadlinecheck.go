// Package deadlinecheck defines an analyzer enforcing the serving layer's
// deadline-admission contract: a handler path that enqueues work into the
// fair scheduler ((*qos.Sched).Enqueue) must visibly consult the request's
// deadline — or state, in its doc comment, why the enqueued work is exempt.
//
// The overload design (DESIGN.md §12) fast-fails requests whose estimated
// queue wait exceeds their deadline and expires queued items past theirs;
// both only happen when every enqueue site threads the deadline decision
// through. The failure mode this guards against is quiet: a new handler that
// enqueues without the deadline check still works, it just silently turns
// deadline admission off for that path. Mechanically, an Enqueue call is
// accepted when the enclosing function mentions a deadline at all — an
// identifier, field key, or method name containing "deadline" (the admission
// helpers qualify), or the word "deadline" in the function's doc comment for
// deliberately exempt paths (e.g. sealed dedup batches, whose bytes are
// already part of an archive stream and must reach the writer regardless).
package deadlinecheck

import (
	"go/ast"
	"strings"

	"streamgpu/internal/analysis"
)

const qosPkg = "streamgpu/internal/server/qos"

// Analyzer flags qos.Sched.Enqueue calls in functions that never consult a
// deadline.
var Analyzer = &analysis.Analyzer{
	Name: "deadlinecheck",
	Doc:  "functions calling (*qos.Sched).Enqueue must consult the request deadline or document the exemption in their doc comment",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		// The contract binds handler paths in production code; scheduler
		// tests drive Enqueue directly to probe fairness mechanics.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			check(pass, fn)
		}
	}
	return nil
}

// check inspects one function (function literals inside it included — the
// deadline decision may live in the enclosing scope).
func check(pass *analysis.Pass, fn *ast.FuncDecl) {
	var enqueues []*ast.CallExpr
	mentions := fn.Doc != nil && strings.Contains(strings.ToLower(fn.Doc.Text()), "deadline")
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if strings.Contains(strings.ToLower(n.Name), "deadline") {
				mentions = true
			}
		case *ast.CallExpr:
			if isSchedEnqueue(pass, n) {
				enqueues = append(enqueues, n)
			}
		}
		return true
	})
	if mentions {
		return
	}
	for _, call := range enqueues {
		pass.Reportf(call.Pos(),
			"%s enqueues into the fair scheduler without consulting a deadline; thread the request deadline through (or document the exemption with the word \"deadline\" in the function's doc comment)",
			fn.Name.Name)
	}
}

// isSchedEnqueue reports whether call is (*qos.Sched).Enqueue.
func isSchedEnqueue(pass *analysis.Pass, call *ast.CallExpr) bool {
	callee := analysis.Callee(pass.TypesInfo, call)
	if callee == nil || callee.Name() != "Enqueue" {
		return false
	}
	named := analysis.ReceiverNamed(callee)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Sched" && obj.Pkg() != nil && obj.Pkg().Path() == qosPkg
}
