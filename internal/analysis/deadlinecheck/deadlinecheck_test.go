package deadlinecheck_test

import (
	"testing"

	"streamgpu/internal/analysis/analysistest"
	"streamgpu/internal/analysis/deadlinecheck"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, deadlinecheck.Analyzer, "testdata/flagged", "testdata/clean")
}
