package callgraph_test

import (
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"streamgpu/internal/analysis"
	"streamgpu/internal/analysis/callgraph"
)

// load type-checks the fixture package and builds its call graph.
func load(t *testing.T) *callgraph.Graph {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.SharedLoader(cwd).CheckDir(filepath.Join(cwd, "testdata/src"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return callgraph.Build([]*analysis.Package{pkg})
}

// label renders one edge as "Callee/kind" with +go/+defer markers, using
// "Type.Method" for methods and "lit" for literals.
func label(e *callgraph.Edge) string {
	name := "lit"
	if fn := e.Callee.Func; fn != nil {
		name = fn.Name()
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				name = named.Obj().Name() + "." + name
			}
		}
	}
	s := name + "/" + e.Kind.String()
	if e.Go {
		s += "+go"
	}
	if e.Defer {
		s += "+defer"
	}
	return s
}

func TestResolution(t *testing.T) {
	g := load(t)
	cases := []struct {
		caller string
		want   []string
	}{
		{"static", []string{"work/static"}},
		{"spawns", []string{"work/static+go"}},
		{"deferred", []string{"work/static+defer"}},
		// CHA: every declared type whose method set satisfies the
		// interface gets an edge, value and pointer receivers alike.
		{"viaInterface", []string{"A.Run/interface", "B.Run/interface"}},
		// Stage-function field: the composite literal's store is followed
		// through the field to the function it holds.
		{"viaField", []string{"work/fieldvalue"}},
		// Method value bound to a variable.
		{"methodValue", []string{"A.Run/funcvalue"}},
		{"viaVar", []string{"work/funcvalue"}},
		{"viaLitVar", []string{"lit/funcvalue"}},
		// Parameter binding: apply's f() resolves to what callers pass.
		{"apply", []string{"work/funcvalue"}},
		{"passes", []string{"apply/static"}},
	}
	for _, c := range cases {
		t.Run(c.caller, func(t *testing.T) {
			node := findFunc(t, g, c.caller)
			var got []string
			for _, e := range node.Out {
				got = append(got, label(e))
			}
			sort.Strings(got)
			sort.Strings(c.want)
			if len(got) != len(c.want) {
				t.Fatalf("%s: edges = %v, want %v", c.caller, got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("%s: edges = %v, want %v", c.caller, got, c.want)
				}
			}
		})
	}
}

func TestInEdges(t *testing.T) {
	g := load(t)
	// work is reached statically (three ways), through a var, through a
	// field, and through a bound parameter; the In list mirrors the
	// resolved Out edges.
	work := findFunc(t, g, "work")
	if len(work.In) < 5 {
		t.Fatalf("work.In has %d edges, want at least 5", len(work.In))
	}
	for _, e := range work.In {
		if e.Callee != work {
			t.Fatalf("In edge of work targets %s", e.Callee.Name())
		}
	}
}

func TestCalleesBySite(t *testing.T) {
	g := load(t)
	node := findFunc(t, g, "viaInterface")
	var sites int
	for _, e := range node.Out {
		got := g.Callees(e.Site)
		if len(got) != 2 {
			t.Fatalf("Callees(site) = %d edges, want 2 (CHA targets)", len(got))
		}
		sites++
	}
	if sites == 0 {
		t.Fatal("viaInterface has no resolved sites")
	}
}

func findFunc(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Funcs() {
		if n.Func != nil && n.Func.Name() == name {
			return n
		}
	}
	t.Fatalf("function %s not in graph", name)
	return nil
}
