// Package fixture exercises every call-resolution path of the graph
// builder: static calls, go/defer sites, CHA interface dispatch, method
// values, function-valued variables, struct fields holding stage
// functions, and parameter binding.
package fixture

type Runner interface{ Run() }

type A struct{}

func (A) Run() {}

type B struct{}

func (*B) Run() {}

func viaInterface(r Runner) {
	r.Run()
}

func work() {}

func static() { work() }

func spawns() { go work() }

func deferred() { defer work() }

// Stage mirrors the ff/core pattern: a pipeline stage carries its body as
// a function-typed field.
type Stage struct {
	fn func()
}

func viaField() {
	s := Stage{fn: work}
	s.fn()
}

func methodValue(a A) {
	f := a.Run
	f()
}

func viaVar() {
	f := work
	f()
}

func viaLitVar() {
	g := func() {}
	g()
}

func apply(f func()) { f() }

func passes() { apply(work) }
