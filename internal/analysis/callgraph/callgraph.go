// Package callgraph builds a package-level call graph for the analyzed
// program using only go/ast and go/types, in the style of class-hierarchy
// analysis (CHA): every call site is resolved to the set of functions it
// *could* reach given the program's declared types, with no flow or
// context sensitivity.
//
// Resolution covers, in decreasing order of precision:
//
//   - static calls and method calls on concrete receivers (one edge);
//   - interface method calls: one edge per named type declared in the
//     analyzed packages whose method set implements the interface (CHA);
//   - calls through function values: flow-insensitive — every function
//     value ever stored into the variable or struct field being called
//     through becomes a callee. Stores are indexed program-wide across
//     assignments, var initializers, composite literals (keyed and
//     positional), and arguments bound to parameters of statically
//     resolved calls. This is what resolves the repo's stage-function
//     fields (ff/core stage nodes, qos.Item.Run/Expire/Drop closures).
//
// Known imprecision, deliberate (see DESIGN.md §13): values that flow
// through channels, maps, slices, or function returns are not tracked —
// such call sites simply resolve to fewer (possibly zero) callees, so
// analyzers built on the graph treat an unresolved site as "unknown
// callee" and pick their own conservative default. Types declared outside
// the analyzed packages never appear as interface implementors.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"streamgpu/internal/analysis"
)

// EdgeKind says how a call site was resolved.
type EdgeKind int

const (
	// Static is a direct call of a declared function, method on a concrete
	// receiver, or immediately invoked function literal.
	Static EdgeKind = iota
	// Interface is a CHA-resolved interface method call.
	Interface
	// FuncValue is a call through a variable holding a function value.
	FuncValue
	// FieldValue is a call through a struct field holding a function value.
	FieldValue
)

func (k EdgeKind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	case FuncValue:
		return "funcvalue"
	case FieldValue:
		return "fieldvalue"
	}
	return "unknown"
}

// Node is one function in the graph: a declared function or method, a
// function literal, or a body-less placeholder for a function outside the
// analyzed packages (stdlib, export-data-only).
type Node struct {
	// Func is the function object; nil for function literals.
	Func *types.Func
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Decl is the syntax of a declared function; nil for literals and
	// placeholders.
	Decl *ast.FuncDecl
	// Pkg is the analyzed package holding the body; nil for placeholders.
	Pkg *analysis.Package
	// Parent, for a function literal, is the function whose body
	// lexically encloses it; nil otherwise.
	Parent *Node
	// In and Out are the call edges into and out of this node, in
	// deterministic (build) order.
	In, Out []*Edge
}

// Body returns the node's function body, or nil for placeholders.
func (n *Node) Body() *ast.BlockStmt {
	switch {
	case n.Lit != nil:
		return n.Lit.Body
	case n.Decl != nil:
		return n.Decl.Body
	}
	return nil
}

// Pos returns a position for diagnostics: the declaration or literal
// position, or the function object's position for placeholders.
func (n *Node) Pos() token.Pos {
	switch {
	case n.Lit != nil:
		return n.Lit.Pos()
	case n.Decl != nil:
		return n.Decl.Pos()
	case n.Func != nil:
		return n.Func.Pos()
	}
	return token.NoPos
}

// Name returns a human-readable name ("pkg.Func", "(pkg.T).M", or
// "func literal").
func (n *Node) Name() string {
	if n.Func != nil {
		return n.Func.FullName()
	}
	return "func literal"
}

// Edge is one resolved call: Caller's Site may reach Callee.
type Edge struct {
	Caller, Callee *Node
	// Site is the call expression, inside Caller's body.
	Site *ast.CallExpr
	Kind EdgeKind
	// Go and Defer mark `go f()` and `defer f()` sites.
	Go, Defer bool
}

// Graph is the program's call graph.
type Graph struct {
	// nodes is keyed by the origin (uninstantiated) function object.
	nodes map[*types.Func]*Node
	lits  map[*ast.FuncLit]*Node
	// sites maps each call expression to its outgoing edges.
	sites map[*ast.CallExpr][]*Edge
	// order lists every node with a body in deterministic order.
	order []*Node
}

// Node returns the graph node for fn (normalizing generic instantiations
// to their origin), or nil if fn is unknown.
func (g *Graph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// LitNode returns the node of a function literal, or nil.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.lits[lit] }

// Funcs returns every node that has a body, in deterministic order:
// declared functions by position, then literals by position.
func (g *Graph) Funcs() []*Node { return g.order }

// Callees returns the outgoing edges of a call site, nil when the site is
// unresolved (unknown callee) or not a tracked call.
func (g *Graph) Callees(call *ast.CallExpr) []*Edge { return g.sites[call] }

// funcTarget is one possible value of a function-typed variable or field.
type funcTarget struct {
	fn  *types.Func // declared function or method value
	lit *ast.FuncLit
	v   *types.Var // var-to-var copy, resolved transitively
}

// builder accumulates the graph.
type builder struct {
	g    *Graph
	pkgs []*analysis.Package
	// stores indexes every function value stored into a variable or
	// field, program-wide.
	stores map[*types.Var][]funcTarget
	// named lists every named (non-interface) type declared in the
	// analyzed packages, for CHA.
	named []*types.Named
}

// Build constructs the call graph of the given packages. The packages
// should come from one Loader so type identities agree.
func Build(pkgs []*analysis.Package) *Graph {
	b := &builder{
		g: &Graph{
			nodes: make(map[*types.Func]*Node),
			lits:  make(map[*ast.FuncLit]*Node),
			sites: make(map[*ast.CallExpr][]*Edge),
		},
		pkgs:   pkgs,
		stores: make(map[*types.Var][]funcTarget),
	}
	b.indexDecls()
	b.indexNamed()
	b.indexStores()
	b.indexParamBinds()
	b.resolveCalls()
	return b.g
}

// indexParamBinds records function-valued arguments of every static call
// site as stores into the callee's parameters — before any call is
// resolved, so a callee's body sees its callers' bindings regardless of
// declaration order.
func (b *builder) indexParamBinds() {
	for _, node := range b.g.order {
		body := node.Body()
		if body == nil {
			continue
		}
		info := node.Pkg.Info
		walkOwn(body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			fn := analysis.Callee(info, call)
			if fn == nil {
				return
			}
			if callee := b.g.nodes[fn.Origin()]; callee != nil {
				b.bindArgs(info, callee, call)
			}
		})
	}
}

// indexDecls creates a node per function declaration and per function
// literal, in file order.
func (b *builder) indexDecls() {
	for _, pkg := range b.pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &Node{Func: fn.Origin(), Decl: fd, Pkg: pkg}
				b.g.nodes[fn.Origin()] = n
				b.g.order = append(b.g.order, n)
				if fd.Body != nil {
					b.indexLits(pkg, n, fd.Body)
				}
			}
			// Function literals in package-level initializers get nodes
			// too (no parent function).
			for _, decl := range file.Decls {
				if gd, ok := decl.(*ast.GenDecl); ok {
					b.indexLits(pkg, nil, gd)
				}
			}
		}
	}
}

// indexLits registers every function literal under root, attributing each
// to its nearest enclosing function node.
func (b *builder) indexLits(pkg *analysis.Package, parent *Node, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ln := &Node{Lit: lit, Pkg: pkg, Parent: parent}
		b.g.lits[lit] = ln
		b.g.order = append(b.g.order, ln)
		b.indexLits(pkg, ln, lit.Body)
		return false // indexLits recursed; don't double-visit
	})
}

// indexNamed collects the named non-interface types of the analyzed
// packages, sorted for deterministic CHA edge order.
func (b *builder) indexNamed() {
	for _, pkg := range b.pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			b.named = append(b.named, named)
		}
	}
	sort.Slice(b.named, func(i, j int) bool {
		oi, oj := b.named[i].Obj(), b.named[j].Obj()
		if oi.Pkg().Path() != oj.Pkg().Path() {
			return oi.Pkg().Path() < oj.Pkg().Path()
		}
		return oi.Name() < oj.Name()
	})
}

// indexStores records every function value stored into a variable or
// struct field anywhere in the program.
func (b *builder) indexStores() {
	for _, pkg := range b.pkgs {
		for _, file := range pkg.Files {
			info := pkg.Info
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for i, lhs := range n.Lhs {
						if i >= len(n.Rhs) {
							break // multi-value RHS: untracked
						}
						b.store(info, lhsVar(info, lhs), n.Rhs[i])
					}
				case *ast.ValueSpec:
					for i, name := range n.Names {
						if i < len(n.Values) {
							v, _ := info.Defs[name].(*types.Var)
							b.store(info, v, n.Values[i])
						}
					}
				case *ast.CompositeLit:
					b.indexCompositeLit(info, n)
				}
				return true
			})
		}
	}
}

// lhsVar resolves an assignment target to its variable or field object.
func lhsVar(info *types.Info, lhs ast.Expr) *types.Var {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v, ok := info.Defs[lhs].(*types.Var); ok {
			return v
		}
		v, _ := info.Uses[lhs].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[lhs]; ok {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		v, _ := info.Uses[lhs.Sel].(*types.Var)
		return v
	}
	return nil
}

// indexCompositeLit records function values assigned to struct fields in a
// composite literal, keyed or positional.
func (b *builder) indexCompositeLit(info *types.Info, cl *ast.CompositeLit) {
	tv, ok := info.Types[cl]
	if !ok {
		return
	}
	st, ok := deref(tv.Type).Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			if f, ok := info.Uses[key].(*types.Var); ok {
				b.store(info, f, kv.Value)
			}
			continue
		}
		if i < st.NumFields() {
			b.store(info, st.Field(i), elt)
		}
	}
}

// store records that expr's function value may be held by v.
func (b *builder) store(info *types.Info, v *types.Var, expr ast.Expr) {
	if v == nil || expr == nil {
		return
	}
	if _, ok := v.Type().Underlying().(*types.Signature); !ok {
		return
	}
	if t, ok := b.target(info, expr); ok {
		b.stores[fieldOrigin(v)] = append(b.stores[fieldOrigin(v)], t)
	}
}

// fieldOrigin normalizes a field of an instantiated generic type to the
// corresponding field of the generic origin, so stores through different
// instantiations meet in one index entry.
func fieldOrigin(v *types.Var) *types.Var {
	// types.Var has no Origin accessor before go1.22's under-the-hood
	// support; field objects of instantiated types are distinct objects.
	// We approximate by keying on the object itself — instantiation
	// mixing is rare in this repo (pool.Pool's New field).
	return v
}

// target resolves a stored expression to a function target.
func (b *builder) target(info *types.Info, expr ast.Expr) (funcTarget, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		return funcTarget{lit: e}, true
	case *ast.Ident:
		switch obj := info.Uses[e].(type) {
		case *types.Func:
			return funcTarget{fn: obj.Origin()}, true
		case *types.Var:
			return funcTarget{v: obj}, true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			switch obj := sel.Obj().(type) {
			case *types.Func: // method value x.M
				return funcTarget{fn: obj.Origin()}, true
			case *types.Var: // field copy x.f
				return funcTarget{v: obj}, true
			}
			return funcTarget{}, false
		}
		switch obj := info.Uses[e.Sel].(type) {
		case *types.Func: // pkg.Fn
			return funcTarget{fn: obj.Origin()}, true
		case *types.Var: // pkg.Var
			return funcTarget{v: obj}, true
		}
	}
	return funcTarget{}, false
}

// resolveCalls walks every function body and resolves its call sites.
func (b *builder) resolveCalls() {
	for _, node := range b.g.order {
		body := node.Body()
		if body == nil {
			continue
		}
		// Mark go/defer call sites first.
		goSites := make(map[*ast.CallExpr]bool)
		deferSites := make(map[*ast.CallExpr]bool)
		walkOwn(body, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.GoStmt:
				goSites[n.Call] = true
			case *ast.DeferStmt:
				deferSites[n.Call] = true
			}
		})
		walkOwn(body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			b.resolveCall(node, call, goSites[call], deferSites[call])
		})
	}
}

// walkOwn visits the nodes of a function body without descending into
// nested function literals (they are separate graph nodes).
func walkOwn(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// resolveCall adds edges for one call site.
func (b *builder) resolveCall(caller *Node, call *ast.CallExpr, isGo, isDefer bool) {
	info := caller.Pkg.Info

	// Conversions and builtins are not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return
		}
	}

	// Immediately invoked literal.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		b.addEdge(caller, b.g.lits[lit], call, Static, isGo, isDefer)
		return
	}

	// Interface method call: CHA.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if types.IsInterface(s.Recv()) {
				b.resolveInterfaceCall(caller, call, s, isGo, isDefer)
				return
			}
		}
	}

	// Static call (function, concrete method). Parameter binding already
	// happened in indexParamBinds.
	if fn := analysis.Callee(info, call); fn != nil {
		callee := b.g.nodes[fn.Origin()]
		if callee == nil {
			callee = b.placeholder(fn.Origin())
		}
		b.addEdge(caller, callee, call, Static, isGo, isDefer)
		return
	}

	// Call through a function value: variable or field.
	b.resolveValueCall(caller, call, isGo, isDefer)
}

// resolveInterfaceCall adds one edge per declared type implementing the
// interface, targeting that type's method.
func (b *builder) resolveInterfaceCall(caller *Node, call *ast.CallExpr, s *types.Selection, isGo, isDefer bool) {
	iface, ok := s.Recv().Underlying().(*types.Interface)
	if !ok {
		return
	}
	mname := s.Obj().Name()
	for _, named := range b.named {
		recv := types.Type(named)
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, s.Obj().Pkg(), mname)
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		callee := b.g.nodes[m.Origin()]
		if callee == nil {
			callee = b.placeholder(m.Origin())
		}
		b.addEdge(caller, callee, call, Interface, isGo, isDefer)
	}
}

// resolveValueCall resolves a call through a variable or field, following
// var-to-var copies transitively.
func (b *builder) resolveValueCall(caller *Node, call *ast.CallExpr, isGo, isDefer bool) {
	info := caller.Pkg.Info
	var root *types.Var
	kind := FuncValue
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		root, _ = info.Uses[fun].(*types.Var)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			root, _ = sel.Obj().(*types.Var)
			if root != nil && root.IsField() {
				kind = FieldValue
			}
		} else {
			root, _ = info.Uses[fun.Sel].(*types.Var)
		}
	}
	if root == nil {
		return // unresolved: unknown callee
	}
	seen := make(map[*types.Var]bool)
	var follow func(v *types.Var)
	follow = func(v *types.Var) {
		if v == nil || seen[v] {
			return
		}
		seen[v] = true
		for _, t := range b.stores[fieldOrigin(v)] {
			switch {
			case t.lit != nil:
				b.addEdge(caller, b.g.lits[t.lit], call, kind, isGo, isDefer)
			case t.fn != nil:
				callee := b.g.nodes[t.fn]
				if callee == nil {
					callee = b.placeholder(t.fn)
				}
				b.addEdge(caller, callee, call, kind, isGo, isDefer)
			case t.v != nil:
				follow(t.v)
			}
		}
	}
	follow(root)
}

// bindArgs records function-valued arguments as stores into the callee's
// parameters, so calls through a parameter resolve to the functions the
// program actually passes (the ff/core stage-function pattern).
func (b *builder) bindArgs(info *types.Info, callee *Node, call *ast.CallExpr) {
	if callee.Decl == nil || callee.Func == nil {
		return
	}
	sig, ok := callee.Func.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() {
			if sig.Variadic() && params.Len() > 0 {
				b.store(info, params.At(params.Len()-1), arg)
			}
			break
		}
		b.store(info, params.At(i), arg)
	}
}

// placeholder creates a body-less node for a function outside the
// analyzed packages.
func (b *builder) placeholder(fn *types.Func) *Node {
	n := &Node{Func: fn}
	b.g.nodes[fn] = n
	return n
}

func (b *builder) addEdge(caller, callee *Node, site *ast.CallExpr, kind EdgeKind, isGo, isDefer bool) {
	if callee == nil {
		return
	}
	// Deduplicate: the same (site, callee) pair can be reached twice via
	// different store paths.
	for _, e := range b.g.sites[site] {
		if e.Callee == callee {
			return
		}
	}
	e := &Edge{Caller: caller, Callee: callee, Site: site, Kind: kind, Go: isGo, Defer: isDefer}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
	b.g.sites[site] = append(b.g.sites[site], e)
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
