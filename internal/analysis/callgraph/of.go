package callgraph

import "streamgpu/internal/analysis"

// Of returns the call graph of the pass's whole program, building it on
// first use and caching it on the Program — every interprocedural analyzer
// in a run shares one graph.
func Of(pass *analysis.Pass) *Graph {
	return pass.Program.Cached("callgraph", func() any {
		return Build(pass.Program.Pkgs)
	}).(*Graph)
}
