package analysis

import "go/ast"

// WithStack traverses root in depth-first order, calling fn for every node
// with the stack of its ancestors (outermost first, n excluded). Returning
// false prunes the node's children. It replaces the x/tools inspector for
// analyzers that need parent context.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
