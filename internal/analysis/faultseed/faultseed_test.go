package faultseed_test

import (
	"testing"

	"streamgpu/internal/analysis/analysistest"
	"streamgpu/internal/analysis/faultseed"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, faultseed.Analyzer, "testdata/flagged", "testdata/clean")
}
