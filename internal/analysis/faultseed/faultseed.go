// Package faultseed defines an analyzer keeping fault-injection tests
// deterministic: every fault.Config composite literal in a _test.go file
// must set Seed explicitly.
//
// The injector's whole design premise (internal/fault) is that a given seed
// reproduces the same fault schedule at the same virtual times on every
// run. A test that builds fault.Config without naming Seed gets seed 0
// implicitly — which still *happens* to be deterministic, but silently
// collides with every other unseeded test and reads as "seed doesn't
// matter". Stating the seed is the documented contract; the analyzer makes
// it mechanical. Positional literals necessarily set Seed (it is the first
// field) and are accepted.
package faultseed

import (
	"go/ast"
	"go/types"
	"strings"

	"streamgpu/internal/analysis"
)

const faultPkg = "streamgpu/internal/fault"

// Analyzer flags fault.Config literals in tests that omit Seed.
var Analyzer = &analysis.Analyzer{
	Name: "faultseed",
	Doc:  "fault.Config literals in tests must set Seed explicitly so fault schedules are reproducible",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if !strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isFaultConfig(pass.TypesInfo, lit) {
				return true
			}
			if !setsSeed(lit) {
				pass.Reportf(lit.Pos(), "fault.Config in a test must set Seed explicitly for a reproducible fault schedule")
			}
			return true
		})
	}
	return nil
}

// isFaultConfig reports whether lit builds a fault.Config value (directly or
// as an element of a slice/array/map literal, where the type is implicit).
func isFaultConfig(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	if !ok {
		return false
	}
	return analysis.IsNamed(tv.Type, faultPkg, "Config")
}

// setsSeed reports whether the literal assigns Seed. Positional literals
// (no keys) cover Seed as long as they have at least one element.
func setsSeed(lit *ast.CompositeLit) bool {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return true // positional: first element is Seed
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Seed" {
			return true
		}
	}
	return false
}
