// Fixture: fault.Config literals in a test file that omit Seed.
package fixture

import "streamgpu/internal/fault"

func mkInjector() *fault.Injector {
	cfg := fault.Config{TransferRate: 0.5} // want `must set Seed`
	return fault.New(cfg)
}

func mkDefault() *fault.Injector {
	return fault.New(fault.Config{}) // want `must set Seed`
}

func mkTable() []fault.Config {
	return []fault.Config{
		{KernelRate: 0.1}, // want `must set Seed`
	}
}
