// Fixture: seeded fault.Config literals in a test file — nothing flagged.
package fixture

import "streamgpu/internal/fault"

func mkSeeded() *fault.Injector {
	return fault.New(fault.Config{Seed: 42, TransferRate: 0.5})
}

func mkPositional() *fault.Injector {
	// Positional literals necessarily set Seed (the first field).
	return fault.New(fault.Config{7, 0.5, 0, 0, 0})
}
