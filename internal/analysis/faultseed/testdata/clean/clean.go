// Fixture: non-test files are out of scope — production code may build
// fault.Config however its caller configures it.
package fixture

import "streamgpu/internal/fault"

func FromRate(rate float64) *fault.Injector {
	return fault.New(fault.Config{TransferRate: rate})
}
