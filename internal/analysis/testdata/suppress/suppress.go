// Package suppress exercises the streamvet:ignore driver logic: a valid
// suppression with a reason, a directive missing its reason, a bare
// directive, and one naming an unknown analyzer. Every function leaks a
// goroutine on purpose so the goleak analyzer has something to say.
package suppress

func validSuppression() {
	ch := make(chan int)
	go func() { //streamvet:ignore goleak fixture proves a reasoned directive suppresses the diagnostic
		<-ch
	}()
}

func missingReason() {
	ch := make(chan int)
	//streamvet:ignore goleak
	go func() {
		<-ch
	}()
}

func bareDirective() {
	ch := make(chan int)
	//streamvet:ignore
	go func() {
		<-ch
	}()
}

func unknownAnalyzer() {
	ch := make(chan int)
	//streamvet:ignore nosuchcheck the analyzer name is wrong so this must not suppress
	go func() {
		<-ch
	}()
}
