package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
)

// RunAnalyzers applies every analyzer to every package and returns the
// combined diagnostics in a stable order (file, offset, analyzer name,
// message — so repeated runs diff cleanly).
//
// Packages are visited in topological import order under one shared
// Program, which is what lets interprocedural analyzers consume facts
// about callees exported while their packages were analyzed earlier.
// Suppression directives (see suppress.go) are applied before returning:
// covered diagnostics come back with Suppressed set rather than dropped,
// so every consumer — text, JSON, CI — sees the same list and chooses its
// own filter.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog := NewProgram(pkgs)
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	ignores, diags := collectIgnores(pkgs, known)

	for _, a := range analyzers {
		for _, pkg := range prog.Pkgs {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Program:   prog,
				Report: func(d Diagnostic) {
					d.Analyzer = a.Name
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		applySuppressions(fset, diags, ignores)
		sort.SliceStable(diags, func(i, j int) bool {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Offset != pj.Offset {
				return pi.Offset < pj.Offset
			}
			if diags[i].Analyzer != diags[j].Analyzer {
				return diags[i].Analyzer < diags[j].Analyzer
			}
			return diags[i].Message < diags[j].Message
		})
	}
	return diags, nil
}

// PrintDiagnostics writes unsuppressed diagnostics in the canonical
// "file:line:col: message [analyzer]" form and reports how many there
// were; suppressed findings are omitted (they are acknowledged in source).
func PrintDiagnostics(w io.Writer, fset *token.FileSet, diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		fmt.Fprintf(w, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		n++
	}
	return n
}

// JSONDiagnostic is the -json wire form of one finding. File is relative
// to the base directory when possible, so CI annotations are stable across
// checkouts.
type JSONDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

// WriteJSON emits every diagnostic — suppressed included, flagged — as one
// JSON array, in the stable RunAnalyzers order.
func WriteJSON(w io.Writer, fset *token.FileSet, baseDir string, diags []Diagnostic) error {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		file := pos.Filename
		if baseDir != "" {
			if rel, err := filepath.Rel(baseDir, file); err == nil {
				file = filepath.ToSlash(rel)
			}
		}
		out = append(out, JSONDiagnostic{
			File: file, Line: pos.Line, Col: pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
			Suppressed: d.Suppressed, Reason: d.SuppressReason,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
