package analysis

import (
	"fmt"
	"go/token"
	"io"
	"sort"
)

// RunAnalyzers applies every analyzer to every package and returns the
// combined diagnostics, ordered by file position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report: func(d Diagnostic) {
					d.Analyzer = a.Name
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		sort.SliceStable(diags, func(i, j int) bool {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			return pi.Offset < pj.Offset
		})
	}
	return diags, nil
}

// PrintDiagnostics writes diagnostics in the canonical
// "file:line:col: message [analyzer]" form and reports how many there were.
func PrintDiagnostics(w io.Writer, fset *token.FileSet, diags []Diagnostic) int {
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return len(diags)
}
