// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library.
//
// The repo's pipeline and GPU layers rely on conventions the compiler cannot
// check: completion events must be waited on, device buffers freed, Run
// errors handled, stage-body channel sends cancellable, fault injectors
// seeded. Each convention is encoded as an Analyzer (see the sibling
// packages gpuwait, gpufree, runerr, stagesend and faultseed) and enforced
// over the whole tree by cmd/streamvet.
//
// The x/tools module is deliberately not imported — the build must work from
// a bare Go toolchain with no module downloads — so this package provides
// the same Analyzer/Pass/Diagnostic shape plus a `go list`-based loader
// (load.go) and a driver (checker.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"streamgpu/internal/analysis/facts"
)

// Analyzer describes one static check. It mirrors the x/tools type of the
// same name closely enough that the sibling analyzers could be ported to the
// real framework by changing imports.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("gpuwait").
	Name string
	// Doc is the analyzer's contract, shown by `streamvet -help`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Program is the whole analysis run: every loaded package in
	// topological import order, the shared fact store, and a cache for
	// program-wide structures like the call graph. Set by the driver.
	Program *Program

	// Report delivers one diagnostic; set by the driver.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact attaches a fact to obj in the program-wide store. Since
// the driver analyzes packages callee-first, facts exported here are
// visible when the object's callers are analyzed.
func (p *Pass) ExportObjectFact(obj types.Object, f facts.Fact) {
	p.Program.Facts().Export(obj, f)
}

// ImportObjectFact copies the fact of ptr's type attached to obj into ptr,
// reporting whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, ptr facts.Fact) bool {
	return p.Program.Facts().Import(obj, ptr)
}

// AllObjectFacts returns every exported fact of example's type, for
// whole-program post-processing (lockorder's cycle detection).
func (p *Pass) AllObjectFacts(example facts.Fact) []facts.ObjectFact {
	return p.Program.Facts().All(example)
}

// Diagnostic is one finding. Position is resolved against the pass Fset.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver

	// Suppressed marks a finding covered by a streamvet:ignore directive;
	// SuppressReason carries the directive's mandatory reason. Set by the
	// driver after all passes ran.
	Suppressed     bool
	SuppressReason string
}

// Callee resolves the called function or method of call, or nil for calls
// through non-constant function values, type conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: pkg.Fn(...).
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ReceiverNamed returns the named type of fn's receiver (unwrapping one
// pointer), or nil if fn is not a method.
func ReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// IsNamed reports whether t (unwrapping one pointer) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
