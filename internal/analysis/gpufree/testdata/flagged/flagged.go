// Fixture: device buffers that leak — never freed, never escaping.
package fixture

import (
	"streamgpu/internal/des"
	"streamgpu/internal/gpu"
)

func leaks(p *des.Proc, d *gpu.Device, st *gpu.Stream, h *gpu.HostBuf) {
	buf, err := d.Malloc(64) // want `never freed`
	if err != nil {
		return
	}
	ev := st.CopyH2D(p, buf, 0, h, 0, 64) // transfers borrow; not an escape
	_ = gpu.WaitErr(p, ev)
}

func discards(d *gpu.Device) {
	d.Malloc(64) // want `discarded without Free`
}

func blanks(d *gpu.Device) {
	_, err := d.Malloc(64) // want `assigned to _`
	if err != nil {
		return
	}
}

func mustMalloc(d *gpu.Device, n int64) *gpu.Buf {
	b, err := d.Malloc(n)
	if err != nil {
		panic(err)
	}
	return b // escapes: helper hands ownership to its caller
}

func helperLeaks(d *gpu.Device) {
	b := mustMalloc(d, 128) // want `never freed`
	_ = b.Size()
}
