// Fixture: every buffer is freed or escapes — nothing here should be flagged.
package fixture

import (
	"streamgpu/internal/gpu"
)

type holder struct{ buf *gpu.Buf }

func frees(d *gpu.Device) error {
	buf, err := d.Malloc(64)
	if err != nil {
		return err
	}
	defer buf.Free()
	return nil
}

func freesConditionally(d *gpu.Device) (*gpu.Buf, error) {
	buf, err := d.Malloc(64)
	if err != nil {
		return nil, err
	}
	if buf.Size() == 0 {
		buf.Free()
		return nil, nil
	}
	return buf, nil // escapes to caller
}

func stores(d *gpu.Device, h *holder) error {
	buf, err := d.Malloc(64)
	if err != nil {
		return err
	}
	h.buf = buf // escapes into a struct the caller owns
	return nil
}

func handsOff(d *gpu.Device, keep func(*gpu.Buf)) error {
	buf, err := d.Malloc(64)
	if err != nil {
		return err
	}
	keep(buf) // unknown callee: conservatively an ownership transfer
	return nil
}
