package gpufree_test

import (
	"testing"

	"streamgpu/internal/analysis/analysistest"
	"streamgpu/internal/analysis/gpufree"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, gpufree.Analyzer, "testdata/flagged", "testdata/clean")
}
