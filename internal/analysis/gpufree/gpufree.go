// Package gpufree defines an analyzer enforcing the device-memory contract:
// a *gpu.Buf obtained from a Malloc-style allocator must be freed on some
// path of the allocating function, or escape it (returned, stored, sent, or
// handed to another function that takes over ownership).
//
// Device memory in the model is accounted exactly like CUDA global memory —
// leaked buffers eventually starve Malloc (gpu.ErrOutOfMemory), which is how
// the paper's 10 MB OpenCL batches died. The analyzer is intentionally
// flow-insensitive: one Free call (including inside a defer or closure)
// anywhere in the function satisfies the contract.
//
// Uses that do NOT count as an escape: passing the buffer to gpu.Stream or
// gpu.Device methods (transfers and launches borrow device memory, they
// never own it) and constructing kernels from it (functions returning
// *gpu.Kernel or *gpu.KernelSpec). Everything else — append, struct fields,
// unknown helpers — conservatively counts as an ownership transfer.
package gpufree

import (
	"go/ast"
	"go/types"
	"strings"

	"streamgpu/internal/analysis"
)

const gpuPkg = "streamgpu/internal/gpu"

// Analyzer flags device buffers that are neither freed nor escape.
var Analyzer = &analysis.Analyzer{
	Name: "gpufree",
	Doc: "a gpu.Buf from Malloc must be freed on some path or escape the allocating function; " +
		"leaked device memory starves later allocations",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// alloc is one tracked Malloc result variable.
type alloc struct {
	call *ast.CallExpr
	obj  types.Object
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var allocs []alloc
	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok && isMallocCall(info, call) {
				pass.Reportf(call.Pos(), "device buffer from %s is discarded without Free", calleeName(info, call))
			}
		case *ast.AssignStmt:
			for _, a := range mallocAssigns(info, stmt) {
				if a.obj == nil {
					pass.Reportf(a.call.Pos(), "device buffer from %s is assigned to _ and leaks; keep it and Free it", calleeName(info, a.call))
					continue
				}
				allocs = append(allocs, a)
			}
		}
		return true
	})
	for _, a := range allocs {
		freed, escaped := traceUses(info, body, a.obj)
		if !freed && !escaped {
			pass.Reportf(a.call.Pos(), "device buffer %s is never freed and does not escape; call %s.Free on every path",
				a.obj.Name(), a.obj.Name())
		}
	}
}

// mallocAssigns extracts the buffer variables bound by stmt's Malloc calls.
// A nil obj means the buffer went to the blank identifier.
func mallocAssigns(info *types.Info, stmt *ast.AssignStmt) []alloc {
	var out []alloc
	// b, err := d.Malloc(n): one call, tuple result.
	if len(stmt.Rhs) == 1 {
		if call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr); ok && isMallocCall(info, call) && len(stmt.Lhs) >= 1 {
			out = append(out, alloc{call: call, obj: lhsObj(info, stmt.Lhs[0])})
			return out
		}
	}
	if len(stmt.Lhs) != len(stmt.Rhs) {
		return out
	}
	// b := mustMalloc(d, n) possibly among parallel assignments.
	for i, rhs := range stmt.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isMallocCall(info, call) {
			out = append(out, alloc{call: call, obj: lhsObj(info, stmt.Lhs[i])})
		}
	}
	return out
}

// lhsObj resolves the object bound by an assignment target, nil for blank or
// non-ident targets (those count as escapes and are not tracked).
func lhsObj(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return &escapeSentinel
	}
	if id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return &escapeSentinel
}

// escapeSentinel stands for "assigned somewhere we cannot track" — treated
// as escaped, never reported.
var escapeSentinel = struct{ types.Object }{}

// traceUses classifies every use of obj inside body.
func traceUses(info *types.Info, body *ast.BlockStmt, obj types.Object) (freed, escaped bool) {
	if obj == types.Object(&escapeSentinel) {
		return false, true
	}
	analysis.WithStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		switch classifyUse(info, id, stack) {
		case useFree:
			freed = true
		case useEscape:
			escaped = true
		}
		return true
	})
	return freed, escaped
}

type useKind int

const (
	useBorrow useKind = iota // read-only use; does not discharge the contract
	useFree                  // receiver of Free
	useEscape                // ownership left the function
)

// classifyUse decides what one identifier occurrence means for ownership.
func classifyUse(info *types.Info, id *ast.Ident, stack []ast.Node) useKind {
	if len(stack) == 0 {
		return useEscape
	}
	parent := stack[len(stack)-1]

	// Anywhere under a return statement: the buffer leaves the function.
	for _, anc := range stack {
		if _, ok := anc.(*ast.ReturnStmt); ok {
			return useEscape
		}
	}

	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// b.M(...): method call on the buffer.
		if p.X == id && len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == p {
				if p.Sel.Name == "Free" {
					return useFree
				}
				return useBorrow // Bytes, Size, Device, ...
			}
		}
		return useEscape // method value or field access we cannot track
	case *ast.CallExpr:
		// Buffer passed as an argument.
		return classifyArg(info, p)
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == ast.Expr(id) {
				return useBorrow // reassignment target, not a read
			}
		}
		return useEscape // aliased into another variable
	}
	return useEscape // composite literal, send, index, unary &, range, ...
}

// classifyArg decides whether passing the buffer to call transfers
// ownership. Device-API borrows keep the contract with the caller.
func classifyArg(info *types.Info, call *ast.CallExpr) useKind {
	fn := analysis.Callee(info, call)
	if fn == nil {
		return useEscape
	}
	if recv := analysis.ReceiverNamed(fn); recv != nil && recv.Obj().Pkg() != nil && recv.Obj().Pkg().Path() == gpuPkg {
		switch recv.Obj().Name() {
		case "Stream", "Device":
			return useBorrow // transfers, launches, and queries borrow
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Results().Len() >= 1 {
		r0 := sig.Results().At(0).Type()
		if analysis.IsNamed(r0, gpuPkg, "Kernel") || analysis.IsNamed(r0, gpuPkg, "KernelSpec") {
			return useBorrow // kernel construction references, never owns
		}
	}
	return useEscape
}

// isMallocCall reports whether call invokes a Malloc-style allocator: any
// function or method whose name contains "malloc" returning *gpu.Buf first,
// with at most two results (*Buf, or *Buf + error). Bundle allocators that
// return several buffers plus their own release func (mallocN-style) manage
// ownership themselves and are out of scope.
func isMallocCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || !strings.Contains(strings.ToLower(fn.Name()), "malloc") {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() < 1 || sig.Results().Len() > 2 {
		return false
	}
	return analysis.IsNamed(sig.Results().At(0).Type(), gpuPkg, "Buf")
}

// calleeName renders the allocator's name for diagnostics.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := analysis.Callee(info, call); fn != nil {
		return fn.Name()
	}
	return "Malloc"
}
