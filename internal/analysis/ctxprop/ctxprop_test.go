package ctxprop_test

import (
	"testing"

	"streamgpu/internal/analysis/analysistest"
	"streamgpu/internal/analysis/ctxprop"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, ctxprop.Analyzer, "testdata/flagged", "testdata/clean")
}
