// Package ctxprop defines an analyzer enforcing context propagation: a
// function that receives a context.Context must thread it to the blocking
// work it does — directly (select on ctx.Done alongside channel operations)
// or by passing the ctx on to callees — instead of blocking in a way the
// caller's cancellation can never interrupt. It generalizes deadlinecheck
// beyond single functions: the serving layer promises that cancelling a
// request's ctx unwinds the whole call chain, and one naked channel wait
// anywhere in that chain silently breaks the promise.
//
// Three findings, all only inside functions that take a ctx parameter:
//
//   - a blocking operation — channel send, channel receive, WaitGroup.Wait
//     or Cond.Wait — performed naked, not as a case of a select with an
//     alternative (a second case or default);
//   - context.Background() or context.TODO() passed to a ctx-taking callee,
//     detaching the callee from the caller's cancellation;
//   - a call to a function that takes no ctx and (by its exported summary,
//     computed interprocedurally callee-first) unconditionally blocks on a
//     channel or wait — cancellation cannot reach it.
//
// Receives whose channel is a call result (<-ctx.Done(), <-time.After(d))
// are exempt: the first is the cancellation mechanism itself and the
// second is self-limiting. Function literals are analyzed when something
// calls them, not where they are written; goroutine bodies are goleak's
// domain. Ranging over a channel is also left to goleak — a producer-close
// contract is idiomatic even in ctx-aware code.
package ctxprop

import (
	"go/ast"
	"go/token"
	"go/types"

	"streamgpu/internal/analysis"
	"streamgpu/internal/analysis/callgraph"
)

// Analyzer flags ctx-receiving functions that block outside their ctx.
var Analyzer = &analysis.Analyzer{
	Name: "ctxprop",
	Doc: "a function receiving a context.Context must thread it to its blocking work: " +
		"select on ctx.Done alongside channel operations and pass ctx to blocking callees, " +
		"or cancellation silently stops working for the whole call chain",
	Run: run,
}

// BlocksFact marks a ctx-less function that unconditionally blocks on a
// channel or wait — directly or through a ctx-less callee.
type BlocksFact struct {
	// Op describes the blocking operation, for the caller's diagnostic
	// ("receive on ch", "(*sync.WaitGroup).Wait").
	Op string
}

// AFact brands BlocksFact for the facts store.
func (*BlocksFact) AFact() {}

func run(pass *analysis.Pass) error {
	g := callgraph.Of(pass)
	litBlocks := pass.Program.Cached("ctxprop.lits", func() any {
		return make(map[*callgraph.Node]*BlocksFact)
	}).(map[*callgraph.Node]*BlocksFact)

	var nodes []*callgraph.Node
	for _, n := range g.Funcs() {
		if n.Pkg != nil && n.Pkg.Types == pass.Pkg && n.Body() != nil {
			nodes = append(nodes, n)
		}
	}

	a := &analyzer{pass: pass, graph: g, litBlocks: litBlocks, local: make(map[*callgraph.Node]*BlocksFact)}

	// Summary fixpoint: which ctx-less functions of this package block.
	for range [5]int{} {
		changed := false
		for _, n := range nodes {
			f := a.blocks(n)
			if (f == nil) != (a.local[n] == nil) {
				a.local[n] = f
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, n := range nodes {
		if a.local[n] == nil {
			continue
		}
		if n.Func != nil {
			pass.ExportObjectFact(n.Func, a.local[n])
		} else {
			litBlocks[n] = a.local[n]
		}
	}

	// Report inside ctx-receiving functions.
	for _, n := range nodes {
		if n.Func != nil && hasCtxParam(n.Func) {
			a.check(n)
		}
	}
	return nil
}

type analyzer struct {
	pass      *analysis.Pass
	graph     *callgraph.Graph
	litBlocks map[*callgraph.Node]*BlocksFact
	local     map[*callgraph.Node]*BlocksFact
}

// summary returns the callee's blocking summary, nil when unknown or
// non-blocking.
func (a *analyzer) summary(n *callgraph.Node) *BlocksFact {
	if f, ok := a.local[n]; ok {
		return f
	}
	if n.Func != nil {
		var f BlocksFact
		if a.pass.ImportObjectFact(n.Func, &f) {
			return &f
		}
		return nil
	}
	return a.litBlocks[n]
}

// blocks computes whether a ctx-less function unconditionally blocks. A
// ctx-receiving function never exports the fact: callers that pass it
// their ctx have done their part, and its own body is checked directly.
func (a *analyzer) blocks(n *callgraph.Node) *BlocksFact {
	if n.Func != nil && hasCtxParam(n.Func) {
		return nil
	}
	var found *BlocksFact
	a.walkBlocking(n.Body(), func(op blockingOp) {
		if found == nil && !op.guarded {
			found = &BlocksFact{Op: op.desc}
		}
	}, func(call *ast.CallExpr) {
		if found != nil {
			return
		}
		for _, e := range a.graph.Callees(call) {
			if e.Go {
				continue
			}
			if f := a.summary(e.Callee); f != nil {
				found = &BlocksFact{Op: f.Op}
				return
			}
		}
	})
	return found
}

// check reports the three findings inside one ctx-receiving function.
func (a *analyzer) check(n *callgraph.Node) {
	info := a.pass.TypesInfo
	a.walkBlocking(n.Body(), func(op blockingOp) {
		if op.guarded {
			return
		}
		a.pass.Reportf(op.pos,
			"function receives a ctx but %s outside any select: cancellation cannot interrupt it; select on ctx.Done() as an alternative", op.desc)
	}, func(call *ast.CallExpr) {
		// context.Background()/TODO() handed to a ctx-taking callee.
		fn := analysis.Callee(info, call)
		for _, arg := range call.Args {
			name := freshCtxName(info, arg)
			if name == "" {
				continue
			}
			callee := "callee"
			if fn != nil {
				callee = fn.Name()
			}
			a.pass.Reportf(arg.Pos(),
				"function receives a ctx but passes %s to %s, detaching it from the caller's cancellation; thread the ctx", name, callee)
		}
		// Blocking ctx-less callee.
		if fn != nil && hasCtxParam(fn) {
			return // ctx was threadable; Background misuse handled above
		}
		for _, e := range a.graph.Callees(call) {
			if e.Go {
				continue
			}
			if f := a.summary(e.Callee); f != nil {
				a.pass.Reportf(call.Pos(),
					"function receives a ctx but calls %s, which blocks (%s) and takes no ctx: cancellation cannot reach it", e.Callee.Name(), f.Op)
				return
			}
		}
	})
}

// blockingOp is one potentially blocking operation found in a body.
type blockingOp struct {
	pos     token.Pos
	desc    string
	guarded bool // a select alternative exists
}

// walkBlocking visits every blocking operation and every call in the body,
// skipping nested function literals (they are separate call-graph nodes).
func (a *analyzer) walkBlocking(body *ast.BlockStmt, onOp func(blockingOp), onCall func(*ast.CallExpr)) {
	if body == nil {
		return
	}
	info := a.pass.TypesInfo
	analysis.WithStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if !isTrackableChan(info, n.Chan) {
				return true
			}
			onOp(blockingOp{pos: n.Pos(), desc: "sends to " + types.ExprString(n.Chan), guarded: selectGuarded(n, stack)})
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || !isTrackableChan(info, n.X) {
				return true
			}
			onOp(blockingOp{pos: n.Pos(), desc: "receives from " + types.ExprString(n.X), guarded: selectGuarded(n, stack)})
		case *ast.CallExpr:
			if fn := analysis.Callee(info, n); fn != nil {
				switch fn.FullName() {
				case "(*sync.WaitGroup).Wait", "(*sync.Cond).Wait":
					onOp(blockingOp{pos: n.Pos(), desc: "waits on " + fn.FullName(), guarded: false})
					return true
				}
			}
			onCall(n)
		}
		return true
	})
}

// isTrackableChan reports whether expr is a channel-typed variable, field,
// or parameter — not a call result (ctx.Done(), time.After) or other
// untrackable expression.
func isTrackableChan(info *types.Info, expr ast.Expr) bool {
	expr = ast.Unparen(expr)
	if _, ok := info.TypeOf(expr).Underlying().(*types.Chan); !ok {
		return false
	}
	switch expr.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return true
	}
	return false
}

// selectGuarded reports whether op is the communication of a select clause
// that has an alternative (another case or a default).
func selectGuarded(op ast.Node, stack []ast.Node) bool {
	child := op
	for i := len(stack) - 1; i >= 0; i-- {
		cc, ok := stack[i].(*ast.CommClause)
		if !ok {
			child = stack[i]
			continue
		}
		if !isCommOf(cc, child, op) {
			return false // op is in the clause body: naked again
		}
		// The clause's select is above it, past the select body's block.
		for j := i - 1; j >= 0; j-- {
			if sel, ok := stack[j].(*ast.SelectStmt); ok {
				return len(sel.Body.List) >= 2
			}
			if _, ok := stack[j].(*ast.BlockStmt); !ok {
				break
			}
		}
		return false
	}
	return false
}

// isCommOf reports whether the op (reached via child) sits in the clause's
// communication statement rather than its body.
func isCommOf(cc *ast.CommClause, child, op ast.Node) bool {
	if cc.Comm == nil {
		return false
	}
	if child == ast.Node(cc.Comm) || op == ast.Node(cc.Comm) {
		return true
	}
	// One level of indirection: `case v := <-ch:` wraps the receive in an
	// assignment that IS the comm statement.
	found := false
	ast.Inspect(cc.Comm, func(n ast.Node) bool {
		if n == op {
			found = true
		}
		return !found
	})
	return found
}

// hasCtxParam reports whether fn takes a context.Context parameter.
func hasCtxParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if analysis.IsNamed(sig.Params().At(i).Type(), "context", "Context") {
			return true
		}
	}
	return false
}

// freshCtxName reports "context.Background()"/"context.TODO()" when arg is
// such a call, "" otherwise.
func freshCtxName(info *types.Info, arg ast.Expr) string {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	switch fn.Name() {
	case "Background", "TODO":
		return "context." + fn.Name() + "()"
	}
	return ""
}
