// Package clean holds true-negative fixtures for ctxprop: ctx threaded to
// callees, selects with alternatives, exempt channel forms, ctx-less
// functions (not this analyzer's business), and an acknowledged suppression.
package clean

import (
	"context"
	"sync"
	"time"
)

// selected sends under a ctx.Done alternative.
func selected(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
}

// tryRecv has a default: never blocks.
func tryRecv(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// threads passes its own ctx down; the callee selects properly.
func threads(ctx context.Context, ch chan int) {
	selected(ctx, ch)
}

// doneRecv receives from ctx.Done itself — the cancellation mechanism.
func doneRecv(ctx context.Context) {
	<-ctx.Done()
}

// timed receives from a call-result channel with deadline semantics.
func timed(ctx context.Context, d time.Duration) {
	<-time.After(d)
}

// noCtx has no ctx to thread; naked blocking here is goleak's and the
// caller's concern, not ctxprop's.
func noCtx(ch chan int) {
	<-ch
}

// acknowledged: the directive carries the mandatory reason, so the naked
// wait is suppressed rather than reported.
func acknowledged(ctx context.Context, wg *sync.WaitGroup) {
	wg.Wait() //streamvet:ignore ctxprop all workers observe ctx and exit promptly after cancel
}
