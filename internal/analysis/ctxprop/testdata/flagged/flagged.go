// Package flagged holds true-positive fixtures for ctxprop: ctx-receiving
// functions that block outside their ctx, detach callees from cancellation,
// or call into ctx-less blocking helpers.
package flagged

import (
	"context"
	"sync"
)

// sendNaked blocks sending with no select alternative.
func sendNaked(ctx context.Context, ch chan int) {
	ch <- 1 // want `outside any select`
}

// recvNaked blocks receiving with no select alternative.
func recvNaked(ctx context.Context, ch chan int) {
	<-ch // want `outside any select`
}

// singleCase is a select in form only: one clause is the same as a naked op.
func singleCase(ctx context.Context, ch chan int) {
	select {
	case <-ch: // want `outside any select`
	}
}

// waitNaked ignores ctx while waiting on a WaitGroup.
func waitNaked(ctx context.Context, wg *sync.WaitGroup) {
	wg.Wait() // want `waits on`
}

// detached hands a fresh Background to a ctx-taking callee.
func detached(ctx context.Context) {
	helper(context.Background()) // want `detaching`
}

func helper(ctx context.Context) { <-ctx.Done() }

// blockingHelper takes no ctx and blocks unconditionally; it gets a
// summary fact, not a report (its callers own the ctx decision).
func blockingHelper(ch chan int) {
	<-ch
}

// callsBlocking reaches the naked receive through a ctx-less callee — the
// interprocedural finding.
func callsBlocking(ctx context.Context, ch chan int) {
	blockingHelper(ch) // want `cancellation cannot reach`
}

// transitive blocks two hops down the call chain.
func middle(ch chan int) {
	blockingHelper(ch)
}

func callsTransitive(ctx context.Context, ch chan int) {
	middle(ch) // want `cancellation cannot reach`
}
