package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis. In-package
// test files (TestGoFiles) are compiled into the same Package; external test
// packages (XTestGoFiles, package foo_test) load as a separate Package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Export       string
	Error        *struct{ Err string }
}

// Loader resolves and type-checks packages of the module rooted at Dir. It
// resolves intra-module imports from source (so analyzers see one type
// identity per module package) and everything else from the toolchain's
// compiled export data via `go list -export`, which works fully offline —
// the reason this loader exists instead of golang.org/x/tools/go/packages.
type Loader struct {
	Dir  string
	Fset *token.FileSet

	mu      sync.Mutex
	modPath string
	gcImp   types.Importer            // shared: one identity per stdlib package
	exports map[string]string         // import path -> export-data file
	srcPkgs map[string]*types.Package // import path -> source-checked package
	listed  map[string]*listedPkg
	parsed  map[string]*ast.File // file path -> parsed syntax (shared Fset)
	dirPkgs map[string]*Package  // dir -> CheckDir result
}

// Loaders are expensive: each one re-reads stdlib export data and
// re-parses every file it touches. sharedLoaders memoizes one Loader per
// module directory for the life of the process, so the analyzer test
// binaries (one analysistest.Run per fixture directory) and repeated
// programmatic loads stop re-type-checking the world — the shared Fset and
// importer also guarantee one type identity per package across calls.
var (
	sharedMu      sync.Mutex
	sharedLoaders = make(map[string]*Loader)
)

// SharedLoader returns the process-wide Loader for the module containing
// dir, creating it on first use.
func SharedLoader(dir string) *Loader {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	l, ok := sharedLoaders[dir]
	if !ok {
		l = NewLoader(dir)
		sharedLoaders[dir] = l
	}
	return l
}

// NewLoader creates a loader for the module containing dir.
func NewLoader(dir string) *Loader {
	l := &Loader{
		Dir:     dir,
		Fset:    token.NewFileSet(),
		exports: make(map[string]string),
		srcPkgs: make(map[string]*types.Package),
		listed:  make(map[string]*listedPkg),
		parsed:  make(map[string]*ast.File),
		dirPkgs: make(map[string]*Package),
	}
	// One gc importer for the loader's lifetime: it memoizes by import path,
	// so every type-check sees the same *types.Package for, say, "context" —
	// mixing instances would make identical types compare unequal.
	l.gcImp = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, err := l.exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	})
	return l
}

// goList runs `go list -json` with extra flags and patterns, decoding the
// JSON stream.
func (l *Loader) goList(flags []string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-json"}, flags...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil && len(out) == 0 {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportFile returns the compiled export-data file for path, shelling out to
// `go list -export` on a miss (results are cached).
func (l *Loader) exportFile(path string) (string, error) {
	l.mu.Lock()
	f, ok := l.exports[path]
	l.mu.Unlock()
	if ok {
		return f, nil
	}
	pkgs, err := l.goList([]string{"-export"}, []string{path})
	if err != nil {
		return "", err
	}
	if len(pkgs) != 1 || pkgs[0].Export == "" {
		return "", fmt.Errorf("no export data for %q", path)
	}
	l.mu.Lock()
	l.exports[path] = pkgs[0].Export
	l.mu.Unlock()
	return pkgs[0].Export, nil
}

// prefetchExports bulk-loads export-data paths for the patterns' full
// dependency closure, including test dependencies, in one go command.
func (l *Loader) prefetchExports(patterns []string) {
	pkgs, err := l.goList([]string{"-deps", "-export", "-test", "-e"}, patterns)
	if err != nil {
		return // lazy per-path lookup will recover
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range pkgs {
		// Skip synthesized test variants ("pkg [pkg.test]"): their export
		// data must not shadow the plain package's.
		if p.Export == "" || strings.Contains(p.ImportPath, " ") {
			continue
		}
		if _, ok := l.exports[p.ImportPath]; !ok {
			l.exports[p.ImportPath] = p.Export
		}
	}
}

// modulePath reports (and caches) the module path of the module rooted at Dir.
func (l *Loader) modulePath() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.modPath == "" {
		cmd := exec.Command("go", "list", "-m")
		cmd.Dir = l.Dir
		if out, err := cmd.Output(); err == nil {
			l.modPath = strings.TrimSpace(string(out))
		}
	}
	return l.modPath
}

// Importer returns a types.Importer backed by the loader: intra-module
// packages are type-checked from source, others come from export data.
func (l *Loader) Importer() types.Importer {
	mod := l.modulePath()
	return importerFunc(func(path string) (*types.Package, error) {
		if mod != "" && (path == mod || strings.HasPrefix(path, mod+"/")) {
			return l.sourcePackage(path)
		}
		return l.gcImp.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// sourcePackage type-checks an intra-module package (without its test files)
// from source, memoized so every importer sees one identity per path.
func (l *Loader) sourcePackage(path string) (*types.Package, error) {
	l.mu.Lock()
	if pkg, ok := l.srcPkgs[path]; ok {
		l.mu.Unlock()
		return pkg, nil
	}
	lp, ok := l.listed[path]
	l.mu.Unlock()
	if !ok {
		pkgs, err := l.goList(nil, []string{path})
		if err != nil {
			return nil, err
		}
		if len(pkgs) != 1 {
			return nil, fmt.Errorf("go list %q: %d packages", path, len(pkgs))
		}
		lp = pkgs[0]
		l.mu.Lock()
		l.listed[path] = lp
		l.mu.Unlock()
	}
	files, err := l.parseFiles(lp.Dir, append(append([]string{}, lp.GoFiles...), lp.CgoFiles...))
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: l.Importer()}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	l.mu.Lock()
	l.srcPkgs[path] = pkg
	l.mu.Unlock()
	return pkg, nil
}

// parseFiles parses the named files in dir, memoized per path: a package's
// non-test files are parsed both for its analysis load (with tests) and
// its import-from-source variant (without), and the shared Fset makes the
// same *ast.File safe to type-check in both.
func (l *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		path := filepath.Join(dir, name)
		l.mu.Lock()
		f, ok := l.parsed[path]
		l.mu.Unlock()
		if !ok {
			var err error
			f, err = parser.ParseFile(l.Fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			l.mu.Lock()
			l.parsed[path] = f
			l.mu.Unlock()
		}
		files = append(files, f)
	}
	return files, nil
}

// newInfo allocates the types.Info maps analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load enumerates the packages matching patterns (as `go list` would) and
// returns them parsed and type-checked, including test files: in-package
// test files join their package; external _test packages become separate
// entries with PkgPath "<path>_test".
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l.prefetchExports(patterns)
	listed, err := l.goList(nil, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		l.mu.Lock()
		l.listed[lp.ImportPath] = lp
		l.mu.Unlock()

		names := append(append([]string{}, lp.GoFiles...), lp.CgoFiles...)
		names = append(names, lp.TestGoFiles...)
		files, err := l.parseFiles(lp.Dir, names)
		if err != nil {
			return nil, err
		}
		pkg, err := l.check(lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			PkgPath: lp.ImportPath, Dir: lp.Dir, Fset: l.Fset,
			Files: files, Types: pkg.Types, Info: pkg.Info,
		})

		if len(lp.XTestGoFiles) > 0 {
			xfiles, err := l.parseFiles(lp.Dir, lp.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			xpkg, err := l.check(lp.ImportPath+"_test", xfiles)
			if err != nil {
				return nil, err
			}
			out = append(out, &Package{
				PkgPath: lp.ImportPath + "_test", Dir: lp.Dir, Fset: l.Fset,
				Files: xfiles, Types: xpkg.Types, Info: xpkg.Info,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// checked pairs a types.Package with its Info.
type checked struct {
	Types *types.Package
	Info  *types.Info
}

// check type-checks files as package path using the loader's importer.
// Type errors are fatal: analyzers need complete type information.
func (l *Loader) check(path string, files []*ast.File) (*checked, error) {
	info := newInfo()
	var firstErr error
	conf := types.Config{
		Importer: l.Importer(),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, firstErr)
	}
	return &checked{Types: pkg, Info: info}, nil
}

// CheckDir parses and type-checks every .go file directly inside dir as one
// package — the entry point analysistest uses for testdata fixtures, which
// `go list` cannot see (testdata directories are invisible to the go tool).
// Results are memoized by dir, so several analyzers testing against the
// same fixture pay for one load.
func (l *Loader) CheckDir(dir string) (*Package, error) {
	l.mu.Lock()
	cached, ok := l.dirPkgs[dir]
	l.mu.Unlock()
	if ok {
		return cached, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	files, err := l.parseFiles(dir, names)
	if err != nil {
		return nil, err
	}
	pkg, err := l.check("fixture/"+filepath.Base(dir), files)
	if err != nil {
		return nil, err
	}
	out := &Package{
		PkgPath: "fixture/" + filepath.Base(dir), Dir: dir, Fset: l.Fset,
		Files: files, Types: pkg.Types, Info: pkg.Info,
	}
	l.mu.Lock()
	l.dirPkgs[dir] = out
	l.mu.Unlock()
	return out, nil
}
