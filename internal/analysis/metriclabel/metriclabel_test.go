package metriclabel_test

import (
	"testing"

	"streamgpu/internal/analysis/analysistest"
	"streamgpu/internal/analysis/metriclabel"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, metriclabel.Analyzer, "testdata/flagged", "testdata/clean")
}
