// Package metriclabel defines an analyzer guarding the telemetry registry's
// naming contract: instrument registrations (Registry.Counter, Gauge,
// GaugeFunc, Histogram) must use non-empty metric names, must not register
// one name under two different instrument kinds, and must not register the
// same (name, labels) series from more than one call site.
//
// The registry enforces the first two at runtime by panicking — the
// exposition format cannot represent an unnamed metric or a family of mixed
// kinds — but a panic surfaces only on the code path that actually runs with
// telemetry attached, which instrumented-by-default code rarely exercises
// under test. The third is legal (the registry is get-or-create) but almost
// always a copy-paste bug: two call sites silently share one series, and
// their increments become indistinguishable. Registering one family from
// several sites with *distinct* label literals is the normal idiom
// (op="read" / op="write") and is accepted.
//
// Only string-literal names are checked; computed names are skipped. Test
// files are exempt: tests legitimately re-derive instruments through the
// same get-or-create API to read values back.
package metriclabel

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"strconv"
	"strings"

	"streamgpu/internal/analysis"
)

const telemetryPkg = "streamgpu/internal/telemetry"

// Analyzer flags empty, kind-conflicting, and duplicate metric registrations.
var Analyzer = &analysis.Analyzer{
	Name: "metriclabel",
	Doc:  "telemetry metric registrations must use non-empty, kind-consistent names and one call site per (name, labels) series",
	Run:  run,
}

// kindOf maps a Registry method to the exposition kind it registers.
var kindOf = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"GaugeFunc": "gauge",
	"Histogram": "histogram",
}

// site is one literal-named registration call.
type site struct {
	pos    token.Pos
	kind   string
	labels string // rendered labels argument, "" when absent/nil
}

func run(pass *analysis.Pass) error {
	seen := make(map[string][]site) // metric name -> registrations in order
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			kind, ok := kindOf[fn.Name()]
			if !ok {
				return true
			}
			recv := analysis.ReceiverNamed(fn)
			if recv == nil || recv.Obj().Name() != "Registry" ||
				recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != telemetryPkg {
				return true
			}
			metric, ok := literalName(call)
			if !ok {
				return true // computed name: out of scope
			}
			if metric == "" {
				pass.Reportf(call.Pos(), "empty metric name in %s registration", kind)
				return true
			}
			s := site{pos: call.Pos(), kind: kind, labels: renderLabels(pass, call, fn.Name())}
			for _, prev := range seen[metric] {
				if prev.kind != s.kind {
					pass.Reportf(call.Pos(), "metric %q registered as %s at %s but as %s here: the registry panics on kind mismatch",
						metric, prev.kind, pass.Fset.Position(prev.pos), s.kind)
					break
				}
				if prev.labels == s.labels {
					pass.Reportf(call.Pos(), "duplicate registration of metric %q with identical labels (first at %s): both call sites share one series",
						metric, pass.Fset.Position(prev.pos))
					break
				}
			}
			seen[metric] = append(seen[metric], s)
			return true
		})
	}
	return nil
}

// literalName extracts the metric-name argument when it is a string literal.
func literalName(call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// renderLabels prints the labels argument back to source text, the identity
// the duplicate check compares. Histogram's labels are its third argument
// (after the bucket bounds); the other methods take them second.
func renderLabels(pass *analysis.Pass, call *ast.CallExpr, method string) string {
	idx := 1
	if method == "Histogram" {
		idx = 2
	}
	if idx >= len(call.Args) {
		return ""
	}
	arg := ast.Unparen(call.Args[idx])
	if id, ok := arg.(*ast.Ident); ok && id.Name == "nil" {
		return ""
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, arg); err != nil {
		return ""
	}
	return buf.String()
}
