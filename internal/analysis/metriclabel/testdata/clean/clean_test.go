// Fixture: test files are exempt — tests re-derive instruments through the
// get-or-create API to read values back.
package fixture

import (
	"testing"

	"streamgpu/internal/telemetry"
)

func TestReadBack(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("ops_total", telemetry.Labels{"op": "read"}).Inc()
	if v := reg.Counter("ops_total", telemetry.Labels{"op": "read"}).Value(); v != 1 {
		t.Fatal(v)
	}
}
