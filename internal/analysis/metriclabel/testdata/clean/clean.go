// Fixture: registration patterns the analyzer must accept.
package fixture

import "streamgpu/internal/telemetry"

func register(reg *telemetry.Registry, name string) *telemetry.Counter {
	// One family, distinct series per call site: the normal idiom.
	reg.Counter("ops_total", telemetry.Labels{"op": "read"})
	reg.Counter("ops_total", telemetry.Labels{"op": "write"})

	// Gauge and GaugeFunc are the same exposition kind.
	reg.Gauge("queue_depth", telemetry.Labels{"queue": "in"})
	reg.GaugeFunc("queue_depth", telemetry.Labels{"queue": "out"}, func() float64 { return 0 })

	reg.Histogram("svc_seconds", []float64{0.001, 0.1}, nil)

	// Computed names are out of scope.
	return reg.Counter(name, nil)
}
