// Fixture: telemetry registrations with empty, kind-conflicting, or
// duplicated metric names.
package fixture

import "streamgpu/internal/telemetry"

func register(reg *telemetry.Registry) {
	reg.Counter("", nil) // want `empty metric name`

	reg.Counter("jobs_total", nil)
	reg.Gauge("jobs_total", nil) // want `kind mismatch`

	reg.Counter("items_total", telemetry.Labels{"stage": "a"})
	reg.Counter("items_total", telemetry.Labels{"stage": "a"}) // want `duplicate registration`

	reg.Histogram("svc_seconds", nil, nil)
	reg.Counter("svc_seconds", nil) // want `kind mismatch`

	reg.GaugeFunc("depth", nil, func() float64 { return 0 })
	reg.GaugeFunc("depth", nil, func() float64 { return 1 }) // want `duplicate registration`
}
