package diag

import (
	"fmt"

	"streamgpu/internal/des"
	"streamgpu/internal/gpu"
)

// probeDeviceQuery is the enumeration probe: the spec must be internally
// sane (a degenerate spec would make every later timing meaningless) and
// the device must complete a malloc/free round trip — a fault-killed device
// fails here before any kernel runs.
func probeDeviceQuery(o Options, p *des.Proc, dev *gpu.Device, res *ProbeResult) error {
	s := dev.Spec
	switch {
	case s.SMs <= 0 || s.WarpSize <= 0 || s.MaxResidentThreadsPerSM <= 0:
		return fmt.Errorf("degenerate compute geometry: %d SMs, warp %d", s.SMs, s.WarpSize)
	case s.ClockHz <= 0 || s.IssueWarpsPerCycle <= 0 || s.DepLatencyCycles <= 0:
		return fmt.Errorf("degenerate issue model: clock %v", s.ClockHz)
	case s.GlobalMemBytes <= 0:
		return fmt.Errorf("no global memory")
	case s.H2DPinnedBps <= 0 || s.D2HPinnedBps <= 0 || s.H2DPageableBps <= 0 || s.D2HPageableBps <= 0:
		return fmt.Errorf("degenerate PCIe bandwidths")
	case s.H2DPinnedBps < s.H2DPageableBps || s.D2HPinnedBps < s.D2HPageableBps:
		return fmt.Errorf("pinned bandwidth below pageable")
	}
	buf, err := dev.Malloc(1 << 20)
	if err != nil {
		return fmt.Errorf("malloc: %w", err)
	}
	buf.Free()
	res.Metrics["sms"] = float64(s.SMs)
	res.Metrics["resident_threads"] = float64(s.MaxResidentThreads())
	res.Metrics["clock_ghz"] = s.ClockHz / 1e9
	res.Metrics["mem_gib"] = float64(s.GlobalMemBytes) / (1 << 30)
	res.Metrics["h2d_pinned_spec_gbps"] = s.H2DPinnedBps / 1e9
	return nil
}

// vecAddKernel is the correctness kernel: c[i] = a[i] + b[i] over bytes.
var vecAddKernel = &gpu.KernelSpec{
	Name:          "diag_vecadd",
	RegsPerThread: 8,
	Body: func(t gpu.Thread, args []any) int64 {
		a := args[0].(*gpu.Buf)
		b := args[1].(*gpu.Buf)
		c := args[2].(*gpu.Buf)
		n := args[3].(int)
		i := t.GlobalX()
		if i >= n {
			return gpu.ExitCost
		}
		c.Bytes()[i] = a.Bytes()[i] + b.Bytes()[i]
		return 12
	},
}

// probeVectorAdd is the correctness probe: seeded inputs up, one elementwise
// kernel, results back, every byte verified — the smallest workload that
// exercises both copy engines and the compute path end to end.
func probeVectorAdd(o Options, p *des.Proc, dev *gpu.Device, res *ProbeResult) error {
	n := o.vectorLen()
	hA, hB, hC := gpu.NewPinnedBuf(int64(n)), gpu.NewPinnedBuf(int64(n)), gpu.NewPinnedBuf(int64(n))
	for i := 0; i < n; i++ {
		hA.Data[i] = byte(i*7 + dev.ID)
		hB.Data[i] = byte(i>>3 + 13)
	}
	dA, dB, dC, freeAll, err := malloc3(dev, int64(n))
	if err != nil {
		return fmt.Errorf("malloc: %w", err)
	}
	defer freeAll()
	st := dev.NewStream("diag-vecadd")
	evA := st.CopyH2D(p, dA, 0, hA, 0, int64(n))
	evB := st.CopyH2D(p, dB, 0, hB, 0, int64(n))
	evK := st.Launch(p, vecAddKernel.Bind(dA, dB, dC, n), gpu.Grid1D(n, 128))
	evC := st.CopyD2H(p, hC, 0, dC, 0, int64(n))
	if err := gpu.WaitErr(p, evA, evB, evK, evC); err != nil {
		return err
	}
	mismatches := 0
	for i := 0; i < n; i++ {
		if hC.Data[i] != hA.Data[i]+hB.Data[i] {
			mismatches++
		}
	}
	res.Metrics["elements"] = float64(n)
	res.Metrics["mismatches"] = float64(mismatches)
	if mismatches > 0 {
		return fmt.Errorf("%d/%d elements wrong", mismatches, n)
	}
	return nil
}

// probeBandwidth is the PCIe sweep: each size × direction × memory kind is
// timed through the virtual clock and must achieve Tolerance × the device's
// own spec. Because the bar is the device's spec, a derated fleet entry
// (narrow link, honest about it) passes while a device underperforming its
// declared link fails.
func probeBandwidth(o Options, p *des.Proc, dev *gpu.Device, res *ProbeResult) error {
	tol := o.tolerance()
	sizes := o.sweepSizes()
	for _, pinned := range []bool{true, false} {
		for _, h2d := range []bool{true, false} {
			var achieved float64
			for _, sz := range sizes {
				var host *gpu.HostBuf
				if pinned {
					host = gpu.NewPinnedBuf(int64(sz))
				} else {
					host = gpu.NewHostBuf(int64(sz))
				}
				buf, err := dev.Malloc(int64(sz))
				if err != nil {
					return fmt.Errorf("malloc %d: %w", sz, err)
				}
				st := dev.NewStream("diag-bw")
				t0 := p.Now()
				var ev *des.Event
				if h2d {
					ev = st.CopyH2D(p, buf, 0, host, 0, int64(sz))
				} else {
					ev = st.CopyD2H(p, host, 0, buf, 0, int64(sz))
				}
				err = gpu.WaitErr(p, ev)
				buf.Free()
				if err != nil {
					return err
				}
				dur := (p.Now() - t0).Seconds()
				if dur <= 0 {
					return fmt.Errorf("%s transfer of %d bytes took no virtual time", bwKey(h2d, pinned), sz)
				}
				achieved = float64(sz) / dur // the largest size wins the report
			}
			spec := specBps(dev.Spec, h2d, pinned)
			res.Metrics[bwKey(h2d, pinned)+"_gbps"] = achieved / 1e9
			if achieved < tol*spec {
				return fmt.Errorf("%s achieved %.2f GB/s, below %.0f%% of spec %.2f GB/s",
					bwKey(h2d, pinned), achieved/1e9, tol*100, spec/1e9)
			}
		}
	}
	return nil
}

// bwKey names one sweep combination.
func bwKey(h2d, pinned bool) string {
	dir, kind := "d2h", "pageable"
	if h2d {
		dir = "h2d"
	}
	if pinned {
		kind = "pinned"
	}
	return dir + "_" + kind
}

// specBps resolves the spec bandwidth for one combination.
func specBps(s gpu.DeviceSpec, h2d, pinned bool) float64 {
	switch {
	case h2d && pinned:
		return s.H2DPinnedBps
	case h2d:
		return s.H2DPageableBps
	case pinned:
		return s.D2HPinnedBps
	default:
		return s.D2HPageableBps
	}
}

// grindKernel increments every byte in place — cheap compute that makes
// data corruption visible at the end of the grind.
var grindKernel = &gpu.KernelSpec{
	Name:          "diag_grind",
	RegsPerThread: 8,
	Body: func(t gpu.Thread, args []any) int64 {
		buf := args[0].(*gpu.Buf)
		n := args[1].(int)
		i := t.GlobalX()
		if i >= n {
			return gpu.ExitCost
		}
		buf.Bytes()[i]++
		return 8
	},
}

// probeBusGrind is the sustained-traffic probe: GrindOps double-buffered
// upload→kernel→download rounds on two streams, downloads overlapping the
// next round's uploads, with every downloaded byte checked against the
// expected pattern. It catches what one-shot probes miss: faults that only
// surface under continuous bus pressure.
func probeBusGrind(o Options, p *des.Proc, dev *gpu.Device, res *ProbeResult) error {
	const sz = 256 << 10
	ops := o.grindOps()
	hSrc := gpu.NewPinnedBuf(sz)
	for i := range hSrc.Data {
		hSrc.Data[i] = byte(i*13 + dev.ID)
	}
	hDst := [2]*gpu.HostBuf{gpu.NewPinnedBuf(sz), gpu.NewPinnedBuf(sz)}
	dBuf := [2]*gpu.Buf{}
	for i := range dBuf {
		b, err := dev.Malloc(sz)
		if err != nil {
			return fmt.Errorf("malloc: %w", err)
		}
		defer b.Free()
		dBuf[i] = b
	}
	stUp := dev.NewStream("diag-grind-up")
	stDown := dev.NewStream("diag-grind-down")
	check := func(h *gpu.HostBuf) error {
		for i := range h.Data {
			if h.Data[i] != hSrc.Data[i]+1 {
				return fmt.Errorf("data integrity: byte %d = %#x, want %#x", i, h.Data[i], hSrc.Data[i]+1)
			}
		}
		return nil
	}
	t0 := p.Now()
	var prevDown *des.Event
	prevParity := 0
	for i := 0; i < ops; i++ {
		b := i % 2
		evU := stUp.CopyH2D(p, dBuf[b], 0, hSrc, 0, sz)
		evK := stUp.Launch(p, grindKernel.Bind(dBuf[b], sz), gpu.Grid1D(sz, 128))
		if prevDown != nil {
			// The previous round's download lands while this round's
			// upload+kernel are in flight — that concurrency is the grind.
			if err := gpu.WaitErr(p, prevDown); err != nil {
				return err
			}
			if err := check(hDst[prevParity]); err != nil {
				return err
			}
		}
		if err := gpu.WaitErr(p, evU, evK); err != nil {
			return err
		}
		prevDown = stDown.CopyD2H(p, hDst[b], 0, dBuf[b], 0, sz)
		prevParity = b
	}
	if err := gpu.WaitErr(p, prevDown); err != nil {
		return err
	}
	if err := check(hDst[prevParity]); err != nil {
		return err
	}
	elapsed := (p.Now() - t0).Seconds()
	if elapsed <= 0 {
		return fmt.Errorf("grind took no virtual time")
	}
	res.Metrics["ops"] = float64(ops)
	res.Metrics["sustained_gbps"] = float64(ops) * 2 * sz / elapsed / 1e9
	res.Metrics["overlap_ms"] = dev.Stats().OverlapBusy.Seconds() * 1e3
	return nil
}

// malloc3 allocates three equal device buffers or none.
func malloc3(dev *gpu.Device, n int64) (a, b, c *gpu.Buf, free func(), err error) {
	var bufs []*gpu.Buf
	free = func() {
		for _, b := range bufs {
			b.Free()
		}
	}
	for i := 0; i < 3; i++ {
		buf, err := dev.Malloc(n)
		if err != nil {
			free()
			return nil, nil, nil, nil, err
		}
		bufs = append(bufs, buf)
	}
	return bufs[0], bufs[1], bufs[2], free, nil
}
