// Package diag is the fleet diagnostic probe suite — the repo's analogue of
// DCGM's diag run levels over the simulated device pool. Each probe builds a
// private discrete-event simulation around one device (exactly like the
// serving path builds one per batch), runs a known workload, and verifies
// both the functional result (bytes must be right) and the timed result
// (achieved bandwidth must be a sane fraction of the device's own spec, so a
// derated-but-honest part passes while a part underperforming its spec
// fails).
//
// Probes by run level, mirroring `dcgmi diag -r`:
//
//	-r 1  device_query  spec sanity + a malloc/free round trip
//	      vector_add    seeded elementwise kernel, bit-exact verification
//	-r 2  bandwidth     pinned-vs-pageable PCIe sweep in both directions
//	-r 3  bus_grind     sustained double-buffered copy/compute traffic with
//	                    end-to-end data integrity
//
// The suite runs standalone via cmd/streamdiag (text or JSON) and
// periodically inside streamd, where per-device pass/fail feeds the health
// scoreboard's RecordProbe. Fault injection flows through Options.FaultsFor
// with per-probe decorrelated seeds, so a chaos schedule hits probes the
// same deterministic way it hits serving batches.
package diag

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"streamgpu/internal/des"
	"streamgpu/internal/fault"
	"streamgpu/internal/gpu"
	"streamgpu/internal/telemetry"
)

// Run levels.
const (
	LevelQuick  = 1 // device_query + vector_add
	LevelMedium = 2 // + bandwidth sweep
	LevelLong   = 3 // + bus grind
)

// Probe names, in execution order.
const (
	ProbeDeviceQuery = "device_query"
	ProbeVectorAdd   = "vector_add"
	ProbeBandwidth   = "bandwidth"
	ProbeBusGrind    = "bus_grind"
)

// Options configures one diagnostic run over a fleet.
type Options struct {
	// Level is the run level (1..3, default 1). Levels are cumulative.
	Level int
	// Fleet is the per-device spec list (required; gpu.ParseFleet builds it
	// from a -fleet string).
	Fleet []gpu.DeviceSpec
	// FaultsFor, when set, supplies each device's injector config — the
	// same hook the serving path and chaos harness use.
	FaultsFor func(dev int) fault.Config
	// Metrics, when set, receives diag_probe_total counters and the
	// device's own instrumentation. nil is off.
	Metrics *telemetry.Registry
	// VectorLen is the vector_add element count (default 64Ki).
	VectorLen int
	// SweepSizes are the bandwidth transfer sizes in bytes (default 256KiB,
	// 1MiB, 4MiB); the largest is the one reported.
	SweepSizes []int
	// GrindOps is the bus-grind iteration count (default 24).
	GrindOps int
	// Tolerance is the fraction of the spec bandwidth a transfer must
	// achieve to pass (default 0.5). The spec consulted is the device's
	// own, so honestly derated fleets self-normalize.
	Tolerance float64
}

func (o Options) level() int {
	if o.Level < LevelQuick {
		return LevelQuick
	}
	if o.Level > LevelLong {
		return LevelLong
	}
	return o.Level
}

func (o Options) vectorLen() int {
	if o.VectorLen <= 0 {
		return 64 << 10
	}
	return o.VectorLen
}

func (o Options) sweepSizes() []int {
	if len(o.SweepSizes) == 0 {
		return []int{256 << 10, 1 << 20, 4 << 20}
	}
	return o.SweepSizes
}

func (o Options) grindOps() int {
	if o.GrindOps <= 0 {
		return 24
	}
	return o.GrindOps
}

func (o Options) tolerance() float64 {
	if o.Tolerance <= 0 || o.Tolerance > 1 {
		return 0.5
	}
	return o.Tolerance
}

// ProbeResult is one probe's verdict on one device.
type ProbeResult struct {
	Device         int                `json:"device"`
	Spec           string             `json:"spec"`
	Probe          string             `json:"probe"`
	Level          int                `json:"level"`
	Pass           bool               `json:"pass"`
	Error          string             `json:"error,omitempty"`
	Metrics        map[string]float64 `json:"metrics,omitempty"`
	VirtualSeconds float64            `json:"virtual_seconds"`
}

// Report is one diagnostic run over a fleet.
type Report struct {
	Level   int           `json:"level"`
	Devices int           `json:"devices"`
	Pass    bool          `json:"pass"`
	Results []ProbeResult `json:"results"`
}

// probeDef is one probe's registration.
type probeDef struct {
	name  string
	level int
	body  func(o Options, p *des.Proc, dev *gpu.Device, res *ProbeResult) error
}

// probes is the suite, in execution order per device.
var probes = []probeDef{
	{ProbeDeviceQuery, LevelQuick, probeDeviceQuery},
	{ProbeVectorAdd, LevelQuick, probeVectorAdd},
	{ProbeBandwidth, LevelMedium, probeBandwidth},
	{ProbeBusGrind, LevelLong, probeBusGrind},
}

// ProbesForLevel lists the probe names a run level executes, in order.
func ProbesForLevel(level int) []string {
	var names []string
	for _, pd := range probes {
		if pd.level <= level {
			names = append(names, pd.name)
		}
	}
	return names
}

// Run executes the suite over the fleet: every probe at or below the run
// level, per device, each in its own simulation. Devices are independent —
// one device's failure never stops another's probes — and the result order
// is deterministic (device-major, probe order within).
func Run(opt Options) Report {
	rep := Report{Level: opt.level(), Devices: len(opt.Fleet), Pass: true}
	for devIdx, spec := range opt.Fleet {
		for pi, pd := range probes {
			if pd.level > opt.level() {
				continue
			}
			res := runProbe(opt, devIdx, spec, pi, pd)
			if !res.Pass {
				rep.Pass = false
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep
}

// runProbe executes one probe against one device in a fresh simulation.
func runProbe(opt Options, devIdx int, spec gpu.DeviceSpec, probeIdx int, pd probeDef) ProbeResult {
	res := ProbeResult{
		Device: devIdx, Spec: spec.Name, Probe: pd.name, Level: pd.level,
		Metrics: make(map[string]float64),
	}
	sim := des.New()
	dev := gpu.NewDevice(sim, spec, devIdx)
	dev.SetTelemetry(opt.Metrics)
	if opt.FaultsFor != nil {
		if fc := opt.FaultsFor(devIdx); fc != (fault.Config{}) {
			// Decorrelate per probe while keeping each schedule reproducible.
			fc.Seed ^= int64(uint64(devIdx*len(probes)+probeIdx+1) * 0x9e3779b97f4a7c15)
			dev.SetFaultInjector(fault.New(fc))
		}
	}
	var perr error
	done := false
	sim.Spawn("diag-"+pd.name, func(p *des.Proc) {
		perr = pd.body(opt, p, dev, &res)
		done = true
	})
	end, err := sim.Run()
	res.VirtualSeconds = end.Seconds()
	switch {
	case err != nil:
		res.Error = err.Error()
	case !done:
		res.Error = "probe did not complete"
	case perr != nil:
		res.Error = perr.Error()
	}
	res.Pass = res.Error == ""
	if len(res.Metrics) == 0 {
		res.Metrics = nil // empty and absent must round-trip identically
	}
	verdict := "pass"
	if !res.Pass {
		verdict = "fail"
	}
	opt.Metrics.Counter("diag_probe_total", telemetry.Labels{
		"device": dev.Name(), "probe": pd.name, "result": verdict,
	}).Add(1)
	return res
}

// DevicePass reports whether every probe in the report passed for dev —
// what streamd's background prober feeds the health scoreboard.
func (r Report) DevicePass(dev int) bool {
	pass := true
	for _, res := range r.Results {
		if res.Device == dev && !res.Pass {
			pass = false
		}
	}
	return pass
}

// WriteJSON writes the report as indented JSON — the -json output and the
// golden-test document.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Text renders the human-readable report.
func (r Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "streamdiag: %d device(s), run level %d\n", r.Devices, r.Level)
	passed := 0
	for _, res := range r.Results {
		verdict := "PASS"
		if res.Pass {
			passed++
		} else {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "gpu%-3d %-28s %-13s %s  %8.3fms", res.Device, res.Spec, res.Probe, verdict, res.VirtualSeconds*1e3)
		if res.Error != "" {
			fmt.Fprintf(&b, "  %s", res.Error)
		}
		b.WriteByte('\n')
	}
	overall := "PASS"
	if !r.Pass {
		overall = "FAIL"
	}
	fmt.Fprintf(&b, "overall: %s (%d/%d probes passed)\n", overall, passed, len(r.Results))
	return b.String()
}

// Validate structurally checks a report — the JSON-schema gate behind
// `streamdiag -validate` and the CI diag smoke. It verifies the level is in
// range, the result set is exactly the expected probe matrix for that level
// (every device × every probe, in order), verdicts are consistent with
// error fields, and every number is finite.
func Validate(r Report) error {
	if r.Level < LevelQuick || r.Level > LevelLong {
		return fmt.Errorf("diag: level %d out of range 1..3", r.Level)
	}
	if r.Devices <= 0 {
		return fmt.Errorf("diag: %d devices", r.Devices)
	}
	want := ProbesForLevel(r.Level)
	if len(r.Results) != r.Devices*len(want) {
		return fmt.Errorf("diag: %d results, want %d (%d devices x %d probes)",
			len(r.Results), r.Devices*len(want), r.Devices, len(want))
	}
	allPass := true
	for i, res := range r.Results {
		wantDev, wantProbe := i/len(want), want[i%len(want)]
		if res.Device != wantDev || res.Probe != wantProbe {
			return fmt.Errorf("diag: result %d is device %d probe %q, want device %d probe %q",
				i, res.Device, res.Probe, wantDev, wantProbe)
		}
		if res.Pass != (res.Error == "") {
			return fmt.Errorf("diag: result %d: pass=%v with error %q", i, res.Pass, res.Error)
		}
		if !res.Pass {
			allPass = false
		}
		if res.VirtualSeconds < 0 || math.IsNaN(res.VirtualSeconds) || math.IsInf(res.VirtualSeconds, 0) {
			return fmt.Errorf("diag: result %d: virtual_seconds %v", i, res.VirtualSeconds)
		}
		for k, v := range res.Metrics {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("diag: result %d: metric %s = %v", i, k, v)
			}
		}
	}
	if r.Pass != allPass {
		return fmt.Errorf("diag: report pass=%v but results say %v", r.Pass, allPass)
	}
	return nil
}
