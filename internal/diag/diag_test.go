package diag

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"streamgpu/internal/fault"
	"streamgpu/internal/gpu"
	"streamgpu/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenOptions is the fixed scenario behind the golden file: a
// heterogeneous three-device fleet at the full run level, with device 2
// under a deterministic fault schedule so the golden captures both verdicts.
func goldenOptions() Options {
	fleet, err := gpu.ParseFleet("titanxp,titanxp@clock=0.7@gen=2,titanxp@sms=20")
	if err != nil {
		panic(err)
	}
	return Options{
		Level:     LevelLong,
		Fleet:     fleet,
		VectorLen: 4 << 10,
		GrindOps:  8,
		FaultsFor: func(dev int) fault.Config {
			if dev != 2 {
				return fault.Config{} //streamvet:ignore faultseed the zero config disables injection for the clean devices
			}
			return fault.Config{Seed: 11, TransferRate: 0.6, KernelRate: 0.6}
		},
	}
}

// TestRunGoldenJSON pins the full -json document for a fixed heterogeneous
// fleet with one faulted device. The simulation is deterministic, so any
// diff — field renames, metric changes, verdict flips, timing drift — is a
// deliberate decision made by regenerating with -update.
func TestRunGoldenJSON(t *testing.T) {
	rep := Run(goldenOptions())
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/diag -run GoldenJSON -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("golden mismatch (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// The golden document must itself satisfy the schema gate, and survive a
	// decode round trip.
	var decoded Report
	if err := json.Unmarshal(want, &decoded); err != nil {
		t.Fatal(err)
	}
	if err := Validate(decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, decoded) {
		t.Fatal("report does not survive a JSON round trip")
	}
}

// TestRunVerdicts checks the scenario semantics behind the golden: clean
// devices pass everything, the faulted device fails at least one probe, and
// failures carry errors while passes do not.
func TestRunVerdicts(t *testing.T) {
	rep := Run(goldenOptions())
	if rep.Pass {
		t.Fatal("report passed with a device at 60% fault rates")
	}
	if !rep.DevicePass(0) || !rep.DevicePass(1) {
		t.Fatalf("clean device failed: %+v", rep.Results)
	}
	if rep.DevicePass(2) {
		t.Fatal("faulted device 2 passed the full suite")
	}
	for _, res := range rep.Results {
		if res.Pass && res.Error != "" {
			t.Fatalf("passing probe with error: %+v", res)
		}
		if !res.Pass && res.Error == "" {
			t.Fatalf("failing probe without error: %+v", res)
		}
	}
}

// TestRunCleanFleetPasses: without fault injection every probe on every
// heterogeneous device passes, including honestly-derated specs (the
// bandwidth bar is the device's own spec).
func TestRunCleanFleetPasses(t *testing.T) {
	fleet, err := gpu.ParseFleet("titanxp,titanxp@clock=0.5,titanxp@gen=1@mem=4")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	rep := Run(Options{Level: LevelLong, Fleet: fleet, VectorLen: 2 << 10, GrindOps: 6, Metrics: reg})
	if !rep.Pass {
		t.Fatalf("clean heterogeneous fleet failed:\n%s", rep.Text())
	}
	if err := Validate(rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text(), "overall: PASS") {
		t.Fatalf("text report missing overall verdict:\n%s", rep.Text())
	}
	// Every probe must have emitted its counter.
	var total float64
	for _, m := range reg.Snapshot().Metrics {
		if m.Name != "diag_probe_total" {
			continue
		}
		for _, s := range m.Series {
			if s.Labels["result"] != "pass" {
				t.Fatalf("unexpected fail counter: %+v", s)
			}
			total += s.Value
		}
	}
	if want := float64(len(rep.Results)); total != want {
		t.Fatalf("diag_probe_total sums to %v, want %v", total, want)
	}
}

// TestProbesForLevel pins the cumulative run-level contract.
func TestProbesForLevel(t *testing.T) {
	cases := map[int][]string{
		LevelQuick:  {ProbeDeviceQuery, ProbeVectorAdd},
		LevelMedium: {ProbeDeviceQuery, ProbeVectorAdd, ProbeBandwidth},
		LevelLong:   {ProbeDeviceQuery, ProbeVectorAdd, ProbeBandwidth, ProbeBusGrind},
	}
	for level, want := range cases {
		if got := ProbesForLevel(level); !reflect.DeepEqual(got, want) {
			t.Errorf("level %d: got %v, want %v", level, got, want)
		}
	}
}

// TestValidateRejects corrupts a valid report one field at a time; every
// corruption must be caught.
func TestValidateRejects(t *testing.T) {
	fleet, _ := gpu.ParseFleet("titanxp*2")
	base := Run(Options{Level: LevelQuick, Fleet: fleet, VectorLen: 1 << 10})
	if err := Validate(base); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		corrupt func(r *Report)
	}{
		{"level zero", func(r *Report) { r.Level = 0 }},
		{"level four", func(r *Report) { r.Level = 4 }},
		{"no devices", func(r *Report) { r.Devices = 0 }},
		{"missing result", func(r *Report) { r.Results = r.Results[:len(r.Results)-1] }},
		{"reordered results", func(r *Report) { r.Results[0], r.Results[1] = r.Results[1], r.Results[0] }},
		{"wrong device id", func(r *Report) { r.Results[0].Device = 9 }},
		{"pass with error", func(r *Report) { r.Results[0].Error = "boom" }},
		{"fail without error", func(r *Report) { r.Results[0].Pass = false }},
		{"negative time", func(r *Report) { r.Results[0].VirtualSeconds = -1 }},
		{"nan metric", func(r *Report) { r.Results[0].Metrics["sms"] = nan() }},
		{"pass disagreement", func(r *Report) { r.Pass = false }},
	}
	for _, tc := range cases {
		r := base
		r.Results = append([]ProbeResult(nil), base.Results...)
		for i := range r.Results {
			m := make(map[string]float64, len(base.Results[i].Metrics))
			for k, v := range base.Results[i].Metrics {
				m[k] = v
			}
			r.Results[i].Metrics = m
		}
		tc.corrupt(&r)
		if err := Validate(r); err == nil {
			t.Errorf("%s: corruption not caught", tc.name)
		}
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}
