package rabin

import (
	"math/rand"
	"testing"

	"streamgpu/internal/pool"
)

// TestAppendBoundariesMatchesBoundaries checks the appending form returns
// the same offsets as Boundaries.
func TestAppendBoundariesMatchesBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 256<<10)
	rng.Read(data)
	c := NewChunker()
	want := c.Boundaries(data)
	got := c.AppendBoundaries(nil, data)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boundary %d = %d, want %d", i, got[i], want[i])
		}
	}
	// Reusing a warm destination must yield the same result again.
	got = c.AppendBoundaries(got[:0], data)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reused dst: boundary %d = %d, want %d", i, got[i], want[i])
		}
	}
	if out := c.AppendBoundaries(got[:0], nil); len(out) != 0 {
		t.Fatalf("empty data appended %d boundaries, want 0", len(out))
	}
}

// TestAppendBoundariesAllocs pins the chunking hot path to zero heap
// allocations once the destination has capacity.
func TestAppendBoundariesAllocs(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 128<<10)
	rng.Read(data)
	c := NewChunker()
	dst := c.AppendBoundaries(nil, data) // learn the needed capacity
	allocs := testing.AllocsPerRun(10, func() {
		dst = c.AppendBoundaries(dst[:0], data)
	})
	if allocs != 0 {
		t.Fatalf("AppendBoundaries allocates %v per batch, want 0", allocs)
	}
}
