package rabin

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveFingerprint computes the window fingerprint by long division — the
// definition Roll must agree with.
func naiveFingerprint(window []byte, poly uint64) uint64 {
	var fp uint64
	d := deg(poly)
	for _, b := range window {
		for bit := 7; bit >= 0; bit-- {
			fp <<= 1
			if b&(1<<uint(bit)) != 0 {
				fp |= 1
			}
			if fp&(1<<uint(d)) != 0 {
				fp ^= poly
			}
		}
	}
	return fp
}

func TestRollMatchesLongDivision(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 500)
	rng.Read(data)
	w := NewWindow()
	for i := range data {
		got := w.Roll(data[i])
		// Reference: fingerprint of the last WindowSize bytes (zero-padded
		// at the front for the warm-up phase).
		win := make([]byte, WindowSize)
		lo := i + 1 - WindowSize
		for j := 0; j < WindowSize; j++ {
			src := lo + j
			if src >= 0 {
				win[j] = data[src]
			}
		}
		want := naiveFingerprint(win, DefaultPoly)
		if got != want {
			t.Fatalf("byte %d: Roll fp = %#x, long division = %#x", i, got, want)
		}
	}
}

func TestFingerprintDependsOnlyOnWindow(t *testing.T) {
	// Two streams with different prefixes but the same last WindowSize
	// bytes must converge to the same fingerprint — the property that makes
	// content-defined chunking shift-resistant.
	tail := make([]byte, WindowSize)
	rand.New(rand.NewSource(5)).Read(tail)

	roll := func(prefix []byte) uint64 {
		w := NewWindow()
		for _, b := range prefix {
			w.Roll(b)
		}
		var fp uint64
		for _, b := range tail {
			fp = w.Roll(b)
		}
		return fp
	}
	a := roll([]byte("completely different prefix data here"))
	b := roll(bytes.Repeat([]byte{0xAB}, 101))
	if a != b {
		t.Errorf("fingerprints differ (%#x vs %#x) despite identical windows", a, b)
	}
}

func TestChunkerBoundariesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 256*1024)
	rng.Read(data)
	c := NewChunker()
	starts := c.Boundaries(data)
	if len(starts) == 0 || starts[0] != 0 {
		t.Fatalf("first boundary must be 0, got %v", starts[:min(3, len(starts))])
	}
	for i := 1; i < len(starts); i++ {
		size := int(starts[i] - starts[i-1])
		if size < c.Min {
			t.Errorf("block %d size %d below Min %d", i-1, size, c.Min)
		}
		if size > c.Max {
			t.Errorf("block %d size %d above Max %d", i-1, size, c.Max)
		}
	}
	// Expected block size ~2^11: on 256 KiB expect roughly 128 blocks;
	// accept a broad band.
	if n := len(starts); n < 40 || n > 400 {
		t.Errorf("got %d blocks on 256 KiB with 2 KiB target — chunking degenerate", n)
	}
}

func TestChunkerDeterministic(t *testing.T) {
	data := make([]byte, 64*1024)
	rand.New(rand.NewSource(3)).Read(data)
	c := NewChunker()
	a := c.Boundaries(data)
	b := c.Boundaries(data)
	if len(a) != len(b) {
		t.Fatal("boundary count differs across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("boundaries differ across runs")
		}
	}
}

func TestChunkerShiftResistance(t *testing.T) {
	// Insert bytes near the front: boundaries after the insertion point
	// must re-align (the dedup-enabling property). Fixed-size chunking
	// would misalign every block.
	base := make([]byte, 128*1024)
	rand.New(rand.NewSource(11)).Read(base)
	shifted := append(append([]byte{}, []byte("INSERTED-PREFIX-BYTES")...), base...)

	c := NewChunker()
	a := c.Split(base)
	b := c.Split(shifted)
	// Count identical blocks (by content) between the two chunkings.
	seen := make(map[string]bool)
	for _, blk := range a {
		seen[string(blk)] = true
	}
	common := 0
	for _, blk := range b {
		if seen[string(blk)] {
			common++
		}
	}
	if common < len(a)/2 {
		t.Errorf("only %d of %d blocks survived a prefix insertion; content-defined chunking should preserve most", common, len(a))
	}
}

func TestSplitReassembles(t *testing.T) {
	data := make([]byte, 100_000)
	rand.New(rand.NewSource(13)).Read(data)
	blocks := NewChunker().Split(data)
	var re []byte
	for _, b := range blocks {
		re = append(re, b...)
	}
	if !bytes.Equal(re, data) {
		t.Fatal("Split blocks do not reassemble to the input")
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	c := NewChunker()
	if got := c.Boundaries(nil); got != nil {
		t.Errorf("Boundaries(nil) = %v, want nil", got)
	}
	if got := c.Boundaries([]byte{1, 2, 3}); len(got) != 1 || got[0] != 0 {
		t.Errorf("tiny input boundaries = %v, want [0]", got)
	}
	blocks := c.Split([]byte{1, 2, 3})
	if len(blocks) != 1 || !bytes.Equal(blocks[0], []byte{1, 2, 3}) {
		t.Errorf("tiny Split = %v", blocks)
	}
}

func TestBadPolynomialPanics(t *testing.T) {
	for _, p := range []uint64{0, 1, 0x80} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTable(%#x) should panic", p)
				}
			}()
			NewTable(p)
		}()
	}
}

// Property: Split always reassembles and every block respects Min/Max
// (except the final block, which may be short).
func TestChunkerProperty(t *testing.T) {
	f := func(seed int64, sizeSeed uint16) bool {
		size := int(sizeSeed)%50000 + 1
		data := make([]byte, size)
		rand.New(rand.NewSource(seed)).Read(data)
		c := NewChunker()
		blocks := c.Split(data)
		var total int
		for i, b := range blocks {
			if i < len(blocks)-1 && (len(b) < c.Min || len(b) > c.Max) {
				return false
			}
			total += len(b)
		}
		return total == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: rolling is translation-invariant — the fingerprint after
// rolling a window depends only on those WindowSize bytes.
func TestWindowOnlyProperty(t *testing.T) {
	f := func(prefixA, prefixB []byte, tailSeed int64) bool {
		tail := make([]byte, WindowSize)
		rand.New(rand.NewSource(tailSeed)).Read(tail)
		roll := func(prefix []byte) uint64 {
			w := NewWindow()
			for _, b := range prefix {
				w.Roll(b)
			}
			var fp uint64
			for _, b := range tail {
				fp = w.Roll(b)
			}
			return fp
		}
		return roll(prefixA) == roll(prefixB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRoll(b *testing.B) {
	data := make([]byte, 1<<16)
	rand.New(rand.NewSource(1)).Read(data)
	w := NewWindow()
	b.SetBytes(1)
	for i := 0; i < b.N; i++ {
		w.Roll(data[i&(1<<16-1)])
	}
}

func BenchmarkChunk1MB(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	c := NewChunker()
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		c.Boundaries(data)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
