// Package rabin implements Rabin fingerprinting over a sliding window and
// content-defined chunking on top of it — the fragmentation algorithm
// PARSEC's dedup uses to find block boundaries.
//
// A Rabin fingerprint treats bytes as coefficients of a polynomial over
// GF(2) and reduces modulo an irreducible polynomial P. Because the
// fingerprint of a sliding window can be updated in O(1) per byte (push the
// incoming byte, pop the outgoing one via precomputed tables), it is the
// standard tool for finding content-defined cut points: a boundary is
// declared wherever fp mod 2^avgBits == magic, so boundaries move with the
// content rather than with file offsets — insertions only disturb
// neighbouring blocks, which is what makes deduplication effective.
//
// The paper's GPU Dedup keeps this exact algorithm on the CPU ("in order to
// still benefit from the rabin fingerprint, we ran the algorithm on CPU and
// saved all the indexes") and our internal/dedup does the same.
package rabin

// DefaultPoly is a degree-53 irreducible polynomial over GF(2), the one
// used by LBFS and PARSEC's dedup (0x3DA3358B4DC173).
const DefaultPoly uint64 = 0x3DA3358B4DC173

// WindowSize is the sliding window length in bytes (PARSEC dedup uses 32).
const WindowSize = 32

// Table holds the precomputed push/pop tables for one polynomial.
type Table struct {
	poly  uint64
	shift uint // degree of poly minus 1: position of the top coefficient
	modT  [256]uint64
	outT  [256]uint64
}

// NewTable builds tables for the given irreducible polynomial, which must
// have degree >= 9 (so a whole byte fits under the top coefficient).
func NewTable(poly uint64) *Table {
	d := deg(poly)
	if d < 9 {
		panic("rabin: polynomial degree must be >= 9")
	}
	t := &Table{poly: poly, shift: uint(d) - 8}
	// modT[b] clears the top byte b sitting at bit position deg(poly) and
	// XORs in its reduction, so `x ^ modT[x>>shift]` reduces x in one step.
	for b := 0; b < 256; b++ {
		v := uint64(b) << uint(d)
		t.modT[b] = v ^ mod(v, poly)
	}
	// outT[b] = (b << (8*(WindowSize-1))) mod poly — the contribution of
	// the byte leaving the window.
	for b := 0; b < 256; b++ {
		t.outT[b] = polyShiftMod(uint64(b), 8*(WindowSize-1), poly)
	}
	return t
}

// deg returns the degree of the polynomial (position of the highest set
// bit).
func deg(p uint64) int {
	d := -1
	for i := 0; i < 64; i++ {
		if p&(1<<uint(i)) != 0 {
			d = i
		}
	}
	return d
}

// mod reduces x modulo polynomial p over GF(2).
func mod(x, p uint64) uint64 {
	d := deg(p)
	for i := 63; i >= d; i-- {
		if x&(1<<uint(i)) != 0 {
			x ^= p << uint(i-d)
		}
	}
	return x
}

// polyShiftMod computes (x << n) mod p by repeated squaring-free shifting
// (8 bits at a time via mod).
func polyShiftMod(x uint64, n int, p uint64) uint64 {
	for i := 0; i < n; i++ {
		x <<= 1
		if deg(x) >= deg(p) {
			x ^= p
		}
	}
	return x
}

// defaultTable is shared by everyone using DefaultPoly.
var defaultTable = NewTable(DefaultPoly)

// Window is a rolling fingerprint over the last WindowSize bytes.
type Window struct {
	t   *Table
	fp  uint64
	win [WindowSize]byte
	pos int
}

// NewWindow creates an empty rolling window using the default polynomial.
func NewWindow() *Window { return &Window{t: defaultTable} }

// NewWindowWith creates a rolling window with custom tables.
func NewWindowWith(t *Table) *Window { return &Window{t: t} }

// Reset clears the window state.
func (w *Window) Reset() {
	w.fp = 0
	w.pos = 0
	w.win = [WindowSize]byte{}
}

// Roll slides the window one byte forward and returns the new fingerprint.
func (w *Window) Roll(b byte) uint64 {
	out := w.win[w.pos]
	w.win[w.pos] = b
	w.pos = (w.pos + 1) % WindowSize
	// Remove the leaving byte, shift in the new one, reduce via the fold
	// table. The invariant fp < 2^deg(poly) holds across rolls.
	w.fp ^= w.t.outT[out]
	top := byte(w.fp >> w.t.shift)
	w.fp = ((w.fp << 8) | uint64(b)) ^ w.t.modT[top]
	return w.fp
}

// Fingerprint returns the current window fingerprint.
func (w *Window) Fingerprint() uint64 { return w.fp }

// Chunker finds content-defined block boundaries. AvgBits controls the
// expected block size (2^AvgBits bytes); Min and Max clamp block sizes, as
// dedup implementations do to avoid degenerate tiny/huge blocks.
type Chunker struct {
	Table   *Table
	AvgBits uint
	Min     int
	Max     int
	Magic   uint64
}

// NewChunker returns a chunker with PARSEC-dedup-like defaults: expected
// block 2 KiB, minimum 256 B, maximum 16 KiB.
func NewChunker() *Chunker {
	return &Chunker{Table: defaultTable, AvgBits: 11, Min: 256, Max: 16 * 1024, Magic: 0x78}
}

// Boundaries returns the block start offsets for data — the startPos array
// of the paper's Fig. 2. The first boundary is always 0; each block is
// between Min and Max bytes except possibly the last.
func (c *Chunker) Boundaries(data []byte) []int32 {
	if len(data) == 0 {
		return nil
	}
	return c.AppendBoundaries(nil, data)
}

// AppendBoundaries appends data's block start offsets to dst and returns the
// extended slice — the allocation-free form of Boundaries for hot paths
// that recycle the startPos array across batches (pass dst[:0] to reuse).
// The rolling window lives on the stack, so a call whose dst has capacity
// for the boundaries performs zero heap allocations.
func (c *Chunker) AppendBoundaries(dst []int32, data []byte) []int32 {
	if len(data) == 0 {
		return dst
	}
	mask := (uint64(1) << c.AvgBits) - 1
	magic := c.Magic & mask
	dst = append(dst, 0)
	w := Window{t: c.Table}
	blockStart := 0
	for i := 0; i < len(data); i++ {
		fp := w.Roll(data[i])
		size := i - blockStart + 1
		if size < c.Min {
			continue
		}
		if fp&mask == magic || size >= c.Max {
			if i+1 < len(data) {
				dst = append(dst, int32(i+1))
				blockStart = i + 1
				w.Reset()
			}
		}
	}
	return dst
}

// Split cuts data into blocks at the chunker's boundaries.
func (c *Chunker) Split(data []byte) [][]byte {
	starts := c.Boundaries(data)
	blocks := make([][]byte, 0, len(starts))
	for i, s := range starts {
		end := len(data)
		if i+1 < len(starts) {
			end = int(starts[i+1])
		}
		blocks = append(blocks, data[s:end])
	}
	return blocks
}
