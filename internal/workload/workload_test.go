package workload

import (
	"bytes"
	"testing"

	"streamgpu/internal/rabin"
	"streamgpu/internal/sha1x"
)

// dupRatio measures the fraction of content-defined blocks whose hash was
// already seen — the statistic that differentiates the three datasets.
func dupRatio(data []byte) float64 {
	seen := make(map[[sha1x.Size]byte]bool)
	blocks := rabin.NewChunker().Split(data)
	dups := 0
	for _, b := range blocks {
		h := sha1x.Sum20(b)
		if seen[h] {
			dups++
		}
		seen[h] = true
	}
	if len(blocks) == 0 {
		return 0
	}
	return float64(dups) / float64(len(blocks))
}

func TestGenerateExactSize(t *testing.T) {
	for _, k := range []Kind{Large, Linux, Silesia} {
		for _, size := range []int{1, 1000, 1 << 20} {
			data := Generate(Spec{Kind: k, Size: size, Seed: 1})
			if len(data) != size {
				t.Errorf("%v size %d: got %d bytes", k, size, len(data))
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, k := range []Kind{Large, Linux, Silesia} {
		a := Generate(Spec{Kind: k, Size: 1 << 20, Seed: 5})
		b := Generate(Spec{Kind: k, Size: 1 << 20, Seed: 5})
		if !bytes.Equal(a, b) {
			t.Errorf("%v: generation not deterministic", k)
		}
		c := Generate(Spec{Kind: k, Size: 1 << 20, Seed: 6})
		if bytes.Equal(a, c) {
			t.Errorf("%v: different seeds produced identical data", k)
		}
	}
}

func TestDatasetCharacteristics(t *testing.T) {
	// The three datasets must differ in the statistics that drive Fig. 5:
	// Linux has the highest duplicate ratio, Silesia the lowest.
	const size = 4 << 20
	dup := func(k Kind) float64 {
		data := Generate(Spec{Kind: k, Size: size, Seed: 9})
		return dupRatio(data)
	}
	large, linux, silesia := dup(Large), dup(Linux), dup(Silesia)
	t.Logf("dup ratios: large=%.3f linux=%.3f silesia=%.3f", large, linux, silesia)
	if linux <= large {
		t.Errorf("Linux dup ratio (%.3f) should exceed Large (%.3f)", linux, large)
	}
	if large <= silesia {
		t.Errorf("Large dup ratio (%.3f) should exceed Silesia (%.3f)", large, silesia)
	}
	if linux < 0.3 {
		t.Errorf("Linux dup ratio %.3f too low for a source-tree analogue", linux)
	}
	if silesia > 0.1 {
		t.Errorf("Silesia dup ratio %.3f too high for a corpus analogue", silesia)
	}
}

func TestPaperSpecs(t *testing.T) {
	specs := PaperSpecs(1.0)
	if len(specs) != 3 {
		t.Fatalf("got %d specs", len(specs))
	}
	if specs[0].Size != 185_000_000 || specs[1].Size != 816_000_000 {
		t.Errorf("paper sizes wrong: %d, %d", specs[0].Size, specs[1].Size)
	}
	small := PaperSpecs(0.01)
	if small[1].Size != 8_160_000 {
		t.Errorf("scaled size = %d", small[1].Size)
	}
}

func TestKindString(t *testing.T) {
	if Large.String() != "Input Large" || Linux.String() != "Linux" || Silesia.String() != "Silesia" {
		t.Error("kind names wrong")
	}
}
