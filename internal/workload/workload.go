// Package workload generates the deterministic synthetic datasets standing
// in for the paper's three Dedup inputs (§V-B). The real datasets
// (PARSEC's 185 MB "native" input, an 816 MB Linux kernel source tree, the
// 202 MB Silesia corpus) are not redistributable here, so each generator
// reproduces the *statistics* that drive Dedup throughput instead: overall
// size, duplicate-block ratio, and intra-block compressibility.
package workload

import (
	"bytes"
	"fmt"
	"math/rand"
)

// Kind selects a dataset shape.
type Kind int

const (
	// Large mimics PARSEC's dedup input: archive-like data, moderately
	// compressible, with a modest amount of duplicated content.
	Large Kind = iota
	// Linux mimics a kernel source tree: highly compressible text with
	// heavy cross-file duplication (licence headers, near-identical
	// drivers, generated files).
	Linux
	// Silesia mimics the Silesia corpus: a mix of text, XML-like
	// structure, and barely-compressible binary, with little duplication.
	Silesia
)

func (k Kind) String() string {
	switch k {
	case Large:
		return "Input Large"
	case Linux:
		return "Linux"
	case Silesia:
		return "Silesia"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Spec describes a dataset to generate.
type Spec struct {
	Kind Kind
	Size int
	Seed int64
}

// PaperSpecs returns the three datasets at the given scale factor: scale=1
// reproduces the paper's sizes (185 MB / 816 MB / 202 MB); smaller scales
// preserve the relative sizes for faster runs.
func PaperSpecs(scale float64) []Spec {
	return []Spec{
		{Kind: Large, Size: int(185e6 * scale), Seed: 1},
		{Kind: Linux, Size: int(816e6 * scale), Seed: 2},
		{Kind: Silesia, Size: int(202.13e6 * scale), Seed: 3},
	}
}

// Generate produces the dataset deterministically from the spec.
func Generate(s Spec) []byte {
	rng := rand.New(rand.NewSource(s.Seed))
	var out bytes.Buffer
	out.Grow(s.Size)
	switch s.Kind {
	case Large:
		genLarge(&out, s.Size, rng)
	case Linux:
		genLinux(&out, s.Size, rng)
	case Silesia:
		genSilesia(&out, s.Size, rng)
	default:
		panic(fmt.Sprintf("workload: unknown kind %d", int(s.Kind)))
	}
	return out.Bytes()[:s.Size]
}

// words is a small vocabulary for text-like content.
var words = []string{
	"static", "struct", "return", "const", "void", "unsigned", "kernel",
	"buffer", "stream", "device", "module", "driver", "config", "index",
	"length", "offset", "status", "error", "value", "pointer", "lock",
	"queue", "batch", "block", "data", "size", "init", "free", "alloc",
}

// textChunk writes n bytes of word-salad text.
func textChunk(out *bytes.Buffer, n int, rng *rand.Rand) {
	start := out.Len()
	for out.Len()-start < n {
		out.WriteString(words[rng.Intn(len(words))])
		if rng.Intn(12) == 0 {
			out.WriteByte('\n')
		} else {
			out.WriteByte(' ')
		}
	}
}

// binaryChunk writes n bytes of low-compressibility binary.
func binaryChunk(out *bytes.Buffer, n int, rng *rand.Rand) {
	b := make([]byte, n)
	rng.Read(b)
	out.Write(b)
}

// genLarge: archive-like stream of medium "files", ~25% of which are exact
// repeats of earlier files, content mixing text and binary.
func genLarge(out *bytes.Buffer, size int, rng *rand.Rand) {
	var files [][]byte
	for out.Len() < size {
		if len(files) > 4 && rng.Intn(4) == 0 {
			out.Write(files[rng.Intn(len(files))]) // duplicate a whole file
			continue
		}
		var f bytes.Buffer
		n := rng.Intn(48*1024) + 16*1024
		if rng.Intn(2) == 0 {
			textChunk(&f, n, rng)
		} else {
			binaryChunk(&f, n/2, rng)
			textChunk(&f, n/2, rng)
		}
		files = append(files, f.Bytes())
		out.Write(f.Bytes())
		if len(files) > 64 {
			files = files[1:]
		}
	}
}

// genLinux: source-tree-like, built from a pool of "source file" templates;
// files share a licence header and many files are near-duplicates, giving
// the high dedup ratio of a kernel tree.
func genLinux(out *bytes.Buffer, size int, rng *rand.Rand) {
	var header bytes.Buffer
	textChunk(&header, 1024, rng) // the shared licence header
	var templates [][]byte
	for i := 0; i < 24; i++ {
		var tpl bytes.Buffer
		textChunk(&tpl, 24*1024, rng)
		templates = append(templates, tpl.Bytes())
	}
	for out.Len() < size {
		out.Write(header.Bytes())
		tpl := templates[rng.Intn(len(templates))]
		if rng.Intn(3) == 0 {
			// Exact reuse (duplicate file).
			out.Write(tpl)
			continue
		}
		// Near-duplicate: the template with a small local edit.
		edit := rng.Intn(len(tpl) - 128)
		out.Write(tpl[:edit])
		textChunk(out, 64, rng)
		out.Write(tpl[edit:])
	}
}

// genSilesia: thirds of text, XML-ish structure, and binary; almost no
// duplication.
func genSilesia(out *bytes.Buffer, size int, rng *rand.Rand) {
	for out.Len() < size {
		switch rng.Intn(3) {
		case 0:
			textChunk(out, 32*1024, rng)
		case 1:
			for i := 0; i < 200; i++ {
				fmt.Fprintf(out, "<record id=\"%d\"><field>%s</field></record>\n",
					rng.Intn(1_000_000), words[rng.Intn(len(words))])
			}
		default:
			binaryChunk(out, 32*1024, rng)
		}
	}
}
