package tbb

import (
	"fmt"
	"sync"

	"streamgpu/internal/telemetry"
)

// Mode is a filter's concurrency mode, mirroring tbb::filter modes.
type Mode int

const (
	// Parallel filters process any number of items concurrently
	// (tbb::filter::parallel) — the mode the paper uses for Mandelbrot's
	// compute stage.
	Parallel Mode = iota
	// Serial filters process one item at a time in arrival order
	// (serial_out_of_order).
	Serial
	// SerialInOrder filters process one item at a time in the order items
	// entered the pipeline (serial_in_order) — display/write stages.
	SerialInOrder
)

func (m Mode) String() string {
	switch m {
	case Parallel:
		return "parallel"
	case Serial:
		return "serial_out_of_order"
	case SerialInOrder:
		return "serial_in_order"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Filter is one pipeline stage. The first filter of a pipeline is the input
// filter: its Fn is called with nil and returns the next stream item, or
// nil to end the stream. Later filters transform items and must not return
// nil.
type Filter struct {
	mode Mode
	fn   func(item any) any
	st   serialState
}

// NewFilter builds a filter with the given mode and body.
func NewFilter(mode Mode, fn func(item any) any) *Filter {
	return &Filter{mode: mode, fn: fn}
}

// Mode reports the filter's concurrency mode.
func (f *Filter) Mode() Mode { return f.mode }

// item is an in-flight stream element.
type item struct {
	seq uint64
	idx int // next filter to run
	val any
}

// serialState serializes a non-parallel filter and (for in-order mode)
// enforces sequence order. Items that cannot run park here; the finishing
// item wakes the next eligible one.
type serialState struct {
	mu      sync.Mutex
	busy    bool
	next    uint64           // in-order: next sequence to admit
	pending map[uint64]*item // in-order: parked items by seq
	queue   []*item          // out-of-order: parked items FIFO
}

// Pipeline is a tbb::pipeline: a chain of filters executed over a bounded
// number of in-flight items (tokens).
type Pipeline struct {
	filters []*Filter
	tel     *pipeTelem
	telReg  *telemetry.Registry
	telName string
}

// NewPipeline builds a pipeline. The first filter must be Serial or
// SerialInOrder (it is the stream source).
func NewPipeline(filters ...*Filter) *Pipeline {
	if len(filters) < 2 {
		panic("tbb: pipeline needs an input filter and at least one more")
	}
	if filters[0].mode == Parallel {
		panic("tbb: input filter cannot be parallel")
	}
	for _, f := range filters {
		f.st.pending = make(map[uint64]*item)
	}
	return &Pipeline{filters: filters}
}

// Run executes the pipeline on s with at most maxTokens items in flight
// (tbb::pipeline::run(max_number_of_live_tokens)). It blocks until the
// input filter ends the stream and all items have drained.
func (p *Pipeline) Run(s *Scheduler, maxTokens int) {
	if maxTokens < 1 {
		panic("tbb: maxTokens must be >= 1")
	}
	tokens := make(chan struct{}, maxTokens)
	for i := 0; i < maxTokens; i++ {
		tokens <- struct{}{}
	}
	if p.telReg != nil {
		p.telReg.GaugeFunc("tbb_tokens_in_flight",
			telemetry.Labels{"pipeline": p.telName},
			func() float64 { return float64(maxTokens - len(tokens)) })
	}
	g := s.NewGroup()
	var seq uint64
	input := p.filters[0]
	for range tokens {
		v := p.applyFilter(input, 0, nil)
		if v == nil {
			// Recycle the end-of-stream probe's token so the in-flight
			// gauge reads zero once the pipeline drains.
			tokens <- struct{}{}
			break
		}
		if p.tel != nil {
			p.tel.items.Inc()
		}
		it := &item{seq: seq, idx: 1, val: v}
		seq++
		g.Go(func(w *Worker) {
			p.process(w, g, it, tokens)
		})
	}
	g.Wait()
}

// process advances an item through the filter chain until it completes or
// parks at a busy/out-of-turn serial filter.
func (p *Pipeline) process(w *Worker, g *Group, it *item, tokens chan struct{}) {
	for it.idx < len(p.filters) {
		f := p.filters[it.idx]
		if f.mode == Parallel {
			it.val = p.applyFilter(f, it.idx, it.val)
			it.idx++
			continue
		}
		st := &f.st
		st.mu.Lock()
		if st.busy || (f.mode == SerialInOrder && it.seq != st.next) {
			// Park; the current occupant (or the preceding sequence) will
			// reschedule us.
			if f.mode == SerialInOrder {
				st.pending[it.seq] = it
			} else {
				st.queue = append(st.queue, it)
			}
			st.mu.Unlock()
			return
		}
		st.busy = true
		st.mu.Unlock()

		it.val = p.applyFilter(f, it.idx, it.val)

		st.mu.Lock()
		st.busy = false
		var wake *item
		if f.mode == SerialInOrder {
			st.next++
			if nxt, ok := st.pending[st.next]; ok {
				delete(st.pending, st.next)
				wake = nxt
			}
		} else if len(st.queue) > 0 {
			wake = st.queue[0]
			st.queue = st.queue[1:]
		}
		st.mu.Unlock()
		if wake != nil {
			g.SpawnIn(w, func(w *Worker) {
				p.process(w, g, wake, tokens)
			})
		}
		it.idx++
	}
	// Item finished: recycle its token so the injector can admit another.
	tokens <- struct{}{}
}
