package tbb

// ParallelFor executes body over [lo, hi) by recursive range splitting:
// each task splits its range in half, spawning the right half into the
// local deque until ranges reach the grain size. Idle workers steal the
// large ranges first (FIFO steals), giving the classic work-stealing
// load balance.
func ParallelFor(s *Scheduler, lo, hi, grain int, body func(lo, hi int)) {
	if hi <= lo {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	g := s.NewGroup()
	var split func(w *Worker, lo, hi int)
	split = func(w *Worker, lo, hi int) {
		for hi-lo > grain {
			mid := lo + (hi-lo)/2
			l, r := mid, hi
			g.SpawnIn(w, func(w *Worker) { split(w, l, r) })
			hi = mid
		}
		body(lo, hi)
	}
	g.Go(func(w *Worker) { split(w, lo, hi) })
	g.Wait()
}

// ParallelForEach applies fn to every element of items with work stealing.
func ParallelForEach[T any](s *Scheduler, items []T, grain int, fn func(*T)) {
	ParallelFor(s, 0, len(items), grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(&items[i])
		}
	})
}

// ParallelScan computes the inclusive prefix "sum" of items under an
// associative combine with the given identity (tbb::parallel_scan, one of
// the patterns §III-B lists). It uses the classic two-phase scheme: chunk
// reductions in parallel, a sequential exclusive scan over the chunk sums,
// then parallel per-chunk completion.
func ParallelScan[T any](s *Scheduler, items []T, grain int, identity T, combine func(T, T) T) []T {
	n := len(items)
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if grain <= 0 {
		grain = 1
	}
	nChunks := (n + grain - 1) / grain
	sums := make([]T, nChunks)
	// Phase 1: per-chunk reductions.
	ParallelFor(s, 0, nChunks, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			acc := identity
			end := min((c+1)*grain, n)
			for i := c * grain; i < end; i++ {
				acc = combine(acc, items[i])
			}
			sums[c] = acc
		}
	})
	// Phase 2: exclusive scan of chunk sums (sequential, nChunks is small).
	prefixes := make([]T, nChunks)
	acc := identity
	for c := 0; c < nChunks; c++ {
		prefixes[c] = acc
		acc = combine(acc, sums[c])
	}
	// Phase 3: completion — per-chunk inclusive scan seeded by its prefix.
	ParallelFor(s, 0, nChunks, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			acc := prefixes[c]
			end := min((c+1)*grain, n)
			for i := c * grain; i < end; i++ {
				acc = combine(acc, items[i])
				out[i] = acc
			}
		}
	})
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Reduce computes a parallel reduction of items with the given associative
// combine function and identity value.
func Reduce[T, R any](s *Scheduler, items []T, grain int, identity R, mapFn func(T) R, combine func(R, R) R) R {
	if len(items) == 0 {
		return identity
	}
	if grain <= 0 {
		grain = 1
	}
	nChunks := (len(items) + grain - 1) / grain
	parts := make([]R, nChunks)
	ParallelFor(s, 0, nChunks, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			acc := identity
			end := (c + 1) * grain
			if end > len(items) {
				end = len(items)
			}
			for i := c * grain; i < end; i++ {
				acc = combine(acc, mapFn(items[i]))
			}
			parts[c] = acc
		}
	})
	acc := identity
	for _, p := range parts {
		acc = combine(acc, p)
	}
	return acc
}
