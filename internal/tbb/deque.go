// Package tbb is a Threading-Building-Blocks-style task runtime: a
// work-stealing scheduler (Chase–Lev deques, one per worker), task groups,
// ParallelFor, and a token-throttled Pipeline with serial-in-order,
// serial-out-of-order and parallel filters — the abstractions the paper uses
// for its TBB implementations, including the max_number_of_live_tokens knob
// it had to tune (38 tokens CPU-only, 50 with GPUs).
package tbb

import (
	"sync/atomic"
)

// Task is a unit of work. Tasks run on scheduler workers; w gives access to
// the executing worker so tasks can spawn children into the local deque.
type Task func(w *Worker)

// taskCell boxes a Task so deque slots can be atomic pointers.
type taskCell struct {
	fn Task
}

// deque is a fixed-capacity Chase–Lev work-stealing deque. The owner pushes
// and pops at the bottom; thieves steal from the top with a CAS. Slots are
// atomic pointers, which (with Go's sequentially-consistent atomics) makes
// the classic algorithm safe without unsafe.Pointer tricks.
type deque struct {
	buf    []atomic.Pointer[taskCell]
	mask   int64
	top    atomic.Int64 // next steal position
	bottom atomic.Int64 // next push position (owner-only writes)
}

func newDeque(capacity int) *deque {
	c := int64(1)
	for c < int64(capacity) {
		c <<= 1
	}
	return &deque{buf: make([]atomic.Pointer[taskCell], c), mask: c - 1}
}

// pushBottom appends a task at the owner end. Returns false when full (the
// caller falls back to the scheduler's shared inbox).
func (d *deque) pushBottom(t Task) bool {
	b := d.bottom.Load()
	top := d.top.Load()
	if b-top >= int64(len(d.buf)) {
		return false
	}
	d.buf[b&d.mask].Store(&taskCell{fn: t})
	d.bottom.Store(b + 1)
	return true
}

// popBottom removes the most recently pushed task (LIFO for locality). Only
// the owner may call it.
func (d *deque) popBottom() (Task, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if b < t {
		// Empty: restore.
		d.bottom.Store(t)
		return nil, false
	}
	cell := d.buf[b&d.mask].Load()
	if b > t {
		return cell.fn, true
	}
	// Last element: race against thieves for it.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(t + 1)
	if !won {
		return nil, false
	}
	return cell.fn, true
}

// steal removes the oldest task (FIFO from the thief's view). Any goroutine
// may call it.
func (d *deque) steal() (Task, bool) {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			return nil, false
		}
		cell := d.buf[t&d.mask].Load()
		if cell == nil {
			// Slot not yet published; treat as empty this round.
			return nil, false
		}
		if d.top.CompareAndSwap(t, t+1) {
			return cell.fn, true
		}
		// Lost the race; retry.
	}
}

// size is an approximate element count.
func (d *deque) size() int64 {
	s := d.bottom.Load() - d.top.Load()
	if s < 0 {
		return 0
	}
	return s
}
