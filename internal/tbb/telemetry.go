package tbb

import (
	"strconv"
	"time"

	"streamgpu/internal/telemetry"
)

// schedTelem is the scheduler's instrument set. The scheduler holds it behind
// an atomic pointer so SetTelemetry is safe while workers run; a nil load
// means telemetry is off and the hot paths pay one atomic read.
type schedTelem struct {
	tasks    *telemetry.Counter // tasks executed
	steals   *telemetry.Counter // successful steals
	overflow *telemetry.Counter // Spawn fallbacks into the shared inbox
}

// SetTelemetry attaches a metrics registry to the scheduler:
//
//	tbb_tasks_total           tasks executed by the pool
//	tbb_steals_total          successful deque steals
//	tbb_spawn_overflow_total  Spawns that overflowed a full deque into the inbox
//	tbb_inbox_depth           shared inbox occupancy (gauge)
//	tbb_tasks_pending         submitted-but-unfinished tasks (gauge)
//	tbb_worker_deque_depth    per-worker deque occupancy (gauge, {worker})
//
// Callable at any time, including while the pool is running; nil reg turns
// instrumentation off (the gauges keep reading the live pool).
func (s *Scheduler) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.tel.Store(nil)
		return
	}
	t := &schedTelem{
		tasks:    reg.Counter("tbb_tasks_total", nil),
		steals:   reg.Counter("tbb_steals_total", nil),
		overflow: reg.Counter("tbb_spawn_overflow_total", nil),
	}
	reg.GaugeFunc("tbb_inbox_depth", nil, func() float64 { return float64(len(s.inbox)) })
	reg.GaugeFunc("tbb_tasks_pending", nil, func() float64 { return float64(s.pending.Load()) })
	for _, w := range s.workers {
		w := w
		reg.GaugeFunc("tbb_worker_deque_depth",
			telemetry.Labels{"worker": strconv.Itoa(w.id)},
			func() float64 { return float64(w.dq.size()) })
	}
	s.tel.Store(t)
}

// pipeTelem is a tbb pipeline's instrument set. The tokens-in-flight gauge
// lives on the registry only: Run registers it over its own token channel.
type pipeTelem struct {
	items *telemetry.Counter     // items admitted by the input filter
	svc   []*telemetry.Histogram // per-filter service time
}

// SetTelemetry attaches a metrics registry to the pipeline:
//
//	tbb_pipeline_items_total     items admitted by the input filter
//	tbb_filter_service_seconds   per-filter body wall time ({pipeline, filter})
//	tbb_tokens_in_flight         live tokens (gauge, registered per Run)
//
// Filters are labelled f0, f1, ... in chain order. Call before Run.
func (p *Pipeline) SetTelemetry(reg *telemetry.Registry, name string) *Pipeline {
	if reg == nil {
		p.tel = nil
		return p
	}
	t := &pipeTelem{
		items: reg.Counter("tbb_pipeline_items_total", telemetry.Labels{"pipeline": name}),
	}
	for i, f := range p.filters {
		t.svc = append(t.svc, reg.Histogram("tbb_filter_service_seconds", nil,
			telemetry.Labels{"pipeline": name, "filter": "f" + strconv.Itoa(i), "mode": f.mode.String()}))
	}
	p.tel = t
	p.telReg = reg
	p.telName = name
	return p
}

// applyFilter runs one filter body, observing its service time when the
// pipeline is instrumented.
func (p *Pipeline) applyFilter(f *Filter, idx int, v any) any {
	t := p.tel
	if t == nil {
		return f.fn(v)
	}
	t0 := time.Now()
	r := f.fn(v)
	t.svc[idx].ObserveDuration(time.Since(t0))
	return r
}
