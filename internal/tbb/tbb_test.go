package tbb

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestDequeLIFOOwner(t *testing.T) {
	d := newDeque(8)
	order := []int{}
	for i := 0; i < 3; i++ {
		i := i
		if !d.pushBottom(func(*Worker) { order = append(order, i) }) {
			t.Fatal("push failed")
		}
	}
	for i := 0; i < 3; i++ {
		task, ok := d.popBottom()
		if !ok {
			t.Fatal("pop failed")
		}
		task(nil)
	}
	// Owner pops LIFO: 2, 1, 0.
	if order[0] != 2 || order[1] != 1 || order[2] != 0 {
		t.Errorf("pop order = %v, want [2 1 0]", order)
	}
	if _, ok := d.popBottom(); ok {
		t.Error("pop from empty deque should fail")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	d := newDeque(8)
	var got []int
	for i := 0; i < 3; i++ {
		i := i
		d.pushBottom(func(*Worker) { got = append(got, i) })
	}
	for i := 0; i < 3; i++ {
		task, ok := d.steal()
		if !ok {
			t.Fatal("steal failed")
		}
		task(nil)
	}
	// Thieves steal FIFO: 0, 1, 2.
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("steal order = %v, want [0 1 2]", got)
	}
}

func TestDequeFull(t *testing.T) {
	d := newDeque(4)
	for i := 0; i < 4; i++ {
		if !d.pushBottom(func(*Worker) {}) {
			t.Fatalf("push %d should fit", i)
		}
	}
	if d.pushBottom(func(*Worker) {}) {
		t.Error("push to full deque should fail")
	}
	if d.size() != 4 {
		t.Errorf("size = %d, want 4", d.size())
	}
}

func TestDequeConcurrentOwnerThieves(t *testing.T) {
	// Every task must execute exactly once under owner/thief contention.
	const n = 50000
	d := newDeque(1024)
	var executed atomic.Int64
	var produced atomic.Int64
	var wg sync.WaitGroup

	task := func(*Worker) { executed.Add(1) }
	// Owner: push and pop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for produced.Load() < n {
			if d.pushBottom(task) {
				produced.Add(1)
			}
			if tk, ok := d.popBottom(); ok {
				tk(nil)
			}
		}
		for {
			tk, ok := d.popBottom()
			if !ok {
				break
			}
			tk(nil)
		}
	}()
	// Thieves.
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if tk, ok := d.steal(); ok {
					tk(nil)
				}
				select {
				case <-stop:
					// Final sweep.
					for {
						tk, ok := d.steal()
						if !ok {
							return
						}
						tk(nil)
					}
				default:
				}
			}
		}()
	}
	// Wait for the owner to produce everything, then stop thieves.
	for produced.Load() < n {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
	if executed.Load() != n {
		t.Errorf("executed %d tasks, want %d (lost or duplicated under stealing)", executed.Load(), n)
	}
}

func TestSchedulerRunsAllTasks(t *testing.T) {
	s := NewScheduler(4)
	defer s.Shutdown()
	var n atomic.Int64
	g := s.NewGroup()
	for i := 0; i < 1000; i++ {
		g.Go(func(*Worker) { n.Add(1) })
	}
	g.Wait()
	if n.Load() != 1000 {
		t.Errorf("ran %d tasks, want 1000", n.Load())
	}
}

func TestSpawnFromWorker(t *testing.T) {
	s := NewScheduler(4)
	defer s.Shutdown()
	var n atomic.Int64
	g := s.NewGroup()
	g.Go(func(w *Worker) {
		for i := 0; i < 100; i++ {
			g.SpawnIn(w, func(*Worker) { n.Add(1) })
		}
	})
	g.Wait()
	if n.Load() != 100 {
		t.Errorf("ran %d spawned tasks, want 100", n.Load())
	}
}

func TestParallelForCoversRange(t *testing.T) {
	s := NewScheduler(4)
	defer s.Shutdown()
	const n = 10000
	marks := make([]int32, n)
	ParallelFor(s, 0, n, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&marks[i], 1)
		}
	})
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("index %d visited %d times", i, m)
		}
	}
}

func TestParallelForEmptyAndTiny(t *testing.T) {
	s := NewScheduler(2)
	defer s.Shutdown()
	ParallelFor(s, 5, 5, 10, func(lo, hi int) { t.Error("empty range must not run") })
	ran := false
	ParallelFor(s, 0, 1, 100, func(lo, hi int) { ran = lo == 0 && hi == 1 })
	if !ran {
		t.Error("single-element range should run once")
	}
}

func TestParallelForEach(t *testing.T) {
	s := NewScheduler(4)
	defer s.Shutdown()
	xs := make([]int, 5000)
	ParallelForEach(s, xs, 32, func(x *int) { *x = 7 })
	for i, x := range xs {
		if x != 7 {
			t.Fatalf("xs[%d] = %d", i, x)
		}
	}
}

func TestReduce(t *testing.T) {
	s := NewScheduler(4)
	defer s.Shutdown()
	xs := make([]int, 1000)
	for i := range xs {
		xs[i] = i + 1
	}
	sum := Reduce(s, xs, 37, 0, func(x int) int { return x }, func(a, b int) int { return a + b })
	if want := 1000 * 1001 / 2; sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	if got := Reduce(s, []int{}, 10, -1, func(x int) int { return x }, func(a, b int) int { return a + b }); got != -1 {
		t.Errorf("empty reduce = %d, want identity -1", got)
	}
}

func TestPipelineTransforms(t *testing.T) {
	s := NewScheduler(4)
	defer s.Shutdown()
	const n = 200
	i := 0
	var mu sync.Mutex
	var out []int
	p := NewPipeline(
		NewFilter(SerialInOrder, func(any) any {
			if i >= n {
				return nil
			}
			i++
			return i
		}),
		NewFilter(Parallel, func(v any) any { return v.(int) * 2 }),
		NewFilter(SerialInOrder, func(v any) any {
			mu.Lock()
			out = append(out, v.(int))
			mu.Unlock()
			return v
		}),
	)
	p.Run(s, 8)
	if len(out) != n {
		t.Fatalf("got %d outputs, want %d", len(out), n)
	}
	for k, v := range out {
		if v != (k+1)*2 {
			t.Fatalf("out[%d] = %d, want %d (in-order filter saw out-of-order items)", k, v, (k+1)*2)
		}
	}
}

func TestPipelineSerialOutOfOrderExclusive(t *testing.T) {
	s := NewScheduler(8)
	defer s.Shutdown()
	const n = 300
	i := 0
	var inside, maxInside, count int32
	p := NewPipeline(
		NewFilter(Serial, func(any) any {
			if i >= n {
				return nil
			}
			i++
			return i
		}),
		NewFilter(Parallel, func(v any) any { return v }),
		NewFilter(Serial, func(v any) any {
			in := atomic.AddInt32(&inside, 1)
			for {
				m := atomic.LoadInt32(&maxInside)
				if in <= m || atomic.CompareAndSwapInt32(&maxInside, m, in) {
					break
				}
			}
			atomic.AddInt32(&count, 1)
			atomic.AddInt32(&inside, -1)
			return v
		}),
	)
	p.Run(s, 16)
	if count != n {
		t.Fatalf("serial filter ran %d times, want %d", count, n)
	}
	if maxInside != 1 {
		t.Errorf("serial filter concurrency = %d, want 1", maxInside)
	}
}

func TestPipelineTokenCapLimitsInFlight(t *testing.T) {
	s := NewScheduler(8)
	defer s.Shutdown()
	const n, tokens = 100, 4
	i := 0
	var inFlight, maxInFlight int32
	p := NewPipeline(
		NewFilter(Serial, func(any) any {
			if i >= n {
				return nil
			}
			i++
			atomic.AddInt32(&inFlight, 1)
			return i
		}),
		NewFilter(Parallel, func(v any) any {
			in := atomic.LoadInt32(&inFlight)
			for {
				m := atomic.LoadInt32(&maxInFlight)
				if in <= m || atomic.CompareAndSwapInt32(&maxInFlight, m, in) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			return v
		}),
		NewFilter(Serial, func(v any) any {
			atomic.AddInt32(&inFlight, -1)
			return v
		}),
	)
	p.Run(s, tokens)
	if got := atomic.LoadInt32(&maxInFlight); got > tokens {
		t.Errorf("max in-flight items = %d, exceeds token cap %d", got, tokens)
	}
}

func TestPipelineParallelInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("parallel input filter should panic")
		}
	}()
	NewPipeline(
		NewFilter(Parallel, func(any) any { return nil }),
		NewFilter(Serial, func(v any) any { return v }),
	)
}

func TestPipelineTooShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("single-filter pipeline should panic")
		}
	}()
	NewPipeline(NewFilter(Serial, func(any) any { return nil }))
}

func TestModeString(t *testing.T) {
	if Parallel.String() != "parallel" || Serial.String() != "serial_out_of_order" || SerialInOrder.String() != "serial_in_order" {
		t.Error("mode strings wrong")
	}
}

// Property: the pipeline is an order-preserving identity for any input
// size, token count, and worker count.
func TestPipelineIdentityProperty(t *testing.T) {
	f := func(nSeed, tokSeed, wSeed uint8) bool {
		n := int(nSeed) % 200
		tokens := int(tokSeed)%16 + 1
		workers := int(wSeed)%6 + 1
		s := NewScheduler(workers)
		defer s.Shutdown()
		i := 0
		var out []int
		p := NewPipeline(
			NewFilter(SerialInOrder, func(any) any {
				if i >= n {
					return nil
				}
				i++
				return i
			}),
			NewFilter(Parallel, func(v any) any { return v }),
			NewFilter(SerialInOrder, func(v any) any {
				out = append(out, v.(int))
				return v
			}),
		)
		p.Run(s, tokens)
		if len(out) != n {
			return false
		}
		for k, v := range out {
			if v != k+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSchedulerTaskOverhead(b *testing.B) {
	s := NewScheduler(0)
	defer s.Shutdown()
	g := s.NewGroup()
	for i := 0; i < b.N; i++ {
		g.Go(func(*Worker) {})
	}
	g.Wait()
}

func BenchmarkPipelineThroughput(b *testing.B) {
	s := NewScheduler(0)
	defer s.Shutdown()
	n := b.N
	i := 0
	p := NewPipeline(
		NewFilter(Serial, func(any) any {
			if i >= n {
				return nil
			}
			i++
			return i
		}),
		NewFilter(Parallel, func(v any) any { return v }),
		NewFilter(Serial, func(v any) any { return v }),
	)
	b.ResetTimer()
	p.Run(s, 32)
}

func BenchmarkParallelFor(b *testing.B) {
	s := NewScheduler(0)
	defer s.Shutdown()
	xs := make([]float64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelFor(s, 0, len(xs), 1024, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				xs[j] += 1.5
			}
		})
	}
}

func TestParallelScanInclusive(t *testing.T) {
	s := NewScheduler(4)
	defer s.Shutdown()
	xs := make([]int, 5000)
	for i := range xs {
		xs[i] = i + 1
	}
	got := ParallelScan(s, xs, 64, 0, func(a, b int) int { return a + b })
	for i := range got {
		want := (i + 1) * (i + 2) / 2
		if got[i] != want {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestParallelScanEmptyAndTiny(t *testing.T) {
	s := NewScheduler(2)
	defer s.Shutdown()
	if got := ParallelScan(s, []int{}, 8, 0, func(a, b int) int { return a + b }); len(got) != 0 {
		t.Errorf("empty scan = %v", got)
	}
	got := ParallelScan(s, []int{7}, 100, 0, func(a, b int) int { return a + b })
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("single scan = %v", got)
	}
}

// Property: ParallelScan equals the sequential prefix scan for any input
// and grain.
func TestParallelScanMatchesSequentialProperty(t *testing.T) {
	s := NewScheduler(4)
	defer s.Shutdown()
	f := func(xs []int32, grainSeed uint8) bool {
		grain := int(grainSeed)%50 + 1
		in := make([]int, len(xs))
		for i, v := range xs {
			in[i] = int(v % 1000)
		}
		got := ParallelScan(s, in, grain, 0, func(a, b int) int { return a + b })
		acc := 0
		for i, v := range in {
			acc += v
			if got[i] != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
