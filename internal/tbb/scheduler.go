package tbb

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Scheduler runs tasks over a fixed pool of workers with work stealing:
// each worker owns a Chase–Lev deque; idle workers steal from victims and
// fall back to a shared inbox for externally submitted tasks.
type Scheduler struct {
	workers []*Worker
	inbox   chan Task
	quit    chan struct{}
	wg      sync.WaitGroup
	pending atomic.Int64 // tasks submitted but not yet finished
	closed  atomic.Bool
	tel     atomic.Pointer[schedTelem]
}

// Worker is one scheduler thread. Tasks receive their executing Worker and
// may Spawn children into its local deque (depth-first execution, as TBB's
// scheduler does for cache locality).
type Worker struct {
	id  int
	s   *Scheduler
	dq  *deque
	rng *rand.Rand
}

// NewScheduler starts n workers (n <= 0 means GOMAXPROCS).
func NewScheduler(n int) *Scheduler {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{
		inbox: make(chan Task, 4096),
		quit:  make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		w := &Worker{id: i, s: s, dq: newDeque(1024), rng: rand.New(rand.NewSource(int64(i)*2654435761 + 1))}
		s.workers = append(s.workers, w)
	}
	for _, w := range s.workers {
		s.wg.Add(1)
		go w.loop()
	}
	return s
}

// NWorkers reports the pool size.
func (s *Scheduler) NWorkers() int { return len(s.workers) }

// Go submits a task from outside the pool.
func (s *Scheduler) Go(t Task) {
	if s.closed.Load() {
		panic("tbb: Go after Shutdown")
	}
	s.pending.Add(1)
	s.inbox <- t
}

// Spawn pushes a child task into the worker's local deque; if it is full
// the task overflows into the shared inbox.
func (w *Worker) Spawn(t Task) {
	w.s.pending.Add(1)
	if !w.dq.pushBottom(t) {
		if tm := w.s.tel.Load(); tm != nil {
			tm.overflow.Inc()
		}
		w.s.inbox <- t
	}
}

// ID reports the worker's index within the pool.
func (w *Worker) ID() int { return w.id }

// Scheduler returns the pool the worker belongs to.
func (w *Worker) Scheduler() *Scheduler { return w.s }

// run executes a task and maintains the pending count.
func (w *Worker) run(t Task) {
	if tm := w.s.tel.Load(); tm != nil {
		tm.tasks.Inc()
	}
	t(w)
	w.s.pending.Add(-1)
}

// loop is the worker's scheduling loop: local pop, then steal, then inbox,
// with graduated backoff when idle.
func (w *Worker) loop() {
	defer w.s.wg.Done()
	idle := 0
	for {
		if t, ok := w.dq.popBottom(); ok {
			w.run(t)
			idle = 0
			continue
		}
		if t, ok := w.stealOnce(); ok {
			w.run(t)
			idle = 0
			continue
		}
		select {
		case t := <-w.s.inbox:
			w.run(t)
			idle = 0
			continue
		default:
		}
		// Idle: back off, but keep an eye on the inbox and shutdown.
		idle++
		switch {
		case idle < 16:
			runtime.Gosched()
		default:
			select {
			case t := <-w.s.inbox:
				w.run(t)
				idle = 0
			case <-w.s.quit:
				return
			case <-time.After(100 * time.Microsecond):
			}
		}
	}
}

// stealOnce tries each victim once, starting from a random position.
func (w *Worker) stealOnce() (Task, bool) {
	n := len(w.s.workers)
	if n <= 1 {
		return nil, false
	}
	start := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		v := w.s.workers[(start+i)%n]
		if v == w {
			continue
		}
		if t, ok := v.dq.steal(); ok {
			if tm := w.s.tel.Load(); tm != nil {
				tm.steals.Inc()
			}
			return t, true
		}
	}
	return nil, false
}

// Quiesce blocks until every submitted task has finished. It must be called
// from outside the pool.
func (s *Scheduler) Quiesce() {
	for s.pending.Load() != 0 {
		runtime.Gosched()
	}
}

// Shutdown stops the workers after draining all pending work. The scheduler
// cannot be reused.
func (s *Scheduler) Shutdown() {
	if s.closed.Swap(true) {
		return
	}
	s.Quiesce()
	close(s.quit)
	s.wg.Wait()
}

// Group tracks completion of a dynamically grown set of tasks
// (tbb::task_group). Wait must be called from outside the pool.
type Group struct {
	s    *Scheduler
	n    atomic.Int64
	done chan struct{}
}

// NewGroup creates an empty group.
func (s *Scheduler) NewGroup() *Group {
	g := &Group{s: s, done: make(chan struct{})}
	g.n.Store(1) // creator's reference, dropped by Wait
	return g
}

// Go submits a task belonging to the group (callable from anywhere,
// including inside group tasks).
func (g *Group) Go(t Task) {
	g.n.Add(1)
	g.s.Go(func(w *Worker) {
		t(w)
		g.finish()
	})
}

// SpawnIn submits a group task into w's local deque.
func (g *Group) SpawnIn(w *Worker, t Task) {
	g.n.Add(1)
	w.Spawn(func(w *Worker) {
		t(w)
		g.finish()
	})
}

func (g *Group) finish() {
	if g.n.Add(-1) == 0 {
		close(g.done)
	}
}

// Wait blocks until every group task has completed. Call once, from outside
// the pool.
func (g *Group) Wait() {
	g.finish() // drop creator reference
	<-g.done
}
