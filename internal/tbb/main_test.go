package tbb

import (
	"testing"

	"streamgpu/internal/testutil"
)

// TestMain fails the package if any test leaks scheduler or worker
// goroutines.
func TestMain(m *testing.M) { testutil.Main(m) }
