package tbb

import (
	"strings"
	"sync/atomic"
	"testing"

	"streamgpu/internal/telemetry"
)

// TestSchedulerTelemetry runs instrumented tasks and checks the counters and
// pool gauges.
func TestSchedulerTelemetry(t *testing.T) {
	reg := telemetry.New()
	s := NewScheduler(4)
	defer s.Shutdown()
	s.SetTelemetry(reg)

	const n = 200
	var ran atomic.Int64
	g := s.NewGroup()
	for i := 0; i < n; i++ {
		g.Go(func(w *Worker) {
			// Fan out one child per task so deques see traffic.
			g.SpawnIn(w, func(*Worker) { ran.Add(1) })
			ran.Add(1)
		})
	}
	g.Wait()
	if ran.Load() != 2*n {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), 2*n)
	}
	if v := reg.Counter("tbb_tasks_total", nil).Value(); v != 2*n {
		t.Errorf("tbb_tasks_total = %d, want %d", v, 2*n)
	}
	if v := reg.Gauge("tbb_tasks_pending", nil).Value(); v != 0 {
		t.Errorf("tbb_tasks_pending = %v after Wait, want 0", v)
	}
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`tbb_worker_deque_depth{worker="0"}`,
		`tbb_worker_deque_depth{worker="3"}`,
		"tbb_inbox_depth",
		"tbb_steals_total",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestPipelineTelemetry runs an instrumented 3-filter pipeline and checks
// the per-filter histograms and item counter.
func TestPipelineTelemetry(t *testing.T) {
	reg := telemetry.New()
	s := NewScheduler(4)
	defer s.Shutdown()

	const n = 100
	next := 0
	var out []int
	p := NewPipeline(
		NewFilter(SerialInOrder, func(any) any {
			if next >= n {
				return nil
			}
			next++
			return next
		}),
		NewFilter(Parallel, func(v any) any { return v.(int) * 2 }),
		NewFilter(SerialInOrder, func(v any) any {
			out = append(out, v.(int))
			return v
		}),
	)
	p.SetTelemetry(reg, "test")
	p.Run(s, 8)

	if len(out) != n {
		t.Fatalf("pipeline delivered %d items, want %d", len(out), n)
	}
	if v := reg.Counter("tbb_pipeline_items_total", telemetry.Labels{"pipeline": "test"}).Value(); v != n {
		t.Errorf("items total = %d, want %d", v, n)
	}
	if v := reg.Histogram("tbb_filter_service_seconds", nil,
		telemetry.Labels{"pipeline": "test", "filter": "f1", "mode": "parallel"}).Count(); v != n {
		t.Errorf("parallel filter observations = %d, want %d", v, n)
	}
	if v := reg.Gauge("tbb_tokens_in_flight", telemetry.Labels{"pipeline": "test"}).Value(); v != 0 {
		t.Errorf("tokens in flight after Run = %v, want 0", v)
	}
}
