package tbb

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestSchedulerStealStress hammers the scheduler from several external
// producers at once while every task spawns a child into its worker's local
// deque, so owner pops and thief steals race continuously on the Chase–Lev
// slots. The assertion is exactness — every task runs exactly once; under
// `go test -race` the same run also proves the deque and scheduler atomics
// publish task closures safely (the tbb runtime sat outside the original
// race-enabled package set).
func TestSchedulerStealStress(t *testing.T) {
	const producers = 4
	const perProducer = 2000
	s := NewScheduler(4)
	defer s.Shutdown()
	var executed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perProducer; j++ {
				s.Go(func(w *Worker) {
					executed.Add(1)
					w.Spawn(func(*Worker) { executed.Add(1) })
				})
			}
		}()
	}
	wg.Wait()
	s.Quiesce()
	if got, want := executed.Load(), int64(2*producers*perProducer); got != want {
		t.Errorf("executed %d tasks, want %d (lost or duplicated under stealing)", got, want)
	}
}

// TestPipelineStressUnderContention runs several tbb pipelines concurrently
// on one scheduler, mixing serial and parallel filters, so pipeline token
// accounting and filter state are exercised across workers.
func TestPipelineStressUnderContention(t *testing.T) {
	s := NewScheduler(4)
	defer s.Shutdown()
	const pipelines = 4
	const items = 500
	var wg sync.WaitGroup
	for pi := 0; pi < pipelines; pi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			next := 0
			var sum atomic.Int64
			src := NewFilter(Serial, func(item any) any {
				if next >= items {
					return nil
				}
				next++
				return next
			})
			mid := NewFilter(Parallel, func(item any) any {
				return item.(int) * 2
			})
			sink := NewFilter(Serial, func(item any) any {
				sum.Add(int64(item.(int)))
				return nil
			})
			NewPipeline(src, mid, sink).Run(s, 8)
			if got, want := sum.Load(), int64(items*(items+1)); got != want {
				t.Errorf("sum = %d, want %d", got, want)
			}
		}()
	}
	wg.Wait()
}
