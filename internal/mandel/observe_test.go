package mandel

import (
	"context"
	"testing"

	"streamgpu/internal/tbb"
	"streamgpu/internal/telemetry"
)

// TestRunSParObserved checks the SPar run surfaces per-stage metrics and
// per-item trace events while still producing the full frame.
func TestRunSParObserved(t *testing.T) {
	p := TestParams()
	reg := telemetry.New()
	tr := telemetry.NewStreamTracer(0)
	im, err := RunSParObserved(context.Background(), p, 4, Observer{Metrics: reg, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !im.Complete() {
		t.Fatal("incomplete frame")
	}
	lbl := telemetry.Labels{"pipeline": "mandel", "stage": "compute"}
	if v := reg.Counter("ff_stage_items_in_total", lbl).Value(); v != int64(p.Dim) {
		t.Errorf("compute items in = %d, want %d", v, p.Dim)
	}
	if len(tr.Events()) == 0 {
		t.Error("no trace events recorded")
	}
}

// TestRunFFObserved checks the FastFlow run's metrics.
func TestRunFFObserved(t *testing.T) {
	p := TestParams()
	reg := telemetry.New()
	im, err := RunFFObserved(p, 3, Observer{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !im.Complete() {
		t.Fatal("incomplete frame")
	}
	lbl := telemetry.Labels{"pipeline": "mandel-ff", "stage": "compute"}
	if v := reg.Counter("ff_stage_items_in_total", lbl).Value(); v != int64(p.Dim) {
		t.Errorf("compute items in = %d, want %d", v, p.Dim)
	}
	if v := reg.Histogram("ff_stage_service_seconds", nil,
		telemetry.Labels{"pipeline": "mandel-ff", "stage": "show"}).Count(); v != int64(p.Dim) {
		t.Errorf("show service count = %d, want %d", v, p.Dim)
	}
}

// TestRunTBBObserved checks the TBB run's metrics.
func TestRunTBBObserved(t *testing.T) {
	p := TestParams()
	sched := tbb.NewScheduler(3)
	defer sched.Shutdown()
	reg := telemetry.New()
	im := RunTBBObserved(p, sched, 6, Observer{Metrics: reg})
	if !im.Complete() {
		t.Fatal("incomplete frame")
	}
	lbl := telemetry.Labels{"pipeline": "mandel-tbb"}
	if v := reg.Counter("tbb_pipeline_items_total", lbl).Value(); v != int64(p.Dim) {
		t.Errorf("pipeline items = %d, want %d", v, p.Dim)
	}
}

// TestRunGPUFTTelemetry checks the fault-tolerant GPU runner feeds the
// device metrics.
func TestRunGPUFTTelemetry(t *testing.T) {
	p := TestParams()
	reg := telemetry.New()
	im, _, err := RunGPUFT(p, FTConfig{NGPUs: 2, BatchSize: 16, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !im.Complete() {
		t.Fatal("incomplete frame")
	}
	var kernels int64
	for _, d := range []string{"gpu0", "gpu1"} {
		kernels += reg.Counter("gpu_kernels_launched_total", telemetry.Labels{"device": d}).Value()
	}
	want := int64((p.Dim + 15) / 16)
	if kernels != want {
		t.Errorf("kernels launched = %d, want %d", kernels, want)
	}
}
