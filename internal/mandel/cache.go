package mandel

import (
	"runtime"
	"sync"

	"streamgpu/internal/gpu"
)

// Row2DKernel models the paper's failed "2D of threads and blocks"
// configuration (§IV-A reports it performed *worse* than 1D: 1.6× vs
// 3.1×). The launch uses (32,32) blocks whose y threads redundantly
// recompute the same pixel — a classic botched 2-D mapping: 32× the work,
// pushing every SM into the throughput-bound regime instead of spreading
// rows thinly across SMs. Args: i int, p Params, img *gpu.Buf,
// iterCycles int64.
var Row2DKernel = &gpu.KernelSpec{
	Name:          "mandel_row_2d",
	RegsPerThread: 18,
	Body: func(t gpu.Thread, args []any) int64 {
		i := args[0].(int)
		p := args[1].(Params)
		img := args[2].(*gpu.Buf)
		iterCycles := args[3].(int64)
		j := t.Block.X*t.BlockDim.X + t.Idx.X // threadIdx.y ignored: redundant lanes
		if j >= p.Dim {
			return gpu.ExitCost
		}
		k := p.Pixel(i, j)
		img.Bytes()[j] = p.Color(k)
		return int64(k+1)*iterCycles + 20
	},
}

// Grid2DForRow is the launch geometry for Row2DKernel: (32,32) blocks
// covering the row in x.
func Grid2DForRow(dim int) gpu.Grid {
	return gpu.Grid{
		Grid:  gpu.Dim3{X: (dim + 31) / 32},
		Block: gpu.Dim3{X: 32, Y: 32},
	}
}

// IterCache holds the escape count of every pixel, computed once. The
// experiment harness sweeps a dozen GPU configurations over the same frame;
// the cached kernels below produce bit-identical pixels and identical cost
// to the direct kernels without recomputing the fractal per configuration
// (the same fast-functional pattern as lzss.FastKernel; equivalence is
// covered by tests).
type IterCache struct {
	P Params
	K []int32 // escape count per pixel, row-major
}

// NewIterCache computes the full frame's escape counts in parallel on the
// host and returns the cache together with the total iteration count
// (Σ k+1, the sequential-workload measure).
func NewIterCache(p Params) (*IterCache, int64) {
	c := &IterCache{P: p, K: make([]int32, p.Dim*p.Dim)}
	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	rowCh := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local int64
			for i := range rowCh {
				for j := 0; j < p.Dim; j++ {
					k := p.Pixel(i, j)
					c.K[i*p.Dim+j] = int32(k)
					local += int64(k)
					if k < p.Niter {
						local++
					}
				}
			}
			mu.Lock()
			total += local
			mu.Unlock()
		}()
	}
	for i := 0; i < p.Dim; i++ {
		rowCh <- i
	}
	close(rowCh)
	wg.Wait()
	return c, total
}

// costOf converts an escape count to device cycles, bit-identical to the
// direct kernels' accounting.
func costOf(k int32, _ int, iterCycles int64) int64 {
	return int64(k+1)*iterCycles + 20
}

// kAt is the cached escape count of pixel (i, j), clamped like Pixel.
func (c *IterCache) kAt(i, j int) int32 { return c.K[i*c.P.Dim+j] }

// RowKernel returns the cached equivalent of RowKernel.
// Args: i int, img *gpu.Buf, iterCycles int64.
func (c *IterCache) RowKernel() *gpu.KernelSpec {
	return &gpu.KernelSpec{
		Name:          "mandel_row_cached",
		RegsPerThread: 18,
		Body: func(t gpu.Thread, args []any) int64 {
			i := args[0].(int)
			img := args[1].(*gpu.Buf)
			iterCycles := args[2].(int64)
			j := t.Block.X*t.BlockDim.Count() + t.Idx.Y*t.BlockDim.X + t.Idx.X
			if j >= c.P.Dim {
				return gpu.ExitCost
			}
			k := c.kAt(i, j)
			img.Bytes()[j] = c.P.Color(int(k))
			return costOf(k, c.P.Niter, iterCycles)
		},
	}
}

// Row2DKernel returns the cached equivalent of Row2DKernel (redundant y
// lanes, same cost semantics). Args: i int, img *gpu.Buf, iterCycles int64.
func (c *IterCache) Row2DKernel() *gpu.KernelSpec {
	return &gpu.KernelSpec{
		Name:          "mandel_row_2d_cached",
		RegsPerThread: 18,
		Body: func(t gpu.Thread, args []any) int64 {
			i := args[0].(int)
			img := args[1].(*gpu.Buf)
			iterCycles := args[2].(int64)
			j := t.Block.X*t.BlockDim.X + t.Idx.X
			if j >= c.P.Dim {
				return gpu.ExitCost
			}
			k := c.kAt(i, j)
			img.Bytes()[j] = c.P.Color(int(k))
			return costOf(k, c.P.Niter, iterCycles)
		},
	}
}

// BatchKernel returns the cached equivalent of BatchKernel.
// Args: batch int, batchSize int, img *gpu.Buf, iterCycles int64.
func (c *IterCache) BatchKernel() *gpu.KernelSpec {
	return &gpu.KernelSpec{
		Name:          "mandel_kernel_cached",
		RegsPerThread: 18,
		Body: func(t gpu.Thread, args []any) int64 {
			batch := args[0].(int)
			batchSize := args[1].(int)
			img := args[2].(*gpu.Buf)
			iterCycles := args[3].(int64)
			threadID := t.GlobalX()
			iBatch := threadID / c.P.Dim
			i := batch*batchSize + iBatch
			j := threadID - iBatch*c.P.Dim
			if i < c.P.Dim && j < c.P.Dim && iBatch < batchSize {
				k := c.kAt(i, j)
				img.Bytes()[iBatch*c.P.Dim+j] = c.P.Color(int(k))
				return costOf(k, c.P.Niter, iterCycles)
			}
			return gpu.ExitCost
		},
	}
}
