package mandel

import (
	"bytes"
	"testing"

	"streamgpu/internal/fault"
)

func ftRef(t *testing.T) *Image {
	t.Helper()
	im, _ := RunSeq(TestParams())
	return im
}

func TestRunGPUFTFaultFree(t *testing.T) {
	p := TestParams()
	for _, ng := range []int{1, 2} {
		im, rep, err := RunGPUFT(p, FTConfig{NGPUs: ng})
		if err != nil {
			t.Fatalf("nGPUs=%d: %v", ng, err)
		}
		if !bytes.Equal(im.Pix, ftRef(t).Pix) {
			t.Fatalf("nGPUs=%d: image differs from sequential reference", ng)
		}
		if rep != (FTReport{}) {
			t.Fatalf("nGPUs=%d: fault-free run reported recovery activity: %+v", ng, rep)
		}
	}
}

func TestRunGPUFTTransientRetries(t *testing.T) {
	p := TestParams()
	cfg := FTConfig{
		NGPUs:      1,
		BatchSize:  8, // 16 batches → enough operations for the rates to bite
		MaxRetries: 8,
		Faults:     []fault.Config{{Seed: 21, TransferRate: 0.15, KernelRate: 0.15}},
	}
	im, rep, err := RunGPUFT(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(im.Pix, ftRef(t).Pix) {
		t.Fatal("image differs from sequential reference under transient faults")
	}
	if rep.Retries == 0 {
		t.Fatal("expected transient retries at 15% fault rates")
	}
	if rep.DevicesLost != 0 {
		t.Fatalf("no device loss configured, got %+v", rep)
	}
}

func TestRunGPUFTKillOneOfTwoGPUs(t *testing.T) {
	// The acceptance scenario: the Fig. 1 two-GPU configuration, one device
	// deterministically killed mid-run. The run must complete on the
	// survivor with a bit-identical image.
	p := TestParams()
	cfg := FTConfig{
		NGPUs:  2,
		Faults: []fault.Config{{Seed: 5, KillAfterOps: 3}},
	}
	im, rep, err := RunGPUFT(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(im.Pix, ftRef(t).Pix) {
		t.Fatal("image differs from sequential reference after device loss")
	}
	if rep.DevicesLost != 1 {
		t.Fatalf("DevicesLost = %d, want 1 (report %+v)", rep.DevicesLost, rep)
	}
	if rep.FailedOver == 0 {
		t.Fatalf("the killed device's in-flight batch should fail over (report %+v)", rep)
	}
}

func TestRunGPUFTDeterministicSchedule(t *testing.T) {
	p := TestParams()
	cfg := FTConfig{
		NGPUs:      2,
		MaxRetries: 4,
		Faults: []fault.Config{
			{Seed: 5, TransferRate: 0.1, KernelRate: 0.05, KillAfterOps: 9},
			{Seed: 6, TransferRate: 0.05},
		},
	}
	imA, repA, errA := RunGPUFT(p, cfg)
	imB, repB, errB := RunGPUFT(p, cfg)
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v, %v", errA, errB)
	}
	if repA != repB {
		t.Fatalf("same seeds, different recovery reports: %+v vs %+v", repA, repB)
	}
	if !bytes.Equal(imA.Pix, imB.Pix) {
		t.Fatal("same seeds, different images")
	}
	if !bytes.Equal(imA.Pix, ftRef(t).Pix) {
		t.Fatal("image differs from sequential reference")
	}
}

func TestRunGPUFTAllDevicesLostDegradesToCPU(t *testing.T) {
	p := TestParams()
	cfg := FTConfig{
		NGPUs: 2,
		Faults: []fault.Config{
			{Seed: 1, KillAfterOps: 2},
			{Seed: 2, KillAfterOps: 2},
		},
	}
	im, rep, err := RunGPUFT(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(im.Pix, ftRef(t).Pix) {
		t.Fatal("image differs from sequential reference after total device loss")
	}
	if rep.DevicesLost != 2 {
		t.Fatalf("DevicesLost = %d, want 2", rep.DevicesLost)
	}
	if rep.CPUBatches == 0 {
		t.Fatal("with every device dead, remaining batches must degrade to CPU")
	}
}
