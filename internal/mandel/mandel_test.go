package mandel

import (
	"bytes"
	"testing"
	"testing/quick"

	"streamgpu/internal/des"
	"streamgpu/internal/gpu"
	"streamgpu/internal/tbb"
)

func TestPixelKnownPoints(t *testing.T) {
	p := Params{Dim: 100, Niter: 1000, InitA: -2.0, InitB: -1.25, Range: 2.5}
	// (0,0) maps to c = -2 - 1.25i, clearly outside: escapes fast.
	if k := p.Pixel(0, 0); k >= 20 {
		t.Errorf("corner point escape count = %d, want small", k)
	}
	// The image center (50,50) maps to c = -0.75 + 0i, inside the set.
	if k := p.Pixel(50, 50); k != p.Niter {
		t.Errorf("interior point escape count = %d, want Niter=%d", k, p.Niter)
	}
}

func TestColorRange(t *testing.T) {
	p := TestParams()
	if c := p.Color(p.Niter); c != 255-byte(255) {
		t.Errorf("interior color = %d, want 0", c)
	}
	if c := p.Color(0); c != 255 {
		t.Errorf("instant-escape color = %d, want 255", c)
	}
}

func TestComputeRowIterationCount(t *testing.T) {
	p := TestParams()
	img := make([]byte, p.Dim)
	iters := p.ComputeRow(p.Dim/2, img)
	// The middle row crosses the interior: expect a large share of pixels
	// at full Niter.
	if iters < int64(p.Niter)*int64(p.Dim)/10 {
		t.Errorf("middle row iterations = %d, implausibly low", iters)
	}
}

func TestSeqCompletes(t *testing.T) {
	p := TestParams()
	im, iters := RunSeq(p)
	if !im.Complete() {
		t.Fatal("sequential image incomplete")
	}
	if iters <= 0 {
		t.Fatal("no iterations counted")
	}
}

// All parallel versions must produce bit-identical frames to sequential.
func TestParallelVersionsMatchSeq(t *testing.T) {
	p := TestParams()
	want, _ := RunSeq(p)

	t.Run("spar", func(t *testing.T) {
		im, err := RunSPar(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(im.Pix, want.Pix) {
			t.Error("SPar frame differs from sequential")
		}
	})
	t.Run("ff", func(t *testing.T) {
		im, err := RunFF(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(im.Pix, want.Pix) {
			t.Error("FastFlow frame differs from sequential")
		}
	})
	t.Run("tbb", func(t *testing.T) {
		s := tbb.NewScheduler(4)
		defer s.Shutdown()
		im := RunTBB(p, s, 8)
		if !bytes.Equal(im.Pix, want.Pix) {
			t.Error("TBB frame differs from sequential")
		}
	})
}

func TestRowKernelMatchesCPU(t *testing.T) {
	p := TestParams()
	want, _ := RunSeq(p)
	sim := des.New()
	dev := gpu.NewDevice(sim, gpu.TitanXPSpec(), 0)
	got := make([]byte, p.Dim*p.Dim)
	sim.Spawn("host", func(proc *des.Proc) {
		st := dev.NewStream("")
		dImg := mustMalloc(dev, int64(p.Dim))
		defer dImg.Free()
		hImg := gpu.NewPinnedBuf(int64(p.Dim))
		for i := 0; i < p.Dim; i++ {
			evK := st.Launch(proc, RowKernel.Bind(i, p, dImg, int64(160)), gpu.Grid1D(p.Dim, 128))
			evC := st.CopyD2H(proc, hImg, 0, dImg, 0, int64(p.Dim))
			if err := gpu.WaitErr(proc, evK, evC); err != nil {
				panic(err)
			}
			copy(got[i*p.Dim:], hImg.Data)
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Pix) {
		t.Fatal("row-kernel frame differs from CPU")
	}
}

func TestRowKernel2DGridMatchesCPU(t *testing.T) {
	// The "2D threads and blocks" configuration must still be functionally
	// correct (it is only slower).
	p := TestParams()
	want, _ := RunSeq(p)
	sim := des.New()
	dev := gpu.NewDevice(sim, gpu.TitanXPSpec(), 0)
	row := 17
	got := make([]byte, p.Dim)
	sim.Spawn("host", func(proc *des.Proc) {
		st := dev.NewStream("")
		dImg := mustMalloc(dev, int64(p.Dim))
		defer dImg.Free()
		hImg := gpu.NewPinnedBuf(int64(p.Dim))
		g := gpu.Grid{Grid: gpu.Dim3{X: (p.Dim + 1023) / 1024}, Block: gpu.Dim3{X: 32, Y: 32}}
		evK := st.Launch(proc, RowKernel.Bind(row, p, dImg, int64(160)), g)
		evC := st.CopyD2H(proc, hImg, 0, dImg, 0, int64(p.Dim))
		if err := gpu.WaitErr(proc, evK, evC); err != nil {
			panic(err)
		}
		copy(got, hImg.Data)
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Pix[row*p.Dim:(row+1)*p.Dim]) {
		t.Fatal("2D-grid row differs from CPU")
	}
}

func TestBatchKernelMatchesCPU(t *testing.T) {
	p := TestParams()
	want, _ := RunSeq(p)
	const batchSize = 32
	sim := des.New()
	dev := gpu.NewDevice(sim, gpu.TitanXPSpec(), 0)
	got := make([]byte, p.Dim*p.Dim)
	sim.Spawn("host", func(proc *des.Proc) {
		st := dev.NewStream("")
		dImg := mustMalloc(dev, int64(batchSize*p.Dim))
		defer dImg.Free()
		hImg := gpu.NewPinnedBuf(int64(batchSize * p.Dim))
		nBatches := (p.Dim + batchSize - 1) / batchSize
		for b := 0; b < nBatches; b++ {
			rows := batchSize
			if (b+1)*batchSize > p.Dim {
				rows = p.Dim - b*batchSize
			}
			evK := st.Launch(proc, BatchKernel.Bind(b, batchSize, p, dImg, int64(160)),
				gpu.Grid1D(rows*p.Dim, 128))
			evC := st.CopyD2H(proc, hImg, 0, dImg, 0, int64(rows*p.Dim))
			if err := gpu.WaitErr(proc, evK, evC); err != nil {
				panic(err)
			}
			copy(got[b*batchSize*p.Dim:], hImg.Data[:rows*p.Dim])
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Pix) {
		t.Fatal("batch-kernel frame differs from CPU")
	}
}

// Property: pixel escape counts are deterministic and bounded by Niter.
func TestPixelBoundsProperty(t *testing.T) {
	p := TestParams()
	f := func(iSeed, jSeed uint16) bool {
		i := int(iSeed) % p.Dim
		j := int(jSeed) % p.Dim
		k := p.Pixel(i, j)
		return k >= 0 && k <= p.Niter && k == p.Pixel(i, j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: parallel SPar output equals sequential for random worker
// counts.
func TestSParMatchesSeqProperty(t *testing.T) {
	p := Params{Dim: 48, Niter: 64, InitA: -2.0, InitB: -1.25, Range: 2.5}
	want, _ := RunSeq(p)
	f := func(wSeed uint8) bool {
		w := int(wSeed)%8 + 1
		im, err := RunSPar(p, w)
		return err == nil && bytes.Equal(im.Pix, want.Pix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSeqRow(b *testing.B) {
	p := Params{Dim: 512, Niter: 1024, InitA: -2.0, InitB: -1.25, Range: 2.5}
	img := make([]byte, p.Dim)
	for i := 0; i < b.N; i++ {
		p.ComputeRow(i%p.Dim, img)
	}
}

func BenchmarkSParFrame(b *testing.B) {
	p := Params{Dim: 256, Niter: 512, InitA: -2.0, InitB: -1.25, Range: 2.5}
	for i := 0; i < b.N; i++ {
		if _, err := RunSPar(p, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFFrame(b *testing.B) {
	p := Params{Dim: 256, Niter: 512, InitA: -2.0, InitB: -1.25, Range: 2.5}
	for i := 0; i < b.N; i++ {
		if _, err := RunFF(p, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTBBFrame(b *testing.B) {
	p := Params{Dim: 256, Niter: 512, InitA: -2.0, InitB: -1.25, Range: 2.5}
	s := tbb.NewScheduler(8)
	defer s.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunTBB(p, s, 16)
	}
}

// The experiment harness uses the cached kernels; they must be bit- and
// cost-identical to the direct kernels.
func TestCachedKernelsMatchDirect(t *testing.T) {
	p := TestParams()
	cache, total := NewIterCache(p)
	if total <= 0 {
		t.Fatal("cache reported no iterations")
	}
	const iterCycles = int64(123)

	type variant struct {
		name           string
		direct, cached *gpu.KernelSpec
		directArgs     func(img *gpu.Buf) []any
		cachedArgs     func(img *gpu.Buf) []any
		grid           gpu.Grid
	}
	row := 33
	variants := []variant{
		{
			name: "row", direct: RowKernel, cached: cache.RowKernel(),
			directArgs: func(img *gpu.Buf) []any { return []any{row, p, img, iterCycles} },
			cachedArgs: func(img *gpu.Buf) []any { return []any{row, img, iterCycles} },
			grid:       gpu.Grid1D(p.Dim, 128),
		},
		{
			name: "row2d", direct: Row2DKernel, cached: cache.Row2DKernel(),
			directArgs: func(img *gpu.Buf) []any { return []any{row, p, img, iterCycles} },
			cachedArgs: func(img *gpu.Buf) []any { return []any{row, img, iterCycles} },
			grid:       Grid2DForRow(p.Dim),
		},
		{
			name: "batch", direct: BatchKernel, cached: cache.BatchKernel(),
			directArgs: func(img *gpu.Buf) []any { return []any{1, 16, p, img, iterCycles} },
			cachedArgs: func(img *gpu.Buf) []any { return []any{1, 16, img, iterCycles} },
			grid:       gpu.Grid1D(16*p.Dim, 128),
		},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			run := func(spec *gpu.KernelSpec, args func(*gpu.Buf) []any) ([]byte, des.Time) {
				sim := des.New()
				dev := gpu.NewDevice(sim, gpu.TitanXPSpec(), 0)
				n := int64(v.grid.Threads())
				if n < int64(16*p.Dim) {
					n = int64(16 * p.Dim)
				}
				out := make([]byte, n)
				sim.Spawn("host", func(proc *des.Proc) {
					dImg := mustMalloc(dev, n)
					defer dImg.Free()
					st := dev.NewStream("")
					if err := gpu.WaitErr(proc, st.Launch(proc, spec.Bind(args(dImg)...), v.grid)); err != nil {
						panic(err)
					}
					copy(out, dImg.Bytes())
				})
				end, err := sim.Run()
				if err != nil {
					t.Fatal(err)
				}
				return out, end
			}
			dPix, dTime := run(v.direct, v.directArgs)
			cPix, cTime := run(v.cached, v.cachedArgs)
			if !bytes.Equal(dPix, cPix) {
				t.Error("cached kernel pixels differ from direct kernel")
			}
			if dTime != cTime {
				t.Errorf("cached kernel cost %v differs from direct %v", cTime, dTime)
			}
		})
	}
}

// mustMalloc allocates or panics; inside a des process the panic becomes a
// Sim.Run error, which the tests treat as fatal.
func mustMalloc(d *gpu.Device, n int64) *gpu.Buf {
	b, err := d.Malloc(n)
	if err != nil {
		panic(err)
	}
	return b
}
