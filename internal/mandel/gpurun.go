package mandel

import (
	"fmt"
	"time"

	"streamgpu/internal/des"
	"streamgpu/internal/fault"
	"streamgpu/internal/gpu"
	"streamgpu/internal/telemetry"
)

// FTConfig configures the fault-tolerant GPU runner RunGPUFT.
type FTConfig struct {
	// NGPUs is the device count (the paper's Fig. 1 uses 1 and 2).
	NGPUs int
	// BatchSize is rows per kernel launch (Listing 2's batching).
	BatchSize int
	// MaxRetries bounds transient-fault retries per batch on one device
	// before the batch degrades to the CPU path.
	MaxRetries int
	// IterCycles is the calibrated per-iteration device cycle cost
	// (internal/bench owns the calibration; 160 is its Titan XP value).
	IterCycles int64
	// Faults holds one injector config per device; a short slice leaves the
	// remaining devices fault-free.
	Faults []fault.Config
	// Telemetry, when set, instruments every device (transfer/kernel engine
	// metrics in virtual seconds, fault-injection hit counters). nil is off.
	Telemetry *telemetry.Registry
}

func (c FTConfig) nGPUs() int {
	if c.NGPUs <= 0 {
		return 1
	}
	return c.NGPUs
}

func (c FTConfig) batchSize() int {
	if c.BatchSize <= 0 {
		return 32
	}
	return c.BatchSize
}

func (c FTConfig) maxRetries() int {
	if c.MaxRetries <= 0 {
		return 3
	}
	return c.MaxRetries
}

func (c FTConfig) iterCycles() int64 {
	if c.IterCycles <= 0 {
		return 160
	}
	return c.IterCycles
}

// FTReport describes what the recovery machinery did during a run.
type FTReport struct {
	Retries     int // transient faults absorbed by retry
	FailedOver  int // batches completed on a different device than first tried
	CPUBatches  int // batches degraded to the CPU path
	DevicesLost int // devices killed by injected faults
}

// ftBatch is one unit of failover: a batch index plus whether a dying
// device already returned it to the pool.
type ftBatch struct {
	idx      int
	orphaned bool
}

// RunGPUFT computes the frame on simulated GPUs with the three recovery
// policies of the fault-tolerance layer: transient faults are retried with
// exponential backoff (in virtual time), a batch in flight on a dying
// device fails over to a surviving one, and with no surviving device the
// remaining batches degrade to the CPU path. The result is bit-identical to
// RunSeq regardless of the injected fault schedule.
//
// Batches are distributed on demand over the devices. All cross-device
// state (the batch pool, the image, the report) is safely shared without
// locks because the des scheduler is cooperative: exactly one simulated
// process runs at a time.
func RunGPUFT(p Params, cfg FTConfig) (*Image, FTReport, error) {
	sim := des.New()
	bs := cfg.batchSize()
	nBatches := (p.Dim + bs - 1) / bs
	im := NewImage(p.Dim)
	var rep FTReport

	devs := make([]*gpu.Device, cfg.nGPUs())
	for i := range devs {
		devs[i] = gpu.NewDevice(sim, gpu.TitanXPSpec(), i)
		devs[i].SetTelemetry(cfg.Telemetry)
		if i < len(cfg.Faults) {
			devs[i].SetFaultInjector(fault.New(cfg.Faults[i]))
		}
	}

	// On-demand batch pool with an orphan stack for failover.
	next := 0
	var orphans []ftBatch
	take := func() (ftBatch, bool) {
		if n := len(orphans); n > 0 {
			b := orphans[n-1]
			orphans = orphans[:n-1]
			return b, true
		}
		if next < nBatches {
			next++
			return ftBatch{idx: next - 1}, true
		}
		return ftBatch{}, false
	}
	done := make([]bool, nBatches)
	rowsIn := func(b int) int {
		rows := p.Dim - b*bs
		if rows > bs {
			rows = bs
		}
		return rows
	}

	for _, d := range devs {
		d := d
		sim.Spawn(fmt.Sprintf("ft-host%d", d.ID), func(proc *des.Proc) {
			dImg, err := d.Malloc(int64(bs * p.Dim))
			if err != nil {
				return // device unusable; others (or the CPU) take the work
			}
			h := gpu.NewPinnedBuf(int64(bs * p.Dim))
			st := d.NewStream("")
			for {
				b, ok := take()
				if !ok {
					return
				}
				rows := rowsIn(b.idx)
				err := runFTBatch(proc, st, d, cfg, p, b.idx, rows, dImg, h, &rep)
				if err != nil {
					if fault.IsDeviceLost(err) {
						// This device is gone: hand the batch to a survivor
						// and retire.
						rep.DevicesLost++
						orphans = append(orphans, ftBatch{idx: b.idx, orphaned: true})
						return
					}
					// Transient storm outlasted the retry budget on a live
					// device: degrade this batch to the CPU path.
					cpuBatch(p, im, b.idx, bs, rows)
					rep.CPUBatches++
					done[b.idx] = true
					continue
				}
				if b.orphaned {
					rep.FailedOver++
				}
				for r := 0; r < rows; r++ {
					im.SetRow(b.idx*bs+r, h.Data[r*p.Dim:(r+1)*p.Dim])
				}
				done[b.idx] = true
			}
		})
	}
	if _, err := sim.Run(); err != nil {
		return nil, rep, err
	}
	// Whatever no device completed (including orphans of the last survivor)
	// degrades to the CPU path.
	for b := 0; b < nBatches; b++ {
		if !done[b] {
			cpuBatch(p, im, b, bs, rowsIn(b))
			rep.CPUBatches++
		}
	}
	return im, rep, nil
}

// runFTBatch executes one batch on one device, retrying transient faults
// with exponential backoff in virtual time. It returns nil on success, a
// device-lost error when the device died, or the last transient error when
// the retry budget is exhausted.
func runFTBatch(proc *des.Proc, st *gpu.Stream, d *gpu.Device, cfg FTConfig,
	p Params, batch, rows int, dImg *gpu.Buf, h *gpu.HostBuf, rep *FTReport) error {
	backoff := des.Duration(50 * time.Microsecond)
	for attempt := 0; ; attempt++ {
		evK := st.Launch(proc, BatchKernel.Bind(batch, cfg.batchSize(), p, dImg, cfg.iterCycles()),
			gpu.Grid1D(rows*p.Dim, 128))
		evC := st.CopyD2H(proc, h, 0, dImg, 0, int64(rows*p.Dim))
		err := gpu.WaitErr(proc, evK, evC)
		if err == nil {
			return nil
		}
		if fault.IsDeviceLost(err) || attempt >= cfg.maxRetries() {
			return err
		}
		rep.Retries++
		proc.Wait(backoff)
		backoff *= 2
	}
}

// cpuBatch computes one batch of rows on the host — the degradation path.
func cpuBatch(p Params, im *Image, batch, bs, rows int) {
	row := make([]byte, p.Dim)
	for r := 0; r < rows; r++ {
		i := batch*bs + r
		p.ComputeRow(i, row)
		im.SetRow(i, row)
	}
}
