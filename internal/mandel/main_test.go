package mandel

import (
	"testing"

	"streamgpu/internal/testutil"
)

// TestMain fails the package if any test leaks farm or runtime goroutines.
func TestMain(m *testing.M) { testutil.Main(m) }
