package mandel

import (
	"context"

	"streamgpu/internal/core"
	"streamgpu/internal/ff"
	"streamgpu/internal/tbb"
	"streamgpu/internal/telemetry"
)

// Observer bundles the optional instrumentation of a streaming run: a
// metrics registry for per-stage counters, service-time histograms and
// queue-depth gauges, and a per-item stream tracer. The zero value observes
// nothing and costs nothing; the uninstrumented entry points (RunSPar,
// RunFF, RunTBB) pass it.
type Observer struct {
	Metrics *telemetry.Registry
	Trace   *telemetry.StreamTracer
}

// RunSParObserved is RunSParContext with instrumentation: the SPar region's
// stages surface as {pipeline="mandel", stage=source|compute|show} metrics.
func RunSParObserved(ctx context.Context, p Params, workers int, obs Observer) (*Image, error) {
	im := NewImage(p.Dim)
	ts := core.NewToStream(core.Ordered(), core.Input("dim", "init_a", "init_b", "step", "niter"),
		core.Telemetry(obs.Metrics, "mandel"), core.Trace(obs.Trace)).
		Stage(func(item any, emit func(any)) {
			r := item.(*Row)
			p.ComputeRow(r.I, r.Img)
			emit(r)
		}, core.Replicate(workers), core.Name("compute"),
			core.Input("dim", "init_a", "init_b", "step", "niter"), core.Output("img")).
		Stage(func(item any, emit func(any)) {
			r := item.(*Row)
			im.SetRow(r.I, r.Img)
		}, core.Name("show"), core.Input("img"))
	err := ts.RunContext(ctx, func(emit func(any)) {
		for i := 0; i < p.Dim; i++ {
			emit(&Row{I: i, Img: make([]byte, p.Dim)})
		}
	})
	return im, err
}

// RunFFObserved is RunFF with instrumentation, labelled
// {pipeline="mandel-ff", stage=source|compute|show}.
func RunFFObserved(p Params, workers int, obs Observer) (*Image, error) {
	im := NewImage(p.Dim)
	i := 0
	src := ff.Source(func() (any, bool) {
		if i >= p.Dim {
			return nil, false
		}
		r := &Row{I: i, Img: make([]byte, p.Dim)}
		i++
		return r, true
	})
	ws := make([]ff.Node, workers)
	for w := range ws {
		ws[w] = ff.F(func(task any) any {
			r := task.(*Row)
			p.ComputeRow(r.I, r.Img)
			return r
		})
	}
	sink := ff.Sink(func(task any) {
		r := task.(*Row)
		im.SetRow(r.I, r.Img)
	})
	pipe := ff.NewPipeline(src, ff.NewFarm(ws, ff.Ordered()), sink)
	if obs.Metrics != nil {
		pipe.SetTelemetry(obs.Metrics, "mandel-ff", "source", "compute", "show")
	}
	if obs.Trace != nil {
		pipe.SetStreamTracer(obs.Trace)
	}
	err := pipe.Run()
	return im, err
}

// RunTBBObserved is RunTBB with instrumentation, labelled
// {pipeline="mandel-tbb"}. The TBB model traces at filter granularity only
// (tbb_filter_service_seconds); per-item tracing is a pipeline-runtime
// concept the TBB facade does not expose.
func RunTBBObserved(p Params, sched *tbb.Scheduler, maxTokens int, obs Observer) *Image {
	im := NewImage(p.Dim)
	i := 0
	pipe := tbb.NewPipeline(
		tbb.NewFilter(tbb.SerialInOrder, func(any) any {
			if i >= p.Dim {
				return nil
			}
			r := &Row{I: i, Img: make([]byte, p.Dim)}
			i++
			return r
		}),
		tbb.NewFilter(tbb.Parallel, func(v any) any {
			r := v.(*Row)
			p.ComputeRow(r.I, r.Img)
			return r
		}),
		tbb.NewFilter(tbb.SerialInOrder, func(v any) any {
			r := v.(*Row)
			im.SetRow(r.I, r.Img)
			return r
		}),
	)
	if obs.Metrics != nil {
		pipe.SetTelemetry(obs.Metrics, "mandel-tbb")
	}
	pipe.Run(sched, maxTokens)
	return im
}
