// Package mandel implements the Mandelbrot Streaming pseudo-application of
// §IV-A: each line of the fractal image is a stream item, computed by a
// 3-stage pipeline (generate → compute → show). The package provides the
// scalar math, the CPU streaming apps for every programming model (SPar,
// FastFlow, TBB — real goroutine runtimes), and the GPU kernels of
// Listings 1–2 for the simulated device.
package mandel

import (
	"context"

	"streamgpu/internal/gpu"
	"streamgpu/internal/tbb"
)

// Params describes the fractal computation: a dim×dim image over the
// complex plane starting at (InitA, InitB) spanning Range, with escape
// iteration cap Niter.
type Params struct {
	Dim   int
	Niter int
	InitA float64
	InitB float64
	Range float64
}

// PaperParams returns the paper's configuration: 2000×2000 image, 200,000
// iterations, over a window containing a large interior region.
func PaperParams() Params {
	return Params{Dim: 2000, Niter: 200000, InitA: -2.0, InitB: -1.25, Range: 2.5}
}

// TestParams returns a reduced configuration for fast functional tests.
func TestParams() Params {
	return Params{Dim: 128, Niter: 256, InitA: -2.0, InitB: -1.25, Range: 2.5}
}

// Step is the per-pixel increment on the complex plane.
func (p Params) Step() float64 { return p.Range / float64(p.Dim) }

// Pixel computes the escape iteration count for image coordinate (i, j):
// the inner loop of Listing 1.
func (p Params) Pixel(i, j int) int {
	step := p.Step()
	im := p.InitB + step*float64(i)
	cr := p.InitA + step*float64(j)
	a, b := cr, im
	k := 0
	for ; k < p.Niter; k++ {
		a2 := a * a
		b2 := b * b
		if a2+b2 > 4.0 {
			break
		}
		b = 2*a*b + im
		a = a2 - b2 + cr
	}
	return k
}

// Color maps an escape count to the paper's 8-bit pixel value.
func (p Params) Color(k int) byte {
	return byte(255 - k*255/p.Niter)
}

// ComputeRow fills img (length Dim) with row i's pixels and returns the
// row's total iteration count (the workload measure used for calibration).
func (p Params) ComputeRow(i int, img []byte) int64 {
	var iters int64
	for j := 0; j < p.Dim; j++ {
		k := p.Pixel(i, j)
		iters += int64(k)
		if k < p.Niter {
			iters++ // the escaping iteration also executes
		}
		img[j] = p.Color(k)
	}
	return iters
}

// Row is one stream item: a line of the fractal.
type Row struct {
	I   int
	Img []byte
}

// Image collects rows into a complete frame; it is the "show" stage's
// backing store in tests and examples.
type Image struct {
	Dim  int
	Pix  []byte
	rows int
}

// NewImage allocates a dim×dim frame.
func NewImage(dim int) *Image {
	return &Image{Dim: dim, Pix: make([]byte, dim*dim)}
}

// SetRow stores a computed row (the ShowLine analogue).
func (im *Image) SetRow(i int, img []byte) {
	copy(im.Pix[i*im.Dim:(i+1)*im.Dim], img)
	im.rows++
}

// Complete reports whether every row has been set.
func (im *Image) Complete() bool { return im.rows == im.Dim }

// RunSeq computes the frame sequentially and returns it with the total
// iteration count.
func RunSeq(p Params) (*Image, int64) {
	im := NewImage(p.Dim)
	row := make([]byte, p.Dim)
	var iters int64
	for i := 0; i < p.Dim; i++ {
		iters += p.ComputeRow(i, row)
		im.SetRow(i, row)
	}
	return im, iters
}

// RunSPar computes the frame with the SPar DSL: ToStream with a replicated
// compute Stage and an ordered show Stage (Listing 1's annotation schema).
func RunSPar(p Params, workers int) (*Image, error) {
	return RunSParContext(context.Background(), p, workers)
}

// RunSParContext is RunSPar under a context: cancellation or timeout aborts
// the stream and returns the context error (the frame is then incomplete).
func RunSParContext(ctx context.Context, p Params, workers int) (*Image, error) {
	return RunSParObserved(ctx, p, workers, Observer{})
}

// RunFF computes the frame directly on the FastFlow-style runtime: a
// pipeline whose middle stage is an ordered farm.
func RunFF(p Params, workers int) (*Image, error) {
	return RunFFObserved(p, workers, Observer{})
}

// RunTBB computes the frame on the TBB-style runtime: a pipeline with a
// parallel middle filter, throttled by maxTokens live tokens (the knob the
// paper tunes to 2×/5× the worker count).
func RunTBB(p Params, sched *tbb.Scheduler, maxTokens int) *Image {
	return RunTBBObserved(p, sched, maxTokens, Observer{})
}

// --- GPU kernels ---

// mandelCost converts an escape count into device cycles. Mandelbrot runs
// in double precision; on the consumer Pascal parts the paper used, FP64
// issues at 1/32 of FP32 rate, so one iteration (~5 FP64 ops) costs far
// more than its instruction count suggests. iterCycles is the calibrated
// per-iteration cycle cost (internal/bench owns the calibration).

// RowKernel is the naive Listing 1 offload: one kernel per image row, one
// thread per column. Args: i int, p Params, img *gpu.Buf, iterCycles int64.
var RowKernel = &gpu.KernelSpec{
	Name:          "mandel_row",
	RegsPerThread: 18,
	Body: func(t gpu.Thread, args []any) int64 {
		i := args[0].(int)
		p := args[1].(Params)
		img := args[2].(*gpu.Buf)
		iterCycles := args[3].(int64)
		// Linearize across 2-D blocks too, so the same kernel serves the
		// paper's "2D threads and blocks" experiment.
		j := t.Block.X*t.BlockDim.Count() + t.Idx.Y*t.BlockDim.X + t.Idx.X
		if j >= p.Dim {
			return gpu.ExitCost
		}
		k := p.Pixel(i, j)
		img.Bytes()[j] = p.Color(k)
		return int64(k+1)*iterCycles + 20
	},
}

// BatchKernel is Listing 2: one kernel computes a whole batch of rows.
// Args: batch int, batchSize int, p Params, img *gpu.Buf, iterCycles int64.
var BatchKernel = &gpu.KernelSpec{
	Name:          "mandel_kernel",
	RegsPerThread: 18, // "the kernel function in Listing 2 uses only 18 registers"
	Body: func(t gpu.Thread, args []any) int64 {
		batch := args[0].(int)
		batchSize := args[1].(int)
		p := args[2].(Params)
		img := args[3].(*gpu.Buf)
		iterCycles := args[4].(int64)
		threadID := t.GlobalX()
		iBatch := threadID / p.Dim
		i := batch*batchSize + iBatch
		j := threadID - iBatch*p.Dim
		if i < p.Dim && j < p.Dim && iBatch < batchSize {
			k := p.Pixel(i, j)
			img.Bytes()[iBatch*p.Dim+j] = p.Color(k)
			return int64(k+1)*iterCycles + 20
		}
		return gpu.ExitCost
	},
}
