package core

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPipelineBasic(t *testing.T) {
	var out []int
	var mu sync.Mutex
	ts := NewToStream().
		Stage(func(item any, emit func(any)) { emit(item.(int) * 3) }).
		Stage(func(item any, emit func(any)) {
			mu.Lock()
			out = append(out, item.(int))
			mu.Unlock()
		})
	err := ts.Run(func(emit func(any)) {
		for i := 1; i <= 4; i++ {
			emit(i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("out = %v", out)
	}
	for i, v := range out {
		if v != (i+1)*3 {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestReplicatedStageOrdered(t *testing.T) {
	const n = 200
	var out []int
	ts := NewToStream(Ordered()).
		Stage(func(item any, emit func(any)) { emit(item) }, Replicate(6)).
		Stage(func(item any, emit func(any)) { out = append(out, item.(int)) })
	err := ts.Run(func(emit func(any)) {
		for i := 0; i < n; i++ {
			emit(i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("got %d items", len(out))
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d: order lost despite Ordered()", i, v)
		}
	}
}

func TestReplicatedStageUnorderedCompletes(t *testing.T) {
	const n = 500
	var count atomic.Int64
	ts := NewToStream().
		Stage(func(item any, emit func(any)) { emit(item) }, Replicate(8)).
		Stage(func(item any, emit func(any)) { count.Add(1) })
	err := ts.Run(func(emit func(any)) {
		for i := 0; i < n; i++ {
			emit(i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != n {
		t.Errorf("processed %d, want %d", count.Load(), n)
	}
}

// statefulWorker counts its own lifecycle; replicas must not share state.
type statefulWorker struct {
	inits *atomic.Int32
	ends  *atomic.Int32
	local int
}

func (w *statefulWorker) Init() error { w.inits.Add(1); return nil }
func (w *statefulWorker) End()        { w.ends.Add(1) }
func (w *statefulWorker) Process(item any, emit func(any)) {
	w.local++ // per-replica state: no locking needed
	emit(item)
}

func TestWorkerPerReplicaLifecycle(t *testing.T) {
	var inits, ends atomic.Int32
	var made atomic.Int32
	ts := NewToStream().
		StageWorkers(func() Worker {
			made.Add(1)
			return &statefulWorker{inits: &inits, ends: &ends}
		}, Replicate(5)).
		Stage(func(any, func(any)) {})
	err := ts.Run(func(emit func(any)) {
		for i := 0; i < 50; i++ {
			emit(i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if made.Load() != 5 {
		t.Errorf("factory called %d times, want 5 (one per replica)", made.Load())
	}
	if inits.Load() != 5 || ends.Load() != 5 {
		t.Errorf("inits=%d ends=%d, want 5,5", inits.Load(), ends.Load())
	}
}

type failInit struct{}

func (failInit) Init() error            { return errors.New("no device") }
func (failInit) End()                   {}
func (failInit) Process(any, func(any)) {}

func TestWorkerInitFailure(t *testing.T) {
	ts := NewToStream().
		StageWorkers(func() Worker { return failInit{} }).
		Stage(func(any, func(any)) {})
	err := ts.Run(func(emit func(any)) { emit(1) })
	if err == nil {
		t.Fatal("worker Init error should surface from Run")
	}
}

func TestMultiEmit(t *testing.T) {
	var count atomic.Int64
	ts := NewToStream().
		Stage(func(item any, emit func(any)) {
			emit(item)
			emit(item)
		}).
		Stage(func(any, func(any)) { count.Add(1) })
	err := ts.Run(func(emit func(any)) {
		for i := 0; i < 10; i++ {
			emit(i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 20 {
		t.Errorf("got %d items, want 20", count.Load())
	}
}

func TestValidateNoStages(t *testing.T) {
	ts := NewToStream()
	if err := ts.Validate(); err == nil {
		t.Fatal("ToStream without Stage must be invalid (SPar rule)")
	}
}

func TestValidateBadReplicate(t *testing.T) {
	ts := NewToStream().Stage(func(any, func(any)) {}, Replicate(0))
	if err := ts.Validate(); err == nil {
		t.Fatal("Replicate(0) must be invalid")
	}
}

func TestValidateInputChaining(t *testing.T) {
	ok := NewToStream(Input("dim", "niter")).
		Stage(func(any, func(any)) {}, Input("dim"), Output("img")).
		Stage(func(any, func(any)) {}, Input("img", "niter"))
	if err := ok.Validate(); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
	bad := NewToStream(Input("dim")).
		Stage(func(any, func(any)) {}, Input("img")) // img never produced
	if err := bad.Validate(); err == nil {
		t.Error("consuming an unproduced variable should fail validation")
	}
}

func TestRunValidates(t *testing.T) {
	ts := NewToStream() // no stages
	if err := ts.Run(func(emit func(any)) {}); err == nil {
		t.Fatal("Run must validate first")
	}
}

func TestGraphString(t *testing.T) {
	ts := NewToStream(Ordered()).
		Stage(func(any, func(any)) {}, Replicate(10), Name("sha1")).
		Stage(func(any, func(any)) {}, Name("write"))
	g := ts.Graph()
	s := g.String()
	if !strings.Contains(s, "ToStream") || !strings.Contains(s, "sha1 ×10") || !strings.Contains(s, "[ordered]") {
		t.Errorf("graph string = %q", s)
	}
	if len(g.Stages) != 3 {
		t.Errorf("stages = %d, want 3", len(g.Stages))
	}
}

func TestStageDefaultNames(t *testing.T) {
	ts := NewToStream().
		Stage(func(any, func(any)) {}).
		Stage(func(any, func(any)) {})
	g := ts.Graph()
	if g.Stages[1].Name != "S1" || g.Stages[2].Name != "S2" {
		t.Errorf("default names = %v", g.Stages)
	}
}

// Property: for any input and worker count, an Ordered region behaves as an
// identity pipeline — the SPar ordering guarantee.
func TestOrderedIdentityProperty(t *testing.T) {
	f := func(vals []int16, rSeed uint8) bool {
		r := int(rSeed)%7 + 1
		var out []int16
		ts := NewToStream(Ordered()).
			Stage(func(item any, emit func(any)) { emit(item) }, Replicate(r)).
			Stage(func(item any, emit func(any)) { out = append(out, item.(int16)) })
		err := ts.Run(func(emit func(any)) {
			for _, v := range vals {
				emit(v)
			}
		})
		if err != nil || len(out) != len(vals) {
			return false
		}
		for i := range vals {
			if out[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkToStreamThroughput(b *testing.B) {
	n := b.N
	ts := NewToStream(Ordered()).
		Stage(func(item any, emit func(any)) { emit(item) }, Replicate(4)).
		Stage(func(any, func(any)) {})
	b.ResetTimer()
	if err := ts.Run(func(emit func(any)) {
		for i := 0; i < n; i++ {
			emit(i)
		}
	}); err != nil {
		b.Fatal(err)
	}
}
