package core

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestStageErrCancelsStream(t *testing.T) {
	boom := errors.New("device gone")
	var after atomic.Int64
	ts := NewToStream().
		StageErr(func(item any, emit func(any)) error {
			if item.(int) == 3 {
				return boom
			}
			emit(item)
			return nil
		}, Name("fallible")).
		Stage(func(item any, emit func(any)) {
			after.Add(1)
		}, Name("sink"))
	var generated int
	err := ts.Run(func(emit func(any)) {
		for i := 1; i <= 1_000_000; i++ {
			generated = i
			emit(i)
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want wrapped %v", err, boom)
	}
	if generated >= 1_000_000 {
		t.Error("source ran to completion despite the stage error")
	}
}

func TestStagePanicRecovered(t *testing.T) {
	ts := NewToStream().
		Stage(func(item any, emit func(any)) {
			if item.(int) == 7 {
				panic("stage body exploded")
			}
			emit(item)
		}, Replicate(4)).
		Stage(func(item any, emit func(any)) {})
	err := ts.Run(func(emit func(any)) {
		for i := 1; i <= 100_000; i++ {
			emit(i)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "stage body exploded") {
		t.Fatalf("Run = %v, want recovered panic", err)
	}
}

func TestWorkerInitErrorAbortsRun(t *testing.T) {
	boom := errors.New("no accelerator")
	ts := NewToStream().
		StageWorkers(func() Worker { return failingWorker{err: boom} }, Replicate(2))
	err := ts.Run(func(emit func(any)) { emit(1) })
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want wrapped %v", err, boom)
	}
}

type failingWorker struct{ err error }

func (w failingWorker) Init() error            { return w.err }
func (w failingWorker) Process(any, func(any)) {}
func (w failingWorker) End()                   {}

func TestRunContextCancelStopsSource(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	ts := NewToStream().
		Stage(func(item any, emit func(any)) {
			if seen.Add(1) == 5 {
				cancel()
			}
		})
	done := make(chan error, 1)
	go func() {
		done <- ts.RunContext(ctx, func(emit func(any)) {
			i := 0
			for { // endless stream: only cancellation ends it
				i++
				emit(i)
				time.Sleep(100 * time.Microsecond)
			}
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunContext did not stop the endless source after cancel")
	}
}

func TestRunContextTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	ts := NewToStream().
		Stage(func(item any, emit func(any)) {
			time.Sleep(5 * time.Millisecond)
		})
	err := ts.RunContext(ctx, func(emit func(any)) {
		for i := 0; i < 10_000; i++ {
			emit(i)
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext = %v, want deadline exceeded", err)
	}
}
