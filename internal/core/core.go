// Package core implements the paper's primary contribution surface: a
// SPar-style high-level stream-parallelism DSL.
//
// SPar [Griebler et al.] expresses stream parallelism with five C++11
// attributes — ToStream, Stage, Input, Output, Replicate — and a
// source-to-source compiler that turns annotated loops into FastFlow
// pipelines and farms. Go has no attributes, so this package provides the
// same five concepts as a declarative builder; Run applies SPar's
// transformation rules and executes the result on the FastFlow-style
// runtime in internal/ff:
//
//	pipe := core.NewToStream(core.Input("dim", "niter")).
//		Stage(computeRow, core.Replicate(10), core.Input("row"), core.Output("img")).
//		Stage(showLine, core.Input("img"))
//	err := pipe.Run(source)
//
// The textual annotation form is parsed by internal/spanno, which produces
// the same Graph this package builds programmatically.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"streamgpu/internal/ff"
	"streamgpu/internal/telemetry"
)

// StageFunc is a stage body: consume one stream item, emit zero or more.
type StageFunc func(item any, emit func(any))

// StageFuncErr is a stage body that can fail: a non-nil return cancels the
// stream, drains the remaining stages, and surfaces from Run. Use it for
// stages doing I/O or device work, where errors are expected rather than
// exceptional.
type StageFuncErr func(item any, emit func(any)) error

// Worker is a stateful stage replica. Each replica gets its own Worker
// instance (created by the stage's factory), so per-replica state — GPU
// streams, cl_kernel objects, scratch buffers — needs no locking.
type Worker interface {
	// Init runs once on the replica's thread before the first item
	// (allocate GPU streams / kernel objects here, as §IV-A requires).
	Init() error
	// Process handles one stream item.
	Process(item any, emit func(any))
	// End runs after the last item.
	End()
}

// FnWorker adapts a stateless StageFunc to Worker.
type FnWorker StageFunc

// Init implements Worker.
func (FnWorker) Init() error { return nil }

// Process implements Worker.
func (f FnWorker) Process(item any, emit func(any)) { f(item, emit) }

// End implements Worker.
func (FnWorker) End() {}

// StageDef is one annotated Stage.
type StageDef struct {
	Name      string
	Replicate int
	Inputs    []string
	Outputs   []string
	Offload   bool
	make      func() Worker
	// makeNode, when set, overrides make with a direct ff.Node factory
	// (used by StageErr, whose bodies return errors through the runtime).
	makeNode func() ff.Node
}

// Option configures a ToStream region or a Stage (the auxiliary
// attributes).
type Option func(*options)

type options struct {
	name        string
	replicate   int
	inputs      []string
	outputs     []string
	ordered     bool
	queueCap    int
	onDemand    bool
	offload     bool
	metrics     *telemetry.Registry
	metricsName string
	trace       *telemetry.StreamTracer
}

// Replicate sets the stage's parallelism degree (the spar::Replicate
// attribute). Only valid on stages without shared mutable state.
func Replicate(n int) Option { return func(o *options) { o.replicate = n } }

// Input declares the variables a region or stage consumes (spar::Input).
// Used for graph validation: a stage may only consume what flows to it.
func Input(vars ...string) Option {
	return func(o *options) { o.inputs = append(o.inputs, vars...) }
}

// Output declares the variables a region or stage produces (spar::Output).
func Output(vars ...string) Option {
	return func(o *options) { o.outputs = append(o.outputs, vars...) }
}

// Name labels a stage for graphs and error messages.
func Name(s string) Option { return func(o *options) { o.name = s } }

// Offload marks the stage as accelerator-eligible (spar::Pure), recorded in
// the activity graph. Execution stays on the host runtime; the flag is the
// hand-off point for the paper's future-work GPU code generation.
func Offload() Option { return func(o *options) { o.offload = true } }

// Ordered asks the generated graph to preserve stream order end to end
// (SPar's -spar_ordered flag); replicated stages become ordered farms.
func Ordered() Option { return func(o *options) { o.ordered = true } }

// QueueCap sets the communication queue capacity of the generated graph.
func QueueCap(n int) Option { return func(o *options) { o.queueCap = n } }

// OnDemand selects on-demand task scheduling for replicated stages
// (SPar's -spar_ondemand flag).
func OnDemand() Option { return func(o *options) { o.onDemand = true } }

// Telemetry attaches a metrics registry to the region: the generated graph
// reports per-stage item counters, service-time histograms and queue-depth
// gauges into reg, labelled {pipeline=name, stage=<source|stage name>}. A
// region option; nil reg disables metrics.
func Telemetry(reg *telemetry.Registry, name string) Option {
	return func(o *options) {
		o.metrics = reg
		o.metricsName = name
	}
}

// Trace attaches a per-item stream tracer to the region: every stage of the
// generated graph records item enter/exit timestamps into tr. A region
// option; nil tr disables tracing.
func Trace(tr *telemetry.StreamTracer) Option {
	return func(o *options) { o.trace = tr }
}

// ToStream is an annotated streaming region under construction: the
// spar::ToStream attribute plus its chain of Stages.
type ToStream struct {
	inputs      []string
	stages      []*StageDef
	ordered     bool
	onDemand    bool
	queueCap    int
	metrics     *telemetry.Registry
	metricsName string
	trace       *telemetry.StreamTracer
	err         error
}

// NewToStream opens a streaming region. Options Input, Ordered, OnDemand
// and QueueCap apply to the whole region.
func NewToStream(opts ...Option) *ToStream {
	var o options
	for _, op := range opts {
		op(&o)
	}
	return &ToStream{
		inputs:      o.inputs,
		ordered:     o.ordered,
		onDemand:    o.onDemand,
		queueCap:    o.queueCap,
		metrics:     o.metrics,
		metricsName: o.metricsName,
		trace:       o.trace,
	}
}

// Stage appends a stage with a stateless body. Use StageWorkers for
// stateful replicas.
func (t *ToStream) Stage(fn StageFunc, opts ...Option) *ToStream {
	return t.StageWorkers(func() Worker { return FnWorker(fn) }, opts...)
}

// StageWorkers appends a stage whose replicas are created by factory —
// one Worker per replica, each with its own Init/End lifecycle.
func (t *ToStream) StageWorkers(factory func() Worker, opts ...Option) *ToStream {
	return t.addStage(factory, nil, opts)
}

// StageErr appends a stage with a fallible body: when fn returns a non-nil
// error the stream is canceled and the error surfaces from Run.
func (t *ToStream) StageErr(fn StageFuncErr, opts ...Option) *ToStream {
	return t.addStage(nil, func() ff.Node { return &errStageNode{fn: fn} }, opts)
}

func (t *ToStream) addStage(factory func() Worker, makeNode func() ff.Node, opts []Option) *ToStream {
	var o options
	o.replicate = 1
	for _, op := range opts {
		op(&o)
	}
	if o.name == "" {
		o.name = fmt.Sprintf("S%d", len(t.stages)+1)
	}
	if o.replicate < 1 && t.err == nil {
		t.err = fmt.Errorf("core: stage %s: Replicate(%d) must be >= 1", o.name, o.replicate)
	}
	t.stages = append(t.stages, &StageDef{
		Name:      o.name,
		Replicate: o.replicate,
		Inputs:    o.inputs,
		Outputs:   o.outputs,
		Offload:   o.offload,
		make:      factory,
		makeNode:  makeNode,
	})
	return t
}

// Validate applies SPar's semantic rules: a ToStream needs at least one
// Stage; declared stage Inputs must be satisfied by what flows into the
// stage (region inputs plus all upstream Outputs).
func (t *ToStream) Validate() error {
	if t.err != nil {
		return t.err
	}
	if len(t.stages) == 0 {
		return errors.New("core: ToStream requires at least one Stage")
	}
	avail := make(map[string]bool)
	for _, v := range t.inputs {
		avail[v] = true
	}
	for _, s := range t.stages {
		if len(t.inputs) > 0 && len(s.Inputs) > 0 {
			for _, v := range s.Inputs {
				if !avail[v] {
					return fmt.Errorf("core: stage %s consumes %q, which no upstream stage or the ToStream region provides", s.Name, v)
				}
			}
		}
		for _, v := range s.Outputs {
			avail[v] = true
		}
	}
	return nil
}

// Graph describes the parallel activity graph SPar generates — the
// pipeline/farm structure of Fig. 3.
type Graph struct {
	Ordered bool
	Stages  []GraphStage
}

// GraphStage is one node of the activity graph.
type GraphStage struct {
	Name      string
	Replicate int
	// Offload marks the stage as accelerator-eligible (spar::Pure): the
	// front-end's hook for the paper's future-work GPU code generation.
	Offload bool
}

// Graph returns the activity graph (source stage first).
func (t *ToStream) Graph() Graph {
	g := Graph{Ordered: t.ordered}
	g.Stages = append(g.Stages, GraphStage{Name: "ToStream", Replicate: 1})
	for _, s := range t.stages {
		g.Stages = append(g.Stages, GraphStage{Name: s.Name, Replicate: s.Replicate, Offload: s.Offload})
	}
	return g
}

// String renders the graph like the paper's activity diagrams:
// ToStream → S1 ×10 → S2.
func (g Graph) String() string {
	var b strings.Builder
	for i, s := range g.Stages {
		if i > 0 {
			b.WriteString(" → ")
		}
		b.WriteString(s.Name)
		if s.Replicate > 1 {
			fmt.Fprintf(&b, " ×%d", s.Replicate)
		}
		if s.Offload {
			b.WriteString(" [gpu]")
		}
	}
	if g.Ordered {
		b.WriteString(" [ordered]")
	}
	return b.String()
}

// workerNode adapts a core.Worker to an ff.Node.
type workerNode struct {
	ff.NodeBase
	w Worker
}

func (n *workerNode) Init() error { return n.w.Init() }
func (n *workerNode) End()        { n.w.End() }
func (n *workerNode) Svc(task any) any {
	n.w.Process(task, n.SendOut)
	return ff.GoOn
}

// errStageNode adapts a StageFuncErr to an ff.Node: a non-nil error return
// value is handed to the runtime, which records it and cancels the stream.
type errStageNode struct {
	ff.NodeBase
	fn StageFuncErr
}

func (n *errStageNode) Svc(task any) any {
	if err := n.fn(task, n.SendOut); err != nil {
		return err
	}
	return ff.GoOn
}

// stopEmit unwinds the source generator when the stream has been canceled;
// sourceNode.Svc recovers it and ends the stream cleanly.
type stopEmit struct{}

// sourceNode drives the region's generator function.
type sourceNode struct {
	ff.NodeBase
	gen func(emit func(any))
	// stopped reports stream cancellation; wired to Pipeline.Canceled by
	// RunContext so a canceled run doesn't generate the rest of the stream.
	stopped func() bool
}

func (n *sourceNode) Svc(any) (out any) {
	out = ff.EOS
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(stopEmit); !ok {
				panic(r)
			}
		}
	}()
	n.gen(func(v any) {
		if n.stopped != nil && n.stopped() {
			panic(stopEmit{})
		}
		n.SendOut(v)
	})
	return ff.EOS
}

// Run compiles the region to a FastFlow graph (SPar's source-to-source
// transformation, applied at runtime) and executes it to completion.
// source is the ToStream loop body: it emits every stream item, then
// returns.
func (t *ToStream) Run(source func(emit func(any))) error {
	return t.RunContext(context.Background(), source)
}

// RunContext is Run under a context: when ctx is canceled or times out the
// stream is aborted (the source stops emitting, downstream stages drain)
// and the context error is returned. Stage panics and StageErr errors are
// likewise recovered into the returned error instead of crashing the
// process.
func (t *ToStream) RunContext(ctx context.Context, source func(emit func(any))) error {
	if err := t.Validate(); err != nil {
		return err
	}
	src := &sourceNode{gen: source}
	stages := make([]any, 0, len(t.stages)+1)
	stages = append(stages, src)
	for _, s := range t.stages {
		mk := func() ff.Node { return &workerNode{w: s.make()} }
		if s.makeNode != nil {
			mk = s.makeNode
		}
		if s.Replicate == 1 {
			stages = append(stages, mk())
			continue
		}
		workers := make([]ff.Node, s.Replicate)
		for i := range workers {
			workers[i] = mk()
		}
		var fopts []ff.FarmOpt
		if t.ordered {
			fopts = append(fopts, ff.Ordered())
		}
		if t.onDemand {
			fopts = append(fopts, ff.OnDemand())
		}
		stages = append(stages, ff.NewFarm(workers, fopts...))
	}
	pipe := ff.NewPipeline(stages...)
	if t.queueCap > 0 {
		pipe.SetQueueCap(t.queueCap)
	}
	if t.metrics != nil || t.trace != nil {
		names := make([]string, 0, len(t.stages)+1)
		names = append(names, "source")
		for _, s := range t.stages {
			names = append(names, s.Name)
		}
		name := t.metricsName
		if name == "" {
			name = "spar"
		}
		pipe.SetTelemetry(t.metrics, name, names...)
		pipe.SetStreamTracer(t.trace)
	}
	src.stopped = pipe.Canceled
	return pipe.RunContext(ctx)
}
