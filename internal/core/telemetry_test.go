package core

import (
	"testing"

	"streamgpu/internal/telemetry"
)

// TestRegionTelemetry checks the Telemetry/Trace region options flow through
// the generated ff graph with SPar's stage names.
func TestRegionTelemetry(t *testing.T) {
	const n = 40
	reg := telemetry.New()
	tr := telemetry.NewStreamTracer(4 * n)

	var got int
	err := NewToStream(Ordered(), Telemetry(reg, "region"), Trace(tr)).
		Stage(func(item any, emit func(any)) {
			emit(item.(int) * 3)
		}, Name("triple"), Replicate(4)).
		Stage(func(item any, emit func(any)) {
			got++
		}, Name("count")).
		Run(func(emit func(any)) {
			for i := 0; i < n; i++ {
				emit(i)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("sink saw %d items, want %d", got, n)
	}
	if v := reg.Counter("ff_stage_items_in_total",
		telemetry.Labels{"pipeline": "region", "stage": "triple"}).Value(); v != n {
		t.Errorf("triple items in = %d, want %d", v, n)
	}
	if v := reg.Histogram("ff_stage_service_seconds", nil,
		telemetry.Labels{"pipeline": "region", "stage": "count"}).Count(); v != n {
		t.Errorf("count svc observations = %d, want %d", v, n)
	}
	stagesSeen := map[string]bool{}
	for _, ev := range tr.Events() {
		stagesSeen[ev.Stage] = true
	}
	for _, want := range []string{"source", "triple", "count"} {
		if !stagesSeen[want] {
			t.Errorf("trace has no visits to stage %q", want)
		}
	}
}
