package gpu

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Fleet support: parameterized DeviceSpec constructors plus the -fleet
// spec-string parser behind heterogeneous device pools. A homogeneous fleet
// hides placement bugs — every device is interchangeable, so any routing
// policy looks fine — whereas a pool mixing SM counts, PCIe generations and
// derated clocks makes placement quality measurable (cmd/figures' fleet
// table) and lets the health scoreboard's spec normalization be tested
// (a slow-but-healthy device must not read as a degraded fast one).

// MaxFleetDevices bounds a parsed fleet: the serving path builds one
// simulated device per entry per batch, so an absurd count is a config
// error, not a scaling knob.
const MaxFleetDevices = 64

// WithSMs returns the spec with n streaming multiprocessors — a cut-down
// part from the same generation (per-SM registers, shared memory and clocks
// unchanged).
func (s DeviceSpec) WithSMs(n int) DeviceSpec {
	s.SMs = n
	return s
}

// WithPCIeGen rescales the host-link bandwidths for a PCIe generation,
// relative to the spec's baseline gen-3 link (each generation doubles
// per-lane signaling; the per-transfer latency floor stays).
func (s DeviceSpec) WithPCIeGen(gen int) DeviceSpec {
	f := math.Ldexp(1, gen-3) // 2^(gen-3): gen2 halves, gen4 doubles
	s.H2DPinnedBps *= f
	s.D2HPinnedBps *= f
	s.H2DPageableBps *= f
	s.D2HPageableBps *= f
	return s
}

// Derated returns the spec with its core clock scaled by f — thermal
// throttling (f < 1) or a factory overclock (f > 1). Kernel time scales as
// 1/f; transfers are unaffected.
func (s DeviceSpec) Derated(f float64) DeviceSpec {
	s.ClockHz *= f
	return s
}

// WithMemGiB returns the spec with g GiB of global memory.
func (s DeviceSpec) WithMemGiB(g int) DeviceSpec {
	s.GlobalMemBytes = int64(g) << 30
	return s
}

// ServiceSecondsHint estimates the virtual seconds one serving-path batch of
// n bytes costs on this spec: input up, match arrays (4 bytes of length + 4
// of offset per input byte) back down, the hash+match kernels at full
// occupancy, and the fixed per-op overheads. It is a baseline for
// normalizing observed service times across a heterogeneous fleet, not a
// prediction — only the ratios between specs matter, so the constants just
// have to weight transfer against compute plausibly.
func (s DeviceSpec) ServiceSecondsHint(n int) float64 {
	const cyclesPerByte = 48 // SHA-1 rounds plus the LZSS window scan
	bytes := float64(n)
	up := bytes / posBps(s.H2DPinnedBps)
	down := 8 * bytes / posBps(s.D2HPinnedBps)
	threadRate := s.IssueWarpsPerCycle * float64(s.WarpSize) * float64(s.SMs) * s.ClockHz
	if threadRate <= 0 {
		threadRate = 1
	}
	compute := bytes * cyclesPerByte / threadRate
	fixed := (4*s.CopyLatency + 2*s.KernelLaunchOverhead).Seconds()
	return up + down + compute + fixed
}

// posBps guards the hint against a zero-bandwidth spec.
func posBps(bps float64) float64 {
	if bps <= 0 {
		return 1
	}
	return bps
}

// baseSpecs are the named starting points a fleet entry may modify.
var baseSpecs = map[string]func() DeviceSpec{
	"titanxp": TitanXPSpec,
	"titan":   TitanXPSpec,
}

// ParseFleet turns a -fleet spec string into per-device specs. Grammar:
//
//	fleet := entry ("," entry)*
//	entry := kind ["*" count] ("@" key "=" value)*
//
// kind names a base spec ("titanxp"); count replicates the entry; the
// modifiers are clock=<factor> (Derated), gen=<1..5> (WithPCIeGen),
// sms=<count> (WithSMs), mem=<GiB> (WithMemGiB) and name=<id> (display name,
// must be unique and cannot be combined with a count). Example:
//
//	titanxp*2,titanxp@clock=0.6@gen=2,titanxp@sms=15
//
// is a four-device fleet: two stock boards, a thermally derated board on a
// narrow link, and a half-sized part.
func ParseFleet(s string) ([]DeviceSpec, error) {
	var fleet []DeviceSpec
	names := make(map[string]bool)
	for _, raw := range strings.Split(s, ",") {
		entry := strings.TrimSpace(raw)
		if entry == "" {
			return nil, fmt.Errorf("fleet: empty entry in %q", s)
		}
		specs, name, err := parseEntry(entry)
		if err != nil {
			return nil, err
		}
		if name != "" {
			if names[name] {
				return nil, fmt.Errorf("fleet: duplicate device id %q", name)
			}
			names[name] = true
		}
		fleet = append(fleet, specs...)
		if len(fleet) > MaxFleetDevices {
			return nil, fmt.Errorf("fleet: %d devices exceeds the %d-device cap", len(fleet), MaxFleetDevices)
		}
	}
	if len(fleet) == 0 {
		return nil, fmt.Errorf("fleet: empty spec")
	}
	return fleet, nil
}

// parseEntry expands one fleet entry; name is the explicit id, if any.
func parseEntry(entry string) (specs []DeviceSpec, name string, err error) {
	parts := strings.Split(entry, "@")
	head := strings.TrimSpace(parts[0])
	kind, countStr, hasCount := strings.Cut(head, "*")
	kind = strings.TrimSpace(kind)
	base, ok := baseSpecs[kind]
	if !ok {
		return nil, "", fmt.Errorf("fleet: unknown device kind %q (want one of %s)", kind, strings.Join(baseKinds(), ", "))
	}
	count := 1
	if hasCount {
		count, err = strconv.Atoi(strings.TrimSpace(countStr))
		if err != nil {
			return nil, "", fmt.Errorf("fleet: bad count in %q: %v", entry, err)
		}
		if count < 1 || count > MaxFleetDevices {
			return nil, "", fmt.Errorf("fleet: count %d in %q out of range 1..%d", count, entry, MaxFleetDevices)
		}
	}
	spec := base()
	spec.Name = kind
	for _, mod := range parts[1:] {
		key, val, ok := strings.Cut(strings.TrimSpace(mod), "=")
		if !ok || strings.TrimSpace(val) == "" {
			return nil, "", fmt.Errorf("fleet: modifier %q in %q wants key=value", mod, entry)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "clock":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, "", fmt.Errorf("fleet: bad clock factor %q in %q", val, entry)
			}
			if math.IsNaN(f) || f < 0.05 || f > 4 {
				return nil, "", fmt.Errorf("fleet: clock factor %v in %q out of range 0.05..4", f, entry)
			}
			spec = spec.Derated(f)
			spec.Name += "@clock=" + val
		case "gen":
			g, err := strconv.Atoi(val)
			if err != nil || g < 1 || g > 5 {
				return nil, "", fmt.Errorf("fleet: PCIe gen %q in %q out of range 1..5", val, entry)
			}
			spec = spec.WithPCIeGen(g)
			spec.Name += "@gen=" + val
		case "sms":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 || n > 1024 {
				return nil, "", fmt.Errorf("fleet: SM count %q in %q out of range 1..1024", val, entry)
			}
			spec = spec.WithSMs(n)
			spec.Name += "@sms=" + val
		case "mem":
			g, err := strconv.Atoi(val)
			if err != nil || g < 1 || g > 1024 {
				return nil, "", fmt.Errorf("fleet: mem GiB %q in %q out of range 1..1024", val, entry)
			}
			spec = spec.WithMemGiB(g)
			spec.Name += "@mem=" + val
		case "name":
			if len(val) > 32 {
				return nil, "", fmt.Errorf("fleet: name %q in %q longer than 32 bytes", val, entry)
			}
			name = val
		default:
			return nil, "", fmt.Errorf("fleet: unknown modifier %q in %q (want clock, gen, sms, mem or name)", key, entry)
		}
	}
	if name != "" {
		if count > 1 {
			return nil, "", fmt.Errorf("fleet: name=%s with count %d would duplicate device ids", name, count)
		}
		spec.Name = name
	}
	specs = make([]DeviceSpec, count)
	for i := range specs {
		specs[i] = spec
	}
	return specs, name, nil
}

// baseKinds lists the known device kinds, sorted, for error messages.
func baseKinds() []string {
	kinds := make([]string, 0, len(baseSpecs))
	for k := range baseSpecs {
		kinds = append(kinds, k)
	}
	// The map is tiny; insertion-sort keeps the import list flat.
	for i := 1; i < len(kinds); i++ {
		for j := i; j > 0 && kinds[j] < kinds[j-1]; j-- {
			kinds[j], kinds[j-1] = kinds[j-1], kinds[j]
		}
	}
	return kinds
}
