package gpu

import (
	"testing"

	"streamgpu/internal/des"
	"streamgpu/internal/fault"
)

// faultTestKernel adds one to every byte of its buffer argument.
var faultTestKernel = &Kernel{
	Name: "inc",
	Func: func(t Thread) int64 { return 8 },
}

// faultRun drives nOps copy+kernel rounds against a device with the given
// injector config and returns the per-op error observations.
func faultRun(t *testing.T, cfg fault.Config, nOps int) []bool {
	t.Helper()
	sim := des.New()
	dev := NewDevice(sim, TitanXPSpec(), 0)
	dev.SetFaultInjector(fault.New(cfg))
	failed := make([]bool, 0, nOps*2)
	sim.Spawn("host", func(p *des.Proc) {
		st := dev.NewStream("")
		buf, err := dev.Malloc(64)
		if err != nil {
			t.Errorf("Malloc: %v", err)
			return
		}
		defer buf.Free()
		h := NewPinnedBuf(64)
		for i := 0; i < nOps; i++ {
			evC := st.CopyH2D(p, buf, 0, h, 0, 64)
			evK := st.Launch(p, faultTestKernel, Grid1D(64, 32))
			failed = append(failed, WaitErr(p, evC) != nil, WaitErr(p, evK) != nil)
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	return failed
}

func TestFaultScheduleDeterministic(t *testing.T) {
	cfg := fault.Config{Seed: 11, TransferRate: 0.2, KernelRate: 0.1}
	a := faultRun(t, cfg, 200)
	b := faultRun(t, cfg, 200)
	nFail := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: fault schedules diverge across identical runs", i)
		}
		if a[i] {
			nFail++
		}
	}
	if nFail == 0 {
		t.Fatal("no faults injected at 20%/10% rates over 400 ops")
	}
}

func TestFaultedOpDoesNotCorruptLaterOps(t *testing.T) {
	// Even with faults in the schedule, non-faulted copies still move real
	// bytes and the stream keeps draining (no hang, no corruption).
	sim := des.New()
	dev := NewDevice(sim, TitanXPSpec(), 0)
	dev.SetFaultInjector(fault.New(fault.Config{Seed: 3, TransferRate: 0.3}))
	sim.Spawn("host", func(p *des.Proc) {
		st := dev.NewStream("")
		buf := mustMalloc(dev, 8)
		defer buf.Free()
		src := NewPinnedBuf(8)
		dst := NewPinnedBuf(8)
		for i := 0; i < 50; i++ {
			copy(src.Data, []byte{byte(i), 1, 2, 3, 4, 5, 6, 7})
			up := st.CopyH2D(p, buf, 0, src, 0, 8)
			down := st.CopyD2H(p, dst, 0, buf, 0, 8)
			if WaitErr(p, up, down) == nil && dst.Data[0] != byte(i) {
				t.Errorf("round %d: fault-free round trip corrupted data", i)
			}
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestDeviceKillFailsEverythingAfter(t *testing.T) {
	sim := des.New()
	dev := NewDevice(sim, TitanXPSpec(), 0)
	dev.SetFaultInjector(fault.New(fault.Config{Seed: 1, KillAfterOps: 3}))
	sim.Spawn("host", func(p *des.Proc) {
		st := dev.NewStream("")
		buf := mustMalloc(dev, 16)
		defer buf.Free()
		h := NewPinnedBuf(16)
		var errs int
		for i := 0; i < 10; i++ {
			if WaitErr(p, st.CopyH2D(p, buf, 0, h, 0, 16)) != nil {
				errs++
			}
		}
		if errs != 8 { // ops 1,2 succeed; op 3 kills; 3..10 fail
			t.Errorf("got %d failed ops, want 8", errs)
		}
		if !dev.Lost() {
			t.Error("device not marked lost after kill")
		}
		if b, err := dev.Malloc(16); !fault.IsDeviceLost(err) {
			if b != nil {
				b.Free()
			}
			t.Errorf("Malloc on lost device = %v, want device-lost", err)
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestInjectedFaultsCostVirtualTime(t *testing.T) {
	sim := des.New()
	dev := NewDevice(sim, TitanXPSpec(), 0)
	dev.SetFaultInjector(fault.New(fault.Config{Seed: 1, KillAfterOps: 1}))
	var elapsed des.Time
	sim.Spawn("host", func(p *des.Proc) {
		st := dev.NewStream("")
		buf := mustMalloc(dev, 16)
		defer buf.Free()
		h := NewPinnedBuf(16)
		start := p.Now()
		// The op is expected to fault (KillAfterOps: 1); only its cost matters.
		_ = WaitErr(p, st.CopyH2D(p, buf, 0, h, 0, 16))
		elapsed = p.Now() - start
	})
	if _, err := sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if elapsed <= 0 {
		t.Fatal("faulted op completed in zero virtual time; faults must cost their fixed overhead")
	}
}
