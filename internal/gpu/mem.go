package gpu

import (
	"errors"
	"fmt"

	"streamgpu/internal/fault"
)

// ErrOutOfMemory is returned by Malloc when the device's global memory is
// exhausted — the failure mode the paper hit with 10 MB OpenCL batches.
var ErrOutOfMemory = errors.New("gpu: out of device memory")

// Buf is a device-memory allocation. Its bytes live on the host (the model
// is functional) but are only legally touched by kernels and transfer
// operations, mirroring the CUDA rule that device pointers must not be
// dereferenced on the host.
type Buf struct {
	dev   *Device
	data  []byte
	freed bool
}

// Malloc allocates n bytes of device memory. Allocation failure — exhausted
// global memory, or a device an injected fault has killed — is an error the
// caller handles (fall back to CPU, fail over, or shrink the batch), never a
// library-side panic.
func (d *Device) Malloc(n int64) (*Buf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gpu: malloc of %d bytes", n)
	}
	if d.Lost() {
		return nil, fmt.Errorf("gpu: malloc on %s: %w", d.name, fault.ErrDeviceLost)
	}
	if d.memUsed+n > d.Spec.GlobalMemBytes {
		return nil, fmt.Errorf("%w: want %d, used %d of %d", ErrOutOfMemory, n, d.memUsed, d.Spec.GlobalMemBytes)
	}
	d.memUsed += n
	if d.memUsed > d.stats.PeakMemUsed {
		d.stats.PeakMemUsed = d.memUsed
	}
	return &Buf{dev: d, data: make([]byte, n)}, nil
}

// Free releases the allocation. Double-free panics.
func (b *Buf) Free() {
	if b.freed {
		panic("gpu: double free")
	}
	b.freed = true
	b.dev.memUsed -= int64(len(b.data))
	b.data = nil
}

// Size reports the allocation size in bytes.
func (b *Buf) Size() int64 { return int64(len(b.data)) }

// Device returns the owning device.
func (b *Buf) Device() *Device { return b.dev }

// Bytes exposes the device bytes to kernel code. Host-side code must go
// through Memcpy operations instead; kernels receive buffers through their
// launch closure and may use Bytes freely.
func (b *Buf) Bytes() []byte {
	if b.freed {
		panic("gpu: use after free")
	}
	return b.data
}

// HostBuf is host memory that can take part in transfers. Pinned
// (page-locked) memory transfers at full PCIe bandwidth and is eligible for
// asynchronous copies; pageable memory is slower and forces the issuing host
// thread to block for the transfer (as the CUDA driver does).
type HostBuf struct {
	Data   []byte
	Pinned bool
}

// NewHostBuf allocates pageable host memory.
func NewHostBuf(n int64) *HostBuf { return &HostBuf{Data: make([]byte, n)} }

// NewPinnedBuf allocates page-locked host memory (cudaHostAlloc analogue).
func NewPinnedBuf(n int64) *HostBuf {
	return &HostBuf{Data: make([]byte, n), Pinned: true}
}

// WrapHost wraps an existing host slice as pageable memory — the situation
// Dedup's realloc'd buffers are in, which prevents async copies.
func WrapHost(data []byte) *HostBuf { return &HostBuf{Data: data} }
