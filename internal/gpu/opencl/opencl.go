// Package opencl is an OpenCL-flavoured facade over the device model in
// internal/gpu. It mirrors the host API workflow the paper describes
// (§III-E): discover devices, create kernels, manage buffers and command
// queues, enqueue work, collect results via events.
//
// The facade reproduces the OpenCL sharp edge the paper calls out in §IV-A:
// cl_kernel objects are *not thread-safe* (argument state lives inside the
// kernel object), so each simulated CPU thread — or each in-flight stream
// item — needs its own Kernel instance. Using one Kernel from two processes
// fails the simulation with a descriptive error.
package opencl

import (
	"errors"
	"fmt"
	"time"

	"streamgpu/internal/des"
	"streamgpu/internal/gpu"
)

// ErrNoDevices is returned when no device is visible (CL_DEVICE_NOT_FOUND).
// Callers are expected to treat it as "run the CPU path", not as fatal.
var ErrNoDevices = errors.New("opencl: no devices")

// Context owns devices and buffers, like a cl_context.
type Context struct {
	sim     *des.Sim
	devices []*gpu.Device
	tel     *ctxTelem
}

// CreateContext builds a context over the discovered devices. With no
// devices it returns ErrNoDevices so the caller can fall back to the CPU
// path instead of crashing.
func CreateContext(sim *des.Sim, devices ...*gpu.Device) (*Context, error) {
	if len(devices) == 0 {
		return nil, ErrNoDevices
	}
	return &Context{sim: sim, devices: devices}, nil
}

// Devices lists the context's devices (clGetDeviceIDs analogue).
func (c *Context) Devices() []*gpu.Device { return c.devices }

// CommandQueue is a cl_command_queue: an in-order queue on one device.
type CommandQueue struct {
	s   *gpu.Stream
	dev *gpu.Device
	tel *ctxTelem
}

// CreateCommandQueue creates an in-order command queue on device id.
func (c *Context) CreateCommandQueue(id int) *CommandQueue {
	d := c.devices[id]
	return &CommandQueue{s: d.NewStream(""), dev: d, tel: c.tel}
}

// Device reports the queue's device.
func (q *CommandQueue) Device() *gpu.Device { return q.dev }

// Buffer is a cl_mem device allocation.
type Buffer struct {
	buf *gpu.Buf
}

// CreateBuffer allocates device memory on device id (clCreateBuffer). A nil
// error mirrors CL_SUCCESS; exhaustion returns gpu.ErrOutOfMemory, the
// failure the paper hit with 10 MB batches.
func (c *Context) CreateBuffer(id int, n int64) (*Buffer, error) {
	b, err := c.devices[id].Malloc(n)
	if err != nil {
		return nil, err
	}
	return &Buffer{buf: b}, nil
}

// Release frees the buffer (clReleaseMemObject).
func (b *Buffer) Release() { b.buf.Free() }

// Raw exposes the underlying device buffer for kernel argument binding.
func (b *Buffer) Raw() *gpu.Buf { return b.buf }

// Event is a cl_event.
type Event struct {
	ev *des.Event
}

// Kernel is a cl_kernel: a device function plus its *mutable* argument
// state. Argument state is why cl_kernel objects are not thread-safe; the
// facade enforces single-process ownership.
type Kernel struct {
	spec  *gpu.KernelSpec
	args  []any
	owner *des.Proc
}

// CreateKernel instantiates a kernel object from "program source" — here a
// KernelSpec (clCreateKernel analogue). Create one per thread or per stream
// item; sharing across processes is an error.
func CreateKernel(spec *gpu.KernelSpec, nargs int) *Kernel {
	return &Kernel{spec: spec, args: make([]any, nargs)}
}

// claim enforces the single-owner rule.
func (k *Kernel) claim(p *des.Proc) {
	if k.owner == nil {
		k.owner = p
		return
	}
	if k.owner != p {
		panic(fmt.Sprintf("opencl: cl_kernel %q used from process %q but owned by %q: kernel objects are not thread-safe (allocate one per thread)",
			k.spec.Name, p.Name(), k.owner.Name()))
	}
}

// SetArg stores argument i (clSetKernelArg).
func (k *Kernel) SetArg(p *des.Proc, i int, v any) {
	k.claim(p)
	if i < 0 || i >= len(k.args) {
		panic(fmt.Sprintf("opencl: SetArg index %d out of %d", i, len(k.args)))
	}
	k.args[i] = v
}

// CommandOverhead is the host-side cost of submitting one OpenCL command.
// OpenCL's command machinery is heavier than CUDA's stream calls; the
// paper's measurements consistently show CUDA a few percent ahead, and in
// command-heavy workloads (Dedup's per-block kernels) the gap widens.
//
// StagingBwFactor scales pageable-memory transfer times: the runtime
// bounces them through an internal pinned buffer (an extra host memcpy),
// keeping them asynchronous — unlike CUDA — but costing bandwidth.
const CommandOverhead = 40 * time.Microsecond

// StagingBwFactor is the slowdown of staged pageable transfers.
const StagingBwFactor = 1.9

// EnqueueWriteBuffer enqueues host→device; blocking forces the call to wait
// (CL_TRUE). Unlike CUDA's MemcpyAsync, a non-blocking OpenCL transfer
// stays asynchronous even from pageable host memory — the runtime stages
// it — which is why the paper's 2×-memory-space optimization helps the
// OpenCL Dedup but not the CUDA one (§V-B): the bandwidth is pageable
// either way, but only OpenCL keeps the host thread free to overlap.
func (q *CommandQueue) EnqueueWriteBuffer(p *des.Proc, dst *Buffer, dOff int64, src *gpu.HostBuf, sOff, n int64, blocking bool) *Event {
	p.Wait(CommandOverhead)
	var ev *des.Event
	if src.Pinned {
		ev = q.s.CopyH2D(p, dst.buf, dOff, src, sOff, n)
	} else {
		ev = q.s.CopyH2DStaged(p, dst.buf, dOff, src, sOff, n, StagingBwFactor)
		if q.tel != nil {
			q.tel.staged.Inc()
		}
	}
	if q.tel != nil {
		q.tel.writes.Inc()
	}
	if blocking {
		ev.Wait(p)
	}
	return &Event{ev: ev}
}

// EnqueueReadBuffer enqueues device→host.
func (q *CommandQueue) EnqueueReadBuffer(p *des.Proc, dst *gpu.HostBuf, dOff int64, src *Buffer, sOff, n int64, blocking bool) *Event {
	p.Wait(CommandOverhead)
	var ev *des.Event
	if dst.Pinned {
		ev = q.s.CopyD2H(p, dst, dOff, src.buf, sOff, n)
	} else {
		ev = q.s.CopyD2HStaged(p, dst, dOff, src.buf, sOff, n, StagingBwFactor)
		if q.tel != nil {
			q.tel.staged.Inc()
		}
	}
	if q.tel != nil {
		q.tel.reads.Inc()
	}
	if blocking {
		ev.Wait(p)
	}
	return &Event{ev: ev}
}

// EnqueueCopyBuffer enqueues a device-to-device copy
// (clEnqueueCopyBuffer): asynchronous, no host involvement.
func (q *CommandQueue) EnqueueCopyBuffer(p *des.Proc, src *Buffer, sOff int64, dst *Buffer, dOff, n int64) *Event {
	p.Wait(CommandOverhead)
	return &Event{ev: q.s.CopyD2D(p, dst.buf, dOff, src.buf, sOff, n)}
}

// EnqueueNDRangeKernel launches the kernel over globalSize work-items in
// workgroups of localSize (1-D NDRange, the shape both applications use).
// The kernel's current argument state is snapshotted at enqueue, as the
// OpenCL spec requires.
func (q *CommandQueue) EnqueueNDRangeKernel(p *des.Proc, k *Kernel, globalSize, localSize int) *Event {
	return q.enqueue(p, k, gpu.Grid1D(globalSize, localSize))
}

// EnqueueNDRangeKernel2D launches over a 2-D NDRange: (gx, gy) work-items
// in (lx, ly) work-groups.
func (q *CommandQueue) EnqueueNDRangeKernel2D(p *des.Proc, k *Kernel, gx, gy, lx, ly int) *Event {
	return q.enqueue(p, k, gpu.Grid2D(gx, gy, lx, ly))
}

func (q *CommandQueue) enqueue(p *des.Proc, k *Kernel, g gpu.Grid) *Event {
	k.claim(p)
	for i, a := range k.args {
		if a == nil {
			panic(fmt.Sprintf("opencl: kernel %q launched with unset arg %d", k.spec.Name, i))
		}
	}
	p.Wait(CommandOverhead)
	if q.tel != nil {
		q.tel.kernels.Inc()
	}
	ev := q.s.Launch(p, k.spec.Bind(k.args...), g)
	return &Event{ev: ev}
}

// EnqueueMarker returns an event that fires when all previously enqueued
// commands complete (clEnqueueMarker).
func (q *CommandQueue) EnqueueMarker(p *des.Proc) *Event {
	return &Event{ev: q.s.Record(p)}
}

// WaitForEvents blocks until every listed event has completed
// (clWaitForEvents).
func WaitForEvents(p *des.Proc, events ...*Event) {
	for _, e := range events {
		e.ev.Wait(p)
	}
}

// Finish blocks until the queue has drained (clFinish).
func (q *CommandQueue) Finish(p *des.Proc) { q.s.Synchronize(p) }
