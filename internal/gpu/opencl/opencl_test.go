package opencl

import (
	"strings"
	"testing"

	"streamgpu/internal/des"
	"streamgpu/internal/gpu"
)

// addSpec: out[i] = in[i] + k, with get_global_id-style indexing.
var addSpec = &gpu.KernelSpec{
	Name: "addk",
	Body: func(t gpu.Thread, args []any) int64 {
		in := args[0].(*gpu.Buf)
		out := args[1].(*gpu.Buf)
		k := args[2].(byte)
		n := args[3].(int)
		i := t.GlobalX() // get_global_id(0)
		if i >= n {
			return gpu.ExitCost
		}
		out.Bytes()[i] = in.Bytes()[i] + k
		return 25
	},
}

func newCtx(t *testing.T, nDev int) (*des.Sim, *Context) {
	t.Helper()
	sim := des.New()
	devs := make([]*gpu.Device, nDev)
	for i := range devs {
		devs[i] = gpu.NewDevice(sim, gpu.TitanXPSpec(), i)
	}
	ctx, err := CreateContext(sim, devs...)
	if err != nil {
		t.Fatalf("CreateContext: %v", err)
	}
	return sim, ctx
}

func TestWorkflowRoundTrip(t *testing.T) {
	const n = 300
	sim, ctx := newCtx(t, 1)
	in := gpu.NewPinnedBuf(n)
	out := gpu.NewPinnedBuf(n)
	for i := range in.Data {
		in.Data[i] = byte(i)
	}
	sim.Spawn("host", func(p *des.Proc) {
		q := ctx.CreateCommandQueue(0)
		din, err := ctx.CreateBuffer(0, n)
		if err != nil {
			t.Error(err)
			return
		}
		dout, err := ctx.CreateBuffer(0, n)
		if err != nil {
			t.Error(err)
			return
		}
		k := CreateKernel(addSpec, 4)
		k.SetArg(p, 0, din.Raw())
		k.SetArg(p, 1, dout.Raw())
		k.SetArg(p, 2, byte(7))
		k.SetArg(p, 3, n)
		q.EnqueueWriteBuffer(p, din, 0, in, 0, n, false)
		ev := q.EnqueueNDRangeKernel(p, k, 384, 128)
		q.EnqueueReadBuffer(p, out, 0, dout, 0, n, false)
		WaitForEvents(p, ev)
		q.Finish(p)
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range out.Data {
		if out.Data[i] != byte(i)+7 {
			t.Fatalf("out[%d] = %d, want %d", i, out.Data[i], byte(i)+7)
		}
	}
}

func TestKernelNotThreadSafe(t *testing.T) {
	// The paper: "The cl_kernel objects of OpenCL library are not
	// thread-safe and must be allocated for each thread."
	sim, ctx := newCtx(t, 1)
	k := CreateKernel(addSpec, 4)
	sim.Spawn("t0", func(p *des.Proc) {
		k.SetArg(p, 2, byte(1))
	})
	sim.Spawn("t1", func(p *des.Proc) {
		p.Wait(1)
		k.SetArg(p, 2, byte(2)) // second thread: must fail
	})
	_ = ctx
	_, err := sim.Run()
	if err == nil {
		t.Fatal("sharing a cl_kernel across threads should fail the simulation")
	}
	if !strings.Contains(err.Error(), "not thread-safe") {
		t.Errorf("error should explain thread safety, got: %v", err)
	}
}

func TestKernelPerThreadIsFine(t *testing.T) {
	sim, ctx := newCtx(t, 1)
	for i := 0; i < 3; i++ {
		sim.Spawn("t", func(p *des.Proc) {
			q := ctx.CreateCommandQueue(0)
			d, _ := ctx.CreateBuffer(0, 64)
			k := CreateKernel(addSpec, 4) // one kernel object per thread
			k.SetArg(p, 0, d.Raw())
			k.SetArg(p, 1, d.Raw())
			k.SetArg(p, 2, byte(1))
			k.SetArg(p, 3, 64)
			q.EnqueueNDRangeKernel(p, k, 64, 64)
			q.Finish(p)
		})
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnsetArgPanics(t *testing.T) {
	sim, ctx := newCtx(t, 1)
	sim.Spawn("t", func(p *des.Proc) {
		q := ctx.CreateCommandQueue(0)
		k := CreateKernel(addSpec, 4)
		k.SetArg(p, 0, nil)
		q.EnqueueNDRangeKernel(p, k, 64, 64)
	})
	if _, err := sim.Run(); err == nil {
		t.Fatal("launching with unset args should fail")
	}
}

func TestArgsSnapshotAtEnqueue(t *testing.T) {
	// Changing an arg after enqueue must not affect the in-flight launch.
	const n = 64
	sim, ctx := newCtx(t, 1)
	out := gpu.NewPinnedBuf(n)
	sim.Spawn("host", func(p *des.Proc) {
		q := ctx.CreateCommandQueue(0)
		din, _ := ctx.CreateBuffer(0, n)
		dout, _ := ctx.CreateBuffer(0, n)
		k := CreateKernel(addSpec, 4)
		k.SetArg(p, 0, din.Raw())
		k.SetArg(p, 1, dout.Raw())
		k.SetArg(p, 2, byte(5))
		k.SetArg(p, 3, n)
		ev := q.EnqueueNDRangeKernel(p, k, n, 64)
		k.SetArg(p, 2, byte(99)) // too late for the first launch
		WaitForEvents(p, ev)
		q.EnqueueReadBuffer(p, out, 0, dout, 0, n, true)
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range out.Data {
		if out.Data[i] != 5 {
			t.Fatalf("out[%d] = %d, want 5 (arg snapshot violated)", i, out.Data[i])
		}
	}
}

func TestOutOfMemory(t *testing.T) {
	sim, ctx := newCtx(t, 1)
	spec := gpu.TitanXPSpec()
	sim.Spawn("host", func(p *des.Proc) {
		if _, err := ctx.CreateBuffer(0, spec.GlobalMemBytes+1); err == nil {
			t.Error("allocating more than device memory should fail")
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockingWrite(t *testing.T) {
	const n = 1 << 20
	sim, ctx := newCtx(t, 1)
	pinned := gpu.NewPinnedBuf(n)
	sim.Spawn("host", func(p *des.Proc) {
		q := ctx.CreateCommandQueue(0)
		d, _ := ctx.CreateBuffer(0, n)
		start := p.Now()
		q.EnqueueWriteBuffer(p, d, 0, pinned, 0, n, true) // CL_TRUE
		if p.Now() <= start {
			t.Error("blocking write should advance virtual time")
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoQueuesTwoDevices(t *testing.T) {
	const n = 1 << 16
	sim, ctx := newCtx(t, 2)
	host := gpu.NewPinnedBuf(n)
	sim.Spawn("host", func(p *des.Proc) {
		for g := 0; g < 2; g++ {
			q := ctx.CreateCommandQueue(g)
			d, _ := ctx.CreateBuffer(g, n)
			k := CreateKernel(addSpec, 4)
			k.SetArg(p, 0, d.Raw())
			k.SetArg(p, 1, d.Raw())
			k.SetArg(p, 2, byte(1))
			k.SetArg(p, 3, n)
			q.EnqueueWriteBuffer(p, d, 0, host, 0, n, false)
			q.EnqueueNDRangeKernel(p, k, n, 128)
			q.Finish(p)
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 2; g++ {
		if ctx.Devices()[g].Stats().KernelsLaunched != 1 {
			t.Errorf("device %d kernels = %d, want 1", g, ctx.Devices()[g].Stats().KernelsLaunched)
		}
	}
}

func TestEnqueueCopyBuffer(t *testing.T) {
	const n = 96
	sim, ctx := newCtx(t, 1)
	in := gpu.NewPinnedBuf(n)
	out := gpu.NewPinnedBuf(n)
	for i := range in.Data {
		in.Data[i] = byte(200 - i)
	}
	sim.Spawn("host", func(p *des.Proc) {
		q := ctx.CreateCommandQueue(0)
		a, _ := ctx.CreateBuffer(0, n)
		b, _ := ctx.CreateBuffer(0, n)
		q.EnqueueWriteBuffer(p, a, 0, in, 0, n, false)
		q.EnqueueCopyBuffer(p, a, 0, b, 0, n)
		q.EnqueueReadBuffer(p, out, 0, b, 0, n, true)
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range out.Data {
		if out.Data[i] != byte(200-i) {
			t.Fatalf("out[%d] = %d after EnqueueCopyBuffer", i, out.Data[i])
		}
	}
}
