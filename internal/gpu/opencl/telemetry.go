package opencl

import (
	"streamgpu/internal/telemetry"
)

// ctxTelem counts host-API activity — the facade-level view complementing
// the device-level engine metrics in internal/gpu.
type ctxTelem struct {
	writes  *telemetry.Counter
	reads   *telemetry.Counter
	kernels *telemetry.Counter
	staged  *telemetry.Counter
}

// SetTelemetry attaches a metrics registry to the context. Call it before
// creating command queues. Metrics:
//
//	opencl_enqueues_total          enqueued commands ({op: write|read|ndrange})
//	opencl_staged_transfers_total  pageable transfers bounced through the
//	                               runtime's staging buffer (slower, but still
//	                               asynchronous — OpenCL's edge over CUDA here)
//
// nil reg turns instrumentation off.
func (c *Context) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		c.tel = nil
		return
	}
	c.tel = &ctxTelem{
		writes:  reg.Counter("opencl_enqueues_total", telemetry.Labels{"op": "write"}),
		reads:   reg.Counter("opencl_enqueues_total", telemetry.Labels{"op": "read"}),
		kernels: reg.Counter("opencl_enqueues_total", telemetry.Labels{"op": "ndrange"}),
		staged:  reg.Counter("opencl_staged_transfers_total", nil),
	}
}
