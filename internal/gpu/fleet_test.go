package gpu

import (
	"math"
	"strings"
	"testing"
)

func TestParseFleetExpandsAndModifies(t *testing.T) {
	fleet, err := ParseFleet("titanxp*2, titanxp@clock=0.6@gen=2, titanxp@sms=15@mem=6")
	if err != nil {
		t.Fatalf("ParseFleet: %v", err)
	}
	if len(fleet) != 4 {
		t.Fatalf("devices = %d, want 4", len(fleet))
	}
	stock := TitanXPSpec()
	if fleet[0].SMs != stock.SMs || fleet[1].ClockHz != stock.ClockHz {
		t.Fatalf("stock entries modified: %+v", fleet[0])
	}
	derated := fleet[2]
	if got, want := derated.ClockHz, stock.ClockHz*0.6; math.Abs(got-want) > 1 {
		t.Fatalf("clock = %v, want %v", got, want)
	}
	if got, want := derated.H2DPinnedBps, stock.H2DPinnedBps/2; math.Abs(got-want) > 1 {
		t.Fatalf("gen2 H2D = %v, want %v", got, want)
	}
	if !strings.Contains(derated.Name, "clock=0.6") || !strings.Contains(derated.Name, "gen=2") {
		t.Fatalf("derated name = %q", derated.Name)
	}
	small := fleet[3]
	if small.SMs != 15 || small.GlobalMemBytes != 6<<30 {
		t.Fatalf("small part = %d SMs, %d bytes", small.SMs, small.GlobalMemBytes)
	}
}

func TestParseFleetNames(t *testing.T) {
	fleet, err := ParseFleet("titanxp@name=left,titanxp@name=right")
	if err != nil {
		t.Fatalf("ParseFleet: %v", err)
	}
	if fleet[0].Name != "left" || fleet[1].Name != "right" {
		t.Fatalf("names = %q, %q", fleet[0].Name, fleet[1].Name)
	}
}

func TestParseFleetRejects(t *testing.T) {
	cases := []struct{ name, spec string }{
		{"empty", ""},
		{"empty entry", "titanxp,,titanxp"},
		{"unknown kind", "voodoo2"},
		{"zero count", "titanxp*0"},
		{"negative count", "titanxp*-3"},
		{"huge count", "titanxp*100000"},
		{"cap overflow across entries", "titanxp*40,titanxp*40"},
		{"garbage count", "titanxp*many"},
		{"overflow clock", "titanxp@clock=1e308"},
		{"nan clock", "titanxp@clock=NaN"},
		{"zero clock", "titanxp@clock=0"},
		{"negative clock", "titanxp@clock=-1"},
		{"bad gen", "titanxp@gen=9"},
		{"bad sms", "titanxp@sms=0"},
		{"bad mem", "titanxp@mem=99999"},
		{"bare modifier", "titanxp@clock"},
		{"empty value", "titanxp@clock="},
		{"unknown modifier", "titanxp@volts=1.2"},
		{"duplicate ids", "titanxp@name=a,titanxp@name=a"},
		{"named count", "titanxp*2@name=a"},
		{"long name", "titanxp@name=" + strings.Repeat("x", 40)},
	}
	for _, tc := range cases {
		if _, err := ParseFleet(tc.spec); err == nil {
			t.Errorf("%s: ParseFleet(%q) accepted", tc.name, tc.spec)
		}
	}
}

func TestServiceSecondsHintOrdersSpecs(t *testing.T) {
	const n = 1 << 20
	stock := TitanXPSpec()
	slowClock := stock.Derated(0.5)
	narrowLink := stock.WithPCIeGen(1)
	tiny := stock.WithSMs(3)
	base := stock.ServiceSecondsHint(n)
	for name, spec := range map[string]DeviceSpec{
		"derated clock": slowClock, "narrow link": narrowLink, "few SMs": tiny,
	} {
		if h := spec.ServiceSecondsHint(n); h <= base {
			t.Errorf("%s hint %v not slower than stock %v", name, h, base)
		}
	}
	// The hint must scale with batch size, and never be degenerate.
	if small := stock.ServiceSecondsHint(4 << 10); small >= base || small <= 0 {
		t.Errorf("4K hint %v vs 1M hint %v", small, base)
	}
}

// FuzzParseFleet feeds the -fleet parser hostile specs: whatever happens,
// it must return an error or a bounded, usable fleet — never panic, never
// a zero-device or over-cap result, never a spec a simulation would divide
// by zero on.
func FuzzParseFleet(f *testing.F) {
	f.Add("")
	f.Add("titanxp")
	f.Add("titanxp*2,titanxp@clock=0.6@gen=2,titanxp@sms=15")
	f.Add("titanxp*999999999999999999999")
	f.Add("titanxp@name=a,titanxp@name=a")
	f.Add("titanxp@clock=1e308")
	f.Add("titanxp@clock=-0")
	f.Add("titanxp@clock=+Inf")
	f.Add("titanxp@mem=-1")
	f.Add(",,,")
	f.Add("titanxp*" + strings.Repeat("9", 400))
	f.Add("titanxp@@@@")
	f.Add("titanxp@name=\x00\xff")
	f.Add("TITANXP")
	f.Fuzz(func(t *testing.T, spec string) {
		fleet, err := ParseFleet(spec)
		if err != nil {
			return
		}
		if len(fleet) == 0 || len(fleet) > MaxFleetDevices {
			t.Fatalf("ParseFleet(%q) = %d devices without error", spec, len(fleet))
		}
		for i, s := range fleet {
			if s.SMs <= 0 || s.ClockHz <= 0 || s.H2DPinnedBps <= 0 || s.GlobalMemBytes <= 0 {
				t.Fatalf("ParseFleet(%q) device %d degenerate: %+v", spec, i, s)
			}
			if h := s.ServiceSecondsHint(1 << 20); h <= 0 || math.IsNaN(h) || math.IsInf(h, 0) {
				t.Fatalf("ParseFleet(%q) device %d hint %v", spec, i, h)
			}
		}
	})
}
