// Package cuda is a CUDA-runtime-flavoured facade over the device model in
// internal/gpu. It mirrors the API surface and the sharp edges §IV of the
// paper runs into:
//
//   - a per-thread "current device" selected with SetDevice (the paper:
//     "the cudaSetDevice function also has thread-side effects, thus, it
//     must be called after initializing each thread");
//   - MemcpyAsync that is only truly asynchronous for page-locked host
//     memory — with pageable memory the calling thread blocks for the whole
//     transfer, which is why Dedup's realloc'd buffers defeat the 2×-memory
//     overlap optimization;
//   - streams (in-order queues) and events for dependency management.
//
// "Threads" here are simulated CPU threads: des.Proc processes.
package cuda

import (
	"errors"
	"fmt"

	"streamgpu/internal/des"
	"streamgpu/internal/gpu"
)

// ErrNoDevices is returned when no GPU is visible (cudaErrorNoDevice).
// Callers are expected to treat it as "run the CPU path", not as fatal.
var ErrNoDevices = errors.New("cuda: no devices")

// MemcpyKind selects a transfer direction, as in the CUDA runtime.
type MemcpyKind int

const (
	MemcpyHostToDevice MemcpyKind = iota
	MemcpyDeviceToHost
)

// Runtime is the CUDA runtime state for one simulation: the visible devices
// and each simulated CPU thread's current device.
type Runtime struct {
	sim     *des.Sim
	devices []*gpu.Device
	current map[*des.Proc]int
	tel     *rtTelem
}

// NewRuntime creates a runtime over the given devices (device 0 is the
// default current device for every thread, as in CUDA). With no devices it
// returns ErrNoDevices so the caller can fall back to the CPU path instead
// of crashing.
func NewRuntime(sim *des.Sim, devices ...*gpu.Device) (*Runtime, error) {
	if len(devices) == 0 {
		return nil, ErrNoDevices
	}
	return &Runtime{sim: sim, devices: devices, current: make(map[*des.Proc]int)}, nil
}

// DeviceCount reports the number of visible devices (cudaGetDeviceCount).
func (rt *Runtime) DeviceCount() int { return len(rt.devices) }

// SetDevice selects the current device for the calling thread
// (cudaSetDevice). The selection is per-thread state.
func (rt *Runtime) SetDevice(p *des.Proc, id int) error {
	if id < 0 || id >= len(rt.devices) {
		return fmt.Errorf("cuda: invalid device %d", id)
	}
	rt.current[p] = id
	return nil
}

// GetDevice reports the calling thread's current device (cudaGetDevice).
func (rt *Runtime) GetDevice(p *des.Proc) int { return rt.current[p] }

// dev resolves the calling thread's current device.
func (rt *Runtime) dev(p *des.Proc) *gpu.Device { return rt.devices[rt.current[p]] }

// Device exposes the underlying device by id, for inspection in tests.
func (rt *Runtime) Device(id int) *gpu.Device { return rt.devices[id] }

// Stream is a cudaStream_t analogue bound to the device that created it.
// Completion events of asynchronous work enqueued through the facade are
// retained on the stream, and the first failure among them becomes the
// stream's sticky error — surfaced by the synchronization calls, the way a
// cudaError_t from an async launch surfaces at the next cudaStreamSynchronize.
type Stream struct {
	s       *gpu.Stream
	dev     *gpu.Device
	pending []*des.Event
	err     error
}

// track retains an async operation's completion event until the next sync.
func (st *Stream) track(ev *des.Event) { st.pending = append(st.pending, ev) }

// fail records the stream's first error (sticky, as in CUDA).
func (st *Stream) fail(err error) {
	if st.err == nil && err != nil {
		st.err = err
	}
}

// drain waits out all retained events and returns the sticky error.
func (st *Stream) drain(p *des.Proc) error {
	evs := st.pending
	st.pending = nil
	st.fail(gpu.WaitErr(p, evs...))
	return st.err
}

// StreamCreate creates a stream on the calling thread's current device.
func (rt *Runtime) StreamCreate(p *des.Proc) *Stream {
	d := rt.dev(p)
	return &Stream{s: d.NewStream(""), dev: d}
}

// Event is a cudaEvent_t analogue.
type Event struct {
	ev *des.Event
}

// Malloc allocates device memory on the current device (cudaMalloc).
func (rt *Runtime) Malloc(p *des.Proc, n int64) (*gpu.Buf, error) {
	return rt.dev(p).Malloc(n)
}

// HostAlloc allocates page-locked host memory (cudaHostAlloc). Transfers
// from pinned memory run at full PCIe bandwidth and may proceed
// asynchronously.
func (rt *Runtime) HostAlloc(n int64) *gpu.HostBuf { return gpu.NewPinnedBuf(n) }

// MemcpyAsync enqueues a transfer on st. With pinned host memory the call
// returns immediately and the copy can overlap with kernels; with pageable
// memory the driver stages the transfer: the calling thread blocks until
// the copy completes and the copy excludes concurrent kernel execution —
// exactly the CUDA behaviour that makes `realloc`-managed buffers (as in
// Dedup) unable to overlap, defeating the 2×-memory-space optimization.
func (rt *Runtime) MemcpyAsync(p *des.Proc, dbuf *gpu.Buf, dOff int64, hbuf *gpu.HostBuf, hOff, n int64, kind MemcpyKind, st *Stream) {
	rt.countMemcpy(kind, !hbuf.Pinned)
	var ev *des.Event
	switch kind {
	case MemcpyHostToDevice:
		if hbuf.Pinned {
			ev = st.s.CopyH2D(p, dbuf, dOff, hbuf, hOff, n)
		} else {
			ev = st.s.CopyH2DExclusive(p, dbuf, dOff, hbuf, hOff, n)
		}
	case MemcpyDeviceToHost:
		if hbuf.Pinned {
			ev = st.s.CopyD2H(p, hbuf, hOff, dbuf, dOff, n)
		} else {
			ev = st.s.CopyD2HExclusive(p, hbuf, hOff, dbuf, dOff, n)
		}
	default:
		panic(fmt.Sprintf("cuda: bad memcpy kind %d", kind))
	}
	if hbuf.Pinned {
		st.track(ev)
	} else {
		// The staged transfer completes before the call returns; record any
		// injected fault on the stream now.
		st.fail(gpu.WaitErr(p, ev))
	}
}

// MemcpyD2DAsync enqueues an on-device copy (cudaMemcpyDeviceToDevice):
// always asynchronous, no host memory involved.
func (rt *Runtime) MemcpyD2DAsync(p *des.Proc, dst *gpu.Buf, dOff int64, src *gpu.Buf, sOff, n int64, st *Stream) {
	st.track(st.s.CopyD2D(p, dst, dOff, src, sOff, n))
}

// Memcpy is the synchronous transfer (cudaMemcpy): it blocks the calling
// thread regardless of memory kind and returns the transfer's outcome.
func (rt *Runtime) Memcpy(p *des.Proc, dbuf *gpu.Buf, dOff int64, hbuf *gpu.HostBuf, hOff, n int64, kind MemcpyKind, st *Stream) error {
	rt.countMemcpy(kind, false)
	var ev *des.Event
	switch kind {
	case MemcpyHostToDevice:
		ev = st.s.CopyH2D(p, dbuf, dOff, hbuf, hOff, n)
	case MemcpyDeviceToHost:
		ev = st.s.CopyD2H(p, hbuf, hOff, dbuf, dOff, n)
	default:
		panic(fmt.Sprintf("cuda: bad memcpy kind %d", kind))
	}
	err := gpu.WaitErr(p, ev)
	st.fail(err)
	return err
}

// LaunchKernel launches spec<<<grid>>>(args...) on st (cudaLaunchKernel).
// Launch failures are asynchronous; they surface at the next sync call.
func (rt *Runtime) LaunchKernel(p *des.Proc, spec *gpu.KernelSpec, g gpu.Grid, st *Stream, args ...any) {
	if rt.tel != nil {
		rt.tel.launches.Inc()
	}
	st.track(st.s.Launch(p, spec.Bind(args...), g))
}

// EventRecord records an event after all work currently enqueued on st.
func (rt *Runtime) EventRecord(p *des.Proc, st *Stream) *Event {
	return &Event{ev: st.s.Record(p)}
}

// EventSynchronize blocks the calling thread until e has occurred
// (cudaEventSynchronize) and returns the event's outcome.
func (rt *Runtime) EventSynchronize(p *des.Proc, e *Event) error {
	return gpu.WaitErr(p, e.ev)
}

// StreamSynchronize blocks until all work enqueued on st has completed
// (cudaStreamSynchronize) and returns the stream's sticky error: the first
// failure among the async operations synchronized, including injected
// faults that would otherwise be lost with their completion events.
func (rt *Runtime) StreamSynchronize(p *des.Proc, st *Stream) error {
	st.s.Synchronize(p)
	return st.drain(p)
}

// DeviceSynchronize blocks until all streams the thread created on its
// current device are idle, returning the first sticky error among them.
// The facade tracks only streams it created.
func (rt *Runtime) DeviceSynchronize(p *des.Proc, streams ...*Stream) error {
	d := rt.dev(p)
	var first error
	for _, st := range streams {
		if st.dev == d {
			st.s.Synchronize(p)
			if err := st.drain(p); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
