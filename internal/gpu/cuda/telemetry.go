package cuda

import (
	"streamgpu/internal/telemetry"
)

// rtTelem counts host-API activity — the facade-level view (launches issued,
// memcpys requested, pageable degradations) that complements the device-level
// engine metrics in internal/gpu.
type rtTelem struct {
	launches         *telemetry.Counter
	memcpyH2D        *telemetry.Counter
	memcpyD2H        *telemetry.Counter
	pageableBlocking *telemetry.Counter
}

// SetTelemetry attaches a metrics registry to the runtime:
//
//	cuda_kernel_launches_total    LaunchKernel calls
//	cuda_memcpys_total            Memcpy/MemcpyAsync calls ({dir})
//	cuda_pageable_blocking_total  MemcpyAsync calls that degraded to blocking
//	                              because the host buffer was pageable — the
//	                              paper's overlap-defeating path
//
// nil reg turns instrumentation off.
func (rt *Runtime) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		rt.tel = nil
		return
	}
	rt.tel = &rtTelem{
		launches:         reg.Counter("cuda_kernel_launches_total", nil),
		memcpyH2D:        reg.Counter("cuda_memcpys_total", telemetry.Labels{"dir": "h2d"}),
		memcpyD2H:        reg.Counter("cuda_memcpys_total", telemetry.Labels{"dir": "d2h"}),
		pageableBlocking: reg.Counter("cuda_pageable_blocking_total", nil),
	}
}

// countMemcpy records one transfer request.
func (rt *Runtime) countMemcpy(kind MemcpyKind, pageableBlocked bool) {
	if rt.tel == nil {
		return
	}
	if kind == MemcpyHostToDevice {
		rt.tel.memcpyH2D.Inc()
	} else {
		rt.tel.memcpyD2H.Inc()
	}
	if pageableBlocked {
		rt.tel.pageableBlocking.Inc()
	}
}
