package cuda

import (
	"testing"

	"streamgpu/internal/des"
	"streamgpu/internal/gpu"
)

// scaleSpec is the shared test kernel: out[i] = in[i] * 2.
var scaleSpec = &gpu.KernelSpec{
	Name: "scale2",
	Body: func(t gpu.Thread, args []any) int64 {
		in := args[0].(*gpu.Buf)
		out := args[1].(*gpu.Buf)
		n := args[2].(int)
		i := t.GlobalX()
		if i >= n {
			return gpu.ExitCost
		}
		out.Bytes()[i] = in.Bytes()[i] * 2
		return 30
	},
}

func newRuntime(t *testing.T, nDev int) (*des.Sim, *Runtime) {
	t.Helper()
	sim := des.New()
	devs := make([]*gpu.Device, nDev)
	for i := range devs {
		devs[i] = gpu.NewDevice(sim, gpu.TitanXPSpec(), i)
	}
	rt, err := NewRuntime(sim, devs...)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	return sim, rt
}

func TestMemcpyLaunchRoundTrip(t *testing.T) {
	const n = 256
	sim, rt := newRuntime(t, 1)
	in := rt.HostAlloc(n)
	out := rt.HostAlloc(n)
	for i := range in.Data {
		in.Data[i] = byte(i % 100)
	}
	sim.Spawn("host", func(p *des.Proc) {
		st := rt.StreamCreate(p)
		din, err := rt.Malloc(p, n)
		if err != nil {
			t.Error(err)
			return
		}
		dout, err := rt.Malloc(p, n)
		if err != nil {
			t.Error(err)
			return
		}
		rt.MemcpyAsync(p, din, 0, in, 0, n, MemcpyHostToDevice, st)
		rt.LaunchKernel(p, scaleSpec, gpu.Grid1D(n, 64), st, din, dout, n)
		rt.MemcpyAsync(p, dout, 0, out, 0, n, MemcpyDeviceToHost, st)
		if err := rt.StreamSynchronize(p, st); err != nil {
			t.Error(err)
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range out.Data {
		if out.Data[i] != byte(i%100)*2 {
			t.Fatalf("out[%d] = %d, want %d", i, out.Data[i], byte(i%100)*2)
		}
	}
}

func TestSetDevicePerThread(t *testing.T) {
	sim, rt := newRuntime(t, 2)
	sim.Spawn("t0", func(p *des.Proc) {
		if rt.GetDevice(p) != 0 {
			t.Errorf("default device = %d, want 0", rt.GetDevice(p))
		}
		if err := rt.SetDevice(p, 1); err != nil {
			t.Error(err)
		}
		if rt.GetDevice(p) != 1 {
			t.Errorf("after SetDevice(1): %d", rt.GetDevice(p))
		}
	})
	sim.Spawn("t1", func(p *des.Proc) {
		p.Wait(1)
		// Thread-side effects: t0's SetDevice must not leak here.
		if rt.GetDevice(p) != 0 {
			t.Errorf("other thread sees device %d, want 0 (SetDevice is per-thread)", rt.GetDevice(p))
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSetDeviceInvalid(t *testing.T) {
	sim, rt := newRuntime(t, 1)
	sim.Spawn("t", func(p *des.Proc) {
		if err := rt.SetDevice(p, 3); err == nil {
			t.Error("SetDevice(3) with 1 device should fail")
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPageableMemcpyAsyncBlocks(t *testing.T) {
	// With pageable memory, MemcpyAsync must not return before the
	// transfer completes: virtual time advances across the call.
	const n = 4 << 20
	sim, rt := newRuntime(t, 1)
	pageable := gpu.NewHostBuf(n)
	var elapsed des.Time
	sim.Spawn("host", func(p *des.Proc) {
		st := rt.StreamCreate(p)
		d, _ := rt.Malloc(p, n)
		start := p.Now()
		rt.MemcpyAsync(p, d, 0, pageable, 0, n, MemcpyHostToDevice, st)
		elapsed = p.Now() - start
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed == 0 {
		t.Error("pageable MemcpyAsync returned without blocking")
	}
}

func TestPinnedMemcpyAsyncReturnsImmediately(t *testing.T) {
	const n = 4 << 20
	sim, rt := newRuntime(t, 1)
	pinned := rt.HostAlloc(n)
	var elapsed des.Time
	sim.Spawn("host", func(p *des.Proc) {
		st := rt.StreamCreate(p)
		d, _ := rt.Malloc(p, n)
		start := p.Now()
		rt.MemcpyAsync(p, d, 0, pinned, 0, n, MemcpyHostToDevice, st)
		elapsed = p.Now() - start
		if err := rt.StreamSynchronize(p, st); err != nil {
			t.Error(err)
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 0 {
		t.Errorf("pinned MemcpyAsync should return immediately, took %v", elapsed)
	}
}

func TestEventRecordSynchronize(t *testing.T) {
	const n = 1 << 20
	sim, rt := newRuntime(t, 1)
	pinned := rt.HostAlloc(n)
	sim.Spawn("host", func(p *des.Proc) {
		st := rt.StreamCreate(p)
		d, _ := rt.Malloc(p, n)
		rt.MemcpyAsync(p, d, 0, pinned, 0, n, MemcpyHostToDevice, st)
		ev := rt.EventRecord(p, st)
		before := p.Now()
		if err := rt.EventSynchronize(p, ev); err != nil {
			t.Error(err)
		}
		if p.Now() <= before {
			t.Error("EventSynchronize should advance virtual time past the transfer")
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiGPURoundRobin(t *testing.T) {
	// The Fig. 1 multi-GPU pattern: one host thread, buffers assigned to
	// devices round-robin; both devices must end up doing work.
	const n = 1 << 16
	sim, rt := newRuntime(t, 2)
	host := rt.HostAlloc(n)
	sim.Spawn("host", func(p *des.Proc) {
		streams := make([]*Stream, 2)
		bufs := make([]*gpu.Buf, 2)
		for g := 0; g < 2; g++ {
			rt.SetDevice(p, g)
			streams[g] = rt.StreamCreate(p)
			bufs[g], _ = rt.Malloc(p, n)
		}
		for i := 0; i < 6; i++ {
			g := i % 2
			rt.SetDevice(p, g)
			rt.MemcpyAsync(p, bufs[g], 0, host, 0, n, MemcpyHostToDevice, streams[g])
			rt.LaunchKernel(p, scaleSpec, gpu.Grid1D(n, 128), streams[g], bufs[g], bufs[g], n)
		}
		for g := 0; g < 2; g++ {
			if err := rt.StreamSynchronize(p, streams[g]); err != nil {
				t.Error(err)
			}
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 2; g++ {
		if rt.Device(g).Stats().KernelsLaunched != 3 {
			t.Errorf("device %d launched %d kernels, want 3", g, rt.Device(g).Stats().KernelsLaunched)
		}
	}
}

func TestDeviceCount(t *testing.T) {
	_, rt := newRuntime(t, 2)
	if rt.DeviceCount() != 2 {
		t.Errorf("DeviceCount = %d", rt.DeviceCount())
	}
}

func TestMemcpyD2DAsync(t *testing.T) {
	const n = 128
	sim, rt := newRuntime(t, 1)
	in := rt.HostAlloc(n)
	out := rt.HostAlloc(n)
	for i := range in.Data {
		in.Data[i] = byte(i + 1)
	}
	sim.Spawn("host", func(p *des.Proc) {
		st := rt.StreamCreate(p)
		a, _ := rt.Malloc(p, n)
		b, _ := rt.Malloc(p, n)
		rt.MemcpyAsync(p, a, 0, in, 0, n, MemcpyHostToDevice, st)
		rt.MemcpyD2DAsync(p, b, 0, a, 0, n, st)
		rt.MemcpyAsync(p, b, 0, out, 0, n, MemcpyDeviceToHost, st)
		if err := rt.StreamSynchronize(p, st); err != nil {
			t.Error(err)
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range out.Data {
		if out.Data[i] != byte(i+1) {
			t.Fatalf("out[%d] = %d after D2D", i, out.Data[i])
		}
	}
}
