package gpu

import (
	"testing"

	"streamgpu/internal/des"
	"streamgpu/internal/fault"
	"streamgpu/internal/telemetry"
)

// TestDeviceTelemetry runs an instrumented round trip and checks the device
// metrics mirror Stats.
func TestDeviceTelemetry(t *testing.T) {
	const n = 4096
	reg := telemetry.New()
	host := NewPinnedBuf(n)
	out := NewPinnedBuf(n)

	sim := des.New()
	dev := NewDevice(sim, testSpec(), 0)
	dev.SetTelemetry(reg)
	sim.Spawn("host", func(p *des.Proc) {
		buf := mustMalloc(dev, n)
		defer buf.Free()
		st := dev.NewStream("s")
		evs := []*des.Event{
			st.CopyH2D(p, buf, 0, host, 0, n),
			st.Launch(p, incKernel(buf, n), Grid1D(n, 128)),
			st.CopyD2H(p, out, 0, buf, 0, n),
		}
		if err := WaitErr(p, evs...); err != nil {
			panic(err)
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}

	lbl := telemetry.Labels{"device": "gpu0"}
	if v := reg.Counter("gpu_h2d_bytes_total", lbl).Value(); v != n {
		t.Errorf("gpu_h2d_bytes_total = %d, want %d", v, n)
	}
	if v := reg.Counter("gpu_d2h_bytes_total", lbl).Value(); v != n {
		t.Errorf("gpu_d2h_bytes_total = %d, want %d", v, n)
	}
	if v := reg.Counter("gpu_kernels_launched_total", lbl).Value(); v != 1 {
		t.Errorf("gpu_kernels_launched_total = %d, want 1", v)
	}
	if v := reg.Histogram("gpu_kernel_seconds", nil, lbl).Count(); v != 1 {
		t.Errorf("gpu_kernel_seconds count = %d, want 1", v)
	}
	if v := reg.Histogram("gpu_kernel_launch_latency_seconds", nil, lbl).Count(); v != 1 {
		t.Errorf("launch latency count = %d, want 1", v)
	}
	if v := reg.Gauge("gpu_stream_outstanding_ops",
		telemetry.Labels{"device": "gpu0", "stream": "s"}).Value(); v != 0 {
		t.Errorf("outstanding ops after drain = %v, want 0", v)
	}
	// Serial single-stream work cannot overlap copy and compute.
	if ob := dev.Stats().OverlapBusy; ob != 0 {
		t.Errorf("OverlapBusy = %v for serial stream, want 0", ob)
	}
}

// TestOverlapAccounting drives two streams — one kernel-heavy, one
// copy-heavy — concurrently and checks OverlapBusy sees the concurrency,
// while an exclusive (pageable CUDA style) copy schedule records none.
func TestOverlapAccounting(t *testing.T) {
	const n = 1 << 20
	run := func(exclusive bool) des.Duration {
		sim := des.New()
		dev := NewDevice(sim, testSpec(), 0)
		host := NewPinnedBuf(n)
		sim.Spawn("host", func(p *des.Proc) {
			buf := mustMalloc(dev, n)
			defer buf.Free()
			sk := dev.NewStream("kern")
			sc := dev.NewStream("copy")
			var evs []*des.Event
			for i := 0; i < 4; i++ {
				evs = append(evs, sk.Launch(p, incKernel(buf, n), Grid1D(n, 256)))
				if exclusive {
					evs = append(evs, sc.CopyH2DExclusive(p, buf, 0, host, 0, n))
				} else {
					evs = append(evs, sc.CopyH2D(p, buf, 0, host, 0, n))
				}
			}
			if err := WaitErr(p, evs...); err != nil {
				panic(err)
			}
		})
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return dev.Stats().OverlapBusy
	}
	if ob := run(false); ob <= 0 {
		t.Errorf("pinned two-stream OverlapBusy = %v, want > 0", ob)
	}
	if ob := run(true); ob != 0 {
		t.Errorf("exclusive-copy OverlapBusy = %v, want 0", ob)
	}
}

// TestFaultTelemetry checks injector hits reach the fault counters.
func TestFaultTelemetry(t *testing.T) {
	reg := telemetry.New()
	const n = 64
	host := NewPinnedBuf(n)
	sim := des.New()
	dev := NewDevice(sim, testSpec(), 0)
	dev.SetTelemetry(reg)
	dev.SetFaultInjector(fault.New(fault.Config{Seed: 1, TransferRate: 1}))
	sim.Spawn("host", func(p *des.Proc) {
		buf := mustMalloc(dev, n)
		defer buf.Free()
		st := dev.NewStream("s")
		ev := st.CopyH2D(p, buf, 0, host, 0, n)
		if err := WaitErr(p, ev); err == nil {
			panic("expected injected fault")
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("gpu_faults_injected_total",
		telemetry.Labels{"device": "gpu0", "op": "transfer"}).Value(); v != 1 {
		t.Errorf("fault counter = %d, want 1", v)
	}
}
