// Package gpu models a CUDA-class GPU accelerator on top of the
// discrete-event kernel in internal/des.
//
// The model is both functional and timed:
//
//   - Functional: kernels are real Go functions executed once per simulated
//     GPU thread against real device-buffer bytes, so results are bit-exact
//     and testable (the Mandelbrot image, SHA-1 digests and LZSS matches
//     computed "on the GPU" are real).
//   - Timed: the virtual duration of every operation comes from a resource
//     model of the device — kernel-launch overhead, per-SM warp-issue
//     throughput with latency hiding, warp divergence (a warp costs as much
//     as its slowest thread), resident-thread/register occupancy limits, and
//     PCIe transfer engines with pinned vs pageable bandwidth.
//
// This reproduces the phenomena the paper's optimization ladder rests on:
// many small kernels underutilize the device (few resident warps per SM
// issue far below peak), batching restores occupancy, and copy/compute
// overlap requires page-locked memory plus multiple buffers.
package gpu

import (
	"fmt"
	"time"

	"streamgpu/internal/des"
	"streamgpu/internal/fault"
)

// DeviceSpec describes the modelled hardware. All Duration fields are
// virtual time.
type DeviceSpec struct {
	Name string

	// Compute geometry.
	SMs                     int   // streaming multiprocessors
	MaxResidentThreadsPerSM int   // resident-thread cap per SM
	WarpSize                int   // threads per warp
	RegistersPerSM          int   // 32-bit registers per SM
	SharedMemPerSM          int64 // bytes of shared memory per SM

	// Issue model: an SM with k resident warps issues
	// min(IssueWarpsPerCycle, k/DepLatencyCycles) warp-instructions per
	// cycle — few warps cannot hide instruction latency.
	ClockHz            float64
	IssueWarpsPerCycle float64
	DepLatencyCycles   float64

	// Overheads and transfers.
	KernelLaunchOverhead des.Duration // per kernel launch, device side
	HostLaunchOverhead   des.Duration // per launch, charged to the calling CPU thread
	GlobalMemBytes       int64
	DeviceMemBps         float64 // on-device copy bandwidth (D2D)
	H2DPinnedBps         float64
	D2HPinnedBps         float64
	H2DPageableBps       float64
	D2HPageableBps       float64
	CopyLatency          des.Duration // per-transfer fixed cost
}

// TitanXPSpec models the NVIDIA Titan XP (compute capability 6.1) used by
// the paper: 30 SMs, 2048 resident threads per SM (61,440 on the board),
// 64K registers and 96 KB shared memory per SM, 12 GB of global memory.
// Issue-model constants are calibrated in internal/bench so the paper's
// Fig. 1 optimization ladder lands in band (see DESIGN.md §5).
func TitanXPSpec() DeviceSpec {
	return DeviceSpec{
		Name:                    "TITAN Xp",
		SMs:                     30,
		MaxResidentThreadsPerSM: 2048,
		WarpSize:                32,
		RegistersPerSM:          64 * 1024,
		SharedMemPerSM:          96 * 1024,
		ClockHz:                 1.58e9,
		IssueWarpsPerCycle:      4,
		DepLatencyCycles:        7,
		KernelLaunchOverhead:    8 * time.Microsecond,
		HostLaunchOverhead:      4 * time.Microsecond,
		GlobalMemBytes:          12 << 30,
		DeviceMemBps:            350e9,
		H2DPinnedBps:            11.5e9,
		D2HPinnedBps:            11.5e9,
		H2DPageableBps:          5.5e9,
		D2HPageableBps:          5.5e9,
		CopyLatency:             9 * time.Microsecond,
	}
}

// MaxResidentThreads reports the board-wide resident thread capacity
// (the paper's 61,440 for the Titan XP).
func (s DeviceSpec) MaxResidentThreads() int {
	return s.SMs * s.MaxResidentThreadsPerSM
}

// Device is one simulated GPU. Create devices with NewDevice; all methods
// that can block take the calling process.
type Device struct {
	Spec DeviceSpec
	ID   int

	sim     *des.Sim
	name    string
	compute *des.Resource // kernel execution engine (serializes kernels)
	h2d     *des.Resource // host-to-device copy engine
	d2h     *des.Resource // device-to-host copy engine

	memUsed int64
	streams int

	// inj, when set, is consulted before every stream operation; injected
	// faults surface as error values on the operation's completion event.
	inj *fault.Injector

	// tel, when set, mirrors device activity into a metrics registry.
	tel *devTelem

	// Copy/compute overlap accounting (see markBusy/markIdle). Plain fields:
	// only simulation processes touch them, and the simulation is cooperative.
	computeHeld  int
	copyHeld     int
	overlapOpen  bool
	overlapStart des.Time

	stats Stats
}

// Stats aggregates device activity for utilization reports.
type Stats struct {
	KernelsLaunched int64
	KernelBusy      des.Duration // total virtual time the compute engine was held
	BytesH2D        int64
	BytesD2H        int64
	CopyBusyH2D     des.Duration
	CopyBusyD2H     des.Duration
	// OverlapBusy is the virtual time during which the compute engine and at
	// least one PCIe copy engine were busy simultaneously — the paper's
	// copy/compute overlap, zero without pinned memory and multiple streams.
	OverlapBusy des.Duration
	PeakMemUsed int64
}

// NewDevice creates a device attached to sim. id distinguishes multiple GPUs.
func NewDevice(sim *des.Sim, spec DeviceSpec, id int) *Device {
	name := fmt.Sprintf("gpu%d", id)
	return &Device{
		Spec:    spec,
		ID:      id,
		sim:     sim,
		name:    name,
		compute: des.NewResource(sim, name+".compute", 1),
		h2d:     des.NewResource(sim, name+".h2d", 1),
		d2h:     des.NewResource(sim, name+".d2h", 1),
	}
}

// Sim returns the simulation the device belongs to.
func (d *Device) Sim() *des.Sim { return d.sim }

// Name returns the device's instance name ("gpu0", ...).
func (d *Device) Name() string { return d.name }

// Stats returns a copy of the activity counters.
func (d *Device) Stats() Stats { return d.stats }

// MemUsed reports current device-memory allocation.
func (d *Device) MemUsed() int64 { return d.memUsed }

// SetFaultInjector attaches a fault injector: from now on every stream
// operation (copy or kernel) consults it, and injected faults fire the
// operation's completion event with an error value instead of its normal
// result. Use one injector per device so fault schedules stay independent.
func (d *Device) SetFaultInjector(in *fault.Injector) { d.inj = in }

// Lost reports whether an injected fault has permanently killed the device.
func (d *Device) Lost() bool { return d.inj != nil && d.inj.Lost() }

// checkFault consults the injector (if any) for one operation and converts
// its verdict into the error the operation's completion event will carry.
func (d *Device) checkFault(op fault.Op, what string) error {
	if d.inj == nil {
		return nil
	}
	switch d.inj.Check(op) {
	case fault.Transient:
		return fmt.Errorf("%s: %s: %w", d.name, what, fault.ErrTransient)
	case fault.DeviceLost:
		return fmt.Errorf("%s: %s: %w", d.name, what, fault.ErrDeviceLost)
	}
	return nil
}

// WaitErr waits on completion events in order and returns the first error
// value any of them carries (injected faults travel this way). Events that
// fire normal results (nil or LaunchResult) are treated as success.
func WaitErr(p *des.Proc, evs ...*des.Event) error {
	var first error
	for _, ev := range evs {
		if err, ok := ev.Wait(p).(error); ok && first == nil {
			first = err
		}
	}
	return first
}

// transferTime returns the virtual duration of moving n bytes in the given
// direction with the given host-memory kind.
func (d *Device) transferTime(n int64, h2d bool, pinned bool) des.Duration {
	var bps float64
	switch {
	case h2d && pinned:
		bps = d.Spec.H2DPinnedBps
	case h2d:
		bps = d.Spec.H2DPageableBps
	case pinned:
		bps = d.Spec.D2HPinnedBps
	default:
		bps = d.Spec.D2HPageableBps
	}
	return d.Spec.CopyLatency + des.Duration(float64(n)/bps*1e9)
}
