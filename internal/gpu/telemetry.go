package gpu

import (
	"streamgpu/internal/des"
	"streamgpu/internal/telemetry"
)

// devTelem is a device's instrument set. Counters and histograms are updated
// from inside simulation processes (the stream engines); the instruments are
// atomic, so a live HTTP scraper never races the simulation. Durations
// observed here are virtual time, rendered as seconds.
type devTelem struct {
	reg *telemetry.Registry

	h2dBytes *telemetry.Counter
	d2hBytes *telemetry.Counter
	kernels  *telemetry.Counter

	faultTransfer *telemetry.Counter
	faultKernel   *telemetry.Counter

	h2dSec     *telemetry.Histogram
	d2hSec     *telemetry.Histogram
	kernSec    *telemetry.Histogram
	launchWait *telemetry.Histogram
}

// SetTelemetry attaches a metrics registry to the device. Call it before
// creating streams, so each stream can register its outstanding-ops gauge.
// Metrics (all labelled {device}):
//
//	gpu_h2d_bytes_total / gpu_d2h_bytes_total   transfer volume
//	gpu_h2d_seconds / gpu_d2h_seconds           per-transfer virtual duration
//	gpu_kernels_launched_total                  kernel count
//	gpu_kernel_seconds                          per-kernel busy time (launch + compute)
//	gpu_kernel_launch_latency_seconds           enqueue-to-execution queueing delay
//	gpu_faults_injected_total                   injector hits ({device, op})
//	gpu_stream_outstanding_ops                  enqueued-but-incomplete ops ({device, stream})
//
// nil reg turns instrumentation off.
func (d *Device) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		d.tel = nil
		return
	}
	lbl := telemetry.Labels{"device": d.name}
	d.tel = &devTelem{
		reg:           reg,
		h2dBytes:      reg.Counter("gpu_h2d_bytes_total", lbl),
		d2hBytes:      reg.Counter("gpu_d2h_bytes_total", lbl),
		kernels:       reg.Counter("gpu_kernels_launched_total", lbl),
		faultTransfer: reg.Counter("gpu_faults_injected_total", telemetry.Labels{"device": d.name, "op": "transfer"}),
		faultKernel:   reg.Counter("gpu_faults_injected_total", telemetry.Labels{"device": d.name, "op": "kernel"}),
		h2dSec:        reg.Histogram("gpu_h2d_seconds", nil, lbl),
		d2hSec:        reg.Histogram("gpu_d2h_seconds", nil, lbl),
		kernSec:       reg.Histogram("gpu_kernel_seconds", nil, lbl),
		launchWait:    reg.Histogram("gpu_kernel_launch_latency_seconds", nil, lbl),
	}
}

// markBusy records one engine going busy (compute = kernel engine, otherwise
// a PCIe copy engine) and opens an overlap interval when both classes are
// simultaneously held. The simulation is cooperative, so plain fields are
// race-free here.
func (d *Device) markBusy(compute bool) {
	if compute {
		d.computeHeld++
	} else {
		d.copyHeld++
	}
	if d.computeHeld > 0 && d.copyHeld > 0 && !d.overlapOpen {
		d.overlapOpen = true
		d.overlapStart = d.sim.Now()
	}
}

// markIdle records one engine going idle, closing the overlap interval when
// either class fully drains.
func (d *Device) markIdle(compute bool) {
	if compute {
		d.computeHeld--
	} else {
		d.copyHeld--
	}
	if d.overlapOpen && (d.computeHeld == 0 || d.copyHeld == 0) {
		d.overlapOpen = false
		d.stats.OverlapBusy += des.Duration(d.sim.Now() - d.overlapStart)
	}
}
