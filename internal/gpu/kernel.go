package gpu

import (
	"fmt"
	"runtime"
	"sync"

	"streamgpu/internal/des"
)

// Dim3 is a CUDA-style 3-component extent. Zero components are treated as 1.
type Dim3 struct {
	X, Y, Z int
}

// norm returns the dimension with zeroes replaced by 1.
func (d Dim3) norm() Dim3 {
	if d.X == 0 {
		d.X = 1
	}
	if d.Y == 0 {
		d.Y = 1
	}
	if d.Z == 0 {
		d.Z = 1
	}
	return d
}

// Count is the product of the (normalized) components.
func (d Dim3) Count() int {
	d = d.norm()
	return d.X * d.Y * d.Z
}

// Grid is a kernel launch configuration: grid-of-blocks × block-of-threads,
// the <<<grid, block>>> pair of CUDA.
type Grid struct {
	Grid  Dim3
	Block Dim3
}

// Grid1D covers n threads with 1-dimensional blocks of blockSize threads —
// the standard `(n + b - 1) / b` launch idiom.
func Grid1D(n, blockSize int) Grid {
	if blockSize <= 0 {
		panic("gpu: blockSize must be positive")
	}
	return Grid{
		Grid:  Dim3{X: (n + blockSize - 1) / blockSize},
		Block: Dim3{X: blockSize},
	}
}

// Grid2D covers an nx × ny domain with 2-dimensional bx × by blocks — the
// configuration §IV-A reports as performing worse than 1D for the
// Mandelbrot row kernel.
func Grid2D(nx, ny, bx, by int) Grid {
	if bx <= 0 || by <= 0 {
		panic("gpu: block dims must be positive")
	}
	return Grid{
		Grid:  Dim3{X: (nx + bx - 1) / bx, Y: (ny + by - 1) / by},
		Block: Dim3{X: bx, Y: by},
	}
}

// Blocks reports the number of thread blocks launched.
func (g Grid) Blocks() int { return g.Grid.Count() }

// ThreadsPerBlock reports the block size in threads.
func (g Grid) ThreadsPerBlock() int { return g.Block.Count() }

// Threads reports the total launched threads.
func (g Grid) Threads() int { return g.Blocks() * g.ThreadsPerBlock() }

// Thread is the per-thread execution context handed to kernel functions,
// mirroring CUDA's threadIdx/blockIdx/blockDim/gridDim builtins.
type Thread struct {
	Idx      Dim3 // threadIdx
	Block    Dim3 // blockIdx
	BlockDim Dim3
	GridDim  Dim3
}

// GlobalX is blockIdx.x*blockDim.x + threadIdx.x.
func (t Thread) GlobalX() int { return t.Block.X*t.BlockDim.X + t.Idx.X }

// GlobalY is blockIdx.y*blockDim.y + threadIdx.y.
func (t Thread) GlobalY() int { return t.Block.Y*t.BlockDim.Y + t.Idx.Y }

// GlobalLinear is the flattened global id with x fastest, then y, then z —
// the order warps are formed in.
func (t Thread) GlobalLinear() int {
	bd := t.BlockDim.norm()
	gd := t.GridDim.norm()
	threadInBlock := (t.Idx.Z*bd.Y+t.Idx.Y)*bd.X + t.Idx.X
	blockLinear := (t.Block.Z*gd.Y+t.Block.Y)*gd.X + t.Block.X
	return blockLinear*bd.Count() + threadInBlock
}

// ThreadFunc is a kernel body: it runs once per thread and returns the
// thread's cost in device cycles. The returned cycles drive the timing
// model; within a warp the maximum over threads is charged (lockstep
// execution — warp divergence costs what the slowest lane costs).
type ThreadFunc func(t Thread) int64

// ExitCost is the conventional cycle cost for a thread that fails its bounds
// check and returns immediately.
const ExitCost = 4

// Kernel is a device function plus its resource footprint.
type Kernel struct {
	Name string
	// RegsPerThread limits SM occupancy (registers are partitioned among
	// resident threads). Zero means a small kernel (16 registers).
	RegsPerThread int
	// SharedMemPerBlock limits how many blocks fit on an SM. Zero = none.
	SharedMemPerBlock int64
	Func              ThreadFunc
}

// residentWarpsPerSM computes the occupancy limit for this kernel on spec:
// the minimum of the thread cap, the register file cap and the shared-memory
// block cap, in warps.
func (k *Kernel) residentWarpsPerSM(spec DeviceSpec, g Grid) int {
	warpsPerBlock := (g.ThreadsPerBlock() + spec.WarpSize - 1) / spec.WarpSize
	byThreads := spec.MaxResidentThreadsPerSM / spec.WarpSize
	regs := k.RegsPerThread
	if regs <= 0 {
		regs = 16
	}
	byRegs := spec.RegistersPerSM / (regs * spec.WarpSize)
	limit := byThreads
	if byRegs < limit {
		limit = byRegs
	}
	if k.SharedMemPerBlock > 0 {
		blocksBySmem := int(spec.SharedMemPerSM / k.SharedMemPerBlock)
		if blocksBySmem < 1 {
			blocksBySmem = 1
		}
		bySmem := blocksBySmem * warpsPerBlock
		if bySmem < limit {
			limit = bySmem
		}
	}
	if limit < 1 {
		limit = 1
	}
	return limit
}

// LaunchResult reports what a kernel execution did and cost.
type LaunchResult struct {
	ComputeTime des.Duration // device-side execution time (excl. launch overhead)
	Threads     int
	Warps       int
	// OccupiedSMs counts SMs that received at least one block.
	OccupiedSMs int
	// TotalCycles is the divergence-adjusted warp-cycle total.
	TotalCycles int64
}

// execute runs the kernel functionally (parallel on the host for speed) and
// evaluates the cost model. It is invoked by the stream engine when the
// kernel op reaches the head of its stream.
func (d *Device) execute(k *Kernel, g Grid) LaunchResult {
	spec := d.Spec
	bd := g.Block.norm()
	gd := g.Grid.norm()
	nBlocks := g.Blocks()
	threadsPerBlock := bd.Count()
	warpsPerBlock := (threadsPerBlock + spec.WarpSize - 1) / spec.WarpSize

	// Per-SM divergence-adjusted cycle totals. Blocks are assigned to SMs
	// round-robin in launch order, as hardware block schedulers do for
	// uniform kernels.
	perSM := make([]int64, spec.SMs)
	var mu sync.Mutex

	workers := runtime.GOMAXPROCS(0)
	if workers > nBlocks {
		workers = nBlocks
	}
	if workers < 1 {
		workers = 1
	}
	blockCh := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int64, spec.SMs)
			for b := range blockCh {
				bz := b / (gd.X * gd.Y)
				by := (b / gd.X) % gd.Y
				bx := b % gd.X
				sm := b % spec.SMs
				var blockCycles int64
				// Walk the block's threads warp by warp (x fastest).
				for w0 := 0; w0 < warpsPerBlock; w0++ {
					var warpMax int64
					lo := w0 * spec.WarpSize
					hi := lo + spec.WarpSize
					if hi > threadsPerBlock {
						hi = threadsPerBlock
					}
					for lin := lo; lin < hi; lin++ {
						tx := lin % bd.X
						ty := (lin / bd.X) % bd.Y
						tz := lin / (bd.X * bd.Y)
						c := k.Func(Thread{
							Idx:      Dim3{X: tx, Y: ty, Z: tz},
							Block:    Dim3{X: bx, Y: by, Z: bz},
							BlockDim: bd,
							GridDim:  gd,
						})
						if c > warpMax {
							warpMax = c
						}
					}
					blockCycles += warpMax
				}
				local[sm] += blockCycles
			}
			mu.Lock()
			for i, c := range local {
				perSM[i] += c
			}
			mu.Unlock()
		}()
	}
	for b := 0; b < nBlocks; b++ {
		blockCh <- b
	}
	close(blockCh)
	wg.Wait()

	// Cost model: each SM issues min(ipc, k/depLatency) warp-instructions
	// per cycle where k is its resident-warp concurrency; the kernel runs
	// as long as its slowest SM.
	resident := k.residentWarpsPerSM(spec, g)
	var worst float64
	var total int64
	occupied := 0
	for sm, cycles := range perSM {
		if cycles == 0 {
			continue
		}
		occupied++
		blocksOnSM := nBlocks / spec.SMs
		if sm < nBlocks%spec.SMs {
			blocksOnSM++
		}
		kWarps := blocksOnSM * warpsPerBlock
		if kWarps > resident {
			kWarps = resident
		}
		thr := float64(kWarps) / spec.DepLatencyCycles
		if thr > spec.IssueWarpsPerCycle {
			thr = spec.IssueWarpsPerCycle
		}
		t := float64(cycles) / thr / spec.ClockHz
		if t > worst {
			worst = t
		}
		total += cycles
	}
	return LaunchResult{
		ComputeTime: des.Duration(worst * 1e9),
		Threads:     g.Threads(),
		Warps:       nBlocks * warpsPerBlock,
		OccupiedSMs: occupied,
		TotalCycles: total,
	}
}

func (g Grid) String() string {
	return fmt.Sprintf("<<<(%d,%d,%d),(%d,%d,%d)>>>",
		g.Grid.norm().X, g.Grid.norm().Y, g.Grid.norm().Z,
		g.Block.norm().X, g.Block.norm().Y, g.Block.norm().Z)
}
