package gpu

import (
	"fmt"

	"streamgpu/internal/des"
	"streamgpu/internal/fault"
	"streamgpu/internal/telemetry"
)

// opKind discriminates stream operations.
type opKind int

const (
	opCopyH2D opKind = iota
	opCopyD2H
	opCopyD2D
	opKernel
	opMarker
)

// opName labels an op kind for fault messages.
func opName(k opKind) string {
	switch k {
	case opCopyH2D:
		return "h2d copy"
	case opCopyD2H:
		return "d2h copy"
	case opCopyD2D:
		return "d2d copy"
	case opKernel:
		return "kernel"
	}
	return "op"
}

// op is one entry in a stream's in-order command queue.
type op struct {
	kind opKind
	done *des.Event
	enq  des.Time // enqueue timestamp, for queueing-delay telemetry

	// copies
	dbuf          *Buf
	hbuf          *HostBuf
	dOff, hOff, n int64
	// exclusive copies also occupy the compute engine: CUDA's staged
	// pageable transfers cannot overlap with kernel execution.
	exclusive bool
	// bwFactor > 0 scales the transfer duration (OpenCL's bounce-buffer
	// staging of pageable memory costs an extra host memcpy).
	bwFactor float64

	// d2d copies
	dbuf2 *Buf

	// kernels
	kernel *Kernel
	grid   Grid
}

// Stream is an in-order command queue on a device, the analogue of a
// cudaStream_t or cl_command_queue. Operations issued to one stream execute
// sequentially; operations on different streams may overlap subject to the
// device's engines (one compute engine, one copy engine per direction).
type Stream struct {
	dev  *Device
	name string
	ops  *des.Queue[op]
	// outstanding counts enqueued-but-incomplete ops when the device is
	// instrumented (nil otherwise; the telemetry.Gauge is nil-safe anyway).
	outstanding *telemetry.Gauge
}

// NewStream creates a stream served by its own daemon engine process.
func (d *Device) NewStream(name string) *Stream {
	d.streams++
	if name == "" {
		name = fmt.Sprintf("%s.stream%d", d.name, d.streams)
	}
	st := &Stream{
		dev:  d,
		name: name,
		ops:  des.NewQueue[op](d.sim, name+".ops", 1024),
	}
	if d.tel != nil {
		st.outstanding = d.tel.reg.Gauge("gpu_stream_outstanding_ops",
			telemetry.Labels{"device": d.name, "stream": name})
	}
	d.sim.SpawnDaemon(name, st.engine)
	return st
}

// put stamps and enqueues one op, maintaining the outstanding-ops gauge.
func (st *Stream) put(p *des.Proc, o op) {
	o.enq = p.Now()
	st.outstanding.Inc()
	st.ops.Put(p, o)
}

// Name reports the stream's name.
func (st *Stream) Name() string { return st.name }

// Device returns the stream's device.
func (st *Stream) Device() *Device { return st.dev }

// engine drains the command queue, timing each operation against the
// device's shared engines.
func (st *Stream) engine(p *des.Proc) {
	d := st.dev
	for {
		o, ok := st.ops.Get(p)
		if !ok {
			return
		}
		// Fault injection: real operations (not markers) consult the
		// device's injector. A faulted operation still costs its fixed
		// overhead in virtual time, then completes with an error value; the
		// stream keeps draining, so a dead device fails fast instead of
		// hanging its callers.
		if o.kind != opMarker && d.inj != nil {
			fop := fault.Transfer
			penalty := d.Spec.CopyLatency
			if o.kind == opKernel {
				fop = fault.Kernel
				penalty = d.Spec.KernelLaunchOverhead
			}
			if err := d.checkFault(fop, opName(o.kind)); err != nil {
				if d.tel != nil {
					if fop == fault.Kernel {
						d.tel.faultKernel.Inc()
					} else {
						d.tel.faultTransfer.Inc()
					}
				}
				p.Wait(penalty)
				o.done.Fire(err)
				st.outstanding.Dec()
				continue
			}
		}
		switch o.kind {
		case opCopyH2D:
			if o.exclusive {
				d.compute.Acquire(p, 1)
			}
			d.h2d.Acquire(p, 1)
			d.markBusy(false)
			t := d.transferTime(o.n, true, o.hbuf.Pinned)
			if o.bwFactor > 0 {
				t = des.Duration(float64(t) * o.bwFactor)
			}
			p.Wait(t)
			d.markIdle(false)
			d.h2d.Release(p, 1)
			if o.exclusive {
				d.compute.Release(p, 1)
			}
			copy(o.dbuf.Bytes()[o.dOff:o.dOff+o.n], o.hbuf.Data[o.hOff:o.hOff+o.n])
			d.stats.BytesH2D += o.n
			d.stats.CopyBusyH2D += t
			if d.tel != nil {
				d.tel.h2dBytes.Add(o.n)
				d.tel.h2dSec.Observe(t.Seconds())
			}
			o.done.Fire(nil)
		case opCopyD2H:
			if o.exclusive {
				d.compute.Acquire(p, 1)
			}
			d.d2h.Acquire(p, 1)
			d.markBusy(false)
			t := d.transferTime(o.n, false, o.hbuf.Pinned)
			if o.bwFactor > 0 {
				t = des.Duration(float64(t) * o.bwFactor)
			}
			p.Wait(t)
			d.markIdle(false)
			d.d2h.Release(p, 1)
			if o.exclusive {
				d.compute.Release(p, 1)
			}
			copy(o.hbuf.Data[o.hOff:o.hOff+o.n], o.dbuf.Bytes()[o.dOff:o.dOff+o.n])
			d.stats.BytesD2H += o.n
			d.stats.CopyBusyD2H += t
			if d.tel != nil {
				d.tel.d2hBytes.Add(o.n)
				d.tel.d2hSec.Observe(t.Seconds())
			}
			o.done.Fire(nil)
		case opCopyD2D:
			// On-device copies run through the memory controller; they do
			// not occupy the PCIe engines and overlap with host transfers.
			t := des.Duration(float64(o.n) / d.Spec.DeviceMemBps * 1e9)
			p.Wait(t)
			copy(o.dbuf2.Bytes()[o.dOff:o.dOff+o.n], o.dbuf.Bytes()[o.hOff:o.hOff+o.n])
			o.done.Fire(nil)
		case opKernel:
			d.compute.Acquire(p, 1)
			if d.tel != nil {
				d.tel.launchWait.Observe(des.Duration(p.Now() - o.enq).Seconds())
			}
			d.markBusy(true)
			res := d.execute(o.kernel, o.grid)
			busy := d.Spec.KernelLaunchOverhead + res.ComputeTime
			p.Wait(busy)
			d.markIdle(true)
			d.compute.Release(p, 1)
			d.stats.KernelsLaunched++
			d.stats.KernelBusy += busy
			if d.tel != nil {
				d.tel.kernels.Inc()
				d.tel.kernSec.Observe(busy.Seconds())
			}
			o.done.Fire(res)
		case opMarker:
			o.done.Fire(nil)
		}
		st.outstanding.Dec()
	}
}

// nextEvent creates the completion event for an op.
func (st *Stream) nextEvent(kind string) *des.Event {
	return st.dev.sim.NewEvent(fmt.Sprintf("%s.%s", st.name, kind))
}

// CopyH2D enqueues a host-to-device copy of n bytes and returns its
// completion event. The call itself is asynchronous; callers modelling
// pageable-memory semantics must wait on the event themselves (the cuda and
// opencl facades do this automatically for non-pinned buffers).
func (st *Stream) CopyH2D(p *des.Proc, dst *Buf, dstOff int64, src *HostBuf, srcOff, n int64) *des.Event {
	return st.copyH2DOpt(p, dst, dstOff, src, srcOff, n, false)
}

// CopyH2DExclusive is CopyH2D for driver-staged transfers that cannot
// overlap with kernel execution (CUDA pageable copies).
func (st *Stream) CopyH2DExclusive(p *des.Proc, dst *Buf, dstOff int64, src *HostBuf, srcOff, n int64) *des.Event {
	return st.copyH2DOpt(p, dst, dstOff, src, srcOff, n, true)
}

// CopyH2DStaged is CopyH2D through a runtime bounce buffer: asynchronous
// regardless of memory kind, but slower by bwFactor (OpenCL's pageable
// staging path).
func (st *Stream) CopyH2DStaged(p *des.Proc, dst *Buf, dstOff int64, src *HostBuf, srcOff, n int64, bwFactor float64) *des.Event {
	checkRange("CopyH2D dst", dstOff, n, dst.Size())
	checkRange("CopyH2D src", srcOff, n, int64(len(src.Data)))
	ev := st.nextEvent("h2d")
	st.put(p, op{kind: opCopyH2D, done: ev, dbuf: dst, hbuf: src, dOff: dstOff, hOff: srcOff, n: n, bwFactor: bwFactor})
	return ev
}

func (st *Stream) copyH2DOpt(p *des.Proc, dst *Buf, dstOff int64, src *HostBuf, srcOff, n int64, excl bool) *des.Event {
	checkRange("CopyH2D dst", dstOff, n, dst.Size())
	checkRange("CopyH2D src", srcOff, n, int64(len(src.Data)))
	ev := st.nextEvent("h2d")
	st.put(p, op{kind: opCopyH2D, done: ev, dbuf: dst, hbuf: src, dOff: dstOff, hOff: srcOff, n: n, exclusive: excl})
	return ev
}

// CopyD2H enqueues a device-to-host copy of n bytes and returns its
// completion event.
func (st *Stream) CopyD2H(p *des.Proc, dst *HostBuf, dstOff int64, src *Buf, srcOff, n int64) *des.Event {
	return st.copyD2HOpt(p, dst, dstOff, src, srcOff, n, false)
}

// CopyD2HExclusive is CopyD2H for driver-staged transfers that cannot
// overlap with kernel execution (CUDA pageable copies).
func (st *Stream) CopyD2HExclusive(p *des.Proc, dst *HostBuf, dstOff int64, src *Buf, srcOff, n int64) *des.Event {
	return st.copyD2HOpt(p, dst, dstOff, src, srcOff, n, true)
}

// CopyD2HStaged is CopyD2H through a runtime bounce buffer (see
// CopyH2DStaged).
func (st *Stream) CopyD2HStaged(p *des.Proc, dst *HostBuf, dstOff int64, src *Buf, srcOff, n int64, bwFactor float64) *des.Event {
	checkRange("CopyD2H src", srcOff, n, src.Size())
	checkRange("CopyD2H dst", dstOff, n, int64(len(dst.Data)))
	ev := st.nextEvent("d2h")
	st.put(p, op{kind: opCopyD2H, done: ev, dbuf: src, hbuf: dst, dOff: srcOff, hOff: dstOff, n: n, bwFactor: bwFactor})
	return ev
}

func (st *Stream) copyD2HOpt(p *des.Proc, dst *HostBuf, dstOff int64, src *Buf, srcOff, n int64, excl bool) *des.Event {
	checkRange("CopyD2H src", srcOff, n, src.Size())
	checkRange("CopyD2H dst", dstOff, n, int64(len(dst.Data)))
	ev := st.nextEvent("d2h")
	st.put(p, op{kind: opCopyD2H, done: ev, dbuf: src, hbuf: dst, dOff: srcOff, hOff: dstOff, n: n, exclusive: excl})
	return ev
}

// CopyD2D enqueues an on-device copy of n bytes from src to dst (both on
// this stream's device) and returns its completion event.
func (st *Stream) CopyD2D(p *des.Proc, dst *Buf, dstOff int64, src *Buf, srcOff, n int64) *des.Event {
	if dst.Device() != st.dev || src.Device() != st.dev {
		panic("gpu: CopyD2D buffers must live on the stream's device")
	}
	checkRange("CopyD2D dst", dstOff, n, dst.Size())
	checkRange("CopyD2D src", srcOff, n, src.Size())
	ev := st.nextEvent("d2d")
	st.put(p, op{kind: opCopyD2D, done: ev, dbuf: src, dbuf2: dst, dOff: dstOff, hOff: srcOff, n: n})
	return ev
}

// Launch enqueues a kernel execution and returns its completion event, whose
// value is the LaunchResult. The calling CPU thread is charged the host-side
// driver overhead.
func (st *Stream) Launch(p *des.Proc, k *Kernel, g Grid) *des.Event {
	if g.Threads() <= 0 {
		panic("gpu: launch with empty grid")
	}
	p.Wait(st.dev.Spec.HostLaunchOverhead)
	ev := st.nextEvent("kernel." + k.Name)
	st.put(p, op{kind: opKernel, done: ev, kernel: k, grid: g})
	return ev
}

// Record enqueues a marker that fires when all previously enqueued
// operations on this stream have completed (cudaEventRecord analogue).
func (st *Stream) Record(p *des.Proc) *des.Event {
	ev := st.nextEvent("marker")
	st.put(p, op{kind: opMarker, done: ev})
	return ev
}

// Synchronize blocks the calling process until every operation enqueued so
// far has completed (cudaStreamSynchronize analogue).
func (st *Stream) Synchronize(p *des.Proc) {
	st.Record(p).Wait(p)
}

func checkRange(what string, off, n, size int64) {
	if off < 0 || n < 0 || off+n > size {
		panic(fmt.Sprintf("gpu: %s out of range: off %d n %d size %d", what, off, n, size))
	}
}
