package gpu

// KernelSpec is a device function in "source" form: a named body that
// receives its arguments at launch time, the way real CUDA kernels receive
// a parameter list and OpenCL kernels receive clSetKernelArg values.
//
// Application kernels (Mandelbrot, SHA-1, LZSS FindMatch) are written once
// as KernelSpecs and launched through either API facade:
//
//   - the cuda facade passes args positionally at launch
//     (cudaLaunchKernel style),
//   - the opencl facade snapshots args set with SetArg on a (non
//     thread-safe) kernel object at enqueue time.
type KernelSpec struct {
	Name              string
	RegsPerThread     int
	SharedMemPerBlock int64
	// Body runs once per thread; args is the launch-time parameter list.
	Body func(t Thread, args []any) int64
}

// Bind produces a launchable Kernel with the argument list fixed.
func (ks *KernelSpec) Bind(args ...any) *Kernel {
	bound := make([]any, len(args))
	copy(bound, args)
	return &Kernel{
		Name:              ks.Name,
		RegsPerThread:     ks.RegsPerThread,
		SharedMemPerBlock: ks.SharedMemPerBlock,
		Func:              func(t Thread) int64 { return ks.Body(t, bound) },
	}
}
