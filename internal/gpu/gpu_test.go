package gpu

import (
	"testing"
	"testing/quick"

	"streamgpu/internal/des"
)

// testSpec is a small deterministic device for unit tests.
func testSpec() DeviceSpec {
	s := TitanXPSpec()
	return s
}

// runOnDevice spins up a sim + device, runs body as the host process, and
// returns the final virtual time.
func runOnDevice(t testing.TB, body func(p *des.Proc, d *Device)) des.Time {
	t.Helper()
	sim := des.New()
	dev := NewDevice(sim, testSpec(), 0)
	sim.Spawn("host", func(p *des.Proc) { body(p, dev) })
	end, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return end
}

// incKernel adds 1 to each byte of buf, one thread per byte.
func incKernel(buf *Buf, n int) *Kernel {
	return &Kernel{
		Name: "inc",
		Func: func(th Thread) int64 {
			i := th.GlobalX()
			if i >= n {
				return ExitCost
			}
			buf.Bytes()[i]++
			return 20
		},
	}
}

func TestFunctionalRoundTrip(t *testing.T) {
	const n = 1000
	host := NewPinnedBuf(n)
	for i := range host.Data {
		host.Data[i] = byte(i % 7)
	}
	out := NewPinnedBuf(n)
	runOnDevice(t, func(p *des.Proc, d *Device) {
		buf := mustMalloc(d, n)
		defer buf.Free()
		st := d.NewStream("s")
		evs := []*des.Event{
			st.CopyH2D(p, buf, 0, host, 0, n),
			st.Launch(p, incKernel(buf, n), Grid1D(n, 128)),
			st.CopyD2H(p, out, 0, buf, 0, n),
		}
		if err := WaitErr(p, evs...); err != nil {
			panic(err)
		}
	})
	for i := range out.Data {
		want := byte(i%7) + 1
		if out.Data[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, out.Data[i], want)
		}
	}
}

func TestStreamOrdering(t *testing.T) {
	// Within one stream a kernel must observe the preceding copy even
	// without explicit synchronization between ops.
	const n = 64
	host := NewPinnedBuf(n)
	for i := range host.Data {
		host.Data[i] = 5
	}
	out := NewPinnedBuf(n)
	runOnDevice(t, func(p *des.Proc, d *Device) {
		buf := mustMalloc(d, n)
		defer buf.Free()
		st := d.NewStream("")
		evs := []*des.Event{
			st.CopyH2D(p, buf, 0, host, 0, n),
			st.Launch(p, incKernel(buf, n), Grid1D(n, 32)),
			st.Launch(p, incKernel(buf, n), Grid1D(n, 32)),
			st.CopyD2H(p, out, 0, buf, 0, n),
		}
		if err := WaitErr(p, evs...); err != nil {
			panic(err)
		}
	})
	for i := range out.Data {
		if out.Data[i] != 7 {
			t.Fatalf("out[%d] = %d, want 7 (copy→kernel→kernel ordering broken)", i, out.Data[i])
		}
	}
}

func TestCopyOffsets(t *testing.T) {
	host := NewPinnedBuf(16)
	for i := range host.Data {
		host.Data[i] = byte(i)
	}
	out := NewPinnedBuf(4)
	runOnDevice(t, func(p *des.Proc, d *Device) {
		buf := mustMalloc(d, 32)
		defer buf.Free()
		st := d.NewStream("")
		evs := []*des.Event{
			st.CopyH2D(p, buf, 10, host, 4, 4), // device[10:14] = host[4:8]
			st.CopyD2H(p, out, 0, buf, 10, 4),
		}
		if err := WaitErr(p, evs...); err != nil {
			panic(err)
		}
	})
	for i := 0; i < 4; i++ {
		if out.Data[i] != byte(4+i) {
			t.Fatalf("out[%d] = %d, want %d", i, out.Data[i], 4+i)
		}
	}
}

func TestPinnedFasterThanPageable(t *testing.T) {
	const n = 1 << 20
	measure := func(pinned bool) des.Time {
		var h *HostBuf
		if pinned {
			h = NewPinnedBuf(n)
		} else {
			h = NewHostBuf(n)
		}
		return runOnDevice(t, func(p *des.Proc, d *Device) {
			buf := mustMalloc(d, n)
			defer buf.Free()
			st := d.NewStream("")
			if err := WaitErr(p, st.CopyH2D(p, buf, 0, h, 0, n)); err != nil {
				panic(err)
			}
		})
	}
	tp, tg := measure(true), measure(false)
	if tp >= tg {
		t.Errorf("pinned copy (%v) should be faster than pageable (%v)", tp, tg)
	}
}

func TestBatchingBeatsManySmallKernels(t *testing.T) {
	// The paper's core Fig. 1 effect: one kernel over 32 rows beats 32
	// kernels over 1 row each, because of launch overhead and occupancy.
	const rows, rowLen = 32, 2000
	work := func(th Thread, limit int) int64 {
		if th.GlobalX() >= limit {
			return ExitCost
		}
		return 5000 // uniform busy loop
	}
	small := runOnDevice(t, func(p *des.Proc, d *Device) {
		st := d.NewStream("")
		k := &Kernel{Name: "row", Func: func(th Thread) int64 { return work(th, rowLen) }}
		evs := make([]*des.Event, 0, rows)
		for r := 0; r < rows; r++ {
			evs = append(evs, st.Launch(p, k, Grid1D(rowLen, 128)))
		}
		if err := WaitErr(p, evs...); err != nil {
			panic(err)
		}
	})
	big := runOnDevice(t, func(p *des.Proc, d *Device) {
		st := d.NewStream("")
		k := &Kernel{Name: "batch", Func: func(th Thread) int64 { return work(th, rows*rowLen) }}
		if err := WaitErr(p, st.Launch(p, k, Grid1D(rows*rowLen, 128))); err != nil {
			panic(err)
		}
	})
	if big >= small {
		t.Errorf("batched kernel (%v) should beat %d small kernels (%v)", big, rows, small)
	}
	if ratio := float64(small) / float64(big); ratio < 3 {
		t.Errorf("batching speedup = %.2f, expected >= 3 for underutilized small kernels", ratio)
	}
}

func TestWarpDivergenceCost(t *testing.T) {
	// A kernel where one lane per warp runs 100× longer must cost nearly as
	// much as all lanes running long (lockstep warps).
	const n = 32 * 64 * 30 // full residency
	uniform := runOnDevice(t, func(p *des.Proc, d *Device) {
		st := d.NewStream("")
		k := &Kernel{Name: "u", Func: func(th Thread) int64 { return 10000 }}
		if err := WaitErr(p, st.Launch(p, k, Grid1D(n, 128))); err != nil {
			panic(err)
		}
	})
	divergent := runOnDevice(t, func(p *des.Proc, d *Device) {
		st := d.NewStream("")
		k := &Kernel{Name: "d", Func: func(th Thread) int64 {
			if th.GlobalX()%32 == 0 {
				return 10000
			}
			return 100
		}}
		if err := WaitErr(p, st.Launch(p, k, Grid1D(n, 128))); err != nil {
			panic(err)
		}
	})
	// Per-warp max is 10000 in both cases; times must be equal.
	if divergent != uniform {
		t.Errorf("divergent (%v) should cost the same as uniform (%v): warp time = slowest lane", divergent, uniform)
	}
}

func TestOccupancyLimitedByRegisters(t *testing.T) {
	spec := testSpec()
	g := Grid1D(spec.MaxResidentThreads(), 128)
	lean := &Kernel{Name: "lean", RegsPerThread: 18}
	fat := &Kernel{Name: "fat", RegsPerThread: 255}
	rl := lean.residentWarpsPerSM(spec, g)
	rf := fat.residentWarpsPerSM(spec, g)
	if rl != spec.MaxResidentThreadsPerSM/spec.WarpSize {
		t.Errorf("18-register kernel should hit the thread cap (%d warps), got %d",
			spec.MaxResidentThreadsPerSM/spec.WarpSize, rl)
	}
	if rf >= rl {
		t.Errorf("255-register kernel occupancy (%d) should be below lean kernel (%d)", rf, rl)
	}
	if want := spec.RegistersPerSM / (255 * spec.WarpSize); rf != want {
		t.Errorf("fat kernel resident warps = %d, want %d", rf, want)
	}
}

func TestSharedMemLimitsOccupancy(t *testing.T) {
	spec := testSpec()
	g := Grid1D(spec.MaxResidentThreads(), 256)
	k := &Kernel{Name: "smem", SharedMemPerBlock: spec.SharedMemPerSM / 2}
	// Only 2 blocks of 8 warps fit per SM.
	if got, want := k.residentWarpsPerSM(spec, g), 16; got != want {
		t.Errorf("resident warps = %d, want %d", got, want)
	}
}

func TestCopyComputeOverlap(t *testing.T) {
	// Two streams: one computing, one copying. With pinned memory the total
	// must be close to max(copy, compute), not the sum.
	const n = 8 << 20
	host := NewPinnedBuf(n)
	serial := runOnDevice(t, func(p *des.Proc, d *Device) {
		buf := mustMalloc(d, n)
		defer buf.Free()
		st := d.NewStream("")
		k := &Kernel{Name: "busy", Func: func(Thread) int64 { return 200000 }}
		evs := []*des.Event{
			st.CopyH2D(p, buf, 0, host, 0, n),
			st.Launch(p, k, Grid1D(61440, 128)),
			st.CopyH2D(p, buf, 0, host, 0, n),
			st.Launch(p, k, Grid1D(61440, 128)),
		}
		if err := WaitErr(p, evs...); err != nil {
			panic(err)
		}
	})
	overlapped := runOnDevice(t, func(p *des.Proc, d *Device) {
		bufA := mustMalloc(d, n)
		defer bufA.Free()
		bufB := mustMalloc(d, n)
		defer bufB.Free()
		s1 := d.NewStream("s1")
		s2 := d.NewStream("s2")
		k := &Kernel{Name: "busy", Func: func(Thread) int64 { return 200000 }}
		evs := []*des.Event{
			s1.CopyH2D(p, bufA, 0, host, 0, n),
			s1.Launch(p, k, Grid1D(61440, 128)),
			s2.CopyH2D(p, bufB, 0, host, 0, n),
			s2.Launch(p, k, Grid1D(61440, 128)),
		}
		if err := WaitErr(p, evs...); err != nil {
			panic(err)
		}
	})
	if overlapped >= serial {
		t.Errorf("two streams (%v) should beat one stream (%v) via copy/compute overlap", overlapped, serial)
	}
}

func TestComputeEngineSerializesKernels(t *testing.T) {
	// Kernels from different streams serialize on the single compute engine.
	one := runOnDevice(t, func(p *des.Proc, d *Device) {
		st := d.NewStream("")
		k := &Kernel{Name: "busy", Func: func(Thread) int64 { return 100000 }}
		if err := WaitErr(p, st.Launch(p, k, Grid1D(61440, 128))); err != nil {
			panic(err)
		}
	})
	two := runOnDevice(t, func(p *des.Proc, d *Device) {
		s1 := d.NewStream("s1")
		s2 := d.NewStream("s2")
		k := &Kernel{Name: "busy", Func: func(Thread) int64 { return 100000 }}
		ev1 := s1.Launch(p, k, Grid1D(61440, 128))
		ev2 := s2.Launch(p, k, Grid1D(61440, 128))
		if err := WaitErr(p, ev1, ev2); err != nil {
			panic(err)
		}
	})
	if two < 2*one*9/10 {
		t.Errorf("2 concurrent kernels (%v) should take ~2× one kernel (%v)", two, one)
	}
}

func TestMallocAccountingAndOOM(t *testing.T) {
	sim := des.New()
	spec := testSpec()
	d := NewDevice(sim, spec, 0)
	b1, err := d.Malloc(spec.GlobalMemBytes / 2)
	if err != nil {
		t.Fatal(err)
	}
	if b, err := d.Malloc(spec.GlobalMemBytes); err == nil {
		b.Free()
		t.Fatal("over-allocation should fail")
	}
	b2, err := d.Malloc(spec.GlobalMemBytes / 2)
	if err != nil {
		t.Fatal(err)
	}
	b1.Free()
	b2.Free()
	if d.MemUsed() != 0 {
		t.Errorf("MemUsed = %d after freeing everything", d.MemUsed())
	}
	if d.Stats().PeakMemUsed != spec.GlobalMemBytes {
		t.Errorf("PeakMemUsed = %d, want %d", d.Stats().PeakMemUsed, spec.GlobalMemBytes)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	sim := des.New()
	d := NewDevice(sim, testSpec(), 0)
	b := mustMalloc(d, 16)
	b.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double free should panic")
		}
	}()
	b.Free()
}

func TestCopyRangeChecked(t *testing.T) {
	host := NewPinnedBuf(8)
	sim := des.New()
	d := NewDevice(sim, testSpec(), 0)
	sim.Spawn("host", func(p *des.Proc) {
		buf := mustMalloc(d, 8)
		defer buf.Free()
		st := d.NewStream("")
		// The overrunning copy fails the simulation at enqueue; there is no
		// completion event outcome to wait for.
		_ = st.CopyH2D(p, buf, 4, host, 0, 8)
	})
	if _, err := sim.Run(); err == nil {
		t.Fatal("out-of-range copy should fail the simulation")
	}
}

func TestStats(t *testing.T) {
	const n = 4096
	host := NewPinnedBuf(n)
	sim := des.New()
	d := NewDevice(sim, testSpec(), 0)
	sim.Spawn("host", func(p *des.Proc) {
		buf := mustMalloc(d, n)
		defer buf.Free()
		st := d.NewStream("")
		evs := []*des.Event{
			st.CopyH2D(p, buf, 0, host, 0, n),
			st.Launch(p, incKernel(buf, n), Grid1D(n, 128)),
			st.CopyD2H(p, host, 0, buf, 0, n),
		}
		if err := WaitErr(p, evs...); err != nil {
			panic(err)
		}
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.KernelsLaunched != 1 || s.BytesH2D != n || s.BytesD2H != n {
		t.Errorf("stats = %+v", s)
	}
	if s.KernelBusy <= 0 || s.CopyBusyH2D <= 0 {
		t.Errorf("busy counters should be positive: %+v", s)
	}
}

func TestGrid1D(t *testing.T) {
	g := Grid1D(2000, 128)
	if g.Blocks() != 16 {
		t.Errorf("blocks = %d, want 16", g.Blocks())
	}
	if g.Threads() != 16*128 {
		t.Errorf("threads = %d", g.Threads())
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(2000, 1, 32, 32)
	if g.Grid.X != 63 || g.Grid.Y != 1 {
		t.Errorf("grid = %+v", g.Grid)
	}
	if g.ThreadsPerBlock() != 1024 {
		t.Errorf("block threads = %d", g.ThreadsPerBlock())
	}
}

func TestThreadIndexing(t *testing.T) {
	th := Thread{
		Idx:      Dim3{X: 3, Y: 1},
		Block:    Dim3{X: 2, Y: 0},
		BlockDim: Dim3{X: 4, Y: 2},
		GridDim:  Dim3{X: 5, Y: 3},
	}
	if th.GlobalX() != 11 {
		t.Errorf("GlobalX = %d, want 11", th.GlobalX())
	}
	if th.GlobalY() != 1 {
		t.Errorf("GlobalY = %d, want 1", th.GlobalY())
	}
	// linear: block 2 of 8 threads each, thread-in-block = 1*4+3 = 7 → 23
	if th.GlobalLinear() != 23 {
		t.Errorf("GlobalLinear = %d, want 23", th.GlobalLinear())
	}
}

// Property: every launched thread executes exactly once with a unique
// global linear id.
func TestEveryThreadRunsOnceProperty(t *testing.T) {
	f := func(nSeed, bSeed uint8) bool {
		n := int(nSeed)%500 + 1
		block := []int{32, 64, 128, 256}[int(bSeed)%4]
		g := Grid1D(n, block)
		seen := make([]int32, g.Threads())
		sim := des.New()
		d := NewDevice(sim, testSpec(), 0)
		ok := true
		sim.Spawn("host", func(p *des.Proc) {
			st := d.NewStream("")
			k := &Kernel{Name: "count", Func: func(th Thread) int64 {
				id := th.GlobalLinear()
				seen[id]++ // exclusive access per thread; executor may be parallel but ids are unique
				return 1
			}}
			if err := WaitErr(p, st.Launch(p, k, g)); err != nil {
				panic(err)
			}
		})
		if _, err := sim.Run(); err != nil {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: transfer time is monotone in size and pinned <= pageable.
func TestTransferTimeMonotoneProperty(t *testing.T) {
	d := NewDevice(des.New(), testSpec(), 0)
	f := func(a, b uint32) bool {
		x, y := int64(a)%(1<<24), int64(b)%(1<<24)
		if x > y {
			x, y = y, x
		}
		if d.transferTime(x, true, true) > d.transferTime(y, true, true) {
			return false
		}
		return d.transferTime(x, true, true) <= d.transferTime(x, true, false)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTitanXPSpec(t *testing.T) {
	s := TitanXPSpec()
	if s.MaxResidentThreads() != 61440 {
		t.Errorf("resident threads = %d, want 61440 (paper §IV-A)", s.MaxResidentThreads())
	}
	if s.SMs != 30 || s.WarpSize != 32 {
		t.Errorf("geometry = %d SMs, warp %d", s.SMs, s.WarpSize)
	}
}

func TestLaunchResultFields(t *testing.T) {
	sim := des.New()
	d := NewDevice(sim, testSpec(), 0)
	var res LaunchResult
	sim.Spawn("host", func(p *des.Proc) {
		st := d.NewStream("")
		k := &Kernel{Name: "k", Func: func(Thread) int64 { return 10 }}
		ev := st.Launch(p, k, Grid1D(2000, 128))
		res = ev.Wait(p).(LaunchResult)
	})
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Threads != 16*128 {
		t.Errorf("Threads = %d", res.Threads)
	}
	if res.OccupiedSMs != 16 {
		t.Errorf("OccupiedSMs = %d, want 16 (16 blocks round-robin on 30 SMs)", res.OccupiedSMs)
	}
	if res.Warps != 16*4 {
		t.Errorf("Warps = %d, want 64", res.Warps)
	}
	if res.ComputeTime <= 0 {
		t.Error("ComputeTime should be positive")
	}
}

func TestFullOccupancyFasterPerThread(t *testing.T) {
	// Time per unit work must shrink as the grid grows toward full
	// residency (the underutilization effect).
	timeFor := func(threads int) float64 {
		end := runOnDevice(t, func(p *des.Proc, d *Device) {
			st := d.NewStream("")
			k := &Kernel{Name: "w", Func: func(Thread) int64 { return 10000 }}
			if err := WaitErr(p, st.Launch(p, k, Grid1D(threads, 128))); err != nil {
				panic(err)
			}
		})
		return float64(end) / float64(threads)
	}
	small := timeFor(2000)  // one Mandelbrot row
	large := timeFor(64000) // a 32-row batch
	if large >= small {
		t.Errorf("per-thread time at 64000 threads (%.2f ns) should beat 2000 threads (%.2f ns)", large, small)
	}
	if small/large < 4 {
		t.Errorf("occupancy gain = %.2f×, expected >= 4× between 2000 and 64000 threads", small/large)
	}
}

func BenchmarkKernelExecution(b *testing.B) {
	sim := des.New()
	d := NewDevice(sim, testSpec(), 0)
	k := &Kernel{Name: "bench", Func: func(Thread) int64 { return 100 }}
	g := Grid1D(61440, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.execute(k, g)
	}
}

func TestCopyD2D(t *testing.T) {
	host := NewPinnedBuf(64)
	for i := range host.Data {
		host.Data[i] = byte(i)
	}
	out := NewPinnedBuf(64)
	runOnDevice(t, func(p *des.Proc, d *Device) {
		a := mustMalloc(d, 64)
		defer a.Free()
		b := mustMalloc(d, 64)
		defer b.Free()
		st := d.NewStream("")
		evs := []*des.Event{
			st.CopyH2D(p, a, 0, host, 0, 64),
			st.CopyD2D(p, b, 0, a, 0, 64),
			st.CopyD2H(p, out, 0, b, 0, 64),
		}
		if err := WaitErr(p, evs...); err != nil {
			panic(err)
		}
	})
	for i := range out.Data {
		if out.Data[i] != byte(i) {
			t.Fatalf("out[%d] = %d after D2D round trip", i, out.Data[i])
		}
	}
}

func TestCopyD2DCrossDevicePanics(t *testing.T) {
	sim := des.New()
	d0 := NewDevice(sim, testSpec(), 0)
	d1 := NewDevice(sim, testSpec(), 1)
	sim.Spawn("host", func(p *des.Proc) {
		a := mustMalloc(d0, 8)
		defer a.Free()
		b := mustMalloc(d1, 8)
		defer b.Free()
		st := d0.NewStream("")
		// The cross-device copy fails the simulation at enqueue; there is no
		// completion event outcome to wait for.
		_ = st.CopyD2D(p, b, 0, a, 0, 8) // wrong device: must fail
	})
	if _, err := sim.Run(); err == nil {
		t.Fatal("cross-device D2D should fail the simulation")
	}
}

func TestCopyD2DFasterThanPCIe(t *testing.T) {
	const n = 8 << 20
	host := NewPinnedBuf(n)
	viaPCIe := runOnDevice(t, func(p *des.Proc, d *Device) {
		a := mustMalloc(d, n)
		defer a.Free()
		st := d.NewStream("")
		if err := WaitErr(p, st.CopyH2D(p, a, 0, host, 0, n)); err != nil {
			panic(err)
		}
	})
	onDevice := runOnDevice(t, func(p *des.Proc, d *Device) {
		a := mustMalloc(d, n)
		defer a.Free()
		b := mustMalloc(d, n)
		defer b.Free()
		st := d.NewStream("")
		if err := WaitErr(p, st.CopyD2D(p, b, 0, a, 0, n)); err != nil {
			panic(err)
		}
	})
	if onDevice >= viaPCIe {
		t.Errorf("D2D (%v) should be much faster than PCIe (%v)", onDevice, viaPCIe)
	}
}

// mustMalloc allocates or panics; inside a des process the panic becomes a
// Sim.Run error, which the tests treat as fatal.
func mustMalloc(d *Device, n int64) *Buf {
	b, err := d.Malloc(n)
	if err != nil {
		panic(err)
	}
	return b
}
