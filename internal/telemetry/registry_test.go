package telemetry

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRegistry exercises the registry the way the runtimes do:
// many writer goroutines hammering counters, gauges and histograms while a
// scraper goroutine snapshots and renders. Run under -race (CI does).
func TestConcurrentRegistry(t *testing.T) {
	r := New()
	const writers = 8
	const perWriter = 2000
	stop := make(chan struct{})
	var scraped sync.WaitGroup
	scraped.Add(1)
	go func() {
		defer scraped.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.WriteProm(io.Discard)
			_ = r.WriteJSON(io.Discard)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Get-or-create races on purpose: every writer asks for the same
			// instruments.
			c := r.Counter("items_total", Labels{"stage": "compute"})
			g := r.Gauge("depth", Labels{"queue": "q0"})
			h := r.Histogram("svc_seconds", nil, Labels{"stage": "compute"})
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%10) * 1e-4)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scraped.Wait()

	if got := r.Counter("items_total", Labels{"stage": "compute"}).Value(); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := r.Gauge("depth", Labels{"queue": "q0"}).Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := r.Histogram("svc_seconds", nil, Labels{"stage": "compute"}).Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
}

// TestExpositionGolden pins the text exposition format exactly.
func TestExpositionGolden(t *testing.T) {
	r := New()
	r.Counter("ff_stage_items_in_total", Labels{"pipeline": "mandel", "stage": "compute"}).Add(42)
	r.Gauge("ff_queue_depth", Labels{"pipeline": "mandel", "queue": "source->compute"}).Set(7)
	h := r.Histogram("gpu_h2d_seconds", []float64{0.001, 0.1}, Labels{"device": "gpu0"})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE ff_queue_depth gauge
ff_queue_depth{pipeline="mandel",queue="source->compute"} 7
# TYPE ff_stage_items_in_total counter
ff_stage_items_in_total{pipeline="mandel",stage="compute"} 42
# TYPE gpu_h2d_seconds histogram
gpu_h2d_seconds_bucket{device="gpu0",le="0.001"} 1
gpu_h2d_seconds_bucket{device="gpu0",le="0.1"} 2
gpu_h2d_seconds_bucket{device="gpu0",le="+Inf"} 3
gpu_h2d_seconds_sum{device="gpu0"} 3.0505
gpu_h2d_seconds_count{device="gpu0"} 3
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total", nil)
	g := r.Gauge("g", nil)
	h := r.Histogram("h_seconds", nil, nil)
	r.GaugeFunc("gf", nil, func() float64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(0.1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments must read 0")
	}
	if snap := r.Snapshot(); len(snap.Metrics) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
	if err := r.WriteProm(io.Discard); err != nil {
		t.Error(err)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := New()
	r.Counter("m", nil)
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", nil)
}

func TestEmptyNamePanics(t *testing.T) {
	r := New()
	defer func() {
		if recover() == nil {
			t.Error("empty metric name did not panic")
		}
	}()
	r.Counter("", nil)
}

// TestGaugeFuncReplace verifies the re-registration contract: a pipeline
// re-run re-points its queue gauges at the new queues.
func TestGaugeFuncReplace(t *testing.T) {
	r := New()
	r.GaugeFunc("depth", nil, func() float64 { return 1 })
	r.GaugeFunc("depth", nil, func() float64 { return 2 })
	if got := r.Gauge("depth", nil).Value(); got != 2 {
		t.Errorf("gauge = %v, want the replacement callback's 2", got)
	}
}

func TestGetOrCreateReturnsSameInstrument(t *testing.T) {
	r := New()
	a := r.Counter("c_total", Labels{"x": "1"})
	b := r.Counter("c_total", Labels{"x": "1"})
	if a != b {
		t.Error("same (name, labels) must return the same counter")
	}
	other := r.Counter("c_total", Labels{"x": "2"})
	if a == other {
		t.Error("different labels must return a different counter")
	}
}

// TestServe spins up the HTTP surface and scrapes it, the way the CI smoke
// step does.
func TestServe(t *testing.T) {
	r := New()
	r.Counter("up_total", nil).Inc()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/metrics.json", "/debug/pprof/"} {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("GET %s: empty body", path)
		}
		if path == "/metrics" && !strings.Contains(string(body), "up_total 1") {
			t.Errorf("scrape missing sample: %q", body)
		}
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h_seconds", nil, nil)
	h.Observe(0.01)
	hs := h.Snapshot()
	if len(hs.Bounds) != len(SecondsBuckets) {
		t.Fatalf("bounds = %v, want SecondsBuckets", hs.Bounds)
	}
	if q := hs.Quantile(0.5); q <= 0 || q > 0.064 {
		t.Errorf("median %v outside the observed bucket", q)
	}
}
