package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerNesting(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("run")
	child := root.Child("prepare")
	child.Annotate("figure", "fig1")
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Children end first, so they appear first.
	if spans[0].Name != "prepare" || spans[1].Name != "run" {
		t.Fatalf("span order = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Errorf("child parent = %d, want root id %d", spans[0].Parent, spans[1].ID)
	}
	if spans[1].Parent != 0 {
		t.Errorf("root parent = %d, want 0", spans[1].Parent)
	}
	if spans[0].Attrs["figure"] != "fig1" {
		t.Errorf("attrs = %v", spans[0].Attrs)
	}
}

func TestTracerCapEvictsOldest(t *testing.T) {
	tr := NewTracer(2)
	for _, name := range []string{"a", "b", "c"} {
		tr.Start(name).End()
	}
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "b" || spans[1].Name != "c" {
		t.Fatalf("retained %v, want b then c", spans)
	}
	if tr.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", tr.Dropped())
	}
}

func TestStreamTracer(t *testing.T) {
	st := NewStreamTracer(2)
	now := time.Now()
	for i := int64(0); i < 3; i++ {
		st.Observe(i, "compute", now, now.Add(time.Millisecond))
	}
	ev := st.Events()
	if len(ev) != 2 || ev[0].Item != 1 || ev[1].Item != 2 {
		t.Fatalf("retained %v, want items 1 and 2", ev)
	}
	if st.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", st.Dropped())
	}
}

func TestStreamTracerConcurrent(t *testing.T) {
	st := NewStreamTracer(128)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			now := time.Now()
			for i := int64(0); i < 500; i++ {
				st.Observe(i, "stage", now, now)
				_ = st.Events()
			}
		}()
	}
	wg.Wait()
	if got := int64(len(st.Events())) + st.Dropped(); got != 4*500 {
		t.Errorf("retained+dropped = %d, want 2000", got)
	}
}

func TestWriteTrace(t *testing.T) {
	tr := NewTracer(8)
	tr.Start("run").End()
	st := NewStreamTracer(8)
	st.Observe(0, "compute", time.Now(), time.Now())

	var b strings.Builder
	if err := WriteTrace(&b, tr, st); err != nil {
		t.Fatal(err)
	}
	var doc Trace
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace output is not JSON: %v", err)
	}
	if len(doc.Spans) != 1 || len(doc.Items) != 1 {
		t.Fatalf("doc = %+v, want 1 span and 1 item", doc)
	}
	// Nil tracers are fine too: the document is just empty.
	b.Reset()
	if err := WriteTrace(&b, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNilTracers(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	s.Annotate("k", "v")
	c := s.Child("y")
	c.End()
	s.End()
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer must be empty")
	}
	var st *StreamTracer
	st.Observe(1, "s", time.Now(), time.Now())
	if st.Events() != nil || st.Dropped() != 0 {
		t.Error("nil stream tracer must be empty")
	}
}
